// Catalogsales mirrors the paper's Figure 13 workload: sort a TPC-DS-like
// catalog_sales slice by one to four low-cardinality key columns and
// compare how the five modeled systems scale with key count.
//
//	go run ./examples/catalogsales [-rows 200000] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/systems"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 200_000, "number of catalog_sales rows to generate")
	threads := flag.Int("threads", 0, "threads per system (0 = GOMAXPROCS)")
	flag.Parse()

	fmt.Printf("generating %d catalog_sales rows (SF10 domains)...\n", *rows)
	table := workload.CatalogSales(*rows, 10, 42)

	// The Figure 13 key columns, in order:
	// cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity.
	fmt.Printf("%-12s", "keys")
	sysList := systems.All(*threads)
	for _, s := range sysList {
		fmt.Printf("%12s", s.Name())
	}
	fmt.Println()

	for numKeys := 1; numKeys <= 4; numKeys++ {
		keys := make([]core.SortColumn, numKeys)
		for i := range keys {
			keys[i] = core.SortColumn{Column: i}
		}
		fmt.Printf("%-12d", numKeys)
		for _, s := range sysList {
			start := time.Now()
			n, err := systems.SortCount(s, table, keys)
			if err != nil {
				log.Fatalf("%s: %v", s.Name(), err)
			}
			if n != *rows {
				log.Fatalf("%s returned %d rows, want %d", s.Name(), n, *rows)
			}
			fmt.Printf("%11.3fs", time.Since(start).Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nRow-based sorters (DuckDB, HyPer, Umbra) should degrade least as keys grow.")
}
