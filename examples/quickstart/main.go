// Quickstart: build a small table, sort it with the DuckDB-style relational
// sorter, and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rowsort/internal/core"
	"rowsort/internal/vector"
)

func main() {
	// A table of (country, year) like the paper's running example:
	// ORDER BY c_birth_country DESC, c_birth_year ASC NULLS FIRST.
	schema := vector.Schema{
		{Name: "c_birth_country", Type: vector.Varchar},
		{Name: "c_birth_year", Type: vector.Int32},
	}
	country := vector.New(vector.Varchar, 6)
	year := vector.New(vector.Int32, 6)
	for _, r := range []struct {
		country string
		year    int32
	}{
		{"NETHERLANDS", 1992},
		{"GERMANY", 1924},
		{"NETHERLANDS", 1924},
		{"GERMANY", 1992},
		{"FRANCE", 1960},
	} {
		country.AppendString(r.country)
		year.AppendInt32(r.year)
	}
	country.AppendNull() // a NULL country row
	year.AppendInt32(2000)

	table, err := vector.TableFromColumns(schema, country, year)
	if err != nil {
		log.Fatal(err)
	}

	keys := []core.SortColumn{
		{Column: schema.IndexOf("c_birth_country"), Descending: true, NullsLast: true},
		{Column: schema.IndexOf("c_birth_year")},
	}
	sorted, err := core.SortTable(table, keys, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ORDER BY c_birth_country DESC NULLS LAST, c_birth_year ASC:")
	countryOut := sorted.Column(0)
	yearOut := sorted.Column(1)
	for i := 0; i < sorted.NumRows(); i++ {
		c := countryOut.Value(i)
		if c == nil {
			c = "NULL"
		}
		fmt.Printf("  %-12v %v\n", c, yearOut.Value(i))
	}
}
