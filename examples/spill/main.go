// Spill demonstrates the paper's future-work direction: because sorted runs
// are flat normalized-key rows plus a unified row-format payload, they can
// be offloaded to secondary storage between run generation and the merge.
// The example sorts with and without spilling and verifies both orders
// agree.
//
//	go run ./examples/spill [-rows 500000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 500_000, "number of rows to sort")
	flag.Parse()

	table := workload.Customer(*rows, 11)
	keys := []core.SortColumn{
		{Column: table.Schema.IndexOf("c_last_name")},
		{Column: table.Schema.IndexOf("c_birth_year"), Descending: true},
	}

	dir, err := os.MkdirTemp("", "rowsort-spill-")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("removing spill dir: %v", err)
		}
	}()

	start := time.Now()
	inMem, err := core.SortTable(table, keys, core.Options{RunSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory sort: %.3fs\n", time.Since(start).Seconds())

	start = time.Now()
	spilled, err := core.SortTable(table, keys, core.Options{RunSize: 64 << 10, SpillDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilling sort:  %.3fs (runs written to %s)\n", time.Since(start).Seconds(), dir)

	// Verify the two sorts produced identical key orders.
	for _, col := range []int{table.Schema.IndexOf("c_last_name"), table.Schema.IndexOf("c_birth_year")} {
		a, b := inMem.Column(col), spilled.Column(col)
		for i := 0; i < a.Len(); i++ {
			if a.Value(i) != b.Value(i) {
				log.Fatalf("orders differ at row %d column %d", i, col)
			}
		}
	}
	fmt.Println("verified: spilled and in-memory sorts agree on", inMem.NumRows(), "rows")
}
