// Spill demonstrates the paper's future-work direction: because sorted runs
// are flat normalized-key rows plus a unified row-format payload, they can
// be offloaded to secondary storage between run generation and the merge.
// The example sorts with and without spilling and verifies both orders
// agree.
//
//	go run ./examples/spill [-rows 500000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 500_000, "number of rows to sort")
	flag.Parse()

	table := workload.Customer(*rows, 11)
	keys := []core.SortColumn{
		{Column: table.Schema.IndexOf("c_last_name")},
		{Column: table.Schema.IndexOf("c_birth_year"), Descending: true},
	}

	dir, err := os.MkdirTemp("", "rowsort-spill-")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("removing spill dir: %v", err)
		}
	}()

	start := time.Now()
	inMem, err := core.SortTable(table, keys, core.Options{RunSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory sort: %.3fs\n", time.Since(start).Seconds())

	start = time.Now()
	spilled, err := core.SortTable(table, keys, core.Options{RunSize: 64 << 10, SpillDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilling sort:  %.3fs (runs written to %s)\n", time.Since(start).Seconds(), dir)

	// Budgeted: instead of naming a spill directory, name a memory limit.
	// The sorter spills adaptively (to a private temp dir) only when the
	// resident runs exceed the budget, and streams the final merge so the
	// peak stays near the limit.
	budget := int64(4 << 20)
	start = time.Now()
	budgeted, stats, err := core.SortTableStats(table, keys,
		core.Options{RunSize: 64 << 10, MemoryLimit: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budgeted sort:  %.3fs (limit %d MiB, peak %.1f MiB, %d runs shed under pressure)\n",
		time.Since(start).Seconds(), budget>>20,
		float64(stats.PeakResidentRunBytes)/(1<<20), stats.PressureSpills)

	// Verify all three sorts produced identical key orders.
	for _, col := range []int{table.Schema.IndexOf("c_last_name"), table.Schema.IndexOf("c_birth_year")} {
		a, b, c := inMem.Column(col), spilled.Column(col), budgeted.Column(col)
		for i := 0; i < a.Len(); i++ {
			if a.Value(i) != b.Value(i) || a.Value(i) != c.Value(i) {
				log.Fatalf("orders differ at row %d column %d", i, col)
			}
		}
	}
	fmt.Println("verified: spilled, budgeted and in-memory sorts agree on", inMem.NumRows(), "rows")
}
