// Customersort mirrors the paper's Figure 14 workload: sort a TPC-DS-like
// customer slice by integer birth-date keys and by string name keys,
// showing how normalized-key prefixes with full-string tie-breaking keep
// string sorting close to integer sorting.
//
//	go run ./examples/customersort [-rows 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 100_000, "number of customer rows to generate")
	flag.Parse()

	table := workload.Customer(*rows, 7)
	schema := table.Schema

	intKeys := []core.SortColumn{
		{Column: schema.IndexOf("c_birth_year")},
		{Column: schema.IndexOf("c_birth_month")},
		{Column: schema.IndexOf("c_birth_day")},
	}
	strKeys := []core.SortColumn{
		{Column: schema.IndexOf("c_last_name")},
		{Column: schema.IndexOf("c_first_name")},
	}

	run := func(name string, keys []core.SortColumn) *vector.Table {
		start := time.Now()
		sorted, err := core.SortTable(table, keys, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.3fs  (%d rows)\n", name, time.Since(start).Seconds(), sorted.NumRows())
		return sorted
	}

	fmt.Printf("sorting %d customer rows:\n", *rows)
	run("integer keys (birth date)", intKeys)
	sorted := run("string keys (last, first)", strKeys)

	fmt.Println("\nfirst customers by name (NULLs first):")
	last, first, sk := sorted.Column(4), sorted.Column(5), sorted.Column(0)
	for i := 0; i < 5 && i < sorted.NumRows(); i++ {
		l, f := last.Value(i), first.Value(i)
		if l == nil {
			l = "NULL"
		}
		if f == nil {
			f = "NULL"
		}
		fmt.Printf("  %-12v %-12v (c_customer_sk=%v)\n", l, f, sk.Value(i))
	}
}
