// Topn demonstrates the specialized ORDER BY ... LIMIT operator the paper's
// benchmark query has to outmaneuver: instead of fully sorting, a bounded
// heap of normalized keys keeps only the best n rows. The example compares
// it against the full sort and verifies both agree.
//
//	go run ./examples/topn [-rows 1000000] [-limit 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "input rows")
	limit := flag.Int("limit", 10, "LIMIT n")
	flag.Parse()

	table := workload.CatalogSales(*rows, 10, 13)
	// ORDER BY cs_quantity DESC, cs_promo_sk NULLS LAST LIMIT n
	keys := []core.SortColumn{
		{Column: 3, Descending: true},
		{Column: 2, NullsLast: true},
	}

	start := time.Now()
	top, err := core.NewTopN(table.Schema, keys, *limit, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range table.Chunks {
		if err := top.Append(c); err != nil {
			log.Fatal(err)
		}
	}
	topResult, err := top.Result()
	if err != nil {
		log.Fatal(err)
	}
	topTime := time.Since(start)

	start = time.Now()
	full, err := core.SortTable(table, keys, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	fmt.Printf("top-%d via heap:      %8.3fs\n", *limit, topTime.Seconds())
	fmt.Printf("top-%d via full sort: %8.3fs (%.1fx slower)\n",
		*limit, fullTime.Seconds(), fullTime.Seconds()/topTime.Seconds())

	// Verify the key columns agree on the first limit rows.
	fq, fp := full.Column(3), full.Column(2)
	tq, tp := topResult.Column(3), topResult.Column(2)
	for i := 0; i < topResult.NumRows(); i++ {
		if fq.Value(i) != tq.Value(i) || fp.Value(i) != tp.Value(i) {
			log.Fatalf("mismatch at row %d", i)
		}
	}
	fmt.Printf("verified: both orders agree on the first %d rows\n\n", topResult.NumRows())

	fmt.Println("top rows (cs_quantity DESC, cs_promo_sk):")
	for i := 0; i < topResult.NumRows() && i < 10; i++ {
		fmt.Printf("  quantity=%v promo=%v item=%v\n",
			tq.Value(i), tp.Value(i), topResult.Column(4).Value(i))
	}
}
