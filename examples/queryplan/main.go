// Queryplan runs the paper's benchmark query as an actual query plan:
//
//	SELECT count(*) FROM (
//	  SELECT cs_item_sk FROM catalog_sales
//	  ORDER BY cs_warehouse_sk, cs_ship_mode_sk OFFSET 1)
//
// and shows why it is shaped that way: a plain ORDER BY ... LIMIT is
// rewritten by the optimizer into the cheap Top-N operator, whereas the
// count-over-subquery form forces the full sort the benchmark wants to
// measure.
//
//	go run ./examples/queryplan [-rows 500000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/engine"
	"rowsort/internal/workload"
)

func main() {
	rows := flag.Int("rows", 500_000, "catalog_sales rows")
	flag.Parse()

	table := workload.CatalogSales(*rows, 10, 33)
	keys := []core.SortColumn{{Column: 1}, {Column: 2}}

	build := func(limit, offset int) engine.Operator {
		proj, err := engine.Project(engine.Scan(table), []int{4, 0, 1})
		if err != nil {
			log.Fatal(err)
		}
		sorted := engine.Sort(proj, keys, core.Options{})
		return engine.Count(engine.Limit(sorted, limit, offset))
	}

	// Naive plan: ORDER BY ... LIMIT 1. The optimizer fuses Sort+Limit into
	// Top-N, so almost no sorting happens — useless as a sort benchmark.
	naive := engine.Optimize(build(1, 0))
	start := time.Now()
	res, err := engine.Run(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count(*) over (ORDER BY ... LIMIT 1):  count=%v  %8.3fs  (optimizer used Top-N)\n",
		res.Column(0).Value(0), time.Since(start).Seconds())

	// The paper's plan: OFFSET 1 with no bounded limit. The rewrite cannot
	// fire, the full sort runs, and count(*) forces full payload collection.
	benchmark := engine.Optimize(build(1<<30, 1))
	start = time.Now()
	res, err = engine.Run(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count(*) over (ORDER BY ... OFFSET 1): count=%v  %8.3fs  (full sort forced)\n",
		res.Column(0).Value(0), time.Since(start).Seconds())
}
