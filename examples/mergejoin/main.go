// Mergejoin demonstrates sorted data feeding another operator — the
// Section V-B pattern (merging iterators with full tuple comparisons) that
// motivates normalized keys. Two catalog_sales slices are joined on
// (warehouse, ship mode) with a sort-merge join built on the relational
// sorter.
//
//	go run ./examples/mergejoin [-left 100000] [-right 50000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/workload"
)

func main() {
	leftRows := flag.Int("left", 100_000, "left input rows")
	rightRows := flag.Int("right", 50_000, "right input rows")
	flag.Parse()

	left := workload.CatalogSales(*leftRows, 1, 21)
	right := workload.CatalogSales(*rightRows, 1, 22)

	start := time.Now()
	// Join on (cs_warehouse_sk, cs_ship_mode_sk); NULL keys never match.
	out, err := core.MergeJoin(left, right, []int{0, 1}, []int{0, 1}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sort-merge join: %d x %d rows -> %d result rows in %.3fs\n",
		*leftRows, *rightRows, out.NumRows(), time.Since(start).Seconds())
	fmt.Printf("result schema: %d columns (left %d + right %d)\n",
		len(out.Schema), len(left.Schema), len(right.Schema))

	if out.NumRows() > 0 {
		fmt.Println("\nfirst matches (l.warehouse, l.shipmode | r.warehouse, r.shipmode):")
		lw, ls := out.Column(0), out.Column(1)
		rw, rs := out.Column(5), out.Column(6)
		for i := 0; i < 5 && i < out.NumRows(); i++ {
			fmt.Printf("  %v, %v | %v, %v\n", lw.Value(i), ls.Value(i), rw.Value(i), rs.Value(i))
		}
	}
}
