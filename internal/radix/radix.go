// Package radix implements byte-wise radix sorts over fixed-stride rows of
// normalized keys (Section VI-B of the paper).
//
// Because normalized keys (package normkey) yield the correct order under
// byte-by-byte comparison, they can be sorted with a byte-by-byte radix sort
// that performs no comparisons at all — sidestepping the dynamic-comparator
// overhead of interpreted engines. Two variants are provided, selected by
// key width as in the paper: least-significant-digit (LSD) for keys of at
// most 4 bytes, and most-significant-digit (MSD) otherwise, with MSD
// recursing into insertion sort for buckets of at most 24 rows. Both skip
// the data copy for a pass whose rows all fall into a single bucket, which
// softens radix sort's weakness on long common prefixes and duplicates.
package radix

import (
	"bytes"

	"rowsort/internal/sortalgo"
)

// Defaults matching the paper's implementation.
const (
	// LSDThreshold is the largest key width sorted with LSD radix sort.
	LSDThreshold = 4
	// DefaultInsertionCutoff is the bucket size at or below which MSD radix
	// sort falls back to insertion sort.
	DefaultInsertionCutoff = 24
)

// Options tune the sort; the zero value gives the paper's configuration.
type Options struct {
	// ForceLSD and ForceMSD override the key-width selection rule.
	ForceLSD bool
	ForceMSD bool
	// NoSingleBucketSkip disables the skip-copy optimization (for ablation).
	NoSingleBucketSkip bool
	// InsertionCutoff overrides DefaultInsertionCutoff when positive.
	InsertionCutoff int
	// PdqCutoff, when positive, sorts MSD buckets of at most this many rows
	// with pdqsort on the remaining key bytes instead of recursing — the
	// hybrid the paper's Future Work suggests. Buckets at or below the
	// insertion cutoff still use insertion sort.
	PdqCutoff int
}

// Stats reports what a sort did, for tests and ablation benchmarks.
type Stats struct {
	UsedMSD       bool
	Passes        int // counting passes that scattered data
	SkippedPasses int // passes skipped because one bucket held every row
	PdqBuckets    int // MSD buckets handed to pdqsort (hybrid mode)
}

// Sort sorts rows byte-lexicographically on their first keyWidth bytes.
// Rows are rowWidth bytes each, stored back to back in data; bytes beyond
// keyWidth travel with their row. LSD is used for keyWidth <= LSDThreshold,
// MSD otherwise.
//
// Sort is STABLE: rows with byte-equal key prefixes keep their input order.
// Every default path preserves order — LSD and MSD scatter with counting
// sort, and the insertion fallback only moves strictly-smaller rows. The
// duplicate-group run sort (sortalgo.CollectDupGroups) relies on this to
// make grouped sorting byte-identical to sorting row-at-a-time. The one
// exception is the opt-in Options.PdqCutoff hybrid, which hands buckets to
// an unstable pdqsort.
func Sort(data []byte, rowWidth, keyWidth int) Stats {
	return SortOpts(data, rowWidth, keyWidth, Options{})
}

// SortOpts is Sort with explicit options.
func SortOpts(data []byte, rowWidth, keyWidth int, opt Options) Stats {
	if rowWidth <= 0 || len(data)%rowWidth != 0 {
		panic("radix: data length must be a positive multiple of rowWidth")
	}
	if keyWidth < 0 || keyWidth > rowWidth {
		panic("radix: keyWidth must be in [0, rowWidth]")
	}
	n := len(data) / rowWidth
	if n < 2 || keyWidth == 0 {
		return Stats{}
	}
	cutoff := opt.InsertionCutoff
	if cutoff <= 0 {
		cutoff = DefaultInsertionCutoff
	}
	s := &sorter{
		data:      data,
		aux:       make([]byte, len(data)),
		rowW:      rowWidth,
		keyW:      keyWidth,
		cutoff:    cutoff,
		pdqCutoff: opt.PdqCutoff,
		skip:      !opt.NoSingleBucketSkip,
	}
	useLSD := keyWidth <= LSDThreshold
	if opt.ForceLSD {
		useLSD = true
	}
	if opt.ForceMSD {
		useLSD = false
	}
	if useLSD {
		s.lsd()
	} else {
		s.stats.UsedMSD = true
		s.msd(0, n, 0)
	}
	return s.stats
}

type sorter struct {
	data      []byte
	aux       []byte
	rowW      int
	keyW      int
	cutoff    int
	pdqCutoff int
	skip      bool
	tmp       []byte // scratch row for insertion sort
	stats     Stats
}

// lsd runs stable counting-sort passes from the least significant key byte
// to the most significant, alternating between data and aux.
func (s *sorter) lsd() {
	n := len(s.data) / s.rowW
	src, dst := s.data, s.aux
	srcIsData := true
	var count [256]int
	for d := s.keyW - 1; d >= 0; d-- {
		for i := range count {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[src[i*s.rowW+d]]++
		}
		if s.skip && s.singleBucket(&count, n) {
			s.stats.SkippedPasses++
			continue
		}
		// Prefix-sum into starting offsets.
		sum := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			row := src[i*s.rowW : (i+1)*s.rowW]
			pos := count[row[d]]
			count[row[d]]++
			copy(dst[pos*s.rowW:], row)
		}
		src, dst = dst, src
		srcIsData = !srcIsData
		s.stats.Passes++
	}
	if !srcIsData {
		copy(s.data, s.aux)
	}
}

func (s *sorter) singleBucket(count *[256]int, n int) bool {
	for _, c := range count {
		if c == n {
			return true
		}
		if c > 0 {
			return false
		}
	}
	return false
}

// msd recursively sorts rows [lo,hi) on key byte d. Bytes 0..d-1 are equal
// across the range by construction.
func (s *sorter) msd(lo, hi, d int) {
	for d < s.keyW {
		n := hi - lo
		if n <= s.cutoff {
			s.insertion(lo, hi, d)
			return
		}
		if s.pdqCutoff > 0 && n <= s.pdqCutoff {
			s.pdqBucket(lo, hi, d)
			return
		}
		var count [256]int
		for i := lo; i < hi; i++ {
			count[s.data[i*s.rowW+d]]++
		}
		if s.skip && s.singleBucket(&count, n) {
			// Every row shares this byte: advance to the next byte without
			// moving any data.
			s.stats.SkippedPasses++
			d++
			continue
		}

		// Scatter rows into aux ordered by bucket, then copy back.
		var offset [256]int
		sum := lo
		for b := 0; b < 256; b++ {
			offset[b] = sum
			sum += count[b]
		}
		pos := offset
		for i := lo; i < hi; i++ {
			row := s.data[i*s.rowW : (i+1)*s.rowW]
			p := pos[row[d]]
			pos[row[d]]++
			copy(s.aux[p*s.rowW:], row)
		}
		copy(s.data[lo*s.rowW:hi*s.rowW], s.aux[lo*s.rowW:hi*s.rowW])
		s.stats.Passes++

		// Recurse into each bucket on the next byte.
		for b := 0; b < 256; b++ {
			if count[b] > 1 {
				s.msd(offset[b], offset[b]+count[b], d+1)
			}
		}
		return
	}
}

// insertion sorts rows [lo,hi) comparing key bytes from d onward (the
// preceding bytes are equal across the range).
func (s *sorter) insertion(lo, hi, d int) {
	if d >= s.keyW {
		return
	}
	if s.tmp == nil {
		s.tmp = make([]byte, s.rowW)
	}
	tmp := s.tmp
	for i := lo + 1; i < hi; i++ {
		j := i
		if !s.lessSuffix(j, j-1, d) {
			continue
		}
		copy(tmp, s.row(j))
		for j > lo && bytes.Compare(tmp[d:s.keyW], s.row(j - 1)[d:s.keyW]) < 0 {
			copy(s.row(j), s.row(j-1))
			j--
		}
		copy(s.row(j), tmp)
	}
}

// pdqBucket sorts rows [lo,hi) with pdqsort comparing key bytes from d
// onward — the hybrid MSD+pdqsort of the paper's Future Work.
func (s *sorter) pdqBucket(lo, hi, d int) {
	s.stats.PdqBuckets++
	r := sortalgo.NewRows(s.data[lo*s.rowW:hi*s.rowW], s.rowW)
	keyW := s.keyW
	r.Compare = func(a, b []byte) int { return bytes.Compare(a[d:keyW], b[d:keyW]) }
	r.Pdqsort()
}

func (s *sorter) row(i int) []byte { return s.data[i*s.rowW : (i+1)*s.rowW] }

func (s *sorter) lessSuffix(i, j, d int) bool {
	return bytes.Compare(s.row(i)[d:s.keyW], s.row(j)[d:s.keyW]) < 0
}
