package radix

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSortByKeyWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 15
	for _, keyW := range []int{4, 8, 16} {
		rowW := (keyW + 4 + 7) &^ 7
		base := makeRows(n, rowW, keyW, rng)
		b.Run(fmt.Sprintf("keyW=%d", keyW), func(b *testing.B) {
			data := make([]byte, len(base))
			b.SetBytes(int64(len(base)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(data, base)
				Sort(data, rowW, keyW)
			}
		})
	}
}

func BenchmarkSortDuplicateHeavy(b *testing.B) {
	// Few distinct keys: the single-bucket skip and small-bucket insertion
	// paths dominate.
	rng := rand.New(rand.NewSource(2))
	const n, rowW, keyW = 1 << 15, 16, 8
	base := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		base[i*rowW+6] = byte(rng.Intn(4))
		base[i*rowW+7] = byte(rng.Intn(4))
	}
	b.ReportAllocs()
	data := make([]byte, len(base))
	for i := 0; i < b.N; i++ {
		copy(data, base)
		Sort(data, rowW, keyW)
	}
}
