package radix

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// makeRows builds n rows of rowW bytes whose first keyW bytes are random key
// material and whose remaining bytes are a per-row payload marker derived
// from the key, so tests can verify that payload travels with its key.
func makeRows(n, rowW, keyW int, rng *rand.Rand) []byte {
	data := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		row := data[i*rowW : (i+1)*rowW]
		rng.Read(row[:keyW])
		sum := byte(0)
		for _, b := range row[:keyW] {
			sum += b
		}
		for j := keyW; j < rowW; j++ {
			row[j] = sum
		}
	}
	return data
}

func sortedOracle(data []byte, rowW, keyW int) []byte {
	n := len(data) / rowW
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = append([]byte(nil), data[i*rowW:(i+1)*rowW]...)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return bytes.Compare(rows[i][:keyW], rows[j][:keyW]) < 0
	})
	out := make([]byte, 0, len(data))
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}

func checkSorted(t *testing.T, data []byte, rowW, keyW int, ctx string) {
	t.Helper()
	n := len(data) / rowW
	for i := 1; i < n; i++ {
		prev := data[(i-1)*rowW : (i-1)*rowW+keyW]
		cur := data[i*rowW : i*rowW+keyW]
		if bytes.Compare(prev, cur) > 0 {
			t.Fatalf("%s: rows %d,%d out of order", ctx, i-1, i)
		}
	}
}

func TestSortMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ rowW, keyW int }{
		{4, 4}, {8, 4}, {8, 8}, {16, 8}, {16, 12}, {24, 17}, {12, 1},
	}
	for _, sz := range []int{0, 1, 2, 24, 25, 100, 1000, 5000} {
		for _, sh := range shapes {
			data := makeRows(sz, sh.rowW, sh.keyW, rng)
			want := sortedOracle(data, sh.rowW, sh.keyW)
			Sort(data, sh.rowW, sh.keyW)
			if !bytes.Equal(data, want) {
				t.Fatalf("n=%d rowW=%d keyW=%d: mismatch with oracle", sz, sh.rowW, sh.keyW)
			}
		}
	}
}

func TestLSDIsStable(t *testing.T) {
	// Keys with few distinct values; payload records original index. LSD
	// radix sort must preserve input order among equal keys.
	rng := rand.New(rand.NewSource(12))
	const n, rowW, keyW = 2000, 8, 2
	data := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		row := data[i*rowW:]
		row[0] = byte(rng.Intn(3))
		row[1] = byte(rng.Intn(3))
		binary.BigEndian.PutUint32(row[4:], uint32(i))
	}
	SortOpts(data, rowW, keyW, Options{ForceLSD: true})
	for i := 1; i < n; i++ {
		prev, cur := data[(i-1)*rowW:(i-1)*rowW+rowW], data[i*rowW:i*rowW+rowW]
		c := bytes.Compare(prev[:keyW], cur[:keyW])
		if c > 0 {
			t.Fatalf("not sorted at %d", i)
		}
		if c == 0 && binary.BigEndian.Uint32(prev[4:]) > binary.BigEndian.Uint32(cur[4:]) {
			t.Fatalf("LSD unstable at %d", i)
		}
	}
}

func TestMSDForcedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := makeRows(3000, 8, 4, rng) // keyW=4 would normally pick LSD
	want := sortedOracle(data, 8, 4)
	st := SortOpts(data, 8, 4, Options{ForceMSD: true})
	if !st.UsedMSD {
		t.Fatal("ForceMSD ignored")
	}
	if !bytes.Equal(data, want) {
		t.Fatal("forced MSD mismatch")
	}
}

func TestSelectionRule(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d4 := makeRows(500, 8, 4, rng)
	if st := Sort(d4, 8, 4); st.UsedMSD {
		t.Fatal("keyW=4 should select LSD")
	}
	d5 := makeRows(500, 8, 5, rng)
	if st := Sort(d5, 8, 5); !st.UsedMSD {
		t.Fatal("keyW=5 should select MSD")
	}
}

func TestSingleBucketSkip(t *testing.T) {
	// All rows share the first 6 key bytes; with skip enabled, MSD should
	// skip those levels without scatter passes.
	rng := rand.New(rand.NewSource(15))
	const n, rowW, keyW = 5000, 8, 8
	data := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		row := data[i*rowW:]
		copy(row, []byte{1, 2, 3, 4, 5, 6})
		row[6] = byte(rng.Intn(256))
		row[7] = byte(rng.Intn(256))
	}
	cp := append([]byte(nil), data...)

	st := Sort(data, rowW, keyW)
	if st.SkippedPasses < 6 {
		t.Fatalf("expected >=6 skipped passes, got %d", st.SkippedPasses)
	}
	checkSorted(t, data, rowW, keyW, "with skip")

	st2 := SortOpts(cp, rowW, keyW, Options{NoSingleBucketSkip: true})
	if st2.SkippedPasses != 0 {
		t.Fatalf("skip disabled but %d passes skipped", st2.SkippedPasses)
	}
	if !bytes.Equal(data, cp) {
		t.Fatal("skip on/off disagree")
	}
}

func TestLSDSkipOnConstantBytes(t *testing.T) {
	// 4-byte keys whose middle two bytes are constant: two LSD passes must
	// be skipped.
	rng := rand.New(rand.NewSource(16))
	const n, rowW, keyW = 1000, 4, 4
	data := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		row := data[i*rowW:]
		row[0] = byte(rng.Intn(256))
		row[1] = 0xAA
		row[2] = 0xBB
		row[3] = byte(rng.Intn(256))
	}
	st := Sort(data, rowW, keyW)
	if st.SkippedPasses != 2 {
		t.Fatalf("expected 2 skipped passes, got %d", st.SkippedPasses)
	}
	checkSorted(t, data, rowW, keyW, "lsd skip")
}

func TestPayloadTravelsWithKey(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, force := range []Options{{ForceLSD: true}, {ForceMSD: true}} {
		data := makeRows(2000, 12, 6, rng)
		SortOpts(data, 12, 6, force)
		for i := 0; i < len(data)/12; i++ {
			row := data[i*12 : (i+1)*12]
			sum := byte(0)
			for _, b := range row[:6] {
				sum += b
			}
			for j := 6; j < 12; j++ {
				if row[j] != sum {
					t.Fatalf("payload separated from key at row %d (force=%+v)", i, force)
				}
			}
		}
	}
}

func TestInsertionCutoffOption(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	data := makeRows(4000, 8, 8, rng)
	want := sortedOracle(data, 8, 8)
	SortOpts(data, 8, 8, Options{InsertionCutoff: 128})
	if !bytes.Equal(data, want) {
		t.Fatal("custom cutoff mismatch")
	}
}

func TestSortPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Sort(make([]byte, 7), 4, 4) })
	mustPanic(func() { Sort(make([]byte, 8), 4, 5) })
	mustPanic(func() { Sort(make([]byte, 8), 0, 0) })
}

func TestSortQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func(nRows uint16, keySel uint8) bool {
		n := int(nRows) % 3000
		keyW := 1 + int(keySel)%12
		rowW := keyW + 4
		if rowW%2 == 1 {
			rowW++
		}
		data := makeRows(n, rowW, keyW, rng)
		want := sortedOracle(data, rowW, keyW)
		Sort(data, rowW, keyW)
		return bytes.Equal(data, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridPdqCutoffMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, cutoff := range []int{64, 512, 4096} {
		data := makeRows(6000, 16, 10, rng)
		want := sortedOracle(data, 16, 10)
		st := SortOpts(data, 16, 10, Options{PdqCutoff: cutoff})
		if !bytes.Equal(data, want) {
			t.Fatalf("cutoff=%d: hybrid sort mismatch", cutoff)
		}
		if !st.UsedMSD {
			t.Fatal("10-byte keys should use MSD")
		}
		if st.PdqBuckets == 0 {
			t.Fatalf("cutoff=%d: expected pdq buckets to be used", cutoff)
		}
	}
}

func TestHybridDisabledByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := makeRows(3000, 16, 10, rng)
	st := Sort(data, 16, 10)
	if st.PdqBuckets != 0 {
		t.Fatal("hybrid should be off by default")
	}
}

// TestSortStable pins the stability guarantee the duplicate-group run sort
// depends on: rows with byte-equal key prefixes keep their input order, in
// both the LSD and MSD variants and through the insertion fallback.
func TestSortStable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct {
		name     string
		keyWidth int
		opt      Options
	}{
		{"lsd", 4, Options{}},
		{"msd", 8, Options{}},
		{"msd-insertion", 8, Options{InsertionCutoff: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const rowWidth, n = 16, 3000
			data := make([]byte, n*rowWidth)
			for i := 0; i < n; i++ {
				row := data[i*rowWidth:]
				// Tiny key domain: massive duplicate groups.
				binary.BigEndian.PutUint64(row, uint64(rng.Intn(7)))
				binary.BigEndian.PutUint64(row[8:], uint64(i)) // input order tag
			}
			SortOpts(data, rowWidth, tc.keyWidth, tc.opt)
			for i := 1; i < n; i++ {
				prev, cur := data[(i-1)*rowWidth:i*rowWidth], data[i*rowWidth:(i+1)*rowWidth]
				c := bytes.Compare(prev[:tc.keyWidth], cur[:tc.keyWidth])
				if c > 0 {
					t.Fatalf("out of order at %d", i)
				}
				if c == 0 && binary.BigEndian.Uint64(prev[8:]) > binary.BigEndian.Uint64(cur[8:]) {
					t.Fatalf("stability violated at %d", i)
				}
			}
		})
	}
}
