// Package colsort implements the columnar (DSM) sorting approaches of
// Section IV-A of the paper. A columnar format cannot move tuples, so both
// approaches sort an array of row indices and leave the column data in
// place — which is precisely why they lose cache locality as inputs grow.
//
// Two comparison strategies are provided:
//
//   - Tuple-at-a-time: one comparator walks the key columns of both tuples
//     until it finds inequality. Ties cause random accesses into later
//     columns and a data-dependent branch per column.
//   - Subsort: sort all indices by the first column only (a branch-free,
//     single-column comparator), then find runs of ties and recursively sort
//     each run by the next column.
package colsort

import "rowsort/internal/sortalgo"

// TupleAtATime sorts the tuples of cols (parallel key columns) with a
// multi-column comparator and returns the sorted row indices.
func TupleAtATime(cols [][]uint32, alg sortalgo.Algorithm) []uint32 {
	idx := identity(len(cols[0]))
	less := func(a, b uint32) bool {
		for _, col := range cols {
			va, vb := col[a], col[b]
			if va != vb {
				return va < vb
			}
		}
		return false
	}
	sortalgo.SortSlice(alg, idx, less)
	return idx
}

// Subsort sorts the tuples of cols column by column and returns the sorted
// row indices: the whole index array is sorted on column 0 with a
// single-column comparator, then every run of equal values is sorted on
// column 1, and so on.
func Subsort(cols [][]uint32, alg sortalgo.Algorithm) []uint32 {
	idx := identity(len(cols[0]))
	subsortRange(cols, idx, 0, alg)
	return idx
}

func subsortRange(cols [][]uint32, idx []uint32, c int, alg sortalgo.Algorithm) {
	col := cols[c]
	sortalgo.SortSlice(alg, idx, func(a, b uint32) bool { return col[a] < col[b] })
	if c+1 == len(cols) {
		return
	}
	// Identify runs of tied values and recurse into the next column.
	runStart := 0
	for i := 1; i <= len(idx); i++ {
		if i == len(idx) || col[idx[i]] != col[idx[runStart]] {
			if i-runStart > 1 {
				subsortRange(cols, idx[runStart:i], c+1, alg)
			}
			runStart = i
		}
	}
}

func identity(n int) []uint32 {
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	return idx
}
