package colsort

import (
	"sort"
	"testing"

	"rowsort/internal/sortalgo"
	"rowsort/internal/workload"
)

// oracleOrder returns row indices sorted lexicographically by the key
// columns, stably.
func oracleOrder(cols [][]uint32) []uint32 {
	idx := make([]uint32, len(cols[0]))
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, col := range cols {
			va, vb := col[idx[a]], col[idx[b]]
			if va != vb {
				return va < vb
			}
		}
		return false
	})
	return idx
}

// tuplesEqual checks that two index orders produce identical tuple
// sequences (they may differ in the order of fully tied tuples).
func tuplesEqual(cols [][]uint32, a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for _, col := range cols {
			if col[a[i]] != col[b[i]] {
				return false
			}
		}
	}
	return true
}

func TestApproachesMatchOracle(t *testing.T) {
	algs := []sortalgo.Algorithm{sortalgo.AlgIntrosort, sortalgo.AlgStable, sortalgo.AlgPdq}
	for _, dist := range workload.StandardDists() {
		for numKeys := 1; numKeys <= 4; numKeys++ {
			cols := dist.Generate(3000, numKeys, 51)
			want := oracleOrder(cols)
			for _, alg := range algs {
				for name, approach := range map[string]func([][]uint32, sortalgo.Algorithm) []uint32{
					"tuple": TupleAtATime, "subsort": Subsort,
				} {
					got := approach(cols, alg)
					if !tuplesEqual(cols, got, want) {
						t.Fatalf("%s/%v on %s keys=%d: wrong order", name, alg, dist, numKeys)
					}
				}
			}
		}
	}
}

func TestIndicesArePermutation(t *testing.T) {
	cols := workload.Dist{P: 1}.Generate(1000, 3, 52)
	for _, got := range [][]uint32{
		TupleAtATime(cols, sortalgo.AlgPdq),
		Subsort(cols, sortalgo.AlgIntrosort),
	} {
		seen := make([]bool, 1000)
		for _, i := range got {
			if seen[i] {
				t.Fatal("duplicate index")
			}
			seen[i] = true
		}
	}
}

func TestSmallAndEmptyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		cols := [][]uint32{make([]uint32, n), make([]uint32, n)}
		for i := 0; i < n; i++ {
			cols[0][i] = uint32(n - i)
			cols[1][i] = uint32(i)
		}
		if got := TupleAtATime(cols, sortalgo.AlgIntrosort); len(got) != n {
			t.Fatalf("n=%d: got %d indices", n, len(got))
		}
		if got := Subsort(cols, sortalgo.AlgPdq); len(got) != n {
			t.Fatalf("n=%d: got %d indices", n, len(got))
		}
	}
}

func TestSubsortSingleColumn(t *testing.T) {
	cols := [][]uint32{{5, 3, 9, 3, 1}}
	got := Subsort(cols, sortalgo.AlgStable)
	want := oracleOrder(cols)
	if !tuplesEqual(cols, got, want) {
		t.Fatalf("single column subsort wrong: %v", got)
	}
}
