// Package analysis is rowsort's in-tree static-analysis framework: a
// stdlib-only loader (go list + go/parser + go/types, no golang.org/x/tools
// dependency), an annotation convention that marks the functions carrying
// the paper's un-typeable invariants, and a driver that runs a suite of
// analyzers over the module and reports file:line diagnostics.
//
// The sort pipeline's correctness rests on properties the Go type system
// cannot express: normalized keys must be byte-comparable after encoding
// (sign-flipped integers, order-preserving floats, big-endian layout),
// comparators must be pure so radix sort, pdqsort and the Merge Path
// partitioning agree on one order, hot loops must stay allocation- and
// lock-free for the paper's performance figures to hold, and every spill
// file must flow through the sorter's tracked-removal path. Each analyzer
// in the analyzers/ subdirectories machine-checks one of those contracts;
// cmd/rowsortlint runs the suite in CI.
//
// # Annotations
//
// Invariants attach to functions through doc-comment directives:
//
//	//rowsort:hotpath    — the function and everything it statically calls
//	                       inside the module must not allocate, call fmt,
//	                       box values into interfaces, take locks, or leak
//	                       capturing closures (analyzer hotpathalloc).
//	//rowsort:pure       — the function (and any comparator closures it
//	                       returns) must not write captured or global
//	                       state (analyzer purecmp).
//	//rowsort:keyencoder — the function writes normalized key bytes and
//	                       must use order-preserving encodings only
//	                       (analyzer keyorder).
//	//rowsort:pipeline   — the function spawns pipeline goroutines; every
//	                       go statement must be joined before the pipeline
//	                       is torn down, and spawned worker loops must be
//	                       cancelable (analyzers goroutinejoin, ctxdone).
//
// A finding that is intentional is suppressed in place, with a mandatory
// justification:
//
//	//rowsort:allow <analyzer> <why this is safe>
//
// The directive suppresses that analyzer's diagnostics on its own line and
// the line below it. A suppression without a justification is itself a
// diagnostic.
package analysis

import (
	"fmt"
	"go/token"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// Message states the violated invariant and the offending construct.
	Message string `json:"message"`

	// Flattened position for the JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run is invoked once per analyzed
// package with a Pass scoped to it; diagnostics may land in any file of the
// universe (interprocedural analyzers follow calls across packages).
type Analyzer struct {
	// Name identifies the analyzer in output and in //rowsort:allow.
	Name string
	// Doc is the one-line description shown by rowsortlint -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// U is the loaded universe: every analyzable module package plus the
	// shared indexes (declarations, annotations, suppressions).
	U *Universe

	analyzer *Analyzer
	sink     func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.U.Fset.Position(pos)
	p.sink(Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}
