// Package fixture exercises the ctxdone analyzer: loops in goroutines
// spawned by //rowsort:pipeline functions must be able to observe their
// stop channel.
package fixture

func process(v int) int { return v + 1 }

// goodSelectLoop watches the stop channel alongside its input.
//
//rowsort:pipeline
func goodSelectLoop(in chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case v := <-in:
				process(v)
			case <-stop:
				return
			}
		}
	}()
}

// goodPollingLoop uses a default-guarded select, the prefetcher's shape.
//
//rowsort:pipeline
func goodPollingLoop(out chan int, stop chan struct{}) {
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			select {
			case out <- process(i):
			case <-stop:
				return
			}
		}
	}()
}

// goodRangeOverChannel is poisoned by the sender's close.
//
//rowsort:pipeline
func goodRangeOverChannel(in chan int) {
	go func() {
		for v := range in {
			process(v)
		}
	}()
}

// badBareReceive blocks on its input with no way to see the stop.
//
//rowsort:pipeline
func badBareReceive(in chan int, stop chan struct{}) {
	go func() {
		for {
			v := <-in // want "blocking receive in a worker loop"
			process(v)
		}
	}()
}

// badBareSend blocks on a full output buffer forever.
//
//rowsort:pipeline
func badBareSend(out chan int, stop chan struct{}) {
	go func() {
		for i := 0; ; i++ {
			out <- process(i) // want "blocking send in a worker loop"
		}
	}()
}

// badSingleCaseSelect is a bare receive wearing a select.
//
//rowsort:pipeline
func badSingleCaseSelect(in chan int) {
	go func() {
		for {
			select { // want "single-case select"
			case v := <-in:
				process(v)
			}
		}
	}()
}

// badNamedWorker: the loop is checked through the static call, not just
// literals.
//
//rowsort:pipeline
func badNamedWorker(in chan int) {
	go drain(in)
}

func drain(in chan int) {
	for {
		v := <-in // want "blocking receive in a worker loop"
		process(v)
	}
}

// goodSpawnerLoop: the blocking acquire sits in the pipeline function
// itself, not in a worker — spawner backpressure is fine.
//
//rowsort:pipeline
func goodSpawnerLoop(sem chan struct{}, n int) {
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func() {
			process(1)
			<-sem
		}()
	}
}

// unannotated workers are out of scope.
func unannotatedBareReceive(in chan int) {
	go func() {
		for {
			v := <-in
			process(v)
		}
	}()
}
