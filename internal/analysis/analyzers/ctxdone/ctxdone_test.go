package ctxdone_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/ctxdone"
)

func TestCtxDone(t *testing.T) {
	analysistest.Run(t, "testdata/ctxdone", ctxdone.Analyzer)
}
