// Package ctxdone checks that pipeline worker loops can observe
// cancellation. A goroutine spawned by a //rowsort:pipeline function that
// loops over channel operations is the pipeline's steady state; if one of
// those operations blocks unconditionally — a bare send into a full buffer,
// a bare receive from an idle producer — the worker can never see its stop
// channel close, and the pipeline's teardown deadlocks waiting for the
// join that goroutinejoin demanded.
//
// Inside each loop of a spawned goroutine body:
//
//   - a send or receive outside any select is flagged: it must be wrapped
//     in a select that also watches the stop/poison channel;
//   - a select with a single comm case and no default is flagged: it is a
//     bare operation in disguise and observes nothing else.
//
// Ranging over a channel is exempt — closing the channel is its poison, and
// that close is the sender's obligation (analyzer chanclose). Loops in the
// pipeline function itself (the spawner) are not checked: a semaphore
// acquire in a spawn loop blocks the caller, not a worker.
package ctxdone

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags worker loops that cannot observe cancellation.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdone",
	Doc:  "loops in //rowsort:pipeline goroutines must select on their stop channel",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.U.HasAnnotation(fn, analysis.AnnotPipeline) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, pkg := spawnedBody(pass, gs)
				if body != nil {
					checkWorker(pass, pkg.Info, body)
				}
				return true
			})
		}
	}
}

// checkWorker examines every loop of one spawned goroutine body.
func checkWorker(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkWorker(pass, info, n.Body)
			return false
		case *ast.ForStmt:
			checkLoopBody(pass, n.Body)
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					return true // poisoned by the sender's close
				}
			}
			checkLoopBody(pass, n.Body)
		}
		return true
	})
}

// checkLoopBody flags the unguarded channel operations directly inside one
// loop body. Nested loops are visited by checkWorker's walk; select
// subtrees are judged as a whole and not descended into.
func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SelectStmt:
			comm, hasDefault := 0, false
			for _, cl := range n.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				} else {
					comm++
				}
			}
			if comm == 1 && !hasDefault {
				pass.Reportf(n.Pos(), "single-case select in a worker loop cannot observe cancellation; add a stop case or a default")
			}
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "blocking send in a worker loop outside select; the goroutine cannot observe cancellation while it waits")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "blocking receive in a worker loop outside select; the goroutine cannot observe cancellation while it waits")
				return false
			}
		}
		return true
	})
}

// spawnedBody resolves the body a go statement runs: the literal itself, or
// the declaration of a statically known callee.
func spawnedBody(pass *analysis.Pass, gs *ast.GoStmt) (*ast.BlockStmt, *analysis.Package) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg
	}
	var fn *types.Func
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if node, ok := pass.U.FuncDecl(fn); ok && node.Decl.Body != nil {
		return node.Decl.Body, node.Pkg
	}
	return nil, nil
}
