// Package fixture exercises the atomicfield analyzer.
package fixture

import "sync/atomic"

type counters struct {
	hits  int64
	reads int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) report() int64 {
	return c.hits // want "plain access to hits races"
}

var ops int64

func addOp() {
	atomic.AddInt64(&ops, 1)
}

func readOps() int64 {
	return ops // want "plain access to ops races"
}

// readsAtomic touches reads atomically at every site: clean.
func (c *counters) readsAtomic() int64 {
	atomic.AddInt64(&c.reads, 1)
	return atomic.LoadInt64(&c.reads)
}

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct{ n int64 }

func (p *plainOnly) inc() { p.n++ }

func (p *plainOnly) get() int64 { return p.n }
