// Package fixture exercises the atomicfield analyzer.
package fixture

import "sync/atomic"

type counters struct {
	hits  int64
	reads int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) report() int64 {
	return c.hits // want "plain access to hits races"
}

var ops int64

func addOp() {
	atomic.AddInt64(&ops, 1)
}

func readOps() int64 {
	return ops // want "plain access to ops races"
}

// readsAtomic touches reads atomically at every site: clean.
func (c *counters) readsAtomic() int64 {
	atomic.AddInt64(&c.reads, 1)
	return atomic.LoadInt64(&c.reads)
}

// plainOnly is never touched atomically, so plain access is fine.
type plainOnly struct{ n int64 }

func (p *plainOnly) inc() { p.n++ }

func (p *plainOnly) get() int64 { return p.n }

// progress uses the typed sync/atomic API, like obs.Progress.
type progress struct {
	rows  atomic.Int64
	done  atomic.Bool
	ticks [3]atomic.Int64
}

// methods and explicit addresses are the legitimate uses: clean.
func (p *progress) advance(n int64) {
	p.rows.Add(n)
	p.ticks[0].Add(1)
	p.done.Store(true)
	sink(&p.rows)
}

func sink(*atomic.Int64) {}

func (p *progress) snapshot() int64 {
	_ = p.rows     // want "sync/atomic value of type sync/atomic.Int64 copied"
	_ = p.ticks[1] // want "sync/atomic value of type sync/atomic.Int64 copied"
	return p.rows.Load()
}

func swap(p *progress) {
	var scratch atomic.Int64 // a declaration is not a copy: clean
	scratch.Store(p.rows.Load())
	// Assigning copies both sides: the write tears, the read races.
	scratch = p.rows // want "sync/atomic value" "sync/atomic value"
	_ = scratch.Load()
}
