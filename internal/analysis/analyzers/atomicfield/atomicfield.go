// Package atomicfield checks that any variable or struct field touched
// through sync/atomic anywhere in the module is touched atomically
// everywhere. The telemetry layer (internal/obs) and the sort counters
// (core.SortStats) are updated concurrently by merge and gather workers; a
// single plain read or write mixed in with the atomic ones is a data race
// the race detector only catches if a test happens to hit the interleaving.
// The analyzer makes the property structural: it collects every address
// passed to a sync/atomic call, then flags every other plain access to the
// same variable or field.
//
// It also covers the typed API (atomic.Int64, atomic.Bool, ...), which the
// progress counters of obs.Progress and the recorder's phase arrays use:
// any expression of a sync/atomic struct type that is not the receiver of
// a method call or explicitly addressed is a by-value copy — the copy is
// racy to produce and useless to keep — and is flagged.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags plain accesses to atomically-accessed variables.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:  run,
}

// atomicFacts is the universe-wide collection result: the variables with at
// least one sync/atomic access, and the positions of the identifiers that
// appear inside those atomic calls (so the checking sweep can skip them).
type atomicFacts struct {
	vars    map[*types.Var]bool
	allowed map[token.Pos]bool
}

func run(pass *analysis.Pass) {
	facts := pass.U.Memo("atomicfield.facts", func() any {
		return collect(pass.U)
	}).(*atomicFacts)
	for _, file := range pass.Pkg.Files {
		checkTypedValues(pass, file)
		if len(facts.vars) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				v, ok := pass.Pkg.Info.Uses[n.Sel].(*types.Var)
				if ok && v.IsField() && facts.vars[v] && !facts.allowed[n.Sel.Pos()] {
					pass.Reportf(n.Sel.Pos(), "plain access to %s races with its sync/atomic use; access it atomically everywhere", v.Name())
				}
			case *ast.Ident:
				v, ok := pass.Pkg.Info.Uses[n].(*types.Var)
				if ok && !v.IsField() && facts.vars[v] && !facts.allowed[n.Pos()] {
					pass.Reportf(n.Pos(), "plain access to %s races with its sync/atomic use; access it atomically everywhere", v.Name())
				}
			}
			return true
		})
	}
}

// checkTypedValues flags by-value uses of the sync/atomic struct types
// (atomic.Int64 and friends). Two passes over the file: the first marks the
// contexts where an atomic value legitimately appears without its address
// escaping — as the receiver of a selector (p.RowsIngested.Add(1)) or the
// operand of an explicit & — and the second reports every other expression
// of an atomic type: those are copies, which tear under concurrent Store
// and decouple the copy from the shared counter.
func checkTypedValues(pass *analysis.Pass, file *ast.File) {
	info := pass.Pkg.Info
	allowed := map[ast.Node]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			x := ast.Unparen(n.X)
			if isAtomicType(info.TypeOf(x)) {
				allowed[x] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				x := ast.Unparen(n.X)
				if isAtomicType(info.TypeOf(x)) {
					allowed[x] = true
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || allowed[n] {
			return true
		}
		switch e := expr.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		case *ast.Ident:
			// Only value uses: skip declarations and the Sel half of
			// selectors (neither has a value entry in Types).
			if info.Defs[e] != nil {
				return true
			}
		default:
			return true
		}
		tv, ok := info.Types[expr]
		if !ok || !tv.IsValue() || !isAtomicType(tv.Type) {
			return true
		}
		pass.Reportf(expr.Pos(), "sync/atomic value of type %s copied or accessed by value; use its methods or take its address", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
		return false
	})
}

// isAtomicType reports whether t is one of sync/atomic's struct types
// (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Value, Pointer[T]).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// collect sweeps the whole universe for &target arguments of sync/atomic
// calls.
func collect(u *analysis.Universe) *atomicFacts {
	facts := &atomicFacts{vars: make(map[*types.Var]bool), allowed: make(map[token.Pos]bool)}
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				switch target := ast.Unparen(addr.X).(type) {
				case *ast.SelectorExpr:
					if v, ok := pkg.Info.Uses[target.Sel].(*types.Var); ok {
						facts.vars[v] = true
						facts.allowed[target.Sel.Pos()] = true
					}
				case *ast.Ident:
					if v, ok := pkg.Info.Uses[target].(*types.Var); ok {
						facts.vars[v] = true
						facts.allowed[target.Pos()] = true
					}
				}
				return true
			})
		}
	}
	return facts
}
