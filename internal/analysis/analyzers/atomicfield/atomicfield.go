// Package atomicfield checks that any variable or struct field touched
// through sync/atomic anywhere in the module is touched atomically
// everywhere. The telemetry layer (internal/obs) and the sort counters
// (core.SortStats) are updated concurrently by merge and gather workers; a
// single plain read or write mixed in with the atomic ones is a data race
// the race detector only catches if a test happens to hit the interleaving.
// The analyzer makes the property structural: it collects every address
// passed to a sync/atomic call, then flags every other plain access to the
// same variable or field.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags plain accesses to atomically-accessed variables.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:  run,
}

// atomicFacts is the universe-wide collection result: the variables with at
// least one sync/atomic access, and the positions of the identifiers that
// appear inside those atomic calls (so the checking sweep can skip them).
type atomicFacts struct {
	vars    map[*types.Var]bool
	allowed map[token.Pos]bool
}

func run(pass *analysis.Pass) {
	facts := pass.U.Memo("atomicfield.facts", func() any {
		return collect(pass.U)
	}).(*atomicFacts)
	if len(facts.vars) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				v, ok := pass.Pkg.Info.Uses[n.Sel].(*types.Var)
				if ok && v.IsField() && facts.vars[v] && !facts.allowed[n.Sel.Pos()] {
					pass.Reportf(n.Sel.Pos(), "plain access to %s races with its sync/atomic use; access it atomically everywhere", v.Name())
				}
			case *ast.Ident:
				v, ok := pass.Pkg.Info.Uses[n].(*types.Var)
				if ok && !v.IsField() && facts.vars[v] && !facts.allowed[n.Pos()] {
					pass.Reportf(n.Pos(), "plain access to %s races with its sync/atomic use; access it atomically everywhere", v.Name())
				}
			}
			return true
		})
	}
}

// collect sweeps the whole universe for &target arguments of sync/atomic
// calls.
func collect(u *analysis.Universe) *atomicFacts {
	facts := &atomicFacts{vars: make(map[*types.Var]bool), allowed: make(map[token.Pos]bool)}
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				switch target := ast.Unparen(addr.X).(type) {
				case *ast.SelectorExpr:
					if v, ok := pkg.Info.Uses[target.Sel].(*types.Var); ok {
						facts.vars[v] = true
						facts.allowed[target.Sel.Pos()] = true
					}
				case *ast.Ident:
					if v, ok := pkg.Info.Uses[target].(*types.Var); ok {
						facts.vars[v] = true
						facts.allowed[target.Pos()] = true
					}
				}
				return true
			})
		}
	}
	return facts
}
