package atomicfield_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/atomicfield", atomicfield.Analyzer)
}
