package keyorder_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/keyorder"
)

func TestKeyOrder(t *testing.T) {
	analysistest.Run(t, "testdata/keyorder", keyorder.Analyzer)
}
