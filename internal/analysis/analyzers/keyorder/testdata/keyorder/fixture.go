// Package fixture exercises the keyorder analyzer.
package fixture

import (
	"encoding/binary"
	"math"
	"strings"
)

//rowsort:keyencoder
func badLE(dst []byte, v uint32) {
	binary.LittleEndian.PutUint32(dst, v) // want "little-endian PutUint32"
}

//rowsort:keyencoder
func badNoFlip(dst []byte, v int64) {
	binary.BigEndian.PutUint64(dst, uint64(v)) // want "without flipping the sign bit"
}

//rowsort:keyencoder
func badWidth(dst []byte, v int16) {
	binary.BigEndian.PutUint64(dst, uint64(v)) // want "width-changing signed conversion"
}

//rowsort:keyencoder
func badFloat(dst []byte, f float64) {
	binary.BigEndian.PutUint64(dst, math.Float64bits(f)) // want "raw math.Float64bits"
}

// goodFlip is the blessed idiom: same-width conversion immediately XORed
// with the sign bit, written big-endian.
//
//rowsort:keyencoder
func goodFlip(dst []byte, v int64) {
	binary.BigEndian.PutUint64(dst, uint64(v)^(1<<63))
}

//rowsort:keyencoder
func goodU16(dst []byte, v int16) {
	binary.BigEndian.PutUint16(dst, uint16(v)^0x8000)
}

// plain is unannotated: little-endian is fine outside key encoders.
func plain(dst []byte, v int32) {
	binary.LittleEndian.PutUint32(dst, uint32(v))
}

//rowsort:keyencoder
func badFold(dst []byte, s string) {
	copy(dst, strings.ToLower(s)) // want "strings.ToLower folds full Unicode"
}

//rowsort:keyencoder
func badFoldEq(a, b string) bool {
	return strings.EqualFold(a, b) // want "strings.EqualFold folds full Unicode"
}

// goodCompare: non-folding strings functions stay allowed in encoders.
//
//rowsort:keyencoder
func goodCompare(a, b string) int {
	return strings.Compare(a, b)
}

// plainFold is unannotated: case folding is fine outside key encoders.
func plainFold(s string) string { return strings.ToUpper(s) }
