// Package keyorder checks that //rowsort:keyencoder functions emit
// order-preserving bytes. The whole normalized-key design rests on one
// identity: memcmp over encoded keys must equal the semantic comparison.
// Three encoding mistakes silently break it — little-endian writes (low
// byte first, so 256 sorts before 1), converting a signed value to
// unsigned without flipping the sign bit (negatives sort after positives),
// and raw IEEE-754 bit patterns for floats (negative floats sort
// descending). The analyzer flags all three inside annotated encoders:
//
//   - any binary.LittleEndian.PutUint*/AppendUint* call;
//   - any signed→unsigned integer conversion that is not immediately
//     XORed with the sign bit of the same width (the `uint64(v) ^ 1<<63`
//     idiom), or that changes width so the flip lands on the wrong bit;
//   - any direct math.Float32bits/Float64bits call — float columns must
//     go through the package's total-order float helpers instead;
//   - any strings case-folding call (ToLower/ToUpper/EqualFold and the
//     Special variants) — those fold full Unicode while the sort's
//     comparator folds ASCII through normkey's Collation.Apply, so an
//     encoder folding on its own produces keys the tie-break disagrees
//     with. Collation must go through Collation.Apply.
package keyorder

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"rowsort/internal/analysis"
)

// Analyzer flags order-breaking byte encodings in key encoders.
var Analyzer = &analysis.Analyzer{
	Name: "keyorder",
	Doc:  "key encoders must emit big-endian, sign-flipped, order-preserving bytes",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, n := range pass.U.AnnotatedFuncs(analysis.AnnotKeyEncoder) {
		if n.Pkg != pass.Pkg || n.Decl.Body == nil {
			continue
		}
		check(pass, n.Decl)
	}
}

func check(pass *analysis.Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info

	// First pass: find conversions that ARE correctly sign-flipped — the
	// direct operand of an XOR against the sign bit of the target width.
	flipped := make(map[ast.Expr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.XOR {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			conv, other := ast.Unparen(pair[0]), pair[1]
			width, ok := signedConversion(info, conv)
			if !ok {
				continue
			}
			if tv, ok := info.Types[other]; ok && tv.Value != nil &&
				constant.Compare(tv.Value, token.EQL, constant.MakeUint64(1<<(width-1))) {
				flipped[conv] = true
			}
		}
		return true
	})

	// Second pass: report the violations.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			checkSignedConv(pass, info, call, flipped)
			return true
		}
		checkEncodingCall(pass, info, call)
		return true
	})
}

// checkSignedConv flags signed→unsigned conversions that either change
// width or lack the immediate sign-bit XOR.
func checkSignedConv(pass *analysis.Pass, info *types.Info, conv *ast.CallExpr, flipped map[ast.Expr]bool) {
	width, ok := signedConversion(info, conv)
	if !ok {
		return
	}
	opWidth, ok := intWidth(info.Types[conv.Args[0]].Type)
	if !ok {
		return
	}
	from := info.Types[conv.Args[0]].Type
	to := info.Types[conv.Fun].Type
	if opWidth != width {
		pass.Reportf(conv.Pos(), "width-changing signed conversion %s to %s puts the sign flip on the wrong bit", from, to)
		return
	}
	if !flipped[conv] {
		pass.Reportf(conv.Pos(), "converts signed %s to %s without flipping the sign bit", from, to)
	}
}

// checkEncodingCall flags little-endian writes and raw float-bit calls.
func checkEncodingCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "encoding/binary":
		if recv, ok := sel.X.(*ast.SelectorExpr); ok && recv.Sel.Name == "LittleEndian" &&
			(strings.HasPrefix(fn.Name(), "PutUint") || strings.HasPrefix(fn.Name(), "AppendUint")) {
			pass.Reportf(call.Pos(), "little-endian %s breaks byte-comparability; use big-endian", fn.Name())
		}
	case "math":
		if fn.Name() == "Float32bits" || fn.Name() == "Float64bits" {
			pass.Reportf(call.Pos(), "raw math.%s does not order negative floats; use the total-order float helpers", fn.Name())
		}
	case "strings":
		switch fn.Name() {
		case "ToLower", "ToUpper", "EqualFold", "ToLowerSpecial", "ToUpperSpecial":
			pass.Reportf(call.Pos(), "strings.%s folds full Unicode, diverging from the comparator's ASCII collation; use Collation.Apply", fn.Name())
		}
	}
}

// signedConversion reports whether e is a conversion of a signed integer
// expression to an unsigned integer type, returning the target width.
func signedConversion(info *types.Info, e ast.Expr) (width int, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return 0, false
	}
	ft, okT := info.Types[call.Fun]
	if !okT || !ft.IsType() {
		return 0, false
	}
	width, unsigned := uintWidth(ft.Type)
	if !unsigned {
		return 0, false
	}
	at, okA := info.Types[call.Args[0]]
	if !okA || !isSignedInt(at.Type) {
		return 0, false
	}
	if at.Value != nil && constant.Sign(at.Value) >= 0 {
		return 0, false // non-negative constant: no sign bit to flip
	}
	return width, true
}

func isSignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

// uintWidth returns the bit width of an unsigned integer type.
func uintWidth(t types.Type) (int, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsUnsigned == 0 {
		return 0, false
	}
	switch b.Kind() {
	case types.Uint8:
		return 8, true
	case types.Uint16:
		return 16, true
	case types.Uint32:
		return 32, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, true
	}
	return 0, false
}

// intWidth returns the bit width of any integer type (int/uint count as 64:
// the module targets 64-bit platforms and the encoders run nowhere else).
func intWidth(t types.Type) (int, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0, false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8, true
	case types.Int16, types.Uint16:
		return 16, true
	case types.Int32, types.Uint32:
		return 32, true
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr, types.UntypedInt:
		return 64, true
	}
	return 0, false
}
