// Package goroutinejoin checks that pipeline goroutines are joined. The
// sort pipeline's stages — ingest workers, the spill prefetcher, parallel
// merge partitions — all spawn goroutines whose completion someone must
// observe before tearing the stage down: a worker still writing into a
// buffer after Close returned is a use-after-free in slow motion, and a
// goroutine nobody waits for can hold a broker reservation past the
// sort's end.
//
// The check is scoped by annotation: inside a function marked
// //rowsort:pipeline, every `go` statement must spawn a body that signals
// completion in a way the surrounding package observes —
//
//   - it calls Done on a sync.WaitGroup that the package Waits on, or
//   - it closes (or sends on) a channel that the package receives from
//     (directly, by range, or in a select).
//
// The spawned body is the function literal itself or, for `go x.method(...)`
// and `go fn(...)`, the statically resolved declaration; closures nested in
// the spawned body are searched too, since the join signal often sits in a
// defer. Goroutines that are deliberately detached (an HTTP server's Serve
// loop) simply stay un-annotated.
package goroutinejoin

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags pipeline goroutines with no observable join.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinejoin",
	Doc:  "go statements in //rowsort:pipeline functions must be joined via WaitGroup or channel",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.U.HasAnnotation(fn, analysis.AnnotPipeline) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					checkGo(pass, fd, gs)
				}
				return true
			})
		}
	}
}

// checkGo verifies one go statement in an annotated pipeline function.
func checkGo(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt) {
	body, bodyPkg := spawnedBody(pass, gs)
	if body == nil {
		// Dynamic target (func value, interface method): nothing to search.
		// The annotation is a promise about code we can see; an unresolvable
		// spawn is reported so the promise stays checkable.
		pass.Reportf(gs.Pos(), "%s spawns a goroutine whose body cannot be resolved statically; a //rowsort:pipeline function must spawn literals or named functions so the join is checkable", fd.Name.Name)
		return
	}

	// Evidence is searched in the spawning package and, for cross-package
	// calls, the callee's package: the Wait or the draining receive lives
	// with whoever owns the pipeline stage.
	ev := evidence(pass, pass.Pkg)
	if bodyPkg != nil && bodyPkg != pass.Pkg {
		other := evidence(pass, bodyPkg)
		merged := joinEvidence{waits: make(map[types.Object]bool), recvs: make(map[types.Object]bool)}
		for o := range ev.waits {
			merged.waits[o] = true
		}
		for o := range ev.recvs {
			merged.recvs[o] = true
		}
		for o := range other.waits {
			merged.waits[o] = true
		}
		for o := range other.recvs {
			merged.recvs[o] = true
		}
		ev = merged
	}

	info := pkgInfo(pass, bodyPkg)
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() with a matching wg.Wait() in scope.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isWaitGroupMethod(info, sel) {
					if k := objOf(info, sel.X); k != nil && ev.waits[k] {
						joined = true
					}
				}
			}
			// close(ch) with a matching receive in scope.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if k := objOf(info, n.Args[0]); k != nil && ev.recvs[k] {
					joined = true
				}
			}
		case *ast.SendStmt:
			// A completion send with a matching receive in scope.
			if k := objOf(info, n.Chan); k != nil && ev.recvs[k] {
				joined = true
			}
		}
		return true
	})
	if !joined {
		pass.Reportf(gs.Pos(), "%s spawns a goroutine that is never joined: no WaitGroup Done/Wait pair and no completion channel anyone receives from; the pipeline can tear down under it", fd.Name.Name)
	}
}

// spawnedBody resolves the body a go statement runs: the literal itself, or
// the declaration of a statically known callee (possibly in another
// package).
func spawnedBody(pass *analysis.Pass, gs *ast.GoStmt) (*ast.BlockStmt, *analysis.Package) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg
	}
	var fn *types.Func
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if node, ok := pass.U.FuncDecl(fn); ok && node.Decl.Body != nil {
		return node.Decl.Body, node.Pkg
	}
	return nil, nil
}

// joinEvidence is what one package offers as join observations.
type joinEvidence struct {
	// waits holds the objects (locals or struct fields) on which .Wait() is
	// called somewhere in the package.
	waits map[types.Object]bool
	// recvs holds the channel objects received from somewhere in the
	// package: <-ch, range ch, or a select comm clause.
	recvs map[types.Object]bool
}

// evidence scans (once per package, memoized) for Wait calls and channel
// receives.
func evidence(pass *analysis.Pass, pkg *analysis.Package) joinEvidence {
	return pass.U.Memo("goroutinejoin.evidence:"+pkg.Types.Path(), func() any {
		ev := joinEvidence{waits: make(map[types.Object]bool), recvs: make(map[types.Object]bool)}
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if isWaitGroupMethod(info, sel) {
							if k := objOf(info, sel.X); k != nil {
								ev.waits[k] = true
							}
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if k := objOf(info, n.X); k != nil {
							ev.recvs[k] = true
						}
					}
				case *ast.RangeStmt:
					if t, ok := info.Types[n.X]; ok {
						if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
							if k := objOf(info, n.X); k != nil {
								ev.recvs[k] = true
							}
						}
					}
				}
				return true
			})
		}
		return ev
	}).(joinEvidence)
}

// isWaitGroupMethod reports whether a selector names a method of
// sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// objOf resolves a channel or WaitGroup expression to a stable identity:
// the variable for a plain identifier, the field object for a selector
// (p.wg and pf.done mean the same field regardless of which receiver
// variable reaches them). Deeper expressions (p.inner.wg, chans[i]) have no
// stable identity and return nil.
func objOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// pkgInfo returns the type info to resolve nodes of the spawned body, which
// may live in another package than the spawning pass.
func pkgInfo(pass *analysis.Pass, bodyPkg *analysis.Package) *types.Info {
	if bodyPkg != nil {
		return bodyPkg.Info
	}
	return pass.Pkg.Info
}
