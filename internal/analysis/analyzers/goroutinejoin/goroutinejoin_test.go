package goroutinejoin_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/goroutinejoin"
)

func TestGoroutineJoin(t *testing.T) {
	analysistest.Run(t, "testdata/goroutinejoin", goroutinejoin.Analyzer)
}
