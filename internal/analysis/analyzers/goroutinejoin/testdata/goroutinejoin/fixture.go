// Package fixture exercises the goroutinejoin analyzer: inside a
// //rowsort:pipeline function, every spawned goroutine must be joined via a
// WaitGroup the package Waits on or a channel the package receives from.
package fixture

import "sync"

func work(n int) int { return n * 2 }

// goodWaitGroup joins its workers with Add/Done/Wait in one function.
//
//rowsort:pipeline
func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// goodDoneChannel joins through a completion channel.
//
//rowsort:pipeline
func goodDoneChannel() {
	done := make(chan struct{})
	go func() {
		work(1)
		close(done)
	}()
	<-done
}

// goodResultChannel joins by draining the results the goroutine sends.
//
//rowsort:pipeline
func goodResultChannel(n int) int {
	out := make(chan int)
	go func() {
		out <- work(n)
	}()
	return <-out
}

// pool mimics the ParallelSink shape: the spawn and the Wait live in
// different methods but share the struct's WaitGroup field.
type pool struct {
	wg sync.WaitGroup
	in chan int
}

func (p *pool) worker(ch chan int) {
	defer p.wg.Done()
	for v := range ch {
		work(v)
	}
}

// Spawn starts a worker joined by Close's Wait on the same field.
//
//rowsort:pipeline
func (p *pool) Spawn() {
	p.wg.Add(1)
	go p.worker(p.in)
}

func (p *pool) Close() {
	close(p.in)
	p.wg.Wait()
}

// badDetached spawns and forgets.
//
//rowsort:pipeline
func badDetached(n int) {
	go work(n) // want "never joined"
}

// badClosedButNeverReceived signals completion into the void: nobody in the
// package receives from the channel it closes.
//
//rowsort:pipeline
func badClosedButNeverReceived() {
	orphan := make(chan struct{})
	go func() { // want "never joined"
		work(1)
		close(orphan)
	}()
}

// badDynamic spawns a func value the analyzer cannot look into.
//
//rowsort:pipeline
func badDynamic(f func()) {
	go f() // want "cannot be resolved statically"
}

// unannotatedDetached is outside the pipeline contract: detaching is the
// caller's explicit choice (an HTTP Serve loop, a debug dump).
func unannotatedDetached(n int) {
	go work(n)
}
