// Package chanclose checks the channel close protocol the pipeline's
// poisoning discipline depends on: close is the sender's final act. A send
// that can follow a close panics the whole sort; a double close panics; a
// receiver closing the channel it drains races the sender. These are the
// three ways the range-over-channel poisoning idiom (Close closes the
// input, workers drain until the range ends) goes wrong.
//
// The core check is flow-sensitive, per function, over the may-analysis
// "this channel may already be closed here":
//
//   - close(ch) where ch may already be closed (or has a pending deferred
//     close) — double close panics;
//   - ch <- v where ch may already be closed — send on closed channel
//     panics;
//   - a deferred close is not "closed yet" on the paths that follow it, but
//     a second deferred close (or a direct close before return) is still a
//     double close.
//
// Channels are identified by their variable, or by base.field for
// single-level selectors (pf.stop); reassignment (including a range loop
// rebinding its iteration variable) clears the state, so closing each
// element of a channel slice in a loop is clean. A separate syntactic rule
// flags a function that closes a channel it only ever receives from.
package chanclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
	"rowsort/internal/analysis/flow"
)

// Analyzer flags close-protocol violations on channels.
var Analyzer = &analysis.Analyzer{
	Name: "chanclose",
	Doc:  "no send or close may follow a close; receivers do not close their input",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// chanKey identifies a channel within one function: a plain variable
// ({nil, v}) or a single-level selector base.field ({base, field}). Deeper
// paths have no stable identity and are not tracked.
type chanKey struct {
	base  types.Object
	field types.Object
}

// keyOf resolves a channel expression to its key; ok is false for
// untrackable expressions.
func keyOf(info *types.Info, e ast.Expr) (chanKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := info.Uses[e]
		if o == nil {
			o = info.Defs[e]
		}
		if v, ok := o.(*types.Var); ok {
			return chanKey{field: v}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return chanKey{}, false
		}
		bo := info.Uses[base]
		fo := info.Uses[e.Sel]
		if bo != nil && fo != nil {
			return chanKey{base: bo, field: fo}, true
		}
	}
	return chanKey{}, false
}

// Fact bits per channel key.
const (
	closed   = 1 << iota // a close has definitely-or-maybe executed
	deferred             // a deferred close is registered
)

type closeFact map[chanKey]uint8

func (f closeFact) clone() closeFact {
	out := make(closeFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// chanOp is one channel operation found in a CFG node.
type chanOp struct {
	key  chanKey
	pos  token.Pos
	kind int // opClose, opDeferClose, opSend, opKill
	name string
}

const (
	opClose = iota
	opDeferClose
	opSend
	opKill
)

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// nodeOps lists a node's channel operations in order. Nested literals
	// are their own bodies; a close inside one is not this function's close.
	// A range head rebinds its key/value per iteration (closing each element
	// of a channel slice in a loop is clean); the ranged-over expression
	// itself is untouched.
	nodeOps := func(n ast.Node) []chanOp {
		var ops []chanOp
		if rs, ok := n.(*ast.RangeStmt); ok {
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if k, ok := keyOf(info, e); ok {
					ops = append(ops, chanOp{key: k, kind: opKill})
				}
			}
			return ops
		}
		part := n
		deferredPart := false
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredPart = true
			part = d.Call
		}
		ast.Inspect(part, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
					if info.Uses[id] == types.Universe.Lookup("close") {
						if k, ok := keyOf(info, m.Args[0]); ok {
							kind := opClose
							if deferredPart {
								kind = opDeferClose
							}
							ops = append(ops, chanOp{key: k, pos: m.Pos(), kind: kind, name: exprString(m.Args[0])})
						}
					}
				}
			case *ast.SendStmt:
				if k, ok := keyOf(info, m.Chan); ok {
					ops = append(ops, chanOp{key: k, pos: m.Arrow, kind: opSend, name: exprString(m.Chan)})
				}
			case *ast.AssignStmt:
				// Any assignment to a tracked location rebinds it.
				for _, lhs := range m.Lhs {
					if k, ok := keyOf(info, lhs); ok {
						ops = append(ops, chanOp{key: k, kind: opKill})
					}
				}
			}
			return true
		})
		return ops
	}

	// apply pushes a node's operations through the fact; report is nil while
	// solving and set during the replay pass over the fixpoint facts.
	apply := func(in closeFact, ops []chanOp, report func(chanOp, uint8)) closeFact {
		out := in
		copied := false
		mutate := func(f func(closeFact)) {
			if !copied {
				out = out.clone()
				copied = true
			}
			f(out)
		}
		for _, op := range ops {
			bits := out[op.key]
			if report != nil {
				report(op, bits)
			}
			switch op.kind {
			case opClose:
				if bits&closed == 0 {
					mutate(func(f closeFact) { f[op.key] = bits | closed })
				}
			case opDeferClose:
				if bits&deferred == 0 {
					mutate(func(f closeFact) { f[op.key] = bits | deferred })
				}
			case opKill:
				if bits != 0 {
					mutate(func(f closeFact) { delete(f, op.key) })
				}
			}
		}
		return out
	}

	g := flow.Build(body)
	in := flow.Solve(g, closeFact{}, flow.Lattice[closeFact]{
		Join: func(a, b closeFact) closeFact {
			out := a.clone()
			for k, v := range b {
				out[k] |= v
			}
			return out
		},
		Equal: func(a, b closeFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(blk *flow.Block, f closeFact) closeFact {
			for _, n := range blk.Nodes {
				f = apply(f, nodeOps(n), nil)
			}
			return f
		},
	})

	// Replay reachable blocks over the fixpoint facts, reporting this time.
	report := func(op chanOp, bits uint8) {
		switch op.kind {
		case opClose:
			if bits&closed != 0 {
				pass.Reportf(op.pos, "close of %s, which may already be closed on this path; double close panics", op.name)
			} else if bits&deferred != 0 {
				pass.Reportf(op.pos, "close of %s before its deferred close runs; the defer will close it again and panic", op.name)
			}
		case opDeferClose:
			if bits&(closed|deferred) != 0 {
				pass.Reportf(op.pos, "deferred close of %s, which may already be closed; double close panics", op.name)
			}
		case opSend:
			if bits&closed != 0 {
				pass.Reportf(op.pos, "send on %s, which may already be closed on this path; send on closed channel panics", op.name)
			}
		}
	}
	for blk, f := range in {
		for _, n := range blk.Nodes {
			f = apply(f, nodeOps(n), report)
		}
	}

	checkReceiverClose(pass, body, nodeOps)
}

// checkReceiverClose flags a body that closes a channel it only ever
// receives from: the close belongs to the sender, and a receiver-side close
// races every in-flight send.
func checkReceiverClose(pass *analysis.Pass, body *ast.BlockStmt, nodeOps func(ast.Node) []chanOp) {
	info := pass.Pkg.Info
	type usage struct {
		closePos token.Pos
		name     string
		closes   bool
		sends    bool
		recvs    bool
	}
	use := make(map[chanKey]*usage)
	get := func(k chanKey) *usage {
		if use[k] == nil {
			use[k] = &usage{}
		}
		return use[k]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if info.Uses[id] == types.Universe.Lookup("close") {
					if k, ok := keyOf(info, n.Args[0]); ok {
						u := get(k)
						u.closes, u.closePos, u.name = true, n.Pos(), exprString(n.Args[0])
					}
				}
			}
		case *ast.SendStmt:
			if k, ok := keyOf(info, n.Chan); ok {
				get(k).sends = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if k, ok := keyOf(info, n.X); ok {
					get(k).recvs = true
				}
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					if k, ok := keyOf(info, n.X); ok {
						get(k).recvs = true
					}
				}
			}
		}
		return true
	})
	for _, u := range use {
		if u.closes && u.recvs && !u.sends {
			pass.Reportf(u.closePos, "closes %s, a channel this function only receives from; close belongs to the sender", u.name)
		}
	}
}

// exprString renders a channel expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return base.Name + "." + e.Sel.Name
		}
	}
	return "channel"
}
