package chanclose_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/chanclose"
)

func TestChanClose(t *testing.T) {
	analysistest.Run(t, "testdata/chanclose", chanclose.Analyzer)
}
