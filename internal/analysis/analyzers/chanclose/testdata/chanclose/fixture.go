// Package fixture exercises the chanclose analyzer: no send or close may
// follow a close on any path, deferred closes must stay unique, and a
// receiver does not close its input.
package fixture

func produce() int { return 1 }

// badDoubleClose closes twice in a row.
func badDoubleClose(ch chan int) {
	close(ch)
	close(ch) // want "may already be closed"
}

// badSendAfterClose panics at the send.
func badSendAfterClose(ch chan int) {
	close(ch)
	ch <- produce() // want "send on ch"
}

// badMaybeClosed closes on one branch, then sends unconditionally: the send
// panics whenever the branch was taken.
func badMaybeClosed(ch chan int, done bool) {
	if done {
		close(ch)
	}
	ch <- produce() // want "may already be closed"
}

// goodBranchedClose sends and closes on disjoint paths.
func goodBranchedClose(ch chan int, done bool) {
	if done {
		close(ch)
	} else {
		ch <- produce()
	}
}

// badCloseBeforeDeferred runs a direct close with a deferred close pending.
func badCloseBeforeDeferred(ch chan int) {
	defer close(ch)
	close(ch) // want "before its deferred close"
}

// badDoubleDeferred registers two deferred closes of the same channel.
func badDoubleDeferred(ch chan int) {
	defer close(ch)
	defer close(ch) // want "deferred close of ch"
}

// goodDeferredClose: the paths after the defer are not "closed yet" — sends
// still run before the defer fires at return.
func goodDeferredClose(ch chan int, n int) {
	defer close(ch)
	for i := 0; i < n; i++ {
		ch <- produce()
	}
}

// goodReassigned: rebinding the variable makes it a different channel.
func goodReassigned(n int) chan int {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, n)
	ch <- produce()
	close(ch)
	return ch
}

// goodCloseEachElement closes every element of a channel slice: the range
// rebinds c per iteration, so the closes never stack.
func goodCloseEachElement(chans []chan int) {
	for _, c := range chans {
		close(c)
	}
}

// pipe mimics the prefetcher shape: stop and out are struct fields.
type pipe struct {
	stop chan struct{}
	out  chan int
}

// badFieldDoubleClose: field channels are tracked through their selector.
func (p *pipe) badFieldDoubleClose(drained bool) {
	close(p.stop)
	if drained {
		close(p.stop) // want "close of p.stop"
	}
}

// goodFieldProtocol closes stop once and drains out.
func (p *pipe) goodFieldProtocol() {
	close(p.stop)
	for range p.out {
	}
}

// badReceiverClose drains a channel and then closes it: the close belongs
// to the sender.
func badReceiverClose(in chan int) int {
	total := 0
	for v := range in {
		total += v
	}
	close(in) // want "close belongs to the sender"
	return total
}

// goodSenderClose both sends and closes: that is the owner's prerogative.
func goodSenderClose(out chan int, n int) {
	for i := 0; i < n; i++ {
		out <- produce()
	}
	close(out)
}

// goodWorkerLiteral: the literal is its own function; its close of done is
// the literal's, and the enclosing function only receives.
func goodWorkerLiteral() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
