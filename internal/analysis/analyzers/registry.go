// Package analyzers registers the full rowsort analysis suite. The driver
// (cmd/rowsortlint) and any future embedding (a test, a CI harness) share
// this one list so an analyzer added here is everywhere at once.
package analyzers

import (
	"rowsort/internal/analysis"
	"rowsort/internal/analysis/analyzers/atomicfield"
	"rowsort/internal/analysis/analyzers/chanclose"
	"rowsort/internal/analysis/analyzers/ctxdone"
	"rowsort/internal/analysis/analyzers/deprecated"
	"rowsort/internal/analysis/analyzers/goroutinejoin"
	"rowsort/internal/analysis/analyzers/hotpathalloc"
	"rowsort/internal/analysis/analyzers/keyorder"
	"rowsort/internal/analysis/analyzers/memacct"
	"rowsort/internal/analysis/analyzers/purecmp"
	"rowsort/internal/analysis/analyzers/spillclose"
)

// Suite is every analyzer, in reporting order.
var Suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	chanclose.Analyzer,
	ctxdone.Analyzer,
	deprecated.Analyzer,
	goroutinejoin.Analyzer,
	hotpathalloc.Analyzer,
	keyorder.Analyzer,
	memacct.Analyzer,
	purecmp.Analyzer,
	spillclose.Analyzer,
}
