// Package fixture exercises the spillclose analyzer. The package declares
// trackSpill, so rule 1 (open must pair with registration) is in force.
package fixture

import "os"

type sorter struct {
	spills []string
}

func (s *sorter) trackSpill(path string) {
	s.spills = append(s.spills, path)
}

func (s *sorter) Close() error {
	var err error
	for _, p := range s.spills {
		if e := os.Remove(p); e != nil {
			err = e
		}
	}
	return err
}

// goodSpill pairs the open with trackSpill and checks Close explicitly.
func (s *sorter) goodSpill(dir string) error {
	f, err := os.CreateTemp(dir, "run-*")
	if err != nil {
		return err
	}
	s.trackSpill(f.Name())
	if _, err := f.Write([]byte("rows")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// badSpill creates a file the sorter never learns about.
func (s *sorter) badSpill(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "run-*") // want "without registering it with trackSpill"
}

// badDefer registers the spill but defers Close, losing the write-back
// error.
func (s *sorter) badDefer(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.trackSpill(path)
	defer f.Close() // want "defers Close on written file f"
	_, err = f.Write([]byte("rows"))
	return err
}

// goodReadDefer may defer freely: read-only closes cannot fail usefully.
func (s *sorter) goodReadDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}

func badRemove(path string) {
	os.Remove(path) // want "discards the error from os.Remove;"
}

func badRemoveAll(dir string) {
	defer os.RemoveAll(dir) // want "discards the error from os.RemoveAll"
}

func badSorterClose(s *sorter) {
	s.Close() // want "discards the error from sorter.Close"
}

func goodSorterClose(s *sorter) error {
	return s.Close()
}
