// Package fixture exercises the spillclose analyzer. The package declares
// trackSpill, so rule 1 (open must pair with registration) is in force.
package fixture

import "os"

type sorter struct {
	spills []string
}

func (s *sorter) trackSpill(path string) {
	s.spills = append(s.spills, path)
}

func (s *sorter) Close() error {
	var err error
	for _, p := range s.spills {
		if e := os.Remove(p); e != nil {
			err = e
		}
	}
	return err
}

// goodSpill pairs the open with trackSpill and checks Close explicitly.
func (s *sorter) goodSpill(dir string) error {
	f, err := os.CreateTemp(dir, "run-*")
	if err != nil {
		return err
	}
	s.trackSpill(f.Name())
	if _, err := f.Write([]byte("rows")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// badSpill creates a file the sorter never learns about.
func (s *sorter) badSpill(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "run-*") // want "without registering it with trackSpill"
}

// badDefer registers the spill but defers Close, losing the write-back
// error.
func (s *sorter) badDefer(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.trackSpill(path)
	defer f.Close() // want "defers Close on written file f"
	_, err = f.Write([]byte("rows"))
	return err
}

// goodReadDefer may defer freely: read-only closes cannot fail usefully.
func (s *sorter) goodReadDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}

func badRemove(path string) {
	os.Remove(path) // want "discards the error from os.Remove;"
}

func badRemoveAll(dir string) {
	defer os.RemoveAll(dir) // want "discards the error from os.RemoveAll"
}

func badSorterClose(s *sorter) {
	s.Close() // want "discards the error from sorter.Close"
}

func goodSorterClose(s *sorter) error {
	return s.Close()
}

// --- rule 5: the handle must be closed or handed off on every path ---

// badFlowLeak closes on the write paths but leaks on the empty-header
// early-out.
func (s *sorter) badFlowLeak(dir string, hdr []byte) error {
	f, err := os.CreateTemp(dir, "run-*") // want "returns without closing the file"
	if err != nil {
		return err
	}
	s.trackSpill(f.Name())
	if len(hdr) == 0 {
		return nil
	}
	if _, werr := f.Write(hdr); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// goodFlowAllPaths closes on the write-error path and the success path; the
// failed-open branch carries no obligation.
func (s *sorter) goodFlowAllPaths(dir string, hdr []byte) error {
	f, err := os.CreateTemp(dir, "run-*")
	if err != nil {
		return err
	}
	s.trackSpill(f.Name())
	if _, werr := f.Write(hdr); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

type spillFile struct {
	f *os.File
}

// goodHandoff transfers the handle to a struct the caller owns.
func (s *sorter) goodHandoff(dir string) (*spillFile, error) {
	f, err := os.CreateTemp(dir, "run-*")
	if err != nil {
		return nil, err
	}
	s.trackSpill(f.Name())
	return &spillFile{f: f}, nil
}

// badReadLeak: in a trackSpill package even read handles are lifecycle-bound.
func badReadLeak(path string, skip bool) error {
	f, err := os.Open(path) // want "returns without closing the file"
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}
