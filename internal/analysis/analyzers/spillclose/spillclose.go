// Package spillclose guards the spill-file lifecycle that PR 2's leak fix
// established: every spill file the sorter creates is registered with
// trackSpill so Sorter.Close can remove it, and no error on the
// write-close-remove path is silently dropped. External merge correctness
// is easy; not leaking rowsort-run-*.bin files (and noticing when the disk
// is full) is where regressions actually happen.
//
// Five rules:
//
//  1. In a package that declares trackSpill, every file-creating call
//     (os.Create, os.CreateTemp, write-mode os.OpenFile) must sit in a
//     function that also calls trackSpill — open and registration stay
//     together so no code path can create an untracked spill file.
//  2. `defer f.Close()` on a file opened for writing discards the error
//     that write-back buffering surfaces at close; Close must be checked
//     explicitly on written files (read-only files may defer freely).
//  3. A bare or deferred os.Remove/os.RemoveAll drops the removal error;
//     spill cleanup failures must be surfaced or counted.
//  4. A bare or deferred x.Close() on a type from a trackSpill-declaring
//     package (the Sorter) drops the joined spill-removal errors Close
//     reports.
//  5. Flow-sensitive: a file handle bound to a local variable must reach a
//     Close — or an ownership transfer (returned, stored in a struct,
//     captured by a closure) — on every control-flow path to return,
//     including the error returns between open and use. Write-opens are
//     checked everywhere; read-opens are checked in trackSpill-declaring
//     packages, where every descriptor belongs to the spill lifecycle. The
//     branch where the open itself failed carries no obligation.
package spillclose

import (
	"go/ast"
	"go/constant"
	"go/types"

	"rowsort/internal/analysis"
	"rowsort/internal/analysis/flow"
)

// Analyzer flags spill files that escape the tracked-removal path.
var Analyzer = &analysis.Analyzer{
	Name: "spillclose",
	Doc:  "spill files must be tracked for removal and their Close/Remove errors checked",
	Run:  run,
}

func run(pass *analysis.Pass) {
	spillPkgs := pass.U.Memo("spillclose.pkgs", func() any {
		return collectSpillPkgs(pass.U)
	}).(map[*types.Package]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, spillPkgs)
			checkFlow(pass, fd.Name.Name, fd.Body, spillPkgs)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFlow(pass, "func literal in "+fd.Name.Name, lit.Body, spillPkgs)
				}
				return true
			})
		}
	}
}

// checkFlow implements rule 5: every open bound to a local must be closed or
// handed off on every path to return. Function literals are analyzed on
// their own graphs; the enclosing function sees the capture as an escape.
func checkFlow(pass *analysis.Pass, name string, body *ast.BlockStmt, spillPkgs map[*types.Package]bool) {
	info := pass.Pkg.Info
	inSpillPkg := spillPkgs[pass.Pkg.Types]

	trackedOpen := func(call *ast.CallExpr) bool {
		fn := callee(info, call)
		if fn == nil {
			return false
		}
		if isWriteOpen(info, call, fn) {
			return true
		}
		return inSpillPkg && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Open"
	}
	// boundOpen recognizes `f, err := os.Create(...)` (or f alone, or =).
	boundOpen := func(as *ast.AssignStmt) (*types.Var, *types.Var, *ast.CallExpr) {
		if len(as.Rhs) != 1 {
			return nil, nil, nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !trackedOpen(call) {
			return nil, nil, nil
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil, nil, nil // blank or structured store: not a local obligation
		}
		v, ok := defOrUse(info, id)
		if !ok {
			return nil, nil, nil
		}
		var errVar *types.Var
		if len(as.Lhs) == 2 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				errVar, _ = defOrUse(info, errID)
			}
		}
		return v, errVar, call
	}

	obligations := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if v, _, call := boundOpen(as); v != nil && call != nil {
				obligations[v] = true
			}
		}
		return true
	})
	if len(obligations) == 0 {
		return
	}
	tracked := func(v *types.Var) bool { return obligations[v] }

	classify := func(n ast.Node) []flow.VarEvent {
		var evs []flow.VarEvent
		for _, part := range flow.Shallow(n) {
			ast.Inspect(part, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false // capture handled as escape below
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
					if v := flow.BareVar(info, sel.X); v != nil && tracked(v) {
						evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventRelease})
					}
				}
				return true
			})
			for _, v := range flow.Escapes(info, part, tracked) {
				evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventEscape})
			}
			if as, ok := part.(*ast.AssignStmt); ok {
				if v, errVar, call := boundOpen(as); v != nil && call != nil {
					evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventAcquire, Node: call, ErrVar: errVar})
				}
			}
		}
		return evs
	}

	for _, leak := range flow.MustRelease(pass.U.Fset, info, flow.Build(body), classify) {
		pass.Reportf(leak.Acquire.Pos(), "%s returns without closing the file opened here on some path; the descriptor and its spill bytes leak", name)
	}
}

// collectSpillPkgs finds the packages that declare a trackSpill function.
func collectSpillPkgs(u *analysis.Universe) map[*types.Package]bool {
	pkgs := make(map[*types.Package]bool)
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "trackSpill" {
					pkgs[pkg.Types] = true
				}
			}
		}
	}
	return pkgs
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, spillPkgs map[*types.Package]bool) {
	info := pass.Pkg.Info

	// Sweep 1: does this function register spills, which files does it open
	// for writing, and where?
	callsTrack := false
	var opens []*ast.CallExpr
	written := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := callee(info, n); fn != nil {
				if fn.Name() == "trackSpill" && fn.Pkg() == pass.Pkg.Types {
					callsTrack = true
				}
				if isWriteOpen(info, n, fn) {
					opens = append(opens, n)
				}
			}
		case *ast.AssignStmt:
			// f, err := os.Create(...) — remember f as a written file.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if fn := callee(info, call); fn != nil && isWriteOpen(info, call, fn) {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if v, ok := defOrUse(info, id); ok {
								written[v] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	// Rule 1: opens in a trackSpill package must pair with registration.
	if spillPkgs[pass.Pkg.Types] && !callsTrack {
		for _, open := range opens {
			pass.Reportf(open.Pos(), "%s creates a file without registering it with trackSpill; an abort here leaks the spill", fd.Name.Name)
		}
	}

	// Sweep 2: dropped errors on the close/remove path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			checkDropped(pass, n.Call, true, written, spillPkgs)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDropped(pass, call, false, written, spillPkgs)
			}
		}
		return true
	})
}

// checkDropped flags one statement-position call whose error vanishes.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, deferred bool, written map[*types.Var]bool, spillPkgs map[*types.Package]bool) {
	info := pass.Pkg.Info
	fn := callee(info, call)
	if fn == nil {
		return
	}
	// Rule 3: os.Remove / os.RemoveAll in statement position.
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && (fn.Name() == "Remove" || fn.Name() == "RemoveAll") {
		pass.Reportf(call.Pos(), "discards the error from os.%s; spill cleanup failures must be surfaced", fn.Name())
		return
	}
	if fn.Name() != "Close" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	// Rule 4: dropping Close on a tracked-spill owner (the Sorter) loses
	// the joined removal errors.
	if rp := recvPkg(sig); rp != nil && spillPkgs[rp] {
		pass.Reportf(call.Pos(), "discards the error from %s.Close; failed spill removals would be silent", recvTypeName(sig))
		return
	}
	// Rule 2: deferred Close on a file opened for writing.
	if deferred {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && written[v] {
					pass.Reportf(call.Pos(), "defers Close on written file %s, discarding its error; check Close explicitly", id.Name)
				}
			}
		}
	}
}

// isWriteOpen reports whether a call opens a file for writing: os.Create,
// os.CreateTemp, or os.OpenFile with write/create flags.
func isWriteOpen(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		// A constant flag argument without O_WRONLY/O_RDWR/O_CREATE bits
		// is a read-only open; non-constant flags are assumed writing.
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
			if f, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				const writeBits = 0x1 | 0x2 | 0x40 // O_WRONLY | O_RDWR | O_CREATE on linux
				return f&writeBits != 0
			}
		}
		return true
	}
	return false
}

// callee resolves the static callee of a call, or nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// defOrUse resolves an identifier on the LHS of := or =.
func defOrUse(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

// recvPkg returns the package declaring the receiver's named type.
func recvPkg(sig *types.Signature) *types.Package {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Pkg()
	}
	return nil
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
