// Package spillclose guards the spill-file lifecycle that PR 2's leak fix
// established: every spill file the sorter creates is registered with
// trackSpill so Sorter.Close can remove it, and no error on the
// write-close-remove path is silently dropped. External merge correctness
// is easy; not leaking rowsort-run-*.bin files (and noticing when the disk
// is full) is where regressions actually happen.
//
// Four rules:
//
//  1. In a package that declares trackSpill, every file-creating call
//     (os.Create, os.CreateTemp, write-mode os.OpenFile) must sit in a
//     function that also calls trackSpill — open and registration stay
//     together so no code path can create an untracked spill file.
//  2. `defer f.Close()` on a file opened for writing discards the error
//     that write-back buffering surfaces at close; Close must be checked
//     explicitly on written files (read-only files may defer freely).
//  3. A bare or deferred os.Remove/os.RemoveAll drops the removal error;
//     spill cleanup failures must be surfaced or counted.
//  4. A bare or deferred x.Close() on a type from a trackSpill-declaring
//     package (the Sorter) drops the joined spill-removal errors Close
//     reports.
package spillclose

import (
	"go/ast"
	"go/constant"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags spill files that escape the tracked-removal path.
var Analyzer = &analysis.Analyzer{
	Name: "spillclose",
	Doc:  "spill files must be tracked for removal and their Close/Remove errors checked",
	Run:  run,
}

func run(pass *analysis.Pass) {
	spillPkgs := pass.U.Memo("spillclose.pkgs", func() any {
		return collectSpillPkgs(pass.U)
	}).(map[*types.Package]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd, spillPkgs)
			}
		}
	}
}

// collectSpillPkgs finds the packages that declare a trackSpill function.
func collectSpillPkgs(u *analysis.Universe) map[*types.Package]bool {
	pkgs := make(map[*types.Package]bool)
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "trackSpill" {
					pkgs[pkg.Types] = true
				}
			}
		}
	}
	return pkgs
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, spillPkgs map[*types.Package]bool) {
	info := pass.Pkg.Info

	// Sweep 1: does this function register spills, which files does it open
	// for writing, and where?
	callsTrack := false
	var opens []*ast.CallExpr
	written := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := callee(info, n); fn != nil {
				if fn.Name() == "trackSpill" && fn.Pkg() == pass.Pkg.Types {
					callsTrack = true
				}
				if isWriteOpen(info, n, fn) {
					opens = append(opens, n)
				}
			}
		case *ast.AssignStmt:
			// f, err := os.Create(...) — remember f as a written file.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if fn := callee(info, call); fn != nil && isWriteOpen(info, call, fn) {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if v, ok := defOrUse(info, id); ok {
								written[v] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	// Rule 1: opens in a trackSpill package must pair with registration.
	if spillPkgs[pass.Pkg.Types] && !callsTrack {
		for _, open := range opens {
			pass.Reportf(open.Pos(), "%s creates a file without registering it with trackSpill; an abort here leaks the spill", fd.Name.Name)
		}
	}

	// Sweep 2: dropped errors on the close/remove path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			checkDropped(pass, n.Call, true, written, spillPkgs)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDropped(pass, call, false, written, spillPkgs)
			}
		}
		return true
	})
}

// checkDropped flags one statement-position call whose error vanishes.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, deferred bool, written map[*types.Var]bool, spillPkgs map[*types.Package]bool) {
	info := pass.Pkg.Info
	fn := callee(info, call)
	if fn == nil {
		return
	}
	// Rule 3: os.Remove / os.RemoveAll in statement position.
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && (fn.Name() == "Remove" || fn.Name() == "RemoveAll") {
		pass.Reportf(call.Pos(), "discards the error from os.%s; spill cleanup failures must be surfaced", fn.Name())
		return
	}
	if fn.Name() != "Close" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	// Rule 4: dropping Close on a tracked-spill owner (the Sorter) loses
	// the joined removal errors.
	if rp := recvPkg(sig); rp != nil && spillPkgs[rp] {
		pass.Reportf(call.Pos(), "discards the error from %s.Close; failed spill removals would be silent", recvTypeName(sig))
		return
	}
	// Rule 2: deferred Close on a file opened for writing.
	if deferred {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && written[v] {
					pass.Reportf(call.Pos(), "defers Close on written file %s, discarding its error; check Close explicitly", id.Name)
				}
			}
		}
	}
}

// isWriteOpen reports whether a call opens a file for writing: os.Create,
// os.CreateTemp, or os.OpenFile with write/create flags.
func isWriteOpen(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		// A constant flag argument without O_WRONLY/O_RDWR/O_CREATE bits
		// is a read-only open; non-constant flags are assumed writing.
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
			if f, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				const writeBits = 0x1 | 0x2 | 0x40 // O_WRONLY | O_RDWR | O_CREATE on linux
				return f&writeBits != 0
			}
		}
		return true
	}
	return false
}

// callee resolves the static callee of a call, or nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// defOrUse resolves an identifier on the LHS of := or =.
func defOrUse(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

// recvPkg returns the package declaring the receiver's named type.
func recvPkg(sig *types.Signature) *types.Package {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Pkg()
	}
	return nil
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
