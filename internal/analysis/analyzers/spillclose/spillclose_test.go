package spillclose_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/spillclose"
)

func TestSpillClose(t *testing.T) {
	analysistest.Run(t, "testdata/spillclose", spillclose.Analyzer)
}
