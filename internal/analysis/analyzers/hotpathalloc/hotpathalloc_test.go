package hotpathalloc_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotpath", hotpathalloc.Analyzer)
}
