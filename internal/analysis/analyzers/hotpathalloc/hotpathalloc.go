// Package hotpathalloc checks that //rowsort:hotpath functions — the run
// sort inner loops, k-way merge advance, gather kernels, and telemetry
// recording — stay allocation- and lock-free. The paper's throughput
// figures assume these loops never touch the allocator or block: a single
// heap allocation per row turns an O(n) scan into GC pressure, and a lock
// in span recording serializes the workers the Merge Path partitioning just
// made independent.
//
// The analyzer walks each annotated function and everything it statically
// calls inside the module, flagging: fmt calls, make/new/append, composite
// literals that allocate, string↔[]byte/[]rune conversions, concrete
// values boxed into interface arguments, capturing closures that escape,
// lock acquisition, channel operations, select, and goroutine spawns.
// Arguments of panic(...) are exempt — the panic path is cold by
// definition. Dynamic calls (func values, interface methods) and calls out
// of the module are not followed.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags allocations, locking, and blocking in hot-path functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "hot-path functions must not allocate, lock, or block",
	Run:  run,
}

// visit is one function to scan, attributed to the hot root that reached it.
type visit struct {
	node analysis.FuncNode
	root string
}

func run(pass *analysis.Pass) {
	// The walk is universe-wide (roots in one package pull in callees from
	// others), so only the elected reporting pass runs it.
	if pass.Pkg != pass.U.FirstTarget() {
		return
	}
	roots := pass.U.AnnotatedFuncs(analysis.AnnotHotpath)
	seen := make(map[*ast.FuncDecl]bool)
	var queue []visit
	for _, n := range roots {
		if !seen[n.Decl] {
			seen[n.Decl] = true
			queue = append(queue, visit{node: n, root: n.Decl.Name.Name})
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		c := &checker{pass: pass, pkg: v.node.Pkg, root: v.root}
		c.check(v.node.Decl)
		for _, callee := range c.callees {
			if n, ok := pass.U.FuncDecl(callee); ok && !seen[n.Decl] {
				seen[n.Decl] = true
				queue = append(queue, visit{node: n, root: v.root})
			}
		}
	}
}

// checker scans one function body, collecting static callees as it goes.
type checker struct {
	pass    *analysis.Pass
	pkg     *analysis.Package
	root    string
	callees []*types.Func
}

func (c *checker) reportf(pos ast.Node, format string, args ...any) {
	c.pass.Reportf(pos.Pos(), "hot path (via %s): "+format, append([]any{c.root}, args...)...)
}

func (c *checker) check(decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	c.walk(decl.Body, decl)
}

// walk inspects one node and recurses, pruning panic(...) subtrees.
func (c *checker) walk(n ast.Node, encl *ast.FuncDecl) {
	if n == nil {
		return
	}
	info := c.pkg.Info
	switch n := n.(type) {
	case *ast.CallExpr:
		if isPanic(info, n) {
			return // cold path: panic arguments may format freely
		}
		c.checkCall(n)
	case *ast.CompositeLit:
		if allocatingLit(info, n) {
			c.reportf(n, "allocates a composite literal of type %s", typeString(info, n))
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "&" {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				c.reportf(n, "allocates a composite literal on the heap")
			}
		}
		if n.Op.String() == "<-" {
			c.reportf(n, "receives from a channel")
		}
	case *ast.SendStmt:
		c.reportf(n, "sends on a channel")
	case *ast.SelectStmt:
		c.reportf(n, "blocks in a select")
	case *ast.GoStmt:
		c.reportf(n, "spawns a goroutine")
	case *ast.FuncLit:
		if c.capturing(n) && c.escapes(n, encl) {
			c.reportf(n, "capturing closure escapes (allocates)")
		}
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		if child != nil {
			c.walk(child, encl)
		}
		return false
	})
}

// checkCall flags allocating builtins, fmt, locks, and interface boxing at
// one call site, and records static in-module callees for the BFS.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pkg.Info
	if b := builtinName(info, call); b != "" {
		switch b {
		case "make":
			c.reportf(call, "allocates with make")
		case "new":
			c.reportf(call, "allocates with new")
		case "append":
			c.reportf(call, "grows a slice with append")
		}
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return // dynamic call through a func value: not followed
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			c.reportf(call, "calls fmt.%s", fn.Name())
		case "sync":
			if fn.Name() == "Lock" || fn.Name() == "RLock" {
				c.reportf(call, "takes a %s lock", recvTypeName(fn))
			}
		}
	}
	c.checkBoxing(call, fn)
	c.callees = append(c.callees, fn)
}

// checkConversion flags string↔[]byte/[]rune conversions, which copy.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src, ok := c.pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from, to := src.Type, target
	if (isString(from) && (isByteSlice(to) || isRuneSlice(to))) ||
		(isString(to) && (isByteSlice(from) || isRuneSlice(from))) {
		c.reportf(call, "converts %s to %s (allocates a copy)", from, to)
	}
}

// checkBoxing flags concrete values passed where the callee takes an
// interface: the argument is boxed, which may allocate.
func (c *checker) checkBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing
			}
			s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		default:
			continue
		}
		at, ok := c.pkg.Info.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at.Type) {
			c.reportf(arg, "boxes %s into interface argument of %s", at.Type, fn.Name())
		}
	}
}

// capturing reports whether the literal references variables declared
// outside itself in an enclosing function (package-level state is fine:
// reading it does not allocate).
func (c *checker) capturing(lit *ast.FuncLit) bool {
	info := c.pkg.Info
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// escapes reports whether the literal leaves its declaration site: passed
// as a call argument, returned, or assigned to anything but a fresh local.
// A literal assigned to a local and only ever called in place stays on the
// stack.
func (c *checker) escapes(lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	escapes := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if n.Fun == lit {
				return true // invoked directly: no escape
			}
			for _, arg := range n.Args {
				if arg == lit {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if r == lit {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			// Assignment to a fresh local (:=) is the allowed pattern —
			// the literal is only ever called in place. Anything else
			// (field, global, element, reassignment) lets it escape.
			for _, rhs := range n.Rhs {
				if rhs == lit && n.Tok != token.DEFINE {
					escapes = true
				}
			}
		}
		return true
	})
	return escapes
}

// --- small type helpers ---

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	return builtinName(info, call) == "panic"
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls through func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin() // package-qualified call
		}
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn.Origin() // generic instantiation
			}
		}
	}
	return nil
}

// allocatingLit reports whether a composite literal allocates backing
// store: slice and map literals do, plain struct/array values do not.
func allocatingLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func typeString(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok {
		return tv.Type.String()
	}
	return "?"
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "sync"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "sync." + n.Obj().Name()
	}
	return t.String()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}
