// Package fixture exercises the hotpathalloc analyzer: each // want line is
// a violation the analyzer must flag; functions without wants are the clean
// cases it must stay silent on.
package fixture

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

//rowsort:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "calls fmt.Sprintf" "boxes int into interface argument of Sprintf"
}

//rowsort:hotpath
func hotAlloc(n int) []int {
	s := make([]int, n) // want "allocates with make"
	s = append(s, 1)    // want "grows a slice with append"
	return s
}

//rowsort:hotpath
func hotLit() []int {
	return []int{1, 2, 3} // want "allocates a composite literal"
}

//rowsort:hotpath
func hotNew() *int {
	return new(int) // want "allocates with new"
}

// hotCallee is clean itself; the violation sits in a helper it statically
// calls, which the analyzer must follow.
//
//rowsort:hotpath
func hotCallee(b []byte) string {
	return helper(b)
}

func helper(b []byte) string {
	return string(b) // want "converts ..byte to string"
}

//rowsort:hotpath
func hotLock() {
	mu.Lock() // want "takes a sync.Mutex lock"
	defer mu.Unlock()
}

//rowsort:hotpath
func hotChan(ch chan int) int {
	ch <- 1     // want "sends on a channel"
	return <-ch // want "receives from a channel"
}

//rowsort:hotpath
func hotGo(f func()) {
	go f() // want "spawns a goroutine"
}

func sink(v any) { _ = v }

//rowsort:hotpath
func hotBox(x int) {
	sink(x) // want "boxes int into interface argument of sink"
}

//rowsort:hotpath
func hotClosure(xs []int) func() int {
	total := 0
	bump := func() { total++ } // clean: fresh local, only called in place
	bump()
	return func() int { return total } // want "capturing closure escapes"
}

// hotClean is the all-clear case: plain arithmetic loops are fine, and the
// fmt call inside panic(...) is exempt because the panic path is cold.
//
//rowsort:hotpath
func hotClean(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	if t < 0 {
		panic(fmt.Sprintf("negative sum %d", t))
	}
	return t
}

// hotSuppressed shows a justified in-place suppression: no diagnostic may
// survive it.
//
//rowsort:hotpath
func hotSuppressed(n int) []byte {
	//rowsort:allow hotpathalloc scratch buffer is amortized across calls
	return make([]byte, n)
}

// cold is not annotated: nothing in it may be flagged.
func cold() string {
	return fmt.Sprintf("%d", len(make([]int, 4)))
}
