// Package deprecated flags cross-package uses of module declarations whose
// doc comment carries a standard "Deprecated:" paragraph. The module keeps
// superseded accessors (MergeStats, SpillStats) alive as thin views so old
// callers compile, but nothing inside the module may still use them — this
// analyzer is what lets a later PR delete them with confidence that the
// tree is already clean. Every use is flagged, same-package callers
// included; only the shim's own declaration is exempt (a declaration is a
// definition, not a use).
package deprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"rowsort/internal/analysis"
)

// Analyzer flags in-module uses of deprecated module APIs.
var Analyzer = &analysis.Analyzer{
	Name: "deprecated",
	Doc:  "module code must not use deprecated module APIs",
	Run:  run,
}

func run(pass *analysis.Pass) {
	marked := pass.U.Memo("deprecated.objects", func() any {
		return collect(pass.U)
	}).(map[types.Object]string)
	if len(marked) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if note, ok := marked[origin(obj)]; ok {
				pass.Reportf(id.Pos(), "uses deprecated %s: %s", id.Name, note)
			}
			return true
		})
	}
}

// origin normalizes generic instantiations back to their declaration.
func origin(obj types.Object) types.Object {
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin()
	}
	return obj
}

// collect finds every module declaration documented as Deprecated.
func collect(u *analysis.Universe) map[types.Object]string {
	marked := make(map[types.Object]string)
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if note, ok := deprecationNote(d.Doc); ok {
						if obj := pkg.Info.Defs[d.Name]; obj != nil {
							marked[obj] = note
						}
					}
				case *ast.GenDecl:
					note, declOK := deprecationNote(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							specNote, ok := note, declOK
							if n, o := deprecationNote(s.Doc); o {
								specNote, ok = n, true
							}
							if ok {
								if obj := pkg.Info.Defs[s.Name]; obj != nil {
									marked[obj] = specNote
								}
							}
						case *ast.ValueSpec:
							specNote, ok := note, declOK
							if n, o := deprecationNote(s.Doc); o {
								specNote, ok = n, true
							}
							if ok {
								for _, name := range s.Names {
									if obj := pkg.Info.Defs[name]; obj != nil {
										marked[obj] = specNote
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return marked
}

// deprecationNote extracts the first line of a "Deprecated:" paragraph.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
