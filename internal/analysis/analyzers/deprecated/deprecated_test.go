package deprecated_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/deprecated"
)

func TestDeprecated(t *testing.T) {
	analysistest.Run(t, "testdata/deprecated", deprecated.Analyzer)
}
