// Package fixture exercises the deprecated analyzer.
package fixture

type engine struct {
	total int64
	moved int64
}

// stats is the consolidated accessor new code should use.
func (e *engine) stats() (int64, int64) {
	return e.total, e.moved
}

// oldTotal returns the total counter.
//
// Deprecated: use stats instead.
func (e *engine) oldTotal() int64 {
	t, _ := e.stats()
	return t
}

// oldLimit is a superseded tuning knob.
//
// Deprecated: the engine sizes itself now.
var oldLimit = 128

func consume(e *engine) int64 {
	return e.oldTotal() // want "uses deprecated oldTotal: use stats instead"
}

func window() int {
	return oldLimit // want "uses deprecated oldLimit: the engine sizes itself now"
}

// fresh uses only current APIs: clean.
func fresh(e *engine) (int64, int64) {
	return e.stats()
}
