// Package fixture exercises the memacct analyzer with a self-contained
// mock of the broker/reservation shape: Reserve returns a value whose type
// has a Release method, creating the balance obligation.
package fixture

type broker struct {
	used int64
}

type reservation struct {
	b *broker
	n int64
}

func (b *broker) Reserve(name string, n int64) *reservation {
	b.used += n
	return &reservation{b: b, n: n}
}

func (r *reservation) Grow(n int64) bool {
	r.n += n
	r.b.used += n
	return true
}

func (r *reservation) Release() {
	r.b.used -= r.n
	r.n = 0
}

// holder owns a reservation for its lifetime; its Close releases it.
type holder struct {
	res *reservation
}

func (h *holder) Close() {
	h.res.Release()
}

// goodPaired releases what it reserves.
func goodPaired(b *broker) {
	r := b.Reserve("scratch", 100)
	r.Grow(50)
	r.Release()
}

// goodDeferred releases through defer.
func goodDeferred(b *broker) {
	r := b.Reserve("merge", 0)
	defer r.Release()
	r.Grow(1 << 20)
}

// goodReturned hands the obligation to its caller.
func goodReturned(b *broker) *reservation {
	r := b.Reserve("stream", 0)
	r.Grow(512)
	return r
}

// goodEscapesToField stores the reservation in a struct whose Close
// releases it.
func goodEscapesToField(b *broker, h *holder) {
	r := b.Reserve("sink", 64)
	h.res = r
}

// goodFieldStore binds the Reserve result straight into a field.
func goodFieldStore(b *broker, h *holder) {
	h.res = b.Reserve("runs", 0)
}

// goodPassedAlong hands the reservation to another function.
func goodPassedAlong(b *broker) {
	r := b.Reserve("blocks", 0)
	adopt(r)
}

func adopt(r *reservation) {
	defer r.Release()
	r.Grow(10)
}

// goodComposite places the reservation in a literal the caller owns.
func goodComposite(b *broker) holder {
	r := b.Reserve("pool", 0)
	return holder{res: r}
}

// badDiscarded drops the reservation on the floor.
func badDiscarded(b *broker) {
	b.Reserve("lost", 1024) // want "discards the reservation returned by Reserve"
}

// badBlank assigns the reservation to the blank identifier.
func badBlank(b *broker) {
	_ = b.Reserve("blank", 1024) // want "blank identifier"
}

// badNeverReleased binds the reservation but never balances it.
func badNeverReleased(b *broker) int64 {
	r := b.Reserve("leak", 0) // want "never Releases the reservation"
	r.Grow(4096)
	return r.n
}

// badOnlyGrown grows and shrinks but never releases.
func badOnlyGrown(b *broker) {
	r := b.Reserve("grow-only", 0) // want "never Releases the reservation"
	if !r.Grow(1 << 16) {
		r.Grow(-(1 << 16))
	}
}

// goodSuppressed documents an intentional leak.
func goodSuppressed(b *broker) {
	//rowsort:allow memacct process-lifetime reservation released at exit
	b.Reserve("forever", 1)
}
