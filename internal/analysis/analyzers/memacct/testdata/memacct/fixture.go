// Package fixture exercises the memacct analyzer with a self-contained
// mock of the broker/reservation shape: Reserve returns a value whose type
// has a Release method, creating the balance obligation.
package fixture

type broker struct {
	used int64
}

type reservation struct {
	b *broker
	n int64
}

func (b *broker) Reserve(name string, n int64) *reservation {
	b.used += n
	return &reservation{b: b, n: n}
}

func (r *reservation) Grow(n int64) bool {
	r.n += n
	r.b.used += n
	return true
}

func (r *reservation) Release() {
	r.b.used -= r.n
	r.n = 0
}

// holder owns a reservation for its lifetime; its Close releases it.
type holder struct {
	res *reservation
}

func (h *holder) Close() {
	h.res.Release()
}

// goodPaired releases what it reserves.
func goodPaired(b *broker) {
	r := b.Reserve("scratch", 100)
	r.Grow(50)
	r.Release()
}

// goodDeferred releases through defer.
func goodDeferred(b *broker) {
	r := b.Reserve("merge", 0)
	defer r.Release()
	r.Grow(1 << 20)
}

// goodReturned hands the obligation to its caller.
func goodReturned(b *broker) *reservation {
	r := b.Reserve("stream", 0)
	r.Grow(512)
	return r
}

// goodEscapesToField stores the reservation in a struct whose Close
// releases it.
func goodEscapesToField(b *broker, h *holder) {
	r := b.Reserve("sink", 64)
	h.res = r
}

// goodFieldStore binds the Reserve result straight into a field.
func goodFieldStore(b *broker, h *holder) {
	h.res = b.Reserve("runs", 0)
}

// goodPassedAlong hands the reservation to another function.
func goodPassedAlong(b *broker) {
	r := b.Reserve("blocks", 0)
	adopt(r)
}

func adopt(r *reservation) {
	defer r.Release()
	r.Grow(10)
}

// goodComposite places the reservation in a literal the caller owns.
func goodComposite(b *broker) holder {
	r := b.Reserve("pool", 0)
	return holder{res: r}
}

// badDiscarded drops the reservation on the floor.
func badDiscarded(b *broker) {
	b.Reserve("lost", 1024) // want "discards the reservation returned by Reserve"
}

// badBlank assigns the reservation to the blank identifier.
func badBlank(b *broker) {
	_ = b.Reserve("blank", 1024) // want "blank identifier"
}

// badNeverReleased binds the reservation but never balances it.
func badNeverReleased(b *broker) int64 {
	r := b.Reserve("leak", 0) // want "never Releases the reservation"
	r.Grow(4096)
	return r.n
}

// badOnlyGrown grows and shrinks but never releases.
func badOnlyGrown(b *broker) {
	r := b.Reserve("grow-only", 0) // want "never Releases the reservation"
	if !r.Grow(1 << 16) {
		r.Grow(-(1 << 16))
	}
}

// goodSuppressed documents an intentional leak.
func goodSuppressed(b *broker) {
	//rowsort:allow memacct process-lifetime reservation released at exit
	b.Reserve("forever", 1)
}

// --- flow-sensitive cases: the release must cover every path ---

// badOneBranch releases only when grow succeeds; the other branch leaks.
func badOneBranch(b *broker) {
	r := b.Reserve("half", 0) // want "never Releases the reservation"
	if r.Grow(1 << 10) {
		r.Release()
	}
}

// badEarlyReturn leaks on the early-out path.
func badEarlyReturn(b *broker, skip bool) {
	r := b.Reserve("early", 0) // want "never Releases the reservation"
	if skip {
		return
	}
	r.Release()
}

// goodBothBranches releases on the early-out path and the fallthrough path.
func goodBothBranches(b *broker, small bool) {
	r := b.Reserve("both", 0)
	if small {
		r.Release()
		return
	}
	r.Grow(1 << 20)
	r.Release()
}

// goodLoopBalanced reserves and releases once per iteration.
func goodLoopBalanced(b *broker, n int) {
	for i := 0; i < n; i++ {
		r := b.Reserve("iter", 64)
		r.Grow(int64(i))
		r.Release()
	}
}

// badLoopBreak leaks the iteration's reservation when the break fires.
func badLoopBreak(b *broker, n int) {
	for i := 0; i < n; i++ {
		r := b.Reserve("brk", 64) // want "never Releases the reservation"
		if !r.Grow(int64(i)) {
			break
		}
		r.Release()
	}
}

// goodSwitchAllCases releases in every clause, default included.
func goodSwitchAllCases(b *broker, mode int) {
	r := b.Reserve("switch", 0)
	switch mode {
	case 0:
		r.Release()
	case 1:
		r.Grow(1)
		r.Release()
	default:
		r.Release()
	}
}

// badSwitchMissingDefault leaks when no case matches.
func badSwitchMissingDefault(b *broker, mode int) {
	r := b.Reserve("nodefault", 0) // want "never Releases the reservation"
	switch mode {
	case 0:
		r.Release()
	case 1:
		r.Release()
	}
}

// badInsideGoroutine: the literal's own reservation is its own obligation.
func badInsideGoroutine(b *broker, done chan struct{}) {
	go func() {
		r := b.Reserve("worker", 0) // want "never Releases the reservation"
		r.Grow(1)
		close(done)
	}()
}

// goodClosureCapture hands the reservation to a closure, which releases it.
func goodClosureCapture(b *broker) func() {
	r := b.Reserve("captured", 0)
	return func() { r.Release() }
}
