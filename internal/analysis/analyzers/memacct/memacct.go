// Package memacct guards the memory-broker accounting that the budgeted
// sort pipeline rests on: every Reserve opened against a broker must be
// balanced by a Release, or the broker's balance never returns to zero and
// every later sort under the same budget spills earlier than it should.
// The leak is silent — nothing crashes, the sort just degrades — which is
// exactly the kind of regression a machine check catches and a reviewer
// does not.
//
// The obligation is a call to a method named Reserve whose result type has
// a Release method (the mem.Reservation shape). The check is flow-sensitive:
// the reservation must reach, on every control-flow path from the Reserve to
// a return, either
//
//   - a Release call on it (directly or deferred — a defer discharges every
//     path passing through it), or
//   - an escape — returned, stored in a field, map or slice, aliased into
//     another variable, placed in a composite literal, passed to a call, or
//     captured by a closure — making its release the owner's responsibility
//     (Sorter.Close releases the reservations its struct holds).
//
// A Release that only happens on one branch, or a return between the
// Reserve and its Release, is a leak on the uncovered path. Discarding the
// reservation outright (statement position or assignment to the blank
// identifier) is always a leak: nothing can ever Release it.
package memacct

import (
	"go/ast"
	"go/types"

	"rowsort/internal/analysis"
	"rowsort/internal/analysis/flow"
)

// Analyzer flags broker reservations that can miss their Release on some
// path to return.
var Analyzer = &analysis.Analyzer{
	Name: "memacct",
	Doc:  "broker Reserve calls must be balanced by Release on every path",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Name.Name, fd.Body)
			// Function literals get their own graphs: their acquisitions are
			// their own obligations, and the enclosing function sees only the
			// capture (an escape).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, "func literal in "+fd.Name.Name, lit.Body)
				}
				return true
			})
		}
	}
}

func checkBody(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Sweep 1: flag reservations discarded on the spot, and collect the
	// obligations — Reserve results bound to local variables. Nested literals
	// are skipped throughout: each is checked on its own body.
	obligations := make(map[*types.Var]bool)
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isReserve(info, call) {
				pass.Reportf(call.Pos(), "%s discards the reservation returned by Reserve; nothing can Release it and the broker balance leaks", name)
			}
		case *ast.AssignStmt:
			if v, call := boundReserve(info, n); call != nil {
				if v == nil {
					pass.Reportf(call.Pos(), "%s assigns the reservation returned by Reserve to the blank identifier; nothing can Release it and the broker balance leaks", name)
				} else {
					obligations[v] = true
				}
			}
		}
	})
	if len(obligations) == 0 {
		return
	}
	tracked := func(v *types.Var) bool { return obligations[v] }

	classify := func(n ast.Node) []flow.VarEvent {
		var evs []flow.VarEvent
		for _, part := range flow.Shallow(n) {
			// Releases: r.Release() anywhere in the node, deferred included —
			// a defer guarantees the release on every path through it. A
			// Release inside a nested literal is the capture's business, and
			// the capture below already discharges.
			inspectShallow(part, func(m ast.Node) {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
					if v := flow.BareVar(info, sel.X); v != nil && tracked(v) {
						evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventRelease})
					}
				}
			})
			for _, v := range flow.Escapes(info, part, tracked) {
				evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventEscape})
			}
			if as, ok := part.(*ast.AssignStmt); ok {
				if v, call := boundReserve(info, as); v != nil && call != nil {
					evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventAcquire, Node: call})
				}
			}
		}
		return evs
	}

	leaks := flow.MustRelease(pass.U.Fset, info, flow.Build(body), classify)
	for _, leak := range leaks {
		pass.Reportf(leak.Acquire.Pos(), "%s never Releases the reservation returned by Reserve on some path to return; the broker balance leaks there", name)
	}
}

// boundReserve recognizes `x := b.Reserve(...)` (or =). It returns the bound
// variable and the Reserve call; the variable is nil when the target is the
// blank identifier or not a plain identifier.
func boundReserve(info *types.Info, as *ast.AssignStmt) (*types.Var, *ast.CallExpr) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isReserve(info, call) {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil // field/index store: the owner releases it
	}
	if id.Name == "_" {
		return nil, call
	}
	if v, ok := defOrUse(info, id); ok {
		return v, call
	}
	return nil, nil
}

// inspectShallow walks n in order but does not descend into function
// literals.
func inspectShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// isReserve reports whether a call is a Reserve method call whose result
// type has a Release method.
func isReserve(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reserve" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	return hasRelease(sig.Results().At(0).Type())
}

// hasRelease reports whether the type (or its pointee) has a Release
// method.
func hasRelease(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "Release"); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// defOrUse resolves an identifier on the LHS of := or =.
func defOrUse(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}
