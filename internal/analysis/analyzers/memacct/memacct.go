// Package memacct guards the memory-broker accounting that the budgeted
// sort pipeline rests on: every Reserve opened against a broker must be
// balanced by a Release, or the broker's balance never returns to zero and
// every later sort under the same budget spills earlier than it should.
// The leak is silent — nothing crashes, the sort just degrades — which is
// exactly the kind of regression a machine check catches and a reviewer
// does not.
//
// The obligation is a call to a method named Reserve whose result type has
// a Release method (the mem.Reservation shape). It is discharged when, in
// the same function, the result either
//
//   - has Release called on it (directly or deferred), or
//   - escapes — returned, stored in a field, map or slice, aliased into
//     another variable, placed in a composite literal, or passed to a
//     call — making its release the owner's responsibility (Sorter.Close
//     releases the reservations its struct holds).
//
// Discarding the reservation outright (statement position or assignment to
// the blank identifier) is always a leak: nothing can ever Release it.
package memacct

import (
	"go/ast"
	"go/types"

	"rowsort/internal/analysis"
)

// Analyzer flags broker reservations that can never be released.
var Analyzer = &analysis.Analyzer{
	Name: "memacct",
	Doc:  "broker Reserve calls must be balanced by Release on every path",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Sweep 1: collect the obligations — Reserve results bound to local
	// variables — and flag the ones discarded on the spot.
	held := make(map[*types.Var]*ast.CallExpr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isReserve(info, call) {
				pass.Reportf(call.Pos(), "%s discards the reservation returned by Reserve; nothing can Release it and the broker balance leaks", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isReserve(info, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // field/index store: the owner releases it
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "%s assigns the reservation returned by Reserve to the blank identifier; nothing can Release it and the broker balance leaks", fd.Name.Name)
				return true
			}
			if v, ok := defOrUse(info, id); ok {
				held[v] = call
			}
		}
		return true
	})
	if len(held) == 0 {
		return
	}

	// Sweep 2: discharge obligations whose variable is released or escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// r.Release() — the balancing call (deferred or not: a defer
			// statement's call is still a CallExpr node).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if v := identVar(info, sel.X); v != nil {
					delete(held, v)
				}
			}
			// Passed as an argument: the callee owns it now.
			for _, arg := range n.Args {
				if v := identVar(info, arg); v != nil {
					delete(held, v)
				}
			}
		case *ast.ReturnStmt:
			// Returned as-is: the caller owns the obligation now. A result
			// that merely reads through the variable (r.Bytes()) is a use,
			// not an escape, so only the bare identifier discharges.
			for _, res := range n.Results {
				if v := identVar(info, res); v != nil {
					delete(held, v)
				}
			}
		case *ast.AssignStmt:
			// Aliased or stored somewhere (field, map, slice, other
			// variable): the reservation escaped to whatever owns that
			// location. The binding assignment itself has the call, not
			// the variable, on its RHS, so it never self-discharges.
			for _, rhs := range n.Rhs {
				if v := identVar(info, rhs); v != nil {
					delete(held, v)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if v := identVar(info, elt); v != nil {
					delete(held, v)
				}
			}
		}
		return true
	})

	for _, call := range held {
		pass.Reportf(call.Pos(), "%s never Releases the reservation returned by Reserve; the broker balance leaks on every path", fd.Name.Name)
	}
}

// isReserve reports whether a call is a Reserve method call whose result
// type has a Release method.
func isReserve(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reserve" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	return hasRelease(sig.Results().At(0).Type())
}

// hasRelease reports whether the type (or its pointee) has a Release
// method.
func hasRelease(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "Release"); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// identVar resolves an expression to the local variable it names, or nil.
func identVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// defOrUse resolves an identifier on the LHS of := or =.
func defOrUse(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}
