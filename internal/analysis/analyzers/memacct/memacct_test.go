package memacct_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/memacct"
)

func TestMemAcct(t *testing.T) {
	analysistest.Run(t, "testdata/memacct", memacct.Analyzer)
}
