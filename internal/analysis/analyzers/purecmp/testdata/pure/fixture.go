// Package fixture exercises the purecmp analyzer.
package fixture

import (
	"fmt"
	"os"
	"time"
)

var calls int

//rowsort:pure
func impureGlobal(a, b int) int {
	calls++ // want "writes package-level variable calls"
	if a < b {
		return -1
	}
	return 1
}

//rowsort:pure
func impureClosure() func(a, b int) bool {
	n := 0
	return func(a, b int) bool {
		n++ // want "writes captured variable n"
		return a < b
	}
}

type stats struct{ cmps int }

//rowsort:pure
func impureRecv(s *stats, a, b int) int {
	s.cmps++ // want "writes caller state through s"
	return a - b
}

//rowsort:pure
func impureMap(seen map[int]bool, a, b int) bool {
	seen[a] = true // want "writes to map seen"
	return a < b
}

//rowsort:pure
func impureCalls(a, b int) bool {
	fmt.Println(a, b) // want "calls impure fmt.Println"
	_ = time.Now()    // want "calls impure time.Now"
	_ = os.Getpid()   // want "calls impure os.Getpid"
	return a < b
}

//rowsort:pure
func impureConc(ch chan int, a, b int) bool {
	ch <- a        // want "sends on a channel"
	go func() {}() // want "spawns a goroutine"
	return a < b
}

// clean shows what a comparator may do: locals, loops, and writes to its
// own stack values.
//
//rowsort:pure
func clean(a, b []byte) int {
	var t stats
	for i := 0; i < len(a) && i < len(b); i++ {
		t.cmps++
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// cleanClosure returns a comparator that reads (never writes) its capture.
//
//rowsort:pure
func cleanClosure(weights []int) func(a, b int) bool {
	return func(a, b int) bool { return weights[a] < weights[b] }
}

// unannotated functions may do anything.
func mutator() {
	calls++
}
