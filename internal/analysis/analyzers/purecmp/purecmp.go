// Package purecmp checks that //rowsort:pure functions — comparators,
// Less predicates, and OVC tie-breakers — are observationally pure. The
// pipeline sorts the same data three ways (normalized-key radix/memcmp,
// pdqsort on comparators, Merge Path partitioning) and the paper's
// correctness argument is that all three agree on one total order; a
// comparator that mutates captured state or consults a changing global can
// return different answers for the same pair, and the disagreement
// surfaces as silent misordering, not an error.
//
// Inside a pure function (and every function literal nested in it, which
// covers returned comparator closures) the analyzer flags: writes to
// package-level variables, writes to captured variables from inside a
// literal, writes that reach caller-visible state through a pointer, field,
// or element of a parameter or receiver, map writes, channel sends,
// goroutine spawns, and calls into impure corners of the stdlib
// (math/rand, time.Now, os, fmt printing).
package purecmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rowsort/internal/analysis"
)

// Analyzer flags state mutation and nondeterminism in pure comparators.
var Analyzer = &analysis.Analyzer{
	Name: "purecmp",
	Doc:  "comparator functions must not write captured state, maps, or globals",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, n := range pass.U.AnnotatedFuncs(analysis.AnnotPure) {
		if n.Pkg != pass.Pkg || n.Decl.Body == nil {
			continue
		}
		c := &checker{pass: pass, fn: n.Decl}
		c.walk(n.Decl.Body, nil)
	}
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

// walk visits one subtree; lit is the innermost enclosing function literal
// (nil while inside the declared function itself).
func (c *checker) walk(n ast.Node, lit *ast.FuncLit) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			if node != n {
				c.walk(node.Body, node)
				return false
			}
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				return true // declarations create fresh locals
			}
			for _, lhs := range node.Lhs {
				c.checkWrite(lhs, lit)
			}
		case *ast.IncDecStmt:
			c.checkWrite(node.X, lit)
		case *ast.SendStmt:
			c.pass.Reportf(node.Pos(), "pure function %s sends on a channel", c.fn.Name.Name)
		case *ast.GoStmt:
			c.pass.Reportf(node.Pos(), "pure function %s spawns a goroutine", c.fn.Name.Name)
		case *ast.CallExpr:
			c.checkCall(node)
		}
		return true
	})
}

// checkWrite classifies one assignment target. Unwrapping records whether
// the path to the root identifier passes through a map index, a pointer
// dereference, or a field selection; combined with what the root resolves
// to, that decides whether the write leaves the function's own frame.
func (c *checker) checkWrite(lhs ast.Expr, lit *ast.FuncLit) {
	info := c.pass.Pkg.Info
	mapWrite, indirect := false, false
	e := lhs
unwrap:
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			indirect = true
			e = x.X
		case *ast.SelectorExpr:
			indirect = true
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mapWrite = true
				}
			}
			indirect = true
			e = x.X
		default:
			break unwrap
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	name := c.fn.Name.Name
	switch {
	case mapWrite:
		c.pass.Reportf(lhs.Pos(), "pure function %s writes to map %s", name, id.Name)
	case obj.Parent() == obj.Pkg().Scope():
		c.pass.Reportf(lhs.Pos(), "pure function %s writes package-level variable %s", name, id.Name)
	case lit != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()):
		c.pass.Reportf(lhs.Pos(), "pure function %s writes captured variable %s", name, id.Name)
	case indirect && isParamOrRecv(obj, c.fn):
		c.pass.Reportf(lhs.Pos(), "pure function %s writes caller state through %s", name, id.Name)
	}
}

// isParamOrRecv reports whether obj is a parameter or the receiver of fn,
// i.e. a handle on caller-owned memory.
func isParamOrRecv(obj *types.Var, fn *ast.FuncDecl) bool {
	inFields := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if name.Pos() == obj.Pos() {
					return true
				}
			}
		}
		return false
	}
	return inFields(fn.Recv) || inFields(fn.Type.Params)
}

// impurePkgs are stdlib packages a comparator must not reach into.
var impurePkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"os":           true,
}

// checkCall flags calls that make a comparator nondeterministic or
// observable: randomness, clocks, the OS, and printing.
func (c *checker) checkCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, fname := fn.Pkg().Path(), fn.Name()
	impure := impurePkgs[path] ||
		(path == "time" && fname == "Now") ||
		(path == "fmt" && (strings.HasPrefix(fname, "Print") || strings.HasPrefix(fname, "Fprint")))
	if impure {
		c.pass.Reportf(call.Pos(), "pure function %s calls impure %s.%s", c.fn.Name.Name, path, fname)
	}
}
