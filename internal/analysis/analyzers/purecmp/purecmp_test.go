package purecmp_test

import (
	"testing"

	"rowsort/internal/analysis/analysistest"
	"rowsort/internal/analysis/analyzers/purecmp"
)

func TestPureCmp(t *testing.T) {
	analysistest.Run(t, "testdata/pure", purecmp.Analyzer)
}
