package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader is deliberately go/packages-free: package metadata comes from
// `go list -export -deps -json` (one subprocess, no network, answers come in
// dependency order), module packages are parsed and type-checked from
// source, and everything outside the module — the standard library — is
// imported through its compiler export data with the stdlib gc importer.
// That keeps go.mod dependency-free while giving analyzers full go/types
// information.

// Package is one type-checked module package.
type Package struct {
	// ImportPath is the package's import path (e.g. rowsort/internal/core).
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	// Info holds the type-checking fact tables analyzers query.
	Info *types.Info
	// Target reports whether the package matched the load patterns itself
	// (false for module packages pulled in only as dependencies).
	Target bool
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// hybridImporter resolves imports during module type-checking: module
// packages come from the source-checked cache, everything else from gc
// export data located by `go list -export`.
type hybridImporter struct {
	module  map[string]*types.Package
	exports map[string]string
	gc      types.Importer
}

func newHybridImporter(fset *token.FileSet, exports map[string]string) *hybridImporter {
	h := &hybridImporter{module: make(map[string]*types.Package), exports: exports}
	h.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := h.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})
	return h
}

func (h *hybridImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := h.module[path]; ok {
		return p, nil
	}
	return h.gc.Import(path)
}

// Load lists the packages matching patterns from dir, type-checks every
// module package from source (dependencies first), and returns the analysis
// universe. Test files are not loaded: the invariants guard shipped code.
func Load(dir string, patterns []string) (*Universe, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Incomplete,Module,Error",
	}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string)
	imp := newHybridImporter(fset, exports)
	u := &Universe{Fset: fset, byPath: make(map[string]*Package)}

	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Incomplete {
			return nil, fmt.Errorf("analysis: package %s did not load cleanly", lp.ImportPath)
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Target = !lp.DepOnly
		imp.module[lp.ImportPath] = pkg.Types
		u.Pkgs = append(u.Pkgs, pkg)
		u.byPath[lp.ImportPath] = pkg
	}
	if len(u.Pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no module packages matched %v", patterns)
	}
	u.buildIndexes()
	return u, nil
}

// stdExportsMu guards stdExports, the process-wide cache of stdlib export
// data locations used when type-checking standalone fixture directories.
var (
	stdExportsMu sync.Mutex
	stdExports   = make(map[string]string)
)

// stdlibExports returns export-data paths covering the transitive closure
// of the given stdlib import paths, consulting `go list` only for paths not
// already cached.
func stdlibExports(paths []string) (map[string]string, error) {
	stdExportsMu.Lock()
	defer stdExportsMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := stdExports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{
			"list", "-e", "-export", "-deps", "-json=ImportPath,Export",
		}, missing...)
		listed, err := goList(".", args...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				stdExports[lp.ImportPath] = lp.Export
			}
		}
	}
	out := make(map[string]string, len(stdExports))
	for k, v := range stdExports {
		out[k] = v
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory as one standalone
// package (imports limited to the standard library) and returns a universe
// containing just that package. The analyzer fixture tests load their
// testdata packages through it.
func LoadDir(dir string) (*Universe, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	var imports []string
	for p := range importSet {
		if p != "unsafe" {
			imports = append(imports, p)
		}
	}
	sort.Strings(imports)
	exports, err := stdlibExports(imports)
	if err != nil {
		return nil, err
	}

	imp := newHybridImporter(fset, exports)
	pkg, err := checkFiles(fset, imp, dir, dir, parsed)
	if err != nil {
		return nil, err
	}
	pkg.Target = true
	u := &Universe{Fset: fset, Pkgs: []*Package{pkg}, byPath: map[string]*Package{dir: pkg}}
	u.buildIndexes()
	return u, nil
}

// checkPackage parses the named files and type-checks them as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return checkFiles(fset, imp, path, dir, parsed)
}

// checkFiles type-checks already-parsed files as one package.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{ImportPath: path, Dir: dir, Files: parsed, Types: tpkg, Info: info}, nil
}
