// Package analysistest runs a single analyzer over a testdata fixture
// directory and checks its diagnostics against // want expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest but built on the
// in-tree stdlib-only framework.
//
// A fixture is one standalone package (stdlib imports only) whose files
// mark expected findings with trailing comments:
//
//	s += fmt.Sprintf("%d", x) // want "calls fmt"
//
// Each quoted string is an anchored-nowhere regexp that must match the
// message of a diagnostic reported on that line. Every expectation must be
// matched and every diagnostic must be expected; anything else fails the
// test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rowsort/internal/analysis"
)

// wantRE matches a // want comment and captures its quoted patterns.
var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)

// quotedRE pulls the individual quoted patterns out of wantRE's capture.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture directory as one package, runs the analyzer, and
// reports every mismatch between diagnostics and // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	u, err := analysis.LoadDir(abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	expects, err := parseExpectations(abs)
	if err != nil {
		t.Fatal(err)
	}

	diags := analysis.Run(u, []*analysis.Analyzer{a})
	for _, d := range diags {
		if d.Analyzer != a.Name && d.Analyzer != "directive" {
			t.Errorf("unexpected analyzer %q in diagnostic %s", d.Analyzer, d)
			continue
		}
		if !consume(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// consume marks the first unmatched expectation that covers d.
func consume(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if !e.matched && e.file == d.File && e.line == d.Line && e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations scans the fixture's Go files for // want comments.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var expects []*expectation
	for _, entry := range entries {
		name := entry.Name()
		if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				expects = append(expects, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return expects, nil
}
