package analysis

import (
	"strings"
)

// Annotation names accepted after "//rowsort:". Each corresponds to one
// invariant family; see the package documentation for what they promise.
const (
	AnnotHotpath    = "hotpath"
	AnnotPure       = "pure"
	AnnotKeyEncoder = "keyencoder"
	AnnotPipeline   = "pipeline"
	annotAllow      = "allow"
)

// directivePrefix introduces every rowsort analysis directive. The form is
// the standard Go tool-directive shape: no space after "//".
const directivePrefix = "//rowsort:"

// directive is one parsed "//rowsort:..." comment line.
type directive struct {
	kind string // "hotpath", "pure", "keyencoder", "pipeline", "allow"
	rest string // text after the kind, trimmed ("" if none)
}

// parseDirective recognizes a rowsort directive in a single comment line.
// Returns ok=false for ordinary comments (including "// rowsort:" prose,
// which has a space and is deliberately not a directive).
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	body := strings.TrimPrefix(text, directivePrefix)
	kind, rest, _ := strings.Cut(body, " ")
	return directive{kind: kind, rest: strings.TrimSpace(rest)}, true
}

// suppression is one "//rowsort:allow <analyzer> <justification>" site. It
// silences diagnostics from the named analyzer on its own line and the line
// directly below, so it can sit either at the end of the offending line or
// on its own line above it.
type suppression struct {
	file      string
	line      int
	analyzer  string
	justified bool
}

// parseAllow splits the payload of an allow directive into the target
// analyzer and the justification text.
func parseAllow(rest string) (analyzer, justification string) {
	analyzer, justification, _ = strings.Cut(rest, " ")
	return analyzer, strings.TrimSpace(justification)
}
