package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// FuncNode pairs a function's type-checker object with its declaration and
// owning package, so interprocedural analyzers can jump from a call site to
// the callee's body in one map lookup.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Universe is the loaded module: every type-checked package plus the shared
// indexes analyzers consult (function declarations, annotations,
// suppressions). One Universe is built per lint run and is read-only after
// buildIndexes, so analyzers may share it across goroutines.
type Universe struct {
	// Fset is the file set shared by every package in the universe.
	Fset *token.FileSet
	// Pkgs holds the module packages in dependency order.
	Pkgs []*Package

	byPath map[string]*Package

	// funcDecls maps a function object to its declaration. Generic
	// functions are keyed by their Origin.
	funcDecls map[*types.Func]FuncNode
	// annotations maps a function object to its rowsort annotations.
	annotations map[*types.Func][]string
	// suppressions indexes //rowsort:allow sites by file name.
	suppressions map[string][]suppression
	// problems are malformed-directive diagnostics found while indexing.
	problems []Diagnostic

	memoMu sync.Mutex
	memo   map[string]any
}

// Lookup returns the module package with the given import path, if loaded.
func (u *Universe) Lookup(path string) *Package { return u.byPath[path] }

// FirstTarget returns the first target package in dependency order.
// Universe-wide analyzers use it to elect one pass as the reporting pass so
// interprocedural walks run (and report) exactly once per lint run.
func (u *Universe) FirstTarget() *Package {
	for _, p := range u.Pkgs {
		if p.Target {
			return p
		}
	}
	return nil
}

// FuncDecl resolves a function object to its declaration within the module.
// ok is false for stdlib functions, interface methods, and func literals.
func (u *Universe) FuncDecl(fn *types.Func) (FuncNode, bool) {
	if fn == nil {
		return FuncNode{}, false
	}
	n, ok := u.funcDecls[fn.Origin()]
	return n, ok
}

// HasAnnotation reports whether fn's declaration carries the named
// annotation (AnnotHotpath, AnnotPure, AnnotKeyEncoder, AnnotPipeline).
func (u *Universe) HasAnnotation(fn *types.Func, name string) bool {
	if fn == nil {
		return false
	}
	for _, a := range u.annotations[fn.Origin()] {
		if a == name {
			return true
		}
	}
	return false
}

// AnnotatedFuncs returns every function carrying the named annotation, in
// package dependency order (deterministic across runs).
func (u *Universe) AnnotatedFuncs(name string) []FuncNode {
	var out []FuncNode
	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn != nil && u.HasAnnotation(fn, name) {
					out = append(out, FuncNode{Pkg: pkg, Decl: fd})
				}
			}
		}
	}
	return out
}

// Memo computes-once and caches a universe-wide fact under key. Analyzers
// use it for facts that are expensive to gather and shared across packages
// (e.g. the set of atomically-accessed fields).
func (u *Universe) Memo(key string, compute func() any) any {
	u.memoMu.Lock()
	defer u.memoMu.Unlock()
	if v, ok := u.memo[key]; ok {
		return v
	}
	v := compute()
	u.memo[key] = v
	return v
}

// buildIndexes walks every file once, recording function declarations,
// rowsort annotations, and suppression sites, and validating directive
// syntax as it goes.
func (u *Universe) buildIndexes() {
	u.funcDecls = make(map[*types.Func]FuncNode)
	u.annotations = make(map[*types.Func][]string)
	u.suppressions = make(map[string][]suppression)
	u.memo = make(map[string]any)

	// Comment groups that serve as a FuncDecl's doc are also present in
	// ast.File.Comments; remember them so the general comment sweep below
	// doesn't re-interpret (or double-report) their directives.
	docGroups := make(map[*ast.CommentGroup]bool)

	for _, pkg := range u.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				fn = fn.Origin()
				u.funcDecls[fn] = FuncNode{Pkg: pkg, Decl: fd}
				if fd.Doc == nil {
					continue
				}
				docGroups[fd.Doc] = true
				for _, c := range fd.Doc.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					switch d.kind {
					case AnnotHotpath, AnnotPure, AnnotKeyEncoder, AnnotPipeline:
						u.annotations[fn] = append(u.annotations[fn], d.kind)
					case annotAllow:
						u.addSuppression(c, d)
					default:
						u.problem(c.Pos(), "unknown directive //rowsort:%s", d.kind)
					}
				}
			}
			for _, group := range file.Comments {
				if docGroups[group] {
					continue
				}
				for _, c := range group.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					switch d.kind {
					case annotAllow:
						u.addSuppression(c, d)
					case AnnotHotpath, AnnotPure, AnnotKeyEncoder, AnnotPipeline:
						u.problem(c.Pos(), "//rowsort:%s must be in a function's doc comment", d.kind)
					default:
						u.problem(c.Pos(), "unknown directive //rowsort:%s", d.kind)
					}
				}
			}
		}
	}
}

// addSuppression records one //rowsort:allow site, insisting on both an
// analyzer name and a justification: an unexplained suppression is worse
// than the finding it hides.
func (u *Universe) addSuppression(c *ast.Comment, d directive) {
	analyzer, justification := parseAllow(d.rest)
	if analyzer == "" {
		u.problem(c.Pos(), "//rowsort:allow needs an analyzer name and a justification")
		return
	}
	pos := u.Fset.Position(c.Pos())
	s := suppression{file: pos.Filename, line: pos.Line, analyzer: analyzer, justified: justification != ""}
	if !s.justified {
		u.problem(c.Pos(), "//rowsort:allow %s needs a justification", analyzer)
	}
	u.suppressions[s.file] = append(u.suppressions[s.file], s)
}

// problem records a malformed-directive diagnostic, reported by the driver
// under the pseudo-analyzer name "directive".
func (u *Universe) problem(pos token.Pos, format string, args ...any) {
	position := u.Fset.Position(pos)
	u.problems = append(u.problems, Diagnostic{
		Analyzer: "directive",
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// SuppressionCounts tallies the justified //rowsort:allow sites per
// analyzer across the universe. The lint CLI compares these against a
// committed budget so the suppression count can only shrink over time.
func (u *Universe) SuppressionCounts() map[string]int {
	counts := make(map[string]int)
	for _, sites := range u.suppressions {
		for _, s := range sites {
			if s.justified {
				counts[s.analyzer]++
			}
		}
	}
	return counts
}

// suppressed reports whether a diagnostic is covered by a justified
// //rowsort:allow for its analyzer on the same line or the line above.
func (u *Universe) suppressed(d Diagnostic) bool {
	for _, s := range u.suppressions[d.File] {
		if s.analyzer == d.Analyzer && s.justified && (s.line == d.Line || s.line == d.Line-1) {
			return true
		}
	}
	return false
}
