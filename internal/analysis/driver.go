package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Run executes every analyzer over every target package in the universe and
// returns the surviving diagnostics: suppressions applied, duplicates
// merged (interprocedural analyzers rediscover the same site from multiple
// roots), malformed directives included, all sorted by position.
func Run(u *Universe, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		for _, pkg := range u.Pkgs {
			if !pkg.Target {
				continue
			}
			a.Run(&Pass{Pkg: pkg, U: u, analyzer: a, sink: sink})
		}
	}
	diags = append(diags, u.problems...)

	seen := make(map[string]bool)
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s", d.Analyzer, d.File, d.Line, d.Col, d.Message)
		if seen[key] || u.suppressed(d) {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// WriteText prints diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints diagnostics as a JSON array (machine-readable output for
// CI annotation tooling). An empty run prints [].
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
