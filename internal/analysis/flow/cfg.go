// Package flow builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems on them. It is the
// engine behind the flow-sensitive analyzers (memacct, spillclose,
// chanclose): where the syntactic checkers ask "does a Release appear
// anywhere in this function", the flow-based ones ask "does the acquired
// resource reach a release on every path to return" — which is the question
// the sort pipeline's resource discipline actually depends on.
//
// The graph is statement-granular: each basic block holds the ast.Nodes
// executed in order (statements, plus the condition expressions of if/for
// and the comm statements of select cases), and edges follow Go's control
// flow through if/for/range/switch/select, labeled break/continue, goto,
// fallthrough, and panic. Function literals are NOT inlined — each literal
// gets its own graph — and defer statements appear as ordinary nodes at
// their registration point, leaving their end-of-function semantics to the
// client's transfer function (a deferred release discharges every path
// through the defer; a deferred close must not count as closed before
// return).
//
// Two synthetic blocks terminate the graph: Exit collects every return
// (and the implicit return at the end of the body), PanicExit collects
// panic(...) statements. If the body registers a deferred recover, a
// PanicExit→Exit edge models resumption.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: nodes executed in order, then a transfer of
// control to one of Succs. A block ending in a two-way conditional records
// the branch expression and its true/false successors so edge-sensitive
// analyses can refine facts per branch (the err != nil idiom).
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across runs).
	Index int
	// Kind names what created the block ("entry", "if.then", "for.head",
	// "select.case", ...) — for tests and debugging output.
	Kind string
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible control transfers out of the block.
	Succs []*Block

	// Cond is the branch expression when the block ends in a two-way
	// conditional (if condition, for condition); nil otherwise. TrueSucc
	// and FalseSucc are then the corresponding successors.
	Cond      ast.Expr
	TrueSucc  *Block
	FalseSucc *Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block, Entry first. Unreachable blocks (code after
	// an unconditional return, the body of `for {}` followers) are present
	// but have no path from Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit collects every return path, including falling off the end.
	Exit *Block
	// PanicExit collects panic(...) terminations. It has an edge to Exit
	// only when the body registers a deferred recover.
	PanicExit *Block
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label         string
	breakBlock    *Block
	continueBlock *Block // nil for switch/select
}

// pendingGoto is a goto seen before its label.
type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g       *Graph
	cur     *Block
	targets []target
	labels  map[string]*Block
	gotos   []pendingGoto
	fall    *Block // fallthrough target while building a switch clause
	label   string // pending label for the next for/range/switch/select
}

// Build constructs the control-flow graph of one function body.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.PanicExit = b.newBlock("panic")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // implicit return at the end of the body
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, t)
		}
	}
	if hasDeferredRecover(body) {
		b.edge(g.PanicExit, g.Exit)
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// unreachable parks the builder on a fresh predecessor-less block, so code
// after return/break/goto still builds (and shows as unreachable).
func (b *builder) unreachable() {
	b.cur = b.newBlock("unreachable")
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		cond.Cond = s.Cond
		then := b.newBlock("if.then")
		b.edge(cond, then)
		cond.TrueSucc = then
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		done := b.newBlock("if.done")
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			cond.FalseSucc = els
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		} else {
			b.edge(cond, done)
			cond.FalseSucc = done
		}
		b.edge(thenEnd, done)
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		body := b.newBlock("for.body")
		after := b.newBlock("for.done")
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			head.TrueSucc = body
			head.FalseSucc = after
			b.edge(head, body)
			b.edge(head, after)
		} else {
			b.edge(head, body) // `for {}`: after is reachable only via break
		}
		cont := head
		if s.Post != nil {
			cont = b.newBlock("for.post")
			cont.Nodes = append(cont.Nodes, s.Post)
			b.edge(cont, head)
		}
		b.targets = append(b.targets, target{label: label, breakBlock: after, continueBlock: cont})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // per-iteration key/value assignment
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, after)
		b.targets = append(b.targets, target{label: label, breakBlock: after, continueBlock: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock("select.done")
		b.targets = append(b.targets, target{label: label, breakBlock: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		// A select with no cases (or none ready and no default) blocks
		// forever: no head→after edge exists, matching the semantics.
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.label = s.Label.Name
		}
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.edge(b.cur, t.breakBlock)
			}
			b.unreachable()
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.edge(b.cur, t.continueBlock)
			}
			b.unreachable()
		case token.GOTO:
			if lb, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, lb)
			} else {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.unreachable()
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.edge(b.cur, b.fall)
			}
			b.unreachable()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.unreachable()

	default:
		b.add(s)
		if isPanicStmt(s) {
			b.edge(b.cur, b.g.PanicExit)
			b.unreachable()
		}
	}
}

// switchClauses builds the clause blocks of a (type) switch: the head
// branches to every clause (and past the switch when there is no default),
// clause bodies run to the join, and fallthrough jumps into the next
// clause's body.
func (b *builder) switchClauses(label string, clauses []ast.Stmt) {
	head := b.cur
	after := b.newBlock("switch.done")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(kind)
		b.edge(head, bodies[i])
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.targets = append(b.targets, target{label: label, breakBlock: after})
	outerFall := b.fall
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.fall = nil
		if i+1 < len(bodies) {
			b.fall = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fall = outerFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *builder) findTarget(label *ast.Ident, needContinue bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needContinue && t.continueBlock == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// isPanicStmt reports whether a statement is a direct call to the panic
// builtin. Purely syntactic: a shadowed panic identifier would fool it,
// which no rowsort package does.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// hasDeferredRecover reports whether the body registers a defer that calls
// recover, in which case a panic can resume at the function's exit.
func hasDeferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// Shallow returns the subtrees of one CFG node that belong to its block.
// The only compound statement a block carries whole is the RangeStmt in a
// range.head: its key, value, and range expression execute there, but its
// body's statements live in their own blocks and must not be scanned from
// the head. Every other node is returned as-is.
func Shallow(n ast.Node) []ast.Node {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	var out []ast.Node
	for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// String renders the graph one block per line ("2 if.then -> 4 5"), for
// tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d %s ->", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
