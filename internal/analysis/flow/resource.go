package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The obligation engine answers the question both resource analyzers
// (memacct's broker reservations, spillclose's file handles) share: does a
// resource bound to a local variable reach a release — or an ownership
// transfer — on every path to return? Clients classify what each CFG node
// does to their resource variables; the engine runs the may-held dataflow
// and reports acquisitions that can still be held when the function
// returns.

// Event says what one CFG node does to a tracked resource variable.
type Event int

const (
	// EventAcquire binds the resource to the variable (the Reserve or
	// os.Create call's result assignment).
	EventAcquire Event = iota
	// EventRelease discharges the obligation (Release/Close called,
	// directly or deferred — a defer guarantees release on every path
	// passing through it).
	EventRelease
	// EventEscape transfers ownership: returned, stored into a field or
	// composite literal, passed to a call, captured by a closure. Whoever
	// owns the new location owns the release.
	EventEscape
)

// VarEvent is one classified effect of a node.
type VarEvent struct {
	Var  *types.Var
	Kind Event
	// Node is the acquisition site (for EventAcquire), used in reports.
	Node ast.Node
	// ErrVar, for EventAcquire, is the error variable bound alongside the
	// resource (`f, err := os.Create(...)`). On the branch where that
	// error is non-nil the acquisition failed and no obligation exists —
	// the engine kills the fact on `err != nil` true-edges.
	ErrVar *types.Var
}

// Classify maps one CFG node to its resource events. Release and escape
// events must precede acquire events for the same node (Go evaluates the
// right-hand side before binding).
type Classify func(n ast.Node) []VarEvent

// Leak is one acquisition that may still be held on some path to return.
type Leak struct {
	Var     *types.Var
	Acquire ast.Node
}

// heldFact maps a resource variable to the set of acquisition nodes that
// may still be held. The may-analysis join is union: held on any incoming
// path means a leak is possible.
type heldFact map[*types.Var]map[ast.Node]bool

func (f heldFact) clone() heldFact {
	out := make(heldFact, len(f))
	for v, sites := range f {
		cp := make(map[ast.Node]bool, len(sites))
		for n := range sites {
			cp[n] = true
		}
		out[v] = cp
	}
	return out
}

func heldJoin(a, b heldFact) heldFact {
	out := a.clone()
	for v, sites := range b {
		if out[v] == nil {
			out[v] = make(map[ast.Node]bool, len(sites))
		}
		for n := range sites {
			out[v][n] = true
		}
	}
	return out
}

func heldEqual(a, b heldFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, as := range a {
		bs, ok := b[v]
		if !ok || len(as) != len(bs) {
			return false
		}
		for n := range as {
			if !bs[n] {
				return false
			}
		}
	}
	return true
}

// MustRelease runs the obligation analysis over g and returns the
// acquisitions that may still be held at Exit, ordered by position. Panic
// paths are not checked: a panicking sort is already lost, and deferred
// releases run there anyway.
func MustRelease(fset *token.FileSet, info *types.Info, g *Graph, classify Classify) []Leak {
	// The err-var pairing is static: collect it once up front.
	errPair := make(map[*types.Var]*types.Var) // err var -> resource var
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, ev := range classify(n) {
				if ev.Kind == EventAcquire && ev.ErrVar != nil {
					errPair[ev.ErrVar] = ev.Var
				}
			}
		}
	}

	transfer := func(blk *Block, in heldFact) heldFact {
		out := in
		copied := false
		for _, n := range blk.Nodes {
			for _, ev := range classify(n) {
				if !copied {
					out = out.clone()
					copied = true
				}
				switch ev.Kind {
				case EventAcquire:
					out[ev.Var] = map[ast.Node]bool{ev.Node: true}
				case EventRelease, EventEscape:
					delete(out, ev.Var)
				}
			}
		}
		return out
	}

	// On the branch where the acquisition's error variable is non-nil the
	// open failed: the resource was never acquired, so the obligation dies
	// on that edge.
	edge := func(from, to *Block, out heldFact) heldFact {
		if from.Cond == nil || len(errPair) == 0 {
			return out
		}
		errVar, nonNilSucc := nilCheck(info, from)
		if errVar == nil || to != nonNilSucc {
			return out
		}
		res, ok := errPair[errVar]
		if !ok || out[res] == nil {
			return out
		}
		out = out.clone()
		delete(out, res)
		return out
	}

	in := Solve(g, heldFact{}, Lattice[heldFact]{
		Join:     heldJoin,
		Equal:    heldEqual,
		Transfer: transfer,
		Edge:     edge,
	})

	var leaks []Leak
	for v, sites := range in[g.Exit] {
		for n := range sites {
			leaks = append(leaks, Leak{Var: v, Acquire: n})
		}
	}
	sort.Slice(leaks, func(i, j int) bool {
		pi, pj := fset.Position(leaks[i].Acquire.Pos()), fset.Position(leaks[j].Acquire.Pos())
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return leaks
}

// nilCheck recognizes a block ending in `x != nil` / `x == nil` on a plain
// variable and returns that variable plus the successor taken when x is
// non-nil.
func nilCheck(info *types.Info, blk *Block) (*types.Var, *Block) {
	bin, ok := ast.Unparen(blk.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, nil
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	var id *ast.Ident
	if isNilIdent(y) {
		id, _ = x.(*ast.Ident)
	} else if isNilIdent(x) {
		id, _ = y.(*ast.Ident)
	}
	if id == nil {
		return nil, nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		return nil, nil
	}
	if bin.Op == token.NEQ {
		return v, blk.TrueSucc
	}
	return v, blk.FalseSucc
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
