package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"rowsort/internal/analysis/flow"
)

// A small must-analysis over the generic solver: which variables are
// definitely assigned on every path. Join is intersection (must); the dual
// may-analysis would use union. Facts are name sets.
func mustAssigned(t *testing.T, src, fn string) (*flow.Graph, map[*flow.Block]map[string]bool) {
	g := buildFunc(t, src, fn)
	clone := func(f map[string]bool) map[string]bool {
		out := make(map[string]bool, len(f))
		for k := range f {
			out[k] = true
		}
		return out
	}
	return g, flow.Solve(g, map[string]bool{}, flow.Lattice[map[string]bool]{
		Join: func(a, b map[string]bool) map[string]bool {
			out := make(map[string]bool)
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(blk *flow.Block, in map[string]bool) map[string]bool {
			out := in
			copied := false
			for _, n := range blk.Nodes {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					continue
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if !copied {
							out = clone(out)
							copied = true
						}
						out[id.Name] = true
					}
				}
			}
			return out
		},
	})
}

func TestSolveMustAssignedBothBranches(t *testing.T) {
	src := `package p
func f(c bool) {
	var x, y int
	if c {
		x = 1
		y = 1
	} else {
		x = 2
	}
	_ = x
	_ = y
}`
	g, in := mustAssigned(t, src, "f")
	exit := in[g.Exit]
	if !exit["x"] {
		t.Fatalf("x assigned in both branches must survive the join: %v", exit)
	}
	if exit["y"] {
		t.Fatalf("y assigned in one branch must not survive a must-join: %v", exit)
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	src := `package p
func f(n int) {
	i := 0
	for i < n {
		i = i + 1
	}
	_ = i
}`
	g, in := mustAssigned(t, src, "f")
	if !in[g.Exit]["i"] {
		t.Fatalf("i assigned before the loop must hold at exit: %v", in[g.Exit])
	}
}

// --- MustRelease over a mock acquire/release protocol ---

// checkLeaks type-checks src (no imports) and runs the obligation engine on
// fn with a classifier for the mock protocol: `v := acquire()` acquires,
// `v, err := acquireErr()` acquires with an error pairing, `release(v)`
// releases, `adopt(v)` escapes.
func checkLeaks(t *testing.T, src, fn string) []flow.Leak {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	var body *ast.BlockStmt
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatalf("function %s not found", fn)
	}

	defVar := func(id *ast.Ident) *types.Var {
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	calleeName := func(call *ast.CallExpr) string {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	classify := func(n ast.Node) []flow.VarEvent {
		var evs []flow.VarEvent
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			v := flow.BareVar(info, call.Args[0])
			if v == nil {
				return true
			}
			switch calleeName(call) {
			case "release":
				evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventRelease})
			case "adopt":
				evs = append(evs, flow.VarEvent{Var: v, Kind: flow.EventEscape})
			}
			return true
		})
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				switch calleeName(call) {
				case "acquire":
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						evs = append(evs, flow.VarEvent{Var: defVar(id), Kind: flow.EventAcquire, Node: call})
					}
				case "acquireErr":
					if id, ok := as.Lhs[0].(*ast.Ident); ok && len(as.Lhs) == 2 {
						ev := flow.VarEvent{Var: defVar(id), Kind: flow.EventAcquire, Node: call}
						if errID, ok := as.Lhs[1].(*ast.Ident); ok {
							ev.ErrVar = defVar(errID)
						}
						evs = append(evs, ev)
					}
				}
			}
		}
		return evs
	}
	return flow.MustRelease(fset, info, flow.Build(body), classify)
}

const mockHeader = `package p
func acquire() int { return 0 }
func acquireErr() (int, error) { return 0, nil }
func release(int) {}
func adopt(int) {}
func cond() bool { return false }
`

func TestMustReleaseBranchLeak(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() {
	v := acquire()
	if cond() {
		release(v)
	}
}`, "f")
	if len(leaks) != 1 {
		t.Fatalf("release on one branch only must leak, got %v", leaks)
	}
}

func TestMustReleaseAllPathsClean(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() {
	v := acquire()
	if cond() {
		release(v)
		return
	}
	release(v)
}`, "f")
	if len(leaks) != 0 {
		t.Fatalf("released on every path, got %v", leaks)
	}
}

func TestMustReleaseEarlyReturnLeak(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() {
	v := acquire()
	if cond() {
		return
	}
	release(v)
}`, "f")
	if len(leaks) != 1 {
		t.Fatalf("early return before release must leak, got %v", leaks)
	}
}

func TestMustReleaseErrPathExempt(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() error {
	v, err := acquireErr()
	if err != nil {
		return err
	}
	release(v)
	return nil
}`, "f")
	if len(leaks) != 0 {
		t.Fatalf("failed-acquire error return is not a leak, got %v", leaks)
	}
}

func TestMustReleaseSecondReturnStillLeaks(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() error {
	v, err := acquireErr()
	if err != nil {
		return err
	}
	if cond() {
		return nil
	}
	release(v)
	return nil
}`, "f")
	if len(leaks) != 1 {
		t.Fatalf("return after successful acquire must leak, got %v", leaks)
	}
}

func TestMustReleaseEscapeDischarges(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f() {
	v := acquire()
	adopt(v)
}`, "f")
	if len(leaks) != 0 {
		t.Fatalf("escape transfers ownership, got %v", leaks)
	}
}

func TestMustReleaseLoopReacquire(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f(n int) {
	for i := 0; i < n; i++ {
		v := acquire()
		release(v)
	}
}`, "f")
	if len(leaks) != 0 {
		t.Fatalf("acquire/release per iteration is balanced, got %v", leaks)
	}
}

func TestMustReleaseLoopBreakLeak(t *testing.T) {
	leaks := checkLeaks(t, mockHeader+`
func f(n int) {
	for i := 0; i < n; i++ {
		v := acquire()
		if cond() {
			break
		}
		release(v)
	}
}`, "f")
	if len(leaks) != 1 {
		t.Fatalf("break between acquire and release must leak, got %v", leaks)
	}
}
