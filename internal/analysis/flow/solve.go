package flow

// Lattice describes one forward dataflow problem over a Graph. The fact
// type F is anything the client chooses (bit sets, maps from variables to
// states); must- versus may-analysis is expressed through Join (intersection
// versus union of what each predecessor established).
//
// Transfer and Join must treat their inputs as read-only: a transfer that
// wants to change a map fact copies it first. Edge, when set, refines the
// fact flowing along one specific edge after Transfer — the hook that lets
// a client kill facts on the false arm of an `err != nil` branch.
type Lattice[F any] struct {
	// Join combines the facts arriving over two edges into one.
	Join func(a, b F) F
	// Equal reports whether two facts are the same (fixpoint detection).
	Equal func(a, b F) bool
	// Transfer pushes a fact through one block's nodes.
	Transfer func(b *Block, in F) F
	// Edge optionally refines the block's out-fact per successor edge.
	// nil means the out-fact flows to every successor unchanged.
	Edge func(from, to *Block, out F) F
}

// Solve runs the forward dataflow problem to fixpoint and returns the fact
// at the entry of every reachable block. The fact at g.Exit's entry is the
// join over every return path; unreachable blocks are absent from the map.
//
// Termination requires the usual conditions: a finite-height lattice and
// monotone Transfer/Join. Every analyzer in this module uses small
// per-variable state machines, which satisfy both.
func Solve[F any](g *Graph, init F, l Lattice[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: init}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := l.Transfer(blk, in[blk])
		for _, succ := range blk.Succs {
			edgeOut := out
			if l.Edge != nil {
				edgeOut = l.Edge(blk, succ, out)
			}
			cur, seen := in[succ]
			next := edgeOut
			if seen {
				next = l.Join(cur, edgeOut)
			}
			if !seen || !l.Equal(cur, next) {
				in[succ] = next
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
			}
		}
	}
	return in
}
