package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"rowsort/internal/analysis/flow"
)

// buildFunc parses src as a file and builds the CFG of the named function.
func buildFunc(t *testing.T, src, name string) *flow.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return flow.Build(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// block returns the unique block of the given kind.
func block(t *testing.T, g *flow.Graph, kind string) *flow.Block {
	t.Helper()
	var found *flow.Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			if found != nil {
				t.Fatalf("kind %q not unique", kind)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no block of kind %q in\n%s", kind, g)
	}
	return found
}

func hasEdge(from, to *flow.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	entry, then, els, done := g.Entry, block(t, g, "if.then"), block(t, g, "if.else"), block(t, g, "if.done")
	if !hasEdge(entry, then) || !hasEdge(entry, els) {
		t.Fatalf("missing branch edges:\n%s", g)
	}
	if entry.TrueSucc != then || entry.FalseSucc != els {
		t.Fatalf("true/false successors wrong:\n%s", g)
	}
	if !hasEdge(then, done) || !hasEdge(els, done) {
		t.Fatalf("missing join edges:\n%s", g)
	}
	if !hasEdge(done, g.Exit) {
		t.Fatalf("return must reach exit:\n%s", g)
	}
}

// Corner case: a defer inside a loop stays a plain node of the loop body —
// its registration repeats per iteration, its execution is the client's
// concern — and the back edge still closes the loop.
func TestDeferInLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		defer println(i)
	}
}`, "f")
	body := block(t, g, "for.body")
	foundDefer := false
	for _, n := range body.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			foundDefer = true
		}
	}
	if !foundDefer {
		t.Fatalf("defer not in loop body:\n%s", g)
	}
	head, post := block(t, g, "for.head"), block(t, g, "for.post")
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Fatalf("loop back edge missing:\n%s", g)
	}
	if head.TrueSucc != body || head.FalseSucc != block(t, g, "for.done") {
		t.Fatalf("loop condition successors wrong:\n%s", g)
	}
}

// Corner case: goto jumps across block structure, both backward (into an
// already-built label) and forward (resolved after the label appears).
func TestGotoAcrossBlocks(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		goto done
	}
retry:
	if !c {
		goto retry
	}
	c = false
done:
	println(c)
}`, "f")
	retry, done := block(t, g, "label.retry"), block(t, g, "label.done")
	reach := g.Reachable()
	if !reach[retry] || !reach[done] {
		t.Fatalf("labels unreachable:\n%s", g)
	}
	// The forward goto's source block must edge into label.done.
	intoDone := 0
	for _, b := range g.Blocks {
		if b != done && hasEdge(b, done) {
			intoDone++
		}
	}
	if intoDone < 2 { // fallthrough from c=false plus the forward goto
		t.Fatalf("forward goto not wired into label.done (%d preds):\n%s", intoDone, g)
	}
	// The backward goto closes a cycle through label.retry.
	intoRetry := 0
	for _, b := range g.Blocks {
		if b != retry && hasEdge(b, retry) {
			intoRetry++
		}
	}
	if intoRetry < 2 { // straight-line entry plus the backward goto
		t.Fatalf("backward goto not wired into label.retry (%d preds):\n%s", intoRetry, g)
	}
}

// Corner case: select with a default clause — every clause (including
// default) is a successor of the head, and all rejoin after the select.
func TestSelectWithDefault(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	default:
		return -1
	}
	return 0
}`, "f")
	def := block(t, g, "select.default")
	cases := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			cases++
			if !hasEdge(g.Entry, b) {
				t.Fatalf("case not a successor of the select head:\n%s", g)
			}
			if len(b.Nodes) == 0 {
				t.Fatalf("comm statement missing from case block:\n%s", g)
			}
		}
	}
	if cases != 2 {
		t.Fatalf("want 2 comm cases, got %d:\n%s", cases, g)
	}
	if !hasEdge(g.Entry, def) {
		t.Fatalf("default not a successor of the select head:\n%s", g)
	}
	done := block(t, g, "select.done")
	if !g.Reachable()[done] {
		t.Fatalf("code after select unreachable despite non-returning case:\n%s", g)
	}
}

// A select with no default models blocking: an empty select has no path to
// the code after it.
func TestEmptySelectBlocksForever(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	select {}
	return 1
}`, "f")
	if g.Reachable()[g.Exit] {
		t.Fatalf("exit should be unreachable past select{}:\n%s", g)
	}
}

// Corner case: an infinite for whose only way out is a labeled break. The
// code after the loop must be reachable exactly through the break edge.
func TestInfiniteForLabeledBreak(t *testing.T) {
	g := buildFunc(t, `package p
func f(c chan bool) int {
loop:
	for {
		select {
		case v := <-c:
			if v {
				break loop
			}
		}
	}
	return 1
}`, "f")
	after := block(t, g, "for.done")
	head := block(t, g, "for.head")
	if hasEdge(head, after) {
		t.Fatalf("infinite loop must not fall through to for.done:\n%s", g)
	}
	reach := g.Reachable()
	if !reach[after] || !reach[g.Exit] {
		t.Fatalf("labeled break must make for.done and exit reachable:\n%s", g)
	}
	// Unlabeled break inside the select would target the select, not the
	// loop: the break edge must originate inside the if.then of the case.
	then := block(t, g, "if.then")
	if !hasEdge(then, after) {
		t.Fatalf("break loop edge missing from if.then:\n%s", g)
	}
}

// Corner case: panic terminates into PanicExit; a deferred recover adds the
// resumption edge PanicExit -> Exit.
func TestPanicAndRecoverEdges(t *testing.T) {
	withRecover := buildFunc(t, `package p
func f(c bool) {
	defer func() { recover() }()
	if c {
		panic("boom")
	}
}`, "f")
	if !hasEdge(withRecover.PanicExit, withRecover.Exit) {
		t.Fatalf("deferred recover must add PanicExit->Exit:\n%s", withRecover)
	}
	then := block(t, withRecover, "if.then")
	if !hasEdge(then, withRecover.PanicExit) {
		t.Fatalf("panic must edge into PanicExit:\n%s", withRecover)
	}

	without := buildFunc(t, `package p
func g() {
	panic("boom")
}`, "g")
	if hasEdge(without.PanicExit, without.Exit) {
		t.Fatalf("no recover: PanicExit must not resume:\n%s", without)
	}
	if !g_reachesPanic(without) {
		t.Fatalf("panic edge missing:\n%s", without)
	}
	// Everything after an unconditional panic is dead.
	if without.Reachable()[without.Exit] {
		t.Fatalf("exit should be unreachable after unconditional panic:\n%s", without)
	}
}

func g_reachesPanic(g *flow.Graph) bool {
	return g.Reachable()[g.PanicExit]
}

// Switch: fallthrough jumps into the next clause's body; without a default
// the head can skip the switch entirely.
func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x += 2
	}
	return x
}`, "f")
	var cases []*flow.Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("want 2 cases, got %d:\n%s", len(cases), g)
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
	done := block(t, g, "switch.done")
	if !hasEdge(g.Entry, done) {
		t.Fatalf("switch without default must allow skipping all cases:\n%s", g)
	}

	withDefault := buildFunc(t, `package p
func g(x int) int {
	switch {
	case x > 0:
		return 1
	default:
		return 0
	}
}`, "g")
	head := withDefault.Entry
	for _, s := range head.Succs {
		if s.Kind == "switch.done" {
			t.Fatalf("switch with default must not skip its clauses:\n%s", withDefault)
		}
	}
}

// Range loops: head repeats the per-iteration assignment, body loops back,
// and both body and done are reachable.
func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f")
	head, body, done := block(t, g, "range.head"), block(t, g, "range.body"), block(t, g, "range.done")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head must carry the RangeStmt:\n%s", g)
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head node is %T:\n%s", head.Nodes[0], g)
	}
	if !hasEdge(head, body) || !hasEdge(head, done) || !hasEdge(body, head) {
		t.Fatalf("range loop shape wrong:\n%s", g)
	}
}

// Labeled continue targets the labeled loop's post/head, not the inner one.
func TestLabeledContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > i {
				continue outer
			}
			s++
		}
	}
	return s
}`, "f")
	// The outer loop has a post block (i++); continue outer must edge there.
	then := block(t, g, "if.then")
	var outerPost *flow.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.post" && hasEdge(then, b) {
			outerPost = b
		}
	}
	if outerPost == nil {
		t.Fatalf("continue outer edge missing:\n%s", g)
	}
}

// Code after return is kept but unreachable.
func TestUnreachableAfterReturn(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	println("dead")
}`, "f")
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && reach[b] {
			t.Fatalf("unreachable block is reachable:\n%s", g)
		}
	}
	if !reach[g.Exit] {
		t.Fatalf("exit must be reachable:\n%s", g)
	}
}
