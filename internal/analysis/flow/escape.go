package flow

import (
	"go/ast"
	"go/types"
)

// Escapes returns the tracked variables whose ownership leaves the current
// function inside node n: the variable appears bare (or address-taken) as a
// call argument, in a return statement, on the right-hand side of an
// assignment to another location, in a composite literal, as a channel send
// value — or anywhere inside a function literal, which captures it.
//
// Receiver uses (v.Grow(1), v.Close()) and field reads (v.n) are NOT
// escapes: they use the resource without transferring who must release it.
// Function literal bodies are scanned only for captures; their own
// acquisitions are analyzed separately on the literal's own graph.
func Escapes(info *types.Info, n ast.Node, tracked func(*types.Var) bool) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	report := func(v *types.Var) {
		if v != nil && tracked(v) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	reportExpr := func(e ast.Expr) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok { // &v escapes too
			e = ast.Unparen(u.X)
		}
		report(BareVar(info, e))
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Any reference inside a closure is a capture: the closure may
			// release (or leak) the resource after this function returns.
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						report(v)
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			for _, arg := range m.Args {
				reportExpr(arg)
			}
		case *ast.ReturnStmt:
			for _, res := range m.Results {
				reportExpr(res)
			}
		case *ast.AssignStmt:
			for _, rhs := range m.Rhs {
				reportExpr(rhs)
			}
		case *ast.CompositeLit:
			for _, elt := range m.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				reportExpr(elt)
			}
		case *ast.SendStmt:
			reportExpr(m.Value)
		}
		return true
	})
	return out
}

// BareVar resolves an expression (modulo parentheses) to the plain local or
// parameter variable it names, or nil for anything more structured.
func BareVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
