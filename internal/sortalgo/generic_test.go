package sortalgo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// inputs returns a family of adversarial and typical integer inputs.
func inputs(n int, rng *rand.Rand) map[string][]uint32 {
	m := map[string][]uint32{}

	random := make([]uint32, n)
	for i := range random {
		random[i] = rng.Uint32()
	}
	m["random"] = random

	sorted := make([]uint32, n)
	for i := range sorted {
		sorted[i] = uint32(i)
	}
	m["sorted"] = sorted

	reversed := make([]uint32, n)
	for i := range reversed {
		reversed[i] = uint32(n - i)
	}
	m["reversed"] = reversed

	equal := make([]uint32, n)
	for i := range equal {
		equal[i] = 42
	}
	m["allEqual"] = equal

	fewUnique := make([]uint32, n)
	for i := range fewUnique {
		fewUnique[i] = uint32(rng.Intn(4))
	}
	m["fewUnique"] = fewUnique

	organPipe := make([]uint32, n)
	for i := range organPipe {
		if i < n/2 {
			organPipe[i] = uint32(i)
		} else {
			organPipe[i] = uint32(n - i)
		}
	}
	m["organPipe"] = organPipe

	nearlySorted := append([]uint32(nil), sorted...)
	if n > 0 {
		for k := 0; k < n/20+1; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			nearlySorted[i], nearlySorted[j] = nearlySorted[j], nearlySorted[i]
		}
	}
	m["nearlySorted"] = nearlySorted

	pushHeap := make([]uint32, n) // ascending sawtooth, a classic bad case
	for i := range pushHeap {
		pushHeap[i] = uint32(i % 17)
	}
	m["sawtooth"] = pushHeap

	return m
}

var algorithms = map[string]func([]uint32, LessFunc[uint32]){
	"Insertion":  Insertion[uint32],
	"Heapsort":   Heapsort[uint32],
	"Introsort":  Introsort[uint32],
	"StableSort": StableSort[uint32],
	"Pdqsort":    Pdqsort[uint32],
}

func TestAlgorithmsSortCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, alg := range algorithms {
		sizes := []int{0, 1, 2, 3, 10, 24, 25, 100, 1000, 5000}
		if name == "Insertion" {
			sizes = []int{0, 1, 2, 3, 10, 24, 100, 500}
		}
		for _, n := range sizes {
			for shape, in := range inputs(n, rng) {
				got := append([]uint32(nil), in...)
				want := append([]uint32(nil), in...)
				alg(got, func(a, b uint32) bool { return a < b })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s on %s n=%d: index %d got %d want %d", name, shape, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestAlgorithmsDescendingComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]uint32, 2000)
	for i := range in {
		in[i] = rng.Uint32() % 100
	}
	for name, alg := range algorithms {
		got := append([]uint32(nil), in...)
		alg(got, func(a, b uint32) bool { return a > b })
		for i := 1; i < len(got); i++ {
			if got[i] > got[i-1] {
				t.Fatalf("%s: not descending at %d", name, i)
			}
		}
	}
}

func TestQuickSortedPermutation(t *testing.T) {
	for name, alg := range algorithms {
		if name == "Insertion" {
			continue // quadratic; covered above at small n
		}
		alg := alg
		f := func(in []uint32) bool {
			got := append([]uint32(nil), in...)
			alg(got, func(a, b uint32) bool { return a < b })
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				return false
			}
			// Permutation check via multiset counts.
			counts := map[uint32]int{}
			for _, x := range in {
				counts[x]++
			}
			for _, x := range got {
				counts[x]--
			}
			for _, c := range counts {
				if c != 0 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

type pair struct {
	key uint32
	seq int
}

func TestStableSortIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	in := make([]pair, n)
	for i := range in {
		in[i] = pair{key: uint32(rng.Intn(16)), seq: i}
	}
	got := append([]pair(nil), in...)
	StableSort(got, func(a, b pair) bool { return a.key < b.key })
	for i := 1; i < n; i++ {
		if got[i].key == got[i-1].key && got[i].seq < got[i-1].seq {
			t.Fatalf("StableSort broke stability at %d", i)
		}
		if got[i].key < got[i-1].key {
			t.Fatalf("StableSort not sorted at %d", i)
		}
	}
}

func TestInsertionIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := make([]pair, 300)
	for i := range in {
		in[i] = pair{key: uint32(rng.Intn(5)), seq: i}
	}
	Insertion(in, func(a, b pair) bool { return a.key < b.key })
	for i := 1; i < len(in); i++ {
		if in[i].key == in[i-1].key && in[i].seq < in[i-1].seq {
			t.Fatal("Insertion broke stability")
		}
	}
}

func TestPartialInsertionGivesUp(t *testing.T) {
	// A reversed run needs many moves, so the detector must bail out.
	a := []uint32{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	if partialInsertion(a, 0, len(a), func(x, y uint32) bool { return x < y }) {
		t.Fatal("partialInsertion should give up on a reversed run")
	}
	b := []uint32{0, 1, 2, 4, 3, 5, 6, 7}
	if !partialInsertion(b, 0, len(b), func(x, y uint32) bool { return x < y }) {
		t.Fatal("partialInsertion should finish a nearly sorted run")
	}
	if !sort.SliceIsSorted(b, func(i, j int) bool { return b[i] < b[j] }) {
		t.Fatal("partialInsertion should have sorted the nearly sorted run")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1 << 20: 20}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestHeapsortStrings(t *testing.T) {
	in := []string{"pear", "apple", "fig", "apple", "banana", ""}
	Heapsort(in, func(a, b string) bool { return a < b })
	if !sort.StringsAreSorted(in) {
		t.Fatalf("Heapsort strings: %v", in)
	}
}

func TestIntrosortDepthLimitFallback(t *testing.T) {
	// Median-of-3 killer-ish input: many duplicates plus adversarial order.
	// We only assert correctness; the depth limit guarantees termination.
	n := 1 << 14
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32((i * 2654435761) % 64)
	}
	Introsort(in, func(a, b uint32) bool { return a < b })
	if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
		t.Fatal("Introsort failed on adversarial duplicates")
	}
}
