package sortalgo

import (
	"bytes"
	"encoding/binary"
)

// Duplicate-run (RLE) group sorting: when a run is duplicate-heavy, sorting
// one representative row per adjacent equal-key group and then expanding the
// groups moves each distinct key through the sort once instead of once per
// row (the DuckDB RLESort idea). The caller sorts the representative rows
// with any STABLE byte sort on the keyWidth prefix; stability makes the
// expanded output byte-identical to a stable sort of the original rows —
// equal-key groups land in first-appearance order, exactly where a stable
// row-at-a-time sort would put their rows.
//
// Only valid when the keyWidth prefix is byte-decisive (no tie-break):
// grouping byte-equal rows assumes byte equality is row-order equality.

// GroupTagBytes is the representative-row payload: a little-endian uint32
// start index and uint32 row count appended after the key prefix. The tags
// ride through the byte sort untouched, like any row payload.
const GroupTagBytes = 8

// CollectDupGroups scans the run for adjacent groups of rows byte-equal on
// their keyWidth prefix and, when the run is duplicate-heavy enough to
// profit (average group size of at least two), returns one representative
// row per group: the group's key prefix followed by its start index and row
// count. ok is false when grouping would not pay, including runs too large
// for 32-bit tags.
func CollectDupGroups(data []byte, rowWidth, keyWidth int) (reps []byte, groups int, ok bool) {
	return CollectDupGroupsMin(data, rowWidth, keyWidth, 2)
}

// CollectDupGroupsMin is CollectDupGroups with a caller-chosen payoff bar:
// grouping proceeds only while the adjacent groups average at least minAvg
// rows each. A sampled planner that is confident the run is duplicate-heavy
// can relax the bar below the historical two; minAvg <= 1 accepts any
// grouping.
func CollectDupGroupsMin(data []byte, rowWidth, keyWidth int, minAvg float64) (reps []byte, groups int, ok bool) {
	n := len(data) / rowWidth
	if n < 2 || keyWidth <= 0 || n > 1<<31 {
		return nil, 0, false
	}
	limit := n
	if minAvg > 1 {
		limit = int(float64(n) / minAvg)
	}
	groups = 1
	for i := 1; i < n; i++ {
		if !bytes.Equal(data[(i-1)*rowWidth:(i-1)*rowWidth+keyWidth], data[i*rowWidth:i*rowWidth+keyWidth]) {
			groups++
			if groups > limit {
				return nil, 0, false
			}
		}
	}
	repWidth := keyWidth + GroupTagBytes
	reps = make([]byte, groups*repWidth)
	g := 0
	start := 0
	emit := func(end int) {
		rep := reps[g*repWidth:]
		copy(rep[:keyWidth], data[start*rowWidth:start*rowWidth+keyWidth])
		binary.LittleEndian.PutUint32(rep[keyWidth:], uint32(start))
		binary.LittleEndian.PutUint32(rep[keyWidth+4:], uint32(end-start))
		g++
		start = end
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(data[(i-1)*rowWidth:(i-1)*rowWidth+keyWidth], data[i*rowWidth:i*rowWidth+keyWidth]) {
			emit(i)
		}
	}
	emit(n)
	return reps, groups, true
}

// ExpandDupGroups rebuilds the sorted run in dst from sorted representative
// rows: each group's rows are copied contiguously, in their original
// within-group order, from src. dst and src must not overlap and both hold
// the full run.
func ExpandDupGroups(dst, src []byte, rowWidth int, reps []byte, keyWidth int) {
	repWidth := keyWidth + GroupTagBytes
	out := 0
	for g := 0; g+repWidth <= len(reps); g += repWidth {
		start := int(binary.LittleEndian.Uint32(reps[g+keyWidth:]))
		count := int(binary.LittleEndian.Uint32(reps[g+keyWidth+4:]))
		out += copy(dst[out:], src[start*rowWidth:(start+count)*rowWidth])
	}
}
