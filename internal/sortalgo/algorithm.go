package sortalgo

import "fmt"

// Algorithm selects one of the package's sorting algorithms by name, so the
// micro-benchmarks can sweep algorithms while holding the data format and
// comparison strategy fixed (the paper compares each algorithm only against
// itself).
type Algorithm uint8

// The selectable algorithms.
const (
	// AlgIntrosort is the std::sort analog.
	AlgIntrosort Algorithm = iota
	// AlgStable is the std::stable_sort analog.
	AlgStable
	// AlgPdq is pattern-defeating quicksort.
	AlgPdq
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case AlgIntrosort:
		return "introsort"
	case AlgStable:
		return "stablesort"
	case AlgPdq:
		return "pdqsort"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// SortSlice sorts a with the selected algorithm.
func SortSlice[E any](alg Algorithm, a []E, less LessFunc[E]) {
	switch alg {
	case AlgIntrosort:
		Introsort(a, less)
	case AlgStable:
		StableSort(a, less)
	case AlgPdq:
		Pdqsort(a, less)
	default:
		panic(fmt.Sprintf("sortalgo: unknown algorithm %d", alg))
	}
}
