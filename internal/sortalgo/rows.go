package sortalgo

import "bytes"

// Rows is an array of fixed-width byte rows stored back to back in one flat
// buffer, sorted in place by physically moving rows. This is the normalized
// key representation: equal-width keys can be swapped in place, avoiding the
// indirection of sorting indices or pointers, which is where the row
// format's cache locality comes from.
//
// Compare defaults to bytes.Compare (the memcmp analog). The DuckDB-style
// sorter installs a comparator that falls back to full string comparison
// when truncated string prefixes tie.
type Rows struct {
	Data    []byte
	Width   int
	Compare func(a, b []byte) int

	tmp   []byte // scratch row for swaps
	pivot []byte // scratch row for partition pivots
}

// NewRows wraps data as rows of the given width. len(data) must be a
// multiple of width.
func NewRows(data []byte, width int) *Rows {
	if width <= 0 || len(data)%width != 0 {
		panic("sortalgo: rows data length must be a positive multiple of width")
	}
	return &Rows{Data: data, Width: width}
}

// Len returns the number of rows.
func (r *Rows) Len() int {
	if r.Width == 0 {
		return 0
	}
	return len(r.Data) / r.Width
}

// Row returns the byte slice of row i, aliasing the underlying buffer.
func (r *Rows) Row(i int) []byte {
	return r.Data[i*r.Width : (i+1)*r.Width]
}

func (r *Rows) cmp(a, b []byte) int {
	if r.Compare != nil {
		return r.Compare(a, b)
	}
	return bytes.Compare(a, b)
}

func (r *Rows) less(i, j int) bool { return r.cmp(r.Row(i), r.Row(j)) < 0 }

func (r *Rows) lessRow(i int, row []byte) bool { return r.cmp(r.Row(i), row) < 0 }

func (r *Rows) rowLess(row []byte, i int) bool { return r.cmp(row, r.Row(i)) < 0 }

// Swap exchanges rows i and j by copying bytes through a scratch row.
func (r *Rows) Swap(i, j int) {
	if r.tmp == nil {
		//rowsort:allow hotpathalloc one-time scratch row, amortized over every later swap
		r.tmp = make([]byte, r.Width)
	}
	a, b := r.Row(i), r.Row(j)
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}

// copyRow copies row src over row dst.
func (r *Rows) copyRow(dst, src int) { copy(r.Row(dst), r.Row(src)) }

// savePivot copies row i into the pivot scratch buffer and returns it.
func (r *Rows) savePivot(i int) []byte {
	if r.pivot == nil {
		//rowsort:allow hotpathalloc one-time pivot scratch row, amortized over every later partition
		r.pivot = make([]byte, r.Width)
	}
	copy(r.pivot, r.Row(i))
	return r.pivot
}

// IsSorted reports whether the rows are in nondecreasing order.
func (r *Rows) IsSorted() bool {
	for i := 1; i < r.Len(); i++ {
		if r.less(i, i-1) {
			return false
		}
	}
	return true
}

// InsertionSort sorts rows [lo,hi) with insertion sort.
func (r *Rows) InsertionSort(lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && r.less(j, j-1); j-- {
			r.Swap(j, j-1)
		}
	}
}

// Heapsort sorts rows [lo,hi) with heapsort.
func (r *Rows) Heapsort(lo, hi int) {
	n := hi - lo
	sift := func(root, n int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && r.less(lo+child, lo+child+1) {
				child++
			}
			if !r.less(lo+root, lo+child) {
				return
			}
			r.Swap(lo+root, lo+child)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for i := n - 1; i > 0; i-- {
		r.Swap(lo, lo+i)
		sift(0, i)
	}
}

// Introsort sorts all rows with introspective sort.
//
//rowsort:hotpath
func (r *Rows) Introsort() {
	n := r.Len()
	if n < 2 {
		return
	}
	r.introsortLoop(0, n, 2*log2(n))
}

func (r *Rows) introsortLoop(lo, hi, depth int) {
	for hi-lo > insertionThreshold {
		if depth == 0 {
			r.Heapsort(lo, hi)
			return
		}
		depth--
		mid := lo + (hi-lo)/2
		r.sort3(lo, mid, hi-1)
		r.Swap(lo, mid)
		p := r.hoarePartition(lo, hi)
		if p-lo < hi-p-1 {
			r.introsortLoop(lo, p, depth)
			lo = p + 1
		} else {
			r.introsortLoop(p+1, hi, depth)
			hi = p
		}
	}
	r.InsertionSort(lo, hi)
}

// hoarePartition partitions [lo,hi) around the pivot at row lo and returns
// its final index.
func (r *Rows) hoarePartition(lo, hi int) int {
	pivot := r.savePivot(lo)
	i, j := lo+1, hi-1
	for {
		for i <= j && r.lessRow(i, pivot) {
			i++
		}
		for i <= j && !r.lessRow(j, pivot) {
			j--
		}
		if i > j {
			break
		}
		r.Swap(i, j)
		i++
		j--
	}
	r.Swap(lo, j)
	return j
}

func (r *Rows) sort3(i0, i1, i2 int) {
	if r.less(i1, i0) {
		r.Swap(i1, i0)
	}
	if r.less(i2, i1) {
		r.Swap(i2, i1)
		if r.less(i1, i0) {
			r.Swap(i1, i0)
		}
	}
}

// Pdqsort sorts all rows with pattern-defeating quicksort, the comparison
// sort DuckDB uses on normalized keys when strings are present.
//
//rowsort:hotpath
func (r *Rows) Pdqsort() {
	n := r.Len()
	if n < 2 {
		return
	}
	r.pdqLoop(0, n, log2(n), true)
}

func (r *Rows) pdqLoop(lo, hi, badAllowed int, leftmost bool) {
	for {
		size := hi - lo
		if size < insertionThreshold {
			r.InsertionSort(lo, hi)
			return
		}

		s2 := size / 2
		if size > nintherThreshold {
			r.sort3(lo, lo+s2, hi-1)
			r.sort3(lo+1, lo+s2-1, hi-2)
			r.sort3(lo+2, lo+s2+1, hi-3)
			r.sort3(lo+s2-1, lo+s2, lo+s2+1)
			r.Swap(lo, lo+s2)
		} else {
			r.sort3(lo+s2, lo, hi-1)
		}

		if !leftmost && !r.less(lo-1, lo) {
			lo = r.partitionLeft(lo, hi) + 1
			continue
		}

		pivotPos, alreadyPartitioned := r.partitionRight(lo, hi)

		lSize, rSize := pivotPos-lo, hi-(pivotPos+1)
		if lSize < size/8 || rSize < size/8 {
			badAllowed--
			if badAllowed <= 0 {
				r.Heapsort(lo, hi)
				return
			}
			if lSize >= insertionThreshold {
				r.Swap(lo, lo+lSize/4)
				r.Swap(pivotPos-1, pivotPos-lSize/4)
				if lSize > nintherThreshold {
					r.Swap(lo+1, lo+lSize/4+1)
					r.Swap(lo+2, lo+lSize/4+2)
					r.Swap(pivotPos-2, pivotPos-(lSize/4+1))
					r.Swap(pivotPos-3, pivotPos-(lSize/4+2))
				}
			}
			if rSize >= insertionThreshold {
				r.Swap(pivotPos+1, pivotPos+1+rSize/4)
				r.Swap(hi-1, hi-rSize/4)
				if rSize > nintherThreshold {
					r.Swap(pivotPos+2, pivotPos+2+rSize/4)
					r.Swap(pivotPos+3, pivotPos+3+rSize/4)
					r.Swap(hi-2, hi-(1+rSize/4))
					r.Swap(hi-3, hi-(2+rSize/4))
				}
			}
		} else if alreadyPartitioned &&
			r.partialInsertion(lo, pivotPos) &&
			r.partialInsertion(pivotPos+1, hi) {
			return
		}

		r.pdqLoop(lo, pivotPos, badAllowed, leftmost)
		lo = pivotPos + 1
		leftmost = false
	}
}

func (r *Rows) partitionRight(lo, hi int) (pivotPos int, alreadyPartitioned bool) {
	// Partition calls never nest (each completes before pdqLoop recurses),
	// so the shared pivot scratch row is safe to reuse.
	pivot := r.savePivot(lo)
	first, last := lo+1, hi

	for r.lessRow(first, pivot) {
		first++
	}
	if first-1 == lo {
		for first < last {
			last--
			if r.lessRow(last, pivot) {
				break
			}
		}
	} else {
		for {
			last--
			if r.lessRow(last, pivot) {
				break
			}
		}
	}

	alreadyPartitioned = first >= last
	for first < last {
		r.Swap(first, last)
		first++
		for r.lessRow(first, pivot) {
			first++
		}
		for {
			last--
			if r.lessRow(last, pivot) {
				break
			}
		}
	}

	pivotPos = first - 1
	r.copyRow(lo, pivotPos)
	copy(r.Row(pivotPos), pivot)
	return pivotPos, alreadyPartitioned
}

func (r *Rows) partitionLeft(lo, hi int) int {
	pivot := r.savePivot(lo)
	first, last := lo, hi

	for {
		last--
		if !r.rowLess(pivot, last) {
			break
		}
	}
	if last+1 == hi {
		for first < last {
			first++
			if r.rowLess(pivot, first) {
				break
			}
		}
	} else {
		for {
			first++
			if r.rowLess(pivot, first) {
				break
			}
		}
	}

	for first < last {
		r.Swap(first, last)
		for {
			last--
			if !r.rowLess(pivot, last) {
				break
			}
		}
		for {
			first++
			if r.rowLess(pivot, first) {
				break
			}
		}
	}

	r.copyRow(lo, last)
	copy(r.Row(last), pivot)
	return last
}

func (r *Rows) partialInsertion(lo, hi int) bool {
	if lo == hi {
		return true
	}
	limit := 0
	for cur := lo + 1; cur < hi; cur++ {
		if limit > partialInsertLimit {
			return false
		}
		sift := cur
		for sift > lo && r.less(sift, sift-1) {
			r.Swap(sift, sift-1)
			sift--
		}
		limit += cur - sift
	}
	return true
}
