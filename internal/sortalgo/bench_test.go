package sortalgo

import (
	"encoding/binary"
	"fmt"
	"testing"

	"rowsort/internal/workload"
)

func benchInput(n int) []uint32 {
	rng := workload.NewRNG(1)
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

func BenchmarkGenericSorts(b *testing.B) {
	in := benchInput(1 << 16)
	algs := []struct {
		name string
		run  func([]uint32)
	}{
		{"introsort", func(a []uint32) { Introsort(a, func(x, y uint32) bool { return x < y }) }},
		{"stablesort", func(a []uint32) { StableSort(a, func(x, y uint32) bool { return x < y }) }},
		{"pdqsort", func(a []uint32) { Pdqsort(a, func(x, y uint32) bool { return x < y }) }},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			buf := make([]uint32, len(in))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				alg.run(buf)
			}
		})
	}
}

// BenchmarkPdqsortPatterns shows pattern-defeating behaviour: sorted and
// all-equal inputs should be far faster than random.
func BenchmarkPdqsortPatterns(b *testing.B) {
	n := 1 << 16
	patterns := map[string]func(i int) uint32{
		"random":   func(i int) uint32 { return uint32(i*2654435761 + 12345) },
		"sorted":   func(i int) uint32 { return uint32(i) },
		"reversed": func(i int) uint32 { return uint32(n - i) },
		"allEqual": func(int) uint32 { return 7 },
	}
	for name, gen := range patterns {
		in := make([]uint32, n)
		for i := range in {
			in[i] = gen(i)
		}
		b.Run(name, func(b *testing.B) {
			buf := make([]uint32, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				Pdqsort(buf, func(x, y uint32) bool { return x < y })
			}
		})
	}
}

func BenchmarkRowsSorts(b *testing.B) {
	for _, width := range []int{8, 16, 32} {
		n := 1 << 14
		rng := workload.NewRNG(2)
		base := make([]byte, n*width)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(base[i*width:], rng.Uint64())
		}
		for _, alg := range []string{"introsort", "pdqsort"} {
			b.Run(fmt.Sprintf("width=%d/%s", width, alg), func(b *testing.B) {
				buf := make([]byte, len(base))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(buf, base)
					r := NewRows(buf, width)
					if alg == "introsort" {
						r.Introsort()
					} else {
						r.Pdqsort()
					}
				}
			})
		}
	}
}
