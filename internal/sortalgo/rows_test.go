package sortalgo

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildRows packs vals as big-endian uint32 rows, optionally widened with a
// constant suffix to test wider strides.
func buildRows(vals []uint32, width int) []byte {
	if width < 4 {
		panic("width must be >= 4")
	}
	data := make([]byte, len(vals)*width)
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[i*width:], v)
	}
	return data
}

func rowValues(data []byte, width int) []uint32 {
	out := make([]uint32, len(data)/width)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(data[i*width:])
	}
	return out
}

func TestNewRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned data")
		}
	}()
	NewRows(make([]byte, 7), 4)
}

func TestRowsBasics(t *testing.T) {
	r := NewRows(buildRows([]uint32{3, 1, 2}, 4), 4)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.IsSorted() {
		t.Fatal("should not be sorted")
	}
	r.Swap(0, 1)
	if got := rowValues(r.Data, 4); got[0] != 1 || got[1] != 3 {
		t.Fatalf("swap wrong: %v", got)
	}
}

func TestRowSortsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sorters := map[string]func(r *Rows){
		"InsertionSort": func(r *Rows) { r.InsertionSort(0, r.Len()) },
		"Heapsort":      func(r *Rows) { r.Heapsort(0, r.Len()) },
		"Introsort":     (*Rows).Introsort,
		"Pdqsort":       (*Rows).Pdqsort,
	}
	for name, sortRows := range sorters {
		sizes := []int{0, 1, 2, 23, 24, 25, 129, 1000, 4096}
		if name == "InsertionSort" {
			sizes = []int{0, 1, 2, 25, 300}
		}
		for _, n := range sizes {
			for shape, vals := range inputs(n, rng) {
				for _, width := range []int{4, 8, 12} {
					r := NewRows(buildRows(vals, width), width)
					sortRows(r)
					got := rowValues(r.Data, width)
					want := append([]uint32(nil), vals...)
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s %s n=%d w=%d: idx %d got %d want %d",
								name, shape, n, width, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestRowsPdqsortQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		const width = 8
		r := NewRows(buildRows(vals, width), width)
		r.Pdqsort()
		if !r.IsSorted() {
			return false
		}
		got := rowValues(r.Data, width)
		counts := map[uint32]int{}
		for _, v := range vals {
			counts[v]++
		}
		for _, v := range got {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRowsCustomComparator(t *testing.T) {
	// Descending order via a custom comparator.
	vals := []uint32{5, 1, 9, 1, 7}
	r := NewRows(buildRows(vals, 4), 4)
	r.Compare = func(a, b []byte) int { return bytes.Compare(b, a) }
	r.Pdqsort()
	got := rowValues(r.Data, 4)
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Fatalf("not descending: %v", got)
		}
	}
}

func TestRowsWideRowsMoveWholeRow(t *testing.T) {
	// Each row carries a payload byte after the key; sorting must move it
	// together with the key.
	const width = 8
	vals := []uint32{30, 10, 20}
	data := buildRows(vals, width)
	for i, v := range vals {
		data[i*width+7] = byte(v) // payload marker
	}
	r := NewRows(data, width)
	r.Introsort()
	for i := 0; i < r.Len(); i++ {
		key := binary.BigEndian.Uint32(r.Row(i))
		if r.Row(i)[7] != byte(key) {
			t.Fatalf("row %d payload %d does not match key %d", i, r.Row(i)[7], key)
		}
	}
}

func TestRowsLenZeroWidth(t *testing.T) {
	r := &Rows{}
	if r.Len() != 0 {
		t.Fatal("zero-width rows should have zero length")
	}
}
