package sortalgo

// Pdqsort sorts a with pattern-defeating quicksort (Peters). Compared to
// introsort it adds: detection of already-partitioned ranges finished with a
// bounded insertion sort (fast on sorted and nearly-sorted inputs), grouping
// of elements equal to the pivot (fast on low-cardinality keys — the
// Correlated distributions), deterministic shuffling on unbalanced
// partitions to defeat adversarial patterns, and the usual heapsort
// fallback. This is the comparison-sort half of the paper's normalized-key
// design: DuckDB sorts keys with pdqsort when strings are present.
func Pdqsort[E any](a []E, less LessFunc[E]) {
	if len(a) < 2 {
		return
	}
	pdqLoop(a, 0, len(a), log2(len(a)), true, less)
}

func pdqLoop[E any](a []E, lo, hi, badAllowed int, leftmost bool, less LessFunc[E]) {
	for {
		size := hi - lo
		if size < insertionThreshold {
			Insertion(a[lo:hi], less)
			return
		}

		// Choose a pivot: median of three, or median of three medians
		// (ninther) for large ranges. The pivot ends up at a[lo].
		s2 := size / 2
		if size > nintherThreshold {
			sort3(a, lo, lo+s2, hi-1, less)
			sort3(a, lo+1, lo+s2-1, hi-2, less)
			sort3(a, lo+2, lo+s2+1, hi-3, less)
			sort3(a, lo+s2-1, lo+s2, lo+s2+1, less)
			a[lo], a[lo+s2] = a[lo+s2], a[lo]
		} else {
			sort3(a, lo+s2, lo, hi-1, less)
		}

		// If the chosen pivot equals the predecessor of this range (the
		// pivot of an ancestor partition), the range contains many elements
		// equal to it: partition them to the left and skip past them.
		if !leftmost && !less(a[lo-1], a[lo]) {
			lo = partitionLeft(a, lo, hi, less) + 1
			continue
		}

		pivotPos, alreadyPartitioned := pdqPartitionRight(a, lo, hi, less)

		lSize, rSize := pivotPos-lo, hi-(pivotPos+1)
		if lSize < size/8 || rSize < size/8 {
			// Highly unbalanced: the pattern-defeating part. After too many
			// bad partitions, give up on quicksort.
			badAllowed--
			if badAllowed <= 0 {
				Heapsort(a[lo:hi], less)
				return
			}
			// Break up common patterns by swapping a few elements.
			if lSize >= insertionThreshold {
				a[lo], a[lo+lSize/4] = a[lo+lSize/4], a[lo]
				a[pivotPos-1], a[pivotPos-lSize/4] = a[pivotPos-lSize/4], a[pivotPos-1]
				if lSize > nintherThreshold {
					a[lo+1], a[lo+lSize/4+1] = a[lo+lSize/4+1], a[lo+1]
					a[lo+2], a[lo+lSize/4+2] = a[lo+lSize/4+2], a[lo+2]
					a[pivotPos-2], a[pivotPos-(lSize/4+1)] = a[pivotPos-(lSize/4+1)], a[pivotPos-2]
					a[pivotPos-3], a[pivotPos-(lSize/4+2)] = a[pivotPos-(lSize/4+2)], a[pivotPos-3]
				}
			}
			if rSize >= insertionThreshold {
				a[pivotPos+1], a[pivotPos+1+rSize/4] = a[pivotPos+1+rSize/4], a[pivotPos+1]
				a[hi-1], a[hi-rSize/4] = a[hi-rSize/4], a[hi-1]
				if rSize > nintherThreshold {
					a[pivotPos+2], a[pivotPos+2+rSize/4] = a[pivotPos+2+rSize/4], a[pivotPos+2]
					a[pivotPos+3], a[pivotPos+3+rSize/4] = a[pivotPos+3+rSize/4], a[pivotPos+3]
					a[hi-2], a[hi-(1+rSize/4)] = a[hi-(1+rSize/4)], a[hi-2]
					a[hi-3], a[hi-(2+rSize/4)] = a[hi-(2+rSize/4)], a[hi-3]
				}
			}
		} else if alreadyPartitioned &&
			partialInsertion(a, lo, pivotPos, less) &&
			partialInsertion(a, pivotPos+1, hi, less) {
			// The partition pass did not move anything and both sides were
			// nearly sorted: done without recursing.
			return
		}

		pdqLoop(a, lo, pivotPos, badAllowed, leftmost, less)
		lo = pivotPos + 1
		leftmost = false
	}
}

// sort3 orders a[i0] <= a[i1] <= a[i2], leaving the median at i1. Callers
// pick the index order so the median lands where the pivot is wanted.
func sort3[E any](a []E, i0, i1, i2 int, less LessFunc[E]) {
	medianOfThree(a, i0, i1, i2, less)
}

// pdqPartitionRight partitions [lo,hi) around the pivot at a[lo]; elements
// equal to the pivot go right. It reports the pivot's final position and
// whether no element had to move (the range was already partitioned).
func pdqPartitionRight[E any](a []E, lo, hi int, less LessFunc[E]) (pivotPos int, alreadyPartitioned bool) {
	pivot := a[lo]
	first, last := lo+1, hi

	// The pivot is a median of (at least) three, so an element >= pivot
	// stops this scan without a bounds check.
	for less(a[first], pivot) {
		first++
	}
	// Scan backward for an element < pivot; guard against running off the
	// front only if the forward scan did not move (then no sentinel exists).
	if first-1 == lo {
		for first < last {
			last--
			if less(a[last], pivot) {
				break
			}
		}
	} else {
		for {
			last--
			if less(a[last], pivot) {
				break
			}
		}
	}

	alreadyPartitioned = first >= last
	for first < last {
		a[first], a[last] = a[last], a[first]
		first++
		for less(a[first], pivot) {
			first++
		}
		for {
			last--
			if less(a[last], pivot) {
				break
			}
		}
	}

	pivotPos = first - 1
	a[lo] = a[pivotPos]
	a[pivotPos] = pivot
	return pivotPos, alreadyPartitioned
}

// partitionLeft partitions [lo,hi) around the pivot at a[lo]; elements equal
// to the pivot go left. Used when the range is known to contain many
// elements equal to the pivot. Returns the pivot's final position.
func partitionLeft[E any](a []E, lo, hi int, less LessFunc[E]) int {
	pivot := a[lo]
	first, last := lo, hi

	for {
		last--
		if !less(pivot, a[last]) {
			break
		}
	}
	if last+1 == hi {
		for first < last {
			first++
			if less(pivot, a[first]) {
				break
			}
		}
	} else {
		for {
			first++
			if less(pivot, a[first]) {
				break
			}
		}
	}

	for first < last {
		a[first], a[last] = a[last], a[first]
		for {
			last--
			if !less(pivot, a[last]) {
				break
			}
		}
		for {
			first++
			if less(pivot, a[first]) {
				break
			}
		}
	}

	a[lo] = a[last]
	a[last] = pivot
	return last
}

// partialInsertion insertion-sorts [lo,hi) but gives up (returning false)
// after moving more than partialInsertLimit elements. It lets pdqsort finish
// nearly-sorted partitions in linear time without risking quadratic work.
func partialInsertion[E any](a []E, lo, hi int, less LessFunc[E]) bool {
	if lo == hi {
		return true
	}
	limit := 0
	for cur := lo + 1; cur < hi; cur++ {
		if limit > partialInsertLimit {
			return false
		}
		if less(a[cur], a[cur-1]) {
			tmp := a[cur]
			sift := cur
			for sift > lo && less(tmp, a[sift-1]) {
				a[sift] = a[sift-1]
				sift--
			}
			a[sift] = tmp
			limit += cur - sift
		}
	}
	return true
}
