package sortalgo

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// dupRows builds n rows of width rowWidth whose keyWidth prefix is drawn
// from a small domain (duplicate-heavy) and whose payload is a unique tag.
func dupRows(n, rowWidth, keyWidth int, domain uint32, rng *rand.Rand) []byte {
	data := make([]byte, n*rowWidth)
	for i := 0; i < n; i++ {
		row := data[i*rowWidth:]
		binary.BigEndian.PutUint32(row, rng.Uint32()%domain)
		binary.BigEndian.PutUint32(row[rowWidth-4:], uint32(i))
	}
	return data
}

func TestDupGroupsMatchStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const rowWidth, keyWidth = 16, 4
	for _, tc := range []struct {
		n      int
		domain uint32
	}{
		{500, 5}, {1000, 20}, {64, 1}, {2, 1},
	} {
		data := dupRows(tc.n, rowWidth, keyWidth, tc.domain, rng)
		// Pre-cluster so adjacent duplicates exist (ingest order often has
		// them; the collector only groups adjacent equals).
		stableByKey(data, rowWidth, keyWidth)
		want := append([]byte(nil), data...)

		reps, groups, ok := CollectDupGroups(data, rowWidth, keyWidth)
		if !ok {
			t.Fatalf("n=%d domain=%d: expected grouping to engage", tc.n, tc.domain)
		}
		if groups > tc.n/2 && tc.n > 2 {
			t.Fatalf("n=%d domain=%d: %d groups exceed density bound", tc.n, tc.domain, groups)
		}
		// Scramble group order, stable-sort reps by key, expand, compare.
		repWidth := keyWidth + GroupTagBytes
		rng.Shuffle(groups, func(i, j int) {
			for b := 0; b < repWidth; b++ {
				reps[i*repWidth+b], reps[j*repWidth+b] = reps[j*repWidth+b], reps[i*repWidth+b]
			}
		})
		stableByKey(reps, repWidth, keyWidth)
		dst := make([]byte, len(data))
		ExpandDupGroups(dst, data, rowWidth, reps, keyWidth)
		if !bytes.Equal(dst, want) {
			t.Fatalf("n=%d domain=%d: expansion differs from stable sort", tc.n, tc.domain)
		}
	}
}

func TestDupGroupsDeclineSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const rowWidth, keyWidth = 16, 4
	// Near-unique keys: grouping cannot pay and must decline.
	data := dupRows(4000, rowWidth, keyWidth, 1<<31, rng)
	if _, _, ok := CollectDupGroups(data, rowWidth, keyWidth); ok {
		t.Fatal("grouping engaged on near-unique keys")
	}
	if _, _, ok := CollectDupGroups(data[:rowWidth], rowWidth, keyWidth); ok {
		t.Fatal("grouping engaged on a single row")
	}
}

// stableByKey is the test oracle: a stable sort on the keyWidth prefix.
func stableByKey(data []byte, rowWidth, keyWidth int) {
	n := len(data) / rowWidth
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = append([]byte(nil), data[i*rowWidth:(i+1)*rowWidth]...)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return bytes.Compare(rows[i][:keyWidth], rows[j][:keyWidth]) < 0
	})
	for i, r := range rows {
		copy(data[i*rowWidth:], r)
	}
}
