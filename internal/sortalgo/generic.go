// Package sortalgo implements the sorting algorithms the paper benchmarks:
// introsort (the std::sort analog), a stable bottom-up merge sort (the
// std::stable_sort analog), and pdqsort (pattern-defeating quicksort), plus
// the insertion sort and heapsort they bottom out in.
//
// Every algorithm exists in two forms: a generic slice form used by the
// micro-benchmarks (sorting columns of integers, index arrays, or struct
// rows), and a fixed-stride byte-row form (rows.go) used to sort normalized
// keys in place, which is how the DuckDB-style sorter of package core moves
// whole key rows to improve cache locality.
package sortalgo

import "math/bits"

// Thresholds shared by the quicksort family. They follow the reference
// pdqsort implementation.
const (
	insertionThreshold = 24  // below this, insertion sort
	nintherThreshold   = 128 // above this, median of three medians
	partialInsertLimit = 8   // moves allowed by the pattern detector
)

// LessFunc compares two elements; it must describe a strict weak ordering.
type LessFunc[E any] func(a, b E) bool

// Insertion sorts a with insertion sort. It is stable.
func Insertion[E any](a []E, less LessFunc[E]) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Heapsort sorts a with a binary max-heap. It is the fallback that bounds
// introsort and pdqsort to O(n log n).
func Heapsort[E any](a []E, less LessFunc[E]) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n, less)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(a, 0, i, less)
	}
}

func siftDown[E any](a []E, root, n int, less LessFunc[E]) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && less(a[child], a[child+1]) {
			child++
		}
		if !less(a[root], a[child]) {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// Introsort sorts a with introspective sort: median-of-three quicksort that
// switches to heapsort past a depth limit and to insertion sort for small
// ranges. This is the std::sort analog the paper uses for its layout
// experiments.
func Introsort[E any](a []E, less LessFunc[E]) {
	if len(a) < 2 {
		return
	}
	introsortLoop(a, 2*log2(len(a)), less)
}

func log2(n int) int { return bits.Len(uint(n)) - 1 }

func introsortLoop[E any](a []E, depth int, less LessFunc[E]) {
	for len(a) > insertionThreshold {
		if depth == 0 {
			Heapsort(a, less)
			return
		}
		depth--
		p := partitionMedian3(a, less)
		// Recurse into the smaller side to bound stack depth.
		if p < len(a)-p-1 {
			introsortLoop(a[:p], depth, less)
			a = a[p+1:]
		} else {
			introsortLoop(a[p+1:], depth, less)
			a = a[:p]
		}
	}
	Insertion(a, less)
}

// partitionMedian3 places a median-of-three pivot and partitions a around
// it, returning the pivot's final index.
func partitionMedian3[E any](a []E, less LessFunc[E]) int {
	n := len(a)
	medianOfThree(a, 0, n/2, n-1, less)
	// Pivot is at a[n/2]; move to front for a Hoare-style partition.
	a[0], a[n/2] = a[n/2], a[0]
	return partitionRight(a, less)
}

// medianOfThree orders a[i0], a[i1], a[i2] so that a[i1] is the median.
func medianOfThree[E any](a []E, i0, i1, i2 int, less LessFunc[E]) {
	if less(a[i1], a[i0]) {
		a[i1], a[i0] = a[i0], a[i1]
	}
	if less(a[i2], a[i1]) {
		a[i2], a[i1] = a[i1], a[i2]
		if less(a[i1], a[i0]) {
			a[i1], a[i0] = a[i0], a[i1]
		}
	}
}

// partitionRight partitions a[1:] around the pivot at a[0], placing elements
// < pivot before it. Returns the pivot's final index. Elements equal to the
// pivot end up in the right partition.
func partitionRight[E any](a []E, less LessFunc[E]) int {
	pivot := a[0]
	i, j := 1, len(a)-1
	for {
		for i <= j && less(a[i], pivot) {
			i++
		}
		for i <= j && !less(a[j], pivot) {
			j--
		}
		if i > j {
			break
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
	a[0], a[j] = a[j], a[0]
	return j
}

// StableSort sorts a with a bottom-up merge sort over insertion-sorted base
// runs, allocating one auxiliary buffer. It is the std::stable_sort analog:
// merges are sequential scans, which is the cache behaviour the paper
// contrasts with quicksort in Figures 3 and 5.
func StableSort[E any](a []E, less LessFunc[E]) {
	n := len(a)
	if n < 2 {
		return
	}
	const base = 32
	for lo := 0; lo < n; lo += base {
		hi := min(lo+base, n)
		Insertion(a[lo:hi], less)
	}
	buf := make([]E, n)
	src, dst := a, buf
	for width := base; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeInto merges the sorted runs left and right into out, preferring left
// on ties so the sort stays stable. len(out) must equal len(left)+len(right).
func mergeInto[E any](out, left, right []E, less LessFunc[E]) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			out[k] = right[j]
			j++
		} else {
			out[k] = left[i]
			i++
		}
		k++
	}
	copy(out[k:], left[i:])
	copy(out[k+len(left)-i:], right[j:])
}
