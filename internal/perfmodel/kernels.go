package perfmodel

import "encoding/binary"

// Instrumented sort kernels. Each mirrors one of the paper's benchmark
// configurations and drives the cache and branch models with the memory
// accesses and data-dependent branches the real kernel would execute. The
// sorting work itself is identical to the real algorithms (the output is
// sorted); only the bookkeeping differs, so the counters are faithful to
// the access patterns rather than estimated.

// Synthetic base addresses, spaced far apart so arrays never alias.
const (
	idxBase = uint64(0x1000_0000)
	colBase = uint64(0x2000_0000) // column c lives at colBase + c<<26
	rowBase = uint64(0x6000_0000)
	auxBase = uint64(0x7000_0000)
)

// Branch predictor site numbers.
const (
	siteTieBase   = 0  // comparator tie check for key column c => site c
	sitePartition = 16 // quicksort partition decision
	siteInsertion = 17 // insertion sort inner loop
	siteHeap      = 18 // heapsort sift decision
	siteMedian    = 20 // median-of-three ordering
)

func colAddr(c int, i uint32) uint64 { return colBase + uint64(c)<<26 + uint64(i)*4 }

// --- Columnar (DSM) kernels: sort an index array, data stays put. ------

// colSim sorts a row-index array over column data, firing probe events for
// index reads/writes, column value reads, and comparator branches.
type colSim struct {
	cols  [][]uint32
	idx   []uint32
	probe *Probe
	// tuple selects the tuple-at-a-time comparator (with tie branches);
	// otherwise a single active column is compared.
	tuple  bool
	active int
}

func (s *colSim) readIdx(i int) uint32 {
	s.probe.access(idxBase + uint64(i)*4)
	return s.idx[i]
}

func (s *colSim) less(i, j int) bool {
	a, b := s.readIdx(i), s.readIdx(j)
	return s.lessVal(a, b)
}

// lessVal compares tuples a and b by value, with the memory accesses and
// branches of the comparator.
func (s *colSim) lessVal(a, b uint32) bool {
	if !s.tuple {
		c := s.active
		s.probe.access(colAddr(c, a))
		s.probe.access(colAddr(c, b))
		return s.cols[c][a] < s.cols[c][b]
	}
	for c := range s.cols {
		s.probe.access(colAddr(c, a))
		s.probe.access(colAddr(c, b))
		va, vb := s.cols[c][a], s.cols[c][b]
		tie := va == vb
		s.probe.branch(siteTieBase+min(c, 15), tie)
		if !tie {
			return va < vb
		}
	}
	return false
}

func (s *colSim) swap(i, j int) {
	s.probe.access(idxBase + uint64(i)*4)
	s.probe.access(idxBase + uint64(j)*4)
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}

// ColumnarTupleAtATime simulates sorting the columns with std::sort and a
// tuple-at-a-time comparator on the columnar format (Table II, "T").
func ColumnarTupleAtATime(cols [][]uint32) Counters {
	return columnarTupleProbe(cols, NewProbe())
}

func columnarTupleProbe(cols [][]uint32, probe *Probe) Counters {
	s := &colSim{cols: cols, idx: identity(len(cols[0])), probe: probe, tuple: true}
	introsortSim(s.less, s.swap, 0, len(s.idx), probe)
	return probe.Counters()
}

// ColumnarSubsort simulates the subsort approach on the columnar format
// (Table II, "S"): sort by one column at a time, re-scanning for ties.
func ColumnarSubsort(cols [][]uint32) Counters {
	return columnarSubsortProbe(cols, NewProbe())
}

func columnarSubsortProbe(cols [][]uint32, probe *Probe) Counters {
	s := &colSim{cols: cols, idx: identity(len(cols[0])), probe: probe}
	var rec func(lo, hi, c int)
	rec = func(lo, hi, c int) {
		s.active = c
		introsortSim(s.less, s.swap, lo, hi, probe)
		if c+1 == len(s.cols) {
			return
		}
		// Scan for tie runs: sequential reads of idx and the column.
		runStart := lo
		var prev uint32
		for i := lo; i <= hi; i++ {
			var cur uint32
			if i < hi {
				ri := s.readIdx(i)
				s.probe.access(colAddr(c, ri))
				cur = s.cols[c][ri]
			}
			if i == hi || (i > lo && cur != prev) {
				if i-runStart > 1 {
					end := i
					saved := s.active
					rec(runStart, end, c+1)
					s.active = saved
				}
				runStart = i
			}
			prev = cur
		}
	}
	rec(0, len(s.idx), 0)
	return probe.Counters()
}

// --- Row (NSM) kernels: fixed-width rows move physically. --------------

// rowSim sorts byte rows in place. Rows hold numKeys big-endian uint32 keys
// (so value comparison works) plus padding to width w.
type rowSim struct {
	data    []byte
	w       int
	numKeys int
	probe   *Probe
	// memcmp selects the normalized-key comparator (byte-wise, single
	// branch); otherwise the tuple-at-a-time comparator with per-column tie
	// branches. active selects single-column mode when >= 0.
	memcmp bool
	active int
	tmp    []byte
	piv    []byte
}

func newRowSim(cols [][]uint32, probe *Probe) *rowSim {
	numKeys := len(cols)
	w := (numKeys*4 + 4 + 7) &^ 7
	n := len(cols[0])
	data := make([]byte, n*w)
	for c, col := range cols {
		for i, v := range col {
			binary.BigEndian.PutUint32(data[i*w+c*4:], v)
		}
	}
	return &rowSim{data: data, w: w, numKeys: numKeys, probe: probe, active: -1}
}

func (s *rowSim) n() int            { return len(s.data) / s.w }
func (s *rowSim) addr(i int) uint64 { return rowBase + uint64(i*s.w) }
func (s *rowSim) row(i int) []byte  { return s.data[i*s.w : (i+1)*s.w] }

func (s *rowSim) key(i, c int) uint32 { return binary.BigEndian.Uint32(s.data[i*s.w+c*4:]) }

// lessRows compares rows i and j with the configured comparator.
func (s *rowSim) lessRows(i, j int) bool {
	if s.active >= 0 {
		c := s.active
		s.probe.access(s.addr(i) + uint64(c*4))
		s.probe.access(s.addr(j) + uint64(c*4))
		return s.key(i, c) < s.key(j, c)
	}
	if s.memcmp {
		// memcmp reads both keys up to the first differing byte; one
		// outcome branch feeds the algorithm.
		ka, kb := s.row(i)[:s.numKeys*4], s.row(j)[:s.numKeys*4]
		d := 0
		for d < len(ka) && ka[d] == kb[d] {
			d++
		}
		s.probe.accessRange(s.addr(i), min(d+1, len(ka)))
		s.probe.accessRange(s.addr(j), min(d+1, len(kb)))
		return d < len(ka) && ka[d] < kb[d]
	}
	for c := 0; c < s.numKeys; c++ {
		s.probe.access(s.addr(i) + uint64(c*4))
		s.probe.access(s.addr(j) + uint64(c*4))
		va, vb := s.key(i, c), s.key(j, c)
		tie := va == vb
		s.probe.branch(siteTieBase+min(c, 15), tie)
		if !tie {
			return va < vb
		}
	}
	return false
}

func (s *rowSim) swapRows(i, j int) {
	// Read and write both rows.
	s.probe.accessRange(s.addr(i), s.w)
	s.probe.accessRange(s.addr(j), s.w)
	if s.tmp == nil {
		s.tmp = make([]byte, s.w)
	}
	copy(s.tmp, s.row(i))
	copy(s.row(i), s.row(j))
	copy(s.row(j), s.tmp)
}

// RowTupleAtATime simulates sorting the row format with std::sort and a
// tuple-at-a-time comparator (Table III, "T").
func RowTupleAtATime(cols [][]uint32) Counters {
	probe := NewProbe()
	s := newRowSim(cols, probe)
	introsortSim(s.lessRows, s.swapRows, 0, s.n(), probe)
	return probe.Counters()
}

// RowSubsort simulates the subsort approach on the row format (Table III,
// "S"): single-column comparators, whole rows move, ties re-scanned.
func RowSubsort(cols [][]uint32) Counters {
	probe := NewProbe()
	s := newRowSim(cols, probe)
	var rec func(lo, hi, c int)
	rec = func(lo, hi, c int) {
		s.active = c
		introsortSim(s.lessRows, s.swapRows, lo, hi, probe)
		if c+1 == s.numKeys {
			return
		}
		runStart := lo
		var prev uint32
		for i := lo; i <= hi; i++ {
			var cur uint32
			if i < hi {
				s.probe.access(s.addr(i) + uint64(c*4))
				cur = s.key(i, c)
			}
			if i == hi || (i > lo && cur != prev) {
				if i-runStart > 1 {
					rec(runStart, i, c+1)
				}
				runStart = i
			}
			prev = cur
		}
	}
	rec(0, s.n(), 0)
	s.active = -1
	return probe.Counters()
}

// --- Figure 10 kernels: pdqsort vs radix sort on normalized keys. -------

// PdqsortNormalized simulates pdqsort with a dynamic memcmp comparator on
// normalized keys, returning cumulative counter snapshots (about `samples`
// of them) plus the final totals.
func PdqsortNormalized(cols [][]uint32, samples int) ([]Counters, Counters) {
	run := func(probe *Probe) Counters {
		s := newRowSim(cols, probe)
		s.memcmp = true
		pdqsortSim(s.lessRows, s.swapRows, s.n(), probe)
		return probe.Counters()
	}
	total := run(NewProbe())
	if samples <= 0 {
		return nil, total
	}
	probe := NewProbe()
	probe.SampleEvery(max(1, total.CacheAccesses/uint64(samples)))
	final := run(probe)
	return probe.Samples(), final
}

// RadixNormalized simulates MSD radix sort on normalized keys (the paper
// uses MSD for 4-key, 16-byte keys), returning cumulative snapshots plus
// the final totals. Radix performs no comparisons — and therefore no
// data-dependent branches — but its bucket scatter is cache-hostile.
func RadixNormalized(cols [][]uint32, samples int) ([]Counters, Counters) {
	run := func(probe *Probe) Counters {
		s := newRowSim(cols, probe)
		radixSim(s, probe)
		return probe.Counters()
	}
	total := run(NewProbe())
	if samples <= 0 {
		return nil, total
	}
	probe := NewProbe()
	probe.SampleEvery(max(1, total.CacheAccesses/uint64(samples)))
	final := run(probe)
	return probe.Samples(), final
}

// radixSim mirrors the MSD radix sort of package radix with probe events:
// one read per counting-pass byte, a read and a scattered write per row in
// the scatter pass, sequential copy-back, and insertion sort in small
// buckets.
func radixSim(s *rowSim, probe *Probe) {
	keyW := s.numKeys * 4
	aux := make([]byte, len(s.data))
	var rec func(lo, hi, d int)
	rec = func(lo, hi, d int) {
		for d < keyW {
			n := hi - lo
			if n <= 24 {
				insertionRangeSim(s.lessMemcmpFrom(d), s.swapRows, lo, hi, probe)
				return
			}
			var count [256]int
			for i := lo; i < hi; i++ {
				probe.access(s.addr(i) + uint64(d))
				count[s.data[i*s.w+d]]++
			}
			single := false
			for _, c := range count {
				if c == n {
					single = true
				}
				if c > 0 {
					break
				}
			}
			if single {
				d++
				continue
			}
			var offset [256]int
			sum := lo
			for b := 0; b < 256; b++ {
				offset[b] = sum
				sum += count[b]
			}
			pos := offset
			for i := lo; i < hi; i++ {
				probe.accessRange(s.addr(i), s.w) // read row
				b := s.data[i*s.w+d]
				p := pos[b]
				pos[b]++
				probe.accessRange(auxBase+uint64(p*s.w), s.w) // scattered write
				copy(aux[p*s.w:(p+1)*s.w], s.row(i))
			}
			// Sequential copy back.
			probe.accessRange(auxBase+uint64(lo*s.w), n*s.w)
			probe.accessRange(s.addr(lo), n*s.w)
			copy(s.data[lo*s.w:hi*s.w], aux[lo*s.w:hi*s.w])
			for b := 0; b < 256; b++ {
				if count[b] > 1 {
					rec(offset[b], offset[b]+count[b], d+1)
				}
			}
			return
		}
	}
	rec(0, s.n(), 0)
}

// lessMemcmpFrom returns a comparator over key bytes [d, keyW) with events.
func (s *rowSim) lessMemcmpFrom(d int) func(i, j int) bool {
	keyW := s.numKeys * 4
	return func(i, j int) bool {
		ka := s.data[i*s.w+d : i*s.w+keyW]
		kb := s.data[j*s.w+d : j*s.w+keyW]
		x := 0
		for x < len(ka) && ka[x] == kb[x] {
			x++
		}
		s.probe.accessRange(s.addr(i)+uint64(d), min(x+1, len(ka)))
		s.probe.accessRange(s.addr(j)+uint64(d), min(x+1, len(kb)))
		return x < len(ka) && ka[x] < kb[x]
	}
}

func identity(n int) []uint32 {
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	return idx
}
