package perfmodel

import "math/bits"

// Instrumented mirrors of the sorting algorithms in package sortalgo. They
// operate through (less, swap) callbacks that fire cache events, and they
// record every data-dependent decision at a branch-predictor site. The
// element permutation they produce is identical to the real algorithms'.

const (
	simInsertionThreshold = 24
	simNintherThreshold   = 128
)

type lessFn = func(i, j int) bool
type swapFn = func(i, j int)

// introsortSim sorts [lo,hi) with the instrumented std::sort analog.
func introsortSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) {
	if hi-lo < 2 {
		return
	}
	introsortLoopSim(less, swap, lo, hi, 2*(bits.Len(uint(hi-lo))-1), probe)
}

func introsortLoopSim(less lessFn, swap swapFn, lo, hi, depth int, probe *Probe) {
	for hi-lo > simInsertionThreshold {
		if depth == 0 {
			heapsortSim(less, swap, lo, hi, probe)
			return
		}
		depth--
		mid := lo + (hi-lo)/2
		sort3Sim(less, swap, lo, mid, hi-1, probe)
		swap(lo, mid)
		p := hoarePartitionSim(less, swap, lo, hi, probe)
		if p-lo < hi-p-1 {
			introsortLoopSim(less, swap, lo, p, depth, probe)
			lo = p + 1
		} else {
			introsortLoopSim(less, swap, p+1, hi, depth, probe)
			hi = p
		}
	}
	insertionRangeSim(less, swap, lo, hi, probe)
}

func hoarePartitionSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) int {
	i, j := lo+1, hi-1
	for {
		for i <= j {
			l := less(i, lo)
			probe.branch(sitePartition, l)
			if !l {
				break
			}
			i++
		}
		for i <= j {
			l := less(j, lo)
			probe.branch(sitePartition, l)
			if l {
				break
			}
			j--
		}
		if i > j {
			break
		}
		swap(i, j)
		i++
		j--
	}
	swap(lo, j)
	return j
}

func insertionRangeSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) {
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo; j-- {
			l := less(j, j-1)
			probe.branch(siteInsertion, l)
			if !l {
				break
			}
			swap(j, j-1)
		}
	}
}

func heapsortSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) {
	n := hi - lo
	sift := func(root, n int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n {
				l := less(lo+child, lo+child+1)
				probe.branch(siteHeap, l)
				if l {
					child++
				}
			}
			l := less(lo+root, lo+child)
			probe.branch(siteHeap, l)
			if !l {
				return
			}
			swap(lo+root, lo+child)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for i := n - 1; i > 0; i-- {
		swap(lo, lo+i)
		sift(0, i)
	}
}

func sort3Sim(less lessFn, swap swapFn, i0, i1, i2 int, probe *Probe) {
	l := less(i1, i0)
	probe.branch(siteMedian, l)
	if l {
		swap(i1, i0)
	}
	l = less(i2, i1)
	probe.branch(siteMedian, l)
	if l {
		swap(i2, i1)
		l = less(i1, i0)
		probe.branch(siteMedian, l)
		if l {
			swap(i1, i0)
		}
	}
}

// pdqsortSim is the instrumented pattern-defeating quicksort. The pivot is
// addressed by index (it stays at the range head during partitioning, as in
// the real algorithm, whose pivot lives in a register).
func pdqsortSim(less lessFn, swap swapFn, n int, probe *Probe) {
	if n < 2 {
		return
	}
	pdqLoopSim(less, swap, 0, n, bits.Len(uint(n))-1, true, probe)
}

func pdqLoopSim(less lessFn, swap swapFn, lo, hi, badAllowed int, leftmost bool, probe *Probe) {
	for {
		size := hi - lo
		if size < simInsertionThreshold {
			insertionRangeSim(less, swap, lo, hi, probe)
			return
		}

		s2 := size / 2
		if size > simNintherThreshold {
			sort3Sim(less, swap, lo, lo+s2, hi-1, probe)
			sort3Sim(less, swap, lo+1, lo+s2-1, hi-2, probe)
			sort3Sim(less, swap, lo+2, lo+s2+1, hi-3, probe)
			sort3Sim(less, swap, lo+s2-1, lo+s2, lo+s2+1, probe)
			swap(lo, lo+s2)
		} else {
			sort3Sim(less, swap, lo+s2, lo, hi-1, probe)
		}

		if !leftmost {
			l := less(lo-1, lo)
			probe.branch(sitePartition, l)
			if !l {
				lo = partitionLeftSim(less, swap, lo, hi, probe) + 1
				continue
			}
		}

		pivotPos, alreadyPartitioned := partitionRightSim(less, swap, lo, hi, probe)

		lSize, rSize := pivotPos-lo, hi-(pivotPos+1)
		if lSize < size/8 || rSize < size/8 {
			badAllowed--
			if badAllowed <= 0 {
				heapsortSim(less, swap, lo, hi, probe)
				return
			}
			if lSize >= simInsertionThreshold {
				swap(lo, lo+lSize/4)
				swap(pivotPos-1, pivotPos-lSize/4)
				if lSize > simNintherThreshold {
					swap(lo+1, lo+lSize/4+1)
					swap(lo+2, lo+lSize/4+2)
					swap(pivotPos-2, pivotPos-(lSize/4+1))
					swap(pivotPos-3, pivotPos-(lSize/4+2))
				}
			}
			if rSize >= simInsertionThreshold {
				swap(pivotPos+1, pivotPos+1+rSize/4)
				swap(hi-1, hi-rSize/4)
				if rSize > simNintherThreshold {
					swap(pivotPos+2, pivotPos+2+rSize/4)
					swap(pivotPos+3, pivotPos+3+rSize/4)
					swap(hi-2, hi-(1+rSize/4))
					swap(hi-3, hi-(2+rSize/4))
				}
			}
		} else if alreadyPartitioned &&
			partialInsertionSim(less, swap, lo, pivotPos, probe) &&
			partialInsertionSim(less, swap, pivotPos+1, hi, probe) {
			return
		}

		pdqLoopSim(less, swap, lo, pivotPos, badAllowed, leftmost, probe)
		lo = pivotPos + 1
		leftmost = false
	}
}

// partitionRightSim mirrors pdqsort's partition_right: the pivot sits at
// index lo until final placement.
func partitionRightSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) (int, bool) {
	first, last := lo+1, hi
	for {
		l := less(first, lo)
		probe.branch(sitePartition, l)
		if !l {
			break
		}
		first++
	}
	if first-1 == lo {
		for first < last {
			last--
			l := less(last, lo)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	} else {
		for {
			last--
			l := less(last, lo)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	}

	alreadyPartitioned := first >= last
	for first < last {
		// The elements at first/last are swapped; the pivot stays at lo.
		swapAvoidingPivot(swap, first, last, lo)
		first++
		for {
			l := less(first, lo)
			probe.branch(sitePartition, l)
			if !l {
				break
			}
			first++
		}
		for {
			last--
			l := less(last, lo)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	}

	pivotPos := first - 1
	swap(lo, pivotPos)
	return pivotPos, alreadyPartitioned
}

func partitionLeftSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) int {
	first, last := lo, hi
	for {
		last--
		l := less(lo, last)
		probe.branch(sitePartition, l)
		if !l {
			break
		}
	}
	if last+1 == hi {
		for first < last {
			first++
			l := less(lo, first)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	} else {
		for {
			first++
			l := less(lo, first)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	}

	for first < last {
		swapAvoidingPivot(swap, first, last, lo)
		for {
			last--
			l := less(lo, last)
			probe.branch(sitePartition, l)
			if !l {
				break
			}
		}
		for {
			first++
			l := less(lo, first)
			probe.branch(sitePartition, l)
			if l {
				break
			}
		}
	}

	swap(lo, last)
	return last
}

func swapAvoidingPivot(swap swapFn, i, j, pivot int) {
	// In the index-pivot formulation the scans never cross the pivot slot,
	// so i and j are distinct from it; this guard documents the invariant.
	if i == pivot || j == pivot {
		panic("perfmodel: partition scan crossed the pivot slot")
	}
	swap(i, j)
}

func partialInsertionSim(less lessFn, swap swapFn, lo, hi int, probe *Probe) bool {
	if lo == hi {
		return true
	}
	const limitMax = 8
	limit := 0
	for cur := lo + 1; cur < hi; cur++ {
		if limit > limitMax {
			return false
		}
		sift := cur
		for sift > lo {
			l := less(sift, sift-1)
			probe.branch(siteInsertion, l)
			if !l {
				break
			}
			swap(sift, sift-1)
			sift--
		}
		limit += cur - sift
	}
	return true
}
