package perfmodel

import "testing"

func TestSortPhaseWeightsShape(t *testing.T) {
	w := SortPhaseWeights(8, 32, false)
	for name, v := range map[string]float64{
		"ingest": w.Ingest, "run-sort": w.RunSort, "merge": w.Merge, "gather": w.Gather,
	} {
		if v <= 0 {
			t.Errorf("%s weight = %v, want > 0", name, v)
		}
	}

	// An external sort's merge rewrites whole rows through the spill
	// format, so it must weigh strictly more than the in-memory merge.
	ext := SortPhaseWeights(8, 32, true)
	if ext.Merge <= w.Merge {
		t.Errorf("external merge weight %v not above in-memory %v", ext.Merge, w.Merge)
	}
	if ext.Ingest != w.Ingest || ext.Gather != w.Gather {
		t.Error("externality must only change the merge weight")
	}

	// Wider keys cost more everywhere the key moves.
	wide := SortPhaseWeights(64, 32, false)
	if wide.Ingest <= w.Ingest || wide.RunSort <= w.RunSort || wide.Merge <= w.Merge {
		t.Errorf("64B key weights %+v not above 8B key weights %+v", wide, w)
	}
	// ... and a heavier payload costs more to ingest and gather.
	fat := SortPhaseWeights(8, 256, false)
	if fat.Ingest <= w.Ingest || fat.Gather <= w.Gather {
		t.Errorf("256B payload weights %+v not above 32B payload weights %+v", fat, w)
	}

	// Degenerate shapes clamp instead of exploding: a zero-byte key sorts
	// like a 1-byte one, and run-sort passes cap at 16.
	if got := SortPhaseWeights(0, 0, false); got != SortPhaseWeights(1, 0, false) {
		t.Errorf("zero key not clamped: %+v", got)
	}
	huge := SortPhaseWeights(1024, 0, false)
	capped := 16 * (1 + float64(1024+8)/float64(DefaultLineSize)) / 4
	if huge.RunSort != capped {
		t.Errorf("1KiB key run-sort = %v, want pass-capped %v", huge.RunSort, capped)
	}
}
