// Package perfmodel substitutes for the CPU performance counters the paper
// reads with perf on an AWS metal instance (L1-dcache-load-misses and
// branch-misses). It provides a set-associative LRU cache model and a 2-bit
// saturating-counter branch predictor model, plus instrumented versions of
// the paper's sort kernels that drive them. The simulated counters
// reproduce the mechanisms the paper isolates — random access across
// columns causes cache misses; data-dependent comparator branches cause
// mispredictions — so Tables II/III and Figure 10 keep their shape.
package perfmodel

// Default L1 data cache geometry (matching common x86 cores, including the
// paper's Xeon): 32 KiB, 64-byte lines, 8-way set associative.
const (
	DefaultCacheSize = 32 << 10
	DefaultLineSize  = 64
	DefaultWays      = 8
)

// Cache is a set-associative cache model with LRU replacement and a
// next-line prefetcher: a miss on line L also installs line L+1, so
// sequential scans (the subsort approach's tie scans, radix sort's
// copy-backs) cost one miss per stream start instead of one per line —
// matching how hardware prefetchers hide streaming accesses. Disable with
// Prefetch=false for a bare model.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	// sets[s] holds up to `ways` line tags in LRU order (front = MRU).
	sets [][]uint64

	// Prefetch enables the next-line prefetcher (on for NewCache).
	Prefetch bool

	Accesses uint64
	Misses   uint64
}

// NewCache returns a cache model of the given geometry. sizeBytes must be
// divisible by lineSize*ways and the set count must be a power of two.
func NewCache(sizeBytes, lineSize, ways int) *Cache {
	numSets := sizeBytes / (lineSize * ways)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("perfmodel: set count must be a positive power of two")
	}
	if lineSize&(lineSize-1) != 0 {
		panic("perfmodel: line size must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	c := &Cache{
		lineShift: shift,
		setMask:   uint64(numSets - 1),
		ways:      ways,
		sets:      make([][]uint64, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, ways)
	}
	c.Prefetch = true
	return c
}

// NewDefaultCache returns the default L1d model.
func NewDefaultCache() *Cache { return NewCache(DefaultCacheSize, DefaultLineSize, DefaultWays) }

// Access touches one byte address, counting a hit or miss, and reports
// whether it missed (so a lower level can be consulted).
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineShift
	if c.touch(line) {
		return false
	}
	c.Misses++
	c.install(line)
	if c.Prefetch {
		// Next-line prefetch: bring in the following line without counting
		// an access, unless it is already resident.
		if !c.resident(line + 1) {
			c.install(line + 1)
		}
	}
	return true
}

// touch looks line up and promotes it to MRU, reporting a hit.
func (c *Cache) touch(line uint64) bool {
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	return false
}

// resident reports whether the line is cached, without LRU promotion.
func (c *Cache) resident(line uint64) bool {
	for _, tag := range c.sets[line&c.setMask] {
		if tag == line {
			return true
		}
	}
	return false
}

// install inserts a line at MRU, evicting the LRU way if full.
func (c *Cache) install(line uint64) {
	set := c.sets[line&c.setMask]
	if len(set) < c.ways {
		set = append(set, 0)
		c.sets[line&c.setMask] = set
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
}

// AccessRange touches every cache line in [addr, addr+n).
func (c *Cache) AccessRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr >> c.lineShift
	last := (addr + uint64(n) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		c.Access(line << c.lineShift)
	}
}

// Default L2 geometry: 1 MiB, 64-byte lines, 16-way — a typical private L2.
const (
	DefaultL2Size = 1 << 20
	DefaultL2Ways = 16
)

// Memory is a two-level cache hierarchy: every access goes to L1, and L1
// misses fall through to L2. It exists because the paper's Table II effect
// — the subsort approach's per-phase working sets shrinking until they fit
// a cache level — appears one level below a 32 KiB L1 at bench scales.
type Memory struct {
	L1 *Cache
	L2 *Cache
}

// NewDefaultMemory returns the default L1+L2 hierarchy.
func NewDefaultMemory() *Memory {
	return &Memory{
		L1: NewDefaultCache(),
		L2: NewCache(DefaultL2Size, DefaultLineSize, DefaultL2Ways),
	}
}

// Access touches one byte address through the hierarchy.
func (m *Memory) Access(addr uint64) {
	if m.L1.Access(addr) {
		m.L2.Access(addr)
	}
}

// AccessRange touches every cache line in [addr, addr+n).
func (m *Memory) AccessRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr &^ uint64(DefaultLineSize-1)
	last := (addr + uint64(n) - 1) &^ uint64(DefaultLineSize-1)
	for line := first; line <= last; line += DefaultLineSize {
		m.Access(line)
	}
}
