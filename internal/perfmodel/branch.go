package perfmodel

// Branch models a branch predictor as a table of 2-bit saturating counters,
// one per static branch site. Biased branches (loop bounds, rare ties)
// predict almost perfectly; data-dependent branches with ~50% outcomes —
// quicksort's partition decision, the comparator's tie check on correlated
// keys — mispredict about half the time, which is exactly the behaviour the
// paper's branch-miss counters expose.
type Branch struct {
	counters []uint8

	Branches       uint64
	Mispredictions uint64
}

// NewBranch returns a predictor with room for the given number of sites.
func NewBranch(sites int) *Branch {
	c := make([]uint8, sites)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &Branch{counters: c}
}

// Record simulates executing branch site with the given outcome.
func (b *Branch) Record(site int, taken bool) {
	b.Branches++
	ctr := b.counters[site]
	predictTaken := ctr >= 2
	if predictTaken != taken {
		b.Mispredictions++
	}
	if taken {
		if ctr < 3 {
			b.counters[site] = ctr + 1
		}
	} else if ctr > 0 {
		b.counters[site] = ctr - 1
	}
}

// Probe bundles the two models and exposes snapshotting for cumulative
// counter series (Figure 10).
type Probe struct {
	Mem    *Memory
	Branch *Branch

	sampleEvery uint64
	samples     []Counters
}

// Counters is a snapshot of the simulated performance counters.
// CacheMisses is the L1 counter (the paper's L1-dcache-load-misses);
// L2Misses counts accesses missing both levels.
type Counters struct {
	CacheAccesses uint64
	CacheMisses   uint64
	L2Misses      uint64
	Branches      uint64
	BranchMisses  uint64
}

// NewProbe returns a probe with the default hierarchy and branch table.
func NewProbe() *Probe {
	return &Probe{Mem: NewDefaultMemory(), Branch: NewBranch(64)}
}

// Counters returns the current counter totals.
func (p *Probe) Counters() Counters {
	return Counters{
		CacheAccesses: p.Mem.L1.Accesses,
		CacheMisses:   p.Mem.L1.Misses,
		L2Misses:      p.Mem.L2.Misses,
		Branches:      p.Branch.Branches,
		BranchMisses:  p.Branch.Mispredictions,
	}
}

// SampleEvery arranges for a counter snapshot every n cache accesses.
func (p *Probe) SampleEvery(n uint64) { p.sampleEvery = n }

// Samples returns the snapshots collected so far.
func (p *Probe) Samples() []Counters { return p.samples }

func (p *Probe) access(addr uint64) {
	p.Mem.Access(addr)
	p.maybeSample()
}

func (p *Probe) accessRange(addr uint64, n int) {
	p.Mem.AccessRange(addr, n)
	p.maybeSample()
}

func (p *Probe) branch(site int, taken bool) {
	p.Branch.Record(site, taken)
}

func (p *Probe) maybeSample() {
	if p.sampleEvery > 0 && p.Mem.L1.Accesses/p.sampleEvery > uint64(len(p.samples)) {
		p.samples = append(p.samples, p.Counters())
	}
}
