package perfmodel

import "math"

// Run-sort cost models: per-row cost estimates (in the same cache-line
// units as SortPhaseWeights) for the two run-generation sorts, driven by
// the sampled distribution of the run about to be sorted. The strategy
// planner compares them to pick the sort per run — the paper's Future Work
// asks for exactly this: algorithm choice following key size, tuple count
// and uniqueness instead of a static rule. The old heuristic's hard-coded
// "effective <= 2*log2(n)" crossover falls out of these curves instead of
// being written down.

// PresortedCliff is the Sortedness at or above which PdqRunCost credits
// pdqsort's pattern-detector fast path. Just under 1: a dense 2048-pair
// order scan of a run with a single displaced row still reads ~0.999, and
// any real disorder beyond that makes pdqsort slower than radix (measured).
const PresortedCliff = 0.999

// RunShape is the sampled distribution of one pending run, as the strategy
// analyzer estimates it.
type RunShape struct {
	// Rows is the run's row count.
	Rows int
	// RowBytes is the key-row stride: the bytes a permute or swap moves.
	RowBytes int
	// KeyBytes is the compared key prefix width.
	KeyBytes int
	// EffectiveKeyBytes is the number of key byte positions that vary
	// across the run — the radix passes that actually scatter data
	// (constant positions become skipped passes).
	EffectiveKeyBytes int
	// Sortedness is the estimated fraction of the run already in order
	// (min of local adjacent-pair and global sampled-inversion order).
	Sortedness float64
	// DistinctRatio is the estimated distinct-key fraction in (0, 1].
	DistinctRatio float64
}

// RadixRunCost estimates the per-row cost of the byte-wise radix sort:
// one counting scan plus one permute pass per effective key byte, each
// permute moving the full row stride. Constant byte positions cost only
// their (cheap, skipped) counting scan, folded into the pass constant.
func RadixRunCost(sh RunShape) float64 {
	passes := float64(sh.EffectiveKeyBytes)
	if passes < 1 {
		passes = 1 // a degenerate all-equal run still does one scan
	}
	lines := func(b int) float64 { return 1 + float64(b)/float64(DefaultLineSize) }
	// Per pass: the counting scan touches each row's byte (1 unit) and the
	// permute rewrites the row (lines(RowBytes)).
	return passes * (1 + lines(sh.RowBytes))
}

// PdqRunCost estimates the per-row cost of comparison pdqsort: recursion
// depth × (branch + compared-prefix read + swap traffic). Two distribution
// effects shorten the depth — duplicate-heavy runs bottom out once every
// partition holds one distinct key (fat-pivot skipping), and presorted runs
// hit the partial-insertion pattern detector, which finishes them in a
// near-linear pass or two.
func PdqRunCost(sh RunShape) float64 {
	n := sh.Rows
	if n < 2 {
		return 1
	}
	depth := math.Log2(float64(n))
	distinct := sh.DistinctRatio * float64(n)
	if distinct < 2 {
		distinct = 2
	}
	if d := math.Log2(distinct) + 1; d < depth {
		depth = d
	}
	lines := func(b int) float64 { return 1 + float64(b)/float64(DefaultLineSize) }
	cmpBytes := sh.KeyBytes
	if cmpBytes > 16 {
		cmpBytes = 16 // memcmp bails at the first differing line in practice
	}
	// The pattern-detector cliff: an in-order run is partitioned once
	// (already partitioned, so nothing moves), then each half insertion-
	// sorts within the move budget — ~2 compares per row and essentially
	// no row movement. The cliff is razor thin: measured at 131k rows,
	// pdqsort beats radix by ~21% at zero disorder but loses by 17-30% at
	// 0.01-0.1% disorder, because a handful of displaced rows blows the
	// insertion-sort move budget and forces full partitioning anyway. So
	// the cliff only applies to a sample with essentially no observed
	// inversions, not to "mostly sorted" runs.
	if sh.Sortedness >= PresortedCliff {
		return 2 * (1 + lines(cmpBytes))
	}
	perLevel := 1 + lines(cmpBytes) + lines(sh.RowBytes)
	return depth * perLevel
}
