package perfmodel

// PhaseWeights are relative per-row costs of the sort pipeline's logical
// phases, in arbitrary cost units (cache lines touched, roughly). core
// seeds obs progress estimation with them so a run's overall completion
// fraction weighs a merged row more than a gathered one when the key is
// wide or the sort is external.
type PhaseWeights struct {
	Ingest  float64
	RunSort float64
	Merge   float64
	Gather  float64
}

// SortPhaseWeights estimates the pipeline's per-row phase costs from the
// sort's shape: keyBytes is the normalized key width, payloadBytes the
// row-format payload width, and external reports whether runs spill to disk
// (budgeted or forced), which makes the merge move whole rows through the
// spill format instead of comparing in place.
//
// The model is deliberately coarse — line-granularity memory traffic, the
// same first-order accounting the cache model uses — because the weights
// only shape a progress bar; they need the right ratios, not the right
// absolute costs.
func SortPhaseWeights(keyBytes, payloadBytes int, external bool) PhaseWeights {
	if keyBytes < 1 {
		keyBytes = 1
	}
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	// lines(b): cache lines a b-byte access touches, plus the access itself.
	lines := func(b int) float64 { return 1 + float64(b)/float64(DefaultLineSize) }

	// Ingest scatters the payload into the row format and encodes the key:
	// read columnar, write row — the full row width moves twice.
	ingest := 2 * lines(keyBytes+payloadBytes)

	// Run sort: LSD radix makes one counting + one permute pass per key
	// byte over (key, rowref) pairs; approximate pdqsort's log-n compares
	// the same way. Cap the passes so very wide keys (which radix would
	// not handle byte-at-a-time anyway) don't dominate the estimate.
	passes := float64(keyBytes)
	if passes > 16 {
		passes = 16
	}
	runSort := passes * lines(keyBytes+8) / 4

	// Merge: a handful of loser-tree compares per row (OVC makes most of
	// them cheap) plus, when external, rewriting the whole row through the
	// spill format (write on spill, read on merge).
	merge := 6 + lines(keyBytes)
	if external {
		merge += 2 * lines(keyBytes+payloadBytes)
	}

	// Gather reads row-format payload and writes columns.
	gather := 2 * lines(payloadBytes)

	return PhaseWeights{Ingest: ingest, RunSort: runSort, Merge: merge, Gather: gather}
}
