package perfmodel

import (
	"encoding/binary"
	"testing"

	"rowsort/internal/workload"
)

func TestCacheSequentialVsRandom(t *testing.T) {
	// Sequential 4-byte strided access without prefetch: one miss per
	// 64-byte line. With next-line prefetch, every other line is resident
	// ahead of time, halving the misses.
	bare := NewDefaultCache()
	bare.Prefetch = false
	seq := NewDefaultCache()
	for i := 0; i < 1<<16; i++ {
		bare.Access(uint64(i * 4))
		seq.Access(uint64(i * 4))
	}
	lines := uint64(1 << 16 * 4 / 64)
	if bare.Misses != lines {
		t.Fatalf("bare sequential misses = %d, want %d", bare.Misses, lines)
	}
	if seq.Misses != lines/2 {
		t.Fatalf("prefetched sequential misses = %d, want %d", seq.Misses, lines/2)
	}

	// Random access over a region much larger than the cache: mostly misses.
	rnd := NewDefaultCache()
	rng := workload.NewRNG(1)
	for i := 0; i < 1<<16; i++ {
		rnd.Access(uint64(rng.Intn(64 << 20)))
	}
	if float64(rnd.Misses)/float64(rnd.Accesses) < 0.95 {
		t.Fatalf("random access miss rate too low: %d/%d", rnd.Misses, rnd.Accesses)
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// Repeatedly touching a working set smaller than the cache: only cold
	// misses.
	c := NewDefaultCache()
	rng := workload.NewRNG(2)
	for i := 0; i < 1<<16; i++ {
		c.Access(uint64(rng.Intn(16 << 10))) // 16 KiB < 32 KiB
	}
	coldLines := uint64(16 << 10 / 64)
	if c.Misses > coldLines {
		t.Fatalf("misses %d exceed cold misses %d", c.Misses, coldLines)
	}
}

func TestCacheAssociativityConflict(t *testing.T) {
	// 9 lines mapping to the same set of an 8-way cache thrash forever.
	c := NewDefaultCache()
	setStride := uint64(64 * 64) // lines per set stride: numSets(64) * line(64)
	for round := 0; round < 100; round++ {
		for w := 0; w < 9; w++ {
			c.Access(uint64(w) * setStride)
		}
	}
	if c.Misses < 800 {
		t.Fatalf("conflict misses = %d, want near 900", c.Misses)
	}
}

func TestCacheAccessRange(t *testing.T) {
	c := NewDefaultCache()
	c.Prefetch = false
	c.AccessRange(0, 256) // 4 lines
	if c.Accesses != 4 || c.Misses != 4 {
		t.Fatalf("AccessRange: %d/%d", c.Misses, c.Accesses)
	}
	c.AccessRange(0, 0)
	if c.Accesses != 4 {
		t.Fatal("empty range should not access")
	}
	c.AccessRange(60, 8) // crosses a line boundary: 2 lines, both hot/cold
	if c.Accesses != 6 {
		t.Fatalf("cross-line range accesses = %d", c.Accesses)
	}
}

func TestCachePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(100, 64, 8) },
		func() { NewCache(32<<10, 60, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBranchPredictorBias(t *testing.T) {
	// A heavily biased branch predicts well.
	b := NewBranch(4)
	for i := 0; i < 1000; i++ {
		b.Record(0, true)
	}
	if b.Mispredictions > 3 {
		t.Fatalf("biased branch mispredicted %d times", b.Mispredictions)
	}

	// A random branch mispredicts roughly half the time.
	r := NewBranch(4)
	rng := workload.NewRNG(3)
	for i := 0; i < 10000; i++ {
		r.Record(1, rng.Intn(2) == 1)
	}
	rate := float64(r.Mispredictions) / float64(r.Branches)
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branch mispredict rate = %f", rate)
	}
}

func TestProbeSampling(t *testing.T) {
	p := NewProbe()
	p.SampleEvery(100)
	for i := 0; i < 1050; i++ {
		p.access(uint64(i * 64))
	}
	if len(p.Samples()) != 10 {
		t.Fatalf("samples = %d, want 10", len(p.Samples()))
	}
	last := p.Samples()[9]
	if last.CacheAccesses != 1000 {
		t.Fatalf("last sample at %d accesses", last.CacheAccesses)
	}
}

// sortedIdx verifies a colSim actually sorted its index array.
func checkColSorted(t *testing.T, cols [][]uint32, idx []uint32, ctx string) {
	t.Helper()
	for i := 1; i < len(idx); i++ {
		for c := range cols {
			va, vb := cols[c][idx[i-1]], cols[c][idx[i]]
			if va != vb {
				if va > vb {
					t.Fatalf("%s: not sorted at %d", ctx, i)
				}
				break
			}
		}
	}
}

func TestColumnarKernelsSortCorrectly(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(5000, 3, 81)

	probe := NewProbe()
	s := &colSim{cols: cols, idx: identity(5000), probe: probe, tuple: true}
	introsortSim(s.less, s.swap, 0, 5000, probe)
	checkColSorted(t, cols, s.idx, "tuple")

	// Subsort path through the public wrapper plus explicit order check.
	probe2 := NewProbe()
	s2 := &colSim{cols: cols, idx: identity(5000), probe: probe2}
	s2.active = 0
	introsortSim(s2.less, s2.swap, 0, 5000, probe2)
	for i := 1; i < 5000; i++ {
		if cols[0][s2.idx[i-1]] > cols[0][s2.idx[i]] {
			t.Fatal("single-column sim sort failed")
		}
	}
}

func TestRowKernelsSortCorrectly(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(5000, 4, 82)

	probe := NewProbe()
	s := newRowSim(cols, probe)
	introsortSim(s.lessRows, s.swapRows, 0, s.n(), probe)
	checkRowSimSorted(t, s, "introsort")

	probe2 := NewProbe()
	s2 := newRowSim(cols, probe2)
	s2.memcmp = true
	pdqsortSim(s2.lessRows, s2.swapRows, s2.n(), probe2)
	checkRowSimSorted(t, s2, "pdqsim")

	probe3 := NewProbe()
	s3 := newRowSim(cols, probe3)
	radixSim(s3, probe3)
	checkRowSimSorted(t, s3, "radixsim")
}

func checkRowSimSorted(t *testing.T, s *rowSim, ctx string) {
	t.Helper()
	keyW := s.numKeys * 4
	for i := 1; i < s.n(); i++ {
		a := s.row(i - 1)[:keyW]
		b := s.row(i)[:keyW]
		if string(a) > string(b) {
			t.Fatalf("%s: rows out of order at %d", ctx, i)
		}
	}
}

// TestTableIIShape: on the columnar format with correlated keys, subsort
// must incur fewer cache misses and fewer branch mispredictions than
// tuple-at-a-time — the relationship Table II reports. At 2^15 the L1
// direction matches directly; the cache advantage also appears at the L2
// level once inputs outgrow it (covered by TestTableIIL2Shape).
func TestTableIIShape(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(1<<15, 4, 83)
	tup := ColumnarTupleAtATime(cols)
	sub := ColumnarSubsort(cols)
	if sub.CacheMisses >= tup.CacheMisses {
		t.Fatalf("Table II shape: subsort misses %d >= tuple misses %d", sub.CacheMisses, tup.CacheMisses)
	}
	if sub.BranchMisses >= tup.BranchMisses {
		t.Fatalf("Table II shape: subsort branch misses %d >= tuple %d", sub.BranchMisses, tup.BranchMisses)
	}
}

// TestTableIIL2Shape: at sizes past the L2 capacity, subsort's per-phase
// working-set shrinkage shows as fewer L2 misses than tuple-at-a-time even
// though its extra passes cost more L1 misses.
func TestTableIIL2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cols := workload.Dist{P: 0.5}.Generate(1<<17, 4, 87)
	tup := ColumnarTupleAtATime(cols)
	sub := ColumnarSubsort(cols)
	if sub.L2Misses >= tup.L2Misses {
		t.Fatalf("Table II L2 shape: subsort %d >= tuple %d", sub.L2Misses, tup.L2Misses)
	}
}

// TestTableIIIShape: the row format must incur far fewer cache misses than
// the columnar format for the same workload and approach.
func TestTableIIIShape(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(1<<15, 4, 84)
	colT := ColumnarTupleAtATime(cols)
	rowT := RowTupleAtATime(cols)
	if rowT.CacheMisses*2 >= colT.CacheMisses {
		t.Fatalf("Table III shape: row misses %d not well below columnar %d", rowT.CacheMisses, colT.CacheMisses)
	}
	// Branch misses should be in the same ballpark (same comparisons).
	ratio := float64(rowT.BranchMisses) / float64(colT.BranchMisses)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("Table III shape: branch miss ratio %f too far from 1", ratio)
	}

	// Row subsort has fewer branch misses than row tuple-at-a-time.
	rowS := RowSubsort(cols)
	if rowS.BranchMisses >= rowT.BranchMisses {
		t.Fatalf("row subsort branch misses %d >= tuple %d", rowS.BranchMisses, rowT.BranchMisses)
	}
}

// TestFigure10Shape: radix sort must show more cache misses but fewer
// branch mispredictions than pdqsort on the same normalized keys.
func TestFigure10Shape(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(1<<15, 4, 85)
	_, pdq := PdqsortNormalized(cols, 0)
	_, rad := RadixNormalized(cols, 0)
	if rad.BranchMisses >= pdq.BranchMisses {
		t.Fatalf("Fig 10 shape: radix branch misses %d >= pdq %d", rad.BranchMisses, pdq.BranchMisses)
	}
	if rad.CacheMisses <= pdq.CacheMisses {
		t.Fatalf("Fig 10 shape: radix cache misses %d <= pdq %d", rad.CacheMisses, pdq.CacheMisses)
	}
}

func TestSeriesAreCumulative(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(1<<13, 4, 86)
	samples, final := PdqsortNormalized(cols, 20)
	if len(samples) < 10 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].CacheMisses < samples[i-1].CacheMisses ||
			samples[i].BranchMisses < samples[i-1].BranchMisses {
			t.Fatal("series not cumulative")
		}
	}
	last := samples[len(samples)-1]
	if last.CacheAccesses > final.CacheAccesses {
		t.Fatal("sample exceeds final totals")
	}

	radSamples, radFinal := RadixNormalized(cols, 20)
	if len(radSamples) < 10 || radFinal.Branches != 0 && radFinal.BranchMisses > radFinal.Branches {
		t.Fatalf("radix series broken: %d samples", len(radSamples))
	}
}

func TestRowSimEncoding(t *testing.T) {
	cols := [][]uint32{{7, 1}, {9, 3}}
	s := newRowSim(cols, NewProbe())
	if s.n() != 2 {
		t.Fatal("row count")
	}
	if binary.BigEndian.Uint32(s.row(0)) != 7 || binary.BigEndian.Uint32(s.row(1)[4:]) != 3 {
		t.Fatal("row encoding wrong")
	}
	if s.key(0, 1) != 9 {
		t.Fatal("key accessor wrong")
	}
}
