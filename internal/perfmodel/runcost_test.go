package perfmodel

import "testing"

// The run-sort cost curves must land the crossovers the measured regimes
// show: radix on short uniform keys, pdqsort on long varying keys and on
// presorted runs, radix on wide keys whose varying band is narrow.
func TestRunCostCrossovers(t *testing.T) {
	cases := []struct {
		name      string
		sh        RunShape
		wantRadix bool
	}{
		{"short uniform keys", RunShape{Rows: 1 << 14, RowBytes: 16, KeyBytes: 9,
			EffectiveKeyBytes: 8, Sortedness: 0.5, DistinctRatio: 1}, true},
		{"long varying keys small n", RunShape{Rows: 1 << 10, RowBytes: 72, KeyBytes: 64,
			EffectiveKeyBytes: 64, Sortedness: 0.5, DistinctRatio: 1}, false},
		{"wide key narrow varying band", RunShape{Rows: 1 << 12, RowBytes: 72, KeyBytes: 64,
			EffectiveKeyBytes: 2, Sortedness: 0.5, DistinctRatio: 1}, true},
		{"presorted", RunShape{Rows: 1 << 14, RowBytes: 16, KeyBytes: 9,
			EffectiveKeyBytes: 8, Sortedness: 1, DistinctRatio: 1}, false},
	}
	for _, c := range cases {
		r, p := RadixRunCost(c.sh), PdqRunCost(c.sh)
		if (r <= p) != c.wantRadix {
			t.Errorf("%s: radix %.2f vs pdq %.2f, want radix=%v", c.name, r, p, c.wantRadix)
		}
	}
}

func TestRunCostDuplicatesShortenPdq(t *testing.T) {
	uni := RunShape{Rows: 1 << 16, RowBytes: 16, KeyBytes: 9,
		EffectiveKeyBytes: 8, Sortedness: 0.5, DistinctRatio: 1}
	dup := uni
	dup.DistinctRatio = 0.001 // ~64 distinct keys
	if PdqRunCost(dup) >= PdqRunCost(uni) {
		t.Errorf("duplicate-heavy pdq cost %.2f not below unique-key cost %.2f",
			PdqRunCost(dup), PdqRunCost(uni))
	}
}

func TestRunCostDegenerate(t *testing.T) {
	if c := PdqRunCost(RunShape{Rows: 1}); c != 1 {
		t.Errorf("single-row pdq cost = %.2f", c)
	}
	if c := RadixRunCost(RunShape{Rows: 1, RowBytes: 8}); c <= 0 {
		t.Errorf("degenerate radix cost = %.2f", c)
	}
}
