package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/mem"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("parallel", "Parallel external sort: rungen/read-ahead/partitioned-merge ablation under spill",
		runParallelAblation)
}

// chunkSink is the common surface of core.Sink and core.ParallelSink.
type chunkSink interface {
	Append(*vector.Chunk) error
	Close() error
}

// extSortOnce runs one end-to-end external sort — ingest (single Sink or
// ParallelSink), finalize, streamed drain — and returns wall time + stats.
func extSortOnce(tbl *vector.Table, keys []core.SortColumn, opt core.Options, parIngest bool) (time.Duration, core.SortStats) {
	start := time.Now()
	s, err := core.NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		panic(err)
	}
	var sink chunkSink
	if parIngest {
		sink = s.NewParallelSink()
	} else {
		sink = s.NewSink()
	}
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			panic(err)
		}
	}
	if err := sink.Close(); err != nil {
		panic(err)
	}
	if err := s.Finalize(); err != nil {
		panic(err)
	}
	it, err := s.Rows()
	if err != nil {
		panic(err)
	}
	rows := 0
	for {
		c, err := it.Next()
		if err != nil {
			panic(err)
		}
		if c == nil {
			break
		}
		rows += c.Len()
	}
	if err := it.Close(); err != nil {
		panic(err)
	}
	if rows != tbl.NumRows() {
		panic(fmt.Sprintf("bench: parallel experiment produced %d of %d rows", rows, tbl.NumRows()))
	}
	d := time.Since(start)
	st := s.Stats()
	if err := s.Close(); err != nil {
		panic(err)
	}
	return d, st
}

// runParallelAblation measures what each layer of the parallel external
// sort buys on a spilling workload. The feature ladder is cumulative:
//
//	scalar      single sink, no read-ahead, sequential final merge
//	+rungen     ingest fans out to Threads sinks (ParallelSink)
//	+readahead  spill readers decode the next block on prefetch goroutines
//	+partition  the final merge splits across key ranges (ExtMergeThreads)
//
// The first grid spills eagerly (SpillDir, unlimited memory) across thread
// counts; the second runs the scalar and full pipelines under memory
// budgets, where the final merge is deferred and streams (so the
// partitioned arm degenerates to read-ahead — the planner trades it for
// bounded memory).
func runParallelAblation(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	tbl := workload.CatalogSales(cfg.counterRows(), 10, cfg.seed())
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
	// Few, large runs: each run spans several spill blocks, so the
	// partitioned merge's boundary-block re-reads stay a small fraction of
	// the bytes each worker streams.
	runSize := max(1, tbl.NumRows()/8)

	dir, err := os.MkdirTemp("", "rowsort-parallel-bench-*")
	if err != nil {
		return err
	}
	err = runParallelGrids(w, cfg, tbl, keys, runSize, dir)
	if rerr := os.RemoveAll(dir); err == nil {
		err = rerr
	}
	return err
}

// runParallelGrids renders the two ablation grids into dir's spill files.
func runParallelGrids(w io.Writer, cfg Config, tbl *vector.Table, keys []core.SortColumn, runSize int, dir string) error {
	arm := func(t int, readAhead, extMergeThreads int) core.Options {
		return core.Options{Threads: t, RunSize: runSize, SpillDir: dir,
			ReadAhead: readAhead, ExtMergeThreads: extMergeThreads, Telemetry: cfg.Telemetry}
	}

	var scalarStats core.SortStats
	scalarTime := MedianTime(cfg.reps(), func() {
		_, scalarStats = extSortOnce(tbl, keys, arm(1, -1, 1), false)
	})

	grid := &Table{
		Title: fmt.Sprintf("catalog_sales, %s rows by 4 keys, eager spill (%s), streamed drain (scalar arm: %s)",
			Count(uint64(tbl.NumRows())), Bytes(int64(scalarStats.SpillBytesWritten)), Seconds(scalarTime)),
		Header: []string{"threads", "+rungen", "+readahead", "+partition",
			"speedup", "prefetch hit", "merge parts"},
	}
	threadArms := []int{1, 2, 4, 8}
	for _, t := range threadArms {
		rungenTime := MedianTime(cfg.reps(), func() {
			extSortOnce(tbl, keys, arm(t, -1, 1), true)
		})
		readaheadTime := MedianTime(cfg.reps(), func() {
			extSortOnce(tbl, keys, arm(t, 0, 1), true)
		})
		var full core.SortStats
		fullTime := MedianTime(cfg.reps(), func() {
			_, full = extSortOnce(tbl, keys, arm(t, 0, 0), true)
		})
		hitRate := "-"
		if full.PrefetchedBlocks > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(full.PrefetchHits)/float64(full.PrefetchedBlocks))
		}
		grid.AddRow(fmt.Sprintf("%d", t),
			Seconds(rungenTime), Seconds(readaheadTime), Seconds(fullTime),
			Ratio(scalarTime, fullTime), hitRate,
			Count(uint64(full.ExtMergeParts)))
	}
	grid.Render(w)

	// Budget grid: the streamed budgeted merge, scalar vs full pipeline.
	// The unbudgeted in-memory peak calibrates the budgets.
	_, unlimited := extSortOnce(tbl, keys,
		core.Options{Threads: cfg.threads(), RunSize: runSize, Telemetry: cfg.Telemetry}, true)
	budgets := []int64{
		unlimited.PeakResidentRunBytes / 4,
		unlimited.PeakResidentRunBytes / 8,
	}
	if cfg.MemoryLimit > 0 {
		budgets = []int64{cfg.MemoryLimit}
	}
	bt := &Table{
		Title: fmt.Sprintf("same workload under a memory budget, streamed merge (threads=%d)", cfg.threads()),
		Header: []string{"budget", "scalar", "parallel", "speedup",
			"prefetch hit", "merge stall", "merge passes"},
	}
	for _, budget := range budgets {
		var plSt core.SortStats
		var leak int64
		sc := MedianTime(cfg.reps(), func() {
			broker := mem.NewBroker("bench-parallel", budget)
			o := core.Options{Threads: 1, RunSize: runSize, Broker: broker,
				ReadAhead: -1, ExtMergeThreads: 1, Telemetry: cfg.Telemetry}
			_, _ = extSortOnce(tbl, keys, o, false)
			leak += broker.Used()
		})
		pl := MedianTime(cfg.reps(), func() {
			broker := mem.NewBroker("bench-parallel", budget)
			o := core.Options{Threads: cfg.threads(), RunSize: runSize, Broker: broker,
				Telemetry: cfg.Telemetry}
			_, plSt = extSortOnce(tbl, keys, o, true)
			leak += broker.Used()
		})
		if leak != 0 {
			return fmt.Errorf("bench: broker holds %d bytes after a closed budgeted sort", leak)
		}
		hitRate := "-"
		if plSt.PrefetchedBlocks > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(plSt.PrefetchHits)/float64(plSt.PrefetchedBlocks))
		}
		bt.AddRow(Bytes(budget), Seconds(sc), Seconds(pl), Ratio(sc, pl),
			hitRate, Seconds(plSt.MergeStall), Count(uint64(plSt.MergePasses)))
	}
	bt.Render(w)

	if cfg.PhaseBreakdown && cfg.Telemetry != nil {
		emitPhaseBreakdown(w, "parallel external sort", cfg.Telemetry.Summary())
	}
	return nil
}
