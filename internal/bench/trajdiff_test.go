package bench

import (
	"strings"
	"testing"
)

func diffReport(wls ...TrajectoryWorkload) *TrajectoryReport {
	return &TrajectoryReport{Schema: TrajectorySchema, Scale: "tiny", Threads: 2, Seed: 1, Workloads: wls}
}

func TestDiffTrajectoryRejectsIncomparableReports(t *testing.T) {
	base := diffReport(TrajectoryWorkload{Name: "a", Rows: 100})

	other := diffReport(TrajectoryWorkload{Name: "a", Rows: 100})
	other.Threads = 4
	if _, err := DiffTrajectory(base, other, DiffThresholds{}); err == nil ||
		!strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("threads mismatch: err = %v", err)
	}

	if _, err := DiffTrajectory(base, diffReport(TrajectoryWorkload{Name: "b", Rows: 100}),
		DiffThresholds{}); err == nil || !strings.Contains(err.Error(), "missing from base") {
		t.Fatalf("new-only workload: err = %v", err)
	}

	if _, err := DiffTrajectory(
		diffReport(TrajectoryWorkload{Name: "a", Rows: 100}, TrajectoryWorkload{Name: "b", Rows: 1}),
		diffReport(TrajectoryWorkload{Name: "a", Rows: 100}),
		DiffThresholds{}); err == nil || !strings.Contains(err.Error(), "missing from new") {
		t.Fatalf("base-only workload: err = %v", err)
	}

	if _, err := DiffTrajectory(base, diffReport(TrajectoryWorkload{Name: "a", Rows: 99}),
		DiffThresholds{}); err == nil || !strings.Contains(err.Error(), "rows differ") {
		t.Fatalf("rows mismatch: err = %v", err)
	}
}

func TestDiffTrajectoryTimeAndPeakGates(t *testing.T) {
	base := diffReport(TrajectoryWorkload{Name: "a", Rows: 100, WallNs: 1000, PeakResidentBytes: 1 << 20})
	slow := diffReport(TrajectoryWorkload{Name: "a", Rows: 100, WallNs: 1500, PeakResidentBytes: 1 << 21})

	// Thresholds at zero disable the wall/peak gates entirely — that is how
	// CI compares against a baseline committed from a different machine.
	regs, err := DiffTrajectory(base, slow, DiffThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("disabled gates still flagged %v", regs)
	}

	regs, err = DiffTrajectory(base, slow, DiffThresholds{Time: 0.30, Peak: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("want wall_ns and peak_resident_bytes flagged, got %v", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "wall_ns") || !strings.Contains(s, "+50.0%") {
		t.Fatalf("regression rendering off: %q", s)
	}

	// +20% wall is inside a 30% allowance.
	mild := diffReport(TrajectoryWorkload{Name: "a", Rows: 100, WallNs: 1200, PeakResidentBytes: 1 << 20})
	regs, err = DiffTrajectory(base, mild, DiffThresholds{Time: 0.30, Peak: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("within-threshold change flagged %v", regs)
	}
}

func TestDiffTrajectoryDeterministicByteGates(t *testing.T) {
	det := func(spill, runs int64) TrajectoryWorkload {
		return TrajectoryWorkload{Name: "d", Deterministic: true, Rows: 100,
			SpillBytesWritten: spill, NormKeyBytes: 800, PhysKeyBytes: 200,
			RunsGenerated: runs, MergePasses: 1}
	}
	th := DiffThresholds{Bytes: 0.02}

	regs, err := DiffTrajectory(diffReport(det(1000, 8)), diffReport(det(1050, 8)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "spill_bytes_written" {
		t.Fatalf("+5%% spill bytes should flag at 2%%: %v", regs)
	}

	// Growth from zero always flags: no relative slack is meaningful.
	regs, err = DiffTrajectory(diffReport(det(0, 8)), diffReport(det(1, 8)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Base != 0 {
		t.Fatalf("growth from zero not flagged: %v", regs)
	}

	// Shrinking is an improvement, never a regression.
	regs, err = DiffTrajectory(diffReport(det(1000, 8)), diffReport(det(1, 4)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// Non-deterministic workloads skip the byte gates even when the bytes
	// moved a lot.
	loose := func(spill int64) TrajectoryWorkload {
		w := det(spill, 8)
		w.Deterministic = false
		return w
	}
	regs, err = DiffTrajectory(diffReport(loose(1000)), diffReport(loose(5000)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("non-deterministic workload byte-gated: %v", regs)
	}
}
