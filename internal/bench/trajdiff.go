package bench

import (
	"fmt"
)

// DiffThresholds are benchdiff's noise allowances, each a relative
// increase (0.30 = +30%). Time and Peak at 0 disable that gate — useful
// for smoke runs where only the deterministic metrics are meaningful.
// Bytes applies only to metrics of workloads marked deterministic.
type DiffThresholds struct {
	Time  float64
	Peak  float64
	Bytes float64
}

// Regression is one metric of one workload exceeding its threshold.
type Regression struct {
	Workload  string
	Metric    string
	Base, New int64
	Threshold float64
}

func (r Regression) String() string {
	var rel string
	if r.Base > 0 {
		rel = fmt.Sprintf("%+.1f%%", 100*(float64(r.New)/float64(r.Base)-1))
	} else {
		rel = "from zero"
	}
	return fmt.Sprintf("%s: %s %d -> %d (%s, threshold %+.1f%%)",
		r.Workload, r.Metric, r.Base, r.New, rel, 100*r.Threshold)
}

// DiffTrajectory compares two reports workload by workload and returns the
// metrics of next that regressed past the thresholds. The reports must
// have been produced by the same pinned configuration (scale, threads,
// seed) and cover the same workloads, or it errors: a diff across
// configurations gates nothing.
func DiffTrajectory(base, next *TrajectoryReport, th DiffThresholds) ([]Regression, error) {
	if base.Scale != next.Scale || base.Threads != next.Threads || base.Seed != next.Seed {
		return nil, fmt.Errorf("reports not comparable: base %s/%dt/seed%d vs new %s/%dt/seed%d",
			base.Scale, base.Threads, base.Seed, next.Scale, next.Threads, next.Seed)
	}
	byName := make(map[string]TrajectoryWorkload, len(base.Workloads))
	for _, wl := range base.Workloads {
		byName[wl.Name] = wl
	}
	var regs []Regression
	for _, nw := range next.Workloads {
		bw, ok := byName[nw.Name]
		if !ok {
			return nil, fmt.Errorf("workload %q missing from base report", nw.Name)
		}
		delete(byName, nw.Name)
		if bw.Rows != nw.Rows {
			return nil, fmt.Errorf("workload %q rows differ: base %d vs new %d (inputs not pinned?)",
				nw.Name, bw.Rows, nw.Rows)
		}
		if th.Time > 0 {
			regs = appendExceeding(regs, nw.Name, "wall_ns", bw.WallNs, nw.WallNs, th.Time)
		}
		if th.Peak > 0 {
			regs = appendExceeding(regs, nw.Name, "peak_resident_bytes",
				bw.PeakResidentBytes, nw.PeakResidentBytes, th.Peak)
		}
		if !nw.Deterministic || !bw.Deterministic {
			continue
		}
		regs = appendExceeding(regs, nw.Name, "spill_bytes_written",
			bw.SpillBytesWritten, nw.SpillBytesWritten, th.Bytes)
		regs = appendExceeding(regs, nw.Name, "norm_key_bytes", bw.NormKeyBytes, nw.NormKeyBytes, th.Bytes)
		regs = appendExceeding(regs, nw.Name, "phys_key_bytes", bw.PhysKeyBytes, nw.PhysKeyBytes, th.Bytes)
		regs = appendExceeding(regs, nw.Name, "runs_generated", bw.RunsGenerated, nw.RunsGenerated, th.Bytes)
		regs = appendExceeding(regs, nw.Name, "merge_passes", bw.MergePasses, nw.MergePasses, th.Bytes)
	}
	for name := range byName {
		return nil, fmt.Errorf("workload %q missing from new report", name)
	}
	return regs, nil
}

// appendExceeding records a regression when next exceeds base by more than
// the relative threshold. A metric growing from zero is always a
// regression (no relative slack is meaningful there); shrinking never is.
func appendExceeding(regs []Regression, wl, metric string, base, next int64, th float64) []Regression {
	if next <= base {
		return regs
	}
	if base == 0 || float64(next) > float64(base)*(1+th) {
		regs = append(regs, Regression{Workload: wl, Metric: metric, Base: base, New: next, Threshold: th})
	}
	return regs
}
