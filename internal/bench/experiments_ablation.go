package bench

import (
	"fmt"
	"io"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("gather", "Ablation: Result materialization — scalar vs vectorized vs parallel",
		runGatherAblation)
}

// runGatherAblation isolates the final pipeline stage (scanning the sorted
// rows back into vectors) and compares the value-at-a-time scalar reference
// against the typed gather kernels, single-threaded and parallel. The
// customer workload includes string keys and payload, so the varchar heap
// compaction path is exercised alongside the fixed-width kernels.
func runGatherAblation(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	for _, wl := range []struct {
		name string
		tbl  *vector.Table
		keys []core.SortColumn
	}{
		{
			name: "catalog_sales (integers, 4 keys)",
			tbl:  workload.CatalogSales(cfg.counterRows(), 10, cfg.seed()),
			keys: []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}},
		},
		{
			name: "customer (strings, 2 keys)",
			tbl:  workload.Customer(cfg.counterRows(), cfg.seed()),
			keys: []core.SortColumn{{Column: 4}, {Column: 5}},
		},
	} {
		s, err := core.NewSorter(wl.tbl.Schema, wl.keys, core.Options{Threads: cfg.threads()})
		if err != nil {
			return err
		}
		sink := s.NewSink()
		for _, c := range wl.tbl.Chunks {
			if err := sink.Append(c); err != nil {
				return err
			}
		}
		if err := sink.Close(); err != nil {
			return err
		}
		if err := s.Finalize(); err != nil {
			return err
		}

		// Result does not consume the sorted rows, so each variant can be
		// re-measured on the same finalized sorter.
		t := &Table{
			Title:  fmt.Sprintf("%s, %s rows", wl.name, Count(uint64(wl.tbl.NumRows()))),
			Header: []string{"variant", "time"},
		}
		for _, v := range []struct {
			name string
			run  func() (*vector.Table, error)
		}{
			{"scalar (value-at-a-time)", s.ResultScalar},
			{"vectorized, 1 thread", func() (*vector.Table, error) { return s.ResultThreads(1) }},
			{fmt.Sprintf("vectorized, parallel (threads=%d)", cfg.threads()),
				func() (*vector.Table, error) { return s.ResultThreads(cfg.threads()) }},
		} {
			d := MedianTime(cfg.reps(), func() {
				if _, err := v.run(); err != nil {
					panic(err)
				}
			})
			t.AddRow(v.name, Seconds(d))
		}
		t.Render(w)
	}
	return nil
}
