package bench

import (
	"fmt"
	"io"
	"os"

	"rowsort/internal/core"
	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

func init() {
	register("phases", "Telemetry: per-phase breakdown of a spilling end-to-end sort",
		runPhaseBreakdown)
}

// emitPhaseBreakdown prints the per-phase span table of a finished sort.
// Experiments call it after their result rows when cfg.PhaseBreakdown is set.
func emitPhaseBreakdown(w io.Writer, label string, sum obs.Summary) {
	if sum.Workers == 0 {
		return
	}
	fmt.Fprintf(w, "phase breakdown: %s\n%s\n", label, sum.String())
}

// runPhaseBreakdown instruments one spilling multi-run sort end to end and
// reports what the telemetry layer sees: the unified counters, the stage
// durations against total wall time, and the per-phase span table. With
// sortbench's -trace flag the same run also lands in the Chrome trace.
func runPhaseBreakdown(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	rec := cfg.Telemetry
	if rec == nil {
		rec = obs.NewRecorder()
	}
	rows := cfg.counterRows()
	tbl := workload.CatalogSales(rows, 10, cfg.seed())
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}

	dir, err := os.MkdirTemp("", "rowsort-phases-*")
	if err != nil {
		return err
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			fmt.Fprintf(os.Stderr, "phase breakdown: removing spill dir: %v\n", err)
		}
	}()

	_, st, err := core.SortTableStats(tbl, keys, core.Options{
		Threads:   cfg.threads(),
		RunSize:   max(1, rows/16),
		SpillDir:  dir,
		Telemetry: rec,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "catalog_sales, %s rows, ~16 runs spilled (threads=%d)\n\n",
		Count(uint64(rows)), cfg.threads())
	fmt.Fprintln(w, st.String())

	stages := st.DurRunGen + st.DurMerge + st.DurGather
	fmt.Fprintf(w, "stage durations cover %.1f%% of total wall time\n",
		100*float64(stages)/float64(st.DurTotal))
	return nil
}
