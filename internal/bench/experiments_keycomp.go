package bench

import (
	"fmt"
	"io"
	"os"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("keycomp", "Compressed normalized keys: full vs dictionary vs truncated vs RLE",
		runKeyComp)
}

// runKeyComp is the compressed-key ablation: each workload shape the
// encodings target (low-cardinality strings, shared-prefix strings,
// duplicate-run integers) plus a uniform high-cardinality control is
// sorted under every Options.KeyComp arm. The table reports wall time,
// the logical vs physical normalized-key volume (the gap is what
// compression saved), and the spill bytes of a forced-spill run of the
// same sort (smaller keys spill fewer bytes). The uniform control pins
// the other side of the trade: with nothing to compress, every arm must
// track the full encoding.
func runKeyComp(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	n := cfg.counterRows()
	arms := []struct {
		name string
		kc   core.KeyComp
	}{
		{"full", 0},
		{"dict", core.KeyCompDict},
		{"trunc", core.KeyCompTrunc},
		{"rle", core.KeyCompRLE},
		{"all", core.KeyCompAll},
	}
	workloads := []struct {
		name string
		tbl  *vector.Table
		keys []core.SortColumn
	}{
		{fmt.Sprintf("low-cardinality strings (%s rows, 40 distinct)", Count(uint64(n))),
			workload.LowCardStrings(n, 40, cfg.seed()), []core.SortColumn{{Column: 0}}},
		{fmt.Sprintf("shared-prefix URLs (%s rows)", Count(uint64(n))),
			workload.SharedPrefixStrings(n, cfg.seed()), []core.SortColumn{{Column: 0}}},
		{fmt.Sprintf("duplicate-run integers (%s rows, 500 distinct)", Count(uint64(n))),
			workload.DupHeavyInts(n, 500, cfg.seed()), []core.SortColumn{{Column: 0}}},
		{fmt.Sprintf("uniform int64 control (%s rows)", Count(uint64(n))),
			workload.UniformInt64s(n, cfg.seed()), []core.SortColumn{{Column: 0}}},
	}
	for _, wl := range workloads {
		t := &Table{
			Title:  wl.name,
			Header: []string{"encoding", "time", "logical key bytes", "physical key bytes", "spill bytes"},
		}
		for _, arm := range arms {
			opt := core.Options{Threads: cfg.threads(), KeyComp: arm.kc}
			d := MedianTime(cfg.reps(), func() {
				if _, err := core.SortTable(wl.tbl, wl.keys, opt); err != nil {
					panic(err)
				}
			})
			_, st, err := core.SortTableStats(wl.tbl, wl.keys, opt)
			if err != nil {
				return err
			}
			sst, err := keyCompSpillStats(wl.tbl, wl.keys, opt)
			if err != nil {
				return err
			}
			t.AddRow(arm.name, Seconds(d),
				Bytes(st.NormKeyBytes), Bytes(st.PhysKeyBytes), Bytes(sst.SpillBytesWritten))
		}
		t.Render(w)
	}
	return nil
}

// keyCompSpillStats reruns the sort with eager spilling into a temporary
// directory and returns its stats; the byte counters are deterministic,
// so one run suffices.
func keyCompSpillStats(tbl *vector.Table, keys []core.SortColumn, opt core.Options) (core.SortStats, error) {
	dir, err := os.MkdirTemp("", "rowsort-keycomp-*")
	if err != nil {
		return core.SortStats{}, err
	}
	opt.SpillDir = dir
	_, st, err := core.SortTableStats(tbl, keys, opt)
	if rerr := os.RemoveAll(dir); err == nil {
		err = rerr
	}
	return st, err
}
