package bench

import (
	"fmt"
	"runtime"

	"rowsort/internal/obs"
)

// Scale selects how closely an experiment matches the paper's input sizes.
type Scale string

// The available scales.
const (
	// ScaleTiny runs in unit-test time (used by the testing.B wrappers).
	ScaleTiny Scale = "tiny"
	// ScaleSmall is the default: seconds per experiment, shapes intact.
	ScaleSmall Scale = "small"
	// ScalePaper uses the paper's input sizes where memory allows.
	ScalePaper Scale = "paper"
)

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Threads int // 0 means GOMAXPROCS
	Reps    int // 0 means the scale's default (the paper uses 5)
	Seed    uint64

	// MemoryLimit, when positive, budgets the experiments' sorts
	// (core.Options.MemoryLimit): over-budget sorts degrade by adaptively
	// spilling instead of growing. The "memory" experiment uses it as the
	// single budget to measure instead of its default sweep.
	MemoryLimit int64

	// Telemetry, when non-nil, is threaded into the experiments' sorts so a
	// run can be exported as a Chrome trace or Prometheus text afterwards
	// (cmd/sortbench's -trace and -metrics flags). Nil costs nothing.
	Telemetry *obs.Recorder
	// PhaseBreakdown makes experiments that sort end to end print the
	// per-phase span table after their result rows.
	PhaseBreakdown bool

	// Registry, when non-nil, registers the experiments' sorts with the
	// live observability plane (core.Options.Registry), so a run served
	// over HTTP (cmd/sortbench -serve) exposes progress, ETA and metrics
	// for every sort in flight. Nil costs nothing.
	Registry *obs.Registry
	// BenchJSON, when non-empty, is where the trajectory experiment writes
	// its machine-readable report (the BENCH_sort.json the benchdiff
	// comparator consumes). Other experiments ignore it.
	BenchJSON string
}

// DefaultConfig returns the small-scale configuration.
func DefaultConfig() Config { return Config{Scale: ScaleSmall, Seed: 42} }

func (c Config) valid() error {
	switch c.Scale {
	case ScaleTiny, ScaleSmall, ScalePaper:
		return nil
	}
	return fmt.Errorf("bench: unknown scale %q (want tiny, small or paper)", c.Scale)
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	switch c.Scale {
	case ScaleTiny:
		return 1
	case ScalePaper:
		return 5
	default:
		return 3
	}
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 42
}

// gridSizes returns the row counts of the micro-benchmark grids
// (the paper sweeps 2^12 .. 2^24).
func (c Config) gridSizes() []int {
	switch c.Scale {
	case ScaleTiny:
		return []int{1 << 10, 1 << 12}
	case ScalePaper:
		return []int{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}
	default:
		return []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	}
}

// gridKeys returns the key-column counts of the grids (the paper uses 1-4).
func (c Config) gridKeys() []int {
	if c.Scale == ScaleTiny {
		return []int{1, 2}
	}
	return []int{1, 2, 3, 4}
}

// counterRows returns the input size for the counter experiments (Tables
// II/III and Figure 10; the paper uses 2^24).
func (c Config) counterRows() int {
	switch c.Scale {
	case ScaleTiny:
		return 1 << 12
	case ScalePaper:
		return 1 << 24
	default:
		return 1 << 17
	}
}

// fig12Sizes returns the Figure 12 row counts (the paper sweeps 10M..100M
// in 10M increments).
func (c Config) fig12Sizes() []int {
	switch c.Scale {
	case ScaleTiny:
		return []int{20_000, 40_000}
	case ScalePaper:
		out := make([]int, 10)
		for i := range out {
			out[i] = (i + 1) * 10_000_000
		}
		return out
	default:
		out := make([]int, 5)
		for i := range out {
			out[i] = (i + 1) * 1_000_000
		}
		return out
	}
}

// sfDivisor scales down the TPC-DS cardinalities of Figures 13/14.
func (c Config) sfDivisor() int {
	switch c.Scale {
	case ScaleTiny:
		return 2000
	case ScalePaper:
		return 1
	default:
		return 100
	}
}

// fig10Samples returns how many cumulative snapshots Figure 10 plots.
func (c Config) fig10Samples() int {
	if c.Scale == ScaleTiny {
		return 10
	}
	return 20
}
