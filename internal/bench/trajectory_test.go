package bench

import (
	"path/filepath"
	"testing"
)

func tinyTrajectory(t *testing.T) *TrajectoryReport {
	t.Helper()
	rep, err := Trajectory(Config{Scale: ScaleTiny, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTrajectoryReportShape(t *testing.T) {
	rep := tinyTrajectory(t)
	if rep.Schema != TrajectorySchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Threads != trajectoryThreads {
		t.Fatalf("threads = %d, want pinned %d", rep.Threads, trajectoryThreads)
	}
	want := map[string]bool{ // name -> deterministic
		"uniform-int64": true, "lowcard-dict": true, "prefix-trunc": true,
		"dup-rle": true, "spill-ext": true, "budget-multipass": false,
		"adaptive-nearsorted": true,
	}
	if len(rep.Workloads) != len(want) {
		t.Fatalf("suite has %d workloads, want %d", len(rep.Workloads), len(want))
	}
	for _, wl := range rep.Workloads {
		det, ok := want[wl.Name]
		if !ok {
			t.Errorf("unexpected workload %q", wl.Name)
			continue
		}
		if wl.Deterministic != det {
			t.Errorf("%s: deterministic = %v, want %v", wl.Name, wl.Deterministic, det)
		}
		if wl.Rows <= 0 || wl.WallNs <= 0 || wl.NsPerRow <= 0 {
			t.Errorf("%s: empty measurement: %+v", wl.Name, wl)
		}
		if wl.RunsGenerated <= 0 || wl.NormKeyBytes <= 0 {
			t.Errorf("%s: counters not recorded: %+v", wl.Name, wl)
		}
		switch wl.Name {
		case "spill-ext":
			if wl.SpillBytesWritten <= 0 {
				t.Errorf("spill-ext wrote no spill bytes")
			}
		case "budget-multipass":
			if wl.SpillBytesWritten <= 0 {
				t.Errorf("budget-multipass never spilled under pressure")
			}
		}
	}
}

func TestTrajectoryJSONRoundTrip(t *testing.T) {
	rep := tinyTrajectory(t)
	path := filepath.Join(t.TempDir(), "BENCH_sort.json")
	if err := WriteTrajectoryJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrajectoryJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != len(rep.Workloads) || back.Seed != rep.Seed || back.Scale != rep.Scale {
		t.Fatalf("round trip lost data:\nwrote %+v\nread  %+v", rep, back)
	}
	// A report that went through the pipeline must diff cleanly against
	// itself, whatever the thresholds.
	regs, err := DiffTrajectory(rep, back, DiffThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-diff flagged %v", regs)
	}
}

func TestReadTrajectoryJSONRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := WriteTrajectoryJSON(path, &TrajectoryReport{Schema: "rowsort-bench/v0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrajectoryJSON(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
