package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("trajectory", "Perf trajectory: pinned workload suite for regression tracking",
		runTrajectory)
}

// TrajectorySchema identifies the report format; benchdiff refuses to
// compare reports whose schemas differ.
const TrajectorySchema = "rowsort-bench/v1"

// TrajectoryReport is the machine-readable output of the trajectory
// experiment (BENCH_sort.json). It deliberately carries no timestamps or
// host identifiers so a committed baseline stays diff-stable: rerunning at
// the same scale/seed on the same code changes only what the code changed.
type TrajectoryReport struct {
	Schema    string               `json:"schema"`
	Scale     string               `json:"scale"`
	Threads   int                  `json:"threads"`
	Seed      uint64               `json:"seed"`
	Workloads []TrajectoryWorkload `json:"workloads"`
}

// TrajectoryWorkload is one pinned workload's measurements. Deterministic
// reports whether the byte and count metrics are exact functions of the
// code at this scale/seed (no memory budget, static chunk distribution);
// benchdiff gates those tightly and only applies its noise thresholds to
// wall time and peak memory.
type TrajectoryWorkload struct {
	Name              string  `json:"name"`
	Deterministic     bool    `json:"deterministic"`
	Rows              int64   `json:"rows"`
	WallNs            int64   `json:"wall_ns"`
	NsPerRow          float64 `json:"ns_per_row"`
	PeakResidentBytes int64   `json:"peak_resident_bytes"`
	SpillBytesWritten int64   `json:"spill_bytes_written"`
	NormKeyBytes      int64   `json:"norm_key_bytes"`
	PhysKeyBytes      int64   `json:"phys_key_bytes"`
	RunsGenerated     int64   `json:"runs_generated"`
	MergePasses       int64   `json:"merge_passes"`
}

// trajectoryThreads pins the suite's parallelism so runs_generated and the
// spill byte counters are machine-independent (sortTable's static
// round-robin chunk distribution makes them deterministic at fixed
// Threads/RunSize/Seed).
const trajectoryThreads = 2

func (c Config) trajectoryRows() int {
	switch c.Scale {
	case ScaleTiny:
		return 1 << 13
	case ScalePaper:
		return 1 << 21
	default:
		return 1 << 17
	}
}

// trajectoryWorkload is one pinned suite entry: a generated input, sort
// options, and whether its byte/count metrics are deterministic.
type trajectoryWorkload struct {
	name          string
	deterministic bool
	tbl           *vector.Table
	keys          []core.SortColumn
	opt           core.Options
}

// trajectoryWorkloads builds the pinned suite. One workload per key-
// compression arm on the input shape it targets, a uniform int64 control,
// an eagerly spilled external sort (byte counters exact), and a budgeted
// multi-pass sort (pressure-driven spill is timing-dependent, so only its
// wall/peak are gated, loosely).
func (c Config) trajectoryWorkloads(spillDir string) []trajectoryWorkload {
	n := c.trajectoryRows()
	seed := c.seed()
	runSize := n / 8
	base := core.Options{Threads: trajectoryThreads, RunSize: runSize}
	opt := func(mod func(*core.Options)) core.Options {
		o := base
		if mod != nil {
			mod(&o)
		}
		return o
	}
	col0 := []core.SortColumn{{Column: 0}}
	return []trajectoryWorkload{
		{"uniform-int64", true, workload.UniformInt64s(n, seed), col0, opt(nil)},
		{"lowcard-dict", true, workload.LowCardStrings(n, 40, seed), col0,
			opt(func(o *core.Options) { o.KeyComp = core.KeyCompDict })},
		{"prefix-trunc", true, workload.SharedPrefixStrings(n, seed), col0,
			opt(func(o *core.Options) { o.KeyComp = core.KeyCompTrunc })},
		{"dup-rle", true, workload.DupHeavyInts(n, 500, seed), col0,
			opt(func(o *core.Options) { o.KeyComp = core.KeyCompRLE })},
		{"spill-ext", true, workload.CatalogSales(n, 10, seed),
			[]core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}},
			opt(func(o *core.Options) { o.SpillDir = spillDir })},
		{"budget-multipass", false, workload.UniformInt64s(n, seed), col0,
			opt(func(o *core.Options) { o.MemoryLimit = int64(n) * 8 })},
		{"adaptive-nearsorted", true, workload.NearlySorted(n, 0.001, seed), col0,
			opt(func(o *core.Options) { o.Adaptive = true })},
	}
}

// Trajectory measures the pinned suite and returns the report. Wall time
// is the median of cfg.reps() end-to-end sorts; the counter metrics come
// from one additional instrumented run.
func Trajectory(cfg Config) (*TrajectoryReport, error) {
	if err := cfg.valid(); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "rowsort-trajectory-*")
	if err != nil {
		return nil, err
	}
	rep, err := trajectoryMeasure(cfg, dir)
	if rerr := os.RemoveAll(dir); err == nil {
		err = rerr
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func trajectoryMeasure(cfg Config, dir string) (*TrajectoryReport, error) {
	rep := &TrajectoryReport{
		Schema:  TrajectorySchema,
		Scale:   string(cfg.Scale),
		Threads: trajectoryThreads,
		Seed:    cfg.seed(),
	}
	for _, wl := range cfg.trajectoryWorkloads(dir) {
		opt := wl.opt
		opt.Telemetry = cfg.Telemetry
		opt.Registry = cfg.Registry
		opt.RunLabel = "trajectory:" + wl.name
		d := MedianTime(cfg.reps(), func() {
			if _, err := core.SortTable(wl.tbl, wl.keys, opt); err != nil {
				panic(err)
			}
		})
		_, st, err := core.SortTableStats(wl.tbl, wl.keys, opt)
		if err != nil {
			return nil, fmt.Errorf("trajectory %s: %w", wl.name, err)
		}
		rows := st.RowsIngested
		w := TrajectoryWorkload{
			Name:              wl.name,
			Deterministic:     wl.deterministic,
			Rows:              rows,
			WallNs:            d.Nanoseconds(),
			PeakResidentBytes: st.PeakResidentRunBytes,
			SpillBytesWritten: st.SpillBytesWritten,
			NormKeyBytes:      st.NormKeyBytes,
			PhysKeyBytes:      st.PhysKeyBytes,
			RunsGenerated:     st.RunsGenerated,
			MergePasses:       st.MergePasses,
		}
		if rows > 0 {
			w.NsPerRow = float64(d.Nanoseconds()) / float64(rows)
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep, nil
}

// runTrajectory prints the suite as a table and, when Config.BenchJSON is
// set, writes the report there for benchdiff.
func runTrajectory(w io.Writer, cfg Config) error {
	rep, err := Trajectory(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("perf trajectory (%s scale, %d threads, seed %d)",
			rep.Scale, rep.Threads, rep.Seed),
		Header: []string{"workload", "rows", "wall", "ns/row", "peak resident",
			"spill written", "key bytes", "runs", "passes", "exact"},
	}
	for _, wl := range rep.Workloads {
		exact := "yes"
		if !wl.Deterministic {
			exact = "no"
		}
		t.AddRow(wl.Name, Count(uint64(wl.Rows)), Seconds(time.Duration(wl.WallNs)),
			fmt.Sprintf("%.1f", wl.NsPerRow), Bytes(wl.PeakResidentBytes),
			Bytes(wl.SpillBytesWritten),
			fmt.Sprintf("%s/%s", Bytes(wl.PhysKeyBytes), Bytes(wl.NormKeyBytes)),
			fmt.Sprintf("%d", wl.RunsGenerated), fmt.Sprintf("%d", wl.MergePasses),
			exact)
	}
	t.Render(w)

	if cfg.BenchJSON == "" {
		return nil
	}
	if err := WriteTrajectoryJSON(cfg.BenchJSON, rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", cfg.BenchJSON)
	return nil
}

// WriteTrajectoryJSON writes the report as indented JSON with a trailing
// newline, the exact bytes benchdiff and the committed baseline use.
func WriteTrajectoryJSON(path string, rep *TrajectoryReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTrajectoryJSON loads a report and checks its schema tag.
func ReadTrajectoryJSON(path string) (*TrajectoryReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep TrajectoryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, TrajectorySchema)
	}
	return &rep, nil
}
