package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMedianTime(t *testing.T) {
	d := MedianTime(3, func() { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond {
		t.Fatalf("median too small: %v", d)
	}
	if MedianTime(0, func() {}) < 0 {
		t.Fatal("reps<1 should still measure once")
	}
}

func TestMedianTimePrep(t *testing.T) {
	preps := 0
	d := MedianTimePrep(3,
		func() int { preps++; time.Sleep(2 * time.Millisecond); return 1 },
		func(int) { time.Sleep(time.Millisecond) })
	if preps != 3 {
		t.Fatalf("prep ran %d times", preps)
	}
	// Prep time must be excluded.
	if d > 1800*time.Microsecond {
		t.Fatalf("prep time leaked into measurement: %v", d)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbb"}}
	tab.AddRow("xxxx", "1")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxxx  1") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(200*time.Millisecond, 100*time.Millisecond) != "2.00" {
		t.Fatal("Ratio broken")
	}
	if Ratio(time.Second, 0) != "inf" {
		t.Fatal("Ratio zero divisor broken")
	}
	if Seconds(1500*time.Millisecond) != "1.500s" {
		t.Fatal("Seconds broken")
	}
	if Count(1234567) != "1,234,567" {
		t.Fatalf("Count = %q", Count(1234567))
	}
	if Count(42) != "42" {
		t.Fatal("small Count broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.reps() != 3 || cfg.Scale != ScaleSmall {
		t.Fatal("defaults wrong")
	}
	if (Config{Scale: ScalePaper}).reps() != 5 {
		t.Fatal("paper reps should be 5")
	}
	if (Config{Scale: ScaleTiny}).reps() != 1 {
		t.Fatal("tiny reps should be 1")
	}
	if (Config{Scale: ScaleSmall, Reps: 7}).reps() != 7 {
		t.Fatal("explicit reps ignored")
	}
	if (Config{Scale: "bogus"}).valid() == nil {
		t.Fatal("bogus scale should be invalid")
	}
	if (Config{Scale: ScaleTiny}).seed() != 42 {
		t.Fatal("default seed should be 42")
	}
	if (Config{Scale: ScaleTiny, Seed: 7}).seed() != 7 {
		t.Fatal("explicit seed ignored")
	}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "compmodel",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Registry()) < len(want) {
		t.Fatalf("registry has %d entries, want >= %d", len(Registry()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id should not resolve")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	cfg := Config{Scale: ScaleTiny, Threads: 2, Seed: 1}
	for _, e := range Registry() {
		var sb strings.Builder
		if err := e.Run(&sb, cfg); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
	}
}

func TestExperimentsRejectBadScale(t *testing.T) {
	cfg := Config{Scale: "huge"}
	for _, id := range []string{"fig2", "fig4", "table2", "fig10", "fig11", "fig12", "fig13", "fig14"} {
		e, _ := ByID(id)
		var sb strings.Builder
		if err := e.Run(&sb, cfg); err == nil {
			t.Errorf("%s accepted bad scale", id)
		}
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered per-experiment")
	}
	var sb strings.Builder
	if err := RunAll(&sb, Config{Scale: ScaleTiny, Threads: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig12", "table4", "compmodel"} {
		if !strings.Contains(sb.String(), "=== "+id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}
