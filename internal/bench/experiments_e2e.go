package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/normkey"
	"rowsort/internal/systems"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("table1", "Hardware/environment specification", runTable1)
	register("fig7", "Key normalization worked example", runFig7)
	register("fig11", "DuckDB sorting pipeline stage timings", runFig11)
	register("fig12", "End-to-end: sorting random integers and floats, 5 systems", runFig12)
	register("fig13", "End-to-end: TPC-DS catalog_sales, 1-4 key columns", runFig13)
	register("fig14", "End-to-end: TPC-DS customer, integer vs string keys", runFig14)
	register("table4", "TPC-DS table cardinalities", runTable4)
	register("compmodel", "Section II comparison-count model: run generation vs merge", runCompModel)
}

func runTable1(w io.Writer, cfg Config) error {
	t := &Table{
		Title:  "Environment (the paper used AWS m5d.metal / m5d.8xlarge, Xeon Platinum 8259CL)",
		Header: []string{"property", "value"},
	}
	t.AddRow("GOOS/GOARCH", runtime.GOOS+"/"+runtime.GOARCH)
	t.AddRow("Go version", runtime.Version())
	t.AddRow("logical CPUs", fmt.Sprintf("%d", runtime.NumCPU()))
	t.AddRow("GOMAXPROCS", fmt.Sprintf("%d", runtime.GOMAXPROCS(0)))
	t.AddRow("benchmark threads", fmt.Sprintf("%d", cfg.threads()))
	t.AddRow("scale", string(cfg.Scale))
	t.Render(w)
	return nil
}

// runFig7 prints the paper's worked key-normalization example: the customer
// table ordered by c_birth_country DESC, c_birth_year ASC.
func runFig7(w io.Writer, _ Config) error {
	country := vector.New(vector.Varchar, 2)
	country.AppendString("NETHERLANDS")
	country.AppendString("GERMANY")
	year := vector.New(vector.Int32, 2)
	year.AppendInt32(1992)
	year.AppendInt32(1924)
	keys := []normkey.SortKey{
		{Type: vector.Varchar, Order: normkey.Descending, PrefixLen: 11},
		{Type: vector.Int32, Order: normkey.Ascending},
	}
	enc, err := normkey.NewEncoder(keys)
	if err != nil {
		return err
	}
	out := make([]byte, 2*enc.Width())
	if err := enc.Encode([]*vector.Vector{country, year}, out, enc.Width(), 0); err != nil {
		return err
	}
	fmt.Fprintf(w, "ORDER BY c_birth_country DESC, c_birth_year ASC\n\n")
	for r := 0; r < 2; r++ {
		key := out[r*enc.Width() : (r+1)*enc.Width()]
		fmt.Fprintf(w, "(%q, %d)\n", country.Strings()[r], year.Int32s()[r])
		fmt.Fprintf(w, "  country segment: % x\n", key[:enc.Offset(1)])
		fmt.Fprintf(w, "  year segment:    % x\n", key[enc.Offset(1):])
	}
	fmt.Fprintf(w, "\nByte-wise comparison of the keys yields the query's order:\n")
	fmt.Fprintf(w, "NETHERLANDS row sorts first under DESC (its inverted prefix is smaller).\n\n")
	return nil
}

// runFig11 traces the DuckDB pipeline on a representative workload and
// reports per-stage times: vectorized conversion + thread-local run
// generation, the k-way loser-tree merge, and the columnar scan.
func runFig11(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	n := cfg.counterRows()
	tbl := workload.CatalogSales(n, 10, cfg.seed())
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}

	s, err := core.NewSorter(tbl.Schema, keys,
		core.Options{Threads: cfg.threads(), MemoryLimit: cfg.MemoryLimit})
	if err != nil {
		return err
	}
	start := time.Now()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	sinkTime := time.Since(start)

	start = time.Now()
	if err := s.Finalize(); err != nil {
		return err
	}
	mergeTime := time.Since(start)

	start = time.Now()
	res, err := s.Result()
	if err != nil {
		return err
	}
	scanTime := time.Since(start)

	t := &Table{
		Title:  fmt.Sprintf("Pipeline stages sorting %d catalog_sales rows by 4 keys", res.NumRows()),
		Header: []string{"stage", "time"},
	}
	t.AddRow("convert to rows + normalize keys + run generation", Seconds(sinkTime))
	t.AddRow("k-way loser-tree merge", Seconds(mergeTime))
	t.AddRow("scan back to vectors", Seconds(scanTime))
	t.Render(w)
	return nil
}

func runFig12(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	for _, kind := range []string{"integers", "floats"} {
		t := &Table{Title: "Sorting random " + kind + " (seconds, lower is better)"}
		t.Header = append(t.Header, "rows")
		sysList := systems.All(cfg.threads())
		for _, s := range sysList {
			t.Header = append(t.Header, s.Name())
		}
		for _, n := range cfg.fig12Sizes() {
			row := []string{Count(uint64(n))}
			var tbl *vector.Table
			var err error
			if kind == "integers" {
				tbl, err = vector.TableFromColumns(
					vector.Schema{{Name: "v", Type: vector.Int32}},
					vector.FromInt32(workload.ShuffledInt32s(n, cfg.seed())))
			} else {
				tbl, err = vector.TableFromColumns(
					vector.Schema{{Name: "v", Type: vector.Float32}},
					vector.FromFloat32(workload.UniformFloat32s(n, cfg.seed())))
			}
			if err != nil {
				return err
			}
			keys := []core.SortColumn{{Column: 0}}
			for _, sys := range sysList {
				d := MedianTime(cfg.reps(), func() {
					if _, err := systems.SortCount(sys, tbl, keys); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
	return nil
}

func runFig13(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	div := cfg.sfDivisor()
	for _, sf := range []int{10, 100} {
		n := workload.CatalogSalesRows(sf) / div
		tbl := workload.CatalogSales(n, sf, cfg.seed())
		t := &Table{Title: fmt.Sprintf("catalog_sales SF%d (%s rows; paper size / %d) — seconds",
			sf, Count(uint64(n)), div)}
		t.Header = append(t.Header, "key columns")
		sysList := systems.All(cfg.threads())
		for _, s := range sysList {
			t.Header = append(t.Header, s.Name())
		}
		for nk := 1; nk <= 4; nk++ {
			keys := make([]core.SortColumn, nk)
			for i := range keys {
				keys[i] = core.SortColumn{Column: i}
			}
			row := []string{fmt.Sprintf("%d", nk)}
			for _, sys := range sysList {
				d := MedianTime(cfg.reps(), func() {
					if _, err := systems.SortCount(sys, tbl, keys); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
	return nil
}

func runFig14(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	div := cfg.sfDivisor()
	intKeys := []core.SortColumn{{Column: 1}, {Column: 2}, {Column: 3}}
	strKeys := []core.SortColumn{{Column: 4}, {Column: 5}}
	for _, sf := range []int{100, 300} {
		n := workload.CustomerRows(sf) / div
		tbl := workload.Customer(n, cfg.seed())
		t := &Table{Title: fmt.Sprintf("customer SF%d (%s rows; paper size / %d) — seconds",
			sf, Count(uint64(n)), div)}
		t.Header = append(t.Header, "keys")
		sysList := systems.All(cfg.threads())
		for _, s := range sysList {
			t.Header = append(t.Header, s.Name())
		}
		for _, kc := range []struct {
			name string
			keys []core.SortColumn
		}{{"integer (year, month, day)", intKeys}, {"string (last, first)", strKeys}} {
			row := []string{kc.name}
			for _, sys := range sysList {
				d := MedianTime(cfg.reps(), func() {
					if _, err := systems.SortCount(sys, tbl, kc.keys); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
	return nil
}

func runTable4(w io.Writer, _ Config) error {
	t := &Table{
		Title:  "TPC-DS cardinalities",
		Header: []string{"table", "SF10", "SF100", "SF300"},
	}
	t.AddRow("catalog_sales",
		Count(uint64(workload.CatalogSalesRows(10))),
		Count(uint64(workload.CatalogSalesRows(100))),
		Count(uint64(workload.CatalogSalesRows(300))))
	t.AddRow("customer",
		Count(uint64(workload.CustomerRows(10))),
		Count(uint64(workload.CustomerRows(100))),
		Count(uint64(workload.CustomerRows(300))))
	t.Render(w)
	return nil
}

// runCompModel prints Section II's analytic model: with k sorted runs of
// n/k rows, run generation performs n·log(n) − n·log(k) comparisons on
// average versus n·log(k) in the merge, crossing over at k = sqrt(n).
func runCompModel(w io.Writer, _ Config) error {
	t := &Table{
		Title:  "comp_A = n·log2(n) − n·log2(k) (run generation) vs comp_B = n·log2(k) (merge)",
		Header: []string{"n", "k", "comp_A", "comp_B", "run-gen share"},
	}
	for _, c := range []struct {
		n, k float64
	}{
		{1e6, 16}, {1e6, 1000}, {1e8, 16}, {1e8, 48}, {1e8, 10000},
	} {
		compA := c.n * (math.Log2(c.n) - math.Log2(c.k))
		compB := c.n * math.Log2(c.k)
		t.AddRow(
			Count(uint64(c.n)), Count(uint64(c.k)),
			Count(uint64(compA)), Count(uint64(compB)),
			fmt.Sprintf("%.0f%%", 100*compA/(compA+compB)))
	}
	t.Render(w)
	fmt.Fprintf(w, "Crossover at k = sqrt(n); with in-memory sorts k equals the thread count,\n")
	fmt.Fprintf(w, "so run generation dominates — the paper's motivation for optimizing it.\n\n")
	return nil
}
