package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("adaptive", "Adaptive strategy: static radix vs static pdqsort vs sampled planner",
		runAdaptive)
}

// runAdaptive is the strategy-planner ablation: workload shapes where the
// run-sort crossover lands on different sides — nearly sorted (pdqsort's
// pattern detection wins), an adversarial sawtooth (locally sorted, globally
// shuffled: the planner must NOT read it as presorted), uniform integers
// (radix wins), a wide four-column key, and duplicate-heavy runs (the
// grouped sort wins) — each sorted under a pinned static radix arm, a pinned
// static pdqsort arm, and the sampled per-run planner. The planner's job is
// to track the best static arm everywhere without being told which one that
// is; the "run sorts" column shows what it chose, from the decision log.
func runAdaptive(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	n := cfg.counterRows()
	seed := cfg.seed()
	arms := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"static-radix", nil},
		{"static-pdqsort", func(o *core.Options) { o.ForcePdqsort = true }},
		{"adaptive", func(o *core.Options) { o.Adaptive = true }},
	}
	col0 := []core.SortColumn{{Column: 0}}
	wide := workload.UintColumnsTable(workload.Dist{Random: true}.Generate(n, 4, seed))
	workloads := []struct {
		name string
		tbl  *vector.Table
		keys []core.SortColumn
	}{
		{fmt.Sprintf("nearly sorted int64 (%s rows, 0.1%% disorder)", Count(uint64(n))),
			workload.NearlySorted(n, 0.001, seed), col0},
		{fmt.Sprintf("sawtooth ramps (%s rows, period 1024)", Count(uint64(n))),
			workload.SawtoothRuns(n, 1024, seed), col0},
		{fmt.Sprintf("uniform int64 (%s rows)", Count(uint64(n))),
			workload.UniformInt64s(n, seed), col0},
		{fmt.Sprintf("wide 4-column key (%s rows)", Count(uint64(n))), wide,
			[]core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}},
		{fmt.Sprintf("duplicate-run integers (%s rows, 500 distinct)", Count(uint64(n))),
			workload.DupHeavyInts(n, 500, seed), col0},
	}
	for _, wl := range workloads {
		t := &Table{
			Title:  wl.name,
			Header: []string{"arm", "time", "ns/row", "vs best static", "run sorts"},
		}
		opts := make([]core.Options, len(arms))
		fns := make([]func(), len(arms))
		for i, arm := range arms {
			opts[i] = core.Options{Threads: cfg.threads()}
			if arm.mod != nil {
				arm.mod(&opts[i])
			}
			opt := opts[i]
			fns[i] = func() {
				if _, err := core.SortTable(wl.tbl, wl.keys, opt); err != nil {
					panic(err)
				}
			}
		}
		// Arms interleave so background drift cannot bias one arm's block,
		// and the headline ratio is the median of per-round paired ratios:
		// within one round the arms run back to back, so whatever drift
		// remains divides out instead of landing on one arm's median.
		rounds := InterleavedRounds(cfg.reps(), fns)
		algos := make([]string, len(arms))
		for i := range arms {
			_, st, err := core.SortTableStats(wl.tbl, wl.keys, opts[i])
			if err != nil {
				return err
			}
			algos[i] = decisionAlgoSummary(st.StrategyDecisions)
		}
		for i, arm := range arms {
			ratios := make([]float64, len(rounds[i]))
			for r := range rounds[i] {
				best := min(rounds[0][r], rounds[1][r])
				ratios[r] = float64(best) / float64(rounds[i][r])
			}
			sort.Float64s(ratios)
			med := MedianDuration(rounds[i])
			nsPerRow := float64(med.Nanoseconds()) / float64(wl.tbl.NumRows())
			t.AddRow(arm.name, Seconds(med), fmt.Sprintf("%.1f", nsPerRow),
				fmt.Sprintf("%.2f", ratios[len(ratios)/2]), algos[i])
		}
		t.Render(w)
	}
	return nil
}

// decisionAlgoSummary compresses a decision log to "algo×runs" pairs in
// stable order.
func decisionAlgoSummary(decs []core.StrategyDecision) string {
	if len(decs) == 0 {
		return "-"
	}
	counts := map[string]int{}
	for _, d := range decs {
		counts[d.Algo]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s×%d", name, counts[name])
	}
	return strings.Join(parts, " ")
}
