// Package bench is the harness that regenerates the paper's tables and
// figures: deterministic median-of-N timing, paper-style grid and table
// formatting, and one experiment function per table/figure (experiments.go).
// Both cmd/sortbench and the repository's testing.B benchmarks drive it.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// MedianTime runs f reps times and returns the median wall-clock duration,
// matching the paper's "repeat five times, report the median" protocol.
func MedianTime(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

// InterleavedRounds times competing functions with their repetitions
// interleaved instead of run as per-function blocks, so slow drift in
// background load biases every arm equally rather than whichever arm
// happened to run during a noisy stretch. The starting arm rotates each
// round, so every arm also follows every other arm equally often — a fixed
// round-robin order would hand whichever arm runs after the slowest one a
// systematic thermal/turbo penalty. It returns times[fn][round], so callers
// comparing arms can form per-round (paired) ratios, which cancel whatever
// drift remains within a round; use it for ablations whose verdict is a
// ratio between arms.
func InterleavedRounds(reps int, fns []func()) [][]time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([][]time.Duration, len(fns))
	for i := range times {
		times[i] = make([]time.Duration, reps)
	}
	for r := 0; r < reps; r++ {
		for k := range fns {
			i := (r + k) % len(fns)
			start := time.Now()
			fns[i]()
			times[i][r] = time.Since(start)
		}
	}
	return times
}

// MedianDuration returns the median of ts without reordering it.
func MedianDuration(ts []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ts...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// Table renders an aligned ASCII table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats base/x as the paper's relative runtime: values above 1 mean
// x is faster than the baseline.
func Ratio(base, x time.Duration) string {
	if x <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(base)/float64(x))
}

// Seconds formats a duration as seconds with millisecond resolution.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Count formats large counts with thousands separators.
func Count(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// Bytes formats a byte count in binary units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// MedianTimePrep is MedianTime for workloads that consume their input:
// prep builds a fresh input outside the timed section, run is timed.
func MedianTimePrep[T any](reps int, prep func() T, run func(T)) time.Duration {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		in := prep()
		start := time.Now()
		run(in)
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}
