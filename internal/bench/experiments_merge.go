package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("merge", "Ablation: merge phase — cascaded 2-way vs k-way loser tree vs offset-value coding",
		runMergeAblation)
}

// mergeWorkloads are the two merge-phase inputs: wide integer keys (a
// 20-byte normalized key, where offset-value coding skips the shared
// prefixes the cascade re-compares every level) and string keys (where the
// tie-break comparator rides along).
func mergeWorkloads(cfg Config) []struct {
	name string
	tbl  *vector.Table
	keys []core.SortColumn
} {
	return []struct {
		name string
		tbl  *vector.Table
		keys []core.SortColumn
	}{
		{
			name: "catalog_sales (integers, 4 keys)",
			tbl:  workload.CatalogSales(cfg.counterRows(), 10, cfg.seed()),
			keys: []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}},
		},
		{
			name: "customer (strings, 2 keys)",
			tbl:  workload.Customer(cfg.counterRows(), cfg.seed()),
			keys: []core.SortColumn{{Column: 4}, {Column: 5}},
		},
	}
}

// finalizeReady ingests tbl into a fresh sorter and stops right before
// Finalize, so the merge phase alone can be timed.
func finalizeReady(tbl *vector.Table, keys []core.SortColumn, opt core.Options) *core.Sorter {
	s, err := core.NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		panic(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			panic(err)
		}
	}
	if err := sink.Close(); err != nil {
		panic(err)
	}
	return s
}

// runMergeAblation times the merge phase in isolation (run generation done,
// Finalize timed) under the three algorithms, in memory over ~16 runs and
// then streaming from disk. Cascade is the baseline the single-pass loser
// tree replaces; the no-OVC arm isolates the tree shape from the coding.
func runMergeAblation(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	for _, wl := range mergeWorkloads(cfg) {
		rows := wl.tbl.NumRows()
		runSize := max(1, rows/16)

		t := &Table{
			Title: fmt.Sprintf("%s, %s rows, ~16 runs, in memory (threads=%d)",
				wl.name, Count(uint64(rows)), cfg.threads()),
			Header: []string{"merge", "time", "vs cascade", "compares", "ovc hits", "tie-breaks"},
		}
		var baseTime time.Duration
		for _, v := range []struct {
			name string
			algo core.MergeAlgo
		}{
			{"cascaded 2-way", core.MergeCascade},
			{"k-way loser tree", core.MergeLoserTreeNoOVC},
			{"k-way + OVC", core.MergeLoserTree},
		} {
			var last *core.Sorter
			d := MedianTimePrep(cfg.reps(), func() *core.Sorter {
				return finalizeReady(wl.tbl, wl.keys,
					core.Options{Threads: cfg.threads(), RunSize: runSize, Merge: v.algo,
						Telemetry: cfg.Telemetry})
			}, func(s *core.Sorter) {
				if err := s.Finalize(); err != nil {
					panic(err)
				}
				last = s
			})
			if v.algo == core.MergeCascade {
				baseTime = d
			}
			st := last.Stats().Merge
			if err := last.Close(); err != nil {
				return err
			}
			t.AddRow(v.name, Seconds(d), Ratio(baseTime, d),
				Count(st.Comparisons), Count(st.OVCHits), Count(st.TieBreaks))
		}
		t.Render(w)

		// External: the same runs spilled to disk. The cascade unspills and
		// re-spills intermediates (O(n log k) I/O); the streaming loser tree
		// reads each spilled byte once through fixed-size blocks.
		dir, err := os.MkdirTemp("", "rowsort-merge-bench-*")
		if err != nil {
			return err
		}
		te := &Table{
			Title: fmt.Sprintf("%s, %s rows, ~16 runs, streaming from disk",
				wl.name, Count(uint64(rows))),
			Header: []string{"merge", "time", "vs cascade", "spill written", "spill read"},
		}
		for _, v := range []struct {
			name string
			algo core.MergeAlgo
		}{
			{"cascaded 2-way (unspill/re-spill)", core.MergeCascade},
			{"k-way + OVC (single pass)", core.MergeLoserTree},
		} {
			var written, read int64
			d := MedianTimePrep(cfg.reps(), func() *core.Sorter {
				return finalizeReady(wl.tbl, wl.keys,
					core.Options{Threads: cfg.threads(), RunSize: runSize, Merge: v.algo, SpillDir: dir,
						Telemetry: cfg.Telemetry})
			}, func(s *core.Sorter) {
				if err := s.Finalize(); err != nil {
					panic(err)
				}
				st := s.Stats()
				written, read = st.SpillBytesWritten, st.SpillBytesRead
				if err := s.Close(); err != nil {
					panic(err)
				}
			})
			if v.algo == core.MergeCascade {
				baseTime = d
			}
			te.AddRow(v.name, Seconds(d), Ratio(baseTime, d),
				Count(uint64(written)), Count(uint64(read)))
		}
		te.Render(w)
		if err := os.RemoveAll(dir); err != nil {
			return err
		}

		if cfg.PhaseBreakdown && cfg.Telemetry != nil {
			emitPhaseBreakdown(w, wl.name, cfg.Telemetry.Summary())
		}
	}
	return nil
}
