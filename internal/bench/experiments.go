package bench

import (
	"fmt"
	"io"
	"time"

	"rowsort/internal/colsort"
	"rowsort/internal/perfmodel"
	"rowsort/internal/rowcmp"
	"rowsort/internal/sortalgo"
	"rowsort/internal/workload"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer, cfg Config) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// paperOrder lists the experiments in the order the paper presents them.
var paperOrder = []string{
	"table1", "compmodel", "fig2", "fig3", "table2", "fig4", "fig5", "table3",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"table4", "fig14",
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range paperOrder {
		if e, ok := ByID(id); ok {
			out = append(out, e)
		}
	}
	// Append anything not in the canonical list, keeping registration order.
	for _, e := range registry {
		if _, listed := ByID(e.ID); listed {
			found := false
			for _, id := range paperOrder {
				if id == e.ID {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every experiment in paper order.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range Registry() {
		fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// ratioCell measures two variants on the same input and returns the
// paper-style relative runtime t(baseline)/t(variant): above 1 means the
// variant is faster.
type ratioCell func(cfg Config, cols [][]uint32) (baseline, variant time.Duration)

// runGrid renders one relative-runtime grid per distribution: rows are key
// counts, columns are input sizes — the layout of Figures 2-6, 8 and 9.
func runGrid(w io.Writer, cfg Config, cell ratioCell) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	sizes := cfg.gridSizes()
	for _, dist := range workload.StandardDists() {
		t := &Table{Title: dist.String()}
		t.Header = append(t.Header, "keys\\rows")
		for _, n := range sizes {
			t.Header = append(t.Header, fmt.Sprintf("%d", n))
		}
		for _, keys := range cfg.gridKeys() {
			row := []string{fmt.Sprintf("%d", keys)}
			for _, n := range sizes {
				cols := dist.Generate(n, keys, cfg.seed())
				base, variant := cell(cfg, cols)
				row = append(row, Ratio(base, variant))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
	return nil
}

func init() {
	register("fig2", "Columnar: subsort vs tuple-at-a-time, introsort (std::sort analog)",
		func(w io.Writer, cfg Config) error {
			return runGrid(w, cfg, func(cfg Config, cols [][]uint32) (time.Duration, time.Duration) {
				base := MedianTime(cfg.reps(), func() { colsort.TupleAtATime(cols, sortalgo.AlgIntrosort) })
				sub := MedianTime(cfg.reps(), func() { colsort.Subsort(cols, sortalgo.AlgIntrosort) })
				return base, sub
			})
		})

	register("fig3", "Columnar: subsort vs tuple-at-a-time, stable sort (std::stable_sort analog)",
		func(w io.Writer, cfg Config) error {
			return runGrid(w, cfg, func(cfg Config, cols [][]uint32) (time.Duration, time.Duration) {
				base := MedianTime(cfg.reps(), func() { colsort.TupleAtATime(cols, sortalgo.AlgStable) })
				sub := MedianTime(cfg.reps(), func() { colsort.Subsort(cols, sortalgo.AlgStable) })
				return base, sub
			})
		})

	register("fig4", "Row vs columnar-subsort baseline, introsort",
		func(w io.Writer, cfg Config) error { return rowVsColumnar(w, cfg, sortalgo.AlgIntrosort) })

	register("fig5", "Row vs columnar-subsort baseline, stable sort",
		func(w io.Writer, cfg Config) error { return rowVsColumnar(w, cfg, sortalgo.AlgStable) })

	register("fig6", "Row format: dynamic vs static tuple-at-a-time comparator, introsort",
		func(w io.Writer, cfg Config) error {
			return runGrid(w, cfg, func(cfg Config, cols [][]uint32) (time.Duration, time.Duration) {
				numKeys := len(cols)
				static := MedianTimePrep(cfg.reps(),
					func() []rowcmp.Row { return rowcmp.BuildRows(cols) },
					func(rows []rowcmp.Row) { rowcmp.SortStatic(rows, numKeys, sortalgo.AlgIntrosort) })
				dynamic := MedianTimePrep(cfg.reps(),
					func() []rowcmp.Row { return rowcmp.BuildRows(cols) },
					func(rows []rowcmp.Row) { rowcmp.SortDynamic(rows, numKeys, sortalgo.AlgIntrosort) })
				return static, dynamic
			})
		})

	register("fig8", "Row format: dynamic normalized-key memcmp vs static tuple-at-a-time, introsort",
		func(w io.Writer, cfg Config) error {
			return runGrid(w, cfg, func(cfg Config, cols [][]uint32) (time.Duration, time.Duration) {
				numKeys := len(cols)
				static := MedianTimePrep(cfg.reps(),
					func() []rowcmp.Row { return rowcmp.BuildRows(cols) },
					func(rows []rowcmp.Row) { rowcmp.SortStatic(rows, numKeys, sortalgo.AlgIntrosort) })
				type enc struct {
					data       []byte
					rowW, keyW int
				}
				norm := MedianTimePrep(cfg.reps(),
					func() enc {
						d, rw, kw := rowcmp.EncodeNormalized(cols)
						return enc{d, rw, kw}
					},
					func(e enc) { rowcmp.SortNormalizedIntro(e.data, e.rowW, e.keyW) })
				return static, norm
			})
		})

	register("fig9", "Normalized keys: radix sort vs pdqsort with dynamic memcmp",
		func(w io.Writer, cfg Config) error {
			return runGrid(w, cfg, func(cfg Config, cols [][]uint32) (time.Duration, time.Duration) {
				type enc struct {
					data       []byte
					rowW, keyW int
				}
				prep := func() enc {
					d, rw, kw := rowcmp.EncodeNormalized(cols)
					return enc{d, rw, kw}
				}
				pdq := MedianTimePrep(cfg.reps(), prep,
					func(e enc) { rowcmp.SortNormalizedPdq(e.data, e.rowW, e.keyW) })
				rad := MedianTimePrep(cfg.reps(), prep,
					func(e enc) { rowcmp.SortNormalizedRadix(e.data, e.rowW, e.keyW) })
				return pdq, rad
			})
		})

	register("table2", "Simulated L1 misses and branch mispredictions: columnar T vs S",
		func(w io.Writer, cfg Config) error { return counterTable(w, cfg, false) })

	register("table3", "Simulated L1 misses and branch mispredictions: row T vs S",
		func(w io.Writer, cfg Config) error { return counterTable(w, cfg, true) })

	register("fig10", "Cumulative simulated counters: pdqsort (memcmp) vs radix sort",
		runFig10)
}

// rowVsColumnar renders Figures 4/5: the row-format tuple-at-a-time and
// subsort approaches relative to the columnar subsort baseline.
func rowVsColumnar(w io.Writer, cfg Config, alg sortalgo.Algorithm) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	sizes := cfg.gridSizes()
	for _, approach := range []string{"row tuple-at-a-time", "row subsort"} {
		fmt.Fprintf(w, "-- %s vs columnar subsort --\n", approach)
		for _, dist := range workload.StandardDists() {
			t := &Table{Title: dist.String()}
			t.Header = append(t.Header, "keys\\rows")
			for _, n := range sizes {
				t.Header = append(t.Header, fmt.Sprintf("%d", n))
			}
			for _, keys := range cfg.gridKeys() {
				row := []string{fmt.Sprintf("%d", keys)}
				for _, n := range sizes {
					cols := dist.Generate(n, keys, cfg.seed())
					base := MedianTime(cfg.reps(), func() { colsort.Subsort(cols, alg) })
					var variant time.Duration
					if approach == "row tuple-at-a-time" {
						variant = MedianTimePrep(cfg.reps(),
							func() []rowcmp.Row { return rowcmp.BuildRows(cols) },
							func(rows []rowcmp.Row) { rowcmp.SortStatic(rows, keys, alg) })
					} else {
						variant = MedianTimePrep(cfg.reps(),
							func() []rowcmp.Row { return rowcmp.BuildRows(cols) },
							func(rows []rowcmp.Row) { rowcmp.SortSubsort(rows, keys, alg) })
					}
					row = append(row, Ratio(base, variant))
				}
				t.AddRow(row...)
			}
			t.Render(w)
		}
	}
	return nil
}

// counterTable renders Tables II/III: simulated counters for the
// tuple-at-a-time and subsort approaches on one format.
func counterTable(w io.Writer, cfg Config, rowFormat bool) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	n := cfg.counterRows()
	cols := workload.Dist{Name: "Correlated0.50", P: 0.5}.Generate(n, 4, cfg.seed())
	format := "columnar (C)"
	tup := perfmodel.ColumnarTupleAtATime
	sub := perfmodel.ColumnarSubsort
	if rowFormat {
		format = "row (R)"
		tup = perfmodel.RowTupleAtATime
		sub = perfmodel.RowSubsort
	}
	t := &Table{
		Title:  fmt.Sprintf("%s format, %d rows, 4 key columns, Correlated0.50, introsort", format, n),
		Header: []string{"approach", "L1 misses", "L2 misses", "branch misses", "accesses", "branches"},
	}
	for _, a := range []struct {
		name string
		run  func([][]uint32) perfmodel.Counters
	}{{"tuple-at-a-time (T)", tup}, {"subsort (S)", sub}} {
		c := a.run(cols)
		t.AddRow(a.name, Count(c.CacheMisses), Count(c.L2Misses), Count(c.BranchMisses),
			Count(c.CacheAccesses), Count(c.Branches))
	}
	t.Render(w)
	return nil
}

func runFig10(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	n := cfg.counterRows()
	cols := workload.Dist{P: 0.5}.Generate(n, 4, cfg.seed())
	samples := cfg.fig10Samples()
	pdqSeries, pdqFinal := perfmodel.PdqsortNormalized(cols, samples)
	radSeries, radFinal := perfmodel.RadixNormalized(cols, samples)

	t := &Table{
		Title: fmt.Sprintf("Cumulative simulated counters, %d rows, 4 keys, Correlated0.50", n),
		Header: []string{"progress", "pdq L1 miss", "radix L1 miss",
			"pdq br miss", "radix br miss"},
	}
	steps := max(len(pdqSeries), len(radSeries))
	for i := 0; i < steps; i++ {
		pick := func(s []perfmodel.Counters) perfmodel.Counters {
			if len(s) == 0 {
				return perfmodel.Counters{}
			}
			j := i * len(s) / steps
			return s[j]
		}
		p, r := pick(pdqSeries), pick(radSeries)
		t.AddRow(fmt.Sprintf("%d/%d", i+1, steps),
			Count(p.CacheMisses), Count(r.CacheMisses),
			Count(p.BranchMisses), Count(r.BranchMisses))
	}
	t.AddRow("final", Count(pdqFinal.CacheMisses), Count(radFinal.CacheMisses),
		Count(pdqFinal.BranchMisses), Count(radFinal.BranchMisses))
	t.Render(w)
	return nil
}
