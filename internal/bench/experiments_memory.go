package bench

import (
	"fmt"
	"io"
	"time"

	"rowsort/internal/core"
	"rowsort/internal/mem"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func init() {
	register("memory", "Memory governance: budget sweep — adaptive spill cost vs unlimited",
		runMemoryAblation)
}

// memSortOnce runs one end-to-end sort under opt — ingest, finalize, then a
// streamed drain through Rows (so a budgeted sort never materializes the
// whole output) — and returns its wall time and stats.
func memSortOnce(tbl *vector.Table, keys []core.SortColumn, opt core.Options) (time.Duration, core.SortStats) {
	start := time.Now()
	s, err := core.NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		panic(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			panic(err)
		}
	}
	if err := sink.Close(); err != nil {
		panic(err)
	}
	if err := s.Finalize(); err != nil {
		panic(err)
	}
	it, err := s.Rows()
	if err != nil {
		panic(err)
	}
	rows := 0
	for {
		c, err := it.Next()
		if err != nil {
			panic(err)
		}
		if c == nil {
			break
		}
		rows += c.Len()
	}
	if err := it.Close(); err != nil {
		panic(err)
	}
	if rows != tbl.NumRows() {
		panic(fmt.Sprintf("bench: memory experiment produced %d of %d rows", rows, tbl.NumRows()))
	}
	d := time.Since(start)
	st := s.Stats()
	if err := s.Close(); err != nil {
		panic(err)
	}
	return d, st
}

// runMemoryAblation measures what a memory budget costs: the same sort at
// unlimited memory and at budgets of 1/2, 1/4 and 1/8 of the measured
// unlimited peak (or the single budget from Config.MemoryLimit). The
// budgeted arms cut runs early, shed resident runs to disk under pressure,
// and stream the final merge with budget-planned block size and fan-in;
// the table shows the wall-time price and the I/O it buys.
func runMemoryAblation(w io.Writer, cfg Config) error {
	if err := cfg.valid(); err != nil {
		return err
	}
	tbl := workload.CatalogSales(cfg.counterRows(), 10, cfg.seed())
	keys := []core.SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
	base := core.Options{Threads: cfg.threads(), RunSize: max(1, tbl.NumRows()/16),
		Telemetry: cfg.Telemetry}

	var unlimited core.SortStats
	baseTime := MedianTime(cfg.reps(), func() {
		_, unlimited = memSortOnce(tbl, keys, base)
	})

	budgets := []int64{
		unlimited.PeakResidentRunBytes / 2,
		unlimited.PeakResidentRunBytes / 4,
		unlimited.PeakResidentRunBytes / 8,
	}
	if cfg.MemoryLimit > 0 {
		budgets = []int64{cfg.MemoryLimit}
	}

	t := &Table{
		Title: fmt.Sprintf("catalog_sales, %s rows by 4 keys, streamed drain (threads=%d)",
			Count(uint64(tbl.NumRows())), cfg.threads()),
		Header: []string{"budget", "time", "vs unlimited", "peak resident",
			"spill written", "pressure spills", "pressure events"},
	}
	t.AddRow("unlimited", Seconds(baseTime), Ratio(baseTime, baseTime),
		Bytes(unlimited.PeakResidentRunBytes), Bytes(unlimited.SpillBytesWritten), "0", "0")

	for _, budget := range budgets {
		var st core.SortStats
		var leak int64
		d := MedianTime(cfg.reps(), func() {
			broker := mem.NewBroker("bench-memory", budget)
			opt := base
			opt.Broker = broker
			_, st = memSortOnce(tbl, keys, opt)
			leak = broker.Used()
		})
		if leak != 0 {
			return fmt.Errorf("bench: broker holds %d bytes after a closed budgeted sort", leak)
		}
		t.AddRow(Bytes(budget), Seconds(d), Ratio(baseTime, d),
			Bytes(st.PeakResidentRunBytes), Bytes(st.SpillBytesWritten),
			Count(uint64(st.PressureSpills)), Count(uint64(st.MemoryPressureEvents)))
	}
	t.Render(w)

	if cfg.PhaseBreakdown && cfg.Telemetry != nil {
		emitPhaseBreakdown(w, "memory governance", cfg.Telemetry.Summary())
	}
	return nil
}
