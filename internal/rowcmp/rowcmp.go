// Package rowcmp implements the row-format (NSM) micro-benchmark kernels of
// Sections IV-B, V and VI: sorting arrays of fixed-size key rows with
// static comparators (the compiled-engine analog), dynamic per-column
// comparator callbacks (the interpreted-engine overhead the paper
// measures), the subsort strategy applied to rows, and normalized keys
// compared with one dynamic bytes.Compare call.
package rowcmp

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"rowsort/internal/radix"
	"rowsort/internal/sortalgo"
)

// MaxKeys is the largest number of key columns in the micro-benchmarks.
const MaxKeys = 4

// Row is the micro-benchmark tuple: up to four uint32 key columns plus the
// row index used to retrieve the payload after sorting — the Go analog of
// the paper's generated OrderKey struct. Sorting []Row physically moves
// whole tuples, giving the row format its cache locality.
type Row struct {
	Keys [MaxKeys]uint32
	ID   uint32
}

// BuildRows converts columnar key data into an array of rows (the DSM to
// NSM conversion of the micro-benchmarks). len(cols) must be 1..MaxKeys.
func BuildRows(cols [][]uint32) []Row {
	if len(cols) == 0 || len(cols) > MaxKeys {
		panic(fmt.Sprintf("rowcmp: need 1..%d key columns, got %d", MaxKeys, len(cols)))
	}
	rows := make([]Row, len(cols[0]))
	for c, col := range cols {
		for i, v := range col {
			rows[i].Keys[c] = v
		}
	}
	for i := range rows {
		rows[i].ID = uint32(i)
	}
	return rows
}

// Static comparators: one concrete function per key count, selected once
// before sorting. Each instantiation of the generic sort with one of these
// is specialized code with an inlinable comparator — the analog of a
// compiling query engine generating a comparison function for the query.

//rowsort:pure
func less1(a, b Row) bool { return a.Keys[0] < b.Keys[0] }

//rowsort:pure
func less2(a, b Row) bool {
	if a.Keys[0] != b.Keys[0] {
		return a.Keys[0] < b.Keys[0]
	}
	return a.Keys[1] < b.Keys[1]
}

//rowsort:pure
func less3(a, b Row) bool {
	if a.Keys[0] != b.Keys[0] {
		return a.Keys[0] < b.Keys[0]
	}
	if a.Keys[1] != b.Keys[1] {
		return a.Keys[1] < b.Keys[1]
	}
	return a.Keys[2] < b.Keys[2]
}

//rowsort:pure
func less4(a, b Row) bool {
	if a.Keys[0] != b.Keys[0] {
		return a.Keys[0] < b.Keys[0]
	}
	if a.Keys[1] != b.Keys[1] {
		return a.Keys[1] < b.Keys[1]
	}
	if a.Keys[2] != b.Keys[2] {
		return a.Keys[2] < b.Keys[2]
	}
	return a.Keys[3] < b.Keys[3]
}

// StaticLess returns the statically compiled comparator for numKeys key
// columns.
func StaticLess(numKeys int) sortalgo.LessFunc[Row] {
	switch numKeys {
	case 1:
		return less1
	case 2:
		return less2
	case 3:
		return less3
	case 4:
		return less4
	default:
		panic(fmt.Sprintf("rowcmp: numKeys must be 1..%d, got %d", MaxKeys, numKeys))
	}
}

// SortStatic sorts rows on their first numKeys keys with a statically
// compiled tuple-at-a-time comparator.
func SortStatic(rows []Row, numKeys int, alg sortalgo.Algorithm) {
	sortalgo.SortSlice(alg, rows, StaticLess(numKeys))
}

// ColumnCompare compares one key column of two rows; used as the dynamic
// per-column callback.
type ColumnCompare func(a, b Row) int

// DynamicComparator builds the interpreted-engine comparator: a loop over
// per-column compare callbacks, each invoked through a function pointer on
// every comparison. This is the function-call overhead Figure 6 measures.
//
//rowsort:pure
func DynamicComparator(numKeys int) sortalgo.LessFunc[Row] {
	if numKeys < 1 || numKeys > MaxKeys {
		panic(fmt.Sprintf("rowcmp: numKeys must be 1..%d, got %d", MaxKeys, numKeys))
	}
	cmps := make([]ColumnCompare, numKeys)
	for c := 0; c < numKeys; c++ {
		c := c
		cmps[c] = func(a, b Row) int {
			va, vb := a.Keys[c], b.Keys[c]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			default:
				return 0
			}
		}
	}
	return func(a, b Row) bool {
		for _, cmp := range cmps {
			if r := cmp(a, b); r != 0 {
				return r < 0
			}
		}
		return false
	}
}

// SortDynamic sorts rows with the dynamic per-column callback comparator.
func SortDynamic(rows []Row, numKeys int, alg sortalgo.Algorithm) {
	sortalgo.SortSlice(alg, rows, DynamicComparator(numKeys))
}

// SortSubsort applies the subsort strategy to rows: sort everything by key
// column 0 with a single-column comparator, then sort each run of ties by
// column 1, and so on. Unlike the columnar variant it physically moves rows.
func SortSubsort(rows []Row, numKeys int, alg sortalgo.Algorithm) {
	if numKeys < 1 || numKeys > MaxKeys {
		panic(fmt.Sprintf("rowcmp: numKeys must be 1..%d, got %d", MaxKeys, numKeys))
	}
	subsortRows(rows, 0, numKeys, alg)
}

func subsortRows(rows []Row, c, numKeys int, alg sortalgo.Algorithm) {
	sortalgo.SortSlice(alg, rows, func(a, b Row) bool { return a.Keys[c] < b.Keys[c] })
	if c+1 == numKeys {
		return
	}
	runStart := 0
	for i := 1; i <= len(rows); i++ {
		if i == len(rows) || rows[i].Keys[c] != rows[runStart].Keys[c] {
			if i-runStart > 1 {
				subsortRows(rows[runStart:i], c+1, numKeys, alg)
			}
			runStart = i
		}
	}
}

// NormalizedRowWidth returns the byte width of a normalized micro-benchmark
// key row: numKeys big-endian uint32 keys plus a 4-byte row id, padded to
// 8-byte alignment as in the paper's row formats.
func NormalizedRowWidth(numKeys int) (rowWidth, keyWidth int) {
	keyWidth = numKeys * 4
	rowWidth = (keyWidth + 4 + 7) &^ 7
	return rowWidth, keyWidth
}

// EncodeNormalized builds normalized key rows from columnar key data: each
// row is the big-endian concatenation of its key values (order-preserving
// for uint32) followed by the row id. The result can be compared with
// bytes.Compare or sorted with radix sort.
//
//rowsort:keyencoder
func EncodeNormalized(cols [][]uint32) (data []byte, rowWidth, keyWidth int) {
	if len(cols) == 0 || len(cols) > MaxKeys {
		panic(fmt.Sprintf("rowcmp: need 1..%d key columns, got %d", MaxKeys, len(cols)))
	}
	n := len(cols[0])
	rowWidth, keyWidth = NormalizedRowWidth(len(cols))
	data = make([]byte, n*rowWidth)
	// One column at a time: the vectorized conversion pattern.
	for c, col := range cols {
		off := c * 4
		for i, v := range col {
			binary.BigEndian.PutUint32(data[i*rowWidth+off:], v)
		}
	}
	for i := 0; i < n; i++ {
		//rowsort:allow keyorder row ids are generated non-negative and sit outside the compared key prefix
		binary.BigEndian.PutUint32(data[i*rowWidth+keyWidth:], uint32(i))
	}
	return data, rowWidth, keyWidth
}

// SortNormalizedPdq sorts normalized key rows with pdqsort using a dynamic
// bytes.Compare on the key prefix — the Figure 8/9 configuration for
// comparison sorting in an interpreted engine.
func SortNormalizedPdq(data []byte, rowWidth, keyWidth int) {
	r := sortalgo.NewRows(data, rowWidth)
	r.Compare = func(a, b []byte) int { return dynamicMemcmp(a[:keyWidth], b[:keyWidth]) }
	r.Pdqsort()
}

// SortNormalizedRadix sorts normalized key rows with the paper's radix sort
// (LSD or MSD selected by key width); it performs no comparisons at all.
func SortNormalizedRadix(data []byte, rowWidth, keyWidth int) radix.Stats {
	return radix.Sort(data, rowWidth, keyWidth)
}

// dynamicMemcmp is the runtime-optimized bytes.Compare behind a
// non-inlinable call, modeling a memcmp invoked dynamically with a size
// parameter known only at run time (the interpreted engine's situation).
//
//rowsort:pure
//go:noinline
func dynamicMemcmp(a, b []byte) int { return bytes.Compare(a, b) }

// SortNormalizedIntro sorts normalized key rows with introsort (the
// std::sort analog) using a dynamic bytes.Compare on the key prefix — the
// Figure 8 configuration.
func SortNormalizedIntro(data []byte, rowWidth, keyWidth int) {
	r := sortalgo.NewRows(data, rowWidth)
	r.Compare = func(a, b []byte) int { return dynamicMemcmp(a[:keyWidth], b[:keyWidth]) }
	r.Introsort()
}

// SortNormalizedTruncated sorts normalized key rows comparing only the
// first truncWidth bytes of the key and, when the truncated prefixes tie,
// falling back to the original key columns through the row id — the
// micro-benchmark analog of the sorter's adaptive prefix truncation: a
// shorter memcmp decides almost every comparison and the semantic
// tie-break restores the exact order. cols must be the columns the rows
// were encoded from. truncWidth must be in (0, keyWidth]; a multiple of 4
// truncates at a column boundary, anything else mid-column (the partially
// covered column is re-compared in full by the fallback).
func SortNormalizedTruncated(data []byte, rowWidth, keyWidth, truncWidth int, cols [][]uint32) {
	if truncWidth <= 0 || truncWidth > keyWidth {
		panic(fmt.Sprintf("rowcmp: truncWidth must be in (0, %d], got %d", keyWidth, truncWidth))
	}
	// Columns wholly inside the truncated prefix are decided by the memcmp;
	// the tie-break resumes at the first column it may have cut short.
	firstTied := truncWidth / 4
	r := sortalgo.NewRows(data, rowWidth)
	r.Compare = func(a, b []byte) int {
		if c := dynamicMemcmp(a[:truncWidth], b[:truncWidth]); c != 0 {
			return c
		}
		ia := binary.BigEndian.Uint32(a[keyWidth:])
		ib := binary.BigEndian.Uint32(b[keyWidth:])
		for c := firstTied; c < len(cols); c++ {
			va, vb := cols[c][ia], cols[c][ib]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
		}
		return 0
	}
	r.Pdqsort()
}
