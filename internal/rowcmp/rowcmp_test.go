package rowcmp

import (
	"encoding/binary"
	"sort"
	"testing"

	"rowsort/internal/sortalgo"
	"rowsort/internal/workload"
)

// sortedTuples returns the key tuples of cols in lexicographic order — the
// shared oracle for every sorting approach in this package.
func sortedTuples(cols [][]uint32) [][]uint32 {
	n := len(cols[0])
	out := make([][]uint32, n)
	for i := range out {
		t := make([]uint32, len(cols))
		for c := range cols {
			t[c] = cols[c][i]
		}
		out[i] = t
	}
	sort.Slice(out, func(a, b int) bool {
		for c := range out[a] {
			if out[a][c] != out[b][c] {
				return out[a][c] < out[b][c]
			}
		}
		return false
	})
	return out
}

func checkRows(t *testing.T, rows []Row, cols [][]uint32, ctx string) {
	t.Helper()
	want := sortedTuples(cols)
	for i, w := range want {
		for c := range w {
			if rows[i].Keys[c] != w[c] {
				t.Fatalf("%s: row %d key %d = %d, want %d", ctx, i, c, rows[i].Keys[c], w[c])
			}
		}
	}
}

func TestBuildRows(t *testing.T) {
	cols := [][]uint32{{10, 20}, {30, 40}}
	rows := BuildRows(cols)
	if len(rows) != 2 || rows[0].Keys[0] != 10 || rows[1].Keys[1] != 40 {
		t.Fatalf("BuildRows wrong: %+v", rows)
	}
	if rows[0].ID != 0 || rows[1].ID != 1 {
		t.Fatal("row ids wrong")
	}
}

func TestBuildRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildRows(nil)
}

func TestAllApproachesMatchOracle(t *testing.T) {
	approaches := map[string]func([]Row, int, sortalgo.Algorithm){
		"static":  SortStatic,
		"dynamic": SortDynamic,
		"subsort": SortSubsort,
	}
	algs := []sortalgo.Algorithm{sortalgo.AlgIntrosort, sortalgo.AlgStable, sortalgo.AlgPdq}
	for _, dist := range workload.StandardDists() {
		for numKeys := 1; numKeys <= 4; numKeys++ {
			cols := dist.Generate(2500, numKeys, 61)
			for name, approach := range approaches {
				for _, alg := range algs {
					rows := BuildRows(cols)
					approach(rows, numKeys, alg)
					checkRows(t, rows, cols, name+"/"+alg.String()+"/"+dist.String())
				}
			}
		}
	}
}

func TestStaticAndDynamicComparatorsAgree(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(500, 4, 62)
	rows := BuildRows(cols)
	for numKeys := 1; numKeys <= 4; numKeys++ {
		st := StaticLess(numKeys)
		dy := DynamicComparator(numKeys)
		for i := 0; i < 500; i += 7 {
			for j := 0; j < 500; j += 11 {
				if st(rows[i], rows[j]) != dy(rows[i], rows[j]) {
					t.Fatalf("comparators disagree at (%d,%d) keys=%d", i, j, numKeys)
				}
			}
		}
	}
}

func TestComparatorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { StaticLess(0) },
		func() { StaticLess(5) },
		func() { DynamicComparator(0) },
		func() { SortSubsort(nil, 9, sortalgo.AlgPdq) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalizedRowWidth(t *testing.T) {
	cases := []struct{ keys, rowW, keyW int }{
		{1, 8, 4}, {2, 16, 8}, {3, 16, 12}, {4, 24, 16},
	}
	for _, c := range cases {
		rw, kw := NormalizedRowWidth(c.keys)
		if rw != c.rowW || kw != c.keyW {
			t.Fatalf("keys=%d: got (%d,%d), want (%d,%d)", c.keys, rw, kw, c.rowW, c.keyW)
		}
	}
}

func TestNormalizedSortsMatchOracle(t *testing.T) {
	for _, dist := range workload.StandardDists() {
		for numKeys := 1; numKeys <= 4; numKeys++ {
			cols := dist.Generate(3000, numKeys, 63)

			pdq, rowW, keyW := EncodeNormalized(cols)
			SortNormalizedPdq(pdq, rowW, keyW)

			rad, _, _ := EncodeNormalized(cols)
			SortNormalizedRadix(rad, rowW, keyW)

			want := sortedTuples(cols)
			for i, w := range want {
				for c := range w {
					pv := binary.BigEndian.Uint32(pdq[i*rowW+c*4:])
					rv := binary.BigEndian.Uint32(rad[i*rowW+c*4:])
					if pv != w[c] {
						t.Fatalf("%s keys=%d: pdq row %d col %d = %d, want %d", dist, numKeys, i, c, pv, w[c])
					}
					if rv != w[c] {
						t.Fatalf("%s keys=%d: radix row %d col %d = %d, want %d", dist, numKeys, i, c, rv, w[c])
					}
				}
			}
		}
	}
}

func TestNormalizedRowCarriesID(t *testing.T) {
	cols := [][]uint32{{3, 1, 2}}
	data, rowW, keyW := EncodeNormalized(cols)
	SortNormalizedRadix(data, rowW, keyW)
	// Sorted values 1,2,3 came from original rows 1,2,0.
	wantIDs := []uint32{1, 2, 0}
	for i, w := range wantIDs {
		if got := binary.BigEndian.Uint32(data[i*rowW+keyW:]); got != w {
			t.Fatalf("row %d id = %d, want %d", i, got, w)
		}
	}
}

func TestEncodeNormalizedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeNormalized(make([][]uint32, 5))
}

func TestSortNormalizedTruncatedMatchesOracle(t *testing.T) {
	for _, dist := range workload.StandardDists() {
		for numKeys := 2; numKeys <= 4; numKeys++ {
			cols := dist.Generate(3000, numKeys, 65)
			// Tie-heavy prefix: clamp the leading column to a tiny domain so
			// the truncated memcmp actually collides.
			for i := range cols[0] {
				cols[0][i] %= 7
			}
			_, keyW := NormalizedRowWidth(numKeys)
			// Column-aligned and mid-column truncation widths.
			for _, truncW := range []int{4, 6, keyW - 1} {
				data, rowW, _ := EncodeNormalized(cols)
				SortNormalizedTruncated(data, rowW, keyW, truncW, cols)
				want := sortedTuples(cols)
				for i, w := range want {
					for c := range w {
						if got := binary.BigEndian.Uint32(data[i*rowW+c*4:]); got != w[c] {
							t.Fatalf("%s keys=%d truncW=%d: row %d col %d = %d, want %d",
								dist, numKeys, truncW, i, c, got, w[c])
						}
					}
				}
			}
		}
	}
}

func TestSortNormalizedTruncatedPanics(t *testing.T) {
	cols := [][]uint32{{3, 1, 2}}
	data, rowW, keyW := EncodeNormalized(cols)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortNormalizedTruncated(data, rowW, keyW, keyW+1, cols)
}
