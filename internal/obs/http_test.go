package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// serveReg spins up the registry's handler and returns a GET helper.
func serveReg(t *testing.T, g *Registry) func(path string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp, string(body)
	}
}

func TestHTTPIndex(t *testing.T) {
	g := NewRegistry(0)
	get := serveReg(t, g)

	resp, body := get("/debug/rowsort/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "No runs registered yet") {
		t.Fatalf("empty index missing placeholder:\n%s", body)
	}

	h := g.Register(RunOptions{Label: "idx-sort", Fingerprint: "threads=2"})
	_, body = get("/debug/rowsort/")
	for _, want := range []string{"idx-sort", h.ID(), ">live<"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}

	// Unknown subpaths under the index prefix are 404, not the index.
	resp, _ = get("/debug/rowsort/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown subpath status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPRunSnapshot(t *testing.T) {
	g := NewRegistry(0)
	get := serveReg(t, g)

	resp, _ := get("/debug/rowsort/run?id=run-99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run status = %d, want 404", resp.StatusCode)
	}

	p := &Progress{}
	h := g.Register(RunOptions{Label: "json-sort", Progress: p})
	p.AdvanceTo(StageRunGen)
	p.RowsIngested.Store(42)

	resp, body := get("/debug/rowsort/run?id=" + h.ID())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("run content type = %q", ct)
	}
	var snap RunSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("run body is not a RunSnapshot: %v\n%s", err, body)
	}
	if snap.ID != h.ID() || snap.Counters.RowsIngested != 42 || snap.Stage != "run-generation" {
		t.Fatalf("snapshot off: %+v", snap)
	}
}

func TestHTTPTraceGatedOnCompletion(t *testing.T) {
	g := NewRegistry(0)
	get := serveReg(t, g)

	resp, _ := get("/debug/rowsort/trace?id=run-99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run trace status = %d, want 404", resp.StatusCode)
	}

	noTrace := g.Register(RunOptions{})
	resp, _ = get("/debug/rowsort/trace?id=" + noTrace.ID())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recorder-less run trace status = %d, want 404", resp.StatusCode)
	}

	rec := NewRecorder()
	sp := rec.Worker("w").Begin(PhaseMerge)
	sp.End()
	h := g.Register(RunOptions{Recorder: rec})

	// WriteTrace reads unsynchronized span buffers: live runs must be
	// refused, not raced.
	resp, _ = get("/debug/rowsort/trace?id=" + h.ID())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("live run trace status = %d, want 409", resp.StatusCode)
	}

	h.Done()
	resp, body := get("/debug/rowsort/trace?id=" + h.ID())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("done run trace status = %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, h.ID()+"-trace.json") {
		t.Fatalf("trace disposition = %q", cd)
	}
	if !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"merge"`) {
		t.Fatalf("trace body missing events:\n%s", body)
	}
}

func TestHTTPMetricsValidate(t *testing.T) {
	g := NewRegistry(0)
	get := serveReg(t, g)

	p := &Progress{}
	rec := NewRecorder()
	rec.Worker("w").Begin(PhaseSort).End()
	live := g.Register(RunOptions{Label: "live-run", Progress: p, Recorder: rec,
		MemUsed: func() int64 { return 7 }, MemLimit: 1024})
	p.AdvanceTo(StageRunGen)
	p.RowsIngested.Store(5)
	finished := g.Register(RunOptions{Label: "done-run"})
	finished.Done()
	planned := g.Register(RunOptions{Label: "planned-run", Strategy: func() []StrategyDecision {
		return []StrategyDecision{
			{Run: 0, Rows: 10, Algo: "lsd-radix"},
			{Run: 1, Rows: 10, Algo: "pdqsort"},
			{Run: 2, Rows: 10, Algo: "lsd-radix"},
		}
	}})

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	if err := ValidatePrometheus([]byte(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"rowsort_runs_live 2",
		"rowsort_runs_retained 3",
		`rowsort_run_rows_ingested_total{run="` + live.ID() + `",label="live-run"} 5`,
		`rowsort_run_done{run="` + finished.ID() + `",label="done-run"} 1`,
		`rowsort_run_mem_used_bytes{run="` + live.ID() + `",label="live-run"} 7`,
		`rowsort_run_phase_busy_seconds{run="` + live.ID() + `",label="live-run",phase="sort"}`,
		`rowsort_run_strategy_runs_total{run="` + planned.ID() + `",label="planned-run",algo="lsd-radix"} 2`,
		`rowsort_run_strategy_runs_total{run="` + planned.ID() + `",label="planned-run",algo="pdqsort"} 1`,
		"# HELP rowsort_run_progress_ratio",
		"# TYPE rowsort_run_progress_ratio gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
