package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter builds Prometheus text exposition (version 0.0.4): every metric
// family gets its # HELP and # TYPE lines exactly once, immediately followed
// by its samples. All rowsort expositions go through it so metadata can't be
// forgotten and label escaping is uniform.
type PromWriter struct {
	b   strings.Builder
	cur string // family currently open, for the contiguity invariant
}

// Family opens a new metric family, emitting its metadata lines. typ is
// "counter" or "gauge".
func (pw *PromWriter) Family(name, typ, help string) {
	pw.cur = name
	fmt.Fprintf(&pw.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&pw.b, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample of the open family. labels alternate name, value
// ("phase", "merge", "run", "run-3"); label values are escaped per the text
// format.
func (pw *PromWriter) Sample(labels []string, v float64) {
	pw.b.WriteString(pw.cur)
	if len(labels) > 0 {
		pw.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				pw.b.WriteByte(',')
			}
			pw.b.WriteString(labels[i])
			pw.b.WriteString(`="`)
			pw.b.WriteString(escapeLabel(labels[i+1]))
			pw.b.WriteByte('"')
		}
		pw.b.WriteByte('}')
	}
	fmt.Fprintf(&pw.b, " %g\n", v)
}

// SampleInt emits one integer-valued sample (rendered without an exponent,
// matching the historical %d output for counts).
func (pw *PromWriter) SampleInt(labels []string, v int64) {
	pw.b.WriteString(pw.cur)
	if len(labels) > 0 {
		pw.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				pw.b.WriteByte(',')
			}
			pw.b.WriteString(labels[i])
			pw.b.WriteString(`="`)
			pw.b.WriteString(escapeLabel(labels[i+1]))
			pw.b.WriteByte('"')
		}
		pw.b.WriteByte('}')
	}
	fmt.Fprintf(&pw.b, " %d\n", v)
}

// Flush writes the accumulated exposition to w. (Not named WriteTo: the
// io.WriterTo signature returns the byte count, which no caller here
// wants, and go vet rightly objects to a lookalike.)
func (pw *PromWriter) Flush(w io.Writer) error {
	_, err := io.WriteString(w, pw.b.String())
	return err
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ValidatePrometheus parses data as Prometheus text exposition format and
// reports the first violation of the conventions the rowsort expositions
// promise: every sample's family declared with # HELP and # TYPE lines
// before its first sample, family blocks contiguous, metric and label names
// well-formed, label values properly quoted/escaped, sample values parseable
// floats, and every rowsort family carrying the rowsort_ prefix. Tests use
// it as a parse-check against all /metrics and -metrics outputs.
func ValidatePrometheus(data []byte) error {
	type family struct {
		help, typ bool
		closed    bool // a later family started; more samples are a violation
	}
	families := map[string]*family{}
	var open string // family whose block is currently being emitted
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			if i != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside exposition", ln)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest, kind := "", ""
			switch {
			case strings.HasPrefix(line, "# HELP "):
				rest, kind = line[len("# HELP "):], "help"
			case strings.HasPrefix(line, "# TYPE "):
				rest, kind = line[len("# TYPE "):], "type"
			default:
				continue // free-form comment
			}
			name, arg, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in # %s", ln, name, strings.ToUpper(kind))
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			if kind == "help" {
				if f.help {
					return fmt.Errorf("line %d: duplicate # HELP for %s", ln, name)
				}
				f.help = true
			} else {
				if f.typ {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", ln, name)
				}
				switch arg {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid # TYPE %q for %s", ln, arg, name)
				}
				f.typ = true
			}
			if open != "" && open != name {
				families[open].closed = true
			}
			open = name
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		_ = labels
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", ln, name)
		}
		if strings.HasPrefix(name, "rowsort") && !strings.HasPrefix(name, "rowsort_") {
			return fmt.Errorf("line %d: metric %q missing rowsort_ prefix", ln, name)
		}
		f := families[name]
		if f == nil || !f.help || !f.typ {
			return fmt.Errorf("line %d: sample for %s before its # HELP/# TYPE metadata", ln, name)
		}
		if f.closed {
			return fmt.Errorf("line %d: sample for %s outside its contiguous family block", ln, name)
		}
		if open != "" && open != name {
			families[open].closed = true
		}
		open = name
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: invalid sample value %q: %v", ln, value, err)
		}
	}
	return nil
}

// parsePromSample splits "name{l1=\"v\",l2=\"v\"} value" into its parts,
// validating label syntax and escape sequences.
func parsePromSample(line string) (name string, labels map[string]string, value string, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if name == "" {
		return "", nil, "", fmt.Errorf("missing metric name")
	}
	labels = map[string]string{}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && isNameChar(line[j], j == i) {
				j++
			}
			lname := line[i:j]
			if lname == "" || j >= len(line) || line[j] != '=' {
				return "", nil, "", fmt.Errorf("malformed label name at byte %d", i)
			}
			j++ // '='
			if j >= len(line) || line[j] != '"' {
				return "", nil, "", fmt.Errorf("label value for %s not quoted", lname)
			}
			j++
			var val strings.Builder
			for {
				if j >= len(line) {
					return "", nil, "", fmt.Errorf("unterminated label value for %s", lname)
				}
				c := line[j]
				if c == '"' {
					j++
					break
				}
				if c == '\\' {
					if j+1 >= len(line) {
						return "", nil, "", fmt.Errorf("dangling escape in label value for %s", lname)
					}
					switch line[j+1] {
					case '\\', '"':
						val.WriteByte(line[j+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in label value for %s", line[j+1], lname)
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			if _, dup := labels[lname]; dup {
				return "", nil, "", fmt.Errorf("duplicate label %s", lname)
			}
			labels[lname] = val.String()
			if j < len(line) && line[j] == ',' {
				j++
			}
			i = j
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return "", nil, "", fmt.Errorf("missing space before sample value")
	}
	value = line[i+1:]
	if value == "" || strings.ContainsAny(value, " \t") {
		// A trailing timestamp would show up as a second field; the rowsort
		// expositions never emit one.
		return "", nil, "", fmt.Errorf("malformed sample value %q", value)
	}
	return name, labels, value, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
