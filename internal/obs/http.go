package obs

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"time"
)

// Handler returns the registry's embeddable HTTP surface:
//
//	/debug/rowsort/          HTML index of live + recent runs, with a
//	                         per-phase waterfall per run
//	/debug/rowsort/run       ?id=run-N JSON RunSnapshot
//	/debug/rowsort/trace     ?id=run-N Chrome trace_event download
//	                         (409 while the run is still in flight:
//	                         WriteTrace reads unsynchronized span buffers)
//	/metrics                 Prometheus text exposition, per-run labels
//
// Mount it at the server root (the paths are absolute):
//
//	mux := http.NewServeMux()
//	mux.Handle("/", reg.Handler())
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/rowsort/", g.serveIndex)
	mux.HandleFunc("/debug/rowsort/run", g.serveRun)
	mux.HandleFunc("/debug/rowsort/trace", g.serveTrace)
	mux.HandleFunc("/metrics", g.serveMetrics)
	return mux
}

func (g *Registry) serveRun(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	snap, ok := g.Snapshot(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown run %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		// Too late for an error status; the connection is likely gone.
		return
	}
}

func (g *Registry) serveTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	ri := g.run(id)
	if ri == nil {
		http.Error(w, fmt.Sprintf("unknown run %q", id), http.StatusNotFound)
		return
	}
	if ri.opt.Recorder == nil {
		http.Error(w, fmt.Sprintf("run %q has no trace recorder", id), http.StatusNotFound)
		return
	}
	if !ri.done.Load() {
		// WriteTrace reads the per-worker span buffers without
		// synchronization; it is only safe once the run's work has
		// finished.
		http.Error(w, fmt.Sprintf("run %q is still in flight; retry after it completes", id), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+"-trace.json"))
	if err := ri.opt.Recorder.WriteTrace(w); err != nil {
		return
	}
}

func (g *Registry) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.WritePrometheus(w); err != nil {
		return
	}
}

// WritePrometheus writes the registry-wide Prometheus exposition: registry
// gauges plus every retained run's progress counters, memory gauges, and
// overall fraction/ETA, each labeled with its run id. On a nil registry it
// writes nothing.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	snaps := g.Snapshots()
	live := 0
	for _, s := range snaps {
		if !s.Done {
			live++
		}
	}
	var pw PromWriter
	pw.Family("rowsort_runs_live", "gauge", "Registered sort runs currently in flight.")
	pw.SampleInt(nil, int64(live))
	pw.Family("rowsort_runs_retained", "gauge", "Sort runs retained in the registry (live + recent).")
	pw.SampleInt(nil, int64(len(snaps)))

	runLbl := func(s RunSnapshot) []string { return []string{"run", s.ID, "label", s.Label} }
	intFamily := func(name, typ, help string, get func(RunSnapshot) int64) {
		pw.Family(name, typ, help)
		for _, s := range snaps {
			pw.SampleInt(runLbl(s), get(s))
		}
	}
	floatFamily := func(name, typ, help string, get func(RunSnapshot) float64) {
		pw.Family(name, typ, help)
		for _, s := range snaps {
			pw.Sample(runLbl(s), get(s))
		}
	}

	intFamily("rowsort_run_done", "gauge", "1 when the run has completed, 0 while in flight.",
		func(s RunSnapshot) int64 {
			if s.Done {
				return 1
			}
			return 0
		})
	floatFamily("rowsort_run_elapsed_seconds", "gauge", "Run wall time so far (total runtime once done).",
		func(s RunSnapshot) float64 { return s.Elapsed.Seconds() })
	intFamily("rowsort_run_rows_expected", "gauge", "Declared input rows (0 when unknown).",
		func(s RunSnapshot) int64 { return s.Counters.RowsExpected })
	intFamily("rowsort_run_rows_ingested_total", "counter", "Rows converted into pending runs.",
		func(s RunSnapshot) int64 { return s.Counters.RowsIngested })
	intFamily("rowsort_run_rows_sorted_total", "counter", "Rows that left run generation inside a sorted run.",
		func(s RunSnapshot) int64 { return s.Counters.RowsSorted })
	intFamily("rowsort_run_runs_generated_total", "counter", "Thread-local sorted runs cut.",
		func(s RunSnapshot) int64 { return s.Counters.RunsGenerated })
	intFamily("rowsort_run_spill_written_bytes_total", "counter", "Bytes written to spill files.",
		func(s RunSnapshot) int64 { return s.Counters.SpillBytesWritten })
	intFamily("rowsort_run_spill_read_bytes_total", "counter", "Bytes read back from spill files.",
		func(s RunSnapshot) int64 { return s.Counters.SpillBytesRead })
	intFamily("rowsort_run_rows_merged_total", "counter", "Rows emitted by merges, including intermediate passes.",
		func(s RunSnapshot) int64 { return s.Counters.RowsMerged })
	intFamily("rowsort_run_merge_passes_total", "counter", "Completed intermediate fan-in-reducing merge passes.",
		func(s RunSnapshot) int64 { return s.Counters.MergePasses })
	intFamily("rowsort_run_rows_gathered_total", "counter", "Rows materialized back into columnar chunks.",
		func(s RunSnapshot) int64 { return s.Counters.RowsGathered })
	intFamily("rowsort_run_prefetched_blocks_total", "counter", "Spill blocks decoded ahead by the read-ahead goroutines.",
		func(s RunSnapshot) int64 { return s.Counters.PrefetchedBlocks })
	intFamily("rowsort_run_prefetch_hits_total", "counter", "Merge block requests served from the prefetch buffer.",
		func(s RunSnapshot) int64 { return s.Counters.PrefetchHits })
	intFamily("rowsort_run_pressure_spills_total", "counter", "Resident runs shed to disk under memory pressure.",
		func(s RunSnapshot) int64 { return s.Counters.PressureSpills })
	intFamily("rowsort_run_mem_used_bytes", "gauge", "Memory-broker bytes currently reserved by the run.",
		func(s RunSnapshot) int64 { return s.Mem.UsedBytes })
	intFamily("rowsort_run_mem_peak_bytes", "gauge", "Memory-broker peak reservation over the run's life.",
		func(s RunSnapshot) int64 { return s.Mem.PeakBytes })
	intFamily("rowsort_run_mem_limit_bytes", "gauge", "Configured memory budget (0 = unlimited).",
		func(s RunSnapshot) int64 { return s.Mem.LimitBytes })
	intFamily("rowsort_run_mem_pressure_events_total", "counter", "Broker pressure callbacks observed by the run.",
		func(s RunSnapshot) int64 { return s.Mem.PressureEvents })
	floatFamily("rowsort_run_progress_ratio", "gauge", "Weighted overall completion estimate in [0, 1].",
		func(s RunSnapshot) float64 { return s.Fraction })
	pw.Family("rowsort_run_eta_seconds", "gauge", "Estimated remaining seconds; absent while unknown.")
	for _, s := range snaps {
		if s.ETA >= 0 {
			pw.Sample(runLbl(s), s.ETA.Seconds())
		}
	}

	// Per-run strategy decisions: sorted runs generated, broken down by the
	// run-generation sort the planner executed. Only runs with a planner
	// carry decisions, so the family is absent for unplanned sorts.
	hasStrategy := false
	for _, s := range snaps {
		if len(s.Strategy) > 0 {
			hasStrategy = true
			break
		}
	}
	if hasStrategy {
		pw.Family("rowsort_run_strategy_runs_total", "counter",
			"Sorted runs generated, by chosen run-generation algorithm.")
		for _, s := range snaps {
			if len(s.Strategy) == 0 {
				continue
			}
			byAlgo := map[string]int64{}
			for _, d := range s.Strategy {
				byAlgo[d.Algo]++
			}
			algos := make([]string, 0, len(byAlgo))
			for a := range byAlgo {
				algos = append(algos, a)
			}
			sort.Strings(algos)
			for _, a := range algos {
				pw.SampleInt([]string{"run", s.ID, "label", s.Label, "algo", a}, byAlgo[a])
			}
		}
	}

	// Per-run phase spans, for runs that carry a span recorder.
	tracedIdx := -1
	for i, s := range snaps {
		if s.Trace != nil {
			tracedIdx = i
		}
	}
	if tracedIdx >= 0 {
		// The Summary families must each appear once with all runs'
		// samples, so the per-run emission is inlined here rather than
		// reusing Summary.writePrometheus (which writes whole families).
		phaseFamily := func(name, typ, help string, get func(PhaseStat) float64, isInt bool) {
			pw.Family(name, typ, help)
			for _, s := range snaps {
				if s.Trace == nil {
					continue
				}
				for p := 0; p < NumPhases; p++ {
					lbl := []string{"run", s.ID, "label", s.Label, "phase", Phase(p).String()}
					if isInt {
						pw.SampleInt(lbl, int64(get(s.Trace.Phases[p])))
					} else {
						pw.Sample(lbl, get(s.Trace.Phases[p]))
					}
				}
			}
		}
		phaseFamily("rowsort_run_phase_busy_seconds", "counter", "Summed span time per sort phase across workers.",
			func(ps PhaseStat) float64 { return ps.Busy.Seconds() }, false)
		phaseFamily("rowsort_run_phase_wall_seconds", "gauge", "Earliest-begin to latest-end wall time per sort phase.",
			func(ps PhaseStat) float64 { return ps.Wall.Seconds() }, false)
		phaseFamily("rowsort_run_phase_spans_total", "counter", "Spans recorded per sort phase.",
			func(ps PhaseStat) float64 { return float64(ps.Count) }, true)
	}
	return pw.Flush(w)
}

// indexData is the template payload for the HTML index.
type indexData struct {
	Now  time.Time
	Runs []indexRun
}

type indexRun struct {
	RunSnapshot
	Bars []waterBar
}

// waterBar is one phase's bar on the per-run waterfall, in percent of the
// run's traced extent.
type waterBar struct {
	Phase   string
	LeftPct float64
	WidPct  float64
	Busy    time.Duration
	Wall    time.Duration
	Spans   int64
}

var indexTmpl = template.Must(template.New("index").Funcs(template.FuncMap{
	"pct": func(f float64) string { return fmt.Sprintf("%.1f%%", f*100) },
	"dur": func(d time.Duration) string {
		if d < 0 {
			return "–"
		}
		return d.Round(time.Millisecond).String()
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>rowsort runs</title><style>
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin-bottom: 1em; }
th, td { padding: 4px 10px; border-bottom: 1px solid #ddd; text-align: left; font-size: 14px; }
th { background: #f5f5f5; }
.done { color: #666; }
.live { font-weight: 600; color: #0a7d2c; }
.meter { background: #eee; border-radius: 3px; width: 160px; height: 12px; display: inline-block; vertical-align: middle; }
.meter > div { background: #4a90d9; height: 100%; border-radius: 3px; }
.wf { position: relative; height: 18px; background: #fafafa; border: 1px solid #eee; margin: 1px 0; }
.wf > span.bar { position: absolute; top: 2px; bottom: 2px; background: #7cb2e8; border-radius: 2px; }
.wf > span.lbl { position: absolute; left: 4px; top: 1px; font-size: 11px; color: #345; z-index: 1; }
.wfbox { width: 480px; }
small { color: #888; }
</style></head><body>
<h1>rowsort runs</h1>
<p><small>{{len .Runs}} run(s) retained · snapshot at {{.Now.Format "15:04:05.000"}} ·
<a href="/metrics">/metrics</a></small></p>
<table>
<tr><th>id</th><th>label</th><th>state</th><th>stage</th><th>progress</th><th>eta</th><th>rows in/sorted/merged/out</th><th>spill w/r</th><th>mem used/peak/limit</th><th>elapsed</th><th></th></tr>
{{range .Runs}}
<tr>
<td><a href="/debug/rowsort/run?id={{.ID}}">{{.ID}}</a></td>
<td title="{{.Fingerprint}}">{{.Label}}</td>
<td>{{if .Done}}<span class="done">done</span>{{else}}<span class="live">live</span>{{end}}</td>
<td>{{.Stage}}</td>
<td><span class="meter"><div style="width: {{pct .Fraction}}"></div></span> {{pct .Fraction}}</td>
<td>{{if .Done}}—{{else if lt .ETA 0}}?{{else}}{{dur .ETA}}{{end}}</td>
<td>{{.Counters.RowsIngested}} / {{.Counters.RowsSorted}} / {{.Counters.RowsMerged}} / {{.Counters.RowsGathered}}</td>
<td>{{.Counters.SpillBytesWritten}} / {{.Counters.SpillBytesRead}}</td>
<td>{{.Mem.UsedBytes}} / {{.Mem.PeakBytes}} / {{.Mem.LimitBytes}}</td>
<td>{{dur .Elapsed}}</td>
<td>{{if and .Done .Trace}}<a href="/debug/rowsort/trace?id={{.ID}}">trace</a>{{end}}</td>
</tr>
{{if .Bars}}
<tr><td colspan="11"><div class="wfbox">
{{range .Bars}}<div class="wf"><span class="lbl">{{.Phase}} <small>busy {{dur .Busy}} · wall {{dur .Wall}} · {{.Spans}} spans</small></span><span class="bar" style="left: {{pct .LeftPct}}; width: {{pct .WidPct}}"></span></div>
{{end}}</div></td></tr>
{{end}}
{{end}}
</table>
{{if not .Runs}}<p>No runs registered yet.</p>{{end}}
</body></html>
`))

func (g *Registry) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/rowsort/" {
		http.NotFound(w, r)
		return
	}
	data := indexData{Now: time.Now()}
	for _, s := range g.Snapshots() {
		data.Runs = append(data.Runs, indexRun{RunSnapshot: s, Bars: waterfall(s.Trace)})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		return
	}
}

// waterfall lays the traced phases out as bars over the recorder's full
// extent (earliest phase start to the latest end). Nil when there is no
// trace or nothing was recorded.
func waterfall(sum *Summary) []waterBar {
	if sum == nil {
		return nil
	}
	var lo, hi time.Duration
	first := true
	for p := 0; p < NumPhases; p++ {
		ps := sum.Phases[p]
		if ps.Count == 0 {
			continue
		}
		end := ps.Start + ps.Wall
		if first || ps.Start < lo {
			lo = ps.Start
		}
		if first || end > hi {
			hi = end
		}
		first = false
	}
	if first || hi <= lo {
		return nil
	}
	span := float64(hi - lo)
	var bars []waterBar
	for p := 0; p < NumPhases; p++ {
		ps := sum.Phases[p]
		if ps.Count == 0 {
			continue
		}
		bars = append(bars, waterBar{
			Phase:   Phase(p).String(),
			LeftPct: float64(ps.Start-lo) / span,
			WidPct:  float64(ps.Wall) / span,
			Busy:    ps.Busy,
			Wall:    ps.Wall,
			Spans:   ps.Count,
		})
	}
	return bars
}
