package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTrace writes the recorded spans as Chrome trace_event JSON (the
// object format with a traceEvents array), loadable by chrome://tracing and
// Perfetto. Each Worker is one thread lane (its tid), named by a thread_name
// metadata event; spans are complete ("X") events with microsecond
// timestamps relative to the recorder's epoch, so nesting renders from
// containment. Call it only after the recorded work has finished: span
// buffers are read without synchronization. A nil recorder writes an empty
// trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	if r != nil {
		first := true
		sep := func() {
			if !first {
				bw.WriteByte(',')
			}
			first = false
		}
		workers := r.snapshotWorkers()
		for _, wk := range workers {
			name, err := json.Marshal(wk.name)
			if err != nil {
				return err
			}
			sep()
			fmt.Fprintf(bw, `{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				wk.tid, name)
		}
		for _, wk := range workers {
			for _, sp := range wk.spans {
				sep()
				fmt.Fprintf(bw, `{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":"rowsort","ts":%s,"dur":%s}`,
					wk.tid, sp.phase.String(), micros(sp.start), micros(sp.dur))
			}
		}
	}
	bw.WriteString(`],"displayTimeUnit":"ms"}`)
	bw.WriteByte('\n')
	return bw.Flush()
}

// micros formats ns as a decimal microsecond count with nanosecond
// precision, without float rounding (trace_event timestamps are in us).
func micros(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}
