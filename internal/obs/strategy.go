package obs

// StrategyDecision is one run's recorded execution-plan choice, as the
// observability plane surfaces it: which sort generated the run and the
// sampled statistics the decision came from. It lives here (not in the
// strategy package) so the registry can carry and serialize decisions
// without the core/strategy layers depending on each other through obs.
type StrategyDecision struct {
	// Run is the run's id within its sorter; Rows its row count.
	Run  int `json:"run"`
	Rows int `json:"rows"`
	// Algo is the executed run-generation sort ("lsd-radix", "msd-radix",
	// "pdqsort", "dup-group", "radix+repair").
	Algo string `json:"algo"`
	// Forced, when non-empty, names why the plan was dictated rather than
	// sampled ("tie-break", "option", "static", "dup-group-miss").
	Forced string `json:"forced,omitempty"`
	// MergeRole is the run's merge-scheduling hint ("normal", "dup-heavy",
	// "presorted"); empty when no plan was sampled.
	MergeRole string `json:"merge_role,omitempty"`
	// Sampled statistics behind the decision (zero when Forced).
	Sortedness        float64 `json:"sortedness,omitempty"`
	EffectiveKeyBytes int     `json:"effective_key_bytes,omitempty"`
	DistinctRatio     float64 `json:"distinct_ratio,omitempty"`
	FirstByteEntropy  float64 `json:"first_byte_entropy,omitempty"`
	DupRunFrac        float64 `json:"dup_run_frac,omitempty"`
	// Modeled per-row costs the crossover compared (zero when Forced).
	RadixCost float64 `json:"radix_cost,omitempty"`
	PdqCost   float64 `json:"pdq_cost,omitempty"`
	// SpillBlockRows is the plan's spill block-shape hint (0 = default).
	SpillBlockRows int `json:"spill_block_rows,omitempty"`
	// FrontCode reports whether spill-block key front-coding was enabled
	// for the run.
	FrontCode bool `json:"front_code,omitempty"`
}
