package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func TestNilRegistryAndHandleAreNoOps(t *testing.T) {
	var g *Registry
	h := g.Register(RunOptions{Label: "x"})
	if h != nil {
		t.Fatal("nil registry must return a nil handle")
	}
	if id := h.ID(); id != "" {
		t.Fatalf("nil handle ID = %q, want empty", id)
	}
	h.Done() // must not panic
	if snaps := g.Snapshots(); snaps != nil {
		t.Fatalf("nil registry Snapshots = %v, want nil", snaps)
	}
	if _, ok := g.Snapshot("run-1"); ok {
		t.Fatal("nil registry Snapshot must report not found")
	}
	if err := g.WritePrometheus(discard{}); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestRegistrySnapshotLifecycle(t *testing.T) {
	g := NewRegistry(4)
	p := &Progress{}
	h := g.Register(RunOptions{
		Label:       "test-sort",
		Fingerprint: "threads=2",
		Progress:    p,
		MemUsed:     func() int64 { return 100 },
		MemPeak:     func() int64 { return 200 },
		MemLimit:    1 << 20,
		FinalStats:  func() any { return map[string]int{"rows": 8} },
	})
	if h.ID() != "run-1" {
		t.Fatalf("first run id = %q, want run-1", h.ID())
	}

	snap, ok := g.Snapshot(h.ID())
	if !ok {
		t.Fatal("snapshot of registered run not found")
	}
	if snap.Done || snap.Stage != "pending" || snap.Fraction != 0 || snap.ETA != -1 {
		t.Fatalf("fresh run snapshot off: %+v", snap)
	}
	if snap.Mem.UsedBytes != 100 || snap.Mem.PeakBytes != 200 || snap.Mem.LimitBytes != 1<<20 {
		t.Fatalf("mem gauges not sampled: %+v", snap.Mem)
	}
	if snap.Final != nil {
		t.Fatal("live run must not carry final stats")
	}

	// Publish some progress: fraction moves, stays in (0, 1), ETA appears.
	p.RowsExpected.Store(1000)
	p.AdvanceTo(StageRunGen)
	p.RowsIngested.Store(1000)
	p.RowsSorted.Store(1000)
	p.AdvanceTo(StageMerge)
	p.MergeRowsPlanned.Store(1000)
	p.RowsMerged.Store(500)
	snap, _ = g.Snapshot(h.ID())
	if snap.Stage != "merge" {
		t.Fatalf("stage = %q, want merge", snap.Stage)
	}
	if snap.Fraction <= 0 || snap.Fraction >= 1 {
		t.Fatalf("mid-run fraction = %v, want in (0, 1)", snap.Fraction)
	}
	if snap.ETA < 0 {
		t.Fatalf("ETA = %v, want an estimate once fraction is meaningful", snap.ETA)
	}
	if len(snap.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(snap.Phases))
	}
	for _, ph := range snap.Phases {
		if ph.Fraction < 0 || ph.Fraction > 1 {
			t.Fatalf("phase %s fraction %v out of range", ph.Name, ph.Fraction)
		}
	}

	h.Done()
	h.Done() // idempotent
	snap, _ = g.Snapshot(h.ID())
	if !snap.Done || snap.Stage != "done" || snap.Fraction != 1 || snap.ETA != 0 {
		t.Fatalf("done snapshot off: done=%v stage=%q fraction=%v eta=%v",
			snap.Done, snap.Stage, snap.Fraction, snap.ETA)
	}
	if snap.Final == nil {
		t.Fatal("done run lost its final stats")
	}
	elapsed := snap.Elapsed
	time.Sleep(5 * time.Millisecond)
	snap, _ = g.Snapshot(h.ID())
	if snap.Elapsed != elapsed {
		t.Fatalf("completed run's elapsed moved: %v -> %v", elapsed, snap.Elapsed)
	}
}

func TestRegistrySnapshotJSONRoundTrips(t *testing.T) {
	g := NewRegistry(0)
	h := g.Register(RunOptions{Recorder: NewRecorder()})
	snap, _ := g.Snapshot(h.ID())
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != snap.ID || back.Stage != snap.Stage || back.Trace == nil {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestRegistryEvictsOldestDoneRuns(t *testing.T) {
	g := NewRegistry(2)
	var handles []*RunHandle
	for i := 0; i < 5; i++ {
		handles = append(handles, g.Register(RunOptions{Label: fmt.Sprintf("r%d", i)}))
	}
	live := g.Register(RunOptions{Label: "live"})
	for _, h := range handles {
		h.Done()
	}
	snaps := g.Snapshots()
	if len(snaps) != 3 { // 1 live + keep(2) done
		t.Fatalf("retained %d runs, want 3", len(snaps))
	}
	if snaps[0].ID != live.ID() || snaps[0].Done {
		t.Fatalf("live run must come first: %+v", snaps[0])
	}
	// The newest completed runs are the ones kept.
	if snaps[1].ID != handles[4].ID() || snaps[2].ID != handles[3].ID() {
		t.Fatalf("kept wrong runs: %s, %s", snaps[1].ID, snaps[2].ID)
	}
	// Evicted runs are gone, in-flight ones never evicted.
	if _, ok := g.Snapshot(handles[0].ID()); ok {
		t.Fatal("oldest done run should have been evicted")
	}
	if _, ok := g.Snapshot(live.ID()); !ok {
		t.Fatal("live run must never be evicted")
	}
}

func TestRegistryETAUnknownBelowSignalFloor(t *testing.T) {
	g := NewRegistry(0)
	p := &Progress{}
	h := g.Register(RunOptions{Progress: p})
	p.RowsExpected.Store(1_000_000)
	p.AdvanceTo(StageRunGen)
	p.RowsIngested.Store(10) // fraction far below 0.5%
	snap, _ := g.Snapshot(h.ID())
	if snap.ETA != -1 {
		t.Fatalf("ETA = %v with ~0%% progress, want -1 (unknown)", snap.ETA)
	}
}

func TestProgressAdvanceToIsMonotonic(t *testing.T) {
	p := &Progress{}
	p.AdvanceTo(StageMerge)
	entered := p.StageEntered(StageMerge)
	if entered.IsZero() {
		t.Fatal("entry timestamp not recorded")
	}
	p.AdvanceTo(StageRunGen) // behind: no-op
	if p.Stage() != StageMerge {
		t.Fatalf("stage went backwards: %v", p.Stage())
	}
	p.AdvanceTo(StageMerge) // repeat: timestamp unchanged
	if got := p.StageEntered(StageMerge); !got.Equal(entered) {
		t.Fatalf("re-advance changed entry time: %v -> %v", entered, got)
	}
	if !p.StageEntered(StageDone).IsZero() {
		t.Fatal("unreached stage has an entry time")
	}
}

// TestDoneReleasesFinalStatsClosure pins the memory behavior of retained
// completed runs: the FinalStats closure captures the whole sorter, and a
// registry keeping N done runs must not keep N sorters' buffers alive.
// (Observed as a 2x wall-time regression on repeated registered sorts
// before the release was added.)
func TestDoneReleasesFinalStatsClosure(t *testing.T) {
	g := NewRegistry(8)
	type sorterStandIn struct{ buf []byte }
	s := &sorterStandIn{buf: make([]byte, 1<<10)}
	freed := make(chan struct{})
	runtime.SetFinalizer(s, func(*sorterStandIn) { close(freed) })
	h := g.Register(RunOptions{
		Label:      "pinned",
		FinalStats: func() any { return map[string]int{"rows": len(s.buf)} },
	})
	h.Done()
	if snap, ok := g.Snapshot(h.ID()); !ok || snap.Final == nil {
		t.Fatal("final stats not captured before release")
	}
	s = nil
	for i := 0; i < 20; i++ {
		runtime.GC()
		select {
		case <-freed:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatal("retained done run still pins the FinalStats closure's captures")
}

// TestStrategySnapshotLifecycle pins the Strategy closure contract: live
// snapshots sample it, Done freezes its last result and releases the
// closure (same pinning hazard as FinalStats), and snapshots after
// completion serve the frozen copy.
func TestStrategySnapshotLifecycle(t *testing.T) {
	g := NewRegistry(8)
	decisions := []StrategyDecision{{Run: 0, Rows: 100, Algo: "lsd-radix"}}
	type sorterStandIn struct{ buf []byte }
	s := &sorterStandIn{buf: make([]byte, 1<<10)}
	freed := make(chan struct{})
	runtime.SetFinalizer(s, func(*sorterStandIn) { close(freed) })
	h := g.Register(RunOptions{
		Label: "strat",
		Strategy: func() []StrategyDecision {
			_ = len(s.buf) // stand in for capturing the sorter
			return decisions
		},
	})

	snap, ok := g.Snapshot(h.ID())
	if !ok || len(snap.Strategy) != 1 || snap.Strategy[0].Algo != "lsd-radix" {
		t.Fatalf("live snapshot strategy = %+v", snap.Strategy)
	}

	decisions = append(decisions, StrategyDecision{Run: 1, Rows: 50, Algo: "pdqsort"})
	h.Done()
	snap, ok = g.Snapshot(h.ID())
	if !ok || len(snap.Strategy) != 2 || snap.Strategy[1].Algo != "pdqsort" {
		t.Fatalf("frozen snapshot strategy = %+v", snap.Strategy)
	}

	s = nil
	for i := 0; i < 20; i++ {
		runtime.GC()
		select {
		case <-freed:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatal("retained done run still pins the Strategy closure's captures")
}
