package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock returns a deterministic clock advancing 100ns per reading.
func tickClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(100) - 100 }
}

func TestSpanNestingAndOrdering(t *testing.T) {
	r := NewRecorderClock(tickClock())
	w := r.Worker("merge")

	outer := w.Begin(PhaseMerge) // t=0
	inner := w.Begin(PhaseSpillRead)
	inner.End()
	inner2 := w.Begin(PhaseSpillRead)
	inner2.End()
	outer.End()

	if len(w.spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(w.spans))
	}
	// Children complete (and are recorded) before the enclosing span.
	if w.spans[0].phase != PhaseSpillRead || w.spans[1].phase != PhaseSpillRead || w.spans[2].phase != PhaseMerge {
		t.Fatalf("span order = %v %v %v, want spill-read spill-read merge",
			w.spans[0].phase, w.spans[1].phase, w.spans[2].phase)
	}
	if w.spans[0].depth != 1 || w.spans[1].depth != 1 || w.spans[2].depth != 0 {
		t.Fatalf("depths = %d %d %d, want 1 1 0", w.spans[0].depth, w.spans[1].depth, w.spans[2].depth)
	}
	// Containment: each child's interval lies inside the parent's.
	p := w.spans[2]
	for _, c := range w.spans[:2] {
		if c.start < p.start || c.start+c.dur > p.start+p.dur {
			t.Fatalf("child [%d,%d] escapes parent [%d,%d]", c.start, c.start+c.dur, p.start, p.start+p.dur)
		}
	}
	// Siblings are ordered and disjoint.
	if w.spans[0].start+w.spans[0].dur > w.spans[1].start {
		t.Fatalf("sibling spans overlap: %v then %v", w.spans[0], w.spans[1])
	}

	s := r.Summary()
	if got := s.Get(PhaseSpillRead).Count; got != 2 {
		t.Fatalf("spill-read count = %d, want 2", got)
	}
	if got := s.Get(PhaseMerge).Count; got != 1 {
		t.Fatalf("merge count = %d, want 1", got)
	}
	// The merge span wholly contains both reads, so busy(merge) > busy(reads)
	// and wall(merge) equals its single span's duration.
	if s.Get(PhaseMerge).Busy <= s.Get(PhaseSpillRead).Busy {
		t.Fatalf("merge busy %v not greater than nested spill-read busy %v",
			s.Get(PhaseMerge).Busy, s.Get(PhaseSpillRead).Busy)
	}
	if s.Get(PhaseMerge).Wall != time.Duration(w.spans[2].dur) {
		t.Fatalf("merge wall = %v, want %v", s.Get(PhaseMerge).Wall, time.Duration(w.spans[2].dur))
	}
}

func TestConcurrentWorkers(t *testing.T) {
	// One worker per goroutine, recording concurrently: the per-worker
	// buffers are disjoint, so this must be race-free (run under -race) and
	// the aggregate counters must add up exactly.
	r := NewRecorder()
	const workers, spansEach = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := r.Worker("worker")
			for i := 0; i < spansEach; i++ {
				sp := w.Begin(Phase(1 + (i+g)%(NumPhases-1)))
				inner := w.Begin(PhaseSpillRead)
				inner.End()
				sp.End()
				// A concurrent Summary while recording must be safe.
				if i == spansEach/2 {
					_ = r.Summary()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Summary()
	if s.Workers != workers {
		t.Fatalf("workers = %d, want %d", s.Workers, workers)
	}
	var total int64
	for p := 0; p < NumPhases; p++ {
		total += s.Phases[p].Count
	}
	if want := int64(workers * spansEach * 2); total != want {
		t.Fatalf("total spans = %d, want %d", total, want)
	}
}

func TestWriteTraceGolden(t *testing.T) {
	r := NewRecorderClock(tickClock())
	w := r.Worker("sink-0")
	sp := w.Begin(PhaseIngest) // start 0, end 100
	sp.End()
	sp = w.Begin(PhaseRunSort) // start 200, end 300
	sp.End()
	w2 := r.Worker(`q"uote`)  // name requiring JSON escaping
	sp = w2.Begin(PhaseMerge) // start 400, end 500
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"sink-0"}},` +
		`{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"q\"uote"}},` +
		`{"ph":"X","pid":1,"tid":1,"name":"ingest","cat":"rowsort","ts":0.000,"dur":0.100},` +
		`{"ph":"X","pid":1,"tid":1,"name":"run-sort","cat":"rowsort","ts":0.200,"dur":0.100},` +
		`{"ph":"X","pid":1,"tid":2,"name":"merge","cat":"rowsort","ts":0.400,"dur":0.100}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("trace JSON mismatch\n got: %s\nwant: %s", got, want)
	}

	// The output must also be valid JSON in the trace_event object form.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace does not parse as JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("parsed %d events, want 5", len(parsed.TraceEvents))
	}
}

func TestWriteTraceNilRecorder(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace does not parse: %v", err)
	}
}

func TestDisabledPathAllocates(t *testing.T) {
	// The whole disabled-path API — Worker, Begin, End, Do, Summary — must
	// not allocate, so instrumentation can stay unconditional in hot paths.
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		w := r.Worker("sink")
		sp := w.Begin(PhaseIngest)
		inner := w.Begin(PhaseRunSort)
		inner.End()
		sp.End()
		r.Do("run-generation", func() {})
		_ = r.Summary()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per run, want 0", allocs)
	}
}

func TestPrometheusAndExpvar(t *testing.T) {
	r := NewRecorderClock(tickClock())
	w := r.Worker("sink")
	w.Begin(PhaseIngest).End()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rowsort_phase_busy_seconds{phase="ingest"} 1e-07`,
		`rowsort_phase_spans_total{phase="ingest"} 1`,
		"rowsort_trace_workers 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	r.PublishExpvar("obs_test_recorder")
	v := expvar.Get("obs_test_recorder")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var s Summary
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar snapshot does not parse: %v", err)
	}
	if s.Phases[PhaseIngest].Count != 1 {
		t.Fatalf("expvar ingest count = %d, want 1", s.Phases[PhaseIngest].Count)
	}
}

func TestSummaryStringAndPhaseNames(t *testing.T) {
	r := NewRecorderClock(tickClock())
	w := r.Worker("sink")
	w.Begin(PhaseGather).End()
	if got := r.Summary().String(); !strings.Contains(got, "gather") {
		t.Fatalf("summary table missing gather:\n%s", got)
	}
	seen := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		if name == "unknown" || seen[name] {
			t.Fatalf("phase %d has bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase should stringify as unknown")
	}
}
