// Package obs is the sort pipeline's telemetry layer: hierarchical phase
// spans with nanosecond timers recorded into per-worker buffers, aggregated
// phase counters, and exporters for Chrome trace_event JSON (chrome://tracing
// and Perfetto), Prometheus text, and expvar snapshots.
//
// The package is built around a nil fast path: a nil *Recorder hands out nil
// *Workers, and every method on a nil receiver is a no-op that performs zero
// allocations, so instrumented code calls Begin/End unconditionally and pays
// nothing when telemetry is off.
//
// Each Worker owns its span buffer and is confined to one goroutine, so span
// recording is lock-free; only worker registration takes the recorder's
// mutex. Aggregate counters (per-phase busy time, span counts, first/last
// timestamps) are atomics, so Summary and the Prometheus dump are safe to
// call concurrently with recording; WriteTrace reads the span buffers and
// must wait until the recorded work has finished.
package obs

import (
	"context"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the sort pipeline.
type Phase uint8

// The instrumented pipeline phases.
const (
	// PhaseSort is the root span covering a whole sort call.
	PhaseSort Phase = iota
	// PhaseIngest is chunk conversion: payload scatter to the row format
	// plus normalized-key encoding.
	PhaseIngest
	// PhaseRunSort is sorting one thread-local run's key rows (radix or
	// pdqsort) and reordering its payload.
	PhaseRunSort
	// PhaseSpillWrite is serializing a sorted run to its spill file.
	PhaseSpillWrite
	// PhaseSpillRead is reading one block of a spilled run back.
	PhaseSpillRead
	// PhaseMerge is the k-way merge of sorted runs.
	PhaseMerge
	// PhaseGather is materializing the sorted payload back into columns.
	PhaseGather
	// PhasePressureSpill is spilling resident runs because the memory
	// broker reported budget pressure (the adaptive-spill path, as opposed
	// to PhaseSpillWrite spans inside it which cover the file writes).
	PhasePressureSpill
	// PhasePrefetch is a spill read-ahead goroutine decoding the next block
	// of a run while the merge consumes the current one; its spans cover
	// the decode work that overlaps merge compute.
	PhasePrefetch
	// PhaseMergePass is one intermediate external merge pass: a batch of
	// spilled runs rewritten as a single wider run because the budget
	// cannot stream all of them at once (the multi-pass merge plan).
	PhaseMergePass
	// PhaseKeyPlan is the ingest-time sampling pass that decides per-column
	// compressed key encodings (dictionary, truncation, shared-prefix
	// elision) before any rows are encoded.
	PhaseKeyPlan

	// NumPhases is the number of distinct phases.
	NumPhases = int(PhaseKeyPlan) + 1
)

var phaseNames = [NumPhases]string{
	"sort", "ingest", "run-sort", "spill-write", "spill-read", "merge", "gather",
	"pressure-spill", "prefetch", "merge-pass", "key-plan",
}

// String returns the phase's trace/metric name.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Recorder collects spans and counters for one traced activity (typically
// one sort). A nil *Recorder disables all recording.
type Recorder struct {
	now func() int64 // nanoseconds since the recorder's epoch (monotonic)

	busy  [NumPhases]atomic.Int64 // summed span durations, ns
	count [NumPhases]atomic.Int64 // spans ended
	first [NumPhases]atomic.Int64 // earliest span start, ns (MaxInt64 = none)
	last  [NumPhases]atomic.Int64 // latest span end, ns (-1 = none)

	mu      sync.Mutex
	workers []*Worker
}

// NewRecorder returns a recorder whose clock is the monotonic time since
// this call.
func NewRecorder() *Recorder {
	epoch := time.Now()
	return NewRecorderClock(func() int64 { return int64(time.Since(epoch)) })
}

// NewRecorderClock returns a recorder driven by an explicit clock reporting
// nanoseconds since an epoch of the caller's choosing. The clock must be
// monotonic non-decreasing and safe for concurrent use. Tests use it for
// deterministic timelines.
func NewRecorderClock(now func() int64) *Recorder {
	r := &Recorder{now: now}
	for p := range r.first {
		r.first[p].Store(math.MaxInt64)
		r.last[p].Store(-1)
	}
	return r
}

// Worker registers a new trace lane (one Chrome-trace tid) and returns its
// span buffer. Workers are not safe for concurrent use: create one per
// goroutine. On a nil recorder it returns nil, which all Worker methods
// accept.
func (r *Recorder) Worker(name string) *Worker {
	if r == nil {
		return nil
	}
	w := &Worker{r: r, name: name}
	r.mu.Lock()
	w.tid = len(r.workers) + 1
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// Do runs f under a pprof goroutine label ("sort_phase": label) so CPU
// profiles taken while the sort runs attribute samples to pipeline stages.
// On a nil recorder it just calls f.
func (r *Recorder) Do(label string, f func()) {
	if r == nil {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("sort_phase", label), func(context.Context) { f() })
}

// Worker is one goroutine's span buffer and trace lane.
type Worker struct {
	r     *Recorder
	tid   int
	name  string
	depth int32
	spans []spanRec
}

// spanRec is one completed span.
type spanRec struct {
	phase Phase
	depth int32
	start int64 // ns since the recorder's epoch
	dur   int64 // ns
}

// Span is an open span handle. It is a value: Begin/End on the nil fast
// path allocate nothing.
type Span struct {
	w     *Worker
	phase Phase
	depth int32
	start int64
}

// Begin opens a span of phase p at the current time. Spans nest: a Begin
// before the previous span's End records one level deeper, and Chrome
// tracing renders the containment. On a nil worker it returns a no-op span.
//
//rowsort:hotpath
func (w *Worker) Begin(p Phase) Span {
	if w == nil {
		return Span{}
	}
	now := w.r.now()
	casMin(&w.r.first[p], now)
	s := Span{w: w, phase: p, depth: w.depth, start: now}
	w.depth++
	return s
}

// End closes the span, recording it into the worker's buffer and the
// recorder's phase counters. End on the zero Span is a no-op.
//
//rowsort:hotpath
func (s Span) End() {
	if s.w == nil {
		return
	}
	r := s.w.r
	end := r.now()
	s.w.depth--
	//rowsort:allow hotpathalloc amortized span-buffer growth; the telemetry test pins AllocsPerRun at zero in the steady state
	s.w.spans = append(s.w.spans, spanRec{phase: s.phase, depth: s.depth, start: s.start, dur: end - s.start})
	r.busy[s.phase].Add(end - s.start)
	r.count[s.phase].Add(1)
	casMax(&r.last[s.phase], end)
}

// casMin lowers a to v if v is smaller.
func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// casMax raises a to v if v is larger.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// snapshotWorkers returns the registered workers under the lock.
func (r *Recorder) snapshotWorkers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Worker(nil), r.workers...)
}
