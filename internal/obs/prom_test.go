package obs

import (
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	var pw PromWriter
	pw.Family("rowsort_things_total", "counter", "Things counted.")
	pw.SampleInt(nil, 3)
	pw.Family("rowsort_ratio", "gauge", "A ratio with\nnewline and \\slash in help.")
	pw.Sample([]string{"run", "run-1", "label", `quote"back\slash` + "\nnl"}, 0.25)

	var b strings.Builder
	if err := pw.Flush(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP rowsort_things_total Things counted.\n# TYPE rowsort_things_total counter\nrowsort_things_total 3\n",
		`# HELP rowsort_ratio A ratio with\nnewline and \\slash in help.`,
		`rowsort_ratio{run="run-1",label="quote\"back\\slash\nnl"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus([]byte(out)); err != nil {
		t.Fatalf("writer output does not validate: %v\n%s", err, out)
	}
}

func TestValidatePrometheusAcceptsWellFormed(t *testing.T) {
	good := `# HELP rowsort_a_total Counts a.
# TYPE rowsort_a_total counter
rowsort_a_total 1
rowsort_a_total{run="run-1",label="x y"} 2.5
# HELP rowsort_b_ratio A gauge.
# TYPE rowsort_b_ratio gauge
rowsort_b_ratio{v="esc\"aped\\and\nnl"} 0.5
`
	if err := ValidatePrometheus([]byte(good)); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
	if err := ValidatePrometheus(nil); err != nil {
		t.Fatalf("empty exposition rejected: %v", err)
	}
}

func TestValidatePrometheusRejectsViolations(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"sample before metadata", "rowsort_x 1\n", "before its # HELP/# TYPE"},
		{"help only", "# HELP rowsort_x h\nrowsort_x 1\n", "before its # HELP/# TYPE"},
		{"duplicate help", "# HELP rowsort_x h\n# HELP rowsort_x h\n", "duplicate # HELP"},
		{"bad type", "# HELP rowsort_x h\n# TYPE rowsort_x banana\n", "invalid # TYPE"},
		{"split family", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x 1\n" +
			"# HELP rowsort_y h\n# TYPE rowsort_y counter\nrowsort_y 1\nrowsort_x 2\n",
			"outside its contiguous family block"},
		{"missing prefix", "# HELP rowsortx h\n# TYPE rowsortx counter\nrowsortx 1\n", "missing rowsort_ prefix"},
		{"bad value", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x one\n", "invalid sample value"},
		{"unquoted label", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x{a=b} 1\n", "not quoted"},
		{"unterminated label", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x{a=\"b} 1\n", "unterminated label value"},
		{"duplicate label", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		{"bad escape", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x{a=\"\\t\"} 1\n", "invalid escape"},
		{"trailing timestamp", "# HELP rowsort_x h\n# TYPE rowsort_x counter\nrowsort_x 1 1234\n", "malformed sample value"},
		{"interior blank line", "# HELP rowsort_x h\n# TYPE rowsort_x counter\n\nrowsort_x 1\n", "empty line"},
	}
	for _, tc := range cases {
		err := ValidatePrometheus([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRecorderWritePrometheusValidates(t *testing.T) {
	rec := NewRecorder()
	w := rec.Worker("w")
	w.Begin(PhaseIngest).End()
	w.Begin(PhaseMerge).End()
	var b strings.Builder
	if err := rec.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus([]byte(b.String())); err != nil {
		t.Fatalf("recorder exposition invalid: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), `rowsort_phase_busy_seconds{phase="ingest"}`) {
		t.Fatalf("missing phase sample:\n%s", b.String())
	}
}
