package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// PhaseStat is one phase's aggregate across all workers.
type PhaseStat struct {
	// Busy is the summed duration of the phase's spans over all workers
	// (inclusive of nested child spans), so with p parallel workers it can
	// exceed the phase's wall time by up to a factor of p.
	Busy time.Duration `json:"busy_ns"`
	// Wall is the span from the phase's earliest Begin to its latest End.
	Wall time.Duration `json:"wall_ns"`
	// Count is the number of spans recorded for the phase.
	Count int64 `json:"spans"`
}

// Summary is a point-in-time aggregate of the recorder's counters. It is
// safe to take while recording is still in progress.
type Summary struct {
	Phases  [NumPhases]PhaseStat `json:"phases"`
	Workers int                  `json:"workers"`
}

// Summary aggregates the per-phase counters. On a nil recorder it returns
// the zero Summary.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for p := 0; p < NumPhases; p++ {
		first, last := r.first[p].Load(), r.last[p].Load()
		var wall time.Duration
		if last >= 0 && first != math.MaxInt64 && last >= first {
			wall = time.Duration(last - first)
		}
		s.Phases[p] = PhaseStat{
			Busy:  time.Duration(r.busy[p].Load()),
			Wall:  wall,
			Count: r.count[p].Load(),
		}
	}
	r.mu.Lock()
	s.Workers = len(r.workers)
	r.mu.Unlock()
	return s
}

// Get returns the aggregate for one phase.
func (s Summary) Get(p Phase) PhaseStat { return s.Phases[p] }

// String renders the per-phase aggregates as an aligned table, omitting
// phases with no spans.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "phase", "busy", "wall", "spans")
	for p := 0; p < NumPhases; p++ {
		st := s.Phases[p]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %12s %12s %8d\n",
			Phase(p).String(), st.Busy.Round(time.Microsecond), st.Wall.Round(time.Microsecond), st.Count)
	}
	return b.String()
}

// WritePrometheus writes the recorder's phase counters in Prometheus text
// exposition format. On a nil recorder it writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Summary()
	var b strings.Builder
	b.WriteString("# HELP rowsort_phase_busy_seconds Summed span time per sort phase across workers.\n")
	b.WriteString("# TYPE rowsort_phase_busy_seconds counter\n")
	for p := 0; p < NumPhases; p++ {
		fmt.Fprintf(&b, "rowsort_phase_busy_seconds{phase=%q} %g\n", Phase(p).String(), s.Phases[p].Busy.Seconds())
	}
	b.WriteString("# HELP rowsort_phase_wall_seconds Earliest-begin to latest-end wall time per sort phase.\n")
	b.WriteString("# TYPE rowsort_phase_wall_seconds gauge\n")
	for p := 0; p < NumPhases; p++ {
		fmt.Fprintf(&b, "rowsort_phase_wall_seconds{phase=%q} %g\n", Phase(p).String(), s.Phases[p].Wall.Seconds())
	}
	b.WriteString("# HELP rowsort_phase_spans_total Spans recorded per sort phase.\n")
	b.WriteString("# TYPE rowsort_phase_spans_total counter\n")
	for p := 0; p < NumPhases; p++ {
		fmt.Fprintf(&b, "rowsort_phase_spans_total{phase=%q} %d\n", Phase(p).String(), s.Phases[p].Count)
	}
	fmt.Fprintf(&b, "# HELP rowsort_trace_workers Trace lanes registered.\n")
	fmt.Fprintf(&b, "# TYPE rowsort_trace_workers gauge\n")
	fmt.Fprintf(&b, "rowsort_trace_workers %d\n", s.Workers)
	_, err := io.WriteString(w, b.String())
	return err
}

// PublishExpvar registers the recorder's live Summary under name in the
// process-wide expvar registry (readable at /debug/vars when net/http/pprof
// or expvar's handler is mounted). Like expvar.Publish it panics if name is
// already registered; publish each recorder once. No-op on a nil recorder.
func (r *Recorder) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Summary() }))
}
