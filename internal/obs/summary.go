package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// PhaseStat is one phase's aggregate across all workers.
type PhaseStat struct {
	// Busy is the summed duration of the phase's spans over all workers
	// (inclusive of nested child spans), so with p parallel workers it can
	// exceed the phase's wall time by up to a factor of p.
	Busy time.Duration `json:"busy_ns"`
	// Wall is the span from the phase's earliest Begin to its latest End.
	Wall time.Duration `json:"wall_ns"`
	// Start is the phase's earliest Begin, on the recorder's clock (time
	// since the recorder epoch). Together with Wall it places the phase on
	// a waterfall; zero with Count == 0 means the phase never ran.
	Start time.Duration `json:"start_ns"`
	// Count is the number of spans recorded for the phase.
	Count int64 `json:"spans"`
}

// Summary is a point-in-time aggregate of the recorder's counters. It is
// safe to take while recording is still in progress.
type Summary struct {
	Phases  [NumPhases]PhaseStat `json:"phases"`
	Workers int                  `json:"workers"`
}

// Summary aggregates the per-phase counters. On a nil recorder it returns
// the zero Summary.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for p := 0; p < NumPhases; p++ {
		first, last := r.first[p].Load(), r.last[p].Load()
		var wall, start time.Duration
		if first != math.MaxInt64 {
			start = time.Duration(first)
		}
		if last >= 0 && first != math.MaxInt64 && last >= first {
			wall = time.Duration(last - first)
		}
		s.Phases[p] = PhaseStat{
			Busy:  time.Duration(r.busy[p].Load()),
			Wall:  wall,
			Start: start,
			Count: r.count[p].Load(),
		}
	}
	r.mu.Lock()
	s.Workers = len(r.workers)
	r.mu.Unlock()
	return s
}

// Get returns the aggregate for one phase.
func (s Summary) Get(p Phase) PhaseStat { return s.Phases[p] }

// String renders the per-phase aggregates as an aligned table, omitting
// phases with no spans.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %8s\n", "phase", "busy", "wall", "spans")
	for p := 0; p < NumPhases; p++ {
		st := s.Phases[p]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %12s %12s %8d\n",
			Phase(p).String(), st.Busy.Round(time.Microsecond), st.Wall.Round(time.Microsecond), st.Count)
	}
	return b.String()
}

// WritePrometheus writes the recorder's phase counters in Prometheus text
// exposition format. On a nil recorder it writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Summary()
	var pw PromWriter
	s.writePrometheus(&pw, nil)
	return pw.Flush(w)
}

// writePrometheus emits the summary's families into pw. extra labels (e.g.
// a registry run id) are prepended to every sample's label set.
func (s Summary) writePrometheus(pw *PromWriter, extra []string) {
	phaseLabels := func(p int) []string {
		return append(append([]string(nil), extra...), "phase", Phase(p).String())
	}
	pw.Family("rowsort_phase_busy_seconds", "counter", "Summed span time per sort phase across workers.")
	for p := 0; p < NumPhases; p++ {
		pw.Sample(phaseLabels(p), s.Phases[p].Busy.Seconds())
	}
	pw.Family("rowsort_phase_wall_seconds", "gauge", "Earliest-begin to latest-end wall time per sort phase.")
	for p := 0; p < NumPhases; p++ {
		pw.Sample(phaseLabels(p), s.Phases[p].Wall.Seconds())
	}
	pw.Family("rowsort_phase_spans_total", "counter", "Spans recorded per sort phase.")
	for p := 0; p < NumPhases; p++ {
		pw.SampleInt(phaseLabels(p), s.Phases[p].Count)
	}
	pw.Family("rowsort_trace_workers", "gauge", "Trace lanes registered.")
	pw.SampleInt(append([]string(nil), extra...), int64(s.Workers))
}

// PublishExpvar registers the recorder's live Summary under name in the
// process-wide expvar registry (readable at /debug/vars when net/http/pprof
// or expvar's handler is mounted). Like expvar.Publish it panics if name is
// already registered; publish each recorder once. No-op on a nil recorder.
func (r *Recorder) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Summary() }))
}
