package obs

import (
	"sync/atomic"
	"time"
)

// Stage is a sort run's coarse lifecycle position, published by the pipeline
// as it crosses stage boundaries. Stages only advance (AdvanceTo is
// monotonic), so concurrent observers never see a run move backwards.
type Stage int32

// The pipeline stages, in lifecycle order.
const (
	// StagePending is a registered run that has not ingested a row yet.
	StagePending Stage = iota
	// StageRunGen covers ingestion and thread-local run sorting (including
	// eager and pressure-driven spill writes).
	StageRunGen
	// StageMerge covers Finalize: the k-way merge, including intermediate
	// fan-in-reducing passes and spill reads.
	StageMerge
	// StageGather covers result materialization (Result or the Rows
	// iterator, which for budgeted sorts also runs the deferred final
	// merge).
	StageGather
	// StageDone is a closed run; its final stats snapshot is frozen.
	StageDone

	// NumStages is the number of lifecycle stages.
	NumStages = int(StageDone) + 1
)

var stageNames = [NumStages]string{"pending", "run-generation", "merge", "gather", "done"}

// String returns the stage's display name.
func (st Stage) String() string {
	if int(st) < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// Progress is a sort run's live progress block: plain atomic counters the
// pipeline's hot paths publish at chunk/block granularity and any goroutine
// may read at any time. It is the always-on companion to the span-recording
// Recorder — a sorter owns exactly one Progress for its whole life, so the
// steady-state publishing cost is an atomic add per chunk, with no
// allocation and no locks.
//
// All fields are monotonically non-decreasing. Access them only through
// their atomic methods (Load/Store/Add) — the atomicfield analyzer flags
// by-value copies of these fields as lint errors.
type Progress struct {
	// stage is the run's lifecycle position (a Stage value).
	stage atomic.Int32
	// stageEnteredNs[s] is the wall-clock unix nanosecond the run entered
	// stage s (0 = not reached), for per-stage throughput.
	stageEnteredNs [NumStages]atomic.Int64

	// RowsExpected is the total input rows, when the caller knows it up
	// front (SortTable does); 0 means unknown and progress estimation falls
	// back to the rows ingested so far.
	RowsExpected atomic.Int64
	// RowsIngested counts rows converted into pending runs (chunk
	// granularity).
	RowsIngested atomic.Int64
	// RowsSorted counts rows that have left run generation inside a sorted
	// run (run granularity).
	RowsSorted atomic.Int64
	// RunsGenerated counts thread-local sorted runs cut.
	RunsGenerated atomic.Int64
	// SpillBytesWritten and SpillBytesRead mirror the sorter's spill I/O
	// accounting (write granularity: one flushed file or block).
	SpillBytesWritten atomic.Int64
	SpillBytesRead    atomic.Int64
	// MergeRowsPlanned is the merge work planned so far: the input rows
	// when Finalize starts, plus each intermediate fan-in-reducing pass's
	// rows as the multi-pass plan executes. It can exceed RowsExpected —
	// multi-pass merges move rows more than once.
	MergeRowsPlanned atomic.Int64
	// RowsMerged counts rows emitted by merges (batch granularity),
	// including intermediate passes.
	RowsMerged atomic.Int64
	// MergePasses counts completed intermediate fan-in-reducing passes.
	MergePasses atomic.Int64
	// RowsGathered counts rows materialized back into columnar chunks.
	RowsGathered atomic.Int64
	// PrefetchedBlocks and PrefetchHits mirror the spill read-ahead
	// counters; PressureSpills counts runs shed to disk under memory
	// pressure.
	PrefetchedBlocks atomic.Int64
	PrefetchHits     atomic.Int64
	PressureSpills   atomic.Int64
}

// AdvanceTo moves the run's lifecycle stage forward to st, recording the
// entry timestamp on the first arrival. Calls with a stage at or behind the
// current one are no-ops, so racing publishers (two sinks observing the
// first append) and repeated calls are safe.
func (p *Progress) AdvanceTo(st Stage) {
	for {
		cur := p.stage.Load()
		if int32(st) <= cur {
			return
		}
		if p.stage.CompareAndSwap(cur, int32(st)) {
			p.stageEnteredNs[st].CompareAndSwap(0, time.Now().UnixNano())
			return
		}
	}
}

// Stage returns the run's current lifecycle stage.
func (p *Progress) Stage() Stage { return Stage(p.stage.Load()) }

// StageEntered returns when the run entered stage st; the zero time when it
// has not.
func (p *Progress) StageEntered(st Stage) time.Time {
	ns := p.stageEnteredNs[st].Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// ProgressCounters is a point-in-time copy of a Progress block, safe to
// marshal and compare.
type ProgressCounters struct {
	Stage             string `json:"stage"`
	RowsExpected      int64  `json:"rows_expected"`
	RowsIngested      int64  `json:"rows_ingested"`
	RowsSorted        int64  `json:"rows_sorted"`
	RunsGenerated     int64  `json:"runs_generated"`
	SpillBytesWritten int64  `json:"spill_bytes_written"`
	SpillBytesRead    int64  `json:"spill_bytes_read"`
	MergeRowsPlanned  int64  `json:"merge_rows_planned"`
	RowsMerged        int64  `json:"rows_merged"`
	MergePasses       int64  `json:"merge_passes"`
	RowsGathered      int64  `json:"rows_gathered"`
	PrefetchedBlocks  int64  `json:"prefetched_blocks"`
	PrefetchHits      int64  `json:"prefetch_hits"`
	PressureSpills    int64  `json:"pressure_spills"`
}

// Counters snapshots the progress block. The fields are read one atomic
// load at a time, so the snapshot is per-field consistent (each value was
// current at some instant during the call) but not a global atomic cut —
// exactly what a live progress display needs.
func (p *Progress) Counters() ProgressCounters {
	return ProgressCounters{
		Stage:             p.Stage().String(),
		RowsExpected:      p.RowsExpected.Load(),
		RowsIngested:      p.RowsIngested.Load(),
		RowsSorted:        p.RowsSorted.Load(),
		RunsGenerated:     p.RunsGenerated.Load(),
		SpillBytesWritten: p.SpillBytesWritten.Load(),
		SpillBytesRead:    p.SpillBytesRead.Load(),
		MergeRowsPlanned:  p.MergeRowsPlanned.Load(),
		RowsMerged:        p.RowsMerged.Load(),
		MergePasses:       p.MergePasses.Load(),
		RowsGathered:      p.RowsGathered.Load(),
		PrefetchedBlocks:  p.PrefetchedBlocks.Load(),
		PrefetchHits:      p.PrefetchHits.Load(),
		PressureSpills:    p.PressureSpills.Load(),
	}
}

// PhaseWeights are the relative per-row costs of the pipeline's logical
// phases, used to combine per-phase completion fractions into one overall
// progress number (and from it an ETA). core seeds them from
// perfmodel.SortPhaseWeights; the zero value falls back to
// DefaultPhaseWeights.
type PhaseWeights struct {
	Ingest  float64
	RunSort float64
	Merge   float64
	Gather  float64
}

// DefaultPhaseWeights is the fallback weighting when the caller provides
// none: equal thirds for the compute stages with a cheaper gather.
var DefaultPhaseWeights = PhaseWeights{Ingest: 1, RunSort: 1, Merge: 1, Gather: 0.5}

// valid reports whether the weights are usable: non-negative with a
// positive sum.
func (w PhaseWeights) valid() bool {
	if w.Ingest < 0 || w.RunSort < 0 || w.Merge < 0 || w.Gather < 0 {
		return false
	}
	return w.Ingest+w.RunSort+w.Merge+w.Gather > 0
}
