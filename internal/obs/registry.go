package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultKeepDone is how many completed runs a registry retains when
// NewRegistry is given a non-positive keep count.
const DefaultKeepDone = 32

// Registry tracks every in-flight and recently completed sort registered
// with it: each run's options fingerprint, live progress counters, memory
// gauges and (optionally) its span recorder. It is the process-wide surface
// the HTTP observability plane serves — one registry per server, shared by
// any number of concurrent sorters.
//
// A nil *Registry follows the package's nil fast path: Register returns a
// nil *RunHandle and every method is a no-op, so callers thread a registry
// through unconditionally and pay nothing when observability is off.
type Registry struct {
	mu   sync.Mutex
	keep int
	seq  int64
	runs []*runInfo // registration order; completed runs beyond keep are evicted
}

// NewRegistry returns a registry retaining up to keepDone completed runs
// (in-flight runs are never evicted); keepDone <= 0 means DefaultKeepDone.
func NewRegistry(keepDone int) *Registry {
	if keepDone <= 0 {
		keepDone = DefaultKeepDone
	}
	return &Registry{keep: keepDone}
}

// RunOptions describe one sort run being registered.
type RunOptions struct {
	// Label names the run for display ("csvsort", an experiment id); it
	// need not be unique. Empty means "sort".
	Label string
	// Fingerprint is a compact rendering of the run's sort options, so an
	// operator can tell two runs' configurations apart at a glance.
	Fingerprint string
	// Progress is the run's live counter block. Required: Register
	// allocates one when nil so snapshots never have to nil-check.
	Progress *Progress
	// Recorder, when non-nil, is the run's span recorder: the HTTP plane
	// renders its per-phase waterfall and serves its Chrome trace.
	Recorder *Recorder
	// Weights combine per-phase progress into the overall fraction and
	// ETA; the zero value means DefaultPhaseWeights.
	Weights PhaseWeights
	// MemUsed and MemPeak, when non-nil, are sampled on every snapshot
	// (typically mem.Broker method values — lock-free atomic reads).
	MemUsed func() int64
	MemPeak func() int64
	// MemLimit is the run's configured budget (0 = unlimited).
	MemLimit int64
	// PressureEvents, when non-nil, samples the broker's pressure-event
	// count.
	PressureEvents func() int64
	// FinalStats, when non-nil, is called exactly once when the run is
	// marked Done; its result (typically *core.SortStats) is frozen into
	// the run's snapshot as the authoritative completed-run record. The
	// closure is released immediately after that call, so a retained
	// completed run does not pin whatever the closure captured (usually
	// the entire sorter and its buffers).
	FinalStats func() any
	// Strategy, when non-nil, samples the run's per-run execution-plan
	// decisions for live snapshots. Like FinalStats it typically captures
	// the sorter, so Done freezes its last result and releases the
	// closure; snapshots taken after completion serve the frozen copy.
	Strategy func() []StrategyDecision
}

// runInfo is one registered run's registry record.
type runInfo struct {
	id      string
	opt     RunOptions
	started time.Time

	// finalStatsFn is RunOptions.FinalStats, moved out of opt at Register
	// time. The closure typically captures the whole sorter — run buffers,
	// pools, the result table — so a retained completed run must not keep
	// it alive. Only Done touches this field (guarded by doneOnce), which
	// lets Done nil it without racing snapshot's read of opt.
	finalStatsFn func() any

	// strategyFn is RunOptions.Strategy, moved out of opt the same way —
	// but snapshots call it while the run is live, so the release must be
	// an atomic swap rather than a guarded nil. Done freezes the last
	// result into strategy (published by the done handshake below) and
	// swaps the pointer out.
	strategyFn atomic.Pointer[func() []StrategyDecision]
	strategy   []StrategyDecision

	// Completion handshake: Done writes final and finishedNs, then flips
	// done — readers that observe done.Load() == true therefore see both.
	doneOnce   atomic.Bool
	finishedNs atomic.Int64
	final      any
	done       atomic.Bool
}

// RunHandle is a registered run's publisher-side handle. A nil handle is a
// no-op (the nil-registry fast path).
type RunHandle struct {
	g  *Registry
	ri *runInfo
}

// Register adds a run to the registry and returns its handle. On a nil
// registry it returns nil, which all handle methods accept.
func (g *Registry) Register(o RunOptions) *RunHandle {
	if g == nil {
		return nil
	}
	if o.Progress == nil {
		o.Progress = &Progress{}
	}
	if o.Label == "" {
		o.Label = "sort"
	}
	if !o.Weights.valid() {
		o.Weights = DefaultPhaseWeights
	}
	fn := o.FinalStats
	o.FinalStats = nil // held in finalStatsFn; dropped once captured
	stratFn := o.Strategy
	o.Strategy = nil // held in strategyFn; released at Done
	g.mu.Lock()
	g.seq++
	ri := &runInfo{id: fmt.Sprintf("run-%d", g.seq), opt: o, started: time.Now(), finalStatsFn: fn}
	if stratFn != nil {
		ri.strategyFn.Store(&stratFn)
	}
	g.runs = append(g.runs, ri)
	g.mu.Unlock()
	return &RunHandle{g: g, ri: ri}
}

// ID returns the run's registry id ("run-3"); empty on a nil handle.
func (h *RunHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.ri.id
}

// Done marks the run completed: the lifecycle stage advances to StageDone,
// FinalStats (if any) is captured as the frozen completed-run record, and
// the registry may evict the oldest completed runs beyond its keep count.
// Done is idempotent and safe from any goroutine.
func (h *RunHandle) Done() {
	if h == nil {
		return
	}
	ri := h.ri
	if !ri.doneOnce.CompareAndSwap(false, true) {
		return
	}
	ri.opt.Progress.AdvanceTo(StageDone)
	if ri.finalStatsFn != nil {
		ri.final = ri.finalStatsFn()
		ri.finalStatsFn = nil // release the sorter the closure captured
	}
	if fn := ri.strategyFn.Swap(nil); fn != nil {
		// Freeze the decisions before the done handshake publishes them;
		// a snapshot in the tiny swap-to-done window simply omits them.
		ri.strategy = (*fn)()
	}
	ri.finishedNs.Store(time.Now().UnixNano())
	ri.done.Store(true)
	h.g.retire()
}

// retire evicts the oldest completed runs beyond the keep count.
func (g *Registry) retire() {
	g.mu.Lock()
	defer g.mu.Unlock()
	doneCount := 0
	for _, ri := range g.runs {
		if ri.done.Load() {
			doneCount++
		}
	}
	if doneCount <= g.keep {
		return
	}
	evict := doneCount - g.keep
	kept := g.runs[:0]
	for _, ri := range g.runs {
		if evict > 0 && ri.done.Load() {
			evict--
			continue
		}
		kept = append(kept, ri)
	}
	// Drop the tail references so evicted runs are collectable.
	for i := len(kept); i < len(g.runs); i++ {
		g.runs[i] = nil
	}
	g.runs = kept
}

// MemStats is a run's memory-broker gauge snapshot.
type MemStats struct {
	UsedBytes      int64 `json:"used_bytes"`
	PeakBytes      int64 `json:"peak_bytes"`
	LimitBytes     int64 `json:"limit_bytes"`
	PressureEvents int64 `json:"pressure_events"`
}

// PhaseProgress is one logical phase's progress toward its planned work.
type PhaseProgress struct {
	Name    string `json:"name"`
	Done    int64  `json:"done"`
	Planned int64  `json:"planned"`
	// Weight is the phase's relative per-row cost in the overall fraction.
	Weight float64 `json:"weight"`
	// Fraction is Done/Planned clamped to [0, 1].
	Fraction float64 `json:"fraction"`
	// RowsPerSec is the phase's throughput since its stage began; 0 when
	// the stage has not started.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// RunSnapshot is a point-in-time view of one registered run: identity,
// counters, memory gauges, weighted overall progress and ETA, and — once
// the run completes — the frozen final stats.
type RunSnapshot struct {
	ID          string    `json:"id"`
	Label       string    `json:"label"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Started     time.Time `json:"started"`
	// Elapsed is time since start for live runs, total runtime for
	// completed ones.
	Elapsed  time.Duration    `json:"elapsed_ns"`
	Done     bool             `json:"done"`
	Stage    string           `json:"stage"`
	Counters ProgressCounters `json:"counters"`
	Mem      MemStats         `json:"mem"`
	Phases   []PhaseProgress  `json:"phases"`
	// Fraction is the weighted overall completion estimate in [0, 1].
	Fraction float64 `json:"fraction"`
	// ETA is the estimated remaining time (elapsed scaled by the remaining
	// fraction); -1 when no estimate is possible yet.
	ETA time.Duration `json:"eta_ns"`
	// Trace is the run's per-phase span aggregate when it has a Recorder.
	Trace *Summary `json:"trace,omitempty"`
	// Final is the frozen completed-run record (FinalStats' result); nil
	// while the run is live.
	Final any `json:"final,omitempty"`
	// Strategy is the run's per-run execution-plan decisions so far (all
	// of them once the run is done); nil when the run has no planner.
	Strategy []StrategyDecision `json:"strategy,omitempty"`
}

// Snapshot returns the current snapshot of the run with the given id.
func (g *Registry) Snapshot(id string) (RunSnapshot, bool) {
	ri := g.run(id)
	if ri == nil {
		return RunSnapshot{}, false
	}
	return ri.snapshot(), true
}

// Snapshots returns every retained run's snapshot, live runs first, newest
// first within each group.
func (g *Registry) Snapshots() []RunSnapshot {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	runs := append([]*runInfo(nil), g.runs...)
	g.mu.Unlock()
	out := make([]RunSnapshot, 0, len(runs))
	for i := len(runs) - 1; i >= 0; i-- { // newest first
		if !runs[i].done.Load() {
			out = append(out, runs[i].snapshot())
		}
	}
	for i := len(runs) - 1; i >= 0; i-- {
		if runs[i].done.Load() {
			out = append(out, runs[i].snapshot())
		}
	}
	return out
}

// run finds a retained run by id; nil when unknown (or on a nil registry).
func (g *Registry) run(id string) *runInfo {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ri := range g.runs {
		if ri.id == id {
			return ri
		}
	}
	return nil
}

// snapshot builds the run's current RunSnapshot.
func (ri *runInfo) snapshot() RunSnapshot {
	o := ri.opt
	p := o.Progress
	done := ri.done.Load()
	now := time.Now()
	elapsed := now.Sub(ri.started)
	if done {
		elapsed = time.Unix(0, ri.finishedNs.Load()).Sub(ri.started)
	}
	s := RunSnapshot{
		ID:          ri.id,
		Label:       o.Label,
		Fingerprint: o.Fingerprint,
		Started:     ri.started,
		Elapsed:     elapsed,
		Done:        done,
		Stage:       p.Stage().String(),
		Counters:    p.Counters(),
		Mem:         MemStats{LimitBytes: o.MemLimit},
		ETA:         -1,
	}
	if o.MemUsed != nil {
		s.Mem.UsedBytes = o.MemUsed()
	}
	if o.MemPeak != nil {
		s.Mem.PeakBytes = o.MemPeak()
	}
	if o.PressureEvents != nil {
		s.Mem.PressureEvents = o.PressureEvents()
	}
	if o.Recorder != nil {
		sum := o.Recorder.Summary()
		s.Trace = &sum
	}
	if done {
		s.Final = ri.final
		s.Strategy = ri.strategy
	} else if fn := ri.strategyFn.Load(); fn != nil {
		s.Strategy = (*fn)()
	}

	s.Phases = phaseProgress(p, o.Weights, now)
	var doneUnits, plannedUnits float64
	for _, ph := range s.Phases {
		doneUnits += ph.Weight * float64(min64(ph.Done, ph.Planned))
		plannedUnits += ph.Weight * float64(ph.Planned)
	}
	switch {
	case done:
		s.Fraction = 1
		s.ETA = 0
	case plannedUnits > 0:
		s.Fraction = doneUnits / plannedUnits
		// An ETA needs a sliver of signal; below half a percent the
		// extrapolation is noise.
		if s.Fraction >= 0.005 {
			s.ETA = time.Duration(float64(elapsed) * (1 - s.Fraction) / s.Fraction)
		}
	}
	return s
}

// phaseProgress derives the four logical phases' done/planned rows from the
// counters. The planning target is RowsExpected when the caller declared
// it, else the rows ingested so far (a moving target: progress reads low
// until ingestion finishes, which is the honest answer for an unbounded
// stream).
func phaseProgress(p *Progress, w PhaseWeights, now time.Time) []PhaseProgress {
	expected := p.RowsExpected.Load()
	ingested := p.RowsIngested.Load()
	total := max64(expected, ingested)
	if total == 0 {
		total = 1 // a registered run that has not started; all fractions 0
	}
	mergePlanned := max64(p.MergeRowsPlanned.Load(), total)
	phases := []PhaseProgress{
		{Name: "ingest", Done: ingested, Planned: total, Weight: w.Ingest},
		{Name: "run-sort", Done: p.RowsSorted.Load(), Planned: total, Weight: w.RunSort},
		{Name: "merge", Done: p.RowsMerged.Load(), Planned: mergePlanned, Weight: w.Merge},
		{Name: "gather", Done: p.RowsGathered.Load(), Planned: total, Weight: w.Gather},
	}
	stageOf := [...]Stage{StageRunGen, StageRunGen, StageMerge, StageGather}
	for i := range phases {
		ph := &phases[i]
		if ph.Planned > 0 {
			ph.Fraction = float64(min64(ph.Done, ph.Planned)) / float64(ph.Planned)
		}
		if entered := p.StageEntered(stageOf[i]); !entered.IsZero() && ph.Done > 0 {
			if dt := now.Sub(entered).Seconds(); dt > 0 {
				ph.RowsPerSec = float64(ph.Done) / dt
			}
		}
	}
	return phases
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
