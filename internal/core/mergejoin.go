package core

import (
	"fmt"

	"rowsort/internal/normkey"
	"rowsort/internal/vector"
)

// MergeJoin computes the inner equi-join of two tables with a sort-merge
// join: both inputs are sorted on their join keys by the relational sorter,
// then merged with full tuple comparisons. It exists here because the paper
// (Section V-B) singles out exactly this pattern — iterating sorted runs
// and fully comparing tuples — as the operation an interpreted engine
// cannot run through the subsort trick, motivating normalized keys.
//
// Join semantics follow SQL: rows whose key contains a NULL never match.
// The output schema is the left schema followed by the right schema.
func MergeJoin(left, right *vector.Table, leftKeys, rightKeys []int, opt Options) (*vector.Table, error) {
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("core: merge join needs matching non-empty key lists (got %d and %d)",
			len(leftKeys), len(rightKeys))
	}
	for i := range leftKeys {
		lk, rk := leftKeys[i], rightKeys[i]
		if lk < 0 || lk >= len(left.Schema) || rk < 0 || rk >= len(right.Schema) {
			return nil, fmt.Errorf("core: join key %d out of range", i)
		}
		if left.Schema[lk].Type != right.Schema[rk].Type {
			return nil, fmt.Errorf("core: join key %d type mismatch: %v vs %v",
				i, left.Schema[lk].Type, right.Schema[rk].Type)
		}
	}

	sortedLeft, err := SortTable(left, sortSpec(leftKeys), opt)
	if err != nil {
		return nil, err
	}
	sortedRight, err := SortTable(right, sortSpec(rightKeys), opt)
	if err != nil {
		return nil, err
	}

	// Materialize both sides as whole columns for the merge scan.
	lcols := materializeColumns(sortedLeft)
	rcols := materializeColumns(sortedRight)
	lkeyCols := pick(lcols, leftKeys)
	rkeyCols := pick(rcols, rightKeys)
	nkeys := make([]normkey.SortKey, len(leftKeys))
	for i, k := range leftKeys {
		nkeys[i] = normkey.SortKey{Type: left.Schema[k].Type}
	}

	outSchema := append(append(vector.Schema{}, left.Schema...), right.Schema...)
	out := vector.NewTable(outSchema)
	var chunk *vector.Chunk
	emit := func(li, ri int) error {
		if chunk == nil {
			chunk = vector.NewChunk(outSchema, vector.DefaultVectorSize)
		}
		for c := range left.Schema {
			vector.AppendValue(chunk.Vectors[c], lcols[c], li)
		}
		for c := range right.Schema {
			vector.AppendValue(chunk.Vectors[len(left.Schema)+c], rcols[c], ri)
		}
		if chunk.Len() == vector.DefaultVectorSize {
			if err := out.AppendChunk(chunk); err != nil {
				return err
			}
			chunk = nil
		}
		return nil
	}

	// The merge: advance whichever side is smaller; on equality, find both
	// tie groups and emit their cross product. Every step performs a full
	// tuple comparison across all key columns.
	li, ri := 0, 0
	ln, rn := sortedLeft.NumRows(), sortedRight.NumRows()
	for li < ln && ri < rn {
		if anyNullKey(lkeyCols, li) {
			li++
			continue
		}
		if anyNullKey(rkeyCols, ri) {
			ri++
			continue
		}
		c := compareAcross(nkeys, lkeyCols, rkeyCols, li, ri)
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			lEnd := li + 1
			for lEnd < ln && !anyNullKey(lkeyCols, lEnd) &&
				normkey.CompareRows(nkeys, lkeyCols, li, lEnd) == 0 {
				lEnd++
			}
			rEnd := ri + 1
			for rEnd < rn && !anyNullKey(rkeyCols, rEnd) &&
				normkey.CompareRows(nkeys, rkeyCols, ri, rEnd) == 0 {
				rEnd++
			}
			for l := li; l < lEnd; l++ {
				for r := ri; r < rEnd; r++ {
					if err := emit(l, r); err != nil {
						return nil, err
					}
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	if chunk != nil && chunk.Len() > 0 {
		if err := out.AppendChunk(chunk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sortSpec(cols []int) []SortColumn {
	keys := make([]SortColumn, len(cols))
	for i, c := range cols {
		keys[i] = SortColumn{Column: c}
	}
	return keys
}

func materializeColumns(t *vector.Table) []*vector.Vector {
	cols := make([]*vector.Vector, len(t.Schema))
	for c := range t.Schema {
		cols[c] = t.Column(c)
	}
	return cols
}

func pick(cols []*vector.Vector, idx []int) []*vector.Vector {
	out := make([]*vector.Vector, len(idx))
	for i, c := range idx {
		out[i] = cols[c]
	}
	return out
}

func anyNullKey(keyCols []*vector.Vector, i int) bool {
	for _, c := range keyCols {
		if !c.Valid(i) {
			return true
		}
	}
	return false
}

// compareAcross compares tuple li of the left key columns with tuple ri of
// the right key columns — a full multi-column comparison per call, the
// access pattern Section V-B describes.
func compareAcross(nkeys []normkey.SortKey, lcols, rcols []*vector.Vector, li, ri int) int {
	for k := range nkeys {
		// Build a pairwise comparison by comparing within a two-vector view.
		c := normkey.CompareValues(nkeys[k], lcols[k], li, rcols[k], ri)
		if c != 0 {
			return c
		}
	}
	return 0
}
