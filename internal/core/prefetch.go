package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"rowsort/internal/mem"
	"rowsort/internal/mergepath"
	"rowsort/internal/normkey"
	"rowsort/internal/obs"
	"rowsort/internal/row"
)

// Spill read-ahead: each merge reader can run its block decoding on a
// bounded prefetch goroutine, so the next block's file read, payload
// decode, and offset-value code computation overlap the loser tree's
// compute on the current block. The prefetcher charges every decoded block
// to the merge's reservation before queuing it, so under a budget
// read-ahead is planned as (1 + Options.ReadAhead) blocks per run and
// never busts the limit.

// spillBlock is one decoded block of a spilled run. keys/codes may be
// sub-slices of buf/codesBuf when the reader is bounded to a key range
// (the partitioned merge trims partition-edge blocks); payload always
// holds the full block, so a served key at position p resolves to payload
// row p+padOff, and a key-row reference with absolute run index i to
// payload row i-payloadStart.
type spillBlock struct {
	buf          []byte // full decoded key rows (recycled in sync mode)
	keys         []byte // served key rows
	codesBuf     []uint32
	codes        []uint32
	payload      *row.RowSet
	payloadStart int    // absolute run index of payload's first row
	padOff       uint32 // keys[0]'s payload offset within the block
	bytes        int64  // accounted footprint (buffer capacities)
}

// blockDecoder sequentially decodes a spilled run's blocks, optionally
// bounded to the key range [lo, hi) on the safeWidth-byte prefix: the
// block index locates the first block that can hold a row >= lo (skipped
// blocks are never read), the fences stop the scan at the first block
// wholly >= hi, and partition-edge blocks are trimmed by binary search.
// It is confined to one goroutine — the merge thread (synchronous mode) or
// a prefetcher.
type blockDecoder struct {
	s     *Sorter
	run   *sortedRun
	f     *os.File
	cr    *countingReader
	br    *bufio.Reader
	ow    *obs.Worker // the decoding goroutine's trace lane
	phase obs.Phase   // PhaseSpillRead (sync) or PhasePrefetch

	withCodes bool
	codeWidth int
	safeWidth int
	lo, hi    []byte

	blockRows  int
	numRows    int
	startBlock int
	readRows   int // absolute row cursor
	lastKey    []byte
	done       bool

	fc     bool   // format-3 file: key sections carry a tag byte
	encBuf []byte // scratch for front-coded key sections
}

// openBlockDecoder opens r's spill file, validates its header, and seeks
// to the first block that can hold a row >= lo (per the fence index).
func (s *Sorter) openBlockDecoder(r *sortedRun, withCodes bool, codeWidth int,
	lo, hi []byte, safeWidth int) (*blockDecoder, error) {
	sf := r.spill
	f, err := os.Open(sf.path)
	if err != nil {
		return nil, fmt.Errorf("core: opening spill file: %w", err)
	}
	d := &blockDecoder{s: s, run: r, f: f,
		withCodes: withCodes, codeWidth: codeWidth,
		safeWidth: safeWidth, lo: lo, hi: hi,
	}
	d.cr = &countingReader{r: f, s: s}
	d.br = bufio.NewReader(d.cr)
	var hdr [spillHeaderLen]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading spill header: %w", err)
	}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case spillMagic:
	case spillMagicFC:
		d.fc = true
	default:
		f.Close()
		return nil, fmt.Errorf("core: bad spill magic in %s", sf.path)
	}
	d.blockRows = int(binary.LittleEndian.Uint32(hdr[4:]))
	d.numRows = int(binary.LittleEndian.Uint64(hdr[8:]))
	if d.blockRows <= 0 {
		f.Close()
		return nil, fmt.Errorf("core: bad spill block size in %s", sf.path)
	}
	if lo != nil && sf.numBlocks() > 0 {
		// The first row >= lo is in the last block whose fence is < lo
		// (every earlier block is wholly < lo), or at a later block's start.
		fences := mergepath.Run{Data: sf.fences, Width: s.rowWidth}
		if j := safeLowerBound(fences, lo, safeWidth); j > 0 {
			d.startBlock = j - 1
		}
		if d.startBlock > 0 {
			if _, err := f.Seek(sf.offs[d.startBlock], io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("core: seeking spill block: %w", err)
			}
			d.br.Reset(d.cr)
			d.readRows = d.startBlock * d.blockRows
		}
	}
	return d, nil
}

// decode reads and decodes the run's next served block, recycling reuse's
// buffers when it can. It returns (nil, nil) at end of the (bounded) run.
// The offset-value codes carry across blocks: codes[0] of a block is
// relative to the previous block's last row; the first served block's
// codes[0] is never read by the tree.
func (d *blockDecoder) decode(reuse *spillBlock) (*spillBlock, error) {
	rw := d.s.rowWidth
	for {
		if d.done || d.readRows >= d.numRows {
			return nil, nil
		}
		blockIdx := d.readRows / d.blockRows
		if d.hi != nil && compareSafe(d.run.spill.fence(blockIdx, rw), d.hi, d.safeWidth) >= 0 {
			// Every row of this block (and all later ones) is >= hi.
			d.done = true
			return nil, nil
		}
		sp := d.ow.Begin(d.phase)
		rows := min(d.blockRows, d.numRows-d.readRows)
		b := reuse
		reuse = nil
		if b == nil {
			b = &spillBlock{}
		}
		buf := b.buf
		if cap(buf) < rows*rw {
			buf = make([]byte, rows*rw)
		} else {
			buf = buf[:rows*rw]
		}
		b.buf = buf
		if err := d.readKeySection(buf, rows, rw); err != nil {
			sp.End()
			return nil, err
		}
		payload, err := row.ReadRowSet(d.br, d.s.layout)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: reading spill block payload: %w", err)
		}
		blk := mergepath.Run{Data: buf, Width: rw}
		a, e := 0, rows
		if d.lo != nil && blockIdx == d.startBlock {
			a = safeLowerBound(blk, d.lo, d.safeWidth)
		}
		if d.hi != nil {
			if e = safeLowerBound(blk, d.hi, d.safeWidth); e < rows {
				d.done = true
			}
		}
		if d.withCodes {
			codes := b.codesBuf
			if cap(codes) < rows {
				codes = make([]uint32, rows)
			} else {
				codes = codes[:rows]
			}
			if d.lastKey == nil {
				codes[0] = 0 // the first served block's code is never read
			} else {
				codes[0] = mergepath.OVCCode(d.lastKey, blk.Row(0), d.codeWidth)
			}
			for i := 1; i < rows; i++ {
				codes[i] = mergepath.OVCCode(blk.Row(i-1), blk.Row(i), d.codeWidth)
			}
			b.codesBuf = codes
			b.codes = codes[a:e]
		}
		payloadStart := d.readRows
		d.readRows += rows
		// The carry for the next block is this block's last row; a
		// tail-trimmed block is the run's last, so the full-block row is
		// always the one the tree saw most recently.
		d.lastKey = append(d.lastKey[:0], blk.Row(rows-1)...)
		sp.End()
		if a >= e {
			if d.done {
				return nil, nil
			}
			reuse = b // whole block below lo: recycle and read the next
			continue
		}
		b.keys = buf[a*rw : e*rw]
		b.payload = payload
		b.payloadStart = payloadStart
		b.padOff = uint32(a)
		b.bytes = int64(cap(buf)) + payload.CapBytes()
		return b, nil
	}
}

// readKeySection reads one block's key rows into buf (rows rows of stride
// rw). Format-2 files store them raw; format-3 files prefix a tag byte —
// raw rows (0) or a length-prefixed front-coded section (1) that decodes in
// place through the scratch buffer. Everything downstream (offset-value
// codes, fences, partition trims) sees the same decoded rows either way.
func (d *blockDecoder) readKeySection(buf []byte, rows, rw int) error {
	if !d.fc {
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return fmt.Errorf("core: reading spill block keys: %w", err)
		}
		return nil
	}
	tag, err := d.br.ReadByte()
	if err != nil {
		return fmt.Errorf("core: reading spill block key tag: %w", err)
	}
	switch tag {
	case 0:
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return fmt.Errorf("core: reading spill block keys: %w", err)
		}
		return nil
	case 1:
		var lenBuf [4]byte
		if _, err := io.ReadFull(d.br, lenBuf[:]); err != nil {
			return fmt.Errorf("core: reading spill block key length: %w", err)
		}
		encLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if encLen <= 0 || encLen > rows*rw {
			return fmt.Errorf("core: front-coded key section of %d bytes for %d rows", encLen, rows)
		}
		if cap(d.encBuf) < encLen {
			d.encBuf = make([]byte, encLen)
		}
		enc := d.encBuf[:encLen]
		if _, err := io.ReadFull(d.br, enc); err != nil {
			return fmt.Errorf("core: reading spill block keys: %w", err)
		}
		if err := normkey.DecodeFrontCoded(buf, enc, rw, d.s.keyWidth, rows); err != nil {
			return fmt.Errorf("core: decoding spill block keys: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown spill key-section tag %d", tag)
	}
}

// close releases the decoder's file handle.
func (d *blockDecoder) close() {
	if d.f != nil {
		d.f.Close()
		d.f = nil
	}
}

// prefetcher runs a blockDecoder on its own goroutine, keeping up to depth
// decoded blocks queued ahead of the consumer. Every queued block's bytes
// are charged to res before it is enqueued; the consumer releases a
// block's share when it retires it, and close drains and releases
// whatever is still in flight.
type prefetcher struct {
	dec  *blockDecoder
	res  *mem.Reservation
	out  chan *spillBlock
	stop chan struct{}
	done chan struct{}
	err  error // set before out closes; read only after out is drained
}

// startPrefetcher launches the read-ahead goroutine over dec.
//
//rowsort:pipeline
func startPrefetcher(dec *blockDecoder, depth int, res *mem.Reservation) *prefetcher {
	pf := &prefetcher{dec: dec, res: res,
		out:  make(chan *spillBlock, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go pf.run()
	return pf
}

// run decodes ahead until end of run, error, or stop. The decoder (and its
// file handle) is owned by this goroutine; close(out) publishes err.
func (pf *prefetcher) run() {
	defer close(pf.done)
	defer pf.dec.close()
	defer close(pf.out)
	for {
		select {
		case <-pf.stop:
			return
		default:
		}
		b, err := pf.dec.decode(nil)
		if err != nil {
			pf.err = err
			return
		}
		if b == nil {
			return
		}
		pf.res.Grow(b.bytes)
		pf.dec.s.prefetchBlocks.Add(1)
		pf.dec.s.prog.PrefetchedBlocks.Add(1)
		select {
		case pf.out <- b:
		case <-pf.stop:
			pf.res.Shrink(b.bytes)
			return
		}
	}
}

// next returns the next decoded block, nil at end of run or error (check
// pf.err then). A block already queued counts as a read-ahead hit; an
// empty queue blocks the merge, and the wait is accounted as stall time.
func (pf *prefetcher) next(s *Sorter) *spillBlock {
	select {
	case b, ok := <-pf.out:
		if ok {
			s.prefetchHits.Add(1)
			s.prog.PrefetchHits.Add(1)
			return b
		}
		return nil
	default:
	}
	t0 := time.Now()
	b, ok := <-pf.out
	s.prefetchStallNs.Add(int64(time.Since(t0)))
	if !ok {
		return nil
	}
	return b
}

// close stops the goroutine and releases every block still queued. After
// it returns the decoder's file is closed and no charge remains for
// undelivered blocks (the consumer still owns its current block's share).
func (pf *prefetcher) close() {
	close(pf.stop)
	for b := range pf.out {
		pf.res.Shrink(b.bytes)
	}
	<-pf.done
}

// compareSafe compares two key rows on the byte-decisive safe prefix —
// the only region where plain byte order is guaranteed to agree with the
// sort's total order (see Sorter.ovcSafeWidth).
//
//rowsort:hotpath
//rowsort:pure
func compareSafe(a, b []byte, safeWidth int) int {
	return bytes.Compare(a[:safeWidth], b[:safeWidth])
}

// safeLowerBound returns the first index in r whose row's safe prefix is
// not below key's. Rows tying on the safe prefix stay together on one side
// of every bound, which is what keeps range partitioning consistent with
// the tie-broken total order.
//
//rowsort:hotpath
func safeLowerBound(r mergepath.Run, key []byte, safeWidth int) int {
	lo, hi := 0, r.Len()
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if compareSafe(r.Row(m), key, safeWidth) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}
