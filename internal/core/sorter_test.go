package core

import (
	"fmt"
	"sort"
	"testing"

	"rowsort/internal/normkey"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// oracleSort returns the table's rows as index order sorted with the
// reference comparator.
func oracleSort(t *vector.Table, keys []SortColumn) ([]*vector.Vector, []int) {
	cols := make([]*vector.Vector, len(t.Schema))
	for c := range t.Schema {
		cols[c] = t.Column(c)
	}
	nkeys := make([]normkey.SortKey, len(keys))
	keyCols := make([]*vector.Vector, len(keys))
	for i, k := range keys {
		order := normkey.Ascending
		if k.Descending {
			order = normkey.Descending
		}
		nulls := normkey.NullsFirst
		if k.NullsLast {
			nulls = normkey.NullsLast
		}
		nkeys[i] = normkey.SortKey{Type: t.Schema[k.Column].Type, Order: order, Nulls: nulls}
		keyCols[i] = cols[k.Column]
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return normkey.CompareRows(nkeys, keyCols, idx[a], idx[b]) < 0
	})
	return cols, idx
}

// checkSorted verifies that got matches the oracle order: key columns agree
// at every position, and the full rows are a permutation of the input.
func checkSorted(t *testing.T, input, got *vector.Table, keys []SortColumn, ctx string) {
	t.Helper()
	if got.NumRows() != input.NumRows() {
		t.Fatalf("%s: got %d rows, want %d", ctx, got.NumRows(), input.NumRows())
	}
	cols, idx := oracleSort(input, keys)
	gotCols := make([]*vector.Vector, len(got.Schema))
	for c := range got.Schema {
		gotCols[c] = got.Column(c)
	}
	for pos, in := range idx {
		for _, k := range keys {
			want := cols[k.Column].Value(in)
			have := gotCols[k.Column].Value(pos)
			if want != have {
				t.Fatalf("%s: position %d key col %d: got %v, want %v", ctx, pos, k.Column, have, want)
			}
		}
	}
	// Whole-row multiset equality.
	counts := map[string]int{}
	for i := 0; i < input.NumRows(); i++ {
		counts[rowKey(cols, i)]++
	}
	for i := 0; i < got.NumRows(); i++ {
		counts[rowKey(gotCols, i)]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("%s: row multiset mismatch for %q (%+d)", ctx, k, c)
		}
	}
}

func rowKey(cols []*vector.Vector, i int) string {
	s := ""
	for _, c := range cols {
		s += fmt.Sprintf("%v|", c.Value(i))
	}
	return s
}

func TestSortTableIntegers(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for _, runSize := range []int{0, 1000} {
			cols := workload.Dist{Random: true}.Generate(10_000, 2, 71)
			tbl := workload.UintColumnsTable(cols)
			keys := []SortColumn{{Column: 0}, {Column: 1}}
			got, err := SortTable(tbl, keys, Options{Threads: threads, RunSize: runSize})
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, tbl, got, keys, fmt.Sprintf("threads=%d runSize=%d", threads, runSize))
		}
	}
}

func TestSortTableCorrelatedMultiKey(t *testing.T) {
	for _, dist := range workload.StandardDists() {
		cols := dist.Generate(6_000, 4, 72)
		tbl := workload.UintColumnsTable(cols)
		keys := []SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
		got, err := SortTable(tbl, keys, Options{Threads: 4, RunSize: 700})
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, tbl, got, keys, dist.String())
	}
}

func TestSortTableDescAndNulls(t *testing.T) {
	tbl := workload.CatalogSales(8_000, 10, 73) // FK columns carry NULLs
	specs := [][]SortColumn{
		{{Column: 0}},
		{{Column: 0, Descending: true}},
		{{Column: 0, NullsLast: true}, {Column: 2, Descending: true}},
		{{Column: 0, Descending: true, NullsLast: true}, {Column: 1}, {Column: 3, Descending: true}},
	}
	for i, keys := range specs {
		got, err := SortTable(tbl, keys, Options{Threads: 3, RunSize: 1500})
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, tbl, got, keys, fmt.Sprintf("spec %d", i))
	}
}

func TestSortTableStrings(t *testing.T) {
	tbl := workload.Customer(5_000, 74)
	keys := []SortColumn{{Column: 4}, {Column: 5}} // last name, first name
	got, err := SortTable(tbl, keys, Options{Threads: 4, RunSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "customer names")
}

func TestSortTableLongStringTieBreak(t *testing.T) {
	// Strings sharing a 12-byte prefix force the tie-break path in both run
	// generation and merge.
	schema := vector.Schema{{Name: "s", Type: vector.Varchar}, {Name: "id", Type: vector.Int32}}
	sv := vector.New(vector.Varchar, 0)
	iv := vector.New(vector.Int32, 0)
	rng := workload.NewRNG(75)
	n := 4000
	for i := 0; i < n; i++ {
		suffix := rng.Intn(1000)
		sv.AppendString(fmt.Sprintf("SHARED-PREFIX-%06d", suffix))
		iv.AppendInt32(int32(i))
	}
	tbl, err := vector.TableFromColumns(schema, sv, iv)
	if err != nil {
		t.Fatal(err)
	}
	keys := []SortColumn{{Column: 0}}
	got, err := SortTable(tbl, keys, Options{Threads: 4, RunSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "long string ties")

	// Also descending.
	keysDesc := []SortColumn{{Column: 0, Descending: true}}
	gotDesc, err := SortTable(tbl, keysDesc, Options{Threads: 2, RunSize: 750})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, gotDesc, keysDesc, "long string ties desc")
}

func TestSortTableNULStrings(t *testing.T) {
	schema := vector.Schema{{Name: "s", Type: vector.Varchar}}
	sv := vector.New(vector.Varchar, 0)
	for _, s := range []string{"a\x00", "a", "a\x00b", "", "a", "a\x00"} {
		sv.AppendString(s)
	}
	tbl, err := vector.TableFromColumns(schema, sv)
	if err != nil {
		t.Fatal(err)
	}
	keys := []SortColumn{{Column: 0}}
	got, err := SortTable(tbl, keys, Options{Threads: 1, RunSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "NUL strings")
}

func TestSortTableForcePdqsort(t *testing.T) {
	cols := workload.Dist{P: 0.5}.Generate(5_000, 2, 76)
	tbl := workload.UintColumnsTable(cols)
	keys := []SortColumn{{Column: 0}, {Column: 1}}
	got, err := SortTable(tbl, keys, Options{ForcePdqsort: true, Threads: 2, RunSize: 800})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "forced pdqsort")
}

func TestSortTableSpill(t *testing.T) {
	dir := t.TempDir()
	tbl := workload.Customer(6_000, 77)
	keys := []SortColumn{{Column: 1}, {Column: 4}}
	got, err := SortTable(tbl, keys, Options{Threads: 3, RunSize: 900, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "spill")
}

func TestSortEmptyAndTiny(t *testing.T) {
	schema := vector.Schema{{Name: "x", Type: vector.Int64}}
	empty := vector.NewTable(schema)
	got, err := SortTable(empty, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatal("empty sort should be empty")
	}

	one := vector.New(vector.Int64, 1)
	one.AppendInt64(-9)
	tiny, err := vector.TableFromColumns(schema, one)
	if err != nil {
		t.Fatal(err)
	}
	got, err = SortTable(tiny, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 || got.Column(0).Value(0) != int64(-9) {
		t.Fatal("single row sort wrong")
	}
}

func TestSorterAPIErrors(t *testing.T) {
	schema := vector.Schema{{Name: "x", Type: vector.Int32}}
	if _, err := NewSorter(schema, nil, Options{}); err == nil {
		t.Fatal("no keys should error")
	}
	if _, err := NewSorter(schema, []SortColumn{{Column: 5}}, Options{}); err == nil {
		t.Fatal("bad column index should error")
	}

	s, err := NewSorter(schema, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("Result before Finalize should error")
	}
	sink := s.NewSink()
	wrong := vector.NewChunk(vector.Schema{{Name: "a", Type: vector.Int32}, {Name: "b", Type: vector.Int32}}, 1)
	if err := sink.Append(wrong); err == nil {
		t.Fatal("wrong arity chunk should error")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append(vector.NewChunk(schema, 0)); err == nil {
		t.Fatal("append to closed sink should error")
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err == nil {
		t.Fatal("double Finalize should error")
	}
	if s.NumRows() != 0 {
		t.Fatal("no rows expected")
	}
}

func TestSorterManualSinkFlow(t *testing.T) {
	cols := workload.Dist{P: 0.25}.Generate(3_000, 2, 78)
	tbl := workload.UintColumnsTable(cols)
	keys := []SortColumn{{Column: 1, Descending: true}, {Column: 0}}
	s, err := NewSorter(tbl.Schema, keys, Options{RunSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 3000 {
		t.Fatalf("NumRows = %d", s.NumRows())
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "manual sink")
}

func TestSortAllTypesTable(t *testing.T) {
	// A table containing every supported type, sorted by several of them.
	rng := workload.NewRNG(79)
	schema := vector.Schema{
		{Name: "b", Type: vector.Bool},
		{Name: "i16", Type: vector.Int16},
		{Name: "f32", Type: vector.Float32},
		{Name: "s", Type: vector.Varchar},
		{Name: "u64", Type: vector.Uint64},
	}
	tbl := vector.NewTable(schema)
	n := 4000
	for start := 0; start < n; start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, n-start)
		c := vector.NewChunk(schema, count)
		for r := 0; r < count; r++ {
			if rng.Float64() < 0.1 {
				c.Vectors[0].AppendNull()
			} else {
				c.Vectors[0].AppendBool(rng.Intn(2) == 1)
			}
			c.Vectors[1].AppendInt16(int16(rng.Intn(64) - 32))
			c.Vectors[2].AppendFloat32(float32(rng.Intn(16)))
			if rng.Float64() < 0.1 {
				c.Vectors[3].AppendNull()
			} else {
				c.Vectors[3].AppendString(fmt.Sprintf("str%02d", rng.Intn(30)))
			}
			c.Vectors[4].AppendUint64(rng.Uint64() % 1024)
		}
		if err := tbl.AppendChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	keys := []SortColumn{
		{Column: 1},
		{Column: 0, NullsLast: true},
		{Column: 3, Descending: true},
		{Column: 2, Descending: true},
		{Column: 4},
	}
	got, err := SortTable(tbl, keys, Options{Threads: 4, RunSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "all types")
}

func TestSortTableCaseInsensitive(t *testing.T) {
	schema := vector.Schema{{Name: "s", Type: vector.Varchar}, {Name: "id", Type: vector.Int32}}
	sv := vector.New(vector.Varchar, 0)
	iv := vector.New(vector.Int32, 0)
	words := []string{"Zebra", "apple", "APPLE", "banana", "Apple", "zebra", "BANANA-SPLIT-LONG"}
	rng := workload.NewRNG(130)
	n := 3000
	for i := 0; i < n; i++ {
		sv.AppendString(words[rng.Intn(len(words))])
		iv.AppendInt32(int32(i))
	}
	tbl, err := vector.TableFromColumns(schema, sv, iv)
	if err != nil {
		t.Fatal(err)
	}
	keys := []SortColumn{{Column: 0, CaseInsensitive: true}}
	got, err := SortTable(tbl, keys, Options{Threads: 3, RunSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != n {
		t.Fatalf("rows = %d", got.NumRows())
	}
	// Verify nondecreasing collated order.
	col := got.Column(0)
	prev := ""
	for i := 0; i < n; i++ {
		cur := normkey.CollationNoCase.Apply(col.Value(i).(string))
		if i > 0 && cur < prev {
			t.Fatalf("collated order broken at %d: %q < %q", i, cur, prev)
		}
		prev = cur
	}
	// And a permutation: count case variants.
	counts := map[string]int{}
	for _, w := range words {
		counts[w] = 0
	}
	for i := 0; i < n; i++ {
		counts[col.Value(i).(string)]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatal("output is not a permutation of input words")
	}
}
