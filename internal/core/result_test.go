package core

import (
	"bytes"
	"fmt"
	"testing"

	"rowsort/internal/row"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// mixedTable builds a table with strings and NULLs across several chunks so
// the gather kernels see every access pattern: multiple runs, varchar heap
// compaction, and NULL validity.
func mixedTable(n int, seed uint64) *vector.Table {
	rng := workload.NewRNG(seed)
	schema := vector.Schema{
		{Name: "id", Type: vector.Int32},
		{Name: "grp", Type: vector.Int16},
		{Name: "name", Type: vector.Varchar},
		{Name: "score", Type: vector.Float64},
	}
	tbl := vector.NewTable(schema)
	for start := 0; start < n; start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, n-start)
		c := vector.NewChunk(schema, count)
		for r := 0; r < count; r++ {
			c.Vectors[0].AppendInt32(int32(rng.Uint32()))
			if rng.Float64() < 0.1 {
				c.Vectors[1].AppendNull()
			} else {
				c.Vectors[1].AppendInt16(int16(rng.Intn(50)))
			}
			if rng.Float64() < 0.15 {
				c.Vectors[2].AppendNull()
			} else {
				c.Vectors[2].AppendString(fmt.Sprintf("name-%04d-%s", rng.Intn(400),
					"xyzpad"[:rng.Intn(6)]))
			}
			c.Vectors[3].AppendFloat64(rng.Float64())
		}
		if err := tbl.AppendChunk(c); err != nil {
			panic(err)
		}
	}
	return tbl
}

// rowify flattens a table into the row format so two tables can be compared
// byte for byte (values, validity, and string contents all land in the flat
// buffers deterministically when append order is fixed).
func rowify(t *testing.T, tbl *vector.Table) *row.RowSet {
	t.Helper()
	rs := row.NewRowSet(row.NewLayout(tbl.Schema.Types()))
	for _, c := range tbl.Chunks {
		if err := rs.AppendChunk(c.Vectors); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

// TestResultParallelEquivalence checks the acceptance criterion directly:
// the parallel vectorized Result is byte-identical to the scalar reference
// at every thread count, including thread counts that do not divide the
// chunk count.
func TestResultParallelEquivalence(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize+123, 81)
	keys := []SortColumn{{Column: 1, NullsLast: true}, {Column: 2, Descending: true}, {Column: 0}}
	s, err := NewSorter(tbl.Schema, keys, Options{Threads: 4, RunSize: 700})
	if err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}

	want, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, want, keys, "scalar reference")
	wantRows := rowify(t, want)

	for _, threads := range []int{1, 2, 3, 7, 64} {
		got, err := s.ResultThreads(threads)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Chunks) != len(want.Chunks) {
			t.Fatalf("threads=%d: %d chunks, want %d", threads, len(got.Chunks), len(want.Chunks))
		}
		for i := range got.Chunks {
			if got.Chunks[i].Len() != want.Chunks[i].Len() {
				t.Fatalf("threads=%d: chunk %d has %d rows, want %d",
					threads, i, got.Chunks[i].Len(), want.Chunks[i].Len())
			}
		}
		gotRows := rowify(t, got)
		if !bytes.Equal(gotRows.Bytes(), wantRows.Bytes()) {
			t.Fatalf("threads=%d: row bytes differ from scalar reference", threads)
		}
		// Row bytes pin every fixed-width value, validity bit, and string
		// (offset, length); compare the string contents as well.
		for r := 0; r < gotRows.Len(); r++ {
			if gotRows.Valid(r, 2) && gotRows.String(r, 2) != wantRows.String(r, 2) {
				t.Fatalf("threads=%d: row %d string %q, want %q",
					threads, r, gotRows.String(r, 2), wantRows.String(r, 2))
			}
		}
	}
}

// TestResultParallelEquivalenceSpill runs the same check through the
// external (spilled) merge, where all references point at the single
// reloaded final run.
func TestResultParallelEquivalenceSpill(t *testing.T) {
	tbl := mixedTable(2*vector.DefaultVectorSize+77, 82)
	keys := []SortColumn{{Column: 2}, {Column: 3, Descending: true}}
	s, err := NewSorter(tbl.Schema, keys, Options{Threads: 3, RunSize: 500, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	want, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, want, keys, "spilled scalar reference")
	wantRows := rowify(t, want)
	for _, threads := range []int{1, 4} {
		got, err := s.ResultThreads(threads)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
			t.Fatalf("threads=%d: spilled result differs from scalar reference", threads)
		}
	}
}

// TestResultEmptyAndErrors covers the degenerate paths of the parallel scan.
func TestResultEmptyAndErrors(t *testing.T) {
	schema := vector.Schema{{Name: "x", Type: vector.Int64}}
	s, err := NewSorter(schema, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ResultThreads(4); err == nil {
		t.Fatal("ResultThreads before Finalize should error")
	}
	if _, err := s.ResultScalar(); err == nil {
		t.Fatal("ResultScalar before Finalize should error")
	}
	sink := s.NewSink()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ResultThreads(8)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || len(got.Chunks) != 0 {
		t.Fatal("empty sorter should produce an empty table")
	}
}
