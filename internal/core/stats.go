package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rowsort/internal/mergepath"
	"rowsort/internal/obs"
)

// StrategyDecision is one run's recorded execution-plan choice: the sort
// that generated the run, the sampled statistics and modeled costs behind
// the choice, and the run's spill/merge hints. It aliases the obs wire type
// so the observability registry serializes decisions without conversion.
type StrategyDecision = obs.StrategyDecision

// SortStats is the unified telemetry snapshot of one sorter: ingestion and
// run-generation counters, spill I/O accounting, memory-budget pressure,
// merge-phase counters, materialization volume, memory high-water mark,
// and wall-clock durations of the three sequential pipeline stages. It is
// the sorter's single stats surface (the old MergeStats and SpillStats
// accessors it superseded are gone). Counters and stage durations are
// always collected; the per-phase span breakdown in Phases is populated
// only when Options.Telemetry is set.
type SortStats struct {
	// RowsIngested is the number of rows appended through sinks (or TopN).
	RowsIngested int64
	// RunsGenerated is the number of thread-local sorted runs cut.
	RunsGenerated int64
	// NormKeyBytes is the logical (uncompressed) volume of normalized key
	// bytes produced during run generation: full-encoding key width per
	// row, excluding payload refs and alignment padding. It is
	// encoding-independent, so the number stays comparable across
	// Options.KeyComp settings; PhysKeyBytes is what was actually emitted
	// (the compressed key width per row), and the gap between the two is
	// the key-compression saving.
	NormKeyBytes int64
	PhysKeyBytes int64
	// KeyEncodings records the sampled per-column encoding decisions, one
	// entry per sort key; empty when no compression plan is active.
	KeyEncodings []KeyEncodingStat
	// DictEscapes counts encoded values the sampled dictionaries and
	// shared prefixes did not cover (dictionary escape codes and
	// shared-prefix class-0/2 encodings).
	DictEscapes int64
	// RunsGroupSorted counts runs sorted via duplicate-run grouping
	// (KeyCompRLE); DupGroupRows is the rows those runs did not move
	// through the radix sort individually (run rows minus groups).
	RunsGroupSorted int64
	DupGroupRows    int64
	// RunsTieRepaired counts lossy compressed runs sorted with the
	// radix-plus-block-repair path instead of comparator pdqsort.
	RunsTieRepaired int64
	// StrategyDecisions records, per generated run, the execution-plan
	// choice and the sampled statistics it came from. Populated on every
	// path (non-adaptive runs record their dictated choice with Forced
	// set), so the log always explains what ran and why.
	StrategyDecisions []StrategyDecision
	// SpillBlocksFrontCoded counts spill blocks whose key section was
	// written front-coded (adaptive sorts; blocks that would not shrink
	// stay raw and are not counted).
	SpillBlocksFrontCoded int64
	// SpillBytesWritten and SpillBytesRead account spill-file I/O. The
	// streaming merge reads every spilled byte exactly once, so after
	// Finalize read equals written; the cascaded ablation re-spills
	// intermediates and reads a multiple.
	SpillBytesWritten int64
	SpillBytesRead    int64
	// SpillFilesRemoved counts spill files successfully deleted (during the
	// streaming merge and by Close); SpillRemoveErrors counts failed
	// removal attempts, whose errors Close also returns.
	SpillFilesRemoved int64
	SpillRemoveErrors int64
	// GatherBytesMoved is the fixed-width payload row bytes moved by result
	// materialization (rows gathered × payload row width).
	GatherBytesMoved int64
	// PeakResidentRunBytes is the high-water mark of bytes charged to the
	// sorter's memory broker at once: sink buffers, sorted runs (key rows
	// plus payload rows and string heaps), pooled buffers and merge blocks.
	PeakResidentRunBytes int64
	// MemoryLimit echoes Options.MemoryLimit (0 = unlimited).
	MemoryLimit int64
	// MemoryPressureEvents counts reservation requests the broker could
	// not satisfy within budget; PressureSpills counts resident runs shed
	// to disk in response. Both zero for unbudgeted sorts.
	MemoryPressureEvents int64
	PressureSpills       int64
	// Merge is the merge phase's comparison counters (see mergepath.Stats).
	Merge mergepath.Stats
	// PrefetchedBlocks counts spill blocks decoded by read-ahead goroutines;
	// PrefetchHits counts merge block requests served from the read-ahead
	// queue without blocking (hits/prefetched is the read-ahead hit rate);
	// MergeStall is the total time the merge spent blocked waiting for a
	// block that was not decoded yet. All zero with ReadAhead disabled.
	PrefetchedBlocks int64
	PrefetchHits     int64
	MergeStall       time.Duration
	// MergePasses, MergePassRuns and MergePassBytes describe the executed
	// multi-pass merge plan: how many intermediate fan-in-reducing passes
	// ran, how many input runs they consumed, and how many bytes they
	// rewrote to disk. MergeFanIn is the final merge's fan-in (the
	// surviving run count); zero when no external merge ran.
	MergePasses    int64
	MergePassRuns  int64
	MergePassBytes int64
	MergeFanIn     int64
	// ExtMergeParts is the partitioned external merge's worker count (0 =
	// the final merge ran sequentially or in memory).
	ExtMergeParts int64
	// DurRunGen, DurMerge and DurGather are the wall-clock durations of the
	// three sequential pipeline stages: first Append to Finalize (run
	// generation, including spill writes), Finalize itself (merge, including
	// spill reads), and Result (materialization). DurTotal spans first
	// Append to the end of Result, so the three stages sum to DurTotal up to
	// the caller's time between stages.
	DurRunGen time.Duration
	DurMerge  time.Duration
	DurGather time.Duration
	DurTotal  time.Duration
	// Phases is the span-level breakdown (per-phase busy time, wall window
	// and span count across all workers); zero unless Options.Telemetry was
	// set.
	Phases obs.Summary
}

// KeyEncodingStat is one sort key's sampled compression decision.
type KeyEncodingStat struct {
	// Column is the key's schema column index.
	Column int
	// Encoding describes the decision, e.g. "dict(n=12,w=1)",
	// "trunc(skip=7,keep=1)" or "full".
	Encoding string
	// Width and FullWidth are the emitted and uncompressed segment widths
	// in bytes, validity byte included.
	Width, FullWidth int
}

// Stats snapshots the sorter's telemetry. It is safe to call at any point
// in the sorter's life, including concurrently with ingestion.
func (s *Sorter) Stats() SortStats {
	st := SortStats{
		RowsIngested:          s.rowsIn.Load(),
		RunsGenerated:         s.runsGen.Load(),
		NormKeyBytes:          s.normKeyBytes.Load(),
		PhysKeyBytes:          s.physKeyBytes.Load(),
		DictEscapes:           s.dictEscapes.Load(),
		RunsGroupSorted:       s.runsGrouped.Load(),
		DupGroupRows:          s.dupGroupRows.Load(),
		RunsTieRepaired:       s.runsTieRepaired.Load(),
		SpillBlocksFrontCoded: s.spillBlocksFC.Load(),
		SpillBytesWritten:     s.spillWritten.Load(),
		SpillBytesRead:        s.spillRead.Load(),
		SpillFilesRemoved:     s.spillRemoved.Load(),
		SpillRemoveErrors:     s.spillRemoveErrs.Load(),
		GatherBytesMoved:      s.gatherBytes.Load(),
		PeakResidentRunBytes:  s.broker.Peak(),
		MemoryLimit:           s.opt.MemoryLimit,
		MemoryPressureEvents:  s.broker.PressureEvents(),
		PressureSpills:        s.pressureSpills.Load(),
		PrefetchedBlocks:      s.prefetchBlocks.Load(),
		PrefetchHits:          s.prefetchHits.Load(),
		MergeStall:            time.Duration(s.prefetchStallNs.Load()),
		MergePasses:           s.mergePasses.Load(),
		MergePassRuns:         s.mergePassRuns.Load(),
		MergePassBytes:        s.mergePassBytes.Load(),
		MergeFanIn:            s.mergeFanIn.Load(),
		ExtMergeParts:         s.extMergeParts.Load(),
		DurGather:             time.Duration(s.durGather.Load()),
		Phases:                s.rec.Summary(),
	}
	s.mu.Lock()
	st.Merge = s.mergeStats
	st.StrategyDecisions = append([]StrategyDecision(nil), s.decisions...)
	if p := s.enc.Plan(); p != nil {
		nkeys := s.enc.Keys()
		st.KeyEncodings = make([]KeyEncodingStat, len(nkeys))
		for i, nk := range nkeys {
			end := s.enc.Width()
			if i+1 < len(nkeys) {
				end = s.enc.Offset(i + 1)
			}
			st.KeyEncodings[i] = KeyEncodingStat{
				Column:    nk.Column,
				Encoding:  p.Cols[i].String(),
				Width:     end - s.enc.Offset(i),
				FullWidth: fullSegWidth(nk),
			}
		}
	}
	s.mu.Unlock()

	// Stage durations from the lifecycle timestamps (ns since s.epoch,
	// stored +1 so zero means "not reached"). Stages still in progress
	// report their elapsed time so far.
	now := s.sinceEpoch()
	first := s.tFirstAppend.Load()
	finStart := s.tFinalizeStart.Load()
	finEnd := s.tFinalizeEnd.Load()
	if first > 0 {
		end := now
		if finStart > 0 {
			end = finStart - 1
		}
		st.DurRunGen = time.Duration(end - (first - 1))
	}
	if finStart > 0 {
		end := now
		if finEnd > 0 {
			end = finEnd - 1
		}
		st.DurMerge = time.Duration(end - (finStart - 1))
	}
	if first > 0 {
		end := now
		if last := s.tResultEnd.Load(); last > 0 {
			end = last - 1
		}
		st.DurTotal = time.Duration(end - (first - 1))
	}
	return st
}

// algoCount is one algorithm's run tally in the decision log.
type algoCount struct {
	algo string
	runs int
}

// strategyAlgoCounts tallies the decision log by executed algorithm, in
// stable (sorted) algorithm-name order.
func (st SortStats) strategyAlgoCounts() []algoCount {
	if len(st.StrategyDecisions) == 0 {
		return nil
	}
	byAlgo := make(map[string]int)
	for _, d := range st.StrategyDecisions {
		byAlgo[d.Algo]++
	}
	out := make([]algoCount, 0, len(byAlgo))
	for algo, runs := range byAlgo {
		out = append(out, algoCount{algo, runs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].algo < out[j].algo })
	return out
}

// String renders the stats as an aligned multi-line report.
func (st SortStats) String() string {
	var b strings.Builder
	row := func(name, val string) { fmt.Fprintf(&b, "%-24s %s\n", name, val) }
	row("rows ingested", fmt.Sprintf("%d", st.RowsIngested))
	row("runs generated", fmt.Sprintf("%d", st.RunsGenerated))
	row("normalized key bytes", fmt.Sprintf("%d", st.NormKeyBytes))
	if len(st.KeyEncodings) > 0 {
		parts := make([]string, len(st.KeyEncodings))
		for i, ke := range st.KeyEncodings {
			parts[i] = fmt.Sprintf("col%d=%s %d/%dB", ke.Column, ke.Encoding, ke.Width, ke.FullWidth)
		}
		row("key encodings", strings.Join(parts, ", "))
		pct := float64(0)
		if st.NormKeyBytes > 0 {
			pct = 100 * float64(st.PhysKeyBytes) / float64(st.NormKeyBytes)
		}
		row("physical key bytes", fmt.Sprintf("%d (%.0f%% of logical)", st.PhysKeyBytes, pct))
	}
	if st.DictEscapes > 0 {
		row("dict/prefix escapes", fmt.Sprintf("%d", st.DictEscapes))
	}
	if st.RunsGroupSorted > 0 {
		row("rle group sort", fmt.Sprintf("%d runs, %d duplicate rows grouped", st.RunsGroupSorted, st.DupGroupRows))
	}
	if st.RunsTieRepaired > 0 {
		row("tie-repaired runs", fmt.Sprintf("%d", st.RunsTieRepaired))
	}
	if byAlgo := st.strategyAlgoCounts(); len(byAlgo) > 0 {
		parts := make([]string, len(byAlgo))
		for i, ac := range byAlgo {
			parts[i] = fmt.Sprintf("%s=%d", ac.algo, ac.runs)
		}
		row("run sort strategy", strings.Join(parts, ", "))
	}
	if st.SpillBlocksFrontCoded > 0 {
		row("front-coded spill blocks", fmt.Sprintf("%d", st.SpillBlocksFrontCoded))
	}
	row("spill written / read", fmt.Sprintf("%d / %d bytes", st.SpillBytesWritten, st.SpillBytesRead))
	row("spill files removed", fmt.Sprintf("%d (%d errors)", st.SpillFilesRemoved, st.SpillRemoveErrors))
	row("gather bytes moved", fmt.Sprintf("%d", st.GatherBytesMoved))
	row("peak resident run bytes", fmt.Sprintf("%d", st.PeakResidentRunBytes))
	if st.MemoryLimit > 0 {
		row("memory limit", fmt.Sprintf("%d bytes", st.MemoryLimit))
	}
	if st.MemoryPressureEvents > 0 || st.PressureSpills > 0 {
		row("memory pressure", fmt.Sprintf("%d events, %d runs spilled",
			st.MemoryPressureEvents, st.PressureSpills))
	}
	row("merge comparisons", fmt.Sprintf("%d (%d ovc hits, %d full, %d tie-breaks)",
		st.Merge.Comparisons, st.Merge.OVCHits, st.Merge.FullCompares, st.Merge.TieBreaks))
	if st.Merge.DupRunHits > 0 {
		row("merge dup-run hits", fmt.Sprintf("%d", st.Merge.DupRunHits))
	}
	if st.PrefetchedBlocks > 0 {
		row("spill read-ahead", fmt.Sprintf("%d blocks, %d hits (%.0f%%), %s stalled",
			st.PrefetchedBlocks, st.PrefetchHits,
			100*float64(st.PrefetchHits)/float64(st.PrefetchedBlocks),
			st.MergeStall.Round(time.Microsecond)))
	}
	if st.MergePasses > 0 {
		row("merge passes", fmt.Sprintf("%d (%d runs, %d bytes rewritten)",
			st.MergePasses, st.MergePassRuns, st.MergePassBytes))
	}
	if st.MergeFanIn > 0 {
		fan := fmt.Sprintf("%d-way", st.MergeFanIn)
		if st.ExtMergeParts > 0 {
			fan += fmt.Sprintf(" x %d partitions", st.ExtMergeParts)
		}
		row("final merge", fan)
	}
	row("run generation", st.DurRunGen.Round(time.Microsecond).String())
	row("merge", st.DurMerge.Round(time.Microsecond).String())
	row("gather", st.DurGather.Round(time.Microsecond).String())
	row("total", st.DurTotal.Round(time.Microsecond).String())
	if phases := st.Phases.String(); st.Phases.Workers > 0 {
		b.WriteString(phases)
	}
	return b.String()
}

// WritePrometheus writes the stats in Prometheus text exposition format
// (rowsort_* metrics), including the per-phase busy times when telemetry
// was enabled. All families go through obs.PromWriter, so # HELP/# TYPE
// metadata and label escaping are uniform; obs.ValidatePrometheus
// parse-checks the output in the tests.
func (st SortStats) WritePrometheus(w io.Writer) error {
	var pw obs.PromWriter
	counter := func(name, help string, v float64) {
		pw.Family(name, "counter", help)
		pw.Sample(nil, v)
	}
	gauge := func(name, help string, v float64) {
		pw.Family(name, "gauge", help)
		pw.Sample(nil, v)
	}
	counter("rowsort_rows_ingested_total", "Rows appended through sinks.", float64(st.RowsIngested))
	counter("rowsort_runs_generated_total", "Thread-local sorted runs cut.", float64(st.RunsGenerated))
	counter("rowsort_normalized_key_bytes_total", "Logical (uncompressed) normalized key bytes produced.", float64(st.NormKeyBytes))
	counter("rowsort_physical_key_bytes_total", "Normalized key bytes actually emitted (compressed encodings).", float64(st.PhysKeyBytes))
	counter("rowsort_key_escapes_total", "Values outside the sampled dictionary or shared prefix.", float64(st.DictEscapes))
	counter("rowsort_rle_runs_total", "Runs sorted via duplicate-run grouping.", float64(st.RunsGroupSorted))
	counter("rowsort_rle_dup_rows_total", "Rows grouped away from individual sorting.", float64(st.DupGroupRows))
	counter("rowsort_tie_repaired_runs_total", "Lossy compressed runs sorted radix-plus-repair.", float64(st.RunsTieRepaired))
	if byAlgo := st.strategyAlgoCounts(); len(byAlgo) > 0 {
		pw.Family("rowsort_strategy_runs_total", "counter", "Runs generated per selected sort algorithm.")
		for _, ac := range byAlgo {
			pw.Sample([]string{"algo", ac.algo}, float64(ac.runs))
		}
	}
	counter("rowsort_spill_fc_blocks_total", "Spill blocks written with front-coded key sections.", float64(st.SpillBlocksFrontCoded))
	counter("rowsort_spill_written_bytes_total", "Bytes written to spill files.", float64(st.SpillBytesWritten))
	counter("rowsort_spill_read_bytes_total", "Bytes read back from spill files.", float64(st.SpillBytesRead))
	counter("rowsort_spill_files_removed_total", "Spill files deleted.", float64(st.SpillFilesRemoved))
	counter("rowsort_spill_remove_errors_total", "Failed spill-file removals.", float64(st.SpillRemoveErrors))
	counter("rowsort_gather_bytes_total", "Payload row bytes moved by materialization.", float64(st.GatherBytesMoved))
	gauge("rowsort_peak_resident_run_bytes", "High-water mark of resident run bytes.", float64(st.PeakResidentRunBytes))
	gauge("rowsort_mem_limit_bytes", "Configured memory budget (0 = unlimited).", float64(st.MemoryLimit))
	counter("rowsort_mem_pressure_events_total", "Reservations the broker could not satisfy within budget.", float64(st.MemoryPressureEvents))
	counter("rowsort_pressure_spills_total", "Resident runs shed to disk under memory pressure.", float64(st.PressureSpills))
	counter("rowsort_merge_comparisons_total", "Two-row matches played in the merge.", float64(st.Merge.Comparisons))
	counter("rowsort_merge_ovc_hits_total", "Matches decided by offset-value codes alone.", float64(st.Merge.OVCHits))
	counter("rowsort_merge_tie_breaks_total", "Matches resolved by the tie-break comparator.", float64(st.Merge.TieBreaks))
	counter("rowsort_merge_dup_run_hits_total", "Merge steps decided by the duplicate-run fast path.", float64(st.Merge.DupRunHits))
	counter("rowsort_prefetch_blocks_total", "Spill blocks decoded by read-ahead goroutines.", float64(st.PrefetchedBlocks))
	counter("rowsort_prefetch_hits_total", "Merge block requests served without blocking.", float64(st.PrefetchHits))
	gauge("rowsort_merge_stall_seconds", "Time the merge spent waiting for spill blocks.", st.MergeStall.Seconds())
	counter("rowsort_merge_passes_total", "Intermediate fan-in-reducing merge passes.", float64(st.MergePasses))
	counter("rowsort_merge_pass_runs_total", "Input runs consumed by intermediate merge passes.", float64(st.MergePassRuns))
	counter("rowsort_merge_pass_bytes_total", "Bytes rewritten to disk by intermediate merge passes.", float64(st.MergePassBytes))
	gauge("rowsort_merge_fan_in", "The final external merge's fan-in (0 = none ran).", float64(st.MergeFanIn))
	gauge("rowsort_ext_merge_partitions", "Partitioned external merge worker count (0 = sequential).", float64(st.ExtMergeParts))
	gauge("rowsort_stage_run_generation_seconds", "Wall time of the run-generation stage.", st.DurRunGen.Seconds())
	gauge("rowsort_stage_merge_seconds", "Wall time of the merge stage.", st.DurMerge.Seconds())
	gauge("rowsort_stage_gather_seconds", "Wall time of the materialization stage.", st.DurGather.Seconds())
	gauge("rowsort_stage_total_seconds", "Wall time first Append to end of Result.", st.DurTotal.Seconds())
	if st.Phases.Workers > 0 {
		pw.Family("rowsort_phase_busy_seconds", "counter", "Summed span time per phase across workers.")
		for p := 0; p < obs.NumPhases; p++ {
			pw.Sample([]string{"phase", obs.Phase(p).String()}, st.Phases.Phases[p].Busy.Seconds())
		}
	}
	return pw.Flush(w)
}
