package core

import (
	"fmt"
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// topNOracle sorts the whole table and truncates to limit.
func topNOracle(t *testing.T, tbl *vector.Table, keys []SortColumn, limit int) *vector.Table {
	t.Helper()
	full, err := SortTable(tbl, keys, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := vector.NewTable(tbl.Schema)
	taken := 0
	for _, c := range full.Chunks {
		if taken >= limit {
			break
		}
		count := min(c.Len(), limit-taken)
		nc := vector.NewChunk(tbl.Schema, count)
		for ci, v := range c.Vectors {
			for r := 0; r < count; r++ {
				vector.AppendValue(nc.Vectors[ci], v, r)
			}
		}
		if err := out.AppendChunk(nc); err != nil {
			t.Fatal(err)
		}
		taken += count
	}
	return out
}

func runTopN(t *testing.T, tbl *vector.Table, keys []SortColumn, limit int) *vector.Table {
	t.Helper()
	top, err := NewTopN(tbl.Schema, keys, limit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tbl.Chunks {
		if err := top.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := top.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkKeyColumnsEqual compares only key columns positionally (rows tied on
// every key may legitimately differ between top-N and full sort).
func checkKeyColumnsEqual(t *testing.T, want, got *vector.Table, keys []SortColumn, ctx string) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: got %d rows, want %d", ctx, got.NumRows(), want.NumRows())
	}
	for _, k := range keys {
		wc, gc := want.Column(k.Column), got.Column(k.Column)
		for i := 0; i < wc.Len(); i++ {
			if wc.Value(i) != gc.Value(i) {
				t.Fatalf("%s: row %d key col %d: got %v, want %v",
					ctx, i, k.Column, gc.Value(i), wc.Value(i))
			}
		}
	}
}

func TestTopNMatchesFullSort(t *testing.T) {
	tbl := workload.CatalogSales(5_000, 10, 101)
	keys := []SortColumn{{Column: 0, NullsLast: true}, {Column: 3, Descending: true}}
	for _, limit := range []int{1, 10, 100, 2_499, 5_000, 7_000} {
		got := runTopN(t, tbl, keys, limit)
		want := topNOracle(t, tbl, keys, min(limit, 5_000))
		checkKeyColumnsEqual(t, want, got, keys, fmt.Sprintf("limit=%d", limit))
	}
}

func TestTopNZeroLimit(t *testing.T) {
	tbl := workload.CatalogSales(500, 1, 102)
	got := runTopN(t, tbl, []SortColumn{{Column: 0}}, 0)
	if got.NumRows() != 0 {
		t.Fatalf("limit 0 returned %d rows", got.NumRows())
	}
}

func TestTopNStringsWithTies(t *testing.T) {
	tbl := workload.Customer(3_000, 103)
	keys := []SortColumn{{Column: 4}, {Column: 5}} // names: heavy duplicates
	got := runTopN(t, tbl, keys, 50)
	want := topNOracle(t, tbl, keys, 50)
	checkKeyColumnsEqual(t, want, got, keys, "names top 50")
}

func TestTopNLongStringTieBreak(t *testing.T) {
	schema := vector.Schema{{Name: "s", Type: vector.Varchar}}
	sv := vector.New(vector.Varchar, 0)
	rng := workload.NewRNG(104)
	for i := 0; i < 1000; i++ {
		sv.AppendString(fmt.Sprintf("COMMON-PREFIX-%05d", rng.Intn(400)))
	}
	tbl, err := vector.TableFromColumns(schema, sv)
	if err != nil {
		t.Fatal(err)
	}
	keys := []SortColumn{{Column: 0}}
	got := runTopN(t, tbl, keys, 25)
	want := topNOracle(t, tbl, keys, 25)
	checkKeyColumnsEqual(t, want, got, keys, "long string ties")
}

func TestTopNErrors(t *testing.T) {
	schema := vector.Schema{{Name: "x", Type: vector.Int32}}
	if _, err := NewTopN(schema, []SortColumn{{Column: 0}}, -1, Options{}); err == nil {
		t.Fatal("negative limit should error")
	}
	if _, err := NewTopN(schema, nil, 5, Options{}); err == nil {
		t.Fatal("no keys should error")
	}
	top, err := NewTopN(schema, []SortColumn{{Column: 0}}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := vector.NewChunk(vector.Schema{{Name: "a", Type: vector.Int32}, {Name: "b", Type: vector.Int32}}, 1)
	if err := top.Append(bad); err == nil {
		t.Fatal("wrong arity should error")
	}
}

func TestTopNDescendingIntegers(t *testing.T) {
	vals := workload.ShuffledInt32s(10_000, 105)
	tbl, err := vector.TableFromColumns(
		vector.Schema{{Name: "v", Type: vector.Int32}}, vector.FromInt32(vals))
	if err != nil {
		t.Fatal(err)
	}
	keys := []SortColumn{{Column: 0, Descending: true}}
	got := runTopN(t, tbl, keys, 7)
	for i := 0; i < 7; i++ {
		if got.Column(0).Value(i).(int32) != int32(9999-i) {
			t.Fatalf("row %d = %v", i, got.Column(0).Value(i))
		}
	}
}
