package core

import (
	"fmt"
	"strings"
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// tablesEqual asserts a and b hold identical rows in identical order. The
// keycomp workloads make payloads deterministic functions of the key
// columns, so even where the sort order leaves equal keys unordered the
// interchangeable rows are bytewise identical and this comparison is exact.
func tablesEqual(t *testing.T, want, got *vector.Table, ctx string) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: got %d rows, want %d", ctx, got.NumRows(), want.NumRows())
	}
	for c := range want.Schema {
		wc, gc := want.Column(c), got.Column(c)
		for i := 0; i < want.NumRows(); i++ {
			if wv, gv := wc.Value(i), gc.Value(i); wv != gv {
				t.Fatalf("%s: row %d col %d: got %v, want %v", ctx, i, c, gv, wv)
			}
		}
	}
}

// TestKeyCompEquivalence is the compressed-key acceptance grid: for every
// workload shape the encodings target (low-cardinality strings, duplicate
// -heavy integers, shared prefixes, uniform high-cardinality, NULL-bearing
// multi-key, collated names), each compression arm must produce output
// byte-identical to the uncompressed sort across thread counts and a
// forced-spill configuration.
func TestKeyCompEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		tbl  *vector.Table
		keys []SortColumn
	}{
		{"low-card-strings", workload.LowCardStrings(8_000, 40, 91),
			[]SortColumn{{Column: 0}}},
		{"low-card-strings-desc", workload.LowCardStrings(8_000, 300, 191),
			[]SortColumn{{Column: 0, Descending: true, NullsLast: true}}},
		{"dup-heavy-ints", workload.DupHeavyInts(10_000, 50, 92),
			[]SortColumn{{Column: 0}}},
		{"dup-heavy-ints-desc", workload.DupHeavyInts(10_000, 500, 192),
			[]SortColumn{{Column: 0, Descending: true}}},
		{"shared-prefix", workload.SharedPrefixStrings(8_000, 93),
			[]SortColumn{{Column: 0}}},
		{"uniform-int64", workload.UniformInt64s(6_000, 94),
			[]SortColumn{{Column: 0}}},
		// All five columns sort, so NULL-tied rows are fully identical and
		// interchangeable; FK columns carry NULLs.
		{"catalog-sales-nulls", workload.CatalogSales(8_000, 10, 95),
			[]SortColumn{{Column: 0, NullsLast: true}, {Column: 1, Descending: true},
				{Column: 2}, {Column: 3, Descending: true, NullsLast: true}, {Column: 4}}},
		// Skewed name pools with a unique tiebreaker key: dictionary-friendly
		// strings under case-insensitive collation, total order guaranteed.
		{"customer-names", workload.Customer(6_000, 96),
			[]SortColumn{{Column: 4, CaseInsensitive: true}, {Column: 5}, {Column: 0}}},
	}
	arms := []struct {
		name string
		kc   KeyComp
	}{
		{"dict", KeyCompDict},
		{"trunc", KeyCompTrunc},
		{"rle", KeyCompRLE},
		{"all", KeyCompAll},
	}
	for _, w := range workloads {
		for _, cfg := range []struct {
			name    string
			threads int
			spill   bool
		}{
			{"t1", 1, false},
			{"t4", 4, false},
			{"t4-spill", 4, true},
		} {
			opt := Options{Threads: cfg.threads, RunSize: 1_000}
			if cfg.spill {
				opt.SpillDir = t.TempDir()
			}
			base, err := SortTable(w.tbl, w.keys, opt)
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", w.name, cfg.name, err)
			}
			checkSorted(t, w.tbl, base, w.keys, w.name+"/"+cfg.name+" baseline")
			for _, arm := range arms {
				armOpt := opt
				armOpt.KeyComp = arm.kc
				if cfg.spill {
					armOpt.SpillDir = t.TempDir()
				}
				got, err := SortTable(w.tbl, w.keys, armOpt)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", w.name, cfg.name, arm.name, err)
				}
				tablesEqual(t, base, got, fmt.Sprintf("%s/%s/%s", w.name, cfg.name, arm.name))
			}
		}
	}
}

// TestKeyCompStatsDict asserts the dictionary plan engages on
// low-cardinality strings and shrinks the physical key volume.
func TestKeyCompStatsDict(t *testing.T) {
	tbl := workload.LowCardStrings(8_000, 40, 31)
	keys := []SortColumn{{Column: 0}}
	_, st, err := SortTableStats(tbl, keys, Options{Threads: 2, RunSize: 1_000, KeyComp: KeyCompDict})
	if err != nil {
		t.Fatal(err)
	}
	if st.PhysKeyBytes >= st.NormKeyBytes {
		t.Fatalf("dict: physical key bytes %d not below logical %d", st.PhysKeyBytes, st.NormKeyBytes)
	}
	if len(st.KeyEncodings) != 1 {
		t.Fatalf("dict: KeyEncodings = %v, want one entry", st.KeyEncodings)
	}
	ke := st.KeyEncodings[0]
	if !strings.Contains(ke.Encoding, "dict") {
		t.Fatalf("dict: column encoding = %q, want dictionary", ke.Encoding)
	}
	if ke.Width >= ke.FullWidth {
		t.Fatalf("dict: segment width %d not below full width %d", ke.Width, ke.FullWidth)
	}
}

// TestKeyCompStatsDictEscapes asserts out-of-sample values are counted: a
// plan built from an unrepresentative sample must escape the rest.
func TestKeyCompStatsDictEscapes(t *testing.T) {
	tbl := workload.LowCardStrings(6_000, 256, 33)
	keys := []SortColumn{{Column: 0}}
	s, err := NewSorter(tbl.Schema, keys, Options{Threads: 2, RunSize: 1_000, KeyComp: KeyCompDict})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Plan from a sample drawn from a quarter of the value pool: the other
	// three quarters stay out of the dictionary and must take escape codes.
	sample := workload.LowCardStrings(2_000, 64, 133)
	if err := s.PlanCompression(sample.Chunks); err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "escape-heavy dict sort")
	if st := s.Stats(); st.DictEscapes == 0 {
		t.Fatal("narrow sample produced no dictionary escapes")
	}
}

// TestKeyCompStatsRLE asserts duplicate-run group sorting engages on
// duplicate-heavy integers.
func TestKeyCompStatsRLE(t *testing.T) {
	tbl := workload.DupHeavyInts(12_000, 50, 32)
	keys := []SortColumn{{Column: 0}}
	_, st, err := SortTableStats(tbl, keys, Options{Threads: 2, RunSize: 2_000, KeyComp: KeyCompRLE})
	if err != nil {
		t.Fatal(err)
	}
	if st.RunsGroupSorted == 0 {
		t.Fatal("rle: no runs were group-sorted on a 50-distinct-key workload")
	}
	if st.DupGroupRows == 0 {
		t.Fatal("rle: group sorting reported zero grouped duplicate rows")
	}
}

// TestKeyCompStatsTrunc asserts prefix truncation engages on shared-prefix
// strings and that the lossy runs go through the tie-repair path.
func TestKeyCompStatsTrunc(t *testing.T) {
	tbl := workload.SharedPrefixStrings(8_000, 34)
	keys := []SortColumn{{Column: 0}}
	_, st, err := SortTableStats(tbl, keys, Options{Threads: 2, RunSize: 1_000, KeyComp: KeyCompTrunc})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.KeyEncodings) != 1 || !strings.Contains(st.KeyEncodings[0].Encoding, "trunc") {
		t.Fatalf("trunc: KeyEncodings = %v, want a truncated column", st.KeyEncodings)
	}
}

// TestPlanCompressionOrdering pins the contract that compression planning
// happens before ingestion, and that disabled compression is a no-op.
func TestPlanCompressionOrdering(t *testing.T) {
	tbl := workload.LowCardStrings(2_000, 10, 35)
	keys := []SortColumn{{Column: 0}}

	s, err := NewSorter(tbl.Schema, keys, Options{KeyComp: KeyCompDict})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.NewSink().Append(tbl.Chunks[0]); err != nil {
		t.Fatal(err)
	}
	err = s.PlanCompression(tbl.Chunks)
	if err == nil || !strings.Contains(err.Error(), "before ingestion") {
		t.Fatalf("PlanCompression after Append: err = %v, want ordering error", err)
	}

	// With compression disabled the call is a declared no-op even
	// mid-ingestion.
	s2, err := NewSorter(tbl.Schema, keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.NewSink().Append(tbl.Chunks[0]); err != nil {
		t.Fatal(err)
	}
	if err := s2.PlanCompression(tbl.Chunks); err != nil {
		t.Fatalf("disabled PlanCompression: %v", err)
	}
}

// TestKeyCompOptionValidation pins the Options.KeyComp bit check.
func TestKeyCompOptionValidation(t *testing.T) {
	tbl := workload.UniformInt64s(100, 36)
	keys := []SortColumn{{Column: 0}}
	if _, err := SortTable(tbl, keys, Options{KeyComp: KeyComp(0x80)}); err == nil {
		t.Fatal("unknown KeyComp bits should fail validation")
	}
	if _, err := SortTable(tbl, keys, Options{KeyCompSampleRows: -1}); err == nil {
		t.Fatal("negative KeyCompSampleRows should fail validation")
	}
}
