package core

import (
	"errors"
	"fmt"
	"sync"

	"rowsort/internal/mergepath"
	"rowsort/internal/obs"
	"rowsort/internal/row"
)

// Partitioned parallel external merge: the eager merge of spilled runs
// fans out across Options.ExtMergeThreads workers, mirroring what the
// in-memory path does with k-way Merge Path. The spill files' block
// indexes stand in for random access: KWaySplit over the runs' fence keys
// (every block's first key row) picks balanced boundary keys, each worker
// opens range-bounded block readers that seek straight to their first
// relevant block, and the workers' outputs concatenate into the final
// sorted order. Partition bounds are compared only on the byte-decisive
// safe key prefix, so rows that tie beyond it are never split across
// workers and the output is byte-identical to the sequential merge at
// every worker count.

// minExtPartitionRows gates the partitioned merge: below this many output
// rows per worker the partition setup (splitter probes, boundary-block
// re-reads, per-worker readers) costs more than the parallelism returns,
// and the sequential single-pass merge runs instead.
const minExtPartitionRows = 1 << 13

// partResult is one worker's merged slice of the output.
type partResult struct {
	keys    []byte
	payload *row.RowSet
	rows    int
	stats   mergepath.Stats
	err     error
}

// externalFinalizeParallel tries to run the eager external merge
// partitioned across workers. It returns done=false (and no error) when
// the sort should fall back to the sequential merge: too few rows per
// worker, a run still memory-resident, or no usable boundary keys (all
// fences tie on the safe prefix).
//
//rowsort:pipeline
func (s *Sorter) externalFinalizeParallel(ids []uint32) (bool, error) {
	parts := s.opt.extMergeThreads()
	total := 0
	anyTie := false
	for _, id := range ids {
		r := s.runs[id]
		if r.spill == nil {
			return false, nil // fences only exist for spilled runs
		}
		total += r.rows
		anyTie = anyTie || r.tieBreak
	}
	if mp := total / minExtPartitionRows; mp < parts {
		parts = mp
	}
	if parts <= 1 {
		return false, nil
	}
	safe := s.ovcSafeWidth(anyTie)
	splitters := s.partitionSplitters(ids, parts, safe)
	if len(splitters) == 0 {
		return false, nil
	}

	// Register the per-worker output runs up front (Finalize holds s.mu, so
	// no further locking): worker w rewrites its key rows' references to
	// run finalBase+w, and the concatenated key rows become finalKeys —
	// Result resolves references per run, so per-worker payloads need no
	// rewriting into one set.
	rw := s.rowWidth
	finalBase := uint32(len(s.runs))
	nparts := len(splitters) + 1
	outRuns := make([]*sortedRun, nparts)
	for w := range outRuns {
		outRuns[w] = &sortedRun{id: finalBase + uint32(w), tieBreak: anyTie}
		s.runs = append(s.runs, outRuns[w])
	}

	results := make([]partResult, nparts)
	hint := total/nparts + total/(nparts*8) + 64
	var wg sync.WaitGroup
	for w := 0; w < nparts; w++ {
		var lo, hi []byte
		if w > 0 {
			lo = splitters[w-1]
		}
		if w < len(splitters) {
			hi = splitters[w]
		}
		wg.Add(1)
		go func(w int, lo, hi []byte) {
			defer wg.Done()
			s.rec.Do("merge", func() {
				results[w] = s.mergePartition(ids, finalBase+uint32(w), lo, hi, hint)
			})
		}(w, lo, hi)
	}
	wg.Wait()

	var errs []error
	for w := range results {
		if results[w].err != nil {
			errs = append(errs, results[w].err)
		}
	}
	if len(errs) > 0 {
		for w := range results {
			if results[w].err == nil {
				s.putRowSet(results[w].payload)
			}
		}
		return true, errors.Join(errs...)
	}
	n := 0
	for w := range results {
		n += results[w].rows
	}
	if n != total {
		return true, fmt.Errorf("core: partitioned external merge produced %d of %d rows", n, total)
	}

	finalKeys := make([]byte, 0, total*rw)
	var st mergepath.Stats
	charge := int64(0)
	for w := range results {
		finalKeys = append(finalKeys, results[w].keys...)
		outRuns[w].payload = results[w].payload
		outRuns[w].rows = results[w].rows
		charge += outRuns[w].payload.CapBytes()
		st.Add(results[w].stats)
	}
	st.BytesMoved = uint64(len(finalKeys))
	s.mergeStats.Add(st)
	s.finalKeys = finalKeys
	s.runRes.Grow(charge + int64(cap(finalKeys)))

	// The inputs are fully consumed: their files go now (each was shared by
	// every worker, so removal waits until all of them have finished).
	for _, id := range ids {
		r := s.runs[id]
		if r.spill != nil {
			s.removeSpillFile(r.spill.path)
			r.spill = nil
		}
		s.releaseRun(r)
	}
	s.extMergeParts.Store(int64(nparts))
	return true, nil
}

// mergePartition merges the key range [lo, hi) of the given runs on one
// worker: range-bounded block readers (with read-ahead) feed the
// offset-value-coded loser tree, and the output accumulates into a
// worker-private key buffer and payload set registered as run outID.
func (s *Sorter) mergePartition(ids []uint32, outID uint32, lo, hi []byte, hint int) partResult {
	mw := s.rec.Worker("merge")
	sp := mw.Begin(obs.PhaseMerge)
	defer sp.End()
	res := s.broker.Reserve("merge", 0)
	defer res.Release()
	e, err := s.openExtMergeRange(ids, mw, res, lo, hi)
	if err != nil {
		return partResult{err: err}
	}
	defer e.close(false)

	rw := s.rowWidth
	out := s.getRowSet()
	out.Reserve(hint)
	e.dst = out
	keys := make([]byte, 0, hint*rw)
	n := 0
	for {
		keyRow, ok := e.next()
		if !ok {
			break
		}
		keys = append(keys, keyRow...)
		s.putRef(keys[len(keys)-rw:], outID, uint32(n))
		n++
		if len(e.pendIdxs) >= e.batch {
			e.flushPend()
		}
	}
	if err := e.readerErr(); err != nil {
		s.putRowSet(out)
		return partResult{err: err}
	}
	e.flushPend()
	return partResult{keys: keys, payload: out, rows: n, stats: e.m.Stats()}
}

// partitionSplitters picks parts-1 boundary keys over the runs' fence
// indexes with KWaySplit: the fences of each spilled run form a sorted
// mergepath.Run (one key row per block), so splitting their union at even
// ranks lands boundaries that balance partitions in block — and therefore
// approximately row — terms. Boundaries that collide on the safe prefix
// are dropped (their partitions merge), so heavy duplicate keys degrade
// the fan-out instead of breaking the order.
func (s *Sorter) partitionSplitters(ids []uint32, parts, safe int) [][]byte {
	rw := s.rowWidth
	fences := make([]mergepath.Run, len(ids))
	totalF := 0
	for i, id := range ids {
		sf := s.runs[id].spill
		fences[i] = mergepath.Run{Data: sf.fences, Width: rw}
		totalF += sf.numBlocks()
	}
	cmp := func(a, b []byte) int { return compareSafe(a, b, safe) }
	var out [][]byte
	for p := 1; p < parts; p++ {
		d := p * totalF / parts
		if d <= 0 || d >= totalF {
			continue
		}
		cut := mergepath.KWaySplit(fences, d, cmp)
		// The boundary is the (d+1)-th fence in merged order: the smallest
		// fence just past the cut.
		var key []byte
		for r := range fences {
			if cut[r] >= fences[r].Len() {
				continue
			}
			row := fences[r].Row(cut[r])
			if key == nil || compareSafe(row, key, safe) < 0 {
				key = row
			}
		}
		if key == nil {
			continue
		}
		if len(out) > 0 && compareSafe(out[len(out)-1], key, safe) >= 0 {
			continue
		}
		out = append(out, append([]byte(nil), key...))
	}
	return out
}
