package core

import (
	"fmt"

	"rowsort/internal/normkey"
	"rowsort/internal/obs"
	"rowsort/internal/vector"
)

// DefaultKeyCompSampleRows is the number of rows SortTable samples to decide
// compressed key encodings. A few thousand rows are enough to find shared
// prefixes, low cardinality and discriminating lengths; the sample never has
// to be right for correctness — values it mispredicts escape or tie, and the
// tie-break restores the exact order.
const DefaultKeyCompSampleRows = 4096

// PlanCompression inspects sample chunks and, when Options.KeyComp enables
// dictionary or truncation encoding, rebuilds the sorter's key encoder with
// a compression plan. It must run before the first Append: the normalized
// key layout (width, stride) changes with the plan, so rows encoded earlier
// would be incomparable. SortTable calls it automatically; streaming callers
// (engine operators, TopN) may call it themselves with whatever prefix of
// the input they are willing to buffer.
//
// A sample that compresses nothing leaves the sorter unchanged — the full
// encoding is the fallback, not an error.
func (s *Sorter) PlanCompression(sample []*vector.Chunk) error {
	if s.opt.KeyComp&(KeyCompDict|KeyCompTrunc) == 0 || len(sample) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized || len(s.runs) > 0 || s.rowsIn.Load() != 0 {
		return fmt.Errorf("core: PlanCompression must run before ingestion starts")
	}
	sp := s.rec.Worker("main").Begin(obs.PhaseKeyPlan)
	defer sp.End()

	cols := make([][]*vector.Vector, len(s.keys))
	for _, c := range sample {
		if len(c.Vectors) != len(s.schema) {
			return fmt.Errorf("core: sample chunk has %d columns, schema has %d", len(c.Vectors), len(s.schema))
		}
		for i, kc := range s.keys {
			cols[i] = append(cols[i], c.Vectors[kc.Column])
		}
	}
	cfg := normkey.PlanConfig{
		Dict:  s.opt.KeyComp&KeyCompDict != 0,
		Trunc: s.opt.KeyComp&KeyCompTrunc != 0,
	}
	plan, err := normkey.AnalyzeSample(s.enc.Keys(), cols, cfg)
	if err != nil {
		return err
	}
	if plan == nil {
		return nil
	}
	enc, err := normkey.NewEncoderPlan(s.enc.Keys(), plan)
	if err != nil {
		return err
	}
	s.enc = enc
	s.keyWidth = enc.Width()
	s.rowWidth = (s.keyWidth + refBytes + 7) &^ 7
	return nil
}

// fullSegWidth is the uncompressed width of one key's segment, validity
// byte included (the core-side mirror of the encoder's layout rule), used
// to report per-column savings in SortStats.KeyEncodings.
func fullSegWidth(nk normkey.SortKey) int {
	if nk.Type == vector.Varchar {
		p := nk.PrefixLen
		if p <= 0 {
			p = normkey.DefaultStringPrefixLen
		}
		return 1 + p
	}
	return 1 + nk.Type.Width()
}

// keySampleChunks picks a spread of chunks covering about target rows, so
// the plan sees the whole table rather than its (possibly clustered) start.
func keySampleChunks(chunks []*vector.Chunk, target int) []*vector.Chunk {
	if target <= 0 {
		target = DefaultKeyCompSampleRows
	}
	n := len(chunks)
	if n == 0 {
		return nil
	}
	per := chunks[0].Len()
	if per <= 0 {
		per = 1
	}
	want := (target + per - 1) / per
	if want >= n {
		return chunks
	}
	out := make([]*vector.Chunk, 0, want)
	for i := 0; i < want; i++ {
		out = append(out, chunks[i*n/want])
	}
	return out
}
