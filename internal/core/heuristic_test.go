package core

import (
	"encoding/binary"
	"testing"

	"rowsort/internal/workload"
)

// buildKeyRows packs big-endian uint32 keys into rows of the given stride.
func buildKeyRows(vals []uint32, rowWidth int) []byte {
	data := make([]byte, len(vals)*rowWidth)
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[i*rowWidth:], v)
	}
	return data
}

func TestChooseRadixPrefersRadixOnRandomShortKeys(t *testing.T) {
	rng := workload.NewRNG(140)
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	keys := buildKeyRows(vals, 8)
	if !chooseRadix(keys, 8, 4, n) {
		t.Fatal("random 4-byte keys should pick radix")
	}
}

func TestChooseRadixAvoidsNearlySorted(t *testing.T) {
	n := 1 << 14
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	keys := buildKeyRows(vals, 8)
	if chooseRadix(keys, 8, 4, n) {
		t.Fatal("sorted input should pick pdqsort (pattern detection)")
	}
}

func TestChooseRadixAvoidsLongEffectiveKeys(t *testing.T) {
	// 64-byte keys, every byte varying, small n: log2(n)=10 << 64 passes.
	rng := workload.NewRNG(141)
	n := 1 << 10
	const rowW, keyW = 72, 64
	keys := make([]byte, n*rowW)
	for i := range keys {
		keys[i] = byte(rng.Intn(256))
	}
	if chooseRadix(keys, rowW, keyW, n) {
		t.Fatal("64 varying key bytes at n=1024 should pick pdqsort")
	}
}

func TestChooseRadixSharedPrefixCountsAsFree(t *testing.T) {
	// 64-byte keys but only the last 2 bytes vary: effective width 2.
	rng := workload.NewRNG(142)
	n := 1 << 12
	const rowW, keyW = 72, 64
	keys := make([]byte, n*rowW)
	for i := 0; i < n; i++ {
		keys[i*rowW+62] = byte(rng.Intn(256))
		keys[i*rowW+63] = byte(rng.Intn(256))
	}
	if !chooseRadix(keys, rowW, keyW, n) {
		t.Fatal("2 effective key bytes should pick radix")
	}
}

func TestChooseRadixDegenerate(t *testing.T) {
	if !chooseRadix(nil, 8, 4, 0) || !chooseRadix(make([]byte, 8), 8, 4, 1) {
		t.Fatal("degenerate inputs should default to radix")
	}
	// All keys equal: zero effective bytes.
	keys := make([]byte, 1000*8)
	if !chooseRadix(keys, 8, 4, 1000) {
		t.Fatal("all-equal keys should pick radix (single skip pass)")
	}
}

func TestSampleDistinctKeys(t *testing.T) {
	vals := make([]uint32, 1000)
	for i := range vals {
		vals[i] = uint32(i % 3)
	}
	keys := buildKeyRows(vals, 8)
	if got := sampleDistinctKeys(keys, 8, 4, 1000); got != 3 {
		t.Fatalf("distinct estimate = %d, want 3", got)
	}
}

func TestAdaptiveSortCorrectness(t *testing.T) {
	// The heuristic must never affect the result, only the algorithm.
	for _, dist := range []workload.Dist{{Random: true}, {P: 1}} {
		cols := dist.Generate(8_000, 2, 143)
		tbl := workload.UintColumnsTable(cols)
		keys := []SortColumn{{Column: 0}, {Column: 1}}
		got, err := SortTable(tbl, keys, Options{Adaptive: true, Threads: 2, RunSize: 1000})
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, tbl, got, keys, "adaptive "+dist.String())
	}
	// Presorted input exercises the pdqsort branch of the heuristic.
	n := 8000
	sortedVals := make([]uint32, n)
	for i := range sortedVals {
		sortedVals[i] = uint32(i)
	}
	tbl := workload.UintColumnsTable([][]uint32{sortedVals})
	keys := []SortColumn{{Column: 0}}
	got, err := SortTable(tbl, keys, Options{Adaptive: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "adaptive presorted")
}
