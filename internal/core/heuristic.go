package core

import (
	"encoding/binary"
	"math/bits"
)

// Algorithm choice heuristic (the paper's Future Work): the shipped rule is
// "radix sort unless strings are present". This heuristic refines it with
// the variables the paper names — key size, number of tuples, and an
// estimate of uniqueness — enabled by Options.Adaptive.
//
// The model behind it: radix sort costs O(n · k) byte passes for k key
// bytes while a comparison sort costs O(n · log n) comparisons, so radix
// loses when k is large relative to log2(n). Duplicate-heavy keys shrink
// radix's effective k (shared bytes become single-bucket skip passes), and
// nearly-sorted inputs are pdqsort's best case (its pattern detector
// finishes them in near-linear time) and radix's worst documented weakness.

// chooseRadix reports whether radix sort should sort the given key rows.
// keys holds n rows of stride rowWidth whose first keyWidth bytes are the
// normalized key.
func chooseRadix(keys []byte, rowWidth, keyWidth, n int) bool {
	if n < 2 {
		return true
	}
	logN := bits.Len(uint(n)) - 1

	// Effective key width: bytes that actually vary across a sample. Shared
	// prefix or constant bytes become skipped passes, so they are free.
	effective := effectiveKeyBytes(keys, rowWidth, keyWidth, n)
	if effective == 0 {
		return true // all keys equal: skip passes only, no data movement
	}

	// Nearly sorted input: pdqsort's partial-insertion detector handles it
	// in ~n comparisons; radix gains nothing from pre-sortedness.
	if sampledSortedness(keys, rowWidth, keyWidth, n) > 0.95 {
		return false
	}

	// Radix does ~effective passes over n rows; pdqsort does ~logN rounds
	// of comparisons, each touching the differing prefix. Prefer radix
	// while its pass count stays within a small factor of logN.
	return effective <= 2*logN
}

// sampledSortedness returns the fraction of adjacent sampled pairs already
// in nondecreasing key order.
func sampledSortedness(keys []byte, rowWidth, keyWidth, n int) float64 {
	const samples = 128
	step := max(1, n/samples)
	pairs, sorted := 0, 0
	for i := step; i < n; i += step {
		a := keys[(i-step)*rowWidth : (i-step)*rowWidth+keyWidth]
		b := keys[i*rowWidth : i*rowWidth+keyWidth]
		pairs++
		if compareBytes(a, b) <= 0 {
			sorted++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(sorted) / float64(pairs)
}

// effectiveKeyBytes counts key byte positions that vary across a sample of
// rows — an estimate of the radix passes that will actually move data.
func effectiveKeyBytes(keys []byte, rowWidth, keyWidth, n int) int {
	const samples = 256
	step := max(1, n/samples)
	first := keys[:keyWidth]
	varies := make([]bool, keyWidth)
	for i := step; i < n; i += step {
		row := keys[i*rowWidth : i*rowWidth+keyWidth]
		for b := 0; b < keyWidth; b++ {
			if row[b] != first[b] {
				varies[b] = true
			}
		}
	}
	count := 0
	for _, v := range varies {
		if v {
			count++
		}
	}
	return count
}

// sampleDistinctKeys estimates the number of distinct keys among up to 256
// sampled rows, using the full key bytes. Rows are picked with a
// multiplicative jump rather than a fixed stride so periodic data does not
// alias with the sampling. Exposed for the heuristic's tests and future
// refinements.
func sampleDistinctKeys(keys []byte, rowWidth, keyWidth, n int) int {
	samples := min(256, n)
	seen := make(map[uint64]struct{}, samples)
	for j := 0; j < samples; j++ {
		i := int((uint64(j)*2654435761 + 12345) % uint64(n))
		row := keys[i*rowWidth : i*rowWidth+keyWidth]
		seen[hashKey(row)] = struct{}{}
	}
	return len(seen)
}

func hashKey(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
