package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rowsort/internal/vector"
)

// sortWith runs a full single-sink sort of tbl under opt and returns the
// result table. A single sequential sink makes run assignment deterministic,
// so two sorts of the same table differing only in merge algorithm must be
// byte-identical (the merges are all stable with ties to the lower run).
func sortWith(t *testing.T, tbl *vector.Table, keys []SortColumn, opt Options) *vector.Table {
	t.Helper()
	s, err := NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	out, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mergeTestKeys interleaves a tie-break-prone varchar between two numeric
// segments, the layout where byte order stops being decisive mid-key (the
// varchar's full strings must order before the trailing segment's bytes are
// consulted).
var mergeTestKeys = []SortColumn{
	{Column: 1, NullsLast: true},
	{Column: 2, Descending: true},
	{Column: 0},
}

// TestMergeAlgoEquivalence checks that the loser tree (with and without
// offset-value coding, at every thread count) produces exactly the cascaded
// pairwise merge's output on a workload with NULLs, descending keys, and
// string prefixes that tie.
func TestMergeAlgoEquivalence(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize+123, 91)
	base := Options{Threads: 1, RunSize: 700, Merge: MergeCascade}
	want := sortWith(t, tbl, mergeTestKeys, base)
	checkSorted(t, tbl, want, mergeTestKeys, "cascade reference")
	wantRows := rowify(t, want)

	for _, algo := range []MergeAlgo{MergeLoserTree, MergeLoserTreeNoOVC} {
		for _, threads := range []int{1, 2, 3, 4, 8, 16} {
			opt := Options{Threads: threads, RunSize: 700, Merge: algo}
			got := sortWith(t, tbl, mergeTestKeys, opt)
			if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
				t.Fatalf("algo=%d threads=%d: merge output differs from cascade", algo, threads)
			}
		}
	}
}

// TestMergeAlgoEquivalenceNoTies repeats the equivalence check on pure
// integer keys, where the whole normalized key is byte-decisive and the
// merge runs without a tie comparator.
func TestMergeAlgoEquivalenceNoTies(t *testing.T) {
	tbl := mixedTable(2*vector.DefaultVectorSize+55, 92)
	keys := []SortColumn{{Column: 1}, {Column: 0, Descending: true}}
	want := sortWith(t, tbl, keys, Options{Threads: 1, RunSize: 300, Merge: MergeCascade})
	checkSorted(t, tbl, want, keys, "cascade reference")
	wantRows := rowify(t, want)
	for _, algo := range []MergeAlgo{MergeLoserTree, MergeLoserTreeNoOVC} {
		for _, threads := range []int{1, 3, 16} {
			got := sortWith(t, tbl, keys, Options{Threads: threads, RunSize: 300, Merge: algo})
			if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
				t.Fatalf("algo=%d threads=%d: merge output differs from cascade", algo, threads)
			}
		}
	}
}

// TestExternalMergeEquivalence checks that the streaming external merge is
// byte-identical to the in-memory merge across block sizes, thread counts,
// and both OVC arms — and that the stream reads each spilled byte exactly
// once.
func TestExternalMergeEquivalence(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize+123, 93)
	want := sortWith(t, tbl, mergeTestKeys, Options{Threads: 1, RunSize: 700})
	checkSorted(t, tbl, want, mergeTestKeys, "in-memory reference")
	wantRows := rowify(t, want)

	for _, algo := range []MergeAlgo{MergeLoserTree, MergeLoserTreeNoOVC} {
		for _, blockRows := range []int{1, 64, 512, 100000} {
			for _, threads := range []int{1, 4, 16} {
				opt := Options{Threads: threads, RunSize: 700, Merge: algo,
					SpillDir: t.TempDir(), SpillBlockRows: blockRows}
				s, err := NewSorter(tbl.Schema, mergeTestKeys, opt)
				if err != nil {
					t.Fatal(err)
				}
				sink := s.NewSink()
				for _, c := range tbl.Chunks {
					if err := sink.Append(c); err != nil {
						t.Fatal(err)
					}
				}
				if err := sink.Close(); err != nil {
					t.Fatal(err)
				}
				if err := s.Finalize(); err != nil {
					t.Fatal(err)
				}
				spill := s.Stats()
				written, read := spill.SpillBytesWritten, spill.SpillBytesRead
				if written == 0 {
					t.Fatalf("block=%d: sort never spilled", blockRows)
				}
				if read != written {
					t.Fatalf("algo=%d block=%d: read %d spill bytes, wrote %d (want exactly one pass)",
						algo, blockRows, read, written)
				}
				got, err := s.ResultScalar()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
					t.Fatalf("algo=%d block=%d threads=%d: external merge differs from in-memory",
						algo, blockRows, threads)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestExternalMergeCascadeAblation checks the cascaded external baseline
// (full unspill/re-spill per level) still produces the same table.
func TestExternalMergeCascadeAblation(t *testing.T) {
	tbl := mixedTable(2*vector.DefaultVectorSize+77, 94)
	want := sortWith(t, tbl, mergeTestKeys, Options{Threads: 2, RunSize: 500})
	wantRows := rowify(t, want)
	opt := Options{Threads: 2, RunSize: 500, Merge: MergeCascade, SpillDir: t.TempDir()}
	got := sortWith(t, tbl, mergeTestKeys, opt)
	if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
		t.Fatal("external cascade merge differs from in-memory loser tree")
	}
}

// TestMergeStats checks the exported merge counters: comparisons are
// counted, offset-value coding resolves matches, and the tie-break path is
// exercised when string prefixes tie.
func TestMergeStats(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize, 95)
	s, err := NewSorter(tbl.Schema, mergeTestKeys, Options{Threads: 1, RunSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Merge
	if st.Comparisons == 0 {
		t.Fatal("merge counted no comparisons")
	}
	if st.OVCHits == 0 {
		t.Fatal("offset-value coding resolved no matches")
	}
	if st.TieBreaks == 0 {
		t.Fatal("tie-break comparator never ran despite tied string prefixes")
	}
	if st.BytesMoved == 0 {
		t.Fatal("merge moved no bytes")
	}
}

// spillFiles lists the rowsort-run-*.bin files left in dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "rowsort-run-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCloseRemovesSpillFiles checks the leak fix: an aborted sort (spilled
// runs, no Finalize) leaves files on disk until Close, which removes them;
// a completed SortTable leaves none behind at all.
func TestCloseRemovesSpillFiles(t *testing.T) {
	tbl := mixedTable(2*vector.DefaultVectorSize, 96)
	keys := []SortColumn{{Column: 0}}

	dir := t.TempDir()
	s, err := NewSorter(tbl.Schema, keys, Options{Threads: 2, RunSize: 300, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, dir)) == 0 {
		t.Fatal("sort never spilled; test needs a smaller RunSize")
	}
	// Abort without Finalize: Close must reclaim the files.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, dir); len(left) != 0 {
		t.Fatalf("Close left spill files behind: %v", left)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	dir2 := t.TempDir()
	if _, err := SortTable(tbl, keys, Options{Threads: 2, RunSize: 300, SpillDir: dir2}); err != nil {
		t.Fatal(err)
	}
	if left := spillFiles(t, dir2); len(left) != 0 {
		t.Fatalf("SortTable left spill files behind: %v", left)
	}
}

// TestSpillErrorPropagation points SpillDir at a regular file so os.Create
// fails, and checks the error surfaces instead of panicking or leaking.
func TestSpillErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	notADir := filepath.Join(dir, "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl := mixedTable(vector.DefaultVectorSize, 97)
	s, err := NewSorter(tbl.Schema, []SortColumn{{Column: 0}},
		Options{Threads: 1, RunSize: 100, SpillDir: filepath.Join(notADir, "sub")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	var sawErr error
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		sawErr = sink.Close()
	}
	if sawErr == nil {
		sawErr = s.Finalize()
	}
	if sawErr == nil {
		t.Fatal("sort with unwritable SpillDir reported no error")
	}
}

// TestExternalMergeManyRunCounts sweeps run counts (including 1 and a
// non-power-of-two k) through the streaming merge with a small block size.
func TestExternalMergeManyRunCounts(t *testing.T) {
	for _, runSize := range []int{100000, 2048, 777, 350} {
		tbl := mixedTable(2*vector.DefaultVectorSize+13, 98)
		name := fmt.Sprintf("runsize=%d", runSize)
		want := sortWith(t, tbl, mergeTestKeys, Options{Threads: 1, RunSize: runSize})
		wantRows := rowify(t, want)
		got := sortWith(t, tbl, mergeTestKeys,
			Options{Threads: 1, RunSize: runSize, SpillDir: t.TempDir(), SpillBlockRows: 64})
		if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
			t.Fatalf("%s: external merge differs from in-memory", name)
		}
	}
}
