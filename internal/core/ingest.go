package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rowsort/internal/vector"
)

// ParallelSink parallelizes run generation behind a single streaming
// producer. SortTable distributes a materialized table's chunks across
// sinks morsel-style, but a pipelined producer (an operator tree, a CSV
// reader) hands over one chunk at a time from one goroutine; ParallelSink
// round-robins those chunks to Options.Threads workers over bounded
// channels, each worker feeding a private Sink, so key normalization, run
// sorting and pressure spilling run concurrently off the caller's
// goroutine. Each private Sink carries its own broker reservation, so the
// memory budget governs the pipelined ingest exactly as it does the
// materialized one.
//
// Like Sink, a ParallelSink is not safe for concurrent use: it multiplies
// the workers behind one producer rather than accepting many producers
// (producers that are already parallel should create one Sink each).
type ParallelSink struct {
	s      *Sorter
	in     []chan *vector.Chunk
	next   int
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
	failed atomic.Bool
	closed bool
}

// ingestQueueDepth bounds each worker's chunk queue. One chunk in flight
// plus one queued keeps a worker busy across the producer's round-robin
// cycle without buffering an unbounded (and unaccounted) backlog.
const ingestQueueDepth = 2

// NewParallelSink starts Options.Threads ingestion workers and returns
// the dispatching sink. Close must be called to join them.
//
//rowsort:pipeline
func (s *Sorter) NewParallelSink() *ParallelSink {
	p := &ParallelSink{s: s, in: make([]chan *vector.Chunk, s.opt.threads())}
	for w := range p.in {
		p.in[w] = make(chan *vector.Chunk, ingestQueueDepth)
		p.wg.Add(1)
		go p.worker(p.in[w])
	}
	return p
}

// worker drains one chunk queue into a private Sink. After a failure
// anywhere in the group it keeps draining (so the producer never blocks on
// a full queue) but stops converting.
func (p *ParallelSink) worker(ch chan *vector.Chunk) {
	defer p.wg.Done()
	p.s.rec.Do("run-generation", func() {
		sink := p.s.NewSink()
		for c := range ch {
			if p.failed.Load() {
				continue
			}
			if err := sink.Append(c); err != nil {
				p.fail(err)
			}
		}
		if err := sink.Close(); err != nil {
			p.fail(err)
		}
	})
}

// fail records the group's first error and flips the sticky failure flag.
func (p *ParallelSink) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.failed.Store(true)
}

// firstErr returns the group's first recorded error.
func (p *ParallelSink) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Append hands one chunk to the next worker, blocking only when that
// worker's bounded queue is full — which is the backpressure that keeps a
// fast producer from outrunning the budgeted sinks.
func (p *ParallelSink) Append(c *vector.Chunk) error {
	if p.closed {
		return fmt.Errorf("core: append to closed sink")
	}
	if p.failed.Load() {
		return p.firstErr()
	}
	p.in[p.next] <- c
	p.next = (p.next + 1) % len(p.in)
	return nil
}

// Close joins the workers, flushing every pending run, and returns the
// group's first error. It is idempotent.
func (p *ParallelSink) Close() error {
	if p.closed {
		return p.firstErr()
	}
	p.closed = true
	for _, ch := range p.in {
		close(ch)
	}
	p.wg.Wait()
	return p.firstErr()
}
