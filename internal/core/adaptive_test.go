package core

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

func TestAdaptiveSortCorrectness(t *testing.T) {
	// The planner must never affect the result, only the algorithm.
	for _, dist := range []workload.Dist{{Random: true}, {P: 1}} {
		cols := dist.Generate(8_000, 2, 143)
		tbl := workload.UintColumnsTable(cols)
		keys := []SortColumn{{Column: 0}, {Column: 1}}
		got, err := SortTable(tbl, keys, Options{Adaptive: true, Threads: 2, RunSize: 1000})
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, tbl, got, keys, "adaptive "+dist.String())
	}
	// Presorted input exercises the planner's pdqsort branch.
	n := 8000
	sortedVals := make([]uint32, n)
	for i := range sortedVals {
		sortedVals[i] = uint32(i)
	}
	tbl := workload.UintColumnsTable([][]uint32{sortedVals})
	keys := []SortColumn{{Column: 0}}
	got, err := SortTable(tbl, keys, Options{Adaptive: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "adaptive presorted")
}

// TestStrategyDecisionsRecorded pins the decision log's shape: one entry
// per generated run on every path (adaptive and static), run ids unique and
// in range, algorithms named, and sampled statistics present exactly when
// the plan was sampled rather than dictated.
func TestStrategyDecisionsRecorded(t *testing.T) {
	cols := workload.Dist{Random: true}.Generate(8_000, 2, 144)
	tbl := workload.UintColumnsTable(cols)
	keys := []SortColumn{{Column: 0}, {Column: 1}}

	for _, tc := range []struct {
		name   string
		opt    Options
		forced string // expected Forced value, "" = sampled plan
	}{
		{"adaptive", Options{Adaptive: true, Threads: 2, RunSize: 1000}, ""},
		{"static radix", Options{Threads: 2, RunSize: 1000}, "static"},
		{"forced pdqsort", Options{ForcePdqsort: true, Threads: 2, RunSize: 1000}, "option"},
	} {
		_, st, err := SortTableStats(tbl, keys, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(st.StrategyDecisions)) != st.RunsGenerated {
			t.Fatalf("%s: %d decisions for %d runs", tc.name, len(st.StrategyDecisions), st.RunsGenerated)
		}
		seen := map[int]bool{}
		for _, d := range st.StrategyDecisions {
			if seen[d.Run] || d.Run < 0 || d.Run >= int(st.RunsGenerated) {
				t.Fatalf("%s: bad or duplicate run id %d", tc.name, d.Run)
			}
			seen[d.Run] = true
			if d.Algo == "" || d.Rows <= 0 {
				t.Fatalf("%s: incomplete decision %+v", tc.name, d)
			}
			if d.Forced != tc.forced {
				t.Fatalf("%s: forced = %q, want %q", tc.name, d.Forced, tc.forced)
			}
			if tc.forced == "" && (d.MergeRole == "" || d.RadixCost <= 0 || d.PdqCost <= 0) {
				t.Fatalf("%s: sampled decision missing statistics: %+v", tc.name, d)
			}
		}
	}
}

// TestAdaptiveDupGroupWithoutRLE verifies the planner reaches the
// duplicate-group sort from its own sampled statistics, without the static
// KeyCompRLE configuration bit that used to gate it.
func TestAdaptiveDupGroupWithoutRLE(t *testing.T) {
	n := 16_000
	vals := make([]uint32, n) // sorted, 64-row duplicate groups: DupRunFrac ~ 63/64
	for i := range vals {
		vals[i] = uint32(i / 64)
	}
	tbl := workload.UintColumnsTable([][]uint32{vals})
	keys := []SortColumn{{Column: 0}}
	got, st, err := SortTableStats(tbl, keys, Options{Adaptive: true, Threads: 1, RunSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, tbl, got, keys, "adaptive dup-heavy")
	if st.RunsGroupSorted == 0 {
		t.Fatal("no run used the duplicate-group sort")
	}
	grouped := 0
	for _, d := range st.StrategyDecisions {
		if d.Algo == "dup-group" {
			grouped++
			if d.DupRunFrac < 0.5 {
				t.Fatalf("dup-group chosen at DupRunFrac %.2f", d.DupRunFrac)
			}
			if d.MergeRole != "dup-heavy" {
				t.Fatalf("dup-heavy run got merge role %q", d.MergeRole)
			}
			if !d.FrontCode {
				t.Fatal("dup-heavy run did not enable spill front-coding")
			}
		}
	}
	if int64(grouped) != st.RunsGroupSorted {
		t.Fatalf("%d dup-group decisions but %d grouped runs", grouped, st.RunsGroupSorted)
	}
}

// TestAdaptiveFrontCodedSpillMatchesResident is the format-3 round trip:
// an adaptive external sort (front-coded spill blocks) must produce exactly
// the rows of the same adaptive sort run fully in memory. Run cuts and
// planner inputs are identical (one thread, fixed run size), so the only
// difference is the spill encode/decode under test.
func TestAdaptiveFrontCodedSpillMatchesResident(t *testing.T) {
	n := 20_000
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i / 32)
	}
	tbl := workload.UintColumnsTable([][]uint32{vals})
	keys := []SortColumn{{Column: 0}}
	base := Options{Adaptive: true, Threads: 1, RunSize: 1500}

	resident, err := SortTable(tbl, keys, base)
	if err != nil {
		t.Fatal(err)
	}
	ext := base
	ext.SpillDir = t.TempDir()
	spilled, st, err := SortTableStats(tbl, keys, ext)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillBlocksFrontCoded == 0 {
		t.Fatal("no spill block was front-coded; the round trip was not exercised")
	}
	if resident.NumRows() != spilled.NumRows() {
		t.Fatalf("row counts differ: %d resident, %d spilled", resident.NumRows(), spilled.NumRows())
	}
	rc, sc := resident.Column(0), spilled.Column(0)
	for i := 0; i < resident.NumRows(); i++ {
		if rc.Value(i) != sc.Value(i) {
			t.Fatalf("row %d differs: resident %v, spilled %v", i, rc.Value(i), sc.Value(i))
		}
	}
}

// TestAdaptiveRunSnapshotCarriesStrategy wires the decision log through the
// observability registry: the run's HTTP snapshot must list the decisions,
// and the Prometheus export must carry the per-algorithm run counts.
func TestAdaptiveRunSnapshotCarriesStrategy(t *testing.T) {
	cols := workload.Dist{Random: true}.Generate(6_000, 1, 145)
	tbl := workload.UintColumnsTable(cols)
	keys := []SortColumn{{Column: 0}}

	reg := obs.NewRegistry(0)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	_, st, err := SortTableStats(tbl, keys, Options{
		Adaptive: true, Threads: 1, RunSize: 1000,
		Registry: reg, RunLabel: "adaptive-snap",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.StrategyDecisions) == 0 {
		t.Fatal("no decisions recorded")
	}

	snaps := reg.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("registry holds %d runs, want 1", len(snaps))
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/rowsort/run?id=" + snaps[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Strategy []obs.StrategyDecision `json:"strategy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Strategy) != len(st.StrategyDecisions) {
		t.Fatalf("snapshot carries %d decisions, stats %d", len(snap.Strategy), len(st.StrategyDecisions))
	}
	for i, d := range snap.Strategy {
		if d != st.StrategyDecisions[i] {
			t.Fatalf("decision %d differs: snapshot %+v, stats %+v", i, d, st.StrategyDecisions[i])
		}
	}

	var prom strings.Builder
	if err := st.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus([]byte(prom.String())); err != nil {
		t.Fatalf("invalid Prometheus output: %v", err)
	}
	want := fmt.Sprintf("rowsort_strategy_runs_total{algo=%q}", st.StrategyDecisions[0].Algo)
	if !strings.Contains(prom.String(), want) {
		t.Fatalf("Prometheus output missing %s", want)
	}
}
