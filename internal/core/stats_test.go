package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

// spillSortStats runs a spilling multi-run sort with telemetry and returns
// its stats. It pins the scalar external path (no read-ahead, sequential
// final merge) so the strict invariants below — every spilled byte read
// exactly once, decode time on the spill-read phase — stay checkable; the
// pipelined and partitioned paths have their own tests in parallel_test.go.
func spillSortStats(t *testing.T, rows int) SortStats {
	t.Helper()
	tbl := workload.CatalogSales(rows, 10, 7)
	keys := []SortColumn{{Column: 0}, {Column: 1}, {Column: 2}, {Column: 3}}
	opt := Options{
		Threads:         2,
		RunSize:         max(1, rows/8),
		SpillDir:        t.TempDir(),
		Telemetry:       obs.NewRecorder(),
		ReadAhead:       -1,
		ExtMergeThreads: 1,
	}
	out, st, err := SortTableStats(tbl, keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != rows {
		t.Fatalf("sorted %d rows, want %d", out.NumRows(), rows)
	}
	return st
}

func TestSortStatsSpillingSort(t *testing.T) {
	const rows = 20_000
	st := spillSortStats(t, rows)

	if st.RowsIngested != rows {
		t.Errorf("RowsIngested = %d, want %d", st.RowsIngested, rows)
	}
	if st.RunsGenerated < 2 {
		t.Errorf("RunsGenerated = %d, want >= 2 (spilling multi-run sort)", st.RunsGenerated)
	}
	if st.NormKeyBytes <= 0 {
		t.Errorf("NormKeyBytes = %d, want > 0", st.NormKeyBytes)
	}
	if st.SpillBytesWritten <= 0 {
		t.Errorf("SpillBytesWritten = %d, want > 0", st.SpillBytesWritten)
	}
	// The streaming merge reads every spilled byte exactly once.
	if st.SpillBytesRead != st.SpillBytesWritten {
		t.Errorf("SpillBytesRead = %d, want %d (single read pass)", st.SpillBytesRead, st.SpillBytesWritten)
	}
	if st.SpillFilesRemoved != st.RunsGenerated {
		t.Errorf("SpillFilesRemoved = %d, want %d", st.SpillFilesRemoved, st.RunsGenerated)
	}
	if st.SpillRemoveErrors != 0 {
		t.Errorf("SpillRemoveErrors = %d, want 0", st.SpillRemoveErrors)
	}
	if st.GatherBytesMoved <= 0 {
		t.Errorf("GatherBytesMoved = %d, want > 0", st.GatherBytesMoved)
	}
	if st.PeakResidentRunBytes <= 0 {
		t.Errorf("PeakResidentRunBytes = %d, want > 0", st.PeakResidentRunBytes)
	}
	if st.Merge.Comparisons == 0 {
		t.Errorf("Merge.Comparisons = 0, want > 0")
	}

	// The three sequential stage durations must account for the sort's
	// total wall time: SortTable runs them back to back, so the sum matches
	// DurTotal up to scheduling noise (10% plus a fixed floor for very
	// short runs on loaded CI machines).
	sum := st.DurRunGen + st.DurMerge + st.DurGather
	if st.DurTotal <= 0 || sum <= 0 {
		t.Fatalf("durations not recorded: stages=%v total=%v", sum, st.DurTotal)
	}
	diff := st.DurTotal - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > st.DurTotal/10+5*time.Millisecond {
		t.Errorf("stage durations %v (rungen %v + merge %v + gather %v) vs total %v: off by %v",
			sum, st.DurRunGen, st.DurMerge, st.DurGather, st.DurTotal, diff)
	}

	// Span coverage: a spilling sort exercises every phase.
	for _, p := range []obs.Phase{
		obs.PhaseSort, obs.PhaseIngest, obs.PhaseRunSort,
		obs.PhaseSpillWrite, obs.PhaseSpillRead, obs.PhaseMerge, obs.PhaseGather,
	} {
		if st.Phases.Get(p).Count == 0 {
			t.Errorf("phase %v recorded no spans", p)
		}
	}
	if st.Phases.Workers < 3 {
		t.Errorf("only %d trace lanes, want main + sinks + merge + gather", st.Phases.Workers)
	}
}

func TestSortStatsWithoutTelemetry(t *testing.T) {
	// Counters and stage durations are collected even without a recorder;
	// only the span breakdown stays zero.
	tbl := workload.CatalogSales(5_000, 10, 7)
	keys := []SortColumn{{Column: 0}}
	_, st, err := SortTableStats(tbl, keys, Options{Threads: 2, RunSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsIngested != 5_000 || st.RunsGenerated == 0 || st.DurTotal <= 0 {
		t.Fatalf("counters missing without telemetry: %+v", st)
	}
	if st.Phases.Workers != 0 {
		t.Fatalf("Phases.Workers = %d, want 0 without telemetry", st.Phases.Workers)
	}
}

func TestUnifiedStatsCoverMergeAndSpill(t *testing.T) {
	// Stats() is the sorter's single telemetry surface (the MergeStats and
	// SpillStats accessors are gone): after an external finalize it must
	// carry both the merge counters and the spill byte accounting.
	tbl := workload.CatalogSales(10_000, 10, 7)
	keys := []SortColumn{{Column: 0}, {Column: 1}}
	s, err := NewSorter(tbl.Schema, keys, Options{Threads: 2, RunSize: 1 << 10, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Merge.Comparisons == 0 || st.Merge.BytesMoved == 0 {
		t.Errorf("merge counters missing from Stats(): %+v", st.Merge)
	}
	if st.SpillBytesWritten == 0 || st.SpillBytesRead != st.SpillBytesWritten {
		t.Errorf("spill accounting off: written %d, read %d (want equal, nonzero)",
			st.SpillBytesWritten, st.SpillBytesRead)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	tbl := workload.CatalogSales(8_000, 10, 7)
	keys := []SortColumn{{Column: 0}}
	dir := t.TempDir()
	s, err := NewSorter(tbl.Schema, keys, Options{RunSize: 1 << 10, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Abort before Finalize: Close must remove the spilled runs, and again
	// must be a clean no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	removed := s.Stats().SpillFilesRemoved
	if removed == 0 {
		t.Fatal("first Close removed no spill files")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := s.Stats().SpillFilesRemoved; got != removed {
		t.Fatalf("second Close changed SpillFilesRemoved: %d -> %d", removed, got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d files left in spill dir after Close", len(ents))
	}
}

func TestCloseSurfacesRemovalErrors(t *testing.T) {
	schema := workload.CatalogSales(16, 10, 7).Schema
	s, err := NewSorter(schema, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Track a "spill file" that cannot be removed: a non-empty directory.
	dir := t.TempDir()
	stuck := filepath.Join(dir, "stuck-run")
	if err := os.MkdirAll(filepath.Join(stuck, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	s.trackSpill(stuck)

	err = s.Close()
	if err == nil {
		t.Fatal("Close swallowed the removal error")
	}
	if !strings.Contains(err.Error(), "removing spill file") {
		t.Fatalf("Close error %q does not identify the removal failure", err)
	}
	if got := s.Stats().SpillRemoveErrors; got == 0 {
		t.Fatal("SpillRemoveErrors not counted")
	}
	// Double Close retries the stuck file and reports it again, safely.
	if err := s.Close(); err == nil {
		t.Fatal("second Close swallowed the persistent removal error")
	}
	// Once the obstacle is gone, Close succeeds and the file is untracked.
	if err := os.RemoveAll(filepath.Join(stuck, "child")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after clearing the obstacle: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("final idempotent Close: %v", err)
	}
}

func TestTopNStats(t *testing.T) {
	tbl := workload.CatalogSales(4_096, 10, 7)
	top, err := NewTopN(tbl.Schema, []SortColumn{{Column: 3, Descending: true}}, 10,
		Options{Telemetry: obs.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tbl.Chunks {
		if err := top.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := top.Result(); err != nil {
		t.Fatal(err)
	}
	st := top.Stats()
	if st.RowsIngested != 4_096 {
		t.Errorf("RowsIngested = %d, want 4096", st.RowsIngested)
	}
	if st.Phases.Get(obs.PhaseIngest).Count == 0 || st.Phases.Get(obs.PhaseGather).Count == 0 {
		t.Errorf("TopN recorded no ingest/gather spans: %+v", st.Phases)
	}
}

func TestSortStatsRendering(t *testing.T) {
	st := spillSortStats(t, 8_000)
	text := st.String()
	for _, want := range []string{"rows ingested", "spill written / read", "merge", "gather"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q:\n%s", want, text)
		}
	}
	var buf bytes.Buffer
	if err := st.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"rowsort_rows_ingested_total 8000",
		"rowsort_spill_written_bytes_total",
		"rowsort_stage_merge_seconds",
		`rowsort_phase_busy_seconds{phase="spill-read"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("WritePrometheus missing %q:\n%s", want, prom)
		}
	}
}

func TestTraceFromSpillingSort(t *testing.T) {
	// End-to-end: the recorder of a spilling sort must export a Chrome
	// trace whose spans cover run generation, spill write, read-ahead block
	// decoding (the default merge path prefetches, so spill decode time
	// lands on the prefetch lanes), streamed merge and materialization,
	// with one lane per worker.
	rec := obs.NewRecorder()
	tbl := workload.CatalogSales(16_000, 10, 7)
	keys := []SortColumn{{Column: 0}, {Column: 1}}
	_, _, err := SortTableStats(tbl, keys, Options{
		Threads: 2, RunSize: 1 << 11, SpillDir: t.TempDir(), Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"run-sort"`, `"name":"spill-write"`, `"name":"prefetch"`,
		`"name":"merge"`, `"name":"gather"`, `"name":"thread_name"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}
