package core

import (
	"bytes"
	"os"
	"testing"

	"rowsort/internal/mem"
	"rowsort/internal/vector"
)

// parallelTestKeys sorts on every column, with the tie-prone varchar
// mid-key: a full-key tie is then a fully identical row, so output
// byte-identity is well-defined even when parallel ingest assigns rows to
// runs nondeterministically (equal rows are interchangeable).
var parallelTestKeys = []SortColumn{
	{Column: 1, NullsLast: true},
	{Column: 2, Descending: true},
	{Column: 3},
	{Column: 0},
}

// parallelSort runs the fully parallel pipeline — ParallelSink ingest,
// partitioned external merge when eligible, parallel gather — and returns
// the result plus the sorter's stats.
func parallelSort(t *testing.T, tbl *vector.Table, keys []SortColumn, opt Options) (*vector.Table, SortStats) {
	t.Helper()
	s, err := NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewParallelSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	out, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out, st
}

// TestParallelExternalSortByteIdentity is the tentpole's correctness bar:
// the fully parallel external sort — parallel run generation, read-ahead,
// partitioned merge — under a tight budget produces output byte-identical
// to the scalar external path at every thread count, and hands every
// reserved byte back on Close.
func TestParallelExternalSortByteIdentity(t *testing.T) {
	tbl := mixedTable(40_000, 101)
	scalar := Options{Threads: 1, RunSize: 1500, SpillDir: t.TempDir(),
		ReadAhead: -1, ExtMergeThreads: 1}
	want := sortWith(t, tbl, parallelTestKeys, scalar)
	checkSorted(t, tbl, want, parallelTestKeys, "scalar external reference")
	wantRows := rowify(t, want)

	_, unlimited := parallelSort(t, tbl, parallelTestKeys, Options{Threads: 4, RunSize: 1500})
	budget := unlimited.PeakResidentRunBytes / 3

	for _, threads := range []int{1, 2, 4, 8} {
		broker := mem.NewBroker("parallel-identity", budget)
		opt := Options{Threads: threads, RunSize: 1500, Broker: broker}
		got, st := parallelSort(t, tbl, parallelTestKeys, opt)
		if st.SpillBytesWritten == 0 {
			t.Fatalf("threads=%d: budget %d forced no spill", threads, budget)
		}
		if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
			t.Errorf("threads=%d: parallel external sort differs from scalar path", threads)
		}
		if used := broker.Used(); used != 0 {
			t.Errorf("threads=%d: broker holds %d bytes after Close, want 0", threads, used)
		}
		if peak := broker.Peak(); peak >= unlimited.PeakResidentRunBytes {
			t.Errorf("threads=%d: budgeted peak %d not below unlimited peak %d",
				threads, peak, unlimited.PeakResidentRunBytes)
		}
	}
}

// TestPartitionedMergeMatchesSequential pins the partitioned final merge
// against the sequential one on deterministic runs (single sink): across
// merge thread counts and read-ahead depths the output must stay
// byte-identical — including on keys with tie-breaks, where partition
// bounds may only cut on the byte-decisive safe prefix.
func TestPartitionedMergeMatchesSequential(t *testing.T) {
	tbl := mixedTable(40_000, 102)
	base := Options{Threads: 1, RunSize: 1500, SpillDir: t.TempDir(),
		ReadAhead: -1, ExtMergeThreads: 1}
	want, wantStats := budgetedSort(t, tbl, mergeTestKeys, base)
	if wantStats.SpillBytesWritten == 0 {
		t.Fatal("reference sort never spilled")
	}
	if wantStats.ExtMergeParts != 0 || wantStats.PrefetchedBlocks != 0 {
		t.Fatalf("scalar reference ran parallel machinery: %+v", wantStats)
	}
	wantRows := rowify(t, want)

	for _, emt := range []int{1, 2, 4, 8} {
		for _, ra := range []int{-1, 0, 2} {
			opt := Options{Threads: 1, RunSize: 1500, SpillDir: t.TempDir(),
				ReadAhead: ra, ExtMergeThreads: emt}
			got, st := budgetedSort(t, tbl, mergeTestKeys, opt)
			if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
				t.Errorf("merge threads=%d readahead=%d: output differs from sequential merge", emt, ra)
			}
			if emt >= 2 && st.ExtMergeParts < 2 {
				t.Errorf("merge threads=%d: final merge ran on %d partitions, want >= 2",
					emt, st.ExtMergeParts)
			}
			if ra >= 0 && st.PrefetchedBlocks == 0 {
				t.Errorf("readahead=%d: no blocks prefetched", ra)
			}
			if ra < 0 && st.PrefetchedBlocks != 0 {
				t.Errorf("readahead disabled but %d blocks prefetched", st.PrefetchedBlocks)
			}
			if st.PrefetchHits > st.PrefetchedBlocks {
				t.Errorf("read-ahead hits %d exceed prefetched blocks %d",
					st.PrefetchHits, st.PrefetchedBlocks)
			}
		}
	}
}

// TestParallelSinkMatchesSink checks the streaming parallel ingest: a
// single producer feeding a ParallelSink yields the same table as a plain
// Sink at every worker count, in memory and with eager spilling.
func TestParallelSinkMatchesSink(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize+99, 103)
	want := sortWith(t, tbl, parallelTestKeys, Options{Threads: 1, RunSize: 700})
	wantRows := rowify(t, want)
	for _, threads := range []int{1, 2, 4, 8} {
		for _, spill := range []bool{false, true} {
			opt := Options{Threads: threads, RunSize: 700}
			if spill {
				opt.SpillDir = t.TempDir()
			}
			got, _ := parallelSort(t, tbl, parallelTestKeys, opt)
			if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
				t.Errorf("threads=%d spill=%v: ParallelSink output differs from Sink", threads, spill)
			}
		}
	}
}

// TestParallelSinkErrorPropagation checks a failing chunk poisons the
// group: the error surfaces from Close (or an earlier Append), later
// Appends refuse, and Close stays idempotent.
func TestParallelSinkErrorPropagation(t *testing.T) {
	tbl := mixedTable(2*vector.DefaultVectorSize, 104)
	s, err := NewSorter(tbl.Schema, parallelTestKeys, Options{Threads: 4, RunSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewParallelSink()
	bad := vector.NewChunk(tbl.Schema[:2], 1)
	bad.Vectors[0].AppendInt32(1)
	bad.Vectors[1].AppendInt16(2)
	var appendErr error
	for _, c := range []*vector.Chunk{tbl.Chunks[0], bad, tbl.Chunks[1]} {
		if err := sink.Append(c); err != nil {
			appendErr = err
			break
		}
	}
	closeErr := sink.Close()
	if appendErr == nil && closeErr == nil {
		t.Fatal("bad chunk produced no error from Append or Close")
	}
	if again := sink.Close(); again != closeErr {
		t.Errorf("second Close() = %v, want the same %v", again, closeErr)
	}
	if err := sink.Append(tbl.Chunks[0]); err == nil {
		t.Error("Append after Close succeeded")
	}
}

// TestParallelStreamCancellation abandons a budgeted streaming merge — with
// parallel ingest and read-ahead goroutines live — mid-stream: Close must
// still stop the prefetchers, delete every spill file, and return every
// broker byte.
func TestParallelStreamCancellation(t *testing.T) {
	tbl := mixedTable(6*vector.DefaultVectorSize, 105)
	broker := mem.NewBroker("cancel", 48<<10)
	s, err := NewSorter(tbl.Schema, parallelTestKeys,
		Options{Threads: 4, RunSize: 700, Broker: broker})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewParallelSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !s.streamMerge {
		t.Fatal("48KiB budget did not defer the final merge to the iterator")
	}

	it, err := s.Rows()
	if err != nil {
		t.Fatal(err)
	}
	// One chunk in, the merge (and its prefetch goroutines) is mid-flight;
	// walk away.
	if chunk, err := it.Next(); err != nil || chunk == nil {
		t.Fatalf("first streamed chunk: %v, %v", chunk, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	tmp := s.spillTmpDir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if tmp != "" {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("spill dir %s survived Close after abandoned merge", tmp)
		}
	}
	if used := broker.Used(); used != 0 {
		t.Errorf("broker holds %d bytes after Close, want 0", used)
	}
}

// TestMultiPassMergePlanRecorded forces intermediate merge passes with a
// budget far below fan-in × healthy blocks and checks the plan lands in
// the stats: passes ran, the final fan-in obeys the plan, and the output
// still matches the unbudgeted sort.
func TestMultiPassMergePlanRecorded(t *testing.T) {
	tbl := mixedTable(40_000, 106)
	want := sortWith(t, tbl, parallelTestKeys, Options{Threads: 1, RunSize: 600,
		SpillDir: t.TempDir(), ReadAhead: -1, ExtMergeThreads: 1})
	wantRows := rowify(t, want)

	broker := mem.NewBroker("multipass", 64<<10)
	opt := Options{Threads: 2, RunSize: 600, Broker: broker}
	got, st := parallelSort(t, tbl, parallelTestKeys, opt)
	if st.MergePasses == 0 {
		t.Fatalf("64KiB budget over %d runs forced no intermediate merge passes: %+v",
			st.RunsGenerated, st)
	}
	if st.MergePassRuns < 2*st.MergePasses {
		t.Errorf("%d merge passes consumed only %d runs", st.MergePasses, st.MergePassRuns)
	}
	if st.MergePassBytes == 0 {
		t.Error("merge passes rewrote no bytes")
	}
	if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
		t.Error("multi-pass merge output differs from single-pass sort")
	}
	if used := broker.Used(); used != 0 {
		t.Errorf("broker holds %d bytes after Close, want 0", used)
	}
}
