package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

// TestQuickRandomSchemasAndSpecs is the sorter's property test: random
// schemas, random data (with NULLs), random sort specifications and random
// tuning options must always produce the oracle's order.
func TestQuickRandomSchemasAndSpecs(t *testing.T) {
	typePool := []vector.Type{
		vector.Bool, vector.Int8, vector.Int16, vector.Int32, vector.Int64,
		vector.Uint8, vector.Uint16, vector.Uint32, vector.Uint64,
		vector.Float32, vector.Float64, vector.Varchar,
	}
	check := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		numCols := 1 + rng.Intn(6)
		schema := make(vector.Schema, numCols)
		for c := range schema {
			schema[c] = vector.Column{
				Name: fmt.Sprintf("c%d", c),
				Type: typePool[rng.Intn(len(typePool))],
			}
		}
		n := rng.Intn(4000)
		tbl := vector.NewTable(schema)
		for start := 0; start < n; start += vector.DefaultVectorSize {
			count := min(vector.DefaultVectorSize, n-start)
			chunk := vector.NewChunk(schema, count)
			for r := 0; r < count; r++ {
				for c := range schema {
					appendRandomValue(chunk.Vectors[c], rng)
				}
			}
			if err := tbl.AppendChunk(chunk); err != nil {
				t.Fatal(err)
			}
		}

		numKeys := 1 + rng.Intn(numCols)
		keys := make([]SortColumn, numKeys)
		for i := range keys {
			keys[i] = SortColumn{
				Column:     rng.Intn(numCols),
				Descending: rng.Intn(2) == 1,
				NullsLast:  rng.Intn(2) == 1,
			}
			if rng.Intn(4) == 0 {
				keys[i].PrefixLen = 1 + rng.Intn(6) // stress string truncation
			}
		}
		opt := Options{
			Threads:      1 + rng.Intn(4),
			RunSize:      64 + rng.Intn(2000),
			ForcePdqsort: rng.Intn(4) == 0,
			Adaptive:     rng.Intn(4) == 0,
		}
		got, err := SortTable(tbl, keys, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSorted(t, tbl, got, keys, fmt.Sprintf("fuzz seed %d", seed))
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// appendRandomValue appends a random (possibly NULL) value of v's type,
// biased toward small domains so ties and tie-breaks are common.
func appendRandomValue(v *vector.Vector, rng *workload.RNG) {
	if rng.Float64() < 0.12 {
		v.AppendNull()
		return
	}
	small := rng.Intn(2) == 0 // small domains produce ties
	switch v.Type() {
	case vector.Bool:
		v.AppendBool(rng.Intn(2) == 1)
	case vector.Int8:
		v.AppendInt8(int8(rng.Uint32()))
	case vector.Int16:
		v.AppendInt16(int16(rng.Uint32()))
	case vector.Int32:
		if small {
			v.AppendInt32(int32(rng.Intn(8)) - 4)
		} else {
			v.AppendInt32(int32(rng.Uint32()))
		}
	case vector.Int64:
		v.AppendInt64(int64(rng.Uint64()))
	case vector.Uint8:
		v.AppendUint8(uint8(rng.Uint32()))
	case vector.Uint16:
		v.AppendUint16(uint16(rng.Uint32()))
	case vector.Uint32:
		if small {
			v.AppendUint32(uint32(rng.Intn(8)))
		} else {
			v.AppendUint32(rng.Uint32())
		}
	case vector.Uint64:
		v.AppendUint64(rng.Uint64())
	case vector.Float32:
		v.AppendFloat32(float32(rng.Intn(16)))
	case vector.Float64:
		v.AppendFloat64(rng.Float64() * 10)
	case vector.Varchar:
		letters := "abAB"
		l := rng.Intn(20)
		b := make([]byte, l)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		v.AppendString(string(b))
	}
}
