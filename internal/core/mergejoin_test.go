package core

import (
	"fmt"
	"sort"
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func intTable(t *testing.T, name string, a []int32, b []string) *vector.Table {
	t.Helper()
	schema := vector.Schema{{Name: name + "_k", Type: vector.Int32}, {Name: name + "_v", Type: vector.Varchar}}
	kv := vector.New(vector.Int32, len(a))
	vv := vector.New(vector.Varchar, len(a))
	for i := range a {
		kv.AppendInt32(a[i])
		vv.AppendString(b[i])
	}
	tbl, err := vector.TableFromColumns(schema, kv, vv)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// nestedLoopJoin is the oracle: every matching pair, as strings.
func nestedLoopJoin(left, right *vector.Table, lk, rk []int) []string {
	lcols := materializeColumns(left)
	rcols := materializeColumns(right)
	var out []string
	for i := 0; i < left.NumRows(); i++ {
		for j := 0; j < right.NumRows(); j++ {
			match := true
			for k := range lk {
				lv, rv := lcols[lk[k]].Value(i), rcols[rk[k]].Value(j)
				if lv == nil || rv == nil || lv != rv {
					match = false
					break
				}
			}
			if match {
				row := ""
				for _, c := range lcols {
					row += fmt.Sprintf("%v|", c.Value(i))
				}
				for _, c := range rcols {
					row += fmt.Sprintf("%v|", c.Value(j))
				}
				out = append(out, row)
			}
		}
	}
	sort.Strings(out)
	return out
}

func joinedRows(t *testing.T, res *vector.Table) []string {
	t.Helper()
	cols := materializeColumns(res)
	out := make([]string, res.NumRows())
	for i := range out {
		row := ""
		for _, c := range cols {
			row += fmt.Sprintf("%v|", c.Value(i))
		}
		out[i] = row
	}
	sort.Strings(out)
	return out
}

func checkJoin(t *testing.T, left, right *vector.Table, lk, rk []int, ctx string) {
	t.Helper()
	res, err := MergeJoin(left, right, lk, rk, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := joinedRows(t, res)
	want := nestedLoopJoin(left, right, lk, rk)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got %q, want %q", ctx, i, got[i], want[i])
		}
	}
}

func TestMergeJoinBasic(t *testing.T) {
	left := intTable(t, "l", []int32{1, 2, 2, 3}, []string{"a", "b", "c", "d"})
	right := intTable(t, "r", []int32{2, 2, 3, 4}, []string{"x", "y", "z", "w"})
	checkJoin(t, left, right, []int{0}, []int{0}, "basic")
}

func TestMergeJoinDuplicatesCrossProduct(t *testing.T) {
	left := intTable(t, "l", []int32{5, 5, 5}, []string{"a", "b", "c"})
	right := intTable(t, "r", []int32{5, 5}, []string{"x", "y"})
	res, err := MergeJoin(left, right, []int{0}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Fatalf("cross product should have 6 rows, got %d", res.NumRows())
	}
	checkJoin(t, left, right, []int{0}, []int{0}, "cross product")
}

func TestMergeJoinNullKeysNeverMatch(t *testing.T) {
	schema := vector.Schema{{Name: "k", Type: vector.Int32}}
	mk := func(vals []any) *vector.Table {
		v := vector.New(vector.Int32, len(vals))
		for _, x := range vals {
			if x == nil {
				v.AppendNull()
			} else {
				v.AppendInt32(x.(int32))
			}
		}
		tbl, err := vector.TableFromColumns(schema, v)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	left := mk([]any{nil, int32(1), nil})
	right := mk([]any{nil, int32(1)})
	res, err := MergeJoin(left, right, []int{0}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("NULLs must not join: got %d rows, want 1", res.NumRows())
	}
}

func TestMergeJoinMultiKeyAndStrings(t *testing.T) {
	rng := workload.NewRNG(111)
	mk := func(n int, name string) *vector.Table {
		schema := vector.Schema{
			{Name: name + "_s", Type: vector.Varchar},
			{Name: name + "_i", Type: vector.Int32},
			{Name: name + "_pay", Type: vector.Int64},
		}
		sv := vector.New(vector.Varchar, n)
		iv := vector.New(vector.Int32, n)
		pv := vector.New(vector.Int64, n)
		for i := 0; i < n; i++ {
			sv.AppendString(fmt.Sprintf("g%d", rng.Intn(8)))
			iv.AppendInt32(int32(rng.Intn(4)))
			pv.AppendInt64(int64(i))
		}
		tbl, err := vector.TableFromColumns(schema, sv, iv, pv)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	left, right := mk(120, "l"), mk(90, "r")
	checkJoin(t, left, right, []int{0, 1}, []int{0, 1}, "multi key")
}

func TestMergeJoinEmptySides(t *testing.T) {
	left := intTable(t, "l", nil, nil)
	right := intTable(t, "r", []int32{1}, []string{"x"})
	res, err := MergeJoin(left, right, []int{0}, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Fatal("empty join should be empty")
	}
}

func TestMergeJoinErrors(t *testing.T) {
	left := intTable(t, "l", []int32{1}, []string{"a"})
	right := intTable(t, "r", []int32{1}, []string{"b"})
	if _, err := MergeJoin(left, right, nil, nil, Options{}); err == nil {
		t.Fatal("empty keys should error")
	}
	if _, err := MergeJoin(left, right, []int{0}, []int{0, 1}, Options{}); err == nil {
		t.Fatal("mismatched key arity should error")
	}
	if _, err := MergeJoin(left, right, []int{9}, []int{0}, Options{}); err == nil {
		t.Fatal("out-of-range key should error")
	}
	if _, err := MergeJoin(left, right, []int{0}, []int{1}, Options{}); err == nil {
		t.Fatal("type-mismatched keys should error")
	}
}

func TestMergeJoinLarger(t *testing.T) {
	// A larger randomized join against the nested-loop oracle.
	rng := workload.NewRNG(112)
	mk := func(n int, name string) *vector.Table {
		schema := vector.Schema{{Name: name, Type: vector.Int32}}
		v := vector.New(vector.Int32, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.05 {
				v.AppendNull()
			} else {
				v.AppendInt32(int32(rng.Intn(50)))
			}
		}
		tbl, err := vector.TableFromColumns(schema, v)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	checkJoin(t, mk(400, "l"), mk(300, "r"), []int{0}, []int{0}, "larger")
}
