package core

import (
	"container/heap"
	"fmt"

	"rowsort/internal/obs"
	"rowsort/internal/row"
	"rowsort/internal/vector"
)

// TopN is the specialized operator real systems substitute for
// ORDER BY ... LIMIT n (the optimization the paper's benchmark query has to
// outmaneuver with its count-over-subquery trick). Instead of sorting all
// input it keeps only the current n best rows in a bounded max-heap of
// normalized keys, so memory stays O(n) and each input row costs at most
// one key comparison plus a possible heap update.
type TopN struct {
	s     *Sorter
	ow    *obs.Worker // the operator's trace lane (nil without telemetry)
	limit int

	h       *keyHeap
	payload *row.RowSet
}

// NewTopN returns a Top-N operator returning the first limit rows of the
// ORDER BY described by keys.
func NewTopN(schema vector.Schema, keys []SortColumn, limit int, opt Options) (*TopN, error) {
	if limit < 0 {
		return nil, fmt.Errorf("core: negative LIMIT %d", limit)
	}
	s, err := NewSorter(schema, keys, opt)
	if err != nil {
		return nil, err
	}
	t := &TopN{s: s, ow: s.rec.Worker("topn"), limit: limit, payload: row.NewRowSet(s.layout)}
	t.h = &keyHeap{}
	return t, nil
}

// Stats snapshots the operator's telemetry: rows ingested, ingest spans and
// stage durations (merge and spill counters stay zero — Top-N never runs
// those phases).
func (t *TopN) Stats() SortStats { return t.s.Stats() }

// keyHeap is a max-heap of key rows: the root is the current worst of the
// best n, so a new row only enters if it beats the root.
type keyHeap struct {
	rows [][]byte
	cmp  func(a, b []byte) int
}

func (h *keyHeap) Len() int           { return len(h.rows) }
func (h *keyHeap) Less(i, j int) bool { return h.cmp(h.rows[i], h.rows[j]) > 0 }
func (h *keyHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *keyHeap) Push(x any)         { h.rows = append(h.rows, x.([]byte)) }
func (h *keyHeap) Pop() any {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

// Append feeds one chunk into the operator.
//
// Payload note: rejected rows' payload is not reclaimed until Result; for
// limit << input this wastes space proportional to the input, like a
// naive top-N. Real systems compact periodically; Result here gathers only
// the surviving rows, so the output is exact either way.
func (t *TopN) Append(c *vector.Chunk) error {
	s := t.s
	if len(c.Vectors) != len(s.schema) {
		return fmt.Errorf("core: chunk has %d columns, schema has %d", len(c.Vectors), len(s.schema))
	}
	n := c.Len()
	if n == 0 || t.limit == 0 {
		return nil
	}
	s.markStart()
	sp := t.ow.Begin(obs.PhaseIngest)
	defer sp.End()
	s.rowsIn.Add(int64(n))
	if t.h.cmp == nil {
		t.h.cmp = s.comparator(func(_, idx uint32) (*row.RowSet, int) { return t.payload, int(idx) })
	}

	base := t.payload.Len()
	if err := t.payload.AppendChunk(c.Vectors); err != nil {
		return err
	}
	keyCols := make([]*vector.Vector, len(s.keys))
	for i, kc := range s.keys {
		keyCols[i] = c.Vectors[kc.Column]
	}
	buf := make([]byte, n*s.rowWidth)
	if err := s.enc.Encode(keyCols, buf, s.rowWidth, 0); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		keyRow := buf[r*s.rowWidth : (r+1)*s.rowWidth]
		s.putRef(keyRow, 0, uint32(base+r))
		if t.h.Len() < t.limit {
			heap.Push(t.h, append([]byte(nil), keyRow...))
			continue
		}
		if t.h.cmp(keyRow, t.h.rows[0]) < 0 {
			// Beats the current worst: replace the root.
			copy(t.h.rows[0], keyRow)
			heap.Fix(t.h, 0)
		}
	}
	return nil
}

// Result returns the top-N rows in sorted order as a columnar table. The
// operator is exhausted afterwards.
func (t *TopN) Result() (*vector.Table, error) {
	s := t.s
	sp := t.ow.Begin(obs.PhaseGather)
	defer sp.End()
	if t.h.cmp == nil {
		t.h.cmp = s.comparator(func(_, idx uint32) (*row.RowSet, int) { return t.payload, int(idx) })
	}
	// Drain the heap: pops come worst-first, so fill backwards.
	ordered := make([][]byte, t.h.Len())
	for i := len(ordered) - 1; i >= 0; i-- {
		ordered[i] = heap.Pop(t.h).([]byte)
	}
	out := vector.NewTable(s.schema)
	idxs := make([]uint32, vector.DefaultVectorSize)
	for start := 0; start < len(ordered); start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, len(ordered)-start)
		refs := idxs[:count]
		for r := 0; r < count; r++ {
			_, refs[r] = s.getRef(ordered[start+r])
		}
		chunk := &vector.Chunk{Vectors: make([]*vector.Vector, len(s.schema))}
		for c := range s.schema {
			v := vector.NewDense(s.schema[c].Type, count)
			t.payload.GatherColumn(c, refs, v)
			chunk.Vectors[c] = v
		}
		if err := out.AppendChunk(chunk); err != nil {
			return nil, err
		}
	}
	return out, nil
}
