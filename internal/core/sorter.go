package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rowsort/internal/mem"
	"rowsort/internal/mergepath"
	"rowsort/internal/normkey"
	"rowsort/internal/obs"
	"rowsort/internal/perfmodel"
	"rowsort/internal/radix"
	"rowsort/internal/row"
	"rowsort/internal/sortalgo"
	"rowsort/internal/strategy"
	"rowsort/internal/vector"
)

// Sorter is the relational sort operator. Typical use:
//
//	s, _ := core.NewSorter(schema, keys, core.Options{})
//	sink := s.NewSink()            // one per producing thread
//	sink.Append(chunk)             // repeatedly
//	sink.Close()
//	s.Finalize()                   // parallel merge
//	result, _ := s.Result()        // sorted table, columnar again
//
// SortTable wraps all of this for a materialized table.
type Sorter struct {
	schema vector.Schema
	keys   []SortColumn
	opt    Options

	enc      *normkey.Encoder
	layout   *row.Layout // payload layout: all schema columns
	keyWidth int         // normalized key bytes per row
	rowWidth int         // key row stride: keyWidth + 8-byte payload ref, 8-aligned

	mu        sync.Mutex
	runs      []*sortedRun
	decisions []StrategyDecision // one per generated run, appended under mu
	finalized bool
	finalKeys []byte

	// Deferred streaming merge (budgeted external sorts): Finalize only
	// reduces the fan-in to what the budget can stream and records the
	// surviving runs here; the final pass runs inside the result iterator.
	streamMerge  bool
	streamUsed   bool // the single-pass streaming merge has been handed out
	streamActive []uint32
	streamTotal  int

	mergeStats mergepath.Stats

	// Spill bookkeeping: every file the sorter creates is tracked until it
	// is removed, so Close can clean up after aborted sorts; the byte
	// counters verify the streaming merge's single read pass.
	spillMu      sync.Mutex
	spillPaths   map[string]struct{}
	spillTmpDir  string // lazily created when spilling without SpillDir (guarded by spillMu)
	closed       bool   // Close has run (guarded by spillMu)
	closeErr     error  // the last Close's result (guarded by spillMu)
	spillWritten atomic.Int64
	spillRead    atomic.Int64

	// Memory governance: every resident byte the sorter holds is charged to
	// broker — sink buffers through per-sink reservations, sorted runs
	// through runRes, recycled buffers parked in the pools through poolRes,
	// merge block buffers through per-merge reservations. The broker's
	// high-water mark feeds SortStats.PeakResidentRunBytes; crossing the
	// budget fires the pressure subscription, which flips pressured so
	// sinks cut their pending runs early and shed resident runs to disk.
	broker         *mem.Broker
	runRes         *mem.Reservation // resident sorted runs (keys + payload capacity)
	poolRes        *mem.Reservation // recycled buffers parked in the pools
	unsub          func()
	keyBufs        *row.BufPool
	sets           *row.SetPool
	pressured      atomic.Bool
	pressureSpills atomic.Int64

	// Telemetry: rec records phase spans when Options.Telemetry is set (nil
	// disables span recording at zero cost); the counters below feed
	// SortStats and are maintained unconditionally. Lifecycle timestamps
	// are nanoseconds since epoch, stored +1 so zero means "not reached".
	//
	// prog is the live progress block the observability registry serves:
	// the hot paths mirror their counters into it with plain atomic adds.
	// It is always allocated (so hooks never nil-check); obsRun is non-nil
	// only when Options.Registry registered the run, and Close marks it
	// done, freezing the final SortStats into the registry.
	rec             *obs.Recorder
	prog            *obs.Progress
	obsRun          *obs.RunHandle
	epoch           time.Time
	rowsIn          atomic.Int64
	runsGen         atomic.Int64
	normKeyBytes    atomic.Int64
	physKeyBytes    atomic.Int64
	dictEscapes     atomic.Int64
	runsGrouped     atomic.Int64
	dupGroupRows    atomic.Int64
	runsTieRepaired atomic.Int64
	spillBlocksFC   atomic.Int64
	gatherBytes     atomic.Int64
	durGather       atomic.Int64
	spillRemoved    atomic.Int64
	spillRemoveErrs atomic.Int64
	tFirstAppend    atomic.Int64
	tFinalizeStart  atomic.Int64
	tFinalizeEnd    atomic.Int64
	tResultEnd      atomic.Int64

	// Parallel external merge counters: spill read-ahead effectiveness
	// (blocks decoded ahead, blocks already queued when the merge asked,
	// time the merge stalled waiting for a block), the executed multi-pass
	// merge plan, and the final merge's partition fan-out.
	prefetchBlocks  atomic.Int64
	prefetchHits    atomic.Int64
	prefetchStallNs atomic.Int64
	mergePasses     atomic.Int64
	mergePassRuns   atomic.Int64
	mergePassBytes  atomic.Int64
	mergeFanIn      atomic.Int64
	extMergeParts   atomic.Int64
}

// sinceEpoch returns the sorter's monotonic clock reading in nanoseconds.
func (s *Sorter) sinceEpoch() int64 { return int64(time.Since(s.epoch)) }

// markStart records the first Append's timestamp (the start of the
// run-generation stage). One relaxed load per chunk on the steady path.
func (s *Sorter) markStart() {
	if s.tFirstAppend.Load() == 0 {
		s.tFirstAppend.CompareAndSwap(0, s.sinceEpoch()+1)
		s.prog.AdvanceTo(obs.StageRunGen)
	}
}

// getKeyBuf returns an empty key buffer, recycled when available. Pool
// custody is charged to poolRes, so recycled capacity counts against the
// budget until it is handed back out.
func (s *Sorter) getKeyBuf() []byte { return s.keyBufs.Get() }

// putKeyBuf recycles a key buffer whose contents are dead.
func (s *Sorter) putKeyBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	s.keyBufs.Put(b)
}

// getRowSet returns an empty payload row set, recycled when available.
func (s *Sorter) getRowSet() *row.RowSet { return s.sets.Get() }

// putRowSet recycles a payload row set whose contents are dead.
func (s *Sorter) putRowSet(rs *row.RowSet) {
	if rs == nil {
		return
	}
	s.sets.Put(rs)
}

// sortedRun is one thread-local sorted run: sorted key rows plus the
// payload physically reordered to match (so scans read it sequentially).
// The strategy fields carry the run's sampled execution plan forward into
// the spill and merge phases; they are zero for unplanned (non-adaptive)
// runs.
type sortedRun struct {
	id       uint32
	keys     []byte
	payload  *row.RowSet
	rows     int  // row count, valid even after the buffers move to disk
	tieBreak bool // some string may exceed its prefix (or embed NUL)
	spilling bool // claimed by a spiller (guarded by Sorter.mu)
	spill    *spillFile

	role      strategy.MergeRole // merge-scheduling hint from the run's plan
	blockHint int                // planned spill block rows (0 = default)
	frontCode bool               // attempt spill-block key front coding
}

// runBytes is a resident run's accounted footprint: key-buffer plus payload
// capacity (capacities, not lengths — that is what the allocator actually
// holds and what the pools will recycle).
func runBytes(r *sortedRun) int64 {
	return int64(cap(r.keys)) + r.payload.CapBytes()
}

// NewSorter validates the specification and returns a sorter.
func NewSorter(schema vector.Schema, keys []SortColumn, opt Options) (*Sorter, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := validateKeys(schema, keys); err != nil {
		return nil, err
	}
	nkeys := make([]normkey.SortKey, len(keys))
	for i, k := range keys {
		order := normkey.Ascending
		if k.Descending {
			order = normkey.Descending
		}
		nulls := normkey.NullsFirst
		if k.NullsLast {
			nulls = normkey.NullsLast
		}
		coll := normkey.CollationBinary
		if k.CaseInsensitive {
			coll = normkey.CollationNoCase
		}
		nkeys[i] = normkey.SortKey{
			Column:    k.Column,
			Type:      schema[k.Column].Type,
			Order:     order,
			Nulls:     nulls,
			PrefixLen: k.PrefixLen,
			Collation: coll,
		}
	}
	enc, err := normkey.NewEncoder(nkeys)
	if err != nil {
		return nil, err
	}
	s := &Sorter{
		schema:   schema,
		keys:     append([]SortColumn(nil), keys...),
		opt:      opt,
		enc:      enc,
		layout:   row.NewLayout(schema.Types()),
		keyWidth: enc.Width(),
		rec:      opt.Telemetry,
		prog:     &obs.Progress{},
		epoch:    time.Now(),
	}
	s.rowWidth = (s.keyWidth + refBytes + 7) &^ 7

	// The sorter always runs under a broker — a child of the shared one
	// when Options.Broker is set, a private root otherwise — so peak
	// accounting works even for unbudgeted sorts. MemoryLimit bounds the
	// child; zero means only the parent's budget (if any) applies.
	s.broker = opt.Broker.Child("sorter", opt.MemoryLimit)
	s.runRes = s.broker.Reserve("runs", 0)
	s.poolRes = s.broker.Reserve("pools", 0)
	s.keyBufs = row.NewBufPool(s.poolRes)
	s.sets = row.NewSetPool(s.layout, s.poolRes)
	if opt.limited() {
		s.unsub = s.broker.Subscribe(func(int64) { s.pressured.Store(true) })
	}
	if opt.Registry != nil {
		external := opt.SpillDir != "" || opt.limited()
		w := perfmodel.SortPhaseWeights(s.keyWidth, s.layout.Width(), external)
		s.obsRun = opt.Registry.Register(obs.RunOptions{
			Label:          opt.RunLabel,
			Fingerprint:    opt.Fingerprint(),
			Progress:       s.prog,
			Recorder:       s.rec,
			Weights:        obs.PhaseWeights{Ingest: w.Ingest, RunSort: w.RunSort, Merge: w.Merge, Gather: w.Gather},
			MemUsed:        s.broker.Used,
			MemPeak:        s.broker.Peak,
			MemLimit:       opt.MemoryLimit,
			PressureEvents: s.broker.PressureEvents,
			FinalStats: func() any {
				st := s.Stats()
				return &st
			},
			Strategy: s.strategyDecisions,
		})
	}
	return s, nil
}

// SetExpectedRows declares the total input rows up front, when the caller
// knows them (SortTable does), so the registry's progress estimation has a
// denominator before ingestion finishes. Optional; harmless to skip.
func (s *Sorter) SetExpectedRows(n int64) { s.prog.RowsExpected.Store(n) }

// refBytes is the payload reference appended to every key row: the run id
// and the row index within the run's payload.
const refBytes = 8

// putRef stores the payload reference behind the key bytes. The reference
// is never part of the compared prefix, so its byte order is free to be
// native little-endian.
//
//rowsort:hotpath
func (s *Sorter) putRef(keyRow []byte, runID, idx uint32) {
	binary.LittleEndian.PutUint32(keyRow[s.keyWidth:], runID)
	binary.LittleEndian.PutUint32(keyRow[s.keyWidth+4:], idx)
}

//rowsort:hotpath
func (s *Sorter) getRef(keyRow []byte) (runID, idx uint32) {
	return binary.LittleEndian.Uint32(keyRow[s.keyWidth:]),
		binary.LittleEndian.Uint32(keyRow[s.keyWidth+4:])
}

// Sink is a per-thread ingestion point. It accumulates converted rows and
// cuts a sorted run whenever RunSize rows are pending. Sinks are not safe
// for concurrent use; create one per producing goroutine.
type Sink struct {
	s        *Sorter
	ow       *obs.Worker      // this sink's trace lane (nil without telemetry)
	res      *mem.Reservation // pending-run buffers, charged to the sorter's broker
	planner  *strategy.Planner
	keys     []byte
	payload  *row.RowSet
	n        int
	tieBreak bool
	closed   bool
}

// NewSink registers and returns a new ingestion sink.
func (s *Sorter) NewSink() *Sink {
	k := &Sink{s: s, ow: s.rec.Worker("sink"), res: s.broker.Reserve("sink", 0),
		keys: s.getKeyBuf(), payload: s.getRowSet()}
	k.account()
	return k
}

// account syncs the sink's reservation with its buffers' capacity. The
// return value is the budget verdict: false means the broker is over budget
// and the pending run should be cut early (the bytes are charged either
// way — accounting stays truthful, the caller sheds load).
func (k *Sink) account() bool {
	return k.res.SetTo(int64(cap(k.keys)) + k.payload.CapBytes())
}

// growKeys extends the sink's key buffer by n rows and returns the byte
// offset of the new region. Capacity grows by doubling, amortized to the
// run size — the previous append(make([]byte, n*rowWidth)...) allocated
// (and zeroed) a throwaway slice on every chunk.
func (k *Sink) growKeys(n int) int {
	rw := k.s.rowWidth
	need := len(k.keys) + n*rw
	if cap(k.keys) < need {
		target := k.s.opt.runSize() * rw
		newCap := 2 * cap(k.keys)
		if newCap == 0 {
			newCap = 64 * rw
		}
		if newCap > target {
			newCap = target
		}
		if newCap < need {
			newCap = need
		}
		nb := make([]byte, len(k.keys), newCap)
		copy(nb, k.keys)
		k.keys = nb
	}
	start := len(k.keys)
	k.keys = k.keys[:need]
	// Zero the extension: recycled buffers carry stale bytes, and the
	// alignment padding past each row's payload ref is never written.
	clear(k.keys[start:])
	return start
}

// Append converts one chunk into the sink's pending run: payload columns
// are scattered to the row format, key columns are normalized — both one
// vector at a time.
func (k *Sink) Append(c *vector.Chunk) error {
	if k.closed {
		return fmt.Errorf("core: append to closed sink")
	}
	s := k.s
	if len(c.Vectors) != len(s.schema) {
		return fmt.Errorf("core: chunk has %d columns, schema has %d", len(c.Vectors), len(s.schema))
	}
	n := c.Len()
	if n == 0 {
		return nil
	}
	s.markStart()
	sp := k.ow.Begin(obs.PhaseIngest)
	base := k.payload.Len()
	if err := k.payload.AppendChunk(c.Vectors); err != nil {
		sp.End()
		return err
	}

	keyCols := make([]*vector.Vector, len(s.keys))
	for i, kc := range s.keys {
		keyCols[i] = c.Vectors[kc.Column]
	}
	start := k.growKeys(n)
	st, err := s.enc.EncodeChunk(keyCols, k.keys[start:], s.rowWidth, 0)
	if err != nil {
		sp.End()
		return err
	}
	for r := 0; r < n; r++ {
		s.putRef(k.keys[start+r*s.rowWidth:start+(r+1)*s.rowWidth], 0, uint32(base+r))
	}
	k.n += n
	s.rowsIn.Add(int64(n))
	s.prog.RowsIngested.Add(int64(n))

	// The encoder reports per-chunk whether any encoded key could byte-tie
	// with a different value's encoding (overlong or NUL-bearing string
	// prefixes, dictionary escapes, truncation collisions) — runs built only
	// from lossless chunks keep the comparison-free radix path.
	if st.Ties {
		k.tieBreak = true
	}
	if st.Escapes != 0 {
		s.dictEscapes.Add(st.Escapes)
	}
	overBudget := !k.account()
	sp.End()

	// Cut the run at the configured size — or early, when the broker
	// reports pressure (this sink's growth pushed past the budget, or any
	// sharer of the broker did): a cut run is something the pressure
	// spiller can shed to disk, a pending one is not.
	if k.n >= s.opt.runSize() ||
		(s.opt.limited() && (overBudget || s.pressured.Swap(false))) {
		return k.flush()
	}
	return nil
}

// Close flushes the sink's remaining rows as a final (possibly short) run
// and returns the sink's buffers to the sorter's pools.
func (k *Sink) Close() error {
	if k.closed {
		return nil
	}
	k.closed = true
	var err error
	if k.n > 0 {
		err = k.flush()
	}
	k.s.putKeyBuf(k.keys)
	k.s.putRowSet(k.payload)
	k.keys, k.payload = nil, nil
	k.res.Release()
	return err
}

// flush sorts the pending rows into a run and registers it globally.
func (k *Sink) flush() error {
	s := k.s
	keys, payload, n := k.keys, k.payload, k.n
	k.keys, k.payload, k.n = s.getKeyBuf(), s.getRowSet(), 0
	tb := k.tieBreak
	k.tieBreak = false
	// The cut buffers leave the sink's reservation here and enter the
	// resident-run one below, once sorted. The window in between (the sort
	// plus the payload reorder, which briefly holds both payload copies) is
	// the per-sink accounting slack documented in DESIGN.md.
	k.account()
	sp := k.ow.Begin(obs.PhaseRunSort)

	// Sort the normalized keys: radix sort when plain byte order is the
	// tuple order; pdqsort with a tie-breaking comparator when truncated
	// string prefixes may collide (the paper's algorithm choice). With
	// Adaptive set, the strategy planner samples the pending run and picks
	// the run sort from modeled costs (see internal/strategy). Two
	// compressed-key refinements: a lossy compressed run whose tie-capable
	// segment is last radix-sorts its bytes and repairs the byte-equal
	// blocks, and a byte-decisive duplicate-heavy run may sort grouped
	// (KeyCompRLE) — both byte-identical to the baseline paths. Every arm
	// records its decision, so SortStats.StrategyDecisions explains each
	// run even when the plan was dictated rather than sampled.
	var plan strategy.Plan
	dec := StrategyDecision{Rows: n}
	switch {
	case tb && !s.opt.ForcePdqsort && s.enc.Plan().Active() && s.ovcSafeWidth(true) == s.keyWidth:
		// Byte order is exact between rows whose bytes differ (the sole
		// tie-capable segment is the last one), so only full byte-equal
		// blocks — dictionary escapes sharing a gap, truncation collisions
		// — can be misordered after a plain byte sort.
		radix.Sort(keys, s.rowWidth, s.keyWidth)
		s.repairTies(keys, n, payload)
		s.runsTieRepaired.Add(1)
		dec.Algo, dec.Forced = "radix+repair", "tie-break"
	case tb || s.opt.ForcePdqsort:
		r := sortalgo.NewRows(keys, s.rowWidth)
		r.Compare = s.comparator(func(_, idx uint32) (*row.RowSet, int) { return payload, int(idx) })
		r.Pdqsort()
		dec.Algo, dec.Forced = strategy.AlgoPdqsort.String(), "option"
		if tb {
			dec.Forced = "tie-break"
		}
	case s.opt.Adaptive:
		plan = k.strategyPlanner().PlanRun(keys, n)
		keys = s.sortRunPlanned(keys, payload, n, plan, &dec)
	default:
		keys = s.radixSortRun(keys, n, &dec)
		dec.Forced = "static"
	}

	// Register the run id first (so merge order is stable), then physically
	// reorder the payload to the sorted order and point the key refs at the
	// new positions. The buffers are published under s.mu only once they
	// are final: concurrent pressure spillers scan s.runs and must never
	// observe a half-built run.
	s.mu.Lock()
	runID := uint32(len(s.runs))
	run := &sortedRun{id: runID, tieBreak: tb, rows: n,
		role: plan.MergeRole, blockHint: plan.SpillBlockRows, frontCode: plan.FrontCode}
	s.runs = append(s.runs, run)
	dec.Run = int(runID)
	s.decisions = append(s.decisions, dec)
	s.mu.Unlock()

	idxs := make([]uint32, n)
	for i := 0; i < n; i++ {
		keyRow := keys[i*s.rowWidth : (i+1)*s.rowWidth]
		_, idxs[i] = s.getRef(keyRow)
		s.putRef(keyRow, runID, uint32(i))
	}
	sorted := s.getRowSet()
	sorted.Reserve(n)
	sorted.AppendRowsFrom(payload, idxs)
	s.putRowSet(payload)
	withinBudget := s.runRes.Grow(int64(cap(keys)) + sorted.CapBytes())
	s.mu.Lock()
	run.keys = keys
	run.payload = sorted
	s.mu.Unlock()
	sp.End()

	s.runsGen.Add(1)
	s.prog.RowsSorted.Add(int64(n))
	s.prog.RunsGenerated.Add(1)
	// NormKeyBytes stays in logical (uncompressed) terms so the number is
	// comparable across encodings; PhysKeyBytes is what was actually
	// emitted — the gap is the compression saving.
	s.normKeyBytes.Add(int64(n) * int64(s.enc.FullWidth()))
	s.physKeyBytes.Add(int64(n) * int64(s.keyWidth))

	if s.opt.limited() {
		if !withinBudget || s.broker.OverBudget() {
			return s.spillUnderPressure(k.ow)
		}
		return nil
	}
	if s.opt.SpillDir != "" {
		// Unbudgeted external sort: the original eager policy, every run
		// goes to disk as it is cut.
		return s.spillRun(run, k.ow)
	}
	return nil
}

// strategyPlanner lazily builds this sink's per-run planner (Adaptive
// sorts only). The planner owns sampling scratch and is reused across the
// sink's runs; the config captures the sort's fixed shape — key segment
// offsets for the per-segment sketches, and the spill-block default the
// plan's block hint is relative to (zero when the user pinned the block
// shape or a budget makes mergepath size blocks dynamically).
func (k *Sink) strategyPlanner() *strategy.Planner {
	if k.planner == nil {
		s := k.s
		segOffs := make([]int, len(s.keys))
		for i := range s.keys {
			segOffs[i] = s.enc.Offset(i)
		}
		blockRows := 0
		if s.opt.SpillBlockRows == 0 && !s.opt.limited() {
			blockRows = DefaultSpillBlockRows
		}
		k.planner = strategy.NewPlanner(strategy.Config{
			RowWidth: s.rowWidth,
			KeyWidth: s.keyWidth,
			SegOffs:  segOffs,
			// The adaptive arm is only reached for byte-decisive runs (no
			// tie-break), so grouping byte-equal rows is always sound here.
			AllowDupGroup:         true,
			DefaultSpillBlockRows: blockRows,
		})
	}
	return k.planner
}

// strategyDecisions snapshots the per-run decision log for the
// observability registry (registered as the run's Strategy closure).
func (s *Sorter) strategyDecisions() []StrategyDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StrategyDecision(nil), s.decisions...)
}

// radixAlgoName names the arm radix.Sort picks for the key width, so
// decisions recorded by non-adaptive paths still say what actually ran.
func radixAlgoName(keyWidth int) string {
	if keyWidth <= radix.LSDThreshold {
		return strategy.AlgoLSDRadix.String()
	}
	return strategy.AlgoMSDRadix.String()
}

// radixSortRun sorts a byte-decisive run. Under KeyCompRLE a
// duplicate-heavy run (adjacent byte-equal key groups averaging two or more
// rows) sorts one representative row per group and expands, moving each
// distinct key through the radix sort once; because radix.Sort is stable,
// the expansion is byte-identical to sorting row at a time. Returns the
// buffer now holding the sorted run — the expansion writes into a recycled
// buffer and returns the input buffer to the pool.
func (s *Sorter) radixSortRun(keys []byte, n int, dec *StrategyDecision) []byte {
	if s.opt.KeyComp&KeyCompRLE != 0 {
		if reps, groups, ok := sortalgo.CollectDupGroups(keys, s.rowWidth, s.keyWidth); ok {
			dec.Algo = strategy.AlgoDupGroup.String()
			return s.expandGroups(keys, reps, groups, n)
		}
	}
	dec.Algo = radixAlgoName(s.keyWidth)
	radix.Sort(keys, s.rowWidth, s.keyWidth)
	return keys
}

// expandGroups finishes a duplicate-group run sort: stable radix sort of
// the representative rows on the key prefix (tags ride along), then group
// expansion into a recycled buffer. Returns the buffer holding the sorted
// run; the input buffer goes back to the pool.
func (s *Sorter) expandGroups(keys, reps []byte, groups, n int) []byte {
	radix.Sort(reps, s.keyWidth+sortalgo.GroupTagBytes, s.keyWidth)
	dst := s.getKeyBuf()
	if cap(dst) < len(keys) {
		s.putKeyBuf(dst)
		dst = make([]byte, len(keys))
	} else {
		dst = dst[:len(keys)]
	}
	sortalgo.ExpandDupGroups(dst, keys, s.rowWidth, reps, s.keyWidth)
	s.putKeyBuf(keys)
	s.runsGrouped.Add(1)
	s.dupGroupRows.Add(int64(n - groups))
	return dst
}

// sortRunPlanned executes a sampled strategy plan for a byte-decisive run
// and records the decision. The duplicate-group arm re-checks the plan
// against the full run (the sample may have oversold the duplication); a
// miss falls back to plain radix and is recorded as such.
func (s *Sorter) sortRunPlanned(keys []byte, payload *row.RowSet, n int, plan strategy.Plan, dec *StrategyDecision) []byte {
	st := plan.Stats
	dec.Algo = plan.Algo.String()
	dec.MergeRole = plan.MergeRole.String()
	dec.Sortedness = st.Sortedness
	dec.EffectiveKeyBytes = st.EffectiveBytes
	dec.DistinctRatio = st.DistinctRatio
	dec.FirstByteEntropy = st.FirstByteEntropy
	dec.DupRunFrac = st.DupRunFrac
	dec.RadixCost = plan.RadixCost
	dec.PdqCost = plan.PdqCost
	dec.SpillBlockRows = plan.SpillBlockRows
	dec.FrontCode = plan.FrontCode
	switch plan.Algo {
	case strategy.AlgoDupGroup:
		reps, groups, ok := sortalgo.CollectDupGroupsMin(keys, s.rowWidth, s.keyWidth, plan.DupGroupMinAvg)
		if ok {
			return s.expandGroups(keys, reps, groups, n)
		}
		dec.Forced = "dup-group-miss"
		dec.Algo = radixAlgoName(s.keyWidth)
		radix.Sort(keys, s.rowWidth, s.keyWidth)
	case strategy.AlgoPdqsort:
		r := sortalgo.NewRows(keys, s.rowWidth)
		r.Compare = s.comparator(func(_, idx uint32) (*row.RowSet, int) { return payload, int(idx) })
		r.Pdqsort()
	case strategy.AlgoMSDRadix:
		radix.SortOpts(keys, s.rowWidth, s.keyWidth, radix.Options{ForceMSD: true})
	default:
		radix.SortOpts(keys, s.rowWidth, s.keyWidth, radix.Options{ForceLSD: true})
	}
	return keys
}

// repairTies restores semantic order inside each maximal block of rows
// whose full key bytes tie, after a plain byte sort of a lossy compressed
// run. Sound only when the sole tie-capable segment is the last one
// (ovcSafeWidth == keyWidth): then a byte difference anywhere decides the
// semantic order, so misordered pairs are confined to byte-equal blocks.
// Blocks are expected small (escapes sharing one dictionary gap, truncation
// collisions), so an insertion sort with the semantic comparator suffices.
func (s *Sorter) repairTies(keys []byte, n int, payload *row.RowSet) {
	cmp := s.comparator(func(_, idx uint32) (*row.RowSet, int) { return payload, int(idx) })
	rw, kw := s.rowWidth, s.keyWidth
	var tmp []byte
	for i := 0; i < n; {
		j := i + 1
		for j < n && bytes.Equal(keys[(j-1)*rw:(j-1)*rw+kw], keys[j*rw:j*rw+kw]) {
			j++
		}
		if j-i > 1 {
			if tmp == nil {
				tmp = make([]byte, rw)
			}
			for p := i + 1; p < j; p++ {
				if cmp(keys[p*rw:(p+1)*rw], keys[(p-1)*rw:p*rw]) >= 0 {
					continue
				}
				copy(tmp, keys[p*rw:(p+1)*rw])
				q := p
				for q > i && cmp(tmp, keys[(q-1)*rw:q*rw]) < 0 {
					copy(keys[q*rw:(q+1)*rw], keys[(q-1)*rw:q*rw])
					q--
				}
				copy(keys[q*rw:(q+1)*rw], tmp)
			}
		}
		i = j
	}
}

// comparator returns the key-row comparator: a single bytes.Compare when no
// tie-break is needed, otherwise a segment-wise compare that resolves tied
// lossy segments against the payload fetched through the row's reference.
// lookup maps a payload reference to the RowSet holding it and the row's
// index there (the streaming external merge keeps only one block of each
// run resident, so the index is block-local).
//
// Per-encoding tie handling, decided per segment at build time:
//
//   - Full varchar / truncated varchar: tied prefixes fall back to the
//     collated full strings (the original rule).
//   - Dictionary: an odd (exact) code is a dictionary member, so equal codes
//     are equal values and the payload fetch is skipped; even (escape gap)
//     codes compare the strings.
//   - Shared-prefix-elided fixed segments whose class-1 arm keeps the whole
//     remaining encoding: tied class-1 segments are equal, no fetch; escape
//     classes compare the values.
//   - Other truncated fixed segments: compare the values through their
//     order-preserving integer form (normkey.OrdFixed), no boxing.
//
// NULLs never fetch: byte-tied segments share their validity byte, so one
// leading-byte probe classifies both rows as NULL (equal) or both valid.
//
//rowsort:pure
func (s *Sorter) comparator(lookup func(runID, idx uint32) (*row.RowSet, int)) func(a, b []byte) int {
	keys := s.enc.Keys()
	type seg struct {
		off, end int
		col      int // schema column, for the payload fetch
		typ      vector.Type
		desc     bool
		canTie   bool
		enc      normkey.ColumnEncoding
		exact1   bool // EncTrunc fixed with an exact class-1 suffix
		nullB    byte // the segment's leading byte when the value is NULL
		coll     normkey.Collation
	}
	segs := make([]seg, len(keys))
	for i, nk := range keys {
		sg := seg{
			off:    s.enc.Offset(i),
			col:    nk.Column,
			typ:    nk.Type,
			desc:   nk.Order == normkey.Descending,
			canTie: s.enc.SegCanTie(i),
			exact1: s.enc.SegExactSuffix(i),
			coll:   nk.Collation,
		}
		if p := s.enc.Plan(); p != nil {
			sg.enc = p.Cols[i].Enc
		}
		if i+1 < len(keys) {
			sg.end = s.enc.Offset(i + 1)
		} else {
			sg.end = s.keyWidth
		}
		// The encoder pre-swaps NULL placement for DESC and then inverts
		// the segment; reproduce that to recognize NULL from the key byte.
		effFirst := (nk.Nulls == normkey.NullsFirst) != sg.desc
		if !effFirst {
			sg.nullB = 0x01
		}
		if sg.desc {
			sg.nullB = ^sg.nullB
		}
		segs[i] = sg
	}
	return func(a, b []byte) int {
		for _, sg := range segs {
			c := compareBytes(a[sg.off:sg.end], b[sg.off:sg.end])
			if c != 0 {
				return c
			}
			if !sg.canTie {
				continue
			}
			// Segment bytes tied; both rows share the validity byte, so
			// they are both NULL (equal) or both valid.
			if a[sg.off] == sg.nullB {
				continue
			}
			switch sg.enc {
			case normkey.EncDict:
				last := a[sg.end-1]
				if sg.desc {
					last = ^last
				}
				if last&1 == 1 {
					continue // exact code: equal dictionary members
				}
			case normkey.EncTrunc:
				if sg.exact1 {
					cls := a[sg.off+1]
					if sg.desc {
						cls = ^cls
					}
					if cls == 1 {
						continue // the whole remaining encoding was kept
					}
				}
			}
			ra, ia := s.getRef(a)
			rb, ib := s.getRef(b)
			pa, la := lookup(ra, ia)
			pb, lb := lookup(rb, ib)
			if sg.typ == vector.Varchar {
				sa := sg.coll.Apply(pa.String(la, sg.col))
				sb := sg.coll.Apply(pb.String(lb, sg.col))
				c = compareStrings(sa, sb)
			} else {
				ua := normkey.OrdFixed(sg.typ, pa.Row(la)[pa.Layout().Offset(sg.col):])
				ub := normkey.OrdFixed(sg.typ, pb.Row(lb)[pb.Layout().Offset(sg.col):])
				switch {
				case ua < ub:
					c = -1
				case ua > ub:
					c = 1
				default:
					c = 0
				}
			}
			if sg.desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
}

//rowsort:pure
func compareBytes(a, b []byte) int { return bytes.Compare(a, b) }

// ovcSafeWidth returns the normalized-key prefix width over which plain
// byte order is the sort order: the whole key when no segment encoded a
// possible tie, else only up to the end of the first tie-capable segment
// (a varchar prefix, or any lossy compressed encoding). Beyond a tied
// lossy segment the semantic values decide before any later segment's
// bytes, so byte (and offset-value-code) comparisons must stop there and
// byte-equal rows fall to the segment-wise tie comparator.
func (s *Sorter) ovcSafeWidth(anyTieBreak bool) int {
	if !anyTieBreak {
		return s.keyWidth
	}
	keys := s.enc.Keys()
	for i := range keys {
		if s.enc.SegCanTie(i) {
			if i+1 < len(keys) {
				return s.enc.Offset(i + 1)
			}
			break
		}
	}
	return s.keyWidth
}

//rowsort:pure
func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Finalize merges all sorted runs into one. The default is a single-pass
// k-way loser-tree merge with offset-value coding, partitioned across
// Options.Threads workers with k-way Merge Path (each worker emits a
// disjoint slice of the output, byte-identical to the scalar merge);
// Options.Merge selects the ablation arms. It must be called after every
// sink is closed.
func (s *Sorter) Finalize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return fmt.Errorf("core: Finalize called twice")
	}
	s.finalized = true
	s.tFinalizeStart.Store(s.sinceEpoch() + 1)
	s.prog.AdvanceTo(obs.StageMerge)
	s.prog.MergeRowsPlanned.Add(s.rowsIn.Load())
	defer func() { s.tFinalizeEnd.Store(s.sinceEpoch() + 1) }()
	var err error
	s.rec.Do("merge", func() { err = s.finalizeLocked() })
	return err
}

// finalizeLocked is Finalize's body, run under s.mu and the merge pprof
// label.
func (s *Sorter) finalizeLocked() error {
	anySpilled := false
	for _, r := range s.runs {
		anySpilled = anySpilled || r.spill != nil
	}
	if anySpilled || (s.opt.SpillDir != "" && !s.opt.limited()) {
		if s.opt.Merge == MergeCascade {
			// The cascade ablation unspills whole runs; under a budget it
			// still works but does not respect the limit.
			return s.externalFinalizeCascade()
		}
		if s.opt.limited() {
			return s.planStreamingMerge()
		}
		return s.externalFinalize()
	}

	// Nothing on disk (the budget was never exceeded, or there is none):
	// the ordinary in-memory merge.
	if len(s.runs) == 0 {
		return nil
	}
	if len(s.runs) == 1 {
		s.finalKeys = s.runs[0].keys
		s.prog.RowsMerged.Add(int64(s.runs[0].rows))
		return nil
	}

	fw := s.rec.Worker("finalize")
	sp := fw.Begin(obs.PhaseMerge)
	defer sp.End()

	anyTieBreak := false
	runs := make([]mergepath.Run, len(s.runs))
	total := 0
	for i, r := range s.runs {
		runs[i] = mergepath.Run{Data: r.keys, Width: s.rowWidth}
		anyTieBreak = anyTieBreak || r.tieBreak
		total += runs[i].Len()
	}
	inMemLookup := func(runID, idx uint32) (*row.RowSet, int) {
		return s.runs[runID].payload, int(idx)
	}

	if s.opt.Merge == MergeCascade {
		var cmp mergepath.CompareFunc
		if anyTieBreak {
			cmp = s.comparator(inMemLookup)
		} else {
			kw := s.keyWidth
			cmp = func(a, b []byte) int { return compareBytes(a[:kw], b[:kw]) }
		}
		merged := mergepath.CascadeMerge(runs, cmp, s.opt.threads())
		s.finalKeys = merged.Data
		s.mergeStats.BytesMoved = uint64(len(merged.Data))
		s.prog.RowsMerged.Add(int64(total))
		return nil
	}

	var tie mergepath.CompareFunc
	if anyTieBreak {
		tie = s.comparator(inMemLookup)
	}
	// With telemetry on, each merge partition gets its own trace lane.
	var onWorker func(part int) func()
	if s.rec != nil {
		onWorker = func(int) func() {
			return s.rec.Worker("merge").Begin(obs.PhaseMerge).End
		}
	}
	dst := make([]byte, total*s.rowWidth)
	s.mergeStats = mergepath.ParallelKWayMergeSpans(dst, runs, s.ovcSafeWidth(anyTieBreak), tie,
		s.opt.threads(), s.opt.Merge != MergeLoserTreeNoOVC, onWorker)
	s.finalKeys = dst
	s.prog.RowsMerged.Add(int64(total))
	return nil
}

// NumRows returns the number of sorted rows; valid after Finalize.
func (s *Sorter) NumRows() int {
	if s.streamMerge {
		return s.streamTotal
	}
	if s.rowWidth == 0 {
		return 0
	}
	return len(s.finalKeys) / s.rowWidth
}

// Result gathers the sorted payload back into a columnar table (the final
// conversion of Figure 11), in chunks of vector.DefaultVectorSize. The
// gather is vectorized (one typed kernel pass per column, see package row)
// and parallel: output chunks are independent, so they are distributed
// over Options.Threads workers and the result is byte-identical at any
// thread count.
func (s *Sorter) Result() (*vector.Table, error) {
	return s.ResultThreads(s.opt.threads())
}

// ResultThreads is Result with an explicit worker count, for the gather
// ablation and for callers that want to bound materialization parallelism
// separately from the sort.
//
//rowsort:pipeline
func (s *Sorter) ResultThreads(threads int) (*vector.Table, error) {
	if !s.finalized {
		return nil, fmt.Errorf("core: Result before Finalize")
	}
	if s.streamMerge {
		return s.resultStreamed()
	}
	s.prog.AdvanceTo(obs.StageGather)
	gatherStart := s.sinceEpoch()
	defer func() {
		end := s.sinceEpoch()
		s.durGather.Add(end - gatherStart)
		s.tResultEnd.Store(end + 1)
	}()
	out := vector.NewTable(s.schema)
	n := s.NumRows()
	if n == 0 {
		return out, nil
	}
	payloads := make([]*row.RowSet, len(s.runs))
	for i, r := range s.runs {
		payloads[i] = r.payload
	}
	numChunks := (n + vector.DefaultVectorSize - 1) / vector.DefaultVectorSize
	chunks := make([]*vector.Chunk, numChunks)
	threads = min(max(threads, 1), numChunks)
	s.gatherBytes.Add(int64(n) * int64(s.layout.Width()))

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gw := s.rec.Worker("gather")
			sp := gw.Begin(obs.PhaseGather)
			defer sp.End()
			s.rec.Do("gather", func() {
				// Per-worker reusable reference buffers.
				which := make([]uint32, vector.DefaultVectorSize)
				idxs := make([]uint32, vector.DefaultVectorSize)
				for ci := w; ci < numChunks; ci += threads {
					start := ci * vector.DefaultVectorSize
					count := min(vector.DefaultVectorSize, n-start)
					chunks[ci] = s.gatherChunk(payloads, which, idxs, start, count)
				}
			})
		}(w)
	}
	wg.Wait()
	out.Chunks = chunks
	return out, nil
}

// gatherChunk materializes output rows [start, start+count) of the merged
// key order into a fresh columnar chunk, resolving payload references with
// the typed gather kernels. which and idxs are caller-owned scratch of at
// least count entries.
func (s *Sorter) gatherChunk(payloads []*row.RowSet, which, idxs []uint32, start, count int) *vector.Chunk {
	refW, refI := which[:count], idxs[:count]
	for r := 0; r < count; r++ {
		keyRow := s.finalKeys[(start+r)*s.rowWidth:]
		refW[r], refI[r] = s.getRef(keyRow)
	}
	chunk := &vector.Chunk{Vectors: make([]*vector.Vector, len(s.schema))}
	for c := range s.schema {
		v := vector.NewDense(s.schema[c].Type, count)
		row.GatherRefsColumn(payloads, refW, refI, c, v)
		chunk.Vectors[c] = v
	}
	s.prog.RowsGathered.Add(int64(count))
	return chunk
}

// ResultScalar is the value-at-a-time reference gather Result replaced: it
// re-dispatches the column type switch once per value. It is kept for the
// equivalence tests and the gather ablation benchmark.
func (s *Sorter) ResultScalar() (*vector.Table, error) {
	if !s.finalized {
		return nil, fmt.Errorf("core: Result before Finalize")
	}
	if s.streamMerge {
		return s.resultStreamed()
	}
	s.prog.AdvanceTo(obs.StageGather)
	gatherStart := s.sinceEpoch()
	defer func() {
		end := s.sinceEpoch()
		s.durGather.Add(end - gatherStart)
		s.tResultEnd.Store(end + 1)
	}()
	out := vector.NewTable(s.schema)
	n := s.NumRows()
	s.gatherBytes.Add(int64(n) * int64(s.layout.Width()))
	for start := 0; start < n; start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, n-start)
		chunk := vector.NewChunk(s.schema, count)
		for c := range s.schema {
			vec := chunk.Vectors[c]
			for r := start; r < start+count; r++ {
				keyRow := s.finalKeys[r*s.rowWidth : (r+1)*s.rowWidth]
				runID, idx := s.getRef(keyRow)
				s.runs[runID].payload.AppendTo(vec, int(idx), c)
			}
		}
		if err := out.AppendChunk(chunk); err != nil {
			return nil, err
		}
		s.prog.RowsGathered.Add(int64(count))
	}
	return out, nil
}

// SortTable sorts a materialized table: chunks are distributed to worker
// goroutines morsel-style, each feeding its own sink, then runs are merged
// in parallel and the result gathered.
func SortTable(t *vector.Table, keys []SortColumn, opt Options) (*vector.Table, error) {
	out, _, err := SortTableStats(t, keys, opt)
	return out, err
}

// SortTableStats is SortTable returning the sort's telemetry snapshot
// alongside the result (taken after cleanup, so spill accounting is final).
// With Options.Telemetry set, the recorder holds the full span timeline.
func SortTableStats(t *vector.Table, keys []SortColumn, opt Options) (*vector.Table, SortStats, error) {
	s, err := NewSorter(t.Schema, keys, opt)
	if err != nil {
		return nil, SortStats{}, err
	}
	out, err := sortTable(s, t)
	// Whatever happened above, no spill files survive this call; removal
	// failures surface as the call's error (and in the stats).
	closeErr := s.Close()
	if err == nil {
		err = closeErr
	}
	st := s.Stats()
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// sortTable runs the sort pipeline over t's chunks.
//
//rowsort:pipeline
func sortTable(s *Sorter, t *vector.Table) (*vector.Table, error) {
	root := s.rec.Worker("main")
	sp := root.Begin(obs.PhaseSort)
	defer sp.End()
	total := 0
	for _, c := range t.Chunks {
		total += c.Len()
	}
	s.SetExpectedRows(int64(total))
	if s.opt.KeyComp&(KeyCompDict|KeyCompTrunc) != 0 {
		if err := s.PlanCompression(keySampleChunks(t.Chunks, s.opt.KeyCompSampleRows)); err != nil {
			return nil, err
		}
	}
	threads := min(s.opt.threads(), max(1, len(t.Chunks)))
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.rec.Do("run-generation", func() {
				sink := s.NewSink()
				for i := w; i < len(t.Chunks); i += threads {
					if err := sink.Append(t.Chunks[i]); err != nil {
						errs[w] = err
						return
					}
				}
				errs[w] = sink.Close()
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := s.Finalize(); err != nil {
		return nil, err
	}
	return s.Result()
}
