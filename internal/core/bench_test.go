package core

import (
	"fmt"
	"testing"

	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

func BenchmarkSortTableIntegerKeys(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		cols := workload.Dist{Random: true}.Generate(n, 2, 1)
		tbl := workload.UintColumnsTable(cols)
		keys := []SortColumn{{Column: 0}, {Column: 1}}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SortTable(tbl, keys, Options{Threads: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSortTableStringKeys(b *testing.B) {
	tbl := workload.Customer(1<<15, 2)
	keys := []SortColumn{{Column: 4}, {Column: 5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SortTable(tbl, keys, Options{Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopNVsFullSort(b *testing.B) {
	tbl := workload.CatalogSales(1<<16, 10, 3)
	keys := []SortColumn{{Column: 3, Descending: true}}
	b.Run("top100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			top, err := NewTopN(tbl.Schema, keys, 100, Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range tbl.Chunks {
				if err := top.Append(c); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := top.Result(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fullsort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SortTable(tbl, keys, Options{Threads: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMergeJoin(b *testing.B) {
	left := workload.CatalogSales(1<<14, 10, 4)
	right := workload.CatalogSales(1<<13, 10, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MergeJoin(left, right, []int{0, 1}, []int{0, 1}, Options{Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowRank(b *testing.B) {
	tbl := workload.Customer(1<<15, 6)
	spec := WindowSpec{PartitionBy: []int{4}, OrderBy: []SortColumn{{Column: 1}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Window(tbl, spec, []WindowFunc{Rank}, Options{Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead measures what the telemetry layer costs on a
// 1M-row multi-key sort: "disabled" is the nil-recorder fast path every
// untraced sort takes, "enabled" records full phase spans into a fresh
// Recorder per iteration, and "registry" additionally registers every sort
// with a live observability registry (progress counters are published
// either way; the registry adds registration, fingerprinting and the
// Close-time final-stats capture). EXPERIMENTS.md documents the budget
// (<2%).
func BenchmarkTelemetryOverhead(b *testing.B) {
	const rows = 1 << 20
	cols := workload.Dist{Random: true}.Generate(rows, 2, 11)
	tbl := workload.UintColumnsTable(cols)
	keys := []SortColumn{{Column: 0}, {Column: 1}}
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SortTable(tbl, keys, Options{Threads: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := SortTableStats(tbl, keys, Options{Threads: 4, Telemetry: obs.NewRecorder()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("registry", func(b *testing.B) {
		reg := obs.NewRegistry(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := SortTableStats(tbl, keys, Options{Threads: 4, Telemetry: obs.NewRecorder(), Registry: reg}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSpillOverhead(b *testing.B) {
	tbl := workload.Customer(1<<15, 7)
	keys := []SortColumn{{Column: 1}, {Column: 2}}
	b.Run("in-memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SortTable(tbl, keys, Options{RunSize: 8 << 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spill", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SortTable(tbl, keys, Options{RunSize: 8 << 10, SpillDir: dir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
