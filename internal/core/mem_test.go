package core

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"rowsort/internal/mem"
	"rowsort/internal/vector"
)

func TestOptionsValidation(t *testing.T) {
	tbl := mixedTable(64, 1)
	keys := []SortColumn{{Column: 0}}
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"negative threads", Options{Threads: -1}, "Threads"},
		{"negative run size", Options{RunSize: -5}, "RunSize"},
		{"negative block rows", Options{SpillBlockRows: -2}, "SpillBlockRows"},
		{"negative memory limit", Options{MemoryLimit: -100}, "MemoryLimit"},
	}
	for _, c := range cases {
		_, err := NewSorter(tbl.Schema, keys, c.opt)
		if err == nil {
			t.Errorf("%s: NewSorter accepted %+v", c.name, c.opt)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the offending field %s", c.name, err, c.want)
		}
	}
}

// budgetedSort runs a single-sink sort of tbl under opt and returns the
// result plus the sorter's stats. A single sequential sink makes run
// assignment deterministic, so outputs are byte-comparable across options.
func budgetedSort(t *testing.T, tbl *vector.Table, keys []SortColumn, opt Options) (*vector.Table, SortStats) {
	t.Helper()
	s, err := NewSorter(tbl.Schema, keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	out, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out, st
}

// TestAdaptiveSpillOverBudget is the issue's acceptance criterion: a sort
// whose footprint exceeds 4x the memory limit completes by adaptively
// spilling (no SpillDir configured), stays within the budget plus the
// documented slack, and produces output byte-identical to the unlimited
// sort.
func TestAdaptiveSpillOverBudget(t *testing.T) {
	tbl := mixedTable(6*vector.DefaultVectorSize+123, 95)
	base := Options{Threads: 1, RunSize: 900}
	wantTbl, unlimited := budgetedSort(t, tbl, mergeTestKeys, base)
	wantRows := rowify(t, wantTbl)
	if unlimited.PeakResidentRunBytes <= 0 {
		t.Fatalf("unlimited sort recorded no peak: %+v", unlimited)
	}

	// A budget four times smaller than the measured unlimited footprint.
	budget := unlimited.PeakResidentRunBytes / 4
	broker := mem.NewBroker("test-budget", budget)
	opt := base
	opt.Broker = broker

	s, err := NewSorter(tbl.Schema, mergeTestKeys, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.PressureSpills == 0 {
		t.Errorf("budget %d (1/4 of %d) forced no pressure spills: %+v",
			budget, unlimited.PeakResidentRunBytes, st)
	}
	if st.MemoryPressureEvents == 0 {
		t.Error("no pressure events recorded despite spilling")
	}
	if st.SpillBytesWritten == 0 || st.SpillBytesRead != st.SpillBytesWritten {
		t.Errorf("spill accounting: written %d, read %d (want equal, nonzero)",
			st.SpillBytesWritten, st.SpillBytesRead)
	}
	if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
		t.Error("budgeted sort output differs from unlimited sort")
	}
	checkSorted(t, tbl, got, mergeTestKeys, "budgeted")

	// SpillDir is empty, so the sorter made itself a private temp dir.
	tmp := s.spillTmpDir
	if tmp == "" {
		t.Error("no private spill directory despite empty SpillDir")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if tmp != "" {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("private spill dir %s survived Close (stat err: %v)", tmp, err)
		}
	}

	// The balance returns to zero and the peak respects the budget up to
	// the documented slack: the run being reordered when the limit tripped
	// plus the merge's staging block (bounded here as 2x over the budget).
	if used := broker.Used(); used != 0 {
		t.Errorf("broker holds %d bytes after Close, want 0", used)
	}
	if peak := broker.Peak(); peak > 3*budget {
		t.Errorf("broker peak %d exceeds budget %d beyond the documented slack", peak, budget)
	}
	if broker.Peak() >= unlimited.PeakResidentRunBytes {
		t.Errorf("budgeted peak %d not below unlimited peak %d",
			broker.Peak(), unlimited.PeakResidentRunBytes)
	}
}

// TestConcurrentSortersSharedBroker runs four sorters against one shared
// broker under -race: each must produce output byte-identical to its
// unlimited reference, and the shared balance must return to zero once
// every sorter is closed.
func TestConcurrentSortersSharedBroker(t *testing.T) {
	const n = 4
	base := Options{Threads: 1, RunSize: 600}
	tables := make([]*vector.Table, n)
	wants := make([][]byte, n)
	for i := range tables {
		tables[i] = mixedTable(2*vector.DefaultVectorSize+157*i, uint64(100+i))
		ref, _ := budgetedSort(t, tables[i], mergeTestKeys, base)
		wants[i] = rowify(t, ref).Bytes()
	}

	// A budget far below the combined footprint: every sorter degrades to
	// disk, and their pressure interleaves through the shared parent.
	shared := mem.NewBroker("shared", 64<<10)
	sorters := make([]*Sorter, n)
	for i := range sorters {
		opt := base
		opt.Broker = shared
		s, err := NewSorter(tables[i].Schema, mergeTestKeys, opt)
		if err != nil {
			t.Fatal(err)
		}
		sorters[i] = s
	}

	outs := make([]*vector.Table, n)
	stats := make([]SortStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range sorters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sorters[i]
			sink := s.NewSink()
			for _, c := range tables[i].Chunks {
				if err := sink.Append(c); err != nil {
					errs[i] = err
					return
				}
			}
			if err := sink.Close(); err != nil {
				errs[i] = err
				return
			}
			if err := s.Finalize(); err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = s.ResultScalar()
			stats[i] = s.Stats()
		}(i)
	}
	wg.Wait()

	spills := int64(0)
	for i := range sorters {
		if errs[i] != nil {
			t.Fatalf("sorter %d: %v", i, errs[i])
		}
		if !bytes.Equal(rowify(t, outs[i]).Bytes(), wants[i]) {
			t.Errorf("sorter %d: output under shared budget differs from unlimited", i)
		}
		spills += stats[i].PressureSpills
		if err := sorters[i].Close(); err != nil {
			t.Fatalf("close sorter %d: %v", i, err)
		}
	}
	if spills == 0 {
		t.Error("64KiB shared budget forced no pressure spills across four sorters")
	}
	if used := shared.Used(); used != 0 {
		t.Errorf("shared broker holds %d bytes after all sorters closed, want 0", used)
	}
}

// TestRowsIteratorMatchesResult checks the chunked iterator against the
// materialized Result on an in-memory sort.
func TestRowsIteratorMatchesResult(t *testing.T) {
	tbl := mixedTable(3*vector.DefaultVectorSize+57, 98)
	s, err := NewSorter(tbl.Schema, mergeTestKeys, Options{Threads: 2, RunSize: 800})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Rows(); err == nil {
		t.Fatal("Rows before Finalize did not error")
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}

	it, err := s.Rows()
	if err != nil {
		t.Fatal(err)
	}
	streamed := vector.NewTable(s.schema)
	rows := 0
	for {
		chunk, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		if chunk.Len() > vector.DefaultVectorSize {
			t.Fatalf("chunk of %d rows exceeds the vector size", chunk.Len())
		}
		rows += chunk.Len()
		streamed.Chunks = append(streamed.Chunks, chunk)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if rows != tbl.NumRows() {
		t.Fatalf("iterator produced %d rows, want %d", rows, tbl.NumRows())
	}

	// In-memory results are re-materializable: the iterator does not
	// consume the runs.
	want, err := s.ResultScalar()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rowify(t, streamed).Bytes(), rowify(t, want).Bytes()) {
		t.Error("Rows() chunks differ from materialized Result")
	}
}

// TestStreamingRowsSingleUse pins the contract of a budgeted external
// merge: the deferred final merge is single-pass, so a second Rows() call
// fails loudly, and abandoning the iterator early still leaves Close able
// to reclaim every spill file and reservation.
func TestStreamingRowsSingleUse(t *testing.T) {
	tbl := mixedTable(4*vector.DefaultVectorSize, 99)
	broker := mem.NewBroker("single-use", 48<<10)
	s, err := NewSorter(tbl.Schema, mergeTestKeys, Options{Threads: 1, RunSize: 700, Broker: broker})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := s.NewSink()
	for _, c := range tbl.Chunks {
		if err := sink.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !s.streamMerge {
		t.Fatal("48KiB budget did not defer the final merge to the iterator")
	}

	it, err := s.Rows()
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk, then walk away mid-merge.
	if chunk, err := it.Next(); err != nil || chunk == nil {
		t.Fatalf("first streamed chunk: %v, %v", chunk, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Rows(); err == nil || !strings.Contains(err.Error(), "already consumed") {
		t.Fatalf("second Rows() = %v, want single-use error", err)
	}

	// Close must reclaim the unconsumed spill files, the private temp dir,
	// and every reservation the abandoned merge held.
	tmp := s.spillTmpDir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if tmp != "" {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("spill dir %s survived Close after abandoned iterator", tmp)
		}
	}
	if used := broker.Used(); used != 0 {
		t.Errorf("broker holds %d bytes after Close, want 0", used)
	}
}

// FuzzMemoryBudget drives tiny budgets and odd run sizes through a single
// sink, forcing spills mid-sink at arbitrary points, and requires the
// output to stay byte-identical to the unlimited sort with a zero broker
// balance after Close.
func FuzzMemoryBudget(f *testing.F) {
	f.Add(uint32(1), uint16(100))
	f.Add(uint32(4<<10), uint16(700))
	f.Add(uint32(64<<10), uint16(37))
	f.Add(uint32(1<<20), uint16(2000))
	f.Fuzz(func(t *testing.T, rawBudget uint32, rawRunSize uint16) {
		budget := int64(rawBudget%(1<<20)) + 1
		runSize := int(rawRunSize)%1500 + 16
		tbl := mixedTable(2*vector.DefaultVectorSize+777, 97)
		keys := mergeTestKeys

		want, _ := budgetedSort(t, tbl, keys, Options{Threads: 1, RunSize: runSize})
		wantRows := rowify(t, want)

		broker := mem.NewBroker("fuzz", budget)
		got, _ := budgetedSort(t, tbl, keys, Options{Threads: 1, RunSize: runSize, Broker: broker})
		if !bytes.Equal(rowify(t, got).Bytes(), wantRows.Bytes()) {
			t.Fatalf("budget %d, run size %d: output differs from unlimited sort", budget, runSize)
		}
		if used := broker.Used(); used != 0 {
			t.Fatalf("budget %d, run size %d: broker holds %d bytes after Close", budget, runSize, used)
		}
	})
}
