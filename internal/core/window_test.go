package core

import (
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func windowTable(t *testing.T) *vector.Table {
	t.Helper()
	schema := vector.Schema{
		{Name: "dept", Type: vector.Varchar},
		{Name: "salary", Type: vector.Int32},
	}
	dept := vector.New(vector.Varchar, 0)
	sal := vector.New(vector.Int32, 0)
	for _, r := range []struct {
		d string
		s int32
	}{
		{"eng", 100}, {"eng", 200}, {"eng", 200}, {"eng", 300},
		{"hr", 150}, {"hr", 150},
		{"ops", 50},
	} {
		dept.AppendString(r.d)
		sal.AppendInt32(r.s)
	}
	tbl, err := vector.TableFromColumns(schema, dept, sal)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestWindowRankingFunctions(t *testing.T) {
	tbl := windowTable(t)
	out, err := Window(tbl, WindowSpec{
		PartitionBy: []int{0},
		OrderBy:     []SortColumn{{Column: 1}},
	}, []WindowFunc{RowNumber, Rank, DenseRank}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Schema) != 5 {
		t.Fatalf("schema has %d columns", len(out.Schema))
	}
	if out.Schema[2].Name != "row_number" || out.Schema[4].Name != "dense_rank" {
		t.Fatalf("function column names wrong: %v", out.Schema)
	}

	type row struct {
		dept             string
		salary           int32
		num, rank, dense int64
	}
	want := []row{
		{"eng", 100, 1, 1, 1},
		{"eng", 200, 2, 2, 2},
		{"eng", 200, 3, 2, 2},
		{"eng", 300, 4, 4, 3},
		{"hr", 150, 1, 1, 1},
		{"hr", 150, 2, 1, 1},
		{"ops", 50, 1, 1, 1},
	}
	dept, sal := out.Column(0), out.Column(1)
	num, rank, dense := out.Column(2), out.Column(3), out.Column(4)
	if out.NumRows() != len(want) {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i, w := range want {
		if dept.Value(i) != w.dept || sal.Value(i) != w.salary ||
			num.Value(i) != w.num || rank.Value(i) != w.rank || dense.Value(i) != w.dense {
			t.Fatalf("row %d = (%v,%v,%v,%v,%v), want %+v",
				i, dept.Value(i), sal.Value(i), num.Value(i), rank.Value(i), dense.Value(i), w)
		}
	}
}

func TestWindowNoPartition(t *testing.T) {
	tbl := windowTable(t)
	out, err := Window(tbl, WindowSpec{
		OrderBy: []SortColumn{{Column: 1, Descending: true}},
	}, []WindowFunc{RowNumber}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	num := out.Column(2)
	for i := 0; i < out.NumRows(); i++ {
		if num.Value(i) != int64(i+1) {
			t.Fatalf("row_number at %d = %v", i, num.Value(i))
		}
	}
	sal := out.Column(1)
	for i := 1; i < out.NumRows(); i++ {
		if sal.Value(i).(int32) > sal.Value(i-1).(int32) {
			t.Fatal("DESC order broken")
		}
	}
}

func TestWindowNoOrderAllPeers(t *testing.T) {
	tbl := windowTable(t)
	out, err := Window(tbl, WindowSpec{PartitionBy: []int{0}}, []WindowFunc{Rank, DenseRank}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rank, dense := out.Column(2), out.Column(3)
	for i := 0; i < out.NumRows(); i++ {
		if rank.Value(i) != int64(1) || dense.Value(i) != int64(1) {
			t.Fatalf("all rows in a partition should be rank-1 peers, row %d = %v/%v",
				i, rank.Value(i), dense.Value(i))
		}
	}
}

func TestWindowLargerAgainstCounts(t *testing.T) {
	tbl := workload.Customer(3000, 150)
	out, err := Window(tbl, WindowSpec{
		PartitionBy: []int{4}, // last name
		OrderBy:     []SortColumn{{Column: 0}},
	}, []WindowFunc{RowNumber}, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// row_number must be 1..groupSize within each partition; since the
	// order key (customer_sk) is unique, the numbers are strictly 1,2,3...
	last := out.Column(4)
	num := out.Column(len(out.Schema) - 1)
	expect := int64(0)
	var prev any = "\x00sentinel"
	for i := 0; i < out.NumRows(); i++ {
		cur := last.Value(i)
		if cur != prev {
			expect = 0
			prev = cur
		}
		expect++
		if num.Value(i) != expect {
			t.Fatalf("row %d: row_number %v, want %d (partition %v)", i, num.Value(i), expect, cur)
		}
	}
}

func TestWindowErrors(t *testing.T) {
	tbl := windowTable(t)
	if _, err := Window(tbl, WindowSpec{}, nil, Options{}); err == nil {
		t.Fatal("no functions should error")
	}
	if _, err := Window(tbl, WindowSpec{PartitionBy: []int{9}}, []WindowFunc{Rank}, Options{}); err == nil {
		t.Fatal("bad partition column should error")
	}
	if _, err := Window(tbl, WindowSpec{}, []WindowFunc{WindowFunc(99)}, Options{}); err == nil {
		t.Fatal("unknown function should error")
	}
}

func TestWindowFuncString(t *testing.T) {
	if RowNumber.String() != "row_number" || Rank.String() != "rank" ||
		DenseRank.String() != "dense_rank" || WindowFunc(9).String() == "" {
		t.Fatal("WindowFunc.String broken")
	}
}
