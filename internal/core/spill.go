package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rowsort/internal/mergepath"
	"rowsort/internal/row"
)

// spillFile records where a sorted run's keys and payload live on disk.
//
// Spilling demonstrates the paper's future-work direction: because a run is
// just flat key rows plus a row-format payload, it can be offloaded to
// secondary storage in one unified format and read back for the merge. The
// current implementation frees memory between run generation and the merge;
// the merge itself still runs in memory.
type spillFile struct {
	path string
}

// spillTo writes the run to a file under s.opt.SpillDir and releases its
// in-memory buffers.
func (r *sortedRun) spillTo(s *Sorter) error {
	path := filepath.Join(s.opt.SpillDir, fmt.Sprintf("rowsort-run-%d.bin", r.id))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating spill file: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(r.keys)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := w.Write(r.keys); err != nil {
		f.Close()
		return err
	}
	if _, err := r.payload.WriteTo(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	r.spill = &spillFile{path: path}
	// The in-memory buffers are dead once the run is on disk: recycle them
	// for the next pending run.
	s.putKeyBuf(r.keys)
	s.putRowSet(r.payload)
	r.keys = nil
	r.payload = nil
	return nil
}

// unspill reads the run back into memory and removes its file.
func (r *sortedRun) unspill(s *Sorter) error {
	f, err := os.Open(r.spill.path)
	if err != nil {
		return fmt.Errorf("core: opening spill file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	keyLen := int(binary.LittleEndian.Uint64(hdr[:]))
	r.keys = make([]byte, keyLen)
	if _, err := io.ReadFull(br, r.keys); err != nil {
		return err
	}
	payload, err := row.ReadRowSet(br, s.layout)
	if err != nil {
		return err
	}
	r.payload = payload
	r.spill = nil
	return os.Remove(f.Name())
}

// externalFinalize merges spilled runs with bounded memory: runs are merged
// pairwise, with only the two inputs and their merged output resident at a
// time; intermediate results are spilled back until one run remains, whose
// keys become the final order. This is the graceful-degradation design the
// paper's future work sketches: because runs are flat normalized-key rows
// plus the unified row-format payload, offloading and reloading them needs
// no format conversion at all.
func (s *Sorter) externalFinalize() error {
	// Work queue of pending run ids (some may be in memory if never spilled,
	// e.g. when flush spilling failed to engage; handle both).
	queue := make([]uint32, len(s.runs))
	for i := range s.runs {
		queue[i] = uint32(i)
	}
	if len(queue) == 0 {
		return nil
	}
	for len(queue) > 1 {
		a, b := s.runs[queue[0]], s.runs[queue[1]]
		queue = queue[2:]
		merged, err := s.mergeRunPair(a, b)
		if err != nil {
			return err
		}
		queue = append(queue, merged.id)
		if len(queue) > 1 {
			// More merging ahead: push the result out of memory again.
			if err := merged.spillTo(s); err != nil {
				return err
			}
		}
	}
	final := s.runs[queue[0]]
	if final.spill != nil {
		if err := final.unspill(s); err != nil {
			return err
		}
	}
	s.finalKeys = final.keys
	return nil
}

// mergeRunPair loads two runs, merges their keys and payloads into a new
// run (payload physically reordered, refs rewritten), registers it, and
// releases the inputs.
func (s *Sorter) mergeRunPair(a, b *sortedRun) (*sortedRun, error) {
	for _, r := range []*sortedRun{a, b} {
		if r.spill != nil {
			if err := r.unspill(s); err != nil {
				return nil, err
			}
		}
	}

	var cmp mergepath.CompareFunc
	if a.tieBreak || b.tieBreak {
		cmp = s.comparator(func(runID, idx uint32) *row.RowSet { return s.runs[runID].payload })
	} else {
		kw := s.keyWidth
		cmp = func(x, y []byte) int { return compareBytes(x[:kw], y[:kw]) }
	}

	mergedKeys := make([]byte, len(a.keys)+len(b.keys))
	mergepath.ParallelMerge(mergedKeys,
		mergepath.Run{Data: a.keys, Width: s.rowWidth},
		mergepath.Run{Data: b.keys, Width: s.rowWidth},
		cmp, s.opt.threads())

	// Finalize already holds s.mu; run generation is over, so registering
	// the merged run needs no further locking.
	merged := &sortedRun{id: uint32(len(s.runs)), tieBreak: a.tieBreak || b.tieBreak}
	s.runs = append(s.runs, merged)

	// Reorder both payloads into the merged run with the batched permute:
	// decode every reference once, rewrite it to the merged run, then move
	// the rows (and compact the string heaps) with the typed kernels.
	n := len(mergedKeys) / s.rowWidth
	payloads := make([]*row.RowSet, len(s.runs))
	for i, r := range s.runs {
		payloads[i] = r.payload
	}
	which := make([]uint32, n)
	idxs := make([]uint32, n)
	for i := 0; i < n; i++ {
		keyRow := mergedKeys[i*s.rowWidth : (i+1)*s.rowWidth]
		which[i], idxs[i] = s.getRef(keyRow)
		s.putRef(keyRow, merged.id, uint32(i))
	}
	payload := s.getRowSet()
	payload.Reserve(n)
	payload.AppendRowsGather(payloads, which, idxs)
	merged.keys = mergedKeys
	merged.payload = payload

	// Release the inputs into the pools.
	s.putKeyBuf(a.keys)
	s.putKeyBuf(b.keys)
	s.putRowSet(a.payload)
	s.putRowSet(b.payload)
	a.keys, a.payload = nil, nil
	b.keys, b.payload = nil, nil
	return merged, nil
}
