package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rowsort/internal/mem"
	"rowsort/internal/mergepath"
	"rowsort/internal/normkey"
	"rowsort/internal/obs"
	"rowsort/internal/row"
	"rowsort/internal/strategy"
)

// Spilling demonstrates the paper's future-work direction: because a run is
// just flat key rows plus a row-format payload, it can be offloaded to
// secondary storage in one unified format with no conversion. Runs are
// written as fixed-size blocks (SpillBlockRows key rows followed by their
// payload rows with a block-local string heap), and the merge streams all k
// runs back block by block through one offset-value-coded loser tree:
// resident memory is bounded by k blocks plus the materialized output, and
// every spilled byte is read exactly once.

// spillMagic heads every spill file ("RSB2": row-sort blocks, format 2).
const spillMagic = 0x52534232

// spillMagicFC heads spill files whose key sections may be front-coded
// ("RSB3"): each block's key section starts with a tag byte — 0 for raw key
// rows, 1 for a little-endian uint32 encoded length followed by the
// front-coded rows (normkey.AppendFrontCoded). Payload sections and the
// block index are unchanged. Written only by adaptive sorts; format-2 files
// stay byte-for-byte what they always were.
const spillMagicFC = 0x52534233

// spillHeaderLen is the file header: magic, block rows, total rows.
const spillHeaderLen = 16

// fcPlanCutoff is the sampled encoded-to-raw ratio below which a block's
// key section attempts front-coding; blocks predicted to barely shrink
// skip the encode work entirely.
const fcPlanCutoff = 0.95

// spillFile records where a sorted run lives on disk, plus the in-memory
// block index recorded while writing it: the byte offset of every block's
// key section and the block's first key row (the fences, concatenated at
// the key-row stride so they form a mergepath.Run the partition planner
// can KWaySplit directly). The offsets let a partitioned merge worker open
// a run mid-file; the fences bound each block's key range without reading
// it. The index costs one key row plus one offset per block (rowWidth+8
// bytes per SpillBlockRows rows) and is part of the documented budget
// slack.
type spillFile struct {
	path      string
	blockRows int
	offs      []int64
	fences    []byte
}

// numBlocks returns how many blocks the file holds.
func (sf *spillFile) numBlocks() int { return len(sf.offs) }

// fence returns block b's first key row.
//
//rowsort:hotpath
func (sf *spillFile) fence(b, rowWidth int) []byte {
	return sf.fences[b*rowWidth : (b+1)*rowWidth]
}

// trackSpill registers a spill file for cleanup by Close.
func (s *Sorter) trackSpill(path string) {
	s.spillMu.Lock()
	if s.spillPaths == nil {
		s.spillPaths = make(map[string]struct{})
	}
	s.spillPaths[path] = struct{}{}
	s.spillMu.Unlock()
}

// untrackSpill forgets a spill file that no longer exists on disk.
func (s *Sorter) untrackSpill(path string) {
	s.spillMu.Lock()
	delete(s.spillPaths, path)
	s.spillMu.Unlock()
}

// removeSpillFile deletes a tracked spill file, keeping the removal
// counters in SortStats current. On failure the file stays tracked so a
// later Close retries it, and the error is returned (callers on the
// streaming path may defer it to Close rather than fail the merge).
func (s *Sorter) removeSpillFile(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		s.spillRemoveErrs.Add(1)
		return err
	}
	s.untrackSpill(path)
	s.spillRemoved.Add(1)
	return nil
}

// Close removes any spill files the sorter still has on disk. A completed
// Finalize removes them as it streams, so this is a no-op on the happy
// path; aborted sorts (a sink error, a sorter dropped before Finalize) must
// call it to avoid leaking rowsort-run-*.bin files.
//
// Close is safe to call multiple times (including on sorters that never
// spilled): a second Close after a clean one is a no-op returning the first
// call's result, while files whose removal failed stay tracked and are
// retried. Removal errors are not swallowed — every failed removal is
// joined into the returned error and counted in Stats().SpillRemoveErrors.
func (s *Sorter) Close() error {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.closed && len(s.spillPaths) == 0 && s.spillTmpDir == "" {
		return s.closeErr
	}
	s.closed = true
	// Hand the budget back: anything still charged to the broker —
	// resident runs, pooled buffers — is dead once the sorter is closed.
	// Releases are idempotent, so a retried Close is harmless; the
	// broker's peak (Stats().PeakResidentRunBytes) survives.
	if s.unsub != nil {
		s.unsub()
		s.unsub = nil
	}
	s.runRes.Release()
	s.poolRes.Release()
	var errs []error
	for path := range s.spillPaths {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			s.spillRemoveErrs.Add(1)
			errs = append(errs, fmt.Errorf("core: removing spill file: %w", err))
			continue
		}
		delete(s.spillPaths, path)
		s.spillRemoved.Add(1)
	}
	if s.spillTmpDir != "" && len(s.spillPaths) == 0 {
		if err := os.RemoveAll(s.spillTmpDir); err != nil {
			errs = append(errs, fmt.Errorf("core: removing spill directory: %w", err))
		} else {
			s.spillTmpDir = ""
		}
	}
	s.closeErr = errors.Join(errs...)
	// The run is over: freeze its final stats into the observability
	// registry (idempotent; Stats only takes s.mu, which Close never
	// holds).
	s.obsRun.Done()
	return s.closeErr
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader adds the bytes read through it to the sorter's spill-read
// counter (the single-read-pass accounting).
type countingReader struct {
	r io.Reader
	s *Sorter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.s.spillRead.Add(int64(n))
	c.s.prog.SpillBytesRead.Add(int64(n))
	return n, err
}

// spillPath names run id's spill file: under Options.SpillDir when set,
// else under a private temp directory created on first use (and removed by
// Close once its files are gone).
func (s *Sorter) spillPath(id uint32) (string, error) {
	dir := s.opt.SpillDir
	if dir == "" {
		s.spillMu.Lock()
		if s.spillTmpDir == "" {
			d, err := os.MkdirTemp("", "rowsort-spill-*")
			if err != nil {
				s.spillMu.Unlock()
				return "", fmt.Errorf("core: creating spill directory: %w", err)
			}
			s.spillTmpDir = d
		}
		dir = s.spillTmpDir
		s.spillMu.Unlock()
	}
	return filepath.Join(dir, fmt.Sprintf("rowsort-run-%d.bin", id)), nil
}

// approxRowBytes estimates one row's resident footprint (key row plus
// fixed-width payload row; string heaps unknown) for budget planning when
// the exact buffers are not at hand.
func (s *Sorter) approxRowBytes() int64 { return int64(s.rowWidth + s.layout.Width()) }

// spillBlockRowsFor plans the spill-block size for a run about to be
// written: the configured SpillBlockRows when set, the default when
// unbudgeted, else a block sized from the remaining budget and the run's
// average row footprint (mergepath.PlanBlockRows) — small blocks under
// pressure, default-sized ones when there is headroom.
func (s *Sorter) spillBlockRowsFor(r *sortedRun) int {
	if s.opt.SpillBlockRows > 0 || !s.opt.limited() {
		// The strategy plan's block-shape hint applies only when neither the
		// user (SpillBlockRows) nor a budget (mergepath planning below) owns
		// the block size.
		if s.opt.SpillBlockRows == 0 && r.blockHint > 0 {
			return r.blockHint
		}
		return s.opt.spillBlockRows()
	}
	avg := s.approxRowBytes()
	if r.keys != nil && r.rows > 0 {
		avg = runBytes(r) / int64(r.rows)
	}
	return mergepath.PlanBlockRows(s.broker.Remaining(), avg, DefaultSpillBlockRows)
}

// spillRun spills one specific run if it is still resident, claiming it
// against concurrent pressure spillers so a run is written at most once.
func (s *Sorter) spillRun(r *sortedRun, ow *obs.Worker) error {
	s.mu.Lock()
	if r.spilling || r.spill != nil || r.keys == nil {
		s.mu.Unlock()
		return nil
	}
	r.spilling = true
	s.mu.Unlock()
	err := r.spillTo(s, ow)
	// The lock also publishes spillTo's field writes to the next claimer.
	s.mu.Lock()
	r.spilling = false
	s.mu.Unlock()
	return err
}

// spillUnderPressure sheds resident runs to disk, largest first, until the
// broker is back under budget (or nothing spillable is left). Multiple
// sinks may shed concurrently; each claims runs under s.mu.
func (s *Sorter) spillUnderPressure(ow *obs.Worker) error {
	sp := ow.Begin(obs.PhasePressureSpill)
	defer sp.End()
	for s.broker.OverBudget() {
		run := s.claimSpillableRun()
		if run == nil {
			return nil
		}
		s.pressureSpills.Add(1)
		s.prog.PressureSpills.Add(1)
		err := run.spillTo(s, ow)
		s.mu.Lock()
		run.spilling = false
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// claimSpillableRun picks the largest resident run and marks it claimed;
// nil when every run is on disk, claimed, or the sort has moved on to its
// merge (which owns the remaining residents).
func (s *Sorter) claimSpillableRun() *sortedRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil
	}
	var best *sortedRun
	var bestBytes int64
	for _, r := range s.runs {
		if r.spilling || r.spill != nil || r.keys == nil {
			continue
		}
		if b := runBytes(r); best == nil || b > bestBytes {
			best, bestBytes = r, b
		}
	}
	if best != nil {
		best.spilling = true
	}
	return best
}

// releaseRun returns a consumed run's buffers to the pools and its bytes to
// the budget; runs already on disk (keys nil) are untouched.
func (s *Sorter) releaseRun(r *sortedRun) {
	if r.keys == nil {
		return
	}
	s.runRes.Shrink(runBytes(r))
	s.putKeyBuf(r.keys)
	s.putRowSet(r.payload)
	r.keys, r.payload = nil, nil
}

// spillTo writes the run to its spill file in the blocked format and
// releases its in-memory buffers. On any error the partial file is
// removed; nothing is leaked. ow is the calling worker's trace lane.
// Callers on concurrent paths must hold the run's claim (see spillRun).
func (r *sortedRun) spillTo(s *Sorter, ow *obs.Worker) error {
	sp := ow.Begin(obs.PhaseSpillWrite)
	defer sp.End()
	path, err := s.spillPath(r.id)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating spill file: %w", err)
	}
	s.trackSpill(path)
	cleanup := func() { s.removeSpillFile(path) }
	bw := bufio.NewWriter(f)
	cw := &countingWriter{w: bw}
	blockRows := s.spillBlockRowsFor(r)
	sf, err := r.writeBlocks(s, cw, blockRows)
	if err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	s.spillWritten.Add(cw.n)
	s.prog.SpillBytesWritten.Add(cw.n)
	sf.path = path
	r.spill = sf
	// The in-memory buffers are dead once the run is on disk: give their
	// bytes back to the budget and recycle them for the next pending run.
	s.runRes.Shrink(runBytes(r))
	s.putKeyBuf(r.keys)
	s.putRowSet(r.payload)
	r.keys = nil
	r.payload = nil
	return nil
}

// writeKeySection writes one spill block's key rows. Raw format: the rows
// as they are. Front-coding format (fc): a tag byte, then either the raw
// rows (tag 0) or a length-prefixed front-coded encoding (tag 1). The
// encode is attempted only when a fresh sample of the block predicts a
// saving (re-checked per block, so intermediate merge generations re-sample
// what the merge actually produced), and kept only when the block really
// shrank. scratch is the caller's reusable encode buffer.
func (s *Sorter) writeKeySection(w io.Writer, scratch *[]byte, keys []byte, rows int, fc bool) error {
	if !fc {
		_, err := w.Write(keys)
		return err
	}
	rw, kw := s.rowWidth, s.keyWidth
	if normkey.PlanFrontCoding(keys, rw, kw, rows) < fcPlanCutoff {
		enc := normkey.AppendFrontCoded((*scratch)[:0], keys, rw, kw, rows)
		*scratch = enc
		if len(enc) < len(keys) {
			var pre [5]byte
			pre[0] = 1
			binary.LittleEndian.PutUint32(pre[1:], uint32(len(enc)))
			if _, err := w.Write(pre[:]); err != nil {
				return err
			}
			if _, err := w.Write(enc); err != nil {
				return err
			}
			s.spillBlocksFC.Add(1)
			return nil
		}
	}
	if _, err := w.Write([]byte{0}); err != nil {
		return err
	}
	_, err := w.Write(keys)
	return err
}

// writeBlocks serializes the run: a header, then per block the key rows
// (raw, or tagged and possibly front-coded when the run's strategy plan
// asked for it) followed by the block's payload rows (with a block-local
// string heap, so a reader needs only that block resident to resolve
// tie-break lookups). It returns the spill file's block index (offsets and
// fences), recorded as the blocks stream out; the caller fills in the path.
func (r *sortedRun) writeBlocks(s *Sorter, w *countingWriter, blockRows int) (*spillFile, error) {
	rw := s.rowWidth
	n := len(r.keys) / rw
	fc := s.opt.Adaptive && r.frontCode
	magic := uint32(spillMagic)
	if fc {
		magic = spillMagicFC
	}
	var hdr [spillHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(blockRows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	numBlocks := (n + blockRows - 1) / blockRows
	sf := &spillFile{
		blockRows: blockRows,
		offs:      make([]int64, 0, numBlocks),
		fences:    make([]byte, 0, numBlocks*rw),
	}
	blockSet := s.getRowSet()
	defer s.putRowSet(blockSet)
	idxs := make([]uint32, 0, blockRows)
	var fcScratch []byte
	for start := 0; start < n; start += blockRows {
		rows := min(blockRows, n-start)
		sf.offs = append(sf.offs, w.n)
		sf.fences = append(sf.fences, r.keys[start*rw:start*rw+rw]...)
		if err := s.writeKeySection(w, &fcScratch, r.keys[start*rw:(start+rows)*rw], rows, fc); err != nil {
			return nil, err
		}
		blockSet.Reset()
		idxs = idxs[:0]
		for i := 0; i < rows; i++ {
			idxs = append(idxs, uint32(start+i))
		}
		blockSet.AppendRowsFrom(r.payload, idxs)
		if _, err := blockSet.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return sf, nil
}

// runReader streams one run back from its spill file, one decoded block
// resident at a time — synchronously through a blockDecoder, or through a
// prefetcher goroutine that keeps Options.ReadAhead blocks decoded ahead of
// the merge (see prefetch.go). For runs that were never spilled it serves
// the in-memory buffers as a single block, so the merge handles mixed
// residency uniformly. A reader may be bounded to a key range (the
// partitioned external merge): keys then start at the first row whose
// byte-decisive safe prefix is >= lo and stop before the first >= hi.
type runReader struct {
	s   *Sorter
	run *sortedRun
	ow  *obs.Worker // trace lane block reads are recorded on

	dec *blockDecoder // synchronous disk mode
	pf  *prefetcher   // read-ahead disk mode
	cur *spillBlock   // current block (reused as the decode target in sync mode)

	numRows int // full-run row count (range readers serve a subset)

	keys       []byte      // current block's served key rows
	payload    *row.RowSet // current block's payload (always the full block)
	codes      []uint32    // current block's offset-value codes
	blockStart int         // absolute run index of payload's first row
	padOff     uint32      // keys[0]'s offset into payload (head-bounded blocks)

	// res, when set, is charged with the resident decoded blocks' bytes
	// (resBytes tracks the current block's share; the prefetcher charges
	// queued blocks itself). Memory-mode readers leave it nil: their run's
	// buffers are already accounted under runRes.
	res      *mem.Reservation
	resBytes int64

	memory       bool
	memWithCodes bool
	memCodeWidth int
	memServeRows int
	served       bool
	closed       bool
	err          error
}

// openRunReader opens a full-run reader; see openRunReaderRange.
func (s *Sorter) openRunReader(r *sortedRun, withCodes bool, codeWidth int, ow *obs.Worker, res *mem.Reservation) (*runReader, error) {
	return s.openRunReaderRange(r, withCodes, codeWidth, ow, res, nil, nil, 0)
}

// openRunReaderRange opens a reader over r's rows, optionally bounded to
// the key range [lo, hi) on the safeWidth-byte prefix (nil bounds are
// open). codeWidth is the byte-decisive key prefix the offset-value codes
// cover (ignored when withCodes is false); ow is the trace lane block reads
// are recorded on; res is charged with the decoded blocks' bytes. When the
// run is on disk and Options.ReadAhead is enabled, a prefetcher goroutine
// starts decoding immediately.
func (s *Sorter) openRunReaderRange(r *sortedRun, withCodes bool, codeWidth int, ow *obs.Worker,
	res *mem.Reservation, lo, hi []byte, safeWidth int) (*runReader, error) {
	rd := &runReader{s: s, run: r, ow: ow, res: res}
	if r.spill == nil {
		rd.memory = true
		rd.numRows = len(r.keys) / s.rowWidth
		rd.memBounds(withCodes, codeWidth, lo, hi, safeWidth)
		return rd, nil
	}
	dec, err := s.openBlockDecoder(r, withCodes, codeWidth, lo, hi, safeWidth)
	if err != nil {
		return nil, err
	}
	rd.numRows = dec.numRows
	if depth := s.opt.readAhead(); depth > 0 {
		dec.ow = s.rec.Worker("prefetch")
		dec.phase = obs.PhasePrefetch
		rd.pf = startPrefetcher(dec, depth, res)
	} else {
		dec.ow = ow
		dec.phase = obs.PhaseSpillRead
		rd.dec = dec
	}
	return rd, nil
}

// memBounds precomputes a memory-mode reader's served slice: the rows of
// [lo, hi) on the safe prefix, found by binary search over the (sorted)
// resident keys. Codes are computed lazily on the first next.
func (rd *runReader) memBounds(withCodes bool, codeWidth int, lo, hi []byte, safeWidth int) {
	rd.keys = rd.run.keys
	rd.payload = rd.run.payload
	rw := rd.s.rowWidth
	full := mergepath.Run{Data: rd.run.keys, Width: rw}
	a, b := 0, rd.numRows
	if lo != nil {
		a = safeLowerBound(full, lo, safeWidth)
	}
	if hi != nil {
		b = safeLowerBound(full, hi, safeWidth)
	}
	if a > b {
		b = a
	}
	rd.keys = rd.run.keys[a*rw : b*rw]
	rd.padOff = uint32(a)
	rd.blockStart = 0
	if withCodes {
		rd.memCodeWidth = codeWidth
	}
	rd.memServeRows = b - a
	rd.memWithCodes = withCodes
}

// next loads the run's next block, retiring the previous one. It returns
// false at end of the (range-bounded) run or on error (check rd.err). The
// codes carry across blocks: codes[0] of a new block is relative to the
// previous block's last row, which the merge has always just output when it
// asks for a refill.
func (rd *runReader) next() bool {
	if rd.err != nil {
		return false
	}
	if rd.memory {
		if rd.served || rd.memServeRows == 0 {
			return false
		}
		rd.served = true
		if rd.memWithCodes {
			rd.codes = mergepath.ComputeOVC(
				mergepath.Run{Data: rd.keys, Width: rd.s.rowWidth}, rd.memCodeWidth)
		}
		return true
	}

	var b *spillBlock
	if rd.pf != nil {
		b = rd.pf.next(rd.s)
		if b == nil {
			if err := rd.pf.err; err != nil {
				rd.err = err
			}
			return false
		}
	} else {
		sp := rd.ow.Begin(obs.PhaseSpillRead)
		var err error
		b, err = rd.dec.decode(rd.cur)
		sp.End()
		if err != nil {
			rd.err = err
			return false
		}
		if b == nil {
			return false
		}
	}
	// Retire the previous block's charge. The prefetcher charged the new
	// block when it decoded it; in sync mode the buffers are reused, so
	// charging nets out to the capacity delta.
	if rd.pf != nil {
		rd.res.Shrink(rd.resBytes)
	} else {
		rd.res.Grow(b.bytes - rd.resBytes)
	}
	rd.resBytes = b.bytes
	rd.cur = b
	rd.keys = b.keys
	rd.payload = b.payload
	rd.codes = b.codes
	rd.blockStart = b.payloadStart
	rd.padOff = b.padOff
	return true
}

// close releases the reader — stopping and draining its prefetcher, giving
// the decoded blocks' bytes back to the budget, closing the file. With
// remove set the (fully consumed) spill file is deleted; a failed removal
// keeps the file tracked, so Close retries it and reports the error.
func (rd *runReader) close(remove bool) {
	if rd.closed {
		return
	}
	rd.closed = true
	if rd.pf != nil {
		rd.pf.close()
	}
	if rd.dec != nil {
		rd.dec.close()
	}
	rd.res.Shrink(rd.resBytes)
	rd.resBytes = 0
	if rd.run.spill != nil && remove {
		rd.s.removeSpillFile(rd.run.spill.path)
		rd.run.spill = nil
	}
}

// extMerge is one streaming k-way merge over a mix of spilled and resident
// runs: block readers, the offset-value-coded loser tree, and a pending
// gather batch materialized into dst. It is shared by the eager merge
// (externalFinalize), the fan-in-reducing intermediate passes
// (mergeRunsToSpill), and the chunked result iterator (Sorter.Rows), which
// each drain it differently.
type extMerge struct {
	s      *Sorter
	mw     *obs.Worker
	res    *mem.Reservation // block buffers; the readers grow/shrink it
	active []uint32         // the participating run ids, merger order
	// readers is indexed by absolute run id (sparse): key-row references
	// carry the original run id, so tie-break lookups and refills resolve
	// without translation.
	readers []*runReader
	m       *mergepath.Merger
	total   int
	anyTie  bool

	batch     int
	srcs      []*row.RowSet
	pendWhich []uint32
	pendIdxs  []uint32
	dst       *row.RowSet // gather destination, owned by the drainer
}

// openExtMerge opens block readers over the given runs, primes their first
// blocks and builds the loser tree. res is charged with the resident block
// bytes for the merge's lifetime (the caller releases it after close).
func (s *Sorter) openExtMerge(ids []uint32, mw *obs.Worker, res *mem.Reservation) (*extMerge, error) {
	return s.openExtMergeRange(ids, mw, res, nil, nil)
}

// openExtMergeRange is openExtMerge bounded to the key range [lo, hi) on
// the byte-decisive safe prefix (nil bounds are open): each reader starts
// at its run's first row >= lo and stops before the first >= hi, so the
// partitioned external merge's workers each stream a disjoint slice of the
// output. For range-bounded merges e.total still counts the full runs.
func (s *Sorter) openExtMergeRange(ids []uint32, mw *obs.Worker, res *mem.Reservation, lo, hi []byte) (*extMerge, error) {
	useOVC := s.opt.Merge != MergeLoserTreeNoOVC
	anyTie := false
	for _, id := range ids {
		anyTie = anyTie || s.runs[id].tieBreak
	}
	// Byte order is only decisive up to the first tied varchar segment; the
	// codes must cover exactly that prefix so byte-equal rows fall to the
	// segment-wise comparator.
	ovcWidth := s.ovcSafeWidth(anyTie)

	e := &extMerge{s: s, mw: mw, res: res, anyTie: anyTie,
		active:  append([]uint32(nil), ids...),
		readers: make([]*runReader, len(s.runs)),
	}
	for _, id := range ids {
		rd, err := s.openRunReaderRange(s.runs[id], useOVC, ovcWidth, mw, res, lo, hi, ovcWidth)
		if err != nil {
			e.close(false)
			return nil, err
		}
		e.readers[id] = rd
		e.total += rd.numRows
	}

	// Prime every run's first block.
	mruns := make([]mergepath.Run, len(ids))
	mcodes := make([][]uint32, len(ids))
	for i, id := range ids {
		rd := e.readers[id]
		if rd.next() {
			mruns[i] = mergepath.Run{Data: rd.keys, Width: s.rowWidth}
			mcodes[i] = rd.codes
		} else if rd.err != nil {
			err := rd.err
			e.close(false)
			return nil, err
		} else {
			mruns[i] = mergepath.Run{Width: s.rowWidth}
		}
	}

	// Tie-break lookups resolve against the resident block: references
	// store absolute run indexes, the reader knows its block's offset.
	var tie mergepath.CompareFunc
	if anyTie {
		tie = s.comparator(func(runID, idx uint32) (*row.RowSet, int) {
			rd := e.readers[runID]
			return rd.payload, int(idx) - rd.blockStart
		})
	}
	if useOVC {
		e.m = mergepath.NewMerger(mruns, ovcWidth, mcodes, tie)
	} else {
		cmp := tie
		if cmp == nil {
			kw := s.keyWidth
			cmp = func(a, b []byte) int { return compareBytes(a[:kw], b[:kw]) }
		}
		e.m = mergepath.NewMerger(mruns, 0, nil, cmp)
	}

	e.batch = s.opt.spillBlockRows()
	e.pendWhich = make([]uint32, 0, e.batch)
	e.pendIdxs = make([]uint32, 0, e.batch)
	e.srcs = make([]*row.RowSet, len(ids))
	e.m.SetRefill(func(r int) (mergepath.Run, []uint32, bool) {
		// Pending gathers may reference the exhausted block; materialize
		// them before the reader overwrites it. (Only rows already output
		// can be pending, so everything they reference is still resident.)
		e.flushPend()
		rd := e.readers[e.active[r]]
		if !rd.next() {
			return mergepath.Run{}, nil, false
		}
		return mergepath.Run{Data: rd.keys, Width: s.rowWidth}, rd.codes, true
	})
	return e, nil
}

// next emits the next merged key row (valid until the following next call)
// and queues its payload reference for the next flushPend. ok is false at
// end of input; check readerErr then. The winner's position is within its
// served keys, which on a range-bounded partition-edge block sit padOff
// rows into the block's payload.
func (e *extMerge) next() (keyRow []byte, ok bool) {
	run, pos, keyRow, ok := e.m.Next()
	if !ok {
		return nil, false
	}
	e.pendWhich = append(e.pendWhich, uint32(run))
	e.pendIdxs = append(e.pendIdxs, uint32(pos)+e.readers[e.active[run]].padOff)
	return keyRow, true
}

// flushPend gathers the queued payload references into dst with the typed
// batch kernels and clears the queue.
func (e *extMerge) flushPend() {
	if len(e.pendIdxs) == 0 {
		return
	}
	for i, id := range e.active {
		e.srcs[i] = e.readers[id].payload
	}
	e.dst.AppendRowsGather(e.srcs, e.pendWhich, e.pendIdxs)
	// Every merged row drains through here exactly once (eager final merge,
	// intermediate passes, partitioned workers, and the streamed result),
	// making it the single live merge-progress publication point.
	e.s.prog.RowsMerged.Add(int64(len(e.pendIdxs)))
	e.pendWhich = e.pendWhich[:0]
	e.pendIdxs = e.pendIdxs[:0]
}

// readerErr returns the first reader error, if any.
func (e *extMerge) readerErr() error {
	for _, id := range e.active {
		if rd := e.readers[id]; rd != nil && rd.err != nil {
			return rd.err
		}
	}
	return nil
}

// close releases every reader (and its charged block bytes); with remove
// set the fully consumed spill files are deleted. Without remove the files
// stay tracked, so an abandoned merge leaks nothing — Sorter.Close sweeps
// them.
func (e *extMerge) close(remove bool) {
	for _, rd := range e.readers {
		if rd != nil {
			rd.close(remove)
		}
	}
}

// externalFinalize merges all spilled runs in a single streaming pass: each
// run is read through a fixed-size block reader (resident memory = k runs ×
// (1 + ReadAhead) × SpillBlockRows), the offset-value-coded loser tree
// interleaves the key rows, and payload rows are gathered into the final
// run in block-sized batches with the typed AppendRowsGather kernels. When
// the sort is big enough and ExtMergeThreads allows, the merge itself is
// partitioned across workers over disjoint key ranges (see extparallel.go);
// otherwise it runs sequentially, reading every spilled byte exactly once,
// versus O(n log k) for the cascaded pairwise merge.
func (s *Sorter) externalFinalize() error {
	if len(s.runs) == 0 {
		return nil
	}
	mw := s.rec.Worker("merge")
	msp := mw.Begin(obs.PhaseMerge)
	defer msp.End()

	ids := make([]uint32, len(s.runs))
	for i := range s.runs {
		ids[i] = uint32(i)
	}
	s.mergeFanIn.Store(int64(len(ids)))
	if done, err := s.externalFinalizeParallel(ids); done || err != nil {
		return err
	}
	res := s.broker.Reserve("merge", 0)
	defer res.Release()
	e, err := s.openExtMerge(ids, mw, res)
	if err != nil {
		return err
	}
	defer e.close(true)

	total := e.total
	finalID := uint32(len(s.runs))
	out := s.getRowSet()
	out.Reserve(total)
	e.dst = out
	finalKeys := make([]byte, total*s.rowWidth)
	outPos := 0
	rw := s.rowWidth
	for {
		keyRow, ok := e.next()
		if !ok {
			break
		}
		dst := finalKeys[outPos*rw : (outPos+1)*rw]
		copy(dst, keyRow)
		s.putRef(dst, finalID, uint32(outPos))
		outPos++
		if len(e.pendIdxs) >= e.batch {
			e.flushPend()
		}
	}
	if err := e.readerErr(); err != nil {
		return err
	}
	if outPos != total {
		return fmt.Errorf("core: external merge produced %d of %d rows", outPos, total)
	}
	e.flushPend()

	st := e.m.Stats()
	st.BytesMoved = uint64(len(finalKeys))
	s.mergeStats.Add(st)

	// Register the final run; all references now point at it, so Result
	// gathers sequentially like the in-memory path.
	final := &sortedRun{id: finalID, keys: finalKeys, payload: out, tieBreak: e.anyTie, rows: total}
	s.runs = append(s.runs, final)
	s.finalKeys = finalKeys
	s.runRes.Grow(runBytes(final))
	// Inputs that were still memory-resident have been fully consumed.
	for _, id := range ids {
		s.releaseRun(s.runs[id])
	}
	return nil
}

// planStreamingMerge is the budgeted external arm of Finalize: an eager
// merge would hold the entire materialized output resident, so instead it
// only reduces the run count to a fan-in the remaining budget can stream
// and defers the final pass to the chunked result iterator (Sorter.Rows).
func (s *Sorter) planStreamingMerge() error {
	mw := s.rec.Worker("merge")
	sp := mw.Begin(obs.PhaseMerge)
	defer sp.End()
	ids := make([]uint32, len(s.runs))
	for i := range s.runs {
		ids[i] = uint32(i)
	}
	ids, err := s.reduceFanIn(ids, mw)
	if err != nil {
		return err
	}
	total := 0
	for _, id := range ids {
		total += s.runs[id].rows
	}
	s.streamMerge = true
	s.streamActive = ids
	s.streamTotal = total
	return nil
}

// reduceFanIn merges contiguous batches of runs to disk until the remaining
// budget can stream the survivors at once (mergepath.PlanMerge: the plan
// prefers cascading extra passes over healthy-sized blocks to thrashing
// tiny ones, and sizes each pass for the (1 + ReadAhead) resident blocks
// per run that read-ahead holds). Batches are contiguous and each merged
// run takes its batch's position, so the final merge sees runs in original
// run-id order — ties still resolve to the earlier input run, which keeps
// budgeted output byte-identical to the unlimited sort. The strategy
// planner's merge-role hints steer where the contiguous cuts land
// (mergepath.BatchRuns groups like-role neighbors into the same pass, which
// keeps the duplicate-run fast path hot); they never reorder runs, so the
// tie guarantee is untouched. The executed plan is recorded in SortStats
// (merge passes, final fan-in, pass bytes).
func (s *Sorter) reduceFanIn(ids []uint32, mw *obs.Worker) ([]uint32, error) {
	buffers := s.opt.mergeBuffers()
	for {
		avg := s.approxRowBytes()
		plan := mergepath.PlanMerge(len(ids), s.broker.Remaining(), avg, s.opt.spillBlockRows(), buffers)
		if plan.FanIn >= len(ids) {
			s.mergeFanIn.Store(int64(len(ids)))
			return ids, nil
		}
		var role func(i int) int
		if s.opt.Adaptive {
			role = func(i int) int { return int(s.runs[ids[i]].role) }
		}
		next := make([]uint32, 0, (len(ids)+plan.FanIn-1)/plan.FanIn)
		for _, span := range mergepath.BatchRuns(len(ids), plan.FanIn, role) {
			batch := ids[span[0]:span[1]]
			if len(batch) == 1 {
				next = append(next, batch[0])
				continue
			}
			id, err := s.mergeRunsToSpill(batch, plan.BlockRows, mw)
			if err != nil {
				return nil, err
			}
			next = append(next, id)
		}
		ids = next
	}
}

// mergeRunsToSpill streams one intermediate merge pass over the given runs
// directly into a new spilled run (blocked format, refs rewritten to the
// merged run), registers it — Finalize already holds s.mu, so no locking —
// and releases the consumed inputs. Resident memory is the readers' blocks
// plus one output block. blockRows sizes the output blocks; 0 plans them
// from the remaining budget. Each pass is one PhaseMergePass span and is
// counted in SortStats (passes, input runs, bytes rewritten).
func (s *Sorter) mergeRunsToSpill(ids []uint32, blockRows int, mw *obs.Worker) (uint32, error) {
	psp := mw.Begin(obs.PhaseMergePass)
	defer psp.End()
	res := s.broker.Reserve("fan-in-merge", 0)
	defer res.Release()
	e, err := s.openExtMerge(ids, mw, res)
	if err != nil {
		return 0, err
	}
	// An intermediate pass moves every input row again; grow the plan so
	// the progress fraction accounts for the extra work instead of jumping
	// past 100%.
	s.prog.MergeRowsPlanned.Add(int64(e.total))
	consumed := false
	defer func() { e.close(consumed) }()

	// A merged run inherits its inputs' common merge role (mixed batches
	// demote to normal) and, under Adaptive, keeps attempting front-coded
	// spill blocks: writeKeySection re-samples every block of every
	// generation, so the decision tracks what this merge actually produced
	// rather than what the original runs looked like.
	fc := s.opt.Adaptive
	role := s.runs[ids[0]].role
	for _, id := range ids[1:] {
		if s.runs[id].role != role {
			role = strategy.RoleNormal
			break
		}
	}
	merged := &sortedRun{id: uint32(len(s.runs)), tieBreak: e.anyTie, rows: e.total,
		role: role, frontCode: fc}
	s.runs = append(s.runs, merged)

	path, err := s.spillPath(merged.id)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("core: creating spill file: %w", err)
	}
	s.trackSpill(path)
	fail := func(err error) (uint32, error) {
		f.Close()
		if rerr := s.removeSpillFile(path); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return 0, err
	}

	rw := s.rowWidth
	if blockRows <= 0 {
		blockRows = s.spillBlockRowsFor(merged)
	}
	bw := bufio.NewWriter(f)
	cw := &countingWriter{w: bw}
	magic := uint32(spillMagic)
	if fc {
		magic = spillMagicFC
	}
	var hdr [spillHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(blockRows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(e.total))
	if _, err := cw.Write(hdr[:]); err != nil {
		return fail(err)
	}

	sf := &spillFile{path: path, blockRows: blockRows}
	staging := s.getRowSet()
	defer s.putRowSet(staging)
	e.dst = staging
	keyBlock := make([]byte, 0, blockRows*rw)
	var fcScratch []byte
	outPos := 0
	writeBlock := func() error {
		if len(keyBlock) == 0 {
			return nil
		}
		sf.offs = append(sf.offs, cw.n)
		sf.fences = append(sf.fences, keyBlock[:rw]...)
		if err := s.writeKeySection(cw, &fcScratch, keyBlock, len(keyBlock)/rw, fc); err != nil {
			return err
		}
		e.flushPend()
		if _, err := staging.WriteTo(cw); err != nil {
			return err
		}
		staging.Reset()
		keyBlock = keyBlock[:0]
		return nil
	}
	for {
		keyRow, ok := e.next()
		if !ok {
			break
		}
		keyBlock = append(keyBlock, keyRow...)
		s.putRef(keyBlock[len(keyBlock)-rw:], merged.id, uint32(outPos))
		outPos++
		if len(keyBlock) >= blockRows*rw {
			if err := writeBlock(); err != nil {
				return fail(err)
			}
		}
	}
	if err := e.readerErr(); err != nil {
		return fail(err)
	}
	if outPos != e.total {
		return fail(fmt.Errorf("core: fan-in merge produced %d of %d rows", outPos, e.total))
	}
	if err := writeBlock(); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		if rerr := s.removeSpillFile(path); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return 0, err
	}

	s.spillWritten.Add(cw.n)
	s.prog.SpillBytesWritten.Add(cw.n)
	merged.spill = sf
	consumed = true
	for _, id := range ids {
		s.releaseRun(s.runs[id])
	}
	st := e.m.Stats()
	st.BytesMoved = uint64(outPos * rw)
	s.mergeStats.Add(st)
	s.mergePasses.Add(1)
	s.prog.MergePasses.Add(1)
	s.mergePassRuns.Add(int64(len(ids)))
	s.mergePassBytes.Add(cw.n)
	return merged.id, nil
}

// unspill reads the run back into memory (used by the cascaded ablation
// path) and removes its file. ow is the calling worker's trace lane.
func (r *sortedRun) unspill(s *Sorter, ow *obs.Worker) error {
	if r.spill == nil {
		return nil
	}
	rd, err := s.openRunReader(r, false, 0, ow, nil)
	if err != nil {
		return err
	}
	keys := make([]byte, 0, rd.numRows*s.rowWidth)
	payload := s.getRowSet()
	payload.Reserve(rd.numRows)
	var idxs []uint32
	for rd.next() {
		keys = append(keys, rd.keys...)
		n := rd.payload.Len()
		if cap(idxs) < n {
			idxs = make([]uint32, n)
		}
		idxs = idxs[:n]
		for i := range idxs {
			idxs[i] = uint32(i)
		}
		payload.AppendRowsFrom(rd.payload, idxs)
	}
	if rd.err != nil {
		rd.close(false)
		s.putRowSet(payload)
		return rd.err
	}
	rd.close(true)
	r.keys = keys
	r.payload = payload
	s.runRes.Grow(runBytes(r))
	return nil
}

// externalFinalizeCascade is the ablation baseline (the previous design):
// spilled runs merged pairwise with full unspill/re-spill of intermediates,
// so each row's spill I/O is multiplied by the cascade depth. Kept for the
// -exp merge ablation and as a reference implementation.
func (s *Sorter) externalFinalizeCascade() error {
	queue := make([]uint32, len(s.runs))
	for i := range s.runs {
		queue[i] = uint32(i)
	}
	if len(queue) == 0 {
		return nil
	}
	mw := s.rec.Worker("merge")
	msp := mw.Begin(obs.PhaseMerge)
	defer msp.End()
	for len(queue) > 1 {
		a, b := s.runs[queue[0]], s.runs[queue[1]]
		queue = queue[2:]
		merged, err := s.mergeRunPair(a, b, mw)
		if err != nil {
			return err
		}
		queue = append(queue, merged.id)
		if len(queue) > 1 {
			// More merging ahead: push the result out of memory again.
			if err := merged.spillTo(s, mw); err != nil {
				return err
			}
		}
	}
	final := s.runs[queue[0]]
	if final.spill != nil {
		if err := final.unspill(s, mw); err != nil {
			return err
		}
	}
	s.finalKeys = final.keys
	s.mergeStats.BytesMoved = uint64(len(final.keys))
	return nil
}

// mergeRunPair loads two runs, merges their keys and payloads into a new
// run (payload physically reordered, refs rewritten), registers it, and
// releases the inputs. ow is the calling worker's trace lane.
func (s *Sorter) mergeRunPair(a, b *sortedRun, ow *obs.Worker) (*sortedRun, error) {
	for _, r := range []*sortedRun{a, b} {
		if err := r.unspill(s, ow); err != nil {
			return nil, err
		}
	}

	var cmp mergepath.CompareFunc
	if a.tieBreak || b.tieBreak {
		cmp = s.comparator(func(runID, idx uint32) (*row.RowSet, int) {
			return s.runs[runID].payload, int(idx)
		})
	} else {
		kw := s.keyWidth
		cmp = func(x, y []byte) int { return compareBytes(x[:kw], y[:kw]) }
	}

	mergedKeys := make([]byte, len(a.keys)+len(b.keys))
	mergepath.ParallelMerge(mergedKeys,
		mergepath.Run{Data: a.keys, Width: s.rowWidth},
		mergepath.Run{Data: b.keys, Width: s.rowWidth},
		cmp, s.opt.threads())

	// Finalize already holds s.mu; run generation is over, so registering
	// the merged run needs no further locking.
	merged := &sortedRun{id: uint32(len(s.runs)), tieBreak: a.tieBreak || b.tieBreak}
	s.runs = append(s.runs, merged)

	// Reorder both payloads into the merged run with the batched permute:
	// decode every reference once, rewrite it to the merged run, then move
	// the rows (and compact the string heaps) with the typed kernels.
	n := len(mergedKeys) / s.rowWidth
	payloads := make([]*row.RowSet, len(s.runs))
	for i, r := range s.runs {
		payloads[i] = r.payload
	}
	which := make([]uint32, n)
	idxs := make([]uint32, n)
	for i := 0; i < n; i++ {
		keyRow := mergedKeys[i*s.rowWidth : (i+1)*s.rowWidth]
		which[i], idxs[i] = s.getRef(keyRow)
		s.putRef(keyRow, merged.id, uint32(i))
	}
	payload := s.getRowSet()
	payload.Reserve(n)
	payload.AppendRowsGather(payloads, which, idxs)
	merged.keys = mergedKeys
	merged.payload = payload
	merged.rows = n
	s.prog.RowsMerged.Add(int64(n))
	s.runRes.Grow(runBytes(merged))

	// Release the inputs into the pools.
	s.releaseRun(a)
	s.releaseRun(b)
	return merged, nil
}
