package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rowsort/internal/mergepath"
	"rowsort/internal/obs"
	"rowsort/internal/row"
)

// Spilling demonstrates the paper's future-work direction: because a run is
// just flat key rows plus a row-format payload, it can be offloaded to
// secondary storage in one unified format with no conversion. Runs are
// written as fixed-size blocks (SpillBlockRows key rows followed by their
// payload rows with a block-local string heap), and the merge streams all k
// runs back block by block through one offset-value-coded loser tree:
// resident memory is bounded by k blocks plus the materialized output, and
// every spilled byte is read exactly once.

// spillMagic heads every spill file ("RSB2": row-sort blocks, format 2).
const spillMagic = 0x52534232

// spillHeaderLen is the file header: magic, block rows, total rows.
const spillHeaderLen = 16

// spillFile records where a sorted run lives on disk.
type spillFile struct {
	path string
}

// trackSpill registers a spill file for cleanup by Close.
func (s *Sorter) trackSpill(path string) {
	s.spillMu.Lock()
	if s.spillPaths == nil {
		s.spillPaths = make(map[string]struct{})
	}
	s.spillPaths[path] = struct{}{}
	s.spillMu.Unlock()
}

// untrackSpill forgets a spill file that no longer exists on disk.
func (s *Sorter) untrackSpill(path string) {
	s.spillMu.Lock()
	delete(s.spillPaths, path)
	s.spillMu.Unlock()
}

// removeSpillFile deletes a tracked spill file, keeping the removal
// counters in SortStats current. On failure the file stays tracked so a
// later Close retries it, and the error is returned (callers on the
// streaming path may defer it to Close rather than fail the merge).
func (s *Sorter) removeSpillFile(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		s.spillRemoveErrs.Add(1)
		return err
	}
	s.untrackSpill(path)
	s.spillRemoved.Add(1)
	return nil
}

// Close removes any spill files the sorter still has on disk. A completed
// Finalize removes them as it streams, so this is a no-op on the happy
// path; aborted sorts (a sink error, a sorter dropped before Finalize) must
// call it to avoid leaking rowsort-run-*.bin files.
//
// Close is safe to call multiple times (including on sorters that never
// spilled): a second Close after a clean one is a no-op returning the first
// call's result, while files whose removal failed stay tracked and are
// retried. Removal errors are not swallowed — every failed removal is
// joined into the returned error and counted in Stats().SpillRemoveErrors.
func (s *Sorter) Close() error {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.closed && len(s.spillPaths) == 0 {
		return s.closeErr
	}
	s.closed = true
	var errs []error
	for path := range s.spillPaths {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			s.spillRemoveErrs.Add(1)
			errs = append(errs, fmt.Errorf("core: removing spill file: %w", err))
			continue
		}
		delete(s.spillPaths, path)
		s.spillRemoved.Add(1)
	}
	s.closeErr = errors.Join(errs...)
	return s.closeErr
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader adds the bytes read through it to the sorter's spill-read
// counter (the single-read-pass accounting).
type countingReader struct {
	r io.Reader
	s *Sorter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.s.spillRead.Add(int64(n))
	return n, err
}

// spillTo writes the run to a file under s.opt.SpillDir in the blocked
// format and releases its in-memory buffers. On any error the partial file
// is removed; nothing is leaked. ow is the calling worker's trace lane.
func (r *sortedRun) spillTo(s *Sorter, ow *obs.Worker) error {
	sp := ow.Begin(obs.PhaseSpillWrite)
	defer sp.End()
	path := filepath.Join(s.opt.SpillDir, fmt.Sprintf("rowsort-run-%d.bin", r.id))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating spill file: %w", err)
	}
	s.trackSpill(path)
	cleanup := func() { s.removeSpillFile(path) }
	bw := bufio.NewWriter(f)
	cw := &countingWriter{w: bw}
	if err := r.writeBlocks(s, cw); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	s.spillWritten.Add(cw.n)
	r.spill = &spillFile{path: path}
	// The in-memory buffers are dead once the run is on disk: recycle them
	// for the next pending run.
	s.residentAdd(-(int64(len(r.keys)) + int64(r.payload.MemSize())))
	s.putKeyBuf(r.keys)
	s.putRowSet(r.payload)
	r.keys = nil
	r.payload = nil
	return nil
}

// writeBlocks serializes the run: a header, then per block the raw key rows
// followed by the block's payload rows (with a block-local string heap, so
// a reader needs only that block resident to resolve tie-break lookups).
func (r *sortedRun) writeBlocks(s *Sorter, w io.Writer) error {
	rw := s.rowWidth
	n := len(r.keys) / rw
	blockRows := s.opt.spillBlockRows()
	var hdr [spillHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(blockRows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	blockSet := s.getRowSet()
	defer s.putRowSet(blockSet)
	idxs := make([]uint32, 0, blockRows)
	for start := 0; start < n; start += blockRows {
		rows := min(blockRows, n-start)
		if _, err := w.Write(r.keys[start*rw : (start+rows)*rw]); err != nil {
			return err
		}
		blockSet.Reset()
		idxs = idxs[:0]
		for i := 0; i < rows; i++ {
			idxs = append(idxs, uint32(start+i))
		}
		blockSet.AppendRowsFrom(r.payload, idxs)
		if _, err := blockSet.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// runReader streams one run back from its spill file, one block resident at
// a time. For runs that were never spilled it serves the in-memory buffers
// as a single block, so the merge handles mixed residency uniformly.
type runReader struct {
	s         *Sorter
	run       *sortedRun
	ow        *obs.Worker // trace lane block reads are recorded on
	f         *os.File
	br        *bufio.Reader
	withCodes bool
	codeWidth int // key prefix width the offset-value codes cover

	blockRows  int
	numRows    int
	readRows   int
	blockStart int // absolute index of the current block's first row

	keys    []byte      // current block's key rows (buffer reused)
	payload *row.RowSet // current block's payload
	codes   []uint32    // current block's offset-value codes
	lastKey []byte      // previous block's final key row (the code carry)

	memory bool
	served bool
	err    error
}

// openRunReader opens r's spill file and reads its header. codeWidth is the
// byte-decisive key prefix the offset-value codes cover (ignored when
// withCodes is false); ow is the trace lane block reads are recorded on.
func (s *Sorter) openRunReader(r *sortedRun, withCodes bool, codeWidth int, ow *obs.Worker) (*runReader, error) {
	rd := &runReader{s: s, run: r, ow: ow, withCodes: withCodes, codeWidth: codeWidth}
	if r.spill == nil {
		rd.memory = true
		rd.numRows = len(r.keys) / s.rowWidth
		rd.blockRows = max(1, rd.numRows)
		return rd, nil
	}
	f, err := os.Open(r.spill.path)
	if err != nil {
		return nil, fmt.Errorf("core: opening spill file: %w", err)
	}
	rd.f = f
	rd.br = bufio.NewReader(&countingReader{r: f, s: s})
	var hdr [spillHeaderLen]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading spill header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != spillMagic {
		f.Close()
		return nil, fmt.Errorf("core: bad spill magic in %s", r.spill.path)
	}
	rd.blockRows = int(binary.LittleEndian.Uint32(hdr[4:]))
	rd.numRows = int(binary.LittleEndian.Uint64(hdr[8:]))
	if rd.blockRows <= 0 {
		f.Close()
		return nil, fmt.Errorf("core: bad spill block size in %s", r.spill.path)
	}
	return rd, nil
}

// next loads the run's next block, overwriting the previous one. It returns
// false at end of run or on error (check rd.err). The codes carry across
// blocks: codes[0] of a new block is relative to the previous block's last
// row, which the merge has always just output when it asks for a refill.
func (rd *runReader) next() bool {
	if rd.err != nil {
		return false
	}
	if rd.memory {
		if rd.served || rd.numRows == 0 {
			return false
		}
		rd.served = true
		rd.keys = rd.run.keys
		rd.payload = rd.run.payload
		if rd.withCodes {
			rd.codes = mergepath.ComputeOVC(
				mergepath.Run{Data: rd.keys, Width: rd.s.rowWidth}, rd.codeWidth)
		}
		return true
	}
	if rd.readRows >= rd.numRows {
		return false
	}
	sp := rd.ow.Begin(obs.PhaseSpillRead)
	defer sp.End()
	rw := rd.s.rowWidth
	rows := min(rd.blockRows, rd.numRows-rd.readRows)
	if rd.keys != nil {
		rd.lastKey = append(rd.lastKey[:0], rd.keys[len(rd.keys)-rw:]...)
	}
	if cap(rd.keys) < rows*rw {
		rd.keys = make([]byte, rows*rw)
	} else {
		rd.keys = rd.keys[:rows*rw]
	}
	if _, err := io.ReadFull(rd.br, rd.keys); err != nil {
		rd.err = fmt.Errorf("core: reading spill block keys: %w", err)
		return false
	}
	payload, err := row.ReadRowSet(rd.br, rd.s.layout)
	if err != nil {
		rd.err = fmt.Errorf("core: reading spill block payload: %w", err)
		return false
	}
	rd.payload = payload
	rd.blockStart = rd.readRows
	rd.readRows += rows
	if rd.withCodes {
		kw := rd.codeWidth
		if cap(rd.codes) < rows {
			rd.codes = make([]uint32, rows)
		} else {
			rd.codes = rd.codes[:rows]
		}
		blk := mergepath.Run{Data: rd.keys, Width: rw}
		if rd.blockStart > 0 {
			rd.codes[0] = mergepath.OVCCode(rd.lastKey, blk.Row(0), kw)
		} else {
			rd.codes[0] = 0 // a run's first row: never read by the tree
		}
		for i := 1; i < rows; i++ {
			rd.codes[i] = mergepath.OVCCode(blk.Row(i-1), blk.Row(i), kw)
		}
	}
	return true
}

// close releases the reader; with remove set the (fully consumed) spill
// file is deleted. A failed removal keeps the file tracked, so Close
// retries it and reports the error.
func (rd *runReader) close(remove bool) {
	if rd.f == nil {
		return
	}
	rd.f.Close()
	rd.f = nil
	if remove {
		rd.s.removeSpillFile(rd.run.spill.path)
		rd.run.spill = nil
	}
}

// externalFinalize merges all spilled runs in a single streaming pass: each
// run is read through a fixed-size block reader (resident memory = k runs ×
// SpillBlockRows), the offset-value-coded loser tree interleaves the key
// rows, and payload rows are gathered into the final run in block-sized
// batches with the typed AppendRowsGather kernels. Every spilled byte is
// read exactly once, versus O(n log k) for the cascaded pairwise merge.
func (s *Sorter) externalFinalize() error {
	if len(s.runs) == 0 {
		return nil
	}
	mw := s.rec.Worker("merge")
	msp := mw.Begin(obs.PhaseMerge)
	defer msp.End()
	useOVC := s.opt.Merge != MergeLoserTreeNoOVC
	anyTieBreak := false
	for _, r := range s.runs {
		anyTieBreak = anyTieBreak || r.tieBreak
	}
	// Byte order is only decisive up to the first tied varchar segment; the
	// codes must cover exactly that prefix so byte-equal rows fall to the
	// segment-wise comparator.
	ovcWidth := s.ovcSafeWidth(anyTieBreak)

	readers := make([]*runReader, len(s.runs))
	defer func() {
		for _, rd := range readers {
			if rd != nil {
				rd.close(true)
			}
		}
	}()
	total := 0
	for i, r := range s.runs {
		rd, err := s.openRunReader(r, useOVC, ovcWidth, mw)
		if err != nil {
			return err
		}
		readers[i] = rd
		total += rd.numRows
	}

	// Prime every run's first block.
	mruns := make([]mergepath.Run, len(readers))
	mcodes := make([][]uint32, len(readers))
	for i, rd := range readers {
		if rd.next() {
			mruns[i] = mergepath.Run{Data: rd.keys, Width: s.rowWidth}
			mcodes[i] = rd.codes
		} else if rd.err != nil {
			return rd.err
		} else {
			mruns[i] = mergepath.Run{Width: s.rowWidth}
		}
	}

	// Tie-break lookups resolve against the resident block: references
	// store absolute run indexes, the reader knows its block's offset.
	var tie mergepath.CompareFunc
	if anyTieBreak {
		tie = s.comparator(func(runID, idx uint32) (*row.RowSet, int) {
			rd := readers[runID]
			return rd.payload, int(idx) - rd.blockStart
		})
	}
	var m *mergepath.Merger
	if useOVC {
		m = mergepath.NewMerger(mruns, ovcWidth, mcodes, tie)
	} else {
		cmp := tie
		if cmp == nil {
			kw := s.keyWidth
			cmp = func(a, b []byte) int { return compareBytes(a[:kw], b[:kw]) }
		}
		m = mergepath.NewMerger(mruns, 0, nil, cmp)
	}

	finalID := uint32(len(s.runs))
	out := s.getRowSet()
	out.Reserve(total)
	finalKeys := make([]byte, total*s.rowWidth)
	outPos := 0
	flushRows := s.opt.spillBlockRows()
	pendWhich := make([]uint32, 0, flushRows)
	pendIdxs := make([]uint32, 0, flushRows)
	srcs := make([]*row.RowSet, len(readers))
	flush := func() {
		if len(pendIdxs) == 0 {
			return
		}
		for i, rd := range readers {
			srcs[i] = rd.payload
		}
		out.AppendRowsGather(srcs, pendWhich, pendIdxs)
		pendWhich = pendWhich[:0]
		pendIdxs = pendIdxs[:0]
	}
	m.SetRefill(func(r int) (mergepath.Run, []uint32, bool) {
		// Pending gathers may reference the exhausted block; materialize
		// them before the reader overwrites it. (Only rows already output
		// can be pending, so everything they reference is still resident.)
		flush()
		rd := readers[r]
		if !rd.next() {
			return mergepath.Run{}, nil, false
		}
		return mergepath.Run{Data: rd.keys, Width: s.rowWidth}, rd.codes, true
	})

	rw := s.rowWidth
	for {
		run, pos, keyRow, ok := m.Next()
		if !ok {
			break
		}
		dst := finalKeys[outPos*rw : (outPos+1)*rw]
		copy(dst, keyRow)
		s.putRef(dst, finalID, uint32(outPos))
		pendWhich = append(pendWhich, uint32(run))
		pendIdxs = append(pendIdxs, uint32(pos))
		outPos++
		if len(pendIdxs) >= flushRows {
			flush()
		}
	}
	for _, rd := range readers {
		if rd.err != nil {
			return rd.err
		}
	}
	if outPos != total {
		return fmt.Errorf("core: external merge produced %d of %d rows", outPos, total)
	}
	flush()

	st := m.Stats()
	st.BytesMoved = uint64(len(finalKeys))
	s.mergeStats = st

	// Register the final run; all references now point at it, so Result
	// gathers sequentially like the in-memory path.
	final := &sortedRun{id: finalID, keys: finalKeys, payload: out, tieBreak: anyTieBreak}
	s.runs = append(s.runs, final)
	s.finalKeys = finalKeys
	s.residentAdd(int64(len(finalKeys)) + int64(out.MemSize()))
	return nil
}

// unspill reads the run back into memory (used by the cascaded ablation
// path) and removes its file. ow is the calling worker's trace lane.
func (r *sortedRun) unspill(s *Sorter, ow *obs.Worker) error {
	if r.spill == nil {
		return nil
	}
	rd, err := s.openRunReader(r, false, 0, ow)
	if err != nil {
		return err
	}
	keys := make([]byte, 0, rd.numRows*s.rowWidth)
	payload := s.getRowSet()
	payload.Reserve(rd.numRows)
	var idxs []uint32
	for rd.next() {
		keys = append(keys, rd.keys...)
		n := rd.payload.Len()
		if cap(idxs) < n {
			idxs = make([]uint32, n)
		}
		idxs = idxs[:n]
		for i := range idxs {
			idxs[i] = uint32(i)
		}
		payload.AppendRowsFrom(rd.payload, idxs)
	}
	if rd.err != nil {
		rd.close(false)
		s.putRowSet(payload)
		return rd.err
	}
	rd.close(true)
	r.keys = keys
	r.payload = payload
	s.residentAdd(int64(len(keys)) + int64(payload.MemSize()))
	return nil
}

// externalFinalizeCascade is the ablation baseline (the previous design):
// spilled runs merged pairwise with full unspill/re-spill of intermediates,
// so each row's spill I/O is multiplied by the cascade depth. Kept for the
// -exp merge ablation and as a reference implementation.
func (s *Sorter) externalFinalizeCascade() error {
	queue := make([]uint32, len(s.runs))
	for i := range s.runs {
		queue[i] = uint32(i)
	}
	if len(queue) == 0 {
		return nil
	}
	mw := s.rec.Worker("merge")
	msp := mw.Begin(obs.PhaseMerge)
	defer msp.End()
	for len(queue) > 1 {
		a, b := s.runs[queue[0]], s.runs[queue[1]]
		queue = queue[2:]
		merged, err := s.mergeRunPair(a, b, mw)
		if err != nil {
			return err
		}
		queue = append(queue, merged.id)
		if len(queue) > 1 {
			// More merging ahead: push the result out of memory again.
			if err := merged.spillTo(s, mw); err != nil {
				return err
			}
		}
	}
	final := s.runs[queue[0]]
	if final.spill != nil {
		if err := final.unspill(s, mw); err != nil {
			return err
		}
	}
	s.finalKeys = final.keys
	s.mergeStats.BytesMoved = uint64(len(final.keys))
	return nil
}

// mergeRunPair loads two runs, merges their keys and payloads into a new
// run (payload physically reordered, refs rewritten), registers it, and
// releases the inputs. ow is the calling worker's trace lane.
func (s *Sorter) mergeRunPair(a, b *sortedRun, ow *obs.Worker) (*sortedRun, error) {
	for _, r := range []*sortedRun{a, b} {
		if err := r.unspill(s, ow); err != nil {
			return nil, err
		}
	}

	var cmp mergepath.CompareFunc
	if a.tieBreak || b.tieBreak {
		cmp = s.comparator(func(runID, idx uint32) (*row.RowSet, int) {
			return s.runs[runID].payload, int(idx)
		})
	} else {
		kw := s.keyWidth
		cmp = func(x, y []byte) int { return compareBytes(x[:kw], y[:kw]) }
	}

	mergedKeys := make([]byte, len(a.keys)+len(b.keys))
	mergepath.ParallelMerge(mergedKeys,
		mergepath.Run{Data: a.keys, Width: s.rowWidth},
		mergepath.Run{Data: b.keys, Width: s.rowWidth},
		cmp, s.opt.threads())

	// Finalize already holds s.mu; run generation is over, so registering
	// the merged run needs no further locking.
	merged := &sortedRun{id: uint32(len(s.runs)), tieBreak: a.tieBreak || b.tieBreak}
	s.runs = append(s.runs, merged)

	// Reorder both payloads into the merged run with the batched permute:
	// decode every reference once, rewrite it to the merged run, then move
	// the rows (and compact the string heaps) with the typed kernels.
	n := len(mergedKeys) / s.rowWidth
	payloads := make([]*row.RowSet, len(s.runs))
	for i, r := range s.runs {
		payloads[i] = r.payload
	}
	which := make([]uint32, n)
	idxs := make([]uint32, n)
	for i := 0; i < n; i++ {
		keyRow := mergedKeys[i*s.rowWidth : (i+1)*s.rowWidth]
		which[i], idxs[i] = s.getRef(keyRow)
		s.putRef(keyRow, merged.id, uint32(i))
	}
	payload := s.getRowSet()
	payload.Reserve(n)
	payload.AppendRowsGather(payloads, which, idxs)
	merged.keys = mergedKeys
	merged.payload = payload
	s.residentAdd(int64(len(mergedKeys)) + int64(payload.MemSize()))

	// Release the inputs into the pools.
	s.residentAdd(-(int64(len(a.keys)) + int64(a.payload.MemSize()) +
		int64(len(b.keys)) + int64(b.payload.MemSize())))
	s.putKeyBuf(a.keys)
	s.putKeyBuf(b.keys)
	s.putRowSet(a.payload)
	s.putRowSet(b.payload)
	a.keys, a.payload = nil, nil
	b.keys, b.payload = nil, nil
	return merged, nil
}
