// Package core implements the paper's primary contribution: a relational
// sort operator for a vectorized interpreted engine, built from the
// techniques of Section VI and structured as DuckDB's sorting pipeline
// (Figure 11):
//
//	input chunks → per-thread sinks → normalized keys + payload row format
//	→ thread-local run generation (radix sort, or pdqsort when string
//	prefixes may tie) → single-pass k-way loser-tree merge with
//	offset-value coding, partitioned across threads with k-way Merge Path
//	→ columnar scan of the result
//
// Keys are compared as plain bytes (one dynamic bytes.Compare per
// comparison), so the interpreted engine pays no per-column interpretation
// or function-call overhead where it matters: inside the sort and the merge.
package core

import (
	"fmt"
	"runtime"
	"strings"

	"rowsort/internal/mem"
	"rowsort/internal/obs"
	"rowsort/internal/vector"
)

// SortColumn is one ORDER BY term of a sort specification.
type SortColumn struct {
	// Column indexes the sorted table's schema.
	Column int
	// Descending orders the column DESC.
	Descending bool
	// NullsLast places NULLs after all values (default: first).
	NullsLast bool
	// PrefixLen bounds the normalized-key prefix for Varchar columns;
	// 0 means normkey.DefaultStringPrefixLen.
	PrefixLen int
	// CaseInsensitive collates Varchar columns ASCII case-insensitively.
	// Per the paper, the collation is evaluated before the prefix is
	// encoded, so the normalized key already reflects it.
	CaseInsensitive bool
}

// MergeAlgo selects the merge-phase algorithm.
type MergeAlgo int

// The available merge algorithms.
const (
	// MergeLoserTree is the default: a single-pass k-way tournament (loser
	// tree) over all runs with offset-value coding, so most comparisons
	// resolve on cached (offset, value) integers instead of full-width key
	// memcmp. In memory the output is partitioned across threads with k-way
	// Merge Path; with SpillDir set, spilled runs are streamed through
	// fixed-size blocks in one read pass.
	MergeLoserTree MergeAlgo = iota
	// MergeLoserTreeNoOVC is the loser tree with offset-value coding
	// disabled: every match compares key bytes (the ablation arm isolating
	// the coding from the tree shape).
	MergeLoserTreeNoOVC
	// MergeCascade is the cascaded pairwise 2-way merge (the previous
	// default), kept as the ablation baseline. With SpillDir set it merges
	// spilled runs pairwise with full unspill/re-spill of intermediates.
	MergeCascade
)

// KeyComp is a bitmask enabling compressed normalized-key encodings. The
// zero value disables compression (the seed behavior). Compression is
// sample-driven: the materialized-table entry points (SortTable, or an
// explicit Sorter.PlanCompression call) inspect a spread of input chunks
// before ingestion and shrink the normalized key wherever the sample says a
// cheaper order-preserving encoding discriminates; lossy encodings are
// backed by the sorter's semantic tie-break, so the sorted output is
// byte-identical to the uncompressed sort.
type KeyComp uint8

// The key-compression features.
const (
	// KeyCompDict enables sampled order-preserving dictionary encoding for
	// low-cardinality varchar keys (out-of-sample values escape to gap
	// codes resolved by the tie-break).
	KeyCompDict KeyComp = 1 << iota
	// KeyCompTrunc enables adaptive prefix truncation and shared-prefix
	// elision: the key keeps only the sampled discriminating prefix of its
	// order-preserving encoding.
	KeyCompTrunc
	// KeyCompRLE enables duplicate-run group sorting: runs whose adjacent
	// byte-equal key groups average two or more rows sort one representative
	// per group and expand, moving each distinct key through the radix sort
	// once. Output stays byte-identical (the radix sort is stable).
	KeyCompRLE

	// KeyCompAll enables every key-compression feature.
	KeyCompAll = KeyCompDict | KeyCompTrunc | KeyCompRLE
)

// Options tune the sorter; the zero value is a good default.
type Options struct {
	// Threads bounds the sorter's parallelism; 0 means GOMAXPROCS.
	Threads int
	// RunSize is the number of rows per thread-local sorted run; 0 means
	// DefaultRunSize. Smaller runs mean more merging; larger runs mean more
	// run-generation work per thread (Section II's comparison-count model).
	RunSize int
	// ForcePdqsort uses pdqsort for run generation even when radix sort is
	// applicable (for the algorithm-choice ablation).
	ForcePdqsort bool
	// Adaptive replaces the paper's fixed "radix unless strings" rule with
	// the Future Work heuristic: per run, choose pdqsort when the input
	// samples as nearly sorted or the effective key width is large relative
	// to log2(n), else radix sort. Ignored when ForcePdqsort is set or a
	// tie-break forces pdqsort anyway.
	Adaptive bool
	// SpillDir, when non-empty, writes sorted runs to files in this
	// directory after run generation and streams them back through
	// fixed-size blocks for a single-pass k-way merge — the
	// unified-row-format offloading sketched in the paper's future work.
	// Merge memory stays bounded at k runs × SpillBlockRows (plus the final
	// materialization), and each spilled byte is read exactly once.
	//
	// Without a memory budget (see MemoryLimit/Broker) every run spills as
	// it is cut, preserving the original eager behavior. With a budget,
	// spilling is pressure-driven instead — runs go to disk only when the
	// budget is exceeded — and SpillDir merely names where; when it is
	// empty, a private directory under os.TempDir() is created on first
	// spill and removed by Close.
	SpillDir string
	// Merge selects the merge-phase algorithm; the zero value is the
	// offset-value-coded loser tree. The other values are ablation arms.
	Merge MergeAlgo
	// SpillBlockRows is the number of rows per spill-file block (the unit
	// of streaming-merge I/O and resident memory per run); 0 means
	// DefaultSpillBlockRows, or — under a memory budget — a block size
	// planned from the remaining reservation (mergepath.PlanBlockRows).
	SpillBlockRows int
	// ReadAhead is the number of spill blocks each merge reader prefetches
	// on a background goroutine while the loser tree consumes the current
	// one: 0 means DefaultReadAhead (double buffering), a negative value
	// disables read-ahead (the synchronous ablation arm). Prefetched
	// blocks are charged to the sorter's broker, so under a budget the
	// merge planner reserves (1 + ReadAhead) blocks per run.
	ReadAhead int
	// ExtMergeThreads bounds the partitioned parallel external merge: the
	// final merge of spilled runs fans out across this many workers, each
	// merging a disjoint key range located through the spill files' block
	// index (k-way split over run key ranges). 0 means Threads; 1 forces
	// the sequential streaming merge (the ablation arm). The budgeted
	// streaming path (deferred merge inside Rows) is always sequential —
	// it produces one chunk stream — so this only governs eager merges.
	ExtMergeThreads int
	// MemoryLimit, when positive, bounds this sorter's resident bytes:
	// sink buffers, sorted runs, pooled buffers, merge blocks. Crossing
	// the limit does not fail the sort — it flips it into degraded mode:
	// pending runs are cut early, resident runs spill to disk
	// (SpillDir or a temp directory), and the final merge plans its block
	// size and fan-in from the remaining budget. Peak usage can
	// transiently exceed the limit by bounded slack (one run being
	// reordered, the merge's staging chunk; see DESIGN.md "Memory
	// governance").
	MemoryLimit int64
	// Broker, when non-nil, shares a memory budget across sorters: the
	// sorter carves a child broker (further bounded by MemoryLimit, if
	// set) from it, so N concurrent sorts degrade to disk together
	// instead of OOMing. When nil, a private broker is created; peak
	// accounting (Stats().PeakResidentRunBytes) works either way.
	Broker *mem.Broker
	// KeyComp enables compressed normalized-key encodings (see the KeyComp
	// constants); 0 keeps the full encoding. Dictionary and truncation
	// require an ingest-time sample: SortTable samples automatically, and
	// streaming callers opt in with Sorter.PlanCompression before the first
	// Append. KeyCompRLE needs no sample and applies to any run whose key
	// bytes are decisive.
	KeyComp KeyComp
	// KeyCompSampleRows bounds the rows SortTable samples for the
	// compression plan; 0 means DefaultKeyCompSampleRows.
	KeyCompSampleRows int
	// Telemetry, when non-nil, records phase spans (ingest, run sort, spill
	// I/O, merge, gather) and per-thread timelines into the recorder,
	// exportable as Chrome trace_event JSON and Prometheus text; it also
	// labels worker goroutines for pprof. SortStats counters and stage
	// durations are collected either way; nil only disables span recording
	// (the zero-allocation fast path).
	Telemetry *obs.Recorder
	// Registry, when non-nil, registers the sort as a live run in the
	// observability plane: per-phase progress counters published from the
	// hot paths, memory-broker gauges, and — at Close — the frozen final
	// SortStats, all served by the registry's HTTP handler
	// (/debug/rowsort/). Progress counters are always maintained (plain
	// atomic adds); nil only means nobody is watching.
	Registry *obs.Registry
	// RunLabel names the run in the registry ("csvsort", an experiment
	// id); empty means "sort".
	RunLabel string
}

// DefaultRunSize is the default thread-local run size in rows.
const DefaultRunSize = 1 << 17

// DefaultSpillBlockRows is the default spill block granularity.
const DefaultSpillBlockRows = 1 << 12

// DefaultReadAhead is the default spill read-ahead depth: one block
// decoding ahead of the one the merge is consuming (double buffering).
const DefaultReadAhead = 1

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) runSize() int {
	if o.RunSize > 0 {
		return o.RunSize
	}
	return DefaultRunSize
}

func (o Options) spillBlockRows() int {
	if o.SpillBlockRows > 0 {
		return o.SpillBlockRows
	}
	return DefaultSpillBlockRows
}

// readAhead returns the prefetch depth per spill reader; 0 means disabled.
func (o Options) readAhead() int {
	if o.ReadAhead < 0 {
		return 0
	}
	if o.ReadAhead == 0 {
		return DefaultReadAhead
	}
	return o.ReadAhead
}

// mergeBuffers is the resident blocks the merge plans per run: the one
// being consumed plus any read-ahead.
func (o Options) mergeBuffers() int { return 1 + o.readAhead() }

func (o Options) extMergeThreads() int {
	if o.ExtMergeThreads > 0 {
		return o.ExtMergeThreads
	}
	return o.threads()
}

// limited reports whether a memory budget governs this sort — its own
// MemoryLimit, a shared Broker, or both.
func (o Options) limited() bool { return o.MemoryLimit > 0 || o.Broker != nil }

// Fingerprint renders the options as a compact one-line summary — the run's
// configuration signature in the observability registry, so an operator can
// tell two concurrent runs' setups apart at a glance.
func (o Options) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "threads=%d runsize=%d", o.threads(), o.runSize())
	switch o.Merge {
	case MergeLoserTreeNoOVC:
		b.WriteString(" merge=loser-noovc")
	case MergeCascade:
		b.WriteString(" merge=cascade")
	default:
		b.WriteString(" merge=loser")
	}
	if o.SpillDir != "" {
		b.WriteString(" spill=eager")
	}
	if o.limited() {
		fmt.Fprintf(&b, " budget=%d", o.MemoryLimit)
	}
	if o.SpillDir != "" || o.limited() {
		fmt.Fprintf(&b, " blockrows=%d readahead=%d extthreads=%d",
			o.spillBlockRows(), o.readAhead(), o.extMergeThreads())
	}
	if o.KeyComp != 0 {
		b.WriteString(" keycomp=")
		sep := ""
		for _, f := range []struct {
			bit  KeyComp
			name string
		}{{KeyCompDict, "dict"}, {KeyCompTrunc, "trunc"}, {KeyCompRLE, "rle"}} {
			if o.KeyComp&f.bit != 0 {
				b.WriteString(sep)
				b.WriteString(f.name)
				sep = "+"
			}
		}
	}
	if o.ForcePdqsort {
		b.WriteString(" pdqsort=forced")
	}
	if o.Adaptive {
		b.WriteString(" adaptive")
	}
	return b.String()
}

// Validate rejects malformed options with a descriptive error. NewSorter
// calls it up front, so a negative knob can never silently fall through
// to a default deep inside NewSink or Finalize.
func (o Options) Validate() error {
	if o.Threads < 0 {
		return fmt.Errorf("core: Options.Threads is negative (%d); use 0 for GOMAXPROCS", o.Threads)
	}
	if o.RunSize < 0 {
		return fmt.Errorf("core: Options.RunSize is negative (%d); use 0 for the default (%d)", o.RunSize, DefaultRunSize)
	}
	if o.SpillBlockRows < 0 {
		return fmt.Errorf("core: Options.SpillBlockRows is negative (%d); use 0 for the default (%d)", o.SpillBlockRows, DefaultSpillBlockRows)
	}
	if o.MemoryLimit < 0 {
		return fmt.Errorf("core: Options.MemoryLimit is negative (%d); use 0 for unlimited", o.MemoryLimit)
	}
	if o.ExtMergeThreads < 0 {
		return fmt.Errorf("core: Options.ExtMergeThreads is negative (%d); use 0 for Threads or 1 for the sequential merge", o.ExtMergeThreads)
	}
	if o.KeyComp&^KeyCompAll != 0 {
		return fmt.Errorf("core: Options.KeyComp has unknown bits %#x", uint8(o.KeyComp&^KeyCompAll))
	}
	if o.KeyCompSampleRows < 0 {
		return fmt.Errorf("core: Options.KeyCompSampleRows is negative (%d); use 0 for the default (%d)", o.KeyCompSampleRows, DefaultKeyCompSampleRows)
	}
	return nil
}

func validateKeys(schema vector.Schema, keys []SortColumn) error {
	if len(keys) == 0 {
		return fmt.Errorf("core: sort needs at least one key column")
	}
	for i, k := range keys {
		if k.Column < 0 || k.Column >= len(schema) {
			return fmt.Errorf("core: key %d column index %d out of range (schema has %d columns)",
				i, k.Column, len(schema))
		}
		if !schema[k.Column].Type.IsValid() {
			return fmt.Errorf("core: key %d column %q has invalid type", i, schema[k.Column].Name)
		}
	}
	return nil
}
