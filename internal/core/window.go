package core

import (
	"fmt"

	"rowsort/internal/normkey"
	"rowsort/internal/vector"
)

// The window operator is, like sort, a blocking operator (the paper's §IX):
// it materializes its input, orders it by (PARTITION BY, ORDER BY) with the
// relational sorter — reusing the row format and normalized keys — and then
// computes ranking functions in one scan over the sorted rows.

// WindowFunc is a supported window function.
type WindowFunc uint8

// The supported ranking functions.
const (
	// RowNumber numbers rows 1..n within each partition.
	RowNumber WindowFunc = iota
	// Rank gives peers (rows tied on the ORDER BY keys) the same rank,
	// with gaps after peer groups.
	Rank
	// DenseRank gives peers the same rank without gaps.
	DenseRank
)

// String returns the SQL name of the function.
func (f WindowFunc) String() string {
	switch f {
	case RowNumber:
		return "row_number"
	case Rank:
		return "rank"
	case DenseRank:
		return "dense_rank"
	default:
		return fmt.Sprintf("WindowFunc(%d)", uint8(f))
	}
}

// WindowSpec describes OVER (PARTITION BY ... ORDER BY ...).
type WindowSpec struct {
	// PartitionBy lists partition column indices (may be empty).
	PartitionBy []int
	// OrderBy lists the window's sort keys (may be empty, in which case all
	// partition rows are peers).
	OrderBy []SortColumn
}

// Window evaluates the given ranking functions over t and returns the input
// columns extended with one BIGINT column per function (named after it),
// with rows ordered by (PARTITION BY, ORDER BY) — the order the window sort
// produces.
func Window(t *vector.Table, spec WindowSpec, funcs []WindowFunc, opt Options) (*vector.Table, error) {
	if len(funcs) == 0 {
		return nil, fmt.Errorf("core: window needs at least one function")
	}
	for _, f := range funcs {
		if f > DenseRank {
			return nil, fmt.Errorf("core: unknown window function %d", uint8(f))
		}
	}
	for _, c := range spec.PartitionBy {
		if c < 0 || c >= len(t.Schema) {
			return nil, fmt.Errorf("core: partition column %d out of range", c)
		}
	}

	// Sort by partition columns first, then the window order.
	sortKeys := make([]SortColumn, 0, len(spec.PartitionBy)+len(spec.OrderBy))
	for _, c := range spec.PartitionBy {
		sortKeys = append(sortKeys, SortColumn{Column: c})
	}
	sortKeys = append(sortKeys, spec.OrderBy...)
	sorted := t
	if len(sortKeys) > 0 {
		var err error
		sorted, err = SortTable(t, sortKeys, opt)
		if err != nil {
			return nil, err
		}
	}

	cols := materializeColumns(sorted)
	partKeys := make([]normkey.SortKey, len(spec.PartitionBy))
	partCols := make([]*vector.Vector, len(spec.PartitionBy))
	for i, c := range spec.PartitionBy {
		partKeys[i] = normkey.SortKey{Type: t.Schema[c].Type}
		partCols[i] = cols[c]
	}
	orderKeys := make([]normkey.SortKey, len(spec.OrderBy))
	orderCols := make([]*vector.Vector, len(spec.OrderBy))
	for i, k := range spec.OrderBy {
		orderKeys[i] = toNormKey(t.Schema, k)
		orderCols[i] = cols[k.Column]
	}

	n := sorted.NumRows()
	results := make([][]int64, len(funcs))
	for i := range results {
		results[i] = make([]int64, n)
	}

	var rowNum, rank, dense int64
	for r := 0; r < n; r++ {
		newPartition := r == 0 ||
			(len(partKeys) > 0 && normkey.CompareRows(partKeys, partCols, r-1, r) != 0)
		if newPartition {
			rowNum, rank, dense = 0, 0, 0
		}
		rowNum++
		isPeer := !newPartition && r > 0 &&
			(len(orderKeys) == 0 || normkey.CompareRows(orderKeys, orderCols, r-1, r) == 0)
		if !isPeer {
			rank = rowNum
			dense++
		}
		for i, f := range funcs {
			switch f {
			case RowNumber:
				results[i][r] = rowNum
			case Rank:
				results[i][r] = rank
			case DenseRank:
				results[i][r] = dense
			}
		}
	}

	// Assemble the output: sorted input columns plus the function columns.
	outSchema := append(vector.Schema{}, t.Schema...)
	for _, f := range funcs {
		outSchema = append(outSchema, vector.Column{Name: f.String(), Type: vector.Int64})
	}
	out := vector.NewTable(outSchema)
	for start := 0; start < n; start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, n-start)
		chunk := vector.NewChunk(outSchema, count)
		for c := range t.Schema {
			for r := start; r < start+count; r++ {
				vector.AppendValue(chunk.Vectors[c], cols[c], r)
			}
		}
		for i := range funcs {
			for r := start; r < start+count; r++ {
				chunk.Vectors[len(t.Schema)+i].AppendInt64(results[i][r])
			}
		}
		if err := out.AppendChunk(chunk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// toNormKey converts a SortColumn to the reference key descriptor.
func toNormKey(schema vector.Schema, k SortColumn) normkey.SortKey {
	order := normkey.Ascending
	if k.Descending {
		order = normkey.Descending
	}
	nulls := normkey.NullsFirst
	if k.NullsLast {
		nulls = normkey.NullsLast
	}
	coll := normkey.CollationBinary
	if k.CaseInsensitive {
		coll = normkey.CollationNoCase
	}
	return normkey.SortKey{
		Column: k.Column, Type: schema[k.Column].Type,
		Order: order, Nulls: nulls, PrefixLen: k.PrefixLen, Collation: coll,
	}
}
