package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"rowsort/internal/obs"
	"rowsort/internal/workload"
)

// stageIndex orders the lifecycle stage names a snapshot can report.
var stageIndex = map[string]int{
	"pending": 0, "run-generation": 1, "merge": 2, "gather": 3, "done": 4,
}

// getSnapshot polls one run's JSON endpoint.
func getSnapshot(t *testing.T, base, id string) obs.RunSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/debug/rowsort/run?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run endpoint status %d: %s", resp.StatusCode, body)
	}
	var snap obs.RunSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot unmarshal: %v\n%s", err, body)
	}
	return snap
}

// monotonicCounters returns a descriptive error when next regressed any
// counter relative to prev.
func monotonicCounters(prev, next obs.ProgressCounters) error {
	type pair struct {
		name     string
		old, new int64
	}
	for _, c := range []pair{
		{"rows_ingested", prev.RowsIngested, next.RowsIngested},
		{"rows_sorted", prev.RowsSorted, next.RowsSorted},
		{"runs_generated", prev.RunsGenerated, next.RunsGenerated},
		{"spill_bytes_written", prev.SpillBytesWritten, next.SpillBytesWritten},
		{"spill_bytes_read", prev.SpillBytesRead, next.SpillBytesRead},
		{"merge_rows_planned", prev.MergeRowsPlanned, next.MergeRowsPlanned},
		{"rows_merged", prev.RowsMerged, next.RowsMerged},
		{"merge_passes", prev.MergePasses, next.MergePasses},
		{"rows_gathered", prev.RowsGathered, next.RowsGathered},
		{"prefetched_blocks", prev.PrefetchedBlocks, next.PrefetchedBlocks},
		{"prefetch_hits", prev.PrefetchHits, next.PrefetchHits},
		{"pressure_spills", prev.PressureSpills, next.PressureSpills},
	} {
		if c.new < c.old {
			return fmt.Errorf("%s went backwards: %d -> %d", c.name, c.old, c.new)
		}
	}
	if stageIndex[next.Stage] < stageIndex[prev.Stage] {
		return fmt.Errorf("stage went backwards: %s -> %s", prev.Stage, next.Stage)
	}
	return nil
}

// TestLiveRunEndpointTracksForcedSpillSort is the observability plane's
// acceptance test: a budgeted (forced-spill, multi-pass) sort is polled
// mid-flight over HTTP; every poll's counters must be monotonically
// non-decreasing, and the final snapshot must agree exactly with the
// sorter's completed SortStats. Run under -race this also pins down that
// the live snapshot path only touches atomics.
func TestLiveRunEndpointTracksForcedSpillSort(t *testing.T) {
	const rows = 60_000
	tbl := workload.CatalogSales(rows, 10, 7)
	keys := []SortColumn{{Column: 0}, {Column: 1}, {Column: 2}}

	reg := obs.NewRegistry(0)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	s, err := NewSorter(tbl.Schema, keys, Options{
		Threads:     2,
		RunSize:     600,
		MemoryLimit: 64 << 10, // far below fan-in × healthy blocks: forces pressure spills and merge passes
		Registry:    reg,
		RunLabel:    "acceptance",
		Telemetry:   obs.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := s.obsRun.ID()
	if id == "" {
		t.Fatal("sorter did not register with the registry")
	}

	done := make(chan error, 1)
	var sorted int
	go func() {
		done <- func() error {
			sink := s.NewSink()
			for _, c := range tbl.Chunks {
				if err := sink.Append(c); err != nil {
					return err
				}
			}
			if err := sink.Close(); err != nil {
				return err
			}
			if err := s.Finalize(); err != nil {
				return err
			}
			out, err := s.Result()
			if err != nil {
				return err
			}
			sorted = out.NumRows()
			return s.Close()
		}()
	}()

	// Poll mid-flight until the sort completes; every observation must be
	// consistent with the previous one.
	prev := getSnapshot(t, srv.URL, id)
	polls := 1
	for running := true; running; {
		select {
		case err = <-done:
			running = false
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Millisecond):
		}
		snap := getSnapshot(t, srv.URL, id)
		if merr := monotonicCounters(prev.Counters, snap.Counters); merr != nil {
			t.Fatalf("poll %d: %v", polls, merr)
		}
		if snap.Fraction < 0 || snap.Fraction > 1 {
			t.Fatalf("poll %d: fraction %v out of range", polls, snap.Fraction)
		}
		prev, polls = snap, polls+1
	}
	if sorted != rows {
		t.Fatalf("sorted %d rows, want %d", sorted, rows)
	}

	// The completed snapshot agrees with the sorter's own stats, field by
	// field.
	final := getSnapshot(t, srv.URL, id)
	if !final.Done || final.Stage != "done" || final.Fraction != 1 || final.ETA != 0 {
		t.Fatalf("final snapshot not settled: %+v", final)
	}
	st := s.Stats()
	if st.MergePasses == 0 || st.PressureSpills == 0 {
		t.Fatalf("budget forced no multi-pass/pressure work (passes=%d, pressure spills=%d); the test lost its teeth",
			st.MergePasses, st.PressureSpills)
	}
	c := final.Counters
	for _, chk := range []struct {
		name      string
		got, want int64
	}{
		{"rows_ingested", c.RowsIngested, st.RowsIngested},
		{"rows_sorted", c.RowsSorted, st.RowsIngested}, // every ingested row leaves run generation sorted
		{"runs_generated", c.RunsGenerated, st.RunsGenerated},
		{"spill_bytes_written", c.SpillBytesWritten, st.SpillBytesWritten},
		{"spill_bytes_read", c.SpillBytesRead, st.SpillBytesRead},
		{"merge_passes", c.MergePasses, st.MergePasses},
		{"pressure_spills", c.PressureSpills, st.PressureSpills},
		{"prefetched_blocks", c.PrefetchedBlocks, st.PrefetchedBlocks},
		{"prefetch_hits", c.PrefetchHits, st.PrefetchHits},
		{"rows_gathered", c.RowsGathered, int64(rows)},
	} {
		if chk.got != chk.want {
			t.Errorf("final %s = %d, want %d (SortStats)", chk.name, chk.got, chk.want)
		}
	}

	// The frozen Final record is the authoritative SortStats, captured once
	// at Close: it must round-trip through JSON into an equal struct.
	finalJSON, err := json.Marshal(final.Final)
	if err != nil {
		t.Fatal(err)
	}
	var frozen SortStats
	if err := json.Unmarshal(finalJSON, &frozen); err != nil {
		t.Fatalf("Final is not a SortStats: %v", err)
	}
	if !reflect.DeepEqual(frozen, st) {
		t.Errorf("frozen final stats diverge from Stats():\nfrozen: %+v\nstats:  %+v", frozen, st)
	}
}

// TestStageDurationsSumWithRegistryEnabled re-checks the stage-duration
// accounting invariant of stats_test.go with the full observability plane
// attached: publishing progress and registering the run must not perturb
// how the wall time is attributed.
func TestStageDurationsSumWithRegistryEnabled(t *testing.T) {
	tbl := workload.CatalogSales(20_000, 10, 7)
	keys := []SortColumn{{Column: 0}, {Column: 1}, {Column: 2}}
	reg := obs.NewRegistry(0)
	_, st, err := SortTableStats(tbl, keys, Options{
		Threads:   2,
		RunSize:   2_500,
		SpillDir:  t.TempDir(),
		Telemetry: obs.NewRecorder(),
		Registry:  reg,
		RunLabel:  "durations",
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.DurRunGen + st.DurMerge + st.DurGather
	if st.DurTotal <= 0 || sum <= 0 {
		t.Fatalf("durations not recorded: stages=%v total=%v", sum, st.DurTotal)
	}
	diff := st.DurTotal - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > st.DurTotal/10+5*time.Millisecond {
		t.Errorf("with registry enabled, stage durations %v vs total %v: off by %v", sum, st.DurTotal, diff)
	}
	snaps := reg.Snapshots()
	if len(snaps) != 1 || !snaps[0].Done {
		t.Fatalf("registry did not record the completed run: %+v", snaps)
	}
}

// TestDisabledObservabilityHooksAllocateNothing pins the disabled fast
// path: with no registry, the hooks the hot paths call — progress counter
// adds, stage advances, nil-registry registration and the nil handle's
// Done — must not allocate.
func TestDisabledObservabilityHooksAllocateNothing(t *testing.T) {
	tbl := workload.CatalogSales(16, 10, 7)
	s, err := NewSorter(tbl.Schema, []SortColumn{{Column: 0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var reg *obs.Registry
	allocs := testing.AllocsPerRun(1000, func() {
		h := reg.Register(obs.RunOptions{Label: "off"})
		h.Done()
		s.prog.RowsIngested.Add(1)
		s.prog.SpillBytesWritten.Add(64)
		s.prog.AdvanceTo(obs.StageRunGen)
		_ = s.prog.Stage()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability hooks allocate %v per run, want 0", allocs)
	}
}
