package core

import (
	"fmt"

	"rowsort/internal/mem"
	"rowsort/internal/obs"
	"rowsort/internal/row"
	"rowsort/internal/vector"
)

// RowIter streams the sorted result as columnar chunks of up to
// vector.DefaultVectorSize rows, gathered on demand. For in-memory and
// eagerly merged sorts it walks the merged key rows and resolves payload
// references chunk by chunk; for budgeted external sorts (where Finalize
// deferred the final merge) each Next advances the streaming k-way merge
// itself, so the whole output is never resident at once — the consumer's
// chunk plus one block per run is.
//
// A RowIter is not safe for concurrent use. Iterators over a deferred
// streaming merge are single-use: the merge consumes its spill files as it
// reads them. Close releases the iterator's resources; it is required when
// the iterator is abandoned before exhaustion and harmless otherwise.
type RowIter struct {
	s   *Sorter
	gw  *obs.Worker
	err error

	// Materialized mode: chunks are gathered from the merged key rows.
	payloads []*row.RowSet
	which    []uint32 // reference scratch, reused per chunk
	idxs     []uint32

	// Streaming mode: the final merge runs inside the iterator.
	em      *extMerge
	res     *mem.Reservation // staging + block bytes for the merge's lifetime
	staging *row.RowSet

	pos      int
	n        int
	started  int64 // sinceEpoch at creation, for the gather stage duration
	finished bool
	closed   bool
}

// Rows returns a chunked iterator over the sorted result; valid after
// Finalize. Result is a thin wrapper that drains it into a table —
// operators that consume the sort incrementally (LIMIT, streaming
// exchange) should use Rows directly and Close early.
func (s *Sorter) Rows() (*RowIter, error) {
	if !s.finalized {
		return nil, fmt.Errorf("core: Rows before Finalize")
	}
	s.prog.AdvanceTo(obs.StageGather)
	it := &RowIter{s: s, gw: s.rec.Worker("gather"), started: s.sinceEpoch()}
	if !s.streamMerge {
		it.n = s.NumRows()
		it.payloads = make([]*row.RowSet, len(s.runs))
		for i, r := range s.runs {
			it.payloads[i] = r.payload
		}
		it.which = make([]uint32, vector.DefaultVectorSize)
		it.idxs = make([]uint32, vector.DefaultVectorSize)
		s.gatherBytes.Add(int64(it.n) * int64(s.layout.Width()))
		return it, nil
	}

	s.mu.Lock()
	if s.streamUsed {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: streaming result already consumed (a budgeted external merge is single-pass; sort again to iterate again)")
	}
	s.streamUsed = true
	s.mu.Unlock()
	it.n = s.streamTotal
	it.res = s.broker.Reserve("stream-merge", 0)
	em, err := s.openExtMerge(s.streamActive, it.gw, it.res)
	if err != nil {
		it.res.Release()
		return nil, err
	}
	it.em = em
	it.staging = s.getRowSet()
	em.dst = it.staging
	s.gatherBytes.Add(int64(it.n) * int64(s.layout.Width()))
	return it, nil
}

// Next returns the next chunk of sorted rows, or (nil, nil) when the
// result is exhausted. The returned chunk owns its vectors; it stays valid
// after further Next and Close calls.
func (it *RowIter) Next() (*vector.Chunk, error) {
	if it.err != nil || it.closed {
		return nil, it.err
	}
	if it.pos >= it.n {
		it.finish()
		return nil, nil
	}
	count := min(vector.DefaultVectorSize, it.n-it.pos)
	sp := it.gw.Begin(obs.PhaseGather)
	defer sp.End()

	if it.em == nil {
		chunk := it.s.gatherChunk(it.payloads, it.which, it.idxs, it.pos, count)
		it.pos += count
		if it.pos >= it.n {
			it.finish()
		}
		return chunk, nil
	}

	// Streaming: pull count rows through the loser tree into the staging
	// row set, then gather them out as one columnar chunk.
	it.staging.Reset()
	got := 0
	for got < count {
		if _, ok := it.em.next(); !ok {
			break
		}
		got++
	}
	if got < count {
		err := it.em.readerErr()
		if err == nil {
			err = fmt.Errorf("core: streaming merge produced %d of %d rows", it.pos+got, it.n)
		}
		it.fail(err)
		return nil, it.err
	}
	it.em.flushPend()
	chunk := &vector.Chunk{Vectors: it.staging.GatherChunk(0, got)}
	it.s.prog.RowsGathered.Add(int64(got))
	it.pos += got
	if it.pos >= it.n {
		it.finish()
	}
	return chunk, nil
}

// finish tears down a fully drained iterator: streaming state folds its
// merge counters into the sorter's stats, consumed spill files are removed
// and the merge's memory goes back to the budget.
func (it *RowIter) finish() {
	if it.finished {
		return
	}
	it.finished = true
	s := it.s
	if it.em != nil {
		st := it.em.m.Stats()
		st.BytesMoved = uint64(it.pos * s.rowWidth)
		s.mu.Lock()
		s.mergeStats.Add(st)
		s.mu.Unlock()
		it.em.close(true)
		for _, id := range it.em.active {
			s.releaseRun(s.runs[id])
		}
		it.res.Release()
		s.putRowSet(it.staging)
		it.staging = nil
	}
	end := s.sinceEpoch()
	s.durGather.Add(end - it.started)
	s.tResultEnd.Store(end + 1)
}

// fail records the error and releases resources without consuming files.
func (it *RowIter) fail(err error) {
	it.err = err
	it.abandon()
}

// abandon releases an unfinished iterator's resources. Spill files the
// streaming merge did not finish are left tracked for Sorter.Close.
func (it *RowIter) abandon() {
	if it.finished {
		return
	}
	it.finished = true
	s := it.s
	if it.em != nil {
		it.em.close(false)
		it.res.Release()
		s.putRowSet(it.staging)
		it.staging = nil
	}
	end := s.sinceEpoch()
	s.durGather.Add(end - it.started)
	s.tResultEnd.Store(end + 1)
}

// Close releases the iterator. Required when abandoning it before
// exhaustion; a no-op (returning the first error, if any) after full
// drain. Closing does not touch chunks already returned.
func (it *RowIter) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.abandon()
	return it.err
}

// resultStreamed materializes the deferred streaming merge into a table —
// the wrapper Result uses when Finalize planned a budgeted external merge.
// Note the materialized table itself is the documented budget slack: the
// caller asked for everything at once.
func (s *Sorter) resultStreamed() (*vector.Table, error) {
	it, err := s.Rows()
	if err != nil {
		return nil, err
	}
	out := vector.NewTable(s.schema)
	for {
		chunk, err := it.Next()
		if err != nil || chunk == nil {
			break // Close reports the iterator's first error
		}
		out.Chunks = append(out.Chunks, chunk)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
