package vector

import "fmt"

// Chunk is a horizontal slice of a table: one vector per column, all with
// the same length (at most DefaultVectorSize in engine pipelines).
type Chunk struct {
	Vectors []*Vector
}

// NewChunk returns an empty chunk with one vector per schema column.
func NewChunk(schema Schema, capacity int) *Chunk {
	c := &Chunk{Vectors: make([]*Vector, len(schema))}
	for i, col := range schema {
		c.Vectors[i] = New(col.Type, capacity)
	}
	return c
}

// Len returns the number of rows in the chunk.
func (c *Chunk) Len() int {
	if len(c.Vectors) == 0 {
		return 0
	}
	return c.Vectors[0].Len()
}

// NumColumns returns the number of columns.
func (c *Chunk) NumColumns() int { return len(c.Vectors) }

// Verify checks that all vectors have the same length.
func (c *Chunk) Verify() error {
	if len(c.Vectors) == 0 {
		return nil
	}
	n := c.Vectors[0].Len()
	for i, v := range c.Vectors {
		if v.Len() != n {
			return fmt.Errorf("chunk column %d has %d rows, want %d", i, v.Len(), n)
		}
	}
	return nil
}

// Table is a fully materialized in-memory table: a schema plus its data
// split into chunks.
type Table struct {
	Schema Schema
	Chunks []*Chunk
}

// NewTable returns an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{Schema: schema}
}

// NumRows returns the total number of rows across all chunks.
func (t *Table) NumRows() int {
	n := 0
	for _, c := range t.Chunks {
		n += c.Len()
	}
	return n
}

// AppendChunk adds a chunk to the table. The chunk must match the schema.
func (t *Table) AppendChunk(c *Chunk) error {
	if len(c.Vectors) != len(t.Schema) {
		return fmt.Errorf("chunk has %d columns, schema has %d", len(c.Vectors), len(t.Schema))
	}
	for i, v := range c.Vectors {
		if v.Type() != t.Schema[i].Type {
			return fmt.Errorf("chunk column %d is %v, schema wants %v", i, v.Type(), t.Schema[i].Type)
		}
	}
	if err := c.Verify(); err != nil {
		return err
	}
	t.Chunks = append(t.Chunks, c)
	return nil
}

// Column gathers the values of column idx across all chunks as one vector.
// It copies data and is intended for tests and result checking.
func (t *Table) Column(idx int) *Vector {
	out := New(t.Schema[idx].Type, t.NumRows())
	for _, c := range t.Chunks {
		v := c.Vectors[idx]
		for i := 0; i < v.Len(); i++ {
			appendValue(out, v, i)
		}
	}
	return out
}

// appendValue appends row i of src to dst; both must share a type.
func appendValue(dst, src *Vector, i int) {
	if !src.Valid(i) {
		dst.AppendNull()
		return
	}
	switch src.Type() {
	case Bool:
		dst.AppendBool(src.b[i])
	case Int8:
		dst.AppendInt8(src.i8[i])
	case Int16:
		dst.AppendInt16(src.i16[i])
	case Int32:
		dst.AppendInt32(src.i32[i])
	case Int64:
		dst.AppendInt64(src.i64[i])
	case Uint8:
		dst.AppendUint8(src.u8[i])
	case Uint16:
		dst.AppendUint16(src.u16[i])
	case Uint32:
		dst.AppendUint32(src.u32[i])
	case Uint64:
		dst.AppendUint64(src.u64[i])
	case Float32:
		dst.AppendFloat32(src.f32[i])
	case Float64:
		dst.AppendFloat64(src.f64[i])
	case Varchar:
		dst.AppendString(src.str[i])
	}
}

// AppendValue appends row i of src to dst; both must share a type. It is a
// convenience for building expected results in tests and system models.
func AppendValue(dst, src *Vector, i int) { appendValue(dst, src, i) }

// TableFromColumns builds a single-chunk table from whole-column vectors.
// All vectors must have the same length.
func TableFromColumns(schema Schema, cols ...*Vector) (*Table, error) {
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("got %d columns, schema has %d", len(cols), len(schema))
	}
	t := NewTable(schema)
	c := &Chunk{Vectors: cols}
	if err := t.AppendChunk(c); err != nil {
		return nil, err
	}
	return t, nil
}
