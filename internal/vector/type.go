// Package vector implements the columnar (DSM) execution substrate used by
// the sorting study: logical types, validity bitmaps, typed vectors,
// fixed-capacity chunks, schemas, and in-memory tables.
//
// A vectorized interpreted engine moves data between operators as chunks of
// column vectors. The sort operator is a pipeline breaker: it materializes
// these chunks, converts them to a row format (package row) and to
// normalized keys (package normkey), sorts, and converts the result back to
// vectors for downstream operators.
package vector

import "fmt"

// DefaultVectorSize is the number of rows in a full vector, matching the
// vector size used by vectorized engines such as DuckDB.
const DefaultVectorSize = 2048

// Type is the logical type of a column.
type Type uint8

// The supported logical types. The micro-benchmarks of the paper use Uint32;
// the end-to-end benchmarks add Int32, Float32 and Varchar. The remaining
// types exercise the generality of the row format and key normalization.
const (
	Invalid Type = iota
	Bool
	Int8
	Int16
	Int32
	Int64
	Uint8
	Uint16
	Uint32
	Uint64
	Float32
	Float64
	Varchar
)

var typeNames = [...]string{
	Invalid: "INVALID",
	Bool:    "BOOLEAN",
	Int8:    "TINYINT",
	Int16:   "SMALLINT",
	Int32:   "INTEGER",
	Int64:   "BIGINT",
	Uint8:   "UTINYINT",
	Uint16:  "USMALLINT",
	Uint32:  "UINTEGER",
	Uint64:  "UBIGINT",
	Float32: "FLOAT",
	Float64: "DOUBLE",
	Varchar: "VARCHAR",
}

// String returns the SQL-style name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsValid reports whether t is one of the supported logical types.
func (t Type) IsValid() bool { return t > Invalid && t <= Varchar }

// IsNumeric reports whether t is an integer or floating-point type.
func (t Type) IsNumeric() bool { return t >= Int8 && t <= Float64 }

// IsFixedWidth reports whether values of t occupy a fixed number of bytes.
// Varchar values are variable-sized and live in a separate heap in the row
// format.
func (t Type) IsFixedWidth() bool { return t != Varchar && t.IsValid() }

// Width returns the number of bytes a value of t occupies in the row format.
// Varchar returns the width of its (offset, length) reference.
func (t Type) Width() int {
	switch t {
	case Bool, Int8, Uint8:
		return 1
	case Int16, Uint16:
		return 2
	case Int32, Uint32, Float32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	case Varchar:
		return 8 // uint32 heap offset + uint32 length
	default:
		return 0
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf returns the position of the column with the given name, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the column types in order.
func (s Schema) Types() []Type {
	ts := make([]Type, len(s))
	for i, c := range s {
		ts[i] = c.Type
	}
	return ts
}
