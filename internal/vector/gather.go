package vector

// NewDense returns a vector of type t with n rows already present, all
// valid and zero-valued. It is the destination shape the typed gather
// kernels write into: values are assigned through the backing slice instead
// of appended one call at a time, so a kernel's inner loop carries no
// per-value dispatch or growth checks.
func NewDense(t Type, n int) *Vector {
	v := &Vector{typ: t, n: n}
	switch t {
	case Bool:
		v.b = make([]bool, n)
	case Int8:
		v.i8 = make([]int8, n)
	case Int16:
		v.i16 = make([]int16, n)
	case Int32:
		v.i32 = make([]int32, n)
	case Int64:
		v.i64 = make([]int64, n)
	case Uint8:
		v.u8 = make([]uint8, n)
	case Uint16:
		v.u16 = make([]uint16, n)
	case Uint32:
		v.u32 = make([]uint32, n)
	case Uint64:
		v.u64 = make([]uint64, n)
	case Float32:
		v.f32 = make([]float32, n)
	case Float64:
		v.f64 = make([]float64, n)
	case Varchar:
		v.str = make([]string, n)
	default:
		panic("vector.NewDense: invalid type")
	}
	return v
}

// GatherInto fills dst (a dense vector of len(order) rows, same type as
// src) with src's rows in order order. The type switch runs once per call,
// not once per value — the vector-at-a-time payload gather used by the
// columnar system models. Indices may repeat and appear in any order.
func GatherInto(dst, src *Vector, order []uint32) {
	if dst.typ != src.typ {
		panic("vector.GatherInto: type mismatch")
	}
	if dst.n != len(order) {
		panic("vector.GatherInto: dst length does not match order")
	}
	switch src.typ {
	case Bool:
		gatherSlice(dst, dst.b, src.b, src.valid, order)
	case Int8:
		gatherSlice(dst, dst.i8, src.i8, src.valid, order)
	case Int16:
		gatherSlice(dst, dst.i16, src.i16, src.valid, order)
	case Int32:
		gatherSlice(dst, dst.i32, src.i32, src.valid, order)
	case Int64:
		gatherSlice(dst, dst.i64, src.i64, src.valid, order)
	case Uint8:
		gatherSlice(dst, dst.u8, src.u8, src.valid, order)
	case Uint16:
		gatherSlice(dst, dst.u16, src.u16, src.valid, order)
	case Uint32:
		gatherSlice(dst, dst.u32, src.u32, src.valid, order)
	case Uint64:
		gatherSlice(dst, dst.u64, src.u64, src.valid, order)
	case Float32:
		gatherSlice(dst, dst.f32, src.f32, src.valid, order)
	case Float64:
		gatherSlice(dst, dst.f64, src.f64, src.valid, order)
	case Varchar:
		gatherSlice(dst, dst.str, src.str, src.valid, order)
	}
}

// gatherSlice is the typed inner loop: a tight permuted copy when the
// source has no NULLs, otherwise the same loop with a validity check.
func gatherSlice[T any](dstVec *Vector, dst, src []T, valid *Bitmap, order []uint32) {
	if valid == nil || len(valid.words) == 0 {
		for o, i := range order {
			dst[o] = src[i]
		}
		return
	}
	for o, i := range order {
		if !valid.Valid(int(i)) {
			dstVec.SetNull(o)
			continue
		}
		dst[o] = src[i]
	}
}
