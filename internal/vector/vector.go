package vector

import "fmt"

// Vector is a typed column of values plus a validity mask. Only the slice
// matching the vector's type is allocated; the accessors panic on a type
// mismatch, which turns mis-wired operators into loud failures instead of
// silent corruption.
type Vector struct {
	typ   Type
	n     int
	valid *Bitmap

	b   []bool
	i8  []int8
	i16 []int16
	i32 []int32
	i64 []int64
	u8  []uint8
	u16 []uint16
	u32 []uint32
	u64 []uint64
	f32 []float32
	f64 []float64
	str []string
}

// New returns an empty vector of the given type with room for capacity rows.
func New(t Type, capacity int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case Bool:
		v.b = make([]bool, 0, capacity)
	case Int8:
		v.i8 = make([]int8, 0, capacity)
	case Int16:
		v.i16 = make([]int16, 0, capacity)
	case Int32:
		v.i32 = make([]int32, 0, capacity)
	case Int64:
		v.i64 = make([]int64, 0, capacity)
	case Uint8:
		v.u8 = make([]uint8, 0, capacity)
	case Uint16:
		v.u16 = make([]uint16, 0, capacity)
	case Uint32:
		v.u32 = make([]uint32, 0, capacity)
	case Uint64:
		v.u64 = make([]uint64, 0, capacity)
	case Float32:
		v.f32 = make([]float32, 0, capacity)
	case Float64:
		v.f64 = make([]float64, 0, capacity)
	case Varchar:
		v.str = make([]string, 0, capacity)
	default:
		panic(fmt.Sprintf("vector.New: invalid type %v", t))
	}
	return v
}

// FromUint32 wraps an existing slice as a Uint32 vector without copying.
func FromUint32(vals []uint32) *Vector {
	return &Vector{typ: Uint32, n: len(vals), u32: vals}
}

// FromInt32 wraps an existing slice as an Int32 vector without copying.
func FromInt32(vals []int32) *Vector {
	return &Vector{typ: Int32, n: len(vals), i32: vals}
}

// FromFloat32 wraps an existing slice as a Float32 vector without copying.
func FromFloat32(vals []float32) *Vector {
	return &Vector{typ: Float32, n: len(vals), f32: vals}
}

// FromStrings wraps an existing slice as a Varchar vector without copying.
func FromStrings(vals []string) *Vector {
	return &Vector{typ: Varchar, n: len(vals), str: vals}
}

// Type returns the vector's logical type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// Validity returns the validity mask; it may be nil when all rows are valid.
func (v *Vector) Validity() *Bitmap { return v.valid }

// Valid reports whether row i is non-NULL.
func (v *Vector) Valid(i int) bool { return v.valid.Valid(i) }

// SetNull marks row i NULL. The stored value becomes meaningless.
func (v *Vector) SetNull(i int) {
	if v.valid == nil {
		v.valid = NewBitmap(v.n)
	}
	v.valid.SetNull(i)
}

func (v *Vector) checkType(want Type, op string) {
	if v.typ != want {
		panic(fmt.Sprintf("vector: %s on %v vector (want %v)", op, v.typ, want))
	}
}

// Bools returns the backing slice of a Bool vector.
func (v *Vector) Bools() []bool { v.checkType(Bool, "Bools"); return v.b }

// Int8s returns the backing slice of an Int8 vector.
func (v *Vector) Int8s() []int8 { v.checkType(Int8, "Int8s"); return v.i8 }

// Int16s returns the backing slice of an Int16 vector.
func (v *Vector) Int16s() []int16 { v.checkType(Int16, "Int16s"); return v.i16 }

// Int32s returns the backing slice of an Int32 vector.
func (v *Vector) Int32s() []int32 { v.checkType(Int32, "Int32s"); return v.i32 }

// Int64s returns the backing slice of an Int64 vector.
func (v *Vector) Int64s() []int64 { v.checkType(Int64, "Int64s"); return v.i64 }

// Uint8s returns the backing slice of a Uint8 vector.
func (v *Vector) Uint8s() []uint8 { v.checkType(Uint8, "Uint8s"); return v.u8 }

// Uint16s returns the backing slice of a Uint16 vector.
func (v *Vector) Uint16s() []uint16 { v.checkType(Uint16, "Uint16s"); return v.u16 }

// Uint32s returns the backing slice of a Uint32 vector.
func (v *Vector) Uint32s() []uint32 { v.checkType(Uint32, "Uint32s"); return v.u32 }

// Uint64s returns the backing slice of a Uint64 vector.
func (v *Vector) Uint64s() []uint64 { v.checkType(Uint64, "Uint64s"); return v.u64 }

// Float32s returns the backing slice of a Float32 vector.
func (v *Vector) Float32s() []float32 { v.checkType(Float32, "Float32s"); return v.f32 }

// Float64s returns the backing slice of a Float64 vector.
func (v *Vector) Float64s() []float64 { v.checkType(Float64, "Float64s"); return v.f64 }

// Strings returns the backing slice of a Varchar vector.
func (v *Vector) Strings() []string { v.checkType(Varchar, "Strings"); return v.str }

// AppendBool appends a value to a Bool vector.
func (v *Vector) AppendBool(x bool) { v.checkType(Bool, "AppendBool"); v.b = append(v.b, x); v.grow() }

// AppendInt8 appends a value to an Int8 vector.
func (v *Vector) AppendInt8(x int8) {
	v.checkType(Int8, "AppendInt8")
	v.i8 = append(v.i8, x)
	v.grow()
}

// AppendInt16 appends a value to an Int16 vector.
func (v *Vector) AppendInt16(x int16) {
	v.checkType(Int16, "AppendInt16")
	v.i16 = append(v.i16, x)
	v.grow()
}

// AppendInt32 appends a value to an Int32 vector.
func (v *Vector) AppendInt32(x int32) {
	v.checkType(Int32, "AppendInt32")
	v.i32 = append(v.i32, x)
	v.grow()
}

// AppendInt64 appends a value to an Int64 vector.
func (v *Vector) AppendInt64(x int64) {
	v.checkType(Int64, "AppendInt64")
	v.i64 = append(v.i64, x)
	v.grow()
}

// AppendUint8 appends a value to a Uint8 vector.
func (v *Vector) AppendUint8(x uint8) {
	v.checkType(Uint8, "AppendUint8")
	v.u8 = append(v.u8, x)
	v.grow()
}

// AppendUint16 appends a value to a Uint16 vector.
func (v *Vector) AppendUint16(x uint16) {
	v.checkType(Uint16, "AppendUint16")
	v.u16 = append(v.u16, x)
	v.grow()
}

// AppendUint32 appends a value to a Uint32 vector.
func (v *Vector) AppendUint32(x uint32) {
	v.checkType(Uint32, "AppendUint32")
	v.u32 = append(v.u32, x)
	v.grow()
}

// AppendUint64 appends a value to a Uint64 vector.
func (v *Vector) AppendUint64(x uint64) {
	v.checkType(Uint64, "AppendUint64")
	v.u64 = append(v.u64, x)
	v.grow()
}

// AppendFloat32 appends a value to a Float32 vector.
func (v *Vector) AppendFloat32(x float32) {
	v.checkType(Float32, "AppendFloat32")
	v.f32 = append(v.f32, x)
	v.grow()
}

// AppendFloat64 appends a value to a Float64 vector.
func (v *Vector) AppendFloat64(x float64) {
	v.checkType(Float64, "AppendFloat64")
	v.f64 = append(v.f64, x)
	v.grow()
}

// AppendString appends a value to a Varchar vector.
func (v *Vector) AppendString(x string) {
	v.checkType(Varchar, "AppendString")
	v.str = append(v.str, x)
	v.grow()
}

// AppendNull appends a NULL row. The stored value is the type's zero value.
func (v *Vector) AppendNull() {
	switch v.typ {
	case Bool:
		v.b = append(v.b, false)
	case Int8:
		v.i8 = append(v.i8, 0)
	case Int16:
		v.i16 = append(v.i16, 0)
	case Int32:
		v.i32 = append(v.i32, 0)
	case Int64:
		v.i64 = append(v.i64, 0)
	case Uint8:
		v.u8 = append(v.u8, 0)
	case Uint16:
		v.u16 = append(v.u16, 0)
	case Uint32:
		v.u32 = append(v.u32, 0)
	case Uint64:
		v.u64 = append(v.u64, 0)
	case Float32:
		v.f32 = append(v.f32, 0)
	case Float64:
		v.f64 = append(v.f64, 0)
	case Varchar:
		v.str = append(v.str, "")
	}
	v.grow()
	v.SetNull(v.n - 1)
}

func (v *Vector) grow() {
	v.n++
	if v.valid != nil {
		v.valid.Resize(v.n)
	}
}

// Value returns row i as an any, or nil if the row is NULL. It is intended
// for tests and debugging, not hot paths.
func (v *Vector) Value(i int) any {
	if !v.Valid(i) {
		return nil
	}
	switch v.typ {
	case Bool:
		return v.b[i]
	case Int8:
		return v.i8[i]
	case Int16:
		return v.i16[i]
	case Int32:
		return v.i32[i]
	case Int64:
		return v.i64[i]
	case Uint8:
		return v.u8[i]
	case Uint16:
		return v.u16[i]
	case Uint32:
		return v.u32[i]
	case Uint64:
		return v.u64[i]
	case Float32:
		return v.f32[i]
	case Float64:
		return v.f64[i]
	case Varchar:
		return v.str[i]
	}
	return nil
}
