package vector

import (
	"testing"
	"testing/quick"
)

func TestTypeWidths(t *testing.T) {
	cases := []struct {
		typ   Type
		width int
	}{
		{Bool, 1}, {Int8, 1}, {Uint8, 1},
		{Int16, 2}, {Uint16, 2},
		{Int32, 4}, {Uint32, 4}, {Float32, 4},
		{Int64, 8}, {Uint64, 8}, {Float64, 8},
		{Varchar, 8},
	}
	for _, c := range cases {
		if got := c.typ.Width(); got != c.width {
			t.Errorf("%v.Width() = %d, want %d", c.typ, got, c.width)
		}
	}
	if Invalid.Width() != 0 {
		t.Errorf("Invalid.Width() = %d, want 0", Invalid.Width())
	}
}

func TestTypePredicates(t *testing.T) {
	if !Int32.IsNumeric() || !Float64.IsNumeric() {
		t.Error("Int32/Float64 should be numeric")
	}
	if Varchar.IsNumeric() || Bool.IsNumeric() {
		t.Error("Varchar/Bool should not be numeric")
	}
	if Varchar.IsFixedWidth() {
		t.Error("Varchar should not be fixed width")
	}
	if !Int64.IsFixedWidth() {
		t.Error("Int64 should be fixed width")
	}
	if Invalid.IsValid() || Type(200).IsValid() {
		t.Error("Invalid/out-of-range should not be valid")
	}
	if !Uint32.IsValid() {
		t.Error("Uint32 should be valid")
	}
}

func TestTypeString(t *testing.T) {
	if Int32.String() != "INTEGER" {
		t.Errorf("Int32.String() = %q", Int32.String())
	}
	if Varchar.String() != "VARCHAR" {
		t.Errorf("Varchar.String() = %q", Varchar.String())
	}
	if Type(99).String() == "" {
		t.Error("out-of-range type should still stringify")
	}
}

func TestBitmapBasics(t *testing.T) {
	bm := NewBitmap(130)
	if bm.Len() != 130 {
		t.Fatalf("Len = %d", bm.Len())
	}
	if !bm.AllValid() {
		t.Fatal("new bitmap should be all valid")
	}
	bm.SetNull(0)
	bm.SetNull(64)
	bm.SetNull(129)
	if bm.Valid(0) || bm.Valid(64) || bm.Valid(129) {
		t.Fatal("SetNull did not take effect")
	}
	if bm.Valid(1) == false {
		t.Fatal("row 1 should still be valid")
	}
	if got := bm.CountNull(); got != 3 {
		t.Fatalf("CountNull = %d, want 3", got)
	}
	bm.SetValid(64)
	if !bm.Valid(64) {
		t.Fatal("SetValid did not take effect")
	}
	if got := bm.CountNull(); got != 2 {
		t.Fatalf("CountNull = %d, want 2", got)
	}
}

func TestBitmapNilTreatsAllValid(t *testing.T) {
	var bm *Bitmap
	if !bm.Valid(12345) {
		t.Fatal("nil bitmap should report valid")
	}
	if !bm.AllValid() {
		t.Fatal("nil bitmap should be all valid")
	}
	if bm.CountNull() != 0 {
		t.Fatal("nil bitmap should count 0 nulls")
	}
	if bm.Clone() != nil {
		t.Fatal("clone of nil bitmap should be nil")
	}
}

func TestBitmapResizePreservesAndDefaultsValid(t *testing.T) {
	bm := NewBitmap(10)
	bm.SetNull(3)
	bm.Resize(100)
	if bm.Valid(3) {
		t.Fatal("resize lost null at 3")
	}
	for i := 10; i < 100; i++ {
		if !bm.Valid(i) {
			t.Fatalf("new row %d should default valid", i)
		}
	}
}

func TestBitmapClone(t *testing.T) {
	bm := NewBitmap(70)
	bm.SetNull(5)
	cp := bm.Clone()
	cp.SetNull(6)
	if bm.Valid(5) || !bm.Valid(6) {
		t.Fatal("clone should not alias original")
	}
	if cp.Valid(5) || cp.Valid(6) {
		t.Fatal("clone should carry nulls and accept new ones")
	}
}

func TestBitmapQuickCountNull(t *testing.T) {
	f := func(nulls []uint16) bool {
		const n = 1 << 12
		bm := NewBitmap(n)
		seen := map[int]bool{}
		for _, x := range nulls {
			i := int(x) % n
			bm.SetNull(i)
			seen[i] = true
		}
		return bm.CountNull() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorAppendAndAccessors(t *testing.T) {
	v := New(Int32, 4)
	v.AppendInt32(3)
	v.AppendInt32(-7)
	v.AppendNull()
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Int32s(); got[0] != 3 || got[1] != -7 {
		t.Fatalf("Int32s = %v", got)
	}
	if v.Valid(2) {
		t.Fatal("row 2 should be NULL")
	}
	if v.Value(2) != nil {
		t.Fatal("Value of NULL row should be nil")
	}
	if v.Value(1).(int32) != -7 {
		t.Fatalf("Value(1) = %v", v.Value(1))
	}
}

func TestVectorAllTypesRoundTrip(t *testing.T) {
	type appendGet struct {
		typ Type
		add func(v *Vector)
		val any
	}
	cases := []appendGet{
		{Bool, func(v *Vector) { v.AppendBool(true) }, true},
		{Int8, func(v *Vector) { v.AppendInt8(-8) }, int8(-8)},
		{Int16, func(v *Vector) { v.AppendInt16(-16) }, int16(-16)},
		{Int32, func(v *Vector) { v.AppendInt32(-32) }, int32(-32)},
		{Int64, func(v *Vector) { v.AppendInt64(-64) }, int64(-64)},
		{Uint8, func(v *Vector) { v.AppendUint8(8) }, uint8(8)},
		{Uint16, func(v *Vector) { v.AppendUint16(16) }, uint16(16)},
		{Uint32, func(v *Vector) { v.AppendUint32(32) }, uint32(32)},
		{Uint64, func(v *Vector) { v.AppendUint64(64) }, uint64(64)},
		{Float32, func(v *Vector) { v.AppendFloat32(1.5) }, float32(1.5)},
		{Float64, func(v *Vector) { v.AppendFloat64(2.5) }, 2.5},
		{Varchar, func(v *Vector) { v.AppendString("hi") }, "hi"},
	}
	for _, c := range cases {
		v := New(c.typ, 2)
		c.add(v)
		v.AppendNull()
		if got := v.Value(0); got != c.val {
			t.Errorf("%v: Value(0) = %v, want %v", c.typ, got, c.val)
		}
		if v.Value(1) != nil {
			t.Errorf("%v: Value(1) should be nil", c.typ)
		}
	}
}

func TestVectorTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	v := New(Int32, 1)
	v.Uint32s()
}

func TestVectorWrappers(t *testing.T) {
	u := FromUint32([]uint32{1, 2, 3})
	if u.Type() != Uint32 || u.Len() != 3 || u.Uint32s()[2] != 3 {
		t.Fatal("FromUint32 wrap broken")
	}
	i := FromInt32([]int32{-1})
	if i.Type() != Int32 || i.Len() != 1 {
		t.Fatal("FromInt32 wrap broken")
	}
	f := FromFloat32([]float32{0.5})
	if f.Type() != Float32 || f.Len() != 1 {
		t.Fatal("FromFloat32 wrap broken")
	}
	s := FromStrings([]string{"a", "b"})
	if s.Type() != Varchar || s.Len() != 2 {
		t.Fatal("FromStrings wrap broken")
	}
}

func TestChunkAndTable(t *testing.T) {
	schema := Schema{{"a", Int32}, {"b", Varchar}}
	c := NewChunk(schema, 4)
	c.Vectors[0].AppendInt32(1)
	c.Vectors[0].AppendInt32(2)
	c.Vectors[1].AppendString("x")
	c.Vectors[1].AppendString("y")
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.NumColumns() != 2 {
		t.Fatalf("Len=%d cols=%d", c.Len(), c.NumColumns())
	}

	tbl := NewTable(schema)
	if err := tbl.AppendChunk(c); err != nil {
		t.Fatal(err)
	}
	c2 := NewChunk(schema, 4)
	c2.Vectors[0].AppendInt32(3)
	c2.Vectors[1].AppendNull()
	if err := tbl.AppendChunk(c2); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	col := tbl.Column(1)
	if col.Len() != 3 || col.Value(0) != "x" || col.Value(2) != nil {
		t.Fatalf("Column gather wrong: %v %v %v", col.Value(0), col.Value(1), col.Value(2))
	}
}

func TestChunkVerifyMismatch(t *testing.T) {
	schema := Schema{{"a", Int32}, {"b", Int32}}
	c := NewChunk(schema, 2)
	c.Vectors[0].AppendInt32(1)
	if err := c.Verify(); err == nil {
		t.Fatal("expected ragged chunk to fail Verify")
	}
}

func TestTableAppendChunkErrors(t *testing.T) {
	schema := Schema{{"a", Int32}}
	tbl := NewTable(schema)
	wrongCols := &Chunk{Vectors: []*Vector{New(Int32, 1), New(Int32, 1)}}
	if err := tbl.AppendChunk(wrongCols); err == nil {
		t.Fatal("expected column-count error")
	}
	wrongType := &Chunk{Vectors: []*Vector{New(Varchar, 1)}}
	if err := tbl.AppendChunk(wrongType); err == nil {
		t.Fatal("expected type error")
	}
}

func TestTableFromColumns(t *testing.T) {
	schema := Schema{{"k", Uint32}}
	tbl, err := TableFromColumns(schema, FromUint32([]uint32{5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if _, err := TableFromColumns(schema); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{"a", Int32}, {"b", Varchar}}
	if s.IndexOf("b") != 1 || s.IndexOf("zzz") != -1 {
		t.Fatal("IndexOf broken")
	}
	ts := s.Types()
	if len(ts) != 2 || ts[0] != Int32 || ts[1] != Varchar {
		t.Fatal("Types broken")
	}
}
