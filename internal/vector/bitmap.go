package vector

import "math/bits"

// Bitmap is a validity mask: bit i is set when row i holds a valid
// (non-NULL) value. A zero Bitmap treats every row as valid, so columns
// without NULLs pay no mask cost.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-valid bitmap covering n rows.
func NewBitmap(n int) *Bitmap {
	//rowsort:allow hotpathalloc validity bitmaps are lazy: allocated once on the first NULL, never in the steady state
	bm := &Bitmap{}
	bm.Resize(n)
	return bm
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Resize grows or shrinks the bitmap to cover n rows. New rows are valid.
func (b *Bitmap) Resize(n int) {
	words := (n + 63) / 64
	for len(b.words) < words {
		//rowsort:allow hotpathalloc amortized bitmap growth, hit only when a vector first sees NULLs at a new length
		b.words = append(b.words, ^uint64(0))
	}
	b.words = b.words[:words]
	// Newly exposed bits within the last word must be valid.
	if n > b.n {
		for i := b.n; i < n && i < len(b.words)*64; i++ {
			b.words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	b.n = n
}

// Valid reports whether row i is valid. Rows of a nil bitmap are all valid.
func (b *Bitmap) Valid(i int) bool {
	if b == nil || len(b.words) == 0 {
		return true
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetValid marks row i valid.
func (b *Bitmap) SetValid(i int) {
	b.ensure(i + 1)
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// SetNull marks row i NULL.
func (b *Bitmap) SetNull(i int) {
	b.ensure(i + 1)
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

func (b *Bitmap) ensure(n int) {
	if n > b.n {
		b.Resize(n)
	}
}

// AllValid reports whether no row is NULL.
func (b *Bitmap) AllValid() bool {
	if b == nil {
		return true
	}
	return b.CountNull() == 0
}

// CountNull returns the number of NULL rows.
func (b *Bitmap) CountNull() int {
	if b == nil || len(b.words) == 0 {
		return 0
	}
	valid := 0
	for i, w := range b.words {
		if i == len(b.words)-1 {
			// Mask out bits beyond n.
			if rem := uint(b.n) & 63; rem != 0 {
				w &= (1 << rem) - 1
			}
		}
		valid += bits.OnesCount64(w)
	}
	return b.n - valid
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	cp := &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
	return cp
}
