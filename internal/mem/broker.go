// Package mem is the sort pipeline's memory governor: a concurrency-safe
// budget broker with hierarchical reservations. An engine creates one root
// Broker with a global budget, hands it to every operator, and each sorter
// carves a child broker from it; within a sorter, each phase (sink
// ingestion, resident runs, merge blocks, result gather) holds its own
// Reservation and grows or shrinks it as buffers are acquired and released.
//
// The broker never refuses memory — by the time a caller asks, the bytes
// are already allocated — it answers whether the budget still holds. A
// Grow that lands over any limit in the chain returns false and fires the
// pressure subscribers, and the caller degrades: the sorter cuts its
// pending run early and spills resident runs until the balance recovers.
// Accounting therefore stays truthful under pressure, and the atomic
// high-water mark (Peak) reports what was really held, not what was
// wished for.
//
// A nil *Broker is a valid unlimited no-op (the same convention as a nil
// obs.Recorder): every method is safe, Reserve returns a nil *Reservation
// whose methods are also no-ops, so library code threads brokers through
// unconditionally and pays nothing when memory governance is off.
package mem

import (
	"math"
	"sync"
	"sync/atomic"
)

// Broker tracks a memory budget. Brokers form a tree: charging a child
// charges every ancestor, so a shared root observes the sum of all its
// sorters while each child enforces (and reports) its own slice.
type Broker struct {
	name   string
	parent *Broker
	limit  int64 // 0 = unlimited

	used atomic.Int64
	peak atomic.Int64

	pressureEvents atomic.Int64

	mu      sync.Mutex
	subs    map[int]func(need int64)
	nextSub int
}

// NewBroker returns a root broker. limit is the budget in bytes; 0 means
// unlimited (the broker still tracks usage and peak).
func NewBroker(name string, limit int64) *Broker {
	if limit < 0 {
		limit = 0
	}
	return &Broker{name: name, limit: limit}
}

// Child returns a broker whose charges propagate to b. limit bounds the
// child independently (0 = bounded only by the ancestors). Child on a nil
// broker returns a root broker, so optional parents compose without
// branching.
func (b *Broker) Child(name string, limit int64) *Broker {
	if b == nil {
		return NewBroker(name, limit)
	}
	if limit < 0 {
		limit = 0
	}
	return &Broker{name: name, parent: b, limit: limit}
}

// Name returns the broker's diagnostic name. Nil-safe.
func (b *Broker) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// Limit returns the broker's own budget in bytes (0 = unlimited). Nil-safe.
func (b *Broker) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently reserved at this level. Nil-safe.
func (b *Broker) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of Used. Nil-safe.
func (b *Broker) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// PressureEvents counts Grow calls through this broker that ended over
// budget (here or at an ancestor). Nil-safe.
func (b *Broker) PressureEvents() int64 {
	if b == nil {
		return 0
	}
	return b.pressureEvents.Load()
}

// Remaining returns the tightest headroom along the ancestor chain:
// min(limit - used) over every limited level. It is negative when some
// level is over budget and math.MaxInt64 when no level has a limit.
// Nil-safe.
func (b *Broker) Remaining() int64 {
	rem := int64(math.MaxInt64)
	for p := b; p != nil; p = p.parent {
		if p.limit > 0 {
			if r := p.limit - p.used.Load(); r < rem {
				rem = r
			}
		}
	}
	return rem
}

// OverBudget reports whether this broker or any ancestor is over its
// limit. Nil-safe.
func (b *Broker) OverBudget() bool {
	for p := b; p != nil; p = p.parent {
		if p.limit > 0 && p.used.Load() > p.limit {
			return true
		}
	}
	return false
}

// Subscribe registers a pressure callback, fired (with the size of the
// grow that could not be satisfied) whenever a Grow through this broker
// ends over budget. Callbacks run on the growing goroutine with no broker
// locks held, so they may inspect the broker freely; they must not block.
// The returned function cancels the subscription. Nil-safe: on a nil
// broker the callback never fires and the cancel is a no-op.
func (b *Broker) Subscribe(fn func(need int64)) (cancel func()) {
	if b == nil {
		return func() {}
	}
	b.mu.Lock()
	if b.subs == nil {
		b.subs = make(map[int]func(int64))
	}
	id := b.nextSub
	b.nextSub++
	b.subs[id] = fn
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// notify fires the pressure subscribers outside any lock.
func (b *Broker) notify(need int64) {
	b.mu.Lock()
	fns := make([]func(int64), 0, len(b.subs))
	for _, fn := range b.subs {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(need)
	}
}

// charge adds n bytes at this level and every ancestor, updating peaks,
// and reports whether the whole chain is still within budget. On an
// over-budget result the leaf's pressure subscribers are notified.
func (b *Broker) charge(n int64) bool {
	ok := true
	for p := b; p != nil; p = p.parent {
		cur := p.used.Add(n)
		for {
			peak := p.peak.Load()
			if cur <= peak || p.peak.CompareAndSwap(peak, cur) {
				break
			}
		}
		if p.limit > 0 && cur > p.limit {
			ok = false
		}
	}
	if !ok && n > 0 {
		b.pressureEvents.Add(1)
		b.notify(n)
	}
	return ok
}

// discharge subtracts n bytes at this level and every ancestor.
func (b *Broker) discharge(n int64) {
	for p := b; p != nil; p = p.parent {
		p.used.Add(-n)
	}
}

// Reserve opens a named reservation of n bytes against the broker. The
// bytes are charged immediately (see Grow for the over-budget contract).
// Every Reserve must be balanced by Release — the memacct analyzer
// enforces the pairing. On a nil broker it returns a nil *Reservation,
// whose methods are all no-ops. Nil-safe.
func (b *Broker) Reserve(name string, n int64) *Reservation {
	if b == nil {
		return nil
	}
	r := &Reservation{b: b, name: name}
	if n > 0 {
		r.Grow(n)
	}
	return r
}

// Reservation is one accounted slice of a broker's budget. Grow and
// Shrink adjust it as the owning phase allocates and frees; Release
// returns the whole balance. Reservations are safe for concurrent use.
type Reservation struct {
	b    *Broker
	name string
	n    atomic.Int64
}

// Bytes returns the reservation's current size. Nil-safe.
func (r *Reservation) Bytes() int64 {
	if r == nil {
		return 0
	}
	return r.n.Load()
}

// Grow charges n more bytes and reports whether every level of the broker
// chain is still within budget. The charge is recorded even when the
// answer is false — the caller has already allocated the memory, so the
// accounting must reflect reality; false is the signal to shed load
// (spill, flush early, shrink buffers) until the balance recovers.
// Negative n is treated as Shrink(-n). Nil-safe (returns true).
func (r *Reservation) Grow(n int64) bool {
	if r == nil || n == 0 {
		return true
	}
	if n < 0 {
		r.Shrink(-n)
		return true
	}
	r.n.Add(n)
	return r.b.charge(n)
}

// Shrink returns n bytes to the broker. Nil-safe.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.n.Add(-n)
	r.b.discharge(n)
}

// SetTo grows or shrinks the reservation to exactly target bytes and
// reports whether the chain is within budget after the adjustment (always
// true when the adjustment only shrank). Nil-safe (returns true).
func (r *Reservation) SetTo(target int64) bool {
	if r == nil {
		return true
	}
	if target < 0 {
		target = 0
	}
	for {
		cur := r.n.Load()
		if cur == target {
			return !r.b.OverBudget()
		}
		if r.n.CompareAndSwap(cur, target) {
			if delta := target - cur; delta > 0 {
				return r.b.charge(delta)
			} else {
				r.b.discharge(-delta)
				return true
			}
		}
	}
}

// Release returns the reservation's whole balance to the broker. It is
// idempotent and nil-safe; a released reservation can keep being used
// (its balance simply restarts from zero), though conventionally Release
// ends the reservation's life.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	n := r.n.Swap(0)
	if n > 0 {
		r.b.discharge(n)
	} else if n < 0 {
		r.b.charge(-n)
	}
}
