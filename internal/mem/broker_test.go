package mem

import (
	"math"
	"sync"
	"testing"
)

func TestBrokerAccounting(t *testing.T) {
	b := NewBroker("root", 1000)
	r := b.Reserve("phase", 400)
	defer r.Release()
	if got := b.Used(); got != 400 {
		t.Fatalf("Used = %d, want 400", got)
	}
	if !r.Grow(500) {
		t.Fatal("Grow within budget returned false")
	}
	if got := b.Remaining(); got != 100 {
		t.Fatalf("Remaining = %d, want 100", got)
	}
	if r.Grow(200) {
		t.Fatal("Grow past the limit returned true")
	}
	if !b.OverBudget() {
		t.Fatal("broker not over budget after oversized grow")
	}
	// The charge is recorded even though it was over budget.
	if got := b.Used(); got != 1100 {
		t.Fatalf("Used = %d, want 1100 (truthful accounting)", got)
	}
	if got := b.Peak(); got != 1100 {
		t.Fatalf("Peak = %d, want 1100", got)
	}
	r.Shrink(600)
	if b.OverBudget() {
		t.Fatal("broker still over budget after shrink")
	}
	r.Release()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used = %d after Release, want 0", got)
	}
	if got := b.Peak(); got != 1100 {
		t.Fatalf("Peak = %d after Release, want 1100 (peak is sticky)", got)
	}
}

func TestBrokerHierarchy(t *testing.T) {
	root := NewBroker("root", 2000)
	a := root.Child("a", 300)
	b := root.Child("b", 0) // bounded only by the root

	ra := a.Reserve("x", 200)
	rb := b.Reserve("y", 700)
	defer ra.Release()
	defer rb.Release()

	if got := root.Used(); got != 900 {
		t.Fatalf("root.Used = %d, want 900", got)
	}
	if got := a.Used(); got != 200 {
		t.Fatalf("a.Used = %d, want 200", got)
	}
	// a's own headroom is 100, tighter than the root's 1100.
	if got := a.Remaining(); got != 100 {
		t.Fatalf("a.Remaining = %d, want 100", got)
	}
	// b has no limit of its own; its headroom is the root's.
	if got := b.Remaining(); got != 1100 {
		t.Fatalf("b.Remaining = %d, want 1100", got)
	}
	// Growing a past its slice trips a but not the root (1050 < 2000).
	if ra.Grow(150) {
		t.Fatal("grow past child limit returned true")
	}
	if !a.OverBudget() || root.OverBudget() {
		t.Fatalf("OverBudget: a=%v root=%v, want true/false", a.OverBudget(), root.OverBudget())
	}
	// Growing b past the root trips both views (2150 > 2000).
	if rb.Grow(1100) {
		t.Fatal("grow past root limit returned true")
	}
	if !b.OverBudget() || !root.OverBudget() {
		t.Fatal("root over budget must be visible from every child")
	}
	ra.Release()
	rb.Release()
	if root.Used() != 0 || a.Used() != 0 || b.Used() != 0 {
		t.Fatalf("balances after release: root=%d a=%d b=%d, want all 0",
			root.Used(), a.Used(), b.Used())
	}
}

func TestBrokerPressureCallback(t *testing.T) {
	b := NewBroker("root", 100)
	var fired []int64
	cancel := b.Subscribe(func(need int64) { fired = append(fired, need) })
	r := b.Reserve("x", 0)
	defer r.Release()
	r.Grow(90)
	if len(fired) != 0 {
		t.Fatalf("pressure fired within budget: %v", fired)
	}
	r.Grow(20)
	if len(fired) != 1 || fired[0] != 20 {
		t.Fatalf("pressure events = %v, want [20]", fired)
	}
	if got := b.PressureEvents(); got != 1 {
		t.Fatalf("PressureEvents = %d, want 1", got)
	}
	// Shrinking back under budget silences further growth within budget...
	r.Shrink(30)
	r.Grow(10)
	if len(fired) != 1 {
		t.Fatalf("pressure fired within budget after recovery: %v", fired)
	}
	// ...and a cancelled subscription never fires again.
	cancel()
	r.Grow(1000)
	if len(fired) != 1 {
		t.Fatalf("cancelled subscription fired: %v", fired)
	}
}

func TestBrokerSetTo(t *testing.T) {
	b := NewBroker("root", 100)
	r := b.Reserve("x", 0)
	defer r.Release()
	if !r.SetTo(60) {
		t.Fatal("SetTo within budget returned false")
	}
	if got := r.Bytes(); got != 60 {
		t.Fatalf("Bytes = %d, want 60", got)
	}
	if r.SetTo(150) {
		t.Fatal("SetTo past budget returned true")
	}
	if got := b.Used(); got != 150 {
		t.Fatalf("Used = %d, want 150", got)
	}
	if !r.SetTo(40) {
		t.Fatal("shrinking SetTo returned false")
	}
	if got := b.Used(); got != 40 {
		t.Fatalf("Used = %d, want 40", got)
	}
}

func TestBrokerNilNoOps(t *testing.T) {
	var b *Broker
	if b.OverBudget() || b.Used() != 0 || b.Peak() != 0 || b.Limit() != 0 {
		t.Fatal("nil broker reported non-zero state")
	}
	if got := b.Remaining(); got != math.MaxInt64 {
		t.Fatalf("nil broker Remaining = %d, want MaxInt64", got)
	}
	cancel := b.Subscribe(func(int64) { t.Fatal("nil broker fired pressure") })
	cancel()
	r := b.Reserve("x", 10)
	if r != nil {
		t.Fatal("nil broker returned a non-nil reservation")
	}
	if !r.Grow(5) || !r.SetTo(7) || r.Bytes() != 0 {
		t.Fatal("nil reservation is not a no-op")
	}
	r.Shrink(3)
	r.Release()

	// Child of nil is a usable root.
	c := b.Child("child", 50)
	if c == nil || c.Limit() != 50 {
		t.Fatal("Child on nil broker did not create a root")
	}
	cr := c.Reserve("y", 10)
	defer cr.Release()
	if c.Used() != 10 {
		t.Fatalf("child-of-nil Used = %d, want 10", c.Used())
	}
}

// TestBrokerConcurrent hammers one shared broker from many goroutines and
// checks the balance returns to zero and the peak is plausible. Run with
// -race this also proves the charge/notify paths are data-race free.
func TestBrokerConcurrent(t *testing.T) {
	root := NewBroker("root", 1<<20)
	var pressures sync.Map
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := root.Child("w", 1<<16)
			cancel := child.Subscribe(func(need int64) { pressures.Store(w, need) })
			defer cancel()
			res := child.Reserve("loop", 0)
			defer res.Release()
			for i := 0; i < 2000; i++ {
				res.Grow(1 << 10)
				if child.OverBudget() {
					res.Shrink(res.Bytes())
				}
			}
		}(w)
	}
	wg.Wait()
	if got := root.Used(); got != 0 {
		t.Fatalf("root balance = %d after all releases, want 0", got)
	}
	if root.Peak() <= 0 {
		t.Fatal("root peak never moved")
	}
	n := 0
	pressures.Range(func(any, any) bool { n++; return true })
	if n == 0 {
		t.Fatal("no worker ever saw pressure despite tiny child budgets")
	}
}
