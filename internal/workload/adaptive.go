package workload

import "rowsort/internal/vector"

// Adaptive-strategy workloads: generators whose order structure — not value
// distribution — is the variable. NearlySorted dials disorder continuously
// from fully sorted to fully random; SawtoothRuns produces the adversarial
// locally-sorted/globally-shuffled ramps that defeat naive adjacent-pair
// sortedness estimators. Both key payloads are pure functions of the key,
// so equivalence tests can compare sorts byte for byte.

// NearlySorted generates n rows keyed by an ascending Int64 sequence with a
// fraction of rows displaced: each row is swapped with a random other row
// with probability disorder (0 = fully sorted, 1 ≈ random shuffle). This is
// the presorted-input dial: at small disorder a comparison sort's pattern
// detection wins, at large disorder radix does.
func NearlySorted(n int, disorder float64, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	for i := range keys {
		if rng.Float64() < disorder {
			j := rng.Intn(n)
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	t := vector.NewTable(KeyCompIntSchema)
	i := 0
	appendRows(t, n, func(c *vector.Chunk) {
		k := keys[i]
		i++
		c.Vectors[0].AppendInt64(k)
		c.Vectors[1].AppendInt64(mixPayload(uint64(k)))
	})
	return t
}

// SawtoothRuns generates n rows of ascending ramps of the given period with
// random, overlapping bases: within each tooth keys strictly ascend, but
// consecutive teeth restart lower, so adjacent-pair order statistics read
// the input as almost sorted while roughly half of all global index pairs
// are inverted. An estimator that only looks locally will misclassify this
// as presorted; the strategy analyzer's global inversion sample must not.
func SawtoothRuns(n, period int, seed uint64) *vector.Table {
	if period < 2 {
		period = 2
	}
	rng := NewRNG(seed)
	t := vector.NewTable(KeyCompIntSchema)
	base, pos := int64(0), 0
	appendRows(t, n, func(c *vector.Chunk) {
		if pos == 0 {
			base = int64(rng.Intn(n))
		}
		k := base + int64(pos)
		pos = (pos + 1) % period
		c.Vectors[0].AppendInt64(k)
		c.Vectors[1].AppendInt64(mixPayload(uint64(k)))
	})
	return t
}
