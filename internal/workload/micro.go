package workload

import "fmt"

// CorrelatedCardinality is the number of unique values per column in the
// CorrelatedP distributions, as in the paper.
const CorrelatedCardinality = 128

// Dist names one of the paper's micro-benchmark data distributions.
type Dist struct {
	// Name as used in the paper's figures, e.g. "Random", "Correlated0.5".
	Name string
	// Random selects the full-range uniform distribution with virtually no
	// duplicates; otherwise the CorrelatedP distribution with P below.
	Random bool
	// P is the correlation probability for CorrelatedP distributions.
	P float64
}

// StandardDists returns the distributions swept by the paper's
// micro-benchmark figures.
func StandardDists() []Dist {
	return []Dist{
		{Name: "Random", Random: true},
		{Name: "Correlated0.00", P: 0},
		{Name: "Correlated0.25", P: 0.25},
		{Name: "Correlated0.50", P: 0.5},
		{Name: "Correlated0.75", P: 0.75},
		{Name: "Correlated1.00", P: 1},
	}
}

// Generate returns cols key columns of n rows each.
//
// For Random, every column is uniform over the full 32-bit range. For
// CorrelatedP, each column has CorrelatedCardinality unique values; the
// first column is uniform, and each subsequent column's value is, with
// probability P, a deterministic function of the previous column's value
// (so equal values in column c imply equal values in column c+1), and
// otherwise uniform. The paper's footnote defining the construction is not
// in the available text; DESIGN.md documents this substitution, which
// preserves the tie-frequency gradient the paper sweeps.
func (d Dist) Generate(n, cols int, seed uint64) [][]uint32 {
	if cols < 1 {
		panic("workload: need at least one column")
	}
	rng := NewRNG(seed)
	out := make([][]uint32, cols)
	for c := range out {
		out[c] = make([]uint32, n)
	}
	if d.Random {
		for c := 0; c < cols; c++ {
			col := out[c]
			for i := range col {
				col[i] = rng.Uint32()
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		out[0][i] = uint32(rng.Intn(CorrelatedCardinality))
	}
	for c := 1; c < cols; c++ {
		prev, cur := out[c-1], out[c]
		for i := 0; i < n; i++ {
			if rng.Float64() < d.P {
				cur[i] = correlate(prev[i], uint32(c))
			} else {
				cur[i] = uint32(rng.Intn(CorrelatedCardinality))
			}
		}
	}
	return out
}

// correlate deterministically maps a value of column c to a value of column
// c+1 within the correlated cardinality.
func correlate(v, c uint32) uint32 {
	h := (uint64(v)+1)*0x9E3779B97F4A7C15 + uint64(c)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return uint32(h % CorrelatedCardinality)
}

// String returns the distribution's display name.
func (d Dist) String() string {
	if d.Name != "" {
		return d.Name
	}
	if d.Random {
		return "Random"
	}
	return fmt.Sprintf("Correlated%.2f", d.P)
}

// ShuffledInt32s returns the integers 0..n-1 shuffled — the Figure 12
// integer workload ("32-bit integers from 0 to n-1, shuffled").
func ShuffledInt32s(n int, seed uint64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	NewRNG(seed).Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// UniformFloat32s returns n float32 values uniform in [-1e9, 1e9] — the
// Figure 12 float workload.
func UniformFloat32s(n int, seed uint64) []float32 {
	rng := NewRNG(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32((rng.Float64()*2 - 1) * 1e9)
	}
	return out
}
