package workload

// Name pools for the customer generator. TPC-DS draws customer names from
// fixed lists; these pools mirror that: a few hundred distinct values with
// heavily skewed selection, producing the duplicate-rich string keys the
// Figure 14 benchmark sorts.

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
	"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
	"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
	"Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
	"Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
	"Fisher", "Vasquez", "Simmons", "Romero", "Jordan", "Patterson",
	"Alexander", "Hamilton", "Graham", "Reynolds", "Griffin", "Wallace",
	"Moreno", "West", "Cole", "Hayes", "Bryant", "Herrera", "Gibson",
	"Ellis", "Tran", "Medina", "Aguilar", "Stevens", "Murray", "Ford",
	"Castro", "Marshall", "Owens", "Harrison", "Fernandez", "McDonald",
	"Woods", "Washington", "Kennedy", "Wells", "Vargas", "Henry", "Chen",
	"Freeman", "Webb", "Tucker", "Guzman", "Burns", "Crawford", "Olson",
	"Simpson", "Porter", "Hunter", "Gordon", "Mendez", "Silva", "Shaw",
	"Snyder", "Mason", "Dixon", "Munoz", "Hunt", "Hicks", "Holmes",
	"Palmer", "Wagner", "Black", "Robertson", "Boyd", "Rose", "Stone",
	"Salazar", "Fox", "Warren", "Mills", "Meyer", "Rice", "Schmidt",
	"Garza", "Daniels", "Ferguson", "Nichols", "Stephens", "Soto",
	"Weaver", "Ryan", "Gardner", "Payne", "Grant", "Dunn", "Kelley",
	"Spencer", "Hawkins", "Arnold", "Pierce", "Vazquez", "Hansen", "Peters",
}

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty",
	"Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven",
	"Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
	"Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George",
	"Melissa", "Timothy", "Deborah", "Ronald", "Stephanie", "Edward",
	"Rebecca", "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia",
	"Jacob", "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric",
	"Shirley", "Jonathan", "Anna", "Stephen", "Brenda", "Larry", "Pamela",
	"Justin", "Emma", "Scott", "Nicole", "Brandon", "Helen", "Benjamin",
	"Samantha", "Samuel", "Katherine", "Gregory", "Christine", "Alexander",
	"Debra", "Patrick", "Rachel", "Frank", "Carolyn", "Raymond", "Janet",
	"Jack", "Catherine", "Dennis", "Maria", "Jerry", "Heather", "Tyler",
	"Diane", "Aaron", "Ruth", "Jose", "Julie", "Adam", "Olivia", "Nathan",
	"Joyce", "Henry", "Virginia", "Douglas", "Victoria", "Zachary",
	"Kelly", "Peter", "Lauren", "Kyle", "Christina", "Ethan", "Joan",
	"Walter", "Evelyn", "Noah", "Judith", "Jeremy", "Megan", "Christian",
	"Andrea", "Keith", "Cheryl", "Roger", "Hannah", "Terry", "Jacqueline",
	"Gerald", "Martha", "Harold", "Gloria", "Sean", "Teresa", "Austin",
	"Ann", "Carl", "Sara", "Arthur", "Madison", "Lawrence", "Frances",
}

// pickSkewed selects an index in [0, n) with a rank-skewed (approximately
// Zipfian) distribution: low ranks are much more likely, giving realistic
// duplicate-heavy name columns.
func pickSkewed(rng *RNG, n int) int {
	// Inverse-CDF of a power-law-ish distribution.
	u := rng.Float64()
	i := int(float64(n) * u * u)
	if i >= n {
		i = n - 1
	}
	return i
}
