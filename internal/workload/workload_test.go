package workload

import (
	"math"
	"testing"

	"rowsort/internal/vector"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGRanges(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := rng.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	rng.Intn(0)
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	rng := NewRNG(9)
	vals := make([]int, 100)
	for i := range vals {
		vals[i] = i
	}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 100)
	for _, v := range vals {
		if seen[v] {
			t.Fatal("shuffle duplicated a value")
		}
		seen[v] = true
	}
}

func TestRandomDistribution(t *testing.T) {
	d := Dist{Name: "Random", Random: true}
	cols := d.Generate(10000, 2, 1)
	if len(cols) != 2 || len(cols[0]) != 10000 {
		t.Fatal("shape wrong")
	}
	// Virtually no duplicates.
	seen := map[uint32]bool{}
	dups := 0
	for _, v := range cols[0] {
		if seen[v] {
			dups++
		}
		seen[v] = true
	}
	if dups > 10 {
		t.Fatalf("Random distribution has %d duplicates", dups)
	}
}

func TestCorrelatedCardinality(t *testing.T) {
	d := Dist{P: 0.5}
	cols := d.Generate(20000, 3, 2)
	for c, col := range cols {
		seen := map[uint32]bool{}
		for _, v := range col {
			if v >= CorrelatedCardinality {
				t.Fatalf("col %d value %d out of domain", c, v)
			}
			seen[v] = true
		}
		if len(seen) < CorrelatedCardinality/2 {
			t.Fatalf("col %d has only %d unique values", c, len(seen))
		}
	}
}

// TestCorrelationMonotonicity checks that the conditional probability of
// equality in column c+1 given equality in column c increases with P.
func TestCorrelationMonotonicity(t *testing.T) {
	probEqual := func(p float64) float64 {
		cols := Dist{P: p}.Generate(30000, 2, 3)
		// Bucket rows by column-0 value, then measure column-1 agreement
		// between consecutive rows in the same bucket.
		byV0 := map[uint32][]uint32{}
		for i, v := range cols[0] {
			byV0[v] = append(byV0[v], cols[1][i])
		}
		eq, tot := 0, 0
		for _, vs := range byV0 {
			for i := 1; i < len(vs); i++ {
				tot++
				if vs[i] == vs[i-1] {
					eq++
				}
			}
		}
		return float64(eq) / float64(tot)
	}
	p0, p5, p1 := probEqual(0), probEqual(0.5), probEqual(1)
	if !(p0 < p5 && p5 < p1) {
		t.Fatalf("correlation not monotone: %f %f %f", p0, p5, p1)
	}
	if p1 < 0.99 {
		t.Fatalf("P=1 should give (nearly) always-equal ties, got %f", p1)
	}
	if p0 > 0.05 {
		t.Fatalf("P=0 should give ~1/128 equality, got %f", p0)
	}
}

func TestStandardDists(t *testing.T) {
	ds := StandardDists()
	if len(ds) != 6 || !ds[0].Random || ds[5].P != 1 {
		t.Fatalf("unexpected standard distributions: %+v", ds)
	}
	if ds[3].String() != "Correlated0.50" {
		t.Fatalf("String = %q", ds[3].String())
	}
	if (Dist{Random: true}).String() != "Random" {
		t.Fatal("unnamed Random String broken")
	}
	if (Dist{P: 0.25}).String() != "Correlated0.25" {
		t.Fatal("unnamed Correlated String broken")
	}
}

func TestShuffledInt32s(t *testing.T) {
	vals := ShuffledInt32s(5000, 4)
	seen := make([]bool, 5000)
	for _, v := range vals {
		if v < 0 || int(v) >= 5000 || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	// Should not be sorted.
	sorted := true
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("shuffle left data sorted")
	}
}

func TestUniformFloat32s(t *testing.T) {
	vals := UniformFloat32s(10000, 5)
	var minV, maxV float32 = math.MaxFloat32, -math.MaxFloat32
	for _, v := range vals {
		if v < -1e9 || v > 1e9 {
			t.Fatalf("out of range: %f", v)
		}
		minV = min(minV, v)
		maxV = max(maxV, v)
	}
	if minV > -1e8 || maxV < 1e8 {
		t.Fatalf("suspiciously narrow range: [%f, %f]", minV, maxV)
	}
}

func TestTableIVCardinalities(t *testing.T) {
	if CatalogSalesRows(10) != 14_401_261 {
		t.Fatal("catalog_sales SF10 wrong")
	}
	if CatalogSalesRows(100) != 143_997_065 {
		t.Fatal("catalog_sales SF100 wrong")
	}
	if CustomerRows(100) != 2_000_000 || CustomerRows(300) != 5_000_000 {
		t.Fatal("customer cardinalities wrong")
	}
	if CatalogSalesRows(2) != 2*1_441_548 {
		t.Fatal("catalog_sales fallback wrong")
	}
	if CustomerRows(25) >= CustomerRows(100) {
		t.Fatal("customer fallback should be sublinear")
	}
}

func TestCatalogSalesGenerator(t *testing.T) {
	tbl := CatalogSales(5000, 10, 6)
	if tbl.NumRows() != 5000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if len(tbl.Schema) != 5 || tbl.Schema.IndexOf("cs_quantity") != 3 {
		t.Fatal("schema wrong")
	}
	// Domains: quantity 1..100, ship mode 1..20; FK columns have some NULLs.
	qty := tbl.Column(3)
	nulls := 0
	for i := 0; i < qty.Len(); i++ {
		v := qty.Value(i)
		if v == nil {
			t.Fatal("quantity should not be NULL")
		}
		if x := v.(int32); x < 1 || x > 100 {
			t.Fatalf("quantity out of domain: %d", x)
		}
	}
	wh := tbl.Column(0)
	for i := 0; i < wh.Len(); i++ {
		v := wh.Value(i)
		if v == nil {
			nulls++
			continue
		}
		if x := v.(int32); x < 1 || x > 10 {
			t.Fatalf("warehouse_sk out of domain at SF10: %d", x)
		}
	}
	if nulls == 0 || nulls > 5000/5 {
		t.Fatalf("unexpected FK null count: %d", nulls)
	}
	// Deterministic in seed.
	tbl2 := CatalogSales(5000, 10, 6)
	for i := 0; i < 100; i++ {
		if tbl.Column(2).Value(i) != tbl2.Column(2).Value(i) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestCustomerGenerator(t *testing.T) {
	tbl := Customer(4000, 8)
	if tbl.NumRows() != 4000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	sk := tbl.Column(0)
	for i := 0; i < 100; i++ {
		if sk.Value(i).(int32) != int32(i+1) {
			t.Fatal("c_customer_sk should be sequential")
		}
	}
	year := tbl.Column(1)
	last := tbl.Column(4)
	lastSeen := map[string]int{}
	for i := 0; i < 4000; i++ {
		if v := year.Value(i); v != nil {
			if y := v.(int32); y < 1924 || y > 1992 {
				t.Fatalf("birth year out of range: %d", y)
			}
		}
		if v := last.Value(i); v != nil {
			lastSeen[v.(string)]++
		}
	}
	if len(lastSeen) < 20 {
		t.Fatalf("too few distinct last names: %d", len(lastSeen))
	}
	// Skew: the most common name should be much more frequent than uniform.
	maxCount := 0
	for _, c := range lastSeen {
		maxCount = max(maxCount, c)
	}
	if maxCount < 2*4000/len(lastNames) {
		t.Fatalf("name selection does not look skewed: max %d", maxCount)
	}
}

func TestUintColumnsTable(t *testing.T) {
	cols := Dist{Random: true}.Generate(3000, 3, 9)
	tbl := UintColumnsTable(cols)
	if tbl.NumRows() != 3000 || len(tbl.Schema) != 3 {
		t.Fatal("shape wrong")
	}
	if tbl.Schema[1].Name != "k1" || tbl.Schema[1].Type != vector.Uint32 {
		t.Fatal("schema wrong")
	}
	if len(tbl.Chunks) != 2 {
		t.Fatalf("expected 2 chunks of 2048, got %d", len(tbl.Chunks))
	}
	got := tbl.Column(2)
	for i := 0; i < 3000; i += 97 {
		if got.Value(i).(uint32) != cols[2][i] {
			t.Fatal("values wrong")
		}
	}
}

func TestGeneratePanicsOnNoCols(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist{Random: true}.Generate(10, 0, 1)
}
