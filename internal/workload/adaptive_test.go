package workload

import "testing"

// int64Keys extracts column 0 as int64 values.
func int64Keys(t *testing.T, n int, col interface{ Value(int) any }) []int64 {
	t.Helper()
	out := make([]int64, n)
	for i := range out {
		out[i] = col.Value(i).(int64)
	}
	return out
}

// orderStats returns the fraction of adjacent pairs in order and the
// fraction of sampled global index pairs in order.
func orderStats(keys []int64) (local, global float64) {
	n := len(keys)
	inOrder := 0
	for i := 1; i < n; i++ {
		if keys[i-1] <= keys[i] {
			inOrder++
		}
	}
	local = float64(inOrder) / float64(n-1)
	rng := NewRNG(99)
	pairs, sorted := 0, 0
	for k := 0; k < 4096; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		pairs++
		if keys[i] <= keys[j] {
			sorted++
		}
	}
	global = float64(sorted) / float64(pairs)
	return local, global
}

func TestNearlySortedDisorderDial(t *testing.T) {
	const n = 20_000
	sorted := NearlySorted(n, 0, 11)
	if sorted.NumRows() != n {
		t.Fatalf("rows = %d, want %d", sorted.NumRows(), n)
	}
	keys := int64Keys(t, n, sorted.Column(0))
	if local, _ := orderStats(keys); local != 1 {
		t.Fatalf("disorder 0 produced unsorted output: local %.3f", local)
	}

	mild := int64Keys(t, n, NearlySorted(n, 0.001, 11).Column(0))
	local, global := orderStats(mild)
	if local < 0.99 || global < 0.99 {
		t.Fatalf("disorder 0.001 too disordered: local %.3f global %.3f", local, global)
	}
	if l, _ := orderStats(mild); l == 1 {
		t.Fatal("disorder 0.001 produced fully sorted output")
	}

	wild := int64Keys(t, n, NearlySorted(n, 1, 11).Column(0))
	if local, _ := orderStats(wild); local > 0.7 {
		t.Fatalf("disorder 1 still looks sorted: local %.3f", local)
	}
}

func TestNearlySortedIsPermutation(t *testing.T) {
	const n = 5_000
	keys := int64Keys(t, n, NearlySorted(n, 0.3, 12).Column(0))
	seen := make([]bool, n)
	for _, k := range keys {
		if k < 0 || k >= n || seen[k] {
			t.Fatalf("key %d out of range or repeated", k)
		}
		seen[k] = true
	}
}

func TestSawtoothDefeatsLocalEstimators(t *testing.T) {
	const n, period = 20_000, 500
	tbl := SawtoothRuns(n, period, 13)
	if tbl.NumRows() != n {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), n)
	}
	keys := int64Keys(t, n, tbl.Column(0))
	// Each tooth strictly ascends.
	for i := 1; i < n; i++ {
		if i%period != 0 && keys[i-1] >= keys[i] {
			t.Fatalf("tooth not ascending at %d: %d >= %d", i, keys[i-1], keys[i])
		}
	}
	local, global := orderStats(keys)
	if local < 0.99 {
		t.Fatalf("sawtooth should look locally sorted: %.3f", local)
	}
	if global > 0.75 {
		t.Fatalf("sawtooth should be globally shuffled: %.3f", global)
	}
}

func TestAdaptiveWorkloadPayloadsAreDeterministic(t *testing.T) {
	a := NearlySorted(3_000, 0.1, 14)
	b := NearlySorted(3_000, 0.1, 14)
	ka, va := a.Column(0), a.Column(1)
	kb, vb := b.Column(0), b.Column(1)
	for i := 0; i < a.NumRows(); i++ {
		if ka.Value(i) != kb.Value(i) || va.Value(i) != vb.Value(i) {
			t.Fatalf("row %d not reproducible", i)
		}
		if va.Value(i).(int64) != mixPayload(uint64(ka.Value(i).(int64))) {
			t.Fatalf("row %d payload not a function of key", i)
		}
	}
}
