package workload

import (
	"math"

	"rowsort/internal/vector"
)

// Table IV of the paper reports TPC-DS cardinalities. These are the
// specification's row counts for the tables and scale factors the paper
// benchmarks.
var (
	catalogSalesRows = map[int]int{
		1:   1_441_548,
		10:  14_401_261,
		100: 143_997_065,
		300: 431_969_836,
	}
	customerRows = map[int]int{
		1:   100_000,
		10:  500_000,
		100: 2_000_000,
		300: 5_000_000,
	}
)

// CatalogSalesRows returns the TPC-DS catalog_sales row count at the given
// scale factor, interpolating linearly for unlisted factors.
func CatalogSalesRows(sf int) int {
	if n, ok := catalogSalesRows[sf]; ok {
		return n
	}
	return catalogSalesRows[1] * sf
}

// CustomerRows returns the TPC-DS customer row count at the given scale
// factor. Unlisted factors scale with sqrt(sf) relative to SF100, roughly
// matching the spec's sublinear dimension growth.
func CustomerRows(sf int) int {
	if n, ok := customerRows[sf]; ok {
		return n
	}
	return int(float64(customerRows[100]) * math.Sqrt(float64(sf)/100))
}

// fkNullRate approximates TPC-DS's NULL rate in fact-table foreign keys.
const fkNullRate = 0.04

// CatalogSalesSchema is the schema of the generated catalog_sales slice:
// the four sort keys of the Figure 13 benchmark plus the selected payload
// column cs_item_sk.
var CatalogSalesSchema = vector.Schema{
	{Name: "cs_warehouse_sk", Type: vector.Int32},
	{Name: "cs_ship_mode_sk", Type: vector.Int32},
	{Name: "cs_promo_sk", Type: vector.Int32},
	{Name: "cs_quantity", Type: vector.Int32},
	{Name: "cs_item_sk", Type: vector.Int32},
}

// CatalogSales generates n rows of the catalog_sales columns used by the
// Figure 13 benchmark, with domain sizes matching TPC-DS at scale factor sf:
// a handful of warehouses, 20 ship modes, a few hundred promotions and
// quantities 1..100 — all low-cardinality keys producing many ties.
func CatalogSales(n, sf int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	warehouses := 5 + 5*ilog10(sf)   // 5 at SF1, 10 at SF10, 15 at SF100
	promos := 300 * (1 + ilog10(sf)) // grows slowly with SF
	items := 18_000 * (1 + 5*ilog10(sf))

	t := vector.NewTable(CatalogSalesSchema)
	appendRows(t, n, func(c *vector.Chunk) {
		appendFK(c.Vectors[0], rng, warehouses)
		appendFK(c.Vectors[1], rng, 20)
		appendFK(c.Vectors[2], rng, promos)
		c.Vectors[3].AppendInt32(int32(1 + rng.Intn(100)))
		c.Vectors[4].AppendInt32(int32(1 + rng.Intn(items)))
	})
	return t
}

// appendFK appends a foreign-key value in [1, domain] or NULL at the
// TPC-DS-like rate.
func appendFK(v *vector.Vector, rng *RNG, domain int) {
	if rng.Float64() < fkNullRate {
		v.AppendNull()
		return
	}
	v.AppendInt32(int32(1 + rng.Intn(domain)))
}

// CustomerSchema is the schema of the generated customer slice: the integer
// and string sort keys of the Figure 14 benchmark plus the selected payload
// column c_customer_sk.
var CustomerSchema = vector.Schema{
	{Name: "c_customer_sk", Type: vector.Int32},
	{Name: "c_birth_year", Type: vector.Int32},
	{Name: "c_birth_month", Type: vector.Int32},
	{Name: "c_birth_day", Type: vector.Int32},
	{Name: "c_last_name", Type: vector.Varchar},
	{Name: "c_first_name", Type: vector.Varchar},
}

// Customer generates n rows of the customer columns used by the Figure 14
// benchmark: birth dates as integers (1924..1992, ~3% NULL) and names drawn
// skewed from fixed pools, duplicating heavily like TPC-DS's name columns.
func Customer(n int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	sk := int32(0)
	t := vector.NewTable(CustomerSchema)
	appendRows(t, n, func(c *vector.Chunk) {
		sk++
		c.Vectors[0].AppendInt32(sk)
		if rng.Float64() < 0.03 {
			c.Vectors[1].AppendNull()
			c.Vectors[2].AppendNull()
			c.Vectors[3].AppendNull()
		} else {
			c.Vectors[1].AppendInt32(int32(1924 + rng.Intn(69)))
			c.Vectors[2].AppendInt32(int32(1 + rng.Intn(12)))
			c.Vectors[3].AppendInt32(int32(1 + rng.Intn(28)))
		}
		if rng.Float64() < 0.03 {
			c.Vectors[4].AppendNull()
		} else {
			c.Vectors[4].AppendString(lastNames[pickSkewed(rng, len(lastNames))])
		}
		if rng.Float64() < 0.03 {
			c.Vectors[5].AppendNull()
		} else {
			c.Vectors[5].AppendString(firstNames[pickSkewed(rng, len(firstNames))])
		}
	})
	return t
}

// appendRows fills the table with n rows, vector.DefaultVectorSize rows per
// chunk, calling appendRow once per row on the current chunk.
func appendRows(t *vector.Table, n int, appendRow func(c *vector.Chunk)) {
	for done := 0; done < n; {
		count := min(vector.DefaultVectorSize, n-done)
		c := vector.NewChunk(t.Schema, count)
		for r := 0; r < count; r++ {
			appendRow(c)
		}
		// The chunk is built by our own appender; a schema mismatch here is
		// a bug, so the error is impossible by construction.
		if err := t.AppendChunk(c); err != nil {
			panic(err)
		}
		done += count
	}
}

// UintColumnsTable wraps micro-benchmark key columns as a chunked table of
// UINTEGER columns named k0..k{cols-1}.
func UintColumnsTable(cols [][]uint32) *vector.Table {
	schema := make(vector.Schema, len(cols))
	for i := range schema {
		schema[i] = vector.Column{Name: keyName(i), Type: vector.Uint32}
	}
	t := vector.NewTable(schema)
	n := len(cols[0])
	for start := 0; start < n; start += vector.DefaultVectorSize {
		count := min(vector.DefaultVectorSize, n-start)
		c := vector.NewChunk(schema, count)
		for ci, col := range cols {
			for r := 0; r < count; r++ {
				c.Vectors[ci].AppendUint32(col[start+r])
			}
		}
		if err := t.AppendChunk(c); err != nil {
			panic(err)
		}
	}
	return t
}

func keyName(i int) string { return "k" + string(rune('0'+i)) }

func ilog10(x int) int {
	n := 0
	for x >= 10 {
		x /= 10
		n++
	}
	return n
}
