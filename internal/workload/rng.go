// Package workload generates the benchmark data of the paper: the
// micro-benchmark distributions of Section III-A (Random and CorrelatedP
// columns of unsigned 32-bit integers), the end-to-end workloads of Section
// VII-B (shuffled integers and uniform floats), and TPC-DS-like
// catalog_sales and customer tables for the multi-key and string
// benchmarks. All generation is deterministic in a caller-supplied seed.
package workload

// RNG is a small deterministic pseudo-random generator (splitmix64). It is
// implemented here rather than borrowed from math/rand so generated
// workloads stay bit-identical across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Shuffle permutes the first n elements with the given swap function
// (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
