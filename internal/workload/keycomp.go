package workload

import (
	"fmt"

	"rowsort/internal/vector"
)

// Key-compression workloads: each generator stresses one compressed
// normalized-key encoding (dictionary, duplicate-run grouping, prefix
// truncation) plus a uniform high-cardinality control where compression
// must decline. Payload columns are deterministic functions of the key
// value, so two sorts that order equal keys differently still produce
// byte-identical tables — the property the keycomp equivalence tests and
// the `sortbench -exp keycomp` ablation both rely on.

// KeyCompStringSchema is the schema of the string-keyed generators:
// a Varchar key and an Int64 payload derived from it.
var KeyCompStringSchema = vector.Schema{
	{Name: "k", Type: vector.Varchar},
	{Name: "v", Type: vector.Int64},
}

// KeyCompIntSchema is the schema of the integer-keyed generators:
// an Int64 key and an Int64 payload derived from it.
var KeyCompIntSchema = vector.Schema{
	{Name: "k", Type: vector.Int64},
	{Name: "v", Type: vector.Int64},
}

// mixPayload maps a key's ordinal to its payload value: an invertible
// multiply-xorshift so the payload looks arbitrary but is a pure function
// of the key.
func mixPayload(x uint64) int64 {
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int64(x)
}

// LowCardStrings generates n rows keyed by card distinct strings drawn
// uniformly — the dictionary-encoding sweet spot. The values share a
// common prefix and differ only in their numeric suffix, so the full
// normalized prefix wastes most of its bytes; a sampled dictionary
// collapses each value to one code byte (two when card is large).
func LowCardStrings(n, card int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	pool := make([]string, card)
	for i := range pool {
		pool[i] = fmt.Sprintf("warehouse-%04d", i)
	}
	t := vector.NewTable(KeyCompStringSchema)
	appendRows(t, n, func(c *vector.Chunk) {
		j := rng.Intn(card)
		c.Vectors[0].AppendString(pool[j])
		c.Vectors[1].AppendInt64(mixPayload(uint64(j)))
	})
	return t
}

// DupHeavyInts generates n rows keyed by Int64 values in [0, domain),
// emitted in runs of 4..64 equal keys — the shape of data clustered by an
// upstream operator (a previous sort, a time-ordered status column) and
// the duplicate-run sweet spot. The unsorted input already consists of
// adjacent byte-equal groups, so RLE group sorting moves each group
// through the radix sort once, and after sorting the merge's
// duplicate-run fast path skips most comparisons.
func DupHeavyInts(n, domain int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	t := vector.NewTable(KeyCompIntSchema)
	k, left := 0, 0
	appendRows(t, n, func(c *vector.Chunk) {
		if left == 0 {
			k = rng.Intn(domain)
			left = 4 + rng.Intn(61)
		}
		left--
		c.Vectors[0].AppendInt64(int64(k))
		c.Vectors[1].AppendInt64(mixPayload(uint64(k)))
	})
	return t
}

// SharedPrefixStrings generates n rows keyed by URL-like strings with a
// long constant prefix and a high-cardinality numeric tail — the
// prefix-truncation sweet spot. The default normalized prefix is consumed
// entirely by the shared prefix (every key ties, forcing the tie-break);
// shared-prefix elision spends one class byte and keeps the
// discriminating tail instead. Keys spread over a million ids via a
// coprime stride so every leading digit occurs.
func SharedPrefixStrings(n int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	t := vector.NewTable(KeyCompStringSchema)
	appendRows(t, n, func(c *vector.Chunk) {
		id := (rng.Intn(1_000_000) * 7919) % 1_000_000
		c.Vectors[0].AppendString(fmt.Sprintf("https://shop.example.com/item/%06d", id))
		c.Vectors[1].AppendInt64(mixPayload(uint64(id)))
	})
	return t
}

// UniformInt64s generates n rows keyed by uniform 64-bit integers — the
// control arm. Nearly every byte discriminates and cardinality is ~n, so
// dictionary and truncation must decline (or shave at most the sampled
// margin) and duplicate-run grouping finds nothing: compressed arms must
// match the uncompressed sort's wall time within noise.
func UniformInt64s(n int, seed uint64) *vector.Table {
	rng := NewRNG(seed)
	t := vector.NewTable(KeyCompIntSchema)
	appendRows(t, n, func(c *vector.Chunk) {
		k := rng.Uint64()
		c.Vectors[0].AppendInt64(int64(k))
		c.Vectors[1].AppendInt64(mixPayload(k))
	})
	return t
}
