// Package row implements the row (NSM) data format the sort operator
// converts to and from (Figure 1 of the paper): fixed-width, 8-byte-aligned
// rows holding all columns of a tuple contiguously, with variable-sized
// strings stored in a separate heap and referenced by (offset, length).
//
// Sorting is inherently row-wise: comparing and moving tuples touches every
// key column of a row, so co-locating a tuple's values turns the random
// access of a columnar layout into sequential access. The conversions are
// performed one vector at a time, amortizing interpretation overhead.
package row

import (
	"fmt"

	"rowsort/internal/vector"
)

// DefaultAlignment is the row-width alignment. The paper found 8-byte
// alignment to improve copy performance; the ablation benchmark measures
// the alternative.
const DefaultAlignment = 8

// Layout describes the physical layout of one row: a leading validity
// bitmask (one bit per column), followed by each column's fixed-width slot,
// padded to the alignment.
type Layout struct {
	types     []vector.Type
	offsets   []int
	maskBytes int
	width     int
	maskInit  []byte // all-columns-valid mask; padding bits are zero
}

// NewLayout computes the row layout for the given column types with the
// default alignment.
func NewLayout(types []vector.Type) *Layout {
	return NewLayoutAligned(types, DefaultAlignment)
}

// NewLayoutAligned computes a layout whose row width is padded to a
// multiple of align (align must be a power of two; 1 disables padding).
func NewLayoutAligned(types []vector.Type, align int) *Layout {
	if align <= 0 || align&(align-1) != 0 {
		panic("row: alignment must be a positive power of two")
	}
	l := &Layout{
		types:     append([]vector.Type(nil), types...),
		maskBytes: (len(types) + 7) / 8,
	}
	off := l.maskBytes
	for _, t := range types {
		if !t.IsValid() {
			panic(fmt.Sprintf("row: invalid column type %v", t))
		}
		l.offsets = append(l.offsets, off)
		off += t.Width()
	}
	l.width = (off + align - 1) &^ (align - 1)
	l.maskInit = make([]byte, l.maskBytes)
	for c := range types {
		l.maskInit[c>>3] |= 1 << (uint(c) & 7)
	}
	return l
}

// Width returns the aligned row width in bytes.
func (l *Layout) Width() int { return l.width }

// NumColumns returns the number of columns in the layout.
func (l *Layout) NumColumns() int { return len(l.types) }

// Types returns the column types.
func (l *Layout) Types() []vector.Type { return l.types }

// Offset returns the byte offset of column c within a row.
func (l *Layout) Offset(c int) int { return l.offsets[c] }

// valid reports whether column c of the given row is non-NULL.
func (l *Layout) valid(row []byte, c int) bool {
	return row[c>>3]&(1<<(uint(c)&7)) != 0
}

// setValid marks column c of the row valid (v=true) or NULL.
func (l *Layout) setValid(row []byte, c int, v bool) {
	if v {
		row[c>>3] |= 1 << (uint(c) & 7)
	} else {
		row[c>>3] &^= 1 << (uint(c) & 7)
	}
}
