package row

import (
	"testing"

	"rowsort/internal/mem"
	"rowsort/internal/vector"
)

func TestSetPoolAccountsCapacity(t *testing.T) {
	b := mem.NewBroker("test", 1<<20)
	res := b.Reserve("pool", 0)
	defer res.Release()
	layout := NewLayout([]vector.Type{vector.Int64, vector.Varchar})
	p := NewSetPool(layout, res)

	rs := p.Get()
	if rs == nil {
		t.Fatal("Get returned nil from a non-nil pool")
	}
	v := vector.NewDense(vector.Int64, 8)
	sv := vector.NewDense(vector.Varchar, 8)
	for i := 0; i < 8; i++ {
		v.Int64s()[i] = int64(i)
		sv.Strings()[i] = "some string payload"
	}
	if err := rs.AppendChunk([]*vector.Vector{v, sv}); err != nil {
		t.Fatal(err)
	}
	capBytes := rs.CapBytes()
	if capBytes <= 0 {
		t.Fatal("CapBytes of a filled set is zero")
	}

	p.Put(rs)
	if got := res.Bytes(); got != capBytes {
		t.Fatalf("pooled capacity accounted %d bytes, want %d", got, capBytes)
	}
	got := p.Get()
	if got != rs {
		t.Fatal("pool did not recycle the set")
	}
	if got.Len() != 0 {
		t.Fatal("recycled set not reset")
	}
	if res.Bytes() != 0 {
		t.Fatalf("reservation holds %d bytes after Get, want 0", res.Bytes())
	}
}

func TestSetPoolDropsUnderPressure(t *testing.T) {
	b := mem.NewBroker("test", 64) // tiny: retaining any real buffer overflows
	res := b.Reserve("pool", 0)
	defer res.Release()
	other := b.Reserve("hog", 60)
	defer other.Release()
	layout := NewLayout([]vector.Type{vector.Int64})
	p := NewSetPool(layout, res)

	rs := NewRowSet(layout)
	v := vector.NewDense(vector.Int64, 64)
	for i := 0; i < 64; i++ {
		v.Int64s()[i] = int64(i)
	}
	if err := rs.AppendChunk([]*vector.Vector{v}); err != nil {
		t.Fatal(err)
	}
	p.Put(rs)
	if got := res.Bytes(); got != 0 {
		t.Fatalf("pressure-dropped set left %d bytes accounted", got)
	}
	if got := p.Get(); got == rs {
		t.Fatal("pool retained a set it should have dropped under pressure")
	}
}

func TestBufPoolAccounting(t *testing.T) {
	b := mem.NewBroker("test", 1<<20)
	res := b.Reserve("pool", 0)
	defer res.Release()
	p := NewBufPool(res)
	buf := append(p.Get(), make([]byte, 1024)...)
	p.Put(buf)
	if got := res.Bytes(); got != int64(cap(buf)) {
		t.Fatalf("pooled buffer accounted %d bytes, want %d", got, cap(buf))
	}
	got := p.Get()
	if cap(got) != cap(buf) || len(got) != 0 {
		t.Fatalf("recycled buffer cap=%d len=%d, want cap=%d len=0", cap(got), len(got), cap(buf))
	}
	if res.Bytes() != 0 {
		t.Fatalf("reservation holds %d bytes after Get, want 0", res.Bytes())
	}
}

func TestNilPools(t *testing.T) {
	var sp *SetPool
	var bp *BufPool
	if sp.Get() != nil {
		t.Fatal("nil SetPool.Get returned a set")
	}
	sp.Put(NewRowSet(NewLayout([]vector.Type{vector.Int32})))
	if bp.Get() != nil {
		t.Fatal("nil BufPool.Get returned a buffer")
	}
	bp.Put(make([]byte, 4))
}
