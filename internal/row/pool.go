package row

import (
	"sync"

	"rowsort/internal/mem"
)

// Pooled allocation routed through the memory broker: the sorter's hot
// buffers (key rows and payload RowSets released by flushed, spilled and
// merged runs) are recycled through these pools, and the capacity a pool
// holds on to is charged against a mem.Reservation. That keeps idle pool
// memory visible to the budget — and gives the pool its degradation
// policy for free: when retaining a buffer would push the broker over
// budget, the pool drops it for the garbage collector instead of keeping
// it warm.

// SetPool recycles RowSets of one layout. The zero value is unusable;
// construct with NewSetPool. A nil *SetPool is a valid no-op source that
// always allocates fresh sets (and discards returned ones).
type SetPool struct {
	layout *Layout
	res    *mem.Reservation
	pool   sync.Pool
}

// NewSetPool returns a pool producing RowSets with the given layout. res
// (which may be nil for unaccounted pooling) is charged with the capacity
// of every idle set the pool holds.
func NewSetPool(layout *Layout, res *mem.Reservation) *SetPool {
	return &SetPool{layout: layout, res: res}
}

// Get returns an empty RowSet, recycled when one is pooled.
func (p *SetPool) Get() *RowSet {
	if p == nil {
		return nil
	}
	if rs, ok := p.pool.Get().(*RowSet); ok {
		p.res.Shrink(rs.CapBytes())
		return rs
	}
	return NewRowSet(p.layout)
}

// Put recycles a set whose contents are dead. Under budget pressure the
// set is dropped instead of pooled, returning its capacity to the GC.
func (p *SetPool) Put(rs *RowSet) {
	if p == nil || rs == nil {
		return
	}
	rs.Reset()
	c := rs.CapBytes()
	if !p.res.Grow(c) {
		p.res.Shrink(c)
		return
	}
	p.pool.Put(rs)
}

// BufPool recycles byte buffers (the sorter's key-row buffers) with the
// same accounting and pressure policy as SetPool. A nil *BufPool always
// allocates and never retains.
type BufPool struct {
	res  *mem.Reservation
	pool sync.Pool
}

// NewBufPool returns a buffer pool charging res (may be nil) with the
// capacity of every idle buffer it holds.
func NewBufPool(res *mem.Reservation) *BufPool {
	return &BufPool{res: res}
}

// Get returns an empty (length-0) buffer, recycled when one is pooled.
func (p *BufPool) Get() []byte {
	if p == nil {
		return nil
	}
	if b, ok := p.pool.Get().(*[]byte); ok {
		p.res.Shrink(int64(cap(*b)))
		return (*b)[:0]
	}
	return nil
}

// Put recycles a buffer whose contents are dead; under budget pressure it
// is dropped instead.
func (p *BufPool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := int64(cap(b))
	if !p.res.Grow(c) {
		p.res.Shrink(c)
		return
	}
	b = b[:0]
	p.pool.Put(&b)
}
