package row

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rowsort/internal/vector"
)

var allTypes = []vector.Type{
	vector.Bool, vector.Int8, vector.Int16, vector.Int32, vector.Int64,
	vector.Uint8, vector.Uint16, vector.Uint32, vector.Uint64,
	vector.Float32, vector.Float64, vector.Varchar,
}

func TestLayoutWidthsAndAlignment(t *testing.T) {
	l := NewLayout([]vector.Type{vector.Int32, vector.Int8})
	// 1 mask byte + 4 + 1 = 6, aligned to 8.
	if l.Width() != 8 {
		t.Fatalf("Width = %d, want 8", l.Width())
	}
	if l.Offset(0) != 1 || l.Offset(1) != 5 {
		t.Fatalf("offsets: %d %d", l.Offset(0), l.Offset(1))
	}
	unaligned := NewLayoutAligned([]vector.Type{vector.Int32, vector.Int8}, 1)
	if unaligned.Width() != 6 {
		t.Fatalf("unaligned Width = %d, want 6", unaligned.Width())
	}
	if l.NumColumns() != 2 || len(l.Types()) != 2 {
		t.Fatal("column accessors broken")
	}
}

func TestLayoutManyColumnsMask(t *testing.T) {
	types := make([]vector.Type, 17) // needs 3 mask bytes
	for i := range types {
		types[i] = vector.Int8
	}
	l := NewLayoutAligned(types, 1)
	if l.maskBytes != 3 {
		t.Fatalf("maskBytes = %d, want 3", l.maskBytes)
	}
	if l.Width() != 3+17 {
		t.Fatalf("Width = %d", l.Width())
	}
}

func TestLayoutPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewLayoutAligned([]vector.Type{vector.Int32}, 3) })
	mustPanic(func() { NewLayoutAligned([]vector.Type{vector.Int32}, 0) })
	mustPanic(func() { NewLayout([]vector.Type{vector.Invalid}) })
}

// buildRandomChunk builds one vector per type in types with n rows.
func buildRandomChunk(types []vector.Type, n int, nullRate float64, rng *rand.Rand) []*vector.Vector {
	vecs := make([]*vector.Vector, len(types))
	for c, typ := range types {
		v := vector.New(typ, n)
		for r := 0; r < n; r++ {
			if rng.Float64() < nullRate {
				v.AppendNull()
				continue
			}
			switch typ {
			case vector.Bool:
				v.AppendBool(rng.Intn(2) == 1)
			case vector.Int8:
				v.AppendInt8(int8(rng.Uint32()))
			case vector.Int16:
				v.AppendInt16(int16(rng.Uint32()))
			case vector.Int32:
				v.AppendInt32(int32(rng.Uint32()))
			case vector.Int64:
				v.AppendInt64(int64(rng.Uint64()))
			case vector.Uint8:
				v.AppendUint8(uint8(rng.Uint32()))
			case vector.Uint16:
				v.AppendUint16(uint16(rng.Uint32()))
			case vector.Uint32:
				v.AppendUint32(rng.Uint32())
			case vector.Uint64:
				v.AppendUint64(rng.Uint64())
			case vector.Float32:
				v.AppendFloat32(rng.Float32() * 100)
			case vector.Float64:
				v.AppendFloat64(rng.Float64() * 100)
			case vector.Varchar:
				b := make([]byte, rng.Intn(20))
				for i := range b {
					b[i] = byte('a' + rng.Intn(26))
				}
				v.AppendString(string(b))
			}
		}
		vecs[c] = v
	}
	return vecs
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	layout := NewLayout(allTypes)
	rs := NewRowSet(layout)

	var chunks [][]*vector.Vector
	total := 0
	for _, n := range []int{7, 100, 1} {
		c := buildRandomChunk(allTypes, n, 0.2, rng)
		chunks = append(chunks, c)
		if err := rs.AppendChunk(c); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if rs.Len() != total {
		t.Fatalf("Len = %d, want %d", rs.Len(), total)
	}

	got := rs.GatherChunk(0, total)
	r := 0
	for _, chunk := range chunks {
		for i := 0; i < chunk[0].Len(); i++ {
			for c := range allTypes {
				want := chunk[c].Value(i)
				have := got[c].Value(r)
				if want != have {
					t.Fatalf("row %d col %d (%v): got %v, want %v", r, c, allTypes[c], have, want)
				}
			}
			r++
		}
	}
}

func TestGatherIndexedPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	types := []vector.Type{vector.Int32, vector.Varchar}
	layout := NewLayout(types)
	rs := NewRowSet(layout)
	chunk := buildRandomChunk(types, 50, 0.1, rng)
	if err := rs.AppendChunk(chunk); err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(50)
	got := rs.GatherIndexed(perm)
	for out, in := range perm {
		for c := range types {
			if chunk[c].Value(in) != got[c].Value(out) {
				t.Fatalf("perm gather wrong at out=%d in=%d col=%d", out, in, c)
			}
		}
	}
}

func TestValueAndStringAccessors(t *testing.T) {
	types := []vector.Type{vector.Varchar, vector.Float64}
	rs := NewRowSet(NewLayout(types))
	s := vector.New(vector.Varchar, 2)
	s.AppendString("hello world")
	s.AppendNull()
	f := vector.New(vector.Float64, 2)
	f.AppendFloat64(math.Pi)
	f.AppendFloat64(-1)
	if err := rs.AppendChunk([]*vector.Vector{s, f}); err != nil {
		t.Fatal(err)
	}
	if rs.String(0, 0) != "hello world" {
		t.Fatalf("String = %q", rs.String(0, 0))
	}
	if rs.Value(0, 1) != math.Pi {
		t.Fatalf("Value = %v", rs.Value(0, 1))
	}
	if rs.Value(1, 0) != nil || rs.Valid(1, 0) {
		t.Fatal("NULL string should report nil/invalid")
	}
	if rs.Value(1, 1) != float64(-1) {
		t.Fatal("float -1 wrong")
	}
}

func TestAppendChunkErrors(t *testing.T) {
	rs := NewRowSet(NewLayout([]vector.Type{vector.Int32}))
	if err := rs.AppendChunk(nil); err == nil {
		t.Fatal("wrong arity should error")
	}
	wrong := vector.New(vector.Varchar, 1)
	wrong.AppendString("x")
	if err := rs.AppendChunk([]*vector.Vector{wrong}); err == nil {
		t.Fatal("type mismatch should error")
	}
	a := vector.New(vector.Int32, 1)
	a.AppendInt32(1)
	rs2 := NewRowSet(NewLayout([]vector.Type{vector.Int32, vector.Int32}))
	b := vector.New(vector.Int32, 2)
	b.AppendInt32(1)
	b.AppendInt32(2)
	if err := rs2.AppendChunk([]*vector.Vector{a, b}); err == nil {
		t.Fatal("ragged chunk should error")
	}
	// Empty chunk is fine.
	empty := vector.New(vector.Int32, 0)
	if err := rs.AppendChunk([]*vector.Vector{empty}); err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatal("empty append should not add rows")
	}
}

func TestRowBytesLayout(t *testing.T) {
	// A single Uint32 column: row = [mask][u32][pad...]; check raw bytes.
	l := NewLayout([]vector.Type{vector.Uint32})
	rs := NewRowSet(l)
	v := vector.New(vector.Uint32, 1)
	v.AppendUint32(0x01020304)
	if err := rs.AppendChunk([]*vector.Vector{v}); err != nil {
		t.Fatal(err)
	}
	r := rs.Row(0)
	if len(r) != 8 {
		t.Fatalf("row len = %d", len(r))
	}
	if r[0] != 0x01 { // mask: col 0 valid
		t.Fatalf("mask byte = %x", r[0])
	}
	if r[1] != 0x04 || r[4] != 0x01 { // little-endian value
		t.Fatalf("value bytes = %x", r[1:5])
	}
}

func TestReserve(t *testing.T) {
	rs := NewRowSet(NewLayout([]vector.Type{vector.Int64}))
	rs.Reserve(1000)
	if cap(rs.data) < 1000*rs.layout.Width() {
		t.Fatal("Reserve did not grow capacity")
	}
	v := vector.New(vector.Int64, 1)
	v.AppendInt64(7)
	if err := rs.AppendChunk([]*vector.Vector{v}); err != nil {
		t.Fatal(err)
	}
	if rs.Value(0, 0) != int64(7) {
		t.Fatal("append after Reserve broken")
	}
}

func TestQuickRoundTripInt64(t *testing.T) {
	layout := NewLayout([]vector.Type{vector.Int64})
	f := func(vals []int64) bool {
		rs := NewRowSet(layout)
		v := vector.New(vector.Int64, len(vals))
		for _, x := range vals {
			v.AppendInt64(x)
		}
		if err := rs.AppendChunk([]*vector.Vector{v}); err != nil {
			return false
		}
		out := rs.GatherChunk(0, len(vals))
		for i, x := range vals {
			if out[0].Value(i) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
