package row

import (
	"encoding/binary"
	"fmt"
	"math"

	"rowsort/internal/vector"
)

// RowSet is a materialized collection of fixed-width rows plus a string
// heap. Rows are stored back to back in one flat buffer, so a sorted RowSet
// doubles as a sorted run for the merge phase.
type RowSet struct {
	layout *Layout
	data   []byte
	heap   []byte
	n      int
}

// NewRowSet returns an empty row set with the given layout.
func NewRowSet(layout *Layout) *RowSet {
	return &RowSet{layout: layout}
}

// Layout returns the row layout.
func (rs *RowSet) Layout() *Layout { return rs.layout }

// Len returns the number of rows.
func (rs *RowSet) Len() int { return rs.n }

// Bytes returns the flat row buffer (rows of Layout().Width() bytes).
func (rs *RowSet) Bytes() []byte { return rs.data }

// MemSize returns the bytes live in the set's buffers (fixed-width rows
// plus the string heap), the unit of the sorter's resident-memory
// accounting. Nil-safe.
func (rs *RowSet) MemSize() int {
	if rs == nil {
		return 0
	}
	return len(rs.data) + len(rs.heap)
}

// CapBytes returns the bytes the set's buffers hold on to (capacity, not
// length) — the unit of broker accounting, since a pooled or growing
// buffer occupies its full capacity regardless of how much is live.
// Nil-safe.
func (rs *RowSet) CapBytes() int64 {
	if rs == nil {
		return 0
	}
	return int64(cap(rs.data)) + int64(cap(rs.heap))
}

// Row returns row i's bytes, aliasing the underlying buffer.
func (rs *RowSet) Row(i int) []byte {
	w := rs.layout.width
	return rs.data[i*w : (i+1)*w]
}

// Reserve grows the row buffer capacity to hold at least n rows.
func (rs *RowSet) Reserve(n int) {
	need := n * rs.layout.width
	if cap(rs.data) < need {
		nd := make([]byte, len(rs.data), need)
		copy(nd, rs.data)
		rs.data = nd
	}
}

// AppendChunk scatters the chunk's vectors into rows (DSM to NSM). Vectors
// must match the layout's types in order. Conversion runs one vector at a
// time so per-column type dispatch happens once per vector, not once per
// value — the vectorized engine's way of amortizing interpretation.
func (rs *RowSet) AppendChunk(vecs []*vector.Vector) error {
	if len(vecs) != len(rs.layout.types) {
		return fmt.Errorf("row: got %d vectors for %d columns", len(vecs), len(rs.layout.types))
	}
	n := -1
	for c, v := range vecs {
		if v.Type() != rs.layout.types[c] {
			return fmt.Errorf("row: column %d is %v, layout wants %v", c, v.Type(), rs.layout.types[c])
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return fmt.Errorf("row: column %d has %d rows, want %d", c, v.Len(), n)
		}
	}
	if n == 0 {
		return nil
	}

	w := rs.layout.width
	start := rs.n
	rs.data = append(rs.data, make([]byte, n*w)...)
	// All-valid masks by default; scatterColumn clears bits for NULLs.
	for r := 0; r < n; r++ {
		copy(rs.Row(start+r), rs.layout.maskInit)
	}
	rs.n += n
	for c, v := range vecs {
		rs.scatterColumn(c, v, start)
	}
	return nil
}

// scatterColumn writes column c of n rows starting at row index start.
func (rs *RowSet) scatterColumn(c int, v *vector.Vector, start int) {
	l := rs.layout
	off := l.offsets[c]
	n := v.Len()
	switch v.Type() {
	case vector.Bool:
		vals := v.Bools()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			if vals[r] {
				row[off] = 1
			} else {
				row[off] = 0
			}
		}
	case vector.Int8:
		vals := v.Int8s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			row[off] = byte(vals[r])
		}
	case vector.Uint8:
		vals := v.Uint8s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			row[off] = vals[r]
		}
	case vector.Int16:
		vals := v.Int16s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint16(row[off:], uint16(vals[r]))
		}
	case vector.Uint16:
		vals := v.Uint16s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint16(row[off:], vals[r])
		}
	case vector.Int32:
		vals := v.Int32s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint32(row[off:], uint32(vals[r]))
		}
	case vector.Uint32:
		vals := v.Uint32s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint32(row[off:], vals[r])
		}
	case vector.Int64:
		vals := v.Int64s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint64(row[off:], uint64(vals[r]))
		}
	case vector.Uint64:
		vals := v.Uint64s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint64(row[off:], vals[r])
		}
	case vector.Float32:
		vals := v.Float32s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint32(row[off:], math.Float32bits(vals[r]))
		}
	case vector.Float64:
		vals := v.Float64s()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			binary.LittleEndian.PutUint64(row[off:], math.Float64bits(vals[r]))
		}
	case vector.Varchar:
		vals := v.Strings()
		for r := 0; r < n; r++ {
			row := rs.Row(start + r)
			if !v.Valid(r) {
				l.setValid(row, c, false)
				continue
			}
			s := vals[r]
			binary.LittleEndian.PutUint32(row[off:], uint32(len(rs.heap)))
			binary.LittleEndian.PutUint32(row[off+4:], uint32(len(s)))
			rs.heap = append(rs.heap, s...)
		}
	}
}

// String returns the string value of column c in row i. The column must be
// a valid Varchar.
func (rs *RowSet) String(i, c int) string {
	row := rs.Row(i)
	off := rs.layout.offsets[c]
	ho := binary.LittleEndian.Uint32(row[off:])
	hl := binary.LittleEndian.Uint32(row[off+4:])
	return string(rs.heap[ho : ho+hl])
}

// Valid reports whether column c of row i is non-NULL.
func (rs *RowSet) Valid(i, c int) bool { return rs.layout.valid(rs.Row(i), c) }

// Value returns column c of row i as an any (nil for NULL). For tests and
// debugging.
func (rs *RowSet) Value(i, c int) any {
	row := rs.Row(i)
	l := rs.layout
	if !l.valid(row, c) {
		return nil
	}
	off := l.offsets[c]
	switch l.types[c] {
	case vector.Bool:
		return row[off] != 0
	case vector.Int8:
		return int8(row[off])
	case vector.Uint8:
		return row[off]
	case vector.Int16:
		return int16(binary.LittleEndian.Uint16(row[off:]))
	case vector.Uint16:
		return binary.LittleEndian.Uint16(row[off:])
	case vector.Int32:
		return int32(binary.LittleEndian.Uint32(row[off:]))
	case vector.Uint32:
		return binary.LittleEndian.Uint32(row[off:])
	case vector.Int64:
		return int64(binary.LittleEndian.Uint64(row[off:]))
	case vector.Uint64:
		return binary.LittleEndian.Uint64(row[off:])
	case vector.Float32:
		return math.Float32frombits(binary.LittleEndian.Uint32(row[off:]))
	case vector.Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(row[off:]))
	case vector.Varchar:
		return rs.String(i, c)
	}
	return nil
}

// GatherChunk converts rows [start, start+count) back to vectors (NSM to
// DSM), returning one vector per column. It takes the sequential fast path:
// the typed range kernels walk the row buffer directly, with no index list
// materialized.
func (rs *RowSet) GatherChunk(start, count int) []*vector.Vector {
	return rs.GatherRange(start, count)
}

// GatherIndexed converts the rows named by indices back to vectors, in
// index order. This is how payload is retrieved in sorted order after the
// keys have been sorted: the sorted keys carry row indices, and the payload
// rows are gathered through them. Hot paths that already hold uint32
// indices should call GatherRows directly.
func (rs *RowSet) GatherIndexed(indices []int) []*vector.Vector {
	idxs := make([]uint32, len(indices))
	for i, x := range indices {
		idxs[i] = uint32(x)
	}
	return rs.GatherRows(idxs)
}
