package row

import (
	"encoding/binary"
	"math"
	"strings"

	"rowsort/internal/vector"
)

// This file holds the vectorized NSM→DSM gather kernels and the batched
// payload permute. They replace the value-at-a-time AppendTo/AppendRowFrom
// path on the sorter's hot output paths: each kernel dispatches on the
// column type once and then runs a tight loop over the rows, reading
// fixed-width values straight out of the flat row buffer. Three access
// shapes exist — contiguous ranges (sequential scans), index lists (sorted
// runs), and (set, index) references (merged output scattered across runs).

// GatherRangeColumn gathers column c of the contiguous rows
// [start, start+count) into v, a dense vector of count rows (see
// vector.NewDense). It is the sequential fast path of GatherChunk: no index
// list is materialized.
//
//rowsort:hotpath
func (rs *RowSet) GatherRangeColumn(c, start, count int, v *vector.Vector) {
	l := rs.layout
	w := l.width
	off := l.offsets[c]
	base := start * w
	switch l.types[c] {
	case vector.Bool:
		d := v.Bools()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off] != 0
		}
	case vector.Int8:
		d := v.Int8s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int8(rowb[off])
		}
	case vector.Uint8:
		d := v.Uint8s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off]
		}
	case vector.Int16:
		d := v.Int16s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int16(binary.LittleEndian.Uint16(rowb[off:]))
		}
	case vector.Uint16:
		d := v.Uint16s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint16(rowb[off:])
		}
	case vector.Int32:
		d := v.Int32s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int32(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Uint32:
		d := v.Uint32s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint32(rowb[off:])
		}
	case vector.Int64:
		d := v.Int64s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int64(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Uint64:
		d := v.Uint64s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint64(rowb[off:])
		}
	case vector.Float32:
		d := v.Float32s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float32frombits(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Float64:
		d := v.Float64s()
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float64frombits(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Varchar:
		d := v.Strings()
		total := 0
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if l.valid(rowb, c) {
				total += int(binary.LittleEndian.Uint32(rowb[off+4:]))
			}
		}
		var b strings.Builder
		b.Grow(total)
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				continue
			}
			ho := binary.LittleEndian.Uint32(rowb[off:])
			hl := binary.LittleEndian.Uint32(rowb[off+4:])
			b.Write(rs.heap[ho : ho+hl])
		}
		// One backing allocation per column; the output strings are
		// zero-copy slices of it (heap compaction in a single pass).
		big := b.String()
		pos := 0
		for o := 0; o < count; o++ {
			rowb := rs.data[base+o*w : base+o*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			hl := int(binary.LittleEndian.Uint32(rowb[off+4:]))
			d[o] = big[pos : pos+hl]
			pos += hl
		}
	}
}

// GatherColumn gathers column c of the rows named by idxs into v, a dense
// vector of len(idxs) rows. Indices may repeat and appear in any order —
// this is the payload retrieval of a sorted run, where the sorted keys
// carry the row indices.
//
//rowsort:hotpath
func (rs *RowSet) GatherColumn(c int, idxs []uint32, v *vector.Vector) {
	l := rs.layout
	w := l.width
	off := l.offsets[c]
	data := rs.data
	switch l.types[c] {
	case vector.Bool:
		d := v.Bools()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off] != 0
		}
	case vector.Int8:
		d := v.Int8s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int8(rowb[off])
		}
	case vector.Uint8:
		d := v.Uint8s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off]
		}
	case vector.Int16:
		d := v.Int16s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int16(binary.LittleEndian.Uint16(rowb[off:]))
		}
	case vector.Uint16:
		d := v.Uint16s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint16(rowb[off:])
		}
	case vector.Int32:
		d := v.Int32s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int32(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Uint32:
		d := v.Uint32s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint32(rowb[off:])
		}
	case vector.Int64:
		d := v.Int64s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int64(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Uint64:
		d := v.Uint64s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint64(rowb[off:])
		}
	case vector.Float32:
		d := v.Float32s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float32frombits(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Float64:
		d := v.Float64s()
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float64frombits(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Varchar:
		d := v.Strings()
		total := 0
		for _, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if l.valid(rowb, c) {
				total += int(binary.LittleEndian.Uint32(rowb[off+4:]))
			}
		}
		var b strings.Builder
		b.Grow(total)
		for _, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				continue
			}
			ho := binary.LittleEndian.Uint32(rowb[off:])
			hl := binary.LittleEndian.Uint32(rowb[off+4:])
			b.Write(rs.heap[ho : ho+hl])
		}
		big := b.String()
		pos := 0
		for o, i := range idxs {
			rowb := data[int(i)*w : int(i)*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			hl := int(binary.LittleEndian.Uint32(rowb[off+4:]))
			d[o] = big[pos : pos+hl]
			pos += hl
		}
	}
}

// GatherRefsColumn gathers column c of the rows named by (which[i],
// idxs[i]) — row idxs[i] of sets[which[i]] — into v, a dense vector of
// len(idxs) rows. All sets must share one layout; entries of sets never
// referenced by which may be nil. This is the merged-output gather: after
// the cascaded merge, consecutive output rows reference payload scattered
// across the sorted runs.
//
//rowsort:hotpath
func GatherRefsColumn(sets []*RowSet, which, idxs []uint32, c int, v *vector.Vector) {
	if len(idxs) == 0 {
		return
	}
	l := sets[which[0]].layout
	w := l.width
	off := l.offsets[c]
	switch l.types[c] {
	case vector.Bool:
		d := v.Bools()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off] != 0
		}
	case vector.Int8:
		d := v.Int8s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int8(rowb[off])
		}
	case vector.Uint8:
		d := v.Uint8s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = rowb[off]
		}
	case vector.Int16:
		d := v.Int16s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int16(binary.LittleEndian.Uint16(rowb[off:]))
		}
	case vector.Uint16:
		d := v.Uint16s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint16(rowb[off:])
		}
	case vector.Int32:
		d := v.Int32s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int32(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Uint32:
		d := v.Uint32s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint32(rowb[off:])
		}
	case vector.Int64:
		d := v.Int64s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = int64(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Uint64:
		d := v.Uint64s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = binary.LittleEndian.Uint64(rowb[off:])
		}
	case vector.Float32:
		d := v.Float32s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float32frombits(binary.LittleEndian.Uint32(rowb[off:]))
		}
	case vector.Float64:
		d := v.Float64s()
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			d[o] = math.Float64frombits(binary.LittleEndian.Uint64(rowb[off:]))
		}
	case vector.Varchar:
		d := v.Strings()
		total := 0
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if l.valid(rowb, c) {
				total += int(binary.LittleEndian.Uint32(rowb[off+4:]))
			}
		}
		var b strings.Builder
		b.Grow(total)
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				continue
			}
			ho := binary.LittleEndian.Uint32(rowb[off:])
			hl := binary.LittleEndian.Uint32(rowb[off+4:])
			b.Write(src.heap[ho : ho+hl])
		}
		big := b.String()
		pos := 0
		for o := range idxs {
			src := sets[which[o]]
			rowb := src.data[int(idxs[o])*w : int(idxs[o])*w+w]
			if !l.valid(rowb, c) {
				v.SetNull(o)
				continue
			}
			hl := int(binary.LittleEndian.Uint32(rowb[off+4:]))
			d[o] = big[pos : pos+hl]
			pos += hl
		}
	}
}

// GatherRange converts rows [start, start+count) back to vectors, one
// dense vector per column, through the range kernels.
func (rs *RowSet) GatherRange(start, count int) []*vector.Vector {
	l := rs.layout
	out := make([]*vector.Vector, len(l.types))
	for c, t := range l.types {
		v := vector.NewDense(t, count)
		rs.GatherRangeColumn(c, start, count, v)
		out[c] = v
	}
	return out
}

// GatherRows converts the rows named by idxs back to vectors, one dense
// vector per column, through the indexed kernels.
func (rs *RowSet) GatherRows(idxs []uint32) []*vector.Vector {
	l := rs.layout
	out := make([]*vector.Vector, len(l.types))
	for c, t := range l.types {
		v := vector.NewDense(t, len(idxs))
		rs.GatherColumn(c, idxs, v)
		out[c] = v
	}
	return out
}

// AppendRowsFrom appends the rows of src named by idxs, in index order —
// the batched form of AppendRowFrom used to physically reorder a run's
// payload after its keys are sorted. Row bytes are copied in one loop;
// each varchar column's heap data is then compacted into this set's heap
// in a single pre-sized pass, with the (offset, length) references
// rewritten in place.
func (rs *RowSet) AppendRowsFrom(src *RowSet, idxs []uint32) {
	w := rs.layout.width
	base := rs.n
	rs.data = extendBytes(rs.data, len(idxs)*w)
	dst := rs.data[base*w:]
	for o, i := range idxs {
		copy(dst[o*w:(o+1)*w], src.data[int(i)*w:int(i)*w+w])
	}
	rs.n += len(idxs)
	rs.compactHeapFrom(func(int) *RowSet { return src }, base, len(idxs))
}

// AppendRowsGather appends the rows named by (which[i], idxs[i]) — row
// idxs[i] of srcs[which[i]] — in reference order. It is AppendRowsFrom for
// payload scattered across several sets (a pairwise run merge); all sets
// must share this set's layout.
func (rs *RowSet) AppendRowsGather(srcs []*RowSet, which, idxs []uint32) {
	w := rs.layout.width
	base := rs.n
	rs.data = extendBytes(rs.data, len(idxs)*w)
	dst := rs.data[base*w:]
	for o := range idxs {
		src := srcs[which[o]]
		i := int(idxs[o])
		copy(dst[o*w:(o+1)*w], src.data[i*w:i*w+w])
	}
	rs.n += len(idxs)
	rs.compactHeapFrom(func(o int) *RowSet { return srcs[which[o]] }, base, len(idxs))
}

// compactHeapFrom rewrites the heap references of the count rows starting
// at row base (freshly copied from the source sets) to point into this
// set's heap, copying the string bytes over column by column. srcAt returns
// the set the o-th copied row came from.
func (rs *RowSet) compactHeapFrom(srcAt func(o int) *RowSet, base, count int) {
	l := rs.layout
	for c, t := range l.types {
		if t != vector.Varchar {
			continue
		}
		off := l.offsets[c]
		total := 0
		for o := 0; o < count; o++ {
			rowb := rs.Row(base + o)
			if l.valid(rowb, c) {
				total += int(binary.LittleEndian.Uint32(rowb[off+4:]))
			}
		}
		if free := cap(rs.heap) - len(rs.heap); free < total {
			nh := make([]byte, len(rs.heap), cap(rs.heap)+max(total, cap(rs.heap)))
			copy(nh, rs.heap)
			rs.heap = nh
		}
		for o := 0; o < count; o++ {
			rowb := rs.Row(base + o)
			if !l.valid(rowb, c) {
				continue
			}
			so := binary.LittleEndian.Uint32(rowb[off:])
			hl := binary.LittleEndian.Uint32(rowb[off+4:])
			binary.LittleEndian.PutUint32(rowb[off:], uint32(len(rs.heap)))
			rs.heap = append(rs.heap, srcAt(o).heap[so:so+hl]...)
		}
	}
}

// extendBytes grows b by n bytes with amortized doubling, returning the
// lengthened slice. The new bytes are uninitialized spare capacity — every
// caller overwrites the full extension.
func extendBytes(b []byte, n int) []byte {
	need := len(b) + n
	if cap(b) < need {
		newCap := 2 * cap(b)
		if newCap < need {
			newCap = need
		}
		nb := make([]byte, len(b), newCap)
		copy(nb, b)
		b = nb
	}
	return b[:need]
}

// Reset empties the row set, keeping its allocated buffers for reuse. The
// layout is unchanged.
func (rs *RowSet) Reset() {
	rs.data = rs.data[:0]
	rs.heap = rs.heap[:0]
	rs.n = 0
}
