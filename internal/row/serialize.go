package row

import (
	"encoding/binary"
	"fmt"
	"io"
)

// serializeMagic guards against reading unrelated files as row sets.
const serializeMagic = uint32(0x524F5753) // "ROWS"

// WriteTo serializes the row set (row count, row bytes, heap) to w. The
// layout itself is not serialized; the reader must supply an identical one.
// This is the unified on-disk form that lets sorted runs spill to secondary
// storage (the paper's future-work direction).
func (rs *RowSet) WriteTo(w io.Writer) (int64, error) {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], serializeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rs.n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(rs.data)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(rs.heap)))
	written := int64(0)
	for _, buf := range [][]byte{hdr[:], rs.data, rs.heap} {
		n, err := w.Write(buf)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadRowSet deserializes a row set written by WriteTo, using the given
// layout (which must match the writer's).
func ReadRowSet(r io.Reader, layout *Layout) (*RowSet, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("row: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != serializeMagic {
		return nil, fmt.Errorf("row: bad magic in serialized row set")
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	dataLen := int(binary.LittleEndian.Uint64(hdr[8:]))
	heapLen := int(binary.LittleEndian.Uint32(hdr[16:]))
	if dataLen != n*layout.Width() {
		return nil, fmt.Errorf("row: serialized data length %d does not match %d rows of width %d",
			dataLen, n, layout.Width())
	}
	rs := &RowSet{layout: layout, n: n, data: make([]byte, dataLen), heap: make([]byte, heapLen)}
	if _, err := io.ReadFull(r, rs.data); err != nil {
		return nil, fmt.Errorf("row: reading rows: %w", err)
	}
	if _, err := io.ReadFull(r, rs.heap); err != nil {
		return nil, fmt.Errorf("row: reading heap: %w", err)
	}
	return rs, nil
}
