package row

import (
	"testing"

	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func benchChunk(n int) ([]vector.Type, []*vector.Vector) {
	rng := workload.NewRNG(1)
	types := []vector.Type{vector.Int32, vector.Int64, vector.Float64, vector.Varchar}
	i32 := vector.New(vector.Int32, n)
	i64 := vector.New(vector.Int64, n)
	f64 := vector.New(vector.Float64, n)
	str := vector.New(vector.Varchar, n)
	for i := 0; i < n; i++ {
		i32.AppendInt32(int32(rng.Uint32()))
		i64.AppendInt64(int64(rng.Uint64()))
		f64.AppendFloat64(rng.Float64())
		str.AppendString("payload-string")
	}
	return types, []*vector.Vector{i32, i64, f64, str}
}

// BenchmarkScatter measures the DSM-to-NSM conversion (Figure 1, left).
func BenchmarkScatter(b *testing.B) {
	types, vecs := benchChunk(1 << 14)
	layout := NewLayout(types)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs := NewRowSet(layout)
		if err := rs.AppendChunk(vecs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGather measures the NSM-to-DSM conversion (Figure 1, right).
func BenchmarkGather(b *testing.B) {
	types, vecs := benchChunk(1 << 14)
	rs := NewRowSet(NewLayout(types))
	if err := rs.AppendChunk(vecs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs.GatherChunk(0, rs.Len())
	}
}

// BenchmarkAppendRowFrom measures run payload reordering.
func BenchmarkAppendRowFrom(b *testing.B) {
	types, vecs := benchChunk(1 << 14)
	src := NewRowSet(NewLayout(types))
	if err := src.AppendChunk(vecs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst := NewRowSet(src.Layout())
		dst.Reserve(src.Len())
		for r := src.Len() - 1; r >= 0; r-- {
			dst.AppendRowFrom(src, r)
		}
	}
}

// BenchmarkGatherIndexed compares the value-at-a-time AppendTo loop with the
// typed indexed kernels on a reversed permutation — the per-value vs
// per-vector type-dispatch difference in isolation.
func BenchmarkGatherIndexed(b *testing.B) {
	types, vecs := benchChunk(1 << 14)
	rs := NewRowSet(NewLayout(types))
	if err := rs.AppendChunk(vecs); err != nil {
		b.Fatal(err)
	}
	idxs := make([]uint32, rs.Len())
	for i := range idxs {
		idxs[i] = uint32(rs.Len() - 1 - i)
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for c, t := range types {
				v := vector.New(t, len(idxs))
				for _, x := range idxs {
					rs.AppendTo(v, int(x), c)
				}
			}
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rs.GatherRows(idxs)
		}
	})
}

// BenchmarkAppendRowsFrom compares the per-row payload permute with the
// batched one (one row-copy loop plus a single heap-compaction pass).
func BenchmarkAppendRowsFrom(b *testing.B) {
	types, vecs := benchChunk(1 << 14)
	src := NewRowSet(NewLayout(types))
	if err := src.AppendChunk(vecs); err != nil {
		b.Fatal(err)
	}
	idxs := make([]uint32, src.Len())
	for i := range idxs {
		idxs[i] = uint32(src.Len() - 1 - i)
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := NewRowSet(src.Layout())
			dst.Reserve(src.Len())
			for _, x := range idxs {
				dst.AppendRowFrom(src, int(x))
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := NewRowSet(src.Layout())
			dst.Reserve(src.Len())
			dst.AppendRowsFrom(src, idxs)
		}
	})
}
