package row

import (
	"encoding/binary"
	"math"

	"rowsort/internal/vector"
)

// AppendTo appends column c of row i to v, which must match the column's
// type. It is the single-value gather: the type switch re-dispatches per
// value, so hot paths use the vectorized kernels in gather.go instead.
// It remains the reference implementation they are tested (and the
// scalar-vs-vectorized ablation is measured) against.
func (rs *RowSet) AppendTo(v *vector.Vector, i, c int) {
	l := rs.layout
	rowb := rs.Row(i)
	if !l.valid(rowb, c) {
		v.AppendNull()
		return
	}
	off := l.offsets[c]
	switch l.types[c] {
	case vector.Bool:
		v.AppendBool(rowb[off] != 0)
	case vector.Int8:
		v.AppendInt8(int8(rowb[off]))
	case vector.Uint8:
		v.AppendUint8(rowb[off])
	case vector.Int16:
		v.AppendInt16(int16(binary.LittleEndian.Uint16(rowb[off:])))
	case vector.Uint16:
		v.AppendUint16(binary.LittleEndian.Uint16(rowb[off:]))
	case vector.Int32:
		v.AppendInt32(int32(binary.LittleEndian.Uint32(rowb[off:])))
	case vector.Uint32:
		v.AppendUint32(binary.LittleEndian.Uint32(rowb[off:]))
	case vector.Int64:
		v.AppendInt64(int64(binary.LittleEndian.Uint64(rowb[off:])))
	case vector.Uint64:
		v.AppendUint64(binary.LittleEndian.Uint64(rowb[off:]))
	case vector.Float32:
		v.AppendFloat32(math.Float32frombits(binary.LittleEndian.Uint32(rowb[off:])))
	case vector.Float64:
		v.AppendFloat64(math.Float64frombits(binary.LittleEndian.Uint64(rowb[off:])))
	case vector.Varchar:
		v.AppendString(rs.String(i, c))
	}
}

// AppendRowFrom appends row i of src, which must share the layout, copying
// any string data into this set's heap. It is the single-row form of the
// payload reorder; run generation uses the batched AppendRowsFrom, which
// hoists the varchar column scan out of the row loop.
func (rs *RowSet) AppendRowFrom(src *RowSet, i int) {
	rs.data = append(rs.data, src.Row(i)...)
	rs.n++
	dst := rs.Row(rs.n - 1)
	// Rewrite heap references for valid varchar columns.
	for c, t := range rs.layout.types {
		if t != vector.Varchar || !rs.layout.valid(dst, c) {
			continue
		}
		off := rs.layout.offsets[c]
		srcOff := binary.LittleEndian.Uint32(dst[off:])
		length := binary.LittleEndian.Uint32(dst[off+4:])
		binary.LittleEndian.PutUint32(dst[off:], uint32(len(rs.heap)))
		rs.heap = append(rs.heap, src.heap[srcOff:srcOff+length]...)
	}
}
