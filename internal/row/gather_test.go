package row

import (
	"bytes"
	"math/rand"
	"testing"

	"rowsort/internal/vector"
)

// gatherReference gathers the named rows value-at-a-time through AppendTo,
// the scalar reference the vectorized kernels must match.
func gatherReference(rs *RowSet, idxs []uint32) []*vector.Vector {
	l := rs.Layout()
	out := make([]*vector.Vector, l.NumColumns())
	for c, t := range l.Types() {
		v := vector.New(t, len(idxs))
		for _, i := range idxs {
			rs.AppendTo(v, int(i), c)
		}
		out[c] = v
	}
	return out
}

// assertVectorsEqual compares two column lists value by value, including
// validity.
func assertVectorsEqual(t *testing.T, got, want []*vector.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("column count: got %d, want %d", len(got), len(want))
	}
	for c := range want {
		if got[c].Len() != want[c].Len() {
			t.Fatalf("col %d: got %d rows, want %d", c, got[c].Len(), want[c].Len())
		}
		for r := 0; r < want[c].Len(); r++ {
			if got[c].Valid(r) != want[c].Valid(r) {
				t.Fatalf("col %d row %d: validity got %v, want %v",
					c, r, got[c].Valid(r), want[c].Valid(r))
			}
			if got[c].Valid(r) && got[c].Value(r) != want[c].Value(r) {
				t.Fatalf("col %d (%v) row %d: got %v, want %v",
					c, want[c].Type(), r, got[c].Value(r), want[c].Value(r))
			}
		}
	}
}

// TestGatherRangeAllTypes checks the contiguous-range kernels for every
// column type against the scalar reference, including NULL runs: the first
// chunk is NULL-free, the second all-NULL, the third mixed, so each kernel
// sees both the dense fast path and validity handling.
func TestGatherRangeAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rs := NewRowSet(NewLayout(allTypes))
	for _, nullRate := range []float64{0, 1, 0.3} {
		if err := rs.AppendChunk(buildRandomChunk(allTypes, 40, nullRate, rng)); err != nil {
			t.Fatal(err)
		}
	}
	for _, rg := range [][2]int{{0, rs.Len()}, {0, 0}, {7, 0}, {35, 50}, {119, 1}} {
		start, count := rg[0], rg[1]
		idxs := make([]uint32, count)
		for i := range idxs {
			idxs[i] = uint32(start + i)
		}
		got := rs.GatherRange(start, count)
		assertVectorsEqual(t, got, gatherReference(rs, idxs))
	}
}

// TestGatherRowsAllTypes checks the indexed kernels on out-of-order and
// duplicate indices, and on the empty index list.
func TestGatherRowsAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rs := NewRowSet(NewLayout(allTypes))
	if err := rs.AppendChunk(buildRandomChunk(allTypes, 60, 0.25, rng)); err != nil {
		t.Fatal(err)
	}
	for _, idxs := range [][]uint32{
		{},
		{59, 0, 30},
		{5, 5, 5, 5},
		{59, 58, 3, 3, 0, 17, 58},
	} {
		got := rs.GatherRows(idxs)
		assertVectorsEqual(t, got, gatherReference(rs, idxs))
		if got[0].Len() != len(idxs) {
			t.Fatalf("gathered %d rows, want %d", got[0].Len(), len(idxs))
		}
	}
	// Full random permutation.
	perm := rng.Perm(60)
	idxs := make([]uint32, len(perm))
	for i, p := range perm {
		idxs[i] = uint32(p)
	}
	assertVectorsEqual(t, rs.GatherRows(idxs), gatherReference(rs, idxs))
}

// TestGatherRefsColumnMultiSet checks the (set, index) reference kernels:
// rows interleaved across three sets sharing a layout, including a nil
// entry that is never referenced.
func TestGatherRefsColumnMultiSet(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	layout := NewLayout(allTypes)
	sets := make([]*RowSet, 4) // sets[2] stays nil and unreferenced
	for _, si := range []int{0, 1, 3} {
		sets[si] = NewRowSet(layout)
		if err := sets[si].AppendChunk(buildRandomChunk(allTypes, 20, 0.2, rng)); err != nil {
			t.Fatal(err)
		}
	}
	var which, idxs []uint32
	for i := 0; i < 50; i++ {
		w := []uint32{0, 1, 3}[rng.Intn(3)]
		which = append(which, w)
		idxs = append(idxs, uint32(rng.Intn(20)))
	}
	for c, typ := range allTypes {
		v := vector.NewDense(typ, len(idxs))
		GatherRefsColumn(sets, which, idxs, c, v)
		want := vector.New(typ, len(idxs))
		for o := range idxs {
			sets[which[o]].AppendTo(want, int(idxs[o]), c)
		}
		assertVectorsEqual(t, []*vector.Vector{v}, []*vector.Vector{want})
	}
	// Empty reference list: no panic, vector untouched.
	v := vector.NewDense(vector.Int32, 0)
	GatherRefsColumn(sets, nil, nil, 0, v)
	if v.Len() != 0 {
		t.Fatal("empty refs should leave the vector empty")
	}
}

// TestGatherVarcharHeapCompaction checks that an indexed varchar gather
// compacts the strings into one backing allocation laid out in gather
// order, and that duplicate indices duplicate the bytes.
func TestGatherVarcharHeapCompaction(t *testing.T) {
	rs := NewRowSet(NewLayout([]vector.Type{vector.Varchar}))
	v := vector.New(vector.Varchar, 4)
	for _, s := range []string{"alpha", "bee", "", "delta"} {
		v.AppendString(s)
	}
	v.AppendNull()
	if err := rs.AppendChunk([]*vector.Vector{v}); err != nil {
		t.Fatal(err)
	}
	idxs := []uint32{3, 3, 0, 4, 1, 2}
	got := rs.GatherRows(idxs)[0]
	want := []any{"delta", "delta", "alpha", nil, "bee", ""}
	for r, w := range want {
		if w == nil {
			if got.Valid(r) {
				t.Fatalf("row %d should be NULL", r)
			}
			continue
		}
		if got.Value(r) != w {
			t.Fatalf("row %d: got %v, want %v", r, got.Value(r), w)
		}
	}
	// Compaction: the kernel backs all output strings with one buffer, so
	// gathering into a preallocated vector allocates once (the builder's
	// buffer), not once per string.
	dst := vector.NewDense(vector.Varchar, len(idxs))
	allocs := testing.AllocsPerRun(20, func() {
		rs.GatherColumn(0, idxs, dst)
	})
	if allocs > 1 {
		t.Fatalf("varchar gather allocates %v times per call, want <= 1", allocs)
	}
}

// TestAppendRowsFromMatchesScalar checks the batched permute against the
// single-row AppendRowFrom reference: same rows, same bytes, and a heap
// holding only the referenced strings.
func TestAppendRowsFromMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	layout := NewLayout(allTypes)
	src := NewRowSet(layout)
	if err := src.AppendChunk(buildRandomChunk(allTypes, 80, 0.15, rng)); err != nil {
		t.Fatal(err)
	}
	// Reversed order with some duplicates and gaps.
	var idxs []uint32
	for i := 79; i >= 0; i -= 2 {
		idxs = append(idxs, uint32(i), uint32(i))
	}

	batch := NewRowSet(layout)
	batch.AppendRowsFrom(src, idxs)

	ref := NewRowSet(layout)
	for _, i := range idxs {
		ref.AppendRowFrom(src, int(i))
	}

	if batch.Len() != ref.Len() {
		t.Fatalf("Len: got %d, want %d", batch.Len(), ref.Len())
	}
	if !bytes.Equal(batch.Bytes(), ref.Bytes()) {
		t.Fatal("batched permute produced different row bytes than scalar reference")
	}
	if !bytes.Equal(batch.heap, ref.heap) {
		t.Fatal("batched permute produced a different heap than scalar reference")
	}
	// Values survive the heap rewrite.
	for o, i := range idxs {
		for c := range allTypes {
			if batch.Value(o, c) != src.Value(int(i), c) {
				t.Fatalf("row %d col %d: got %v, want %v", o, c, batch.Value(o, c), src.Value(int(i), c))
			}
		}
	}
}

// TestAppendRowsGatherMultiSource checks the multi-source permute (the merge
// path's payload reorder) against per-row AppendRowFrom.
func TestAppendRowsGatherMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	layout := NewLayout([]vector.Type{vector.Int64, vector.Varchar, vector.Varchar})
	types := layout.Types()
	srcs := make([]*RowSet, 3)
	for i := range srcs {
		srcs[i] = NewRowSet(layout)
		if err := srcs[i].AppendChunk(buildRandomChunk(types, 25, 0.2, rng)); err != nil {
			t.Fatal(err)
		}
	}
	var which, idxs []uint32
	for i := 0; i < 70; i++ {
		which = append(which, uint32(rng.Intn(3)))
		idxs = append(idxs, uint32(rng.Intn(25)))
	}

	batch := NewRowSet(layout)
	batch.AppendRowsGather(srcs, which, idxs)

	// The batched permute compacts the heap column-major while the per-row
	// reference interleaves strings row by row, so compare values (and
	// validity), not raw heap bytes.
	ref := NewRowSet(layout)
	for o := range idxs {
		ref.AppendRowFrom(srcs[which[o]], int(idxs[o]))
	}
	if batch.Len() != ref.Len() {
		t.Fatalf("Len: got %d, want %d", batch.Len(), ref.Len())
	}
	for o := 0; o < ref.Len(); o++ {
		for c := range types {
			if batch.Value(o, c) != ref.Value(o, c) {
				t.Fatalf("row %d col %d: got %v, want %v", o, c, batch.Value(o, c), ref.Value(o, c))
			}
		}
	}

	// Appending on top of existing rows keeps earlier rows intact.
	batch.AppendRowsGather(srcs, which[:5], idxs[:5])
	if batch.Len() != len(idxs)+5 {
		t.Fatalf("Len after second append = %d", batch.Len())
	}
	for o := range idxs {
		if batch.Value(o, 1) != srcs[which[o]].Value(int(idxs[o]), 1) {
			t.Fatalf("row %d corrupted by second append", o)
		}
	}
}

// TestAppendRowsFromEmpty checks the degenerate inputs.
func TestAppendRowsFromEmpty(t *testing.T) {
	layout := NewLayout([]vector.Type{vector.Int32, vector.Varchar})
	src := NewRowSet(layout)
	v := vector.New(vector.Int32, 1)
	v.AppendInt32(7)
	s := vector.New(vector.Varchar, 1)
	s.AppendString("x")
	if err := src.AppendChunk([]*vector.Vector{v, s}); err != nil {
		t.Fatal(err)
	}
	dst := NewRowSet(layout)
	dst.AppendRowsFrom(src, nil)
	dst.AppendRowsGather([]*RowSet{src}, nil, nil)
	if dst.Len() != 0 || len(dst.Bytes()) != 0 {
		t.Fatal("empty permutes should append nothing")
	}
}

// TestRowSetReset checks that Reset empties the set but keeps capacity, and
// that the set is fully reusable afterwards.
func TestRowSetReset(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	types := []vector.Type{vector.Int32, vector.Varchar}
	rs := NewRowSet(NewLayout(types))
	if err := rs.AppendChunk(buildRandomChunk(types, 30, 0.1, rng)); err != nil {
		t.Fatal(err)
	}
	capData, capHeap := cap(rs.data), cap(rs.heap)
	rs.Reset()
	if rs.Len() != 0 || len(rs.data) != 0 || len(rs.heap) != 0 {
		t.Fatal("Reset should empty the set")
	}
	if cap(rs.data) != capData || cap(rs.heap) != capHeap {
		t.Fatal("Reset should keep the allocated buffers")
	}
	chunk := buildRandomChunk(types, 10, 0.1, rng)
	if err := rs.AppendChunk(chunk); err != nil {
		t.Fatal(err)
	}
	got := rs.GatherChunk(0, 10)
	assertVectorsEqual(t, got, chunk)
}

// TestGatherChunkMatchesScalarAcrossWidths runs the range kernels over odd
// row counts and alignments so slice-boundary arithmetic is exercised.
func TestGatherChunkMatchesScalarAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, align := range []int{1, 8} {
		types := []vector.Type{vector.Int8, vector.Int32, vector.Varchar, vector.Bool}
		layout := NewLayoutAligned(types, align)
		rs := NewRowSet(layout)
		if err := rs.AppendChunk(buildRandomChunk(types, 33, 0.2, rng)); err != nil {
			t.Fatal(err)
		}
		idxs := make([]uint32, 33)
		for i := range idxs {
			idxs[i] = uint32(i)
		}
		assertVectorsEqual(t, rs.GatherChunk(0, 33), gatherReference(rs, idxs))
	}
}
