// Package engine is a miniature vectorized query engine: operators exchange
// chunks of column vectors (vector-at-a-time execution, the paper's
// interpreted-engine setting) through a pull-based iterator interface. It
// exists to host the sort operator in its natural habitat — as a pipeline
// breaker inside a query plan — and to express the paper's benchmark query
//
//	SELECT count(*) FROM (SELECT ... ORDER BY ... OFFSET 1)
//
// as an actual plan, including the optimizer behaviour the query was
// designed to defeat: a Sort directly under a Limit is rewritten into the
// specialized Top-N operator unless something (like the count-over-subquery
// shape) consumes the full sorted output.
package engine

import (
	"fmt"

	"rowsort/internal/vector"
)

// Operator is a pull-based (vector-at-a-time Volcano) physical operator.
// The contract: Open before Next, Next until it returns a nil chunk, then
// Close. Operators are single-threaded at the iterator surface; blocking
// operators may parallelize internally (the sort does).
type Operator interface {
	// Schema returns the operator's output schema.
	Schema() vector.Schema
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next output chunk, or nil at end of stream.
	Next() (*vector.Chunk, error)
	// Close releases resources; the operator cannot be reused.
	Close() error
}

// Run drives a plan to completion and materializes its output.
func Run(op Operator) (*vector.Table, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := vector.NewTable(op.Schema())
	for {
		c, err := op.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			return out, nil
		}
		if c.Len() == 0 {
			continue
		}
		if err := out.AppendChunk(c); err != nil {
			return nil, err
		}
	}
}

// --- Scan ---------------------------------------------------------------

// ScanOp streams a materialized table chunk by chunk.
type ScanOp struct {
	table *vector.Table
	pos   int
}

// Scan returns a table scan operator.
func Scan(t *vector.Table) *ScanOp { return &ScanOp{table: t} }

// Schema implements Operator.
func (s *ScanOp) Schema() vector.Schema { return s.table.Schema }

// Open implements Operator.
func (s *ScanOp) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *ScanOp) Next() (*vector.Chunk, error) {
	if s.pos >= len(s.table.Chunks) {
		return nil, nil
	}
	c := s.table.Chunks[s.pos]
	s.pos++
	return c, nil
}

// Close implements Operator.
func (s *ScanOp) Close() error { return nil }

// --- Project ------------------------------------------------------------

// ProjectOp selects a subset of its child's columns.
type ProjectOp struct {
	child  Operator
	cols   []int
	schema vector.Schema
}

// Project returns an operator emitting the child's columns cols, in order.
func Project(child Operator, cols []int) (*ProjectOp, error) {
	cs := child.Schema()
	schema := make(vector.Schema, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(cs) {
			return nil, fmt.Errorf("engine: project column %d out of range", c)
		}
		schema[i] = cs[c]
	}
	return &ProjectOp{child: child, cols: cols, schema: schema}, nil
}

// Schema implements Operator.
func (p *ProjectOp) Schema() vector.Schema { return p.schema }

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.child.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (*vector.Chunk, error) {
	c, err := p.child.Next()
	if c == nil || err != nil {
		return nil, err
	}
	out := &vector.Chunk{Vectors: make([]*vector.Vector, len(p.cols))}
	for i, col := range p.cols {
		out.Vectors[i] = c.Vectors[col]
	}
	return out, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.child.Close() }

// --- Filter -------------------------------------------------------------

// Predicate decides whether row r of a chunk qualifies.
type Predicate func(c *vector.Chunk, r int) bool

// FilterOp keeps rows matching a predicate, re-packing survivors into
// dense chunks.
type FilterOp struct {
	child Operator
	pred  Predicate
}

// Filter returns a selection operator.
func Filter(child Operator, pred Predicate) *FilterOp {
	return &FilterOp{child: child, pred: pred}
}

// Schema implements Operator.
func (f *FilterOp) Schema() vector.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *FilterOp) Open() error { return f.child.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (*vector.Chunk, error) {
	for {
		c, err := f.child.Next()
		if c == nil || err != nil {
			return nil, err
		}
		out := vector.NewChunk(f.Schema(), c.Len())
		for r := 0; r < c.Len(); r++ {
			if !f.pred(c, r) {
				continue
			}
			for i, v := range c.Vectors {
				vector.AppendValue(out.Vectors[i], v, r)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
		// Entire chunk filtered away: pull the next one.
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.child.Close() }

// --- Limit --------------------------------------------------------------

// LimitOp emits at most limit rows after skipping offset rows.
type LimitOp struct {
	child         Operator
	limit, offset int
	skipped       int
	emitted       int
}

// Limit returns a LIMIT/OFFSET operator.
func Limit(child Operator, limit, offset int) *LimitOp {
	return &LimitOp{child: child, limit: limit, offset: offset}
}

// Schema implements Operator.
func (l *LimitOp) Schema() vector.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *LimitOp) Open() error {
	l.skipped, l.emitted = 0, 0
	return l.child.Open()
}

// Next implements Operator.
func (l *LimitOp) Next() (*vector.Chunk, error) {
	for l.emitted < l.limit {
		c, err := l.child.Next()
		if c == nil || err != nil {
			return nil, err
		}
		start := 0
		if l.skipped < l.offset {
			skip := min(l.offset-l.skipped, c.Len())
			l.skipped += skip
			start = skip
		}
		take := min(c.Len()-start, l.limit-l.emitted)
		if take <= 0 {
			continue
		}
		out := vector.NewChunk(l.Schema(), take)
		for r := start; r < start+take; r++ {
			for i, v := range c.Vectors {
				vector.AppendValue(out.Vectors[i], v, r)
			}
		}
		l.emitted += take
		return out, nil
	}
	return nil, nil
}

// Close implements Operator.
func (l *LimitOp) Close() error { return l.child.Close() }

// --- Count --------------------------------------------------------------

// CountOp computes COUNT(*) over its child, emitting one BIGINT row. Like
// the paper's benchmark query, it consumes the child's entire output — so a
// sort below it cannot be elided or turned into a top-N.
type CountOp struct {
	child Operator
	done  bool
}

// Count returns a COUNT(*) aggregate operator.
func Count(child Operator) *CountOp { return &CountOp{child: child} }

var countSchema = vector.Schema{{Name: "count", Type: vector.Int64}}

// Schema implements Operator.
func (c *CountOp) Schema() vector.Schema { return countSchema }

// Open implements Operator.
func (c *CountOp) Open() error { c.done = false; return c.child.Open() }

// Next implements Operator.
func (c *CountOp) Next() (*vector.Chunk, error) {
	if c.done {
		return nil, nil
	}
	c.done = true
	n := int64(0)
	for {
		chunk, err := c.child.Next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		n += int64(chunk.Len())
	}
	out := vector.NewChunk(countSchema, 1)
	out.Vectors[0].AppendInt64(n)
	return out, nil
}

// Close implements Operator.
func (c *CountOp) Close() error { return c.child.Close() }
