package engine

import (
	"rowsort/internal/core"
	"rowsort/internal/vector"
)

// SortOp is the sort operator as a plan node: a pipeline breaker that
// consumes its entire child on Open (materializing through the core
// sorter's row formats) and then streams the sorted result. This is exactly
// Figure 11 wrapped in the iterator interface.
type SortOp struct {
	child Operator
	keys  []core.SortColumn
	opt   core.Options

	sorter *core.Sorter
	rows   *core.RowIter
}

// Sort returns a sort plan node.
func Sort(child Operator, keys []core.SortColumn, opt core.Options) *SortOp {
	return &SortOp{child: child, keys: keys, opt: opt}
}

// Schema implements Operator.
func (s *SortOp) Schema() vector.Schema { return s.child.Schema() }

// Open implements Operator: it drains the child into the sorter, runs the
// parallel merge, and readies the sorted scan as a chunked row iterator
// (core.Sorter.Rows). The child is pulled from this goroutine (iterators
// are single-threaded), but ingestion fans out through a ParallelSink, so
// key normalization, run sorting and spilling overlap the child's Next
// calls across Options.Threads workers. Chunks are gathered on demand with
// the typed vectorized kernels, so a consumer that stops early — LIMIT
// without the TopN rewrite, a probe that finds its match — never pays for
// materializing the tail; under a memory budget the final external merge
// itself streams through Next.
func (s *SortOp) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	sorter, err := core.NewSorter(s.child.Schema(), s.keys, s.opt)
	if err != nil {
		return err
	}
	s.sorter = sorter
	sink := sorter.NewParallelSink()
	err = func() error {
		for {
			c, err := s.child.Next()
			if err != nil {
				return err
			}
			if c == nil {
				return nil
			}
			if err := sink.Append(c); err != nil {
				return err
			}
		}
	}()
	// Close always runs — even after an error — so the ingest workers join
	// and their reservations release before this returns.
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := sorter.Finalize(); err != nil {
		return err
	}
	s.rows, err = sorter.Rows()
	return err
}

// Next implements Operator.
func (s *SortOp) Next() (*vector.Chunk, error) {
	if s.rows == nil {
		return nil, nil
	}
	return s.rows.Next()
}

// Close implements Operator. It releases the sorter's spill files and
// budget reservations even when the iterator was not drained.
func (s *SortOp) Close() error {
	var err error
	if s.rows != nil {
		err = s.rows.Close()
		s.rows = nil
	}
	if s.sorter != nil {
		if cerr := s.sorter.Close(); err == nil {
			err = cerr
		}
		s.sorter = nil
	}
	if cerr := s.child.Close(); err == nil {
		err = cerr
	}
	return err
}

// TopNOp is the specialized operator an optimizer substitutes for a Sort
// directly under a Limit (Section VII-A): it keeps only the best
// limit+offset rows in a bounded heap instead of sorting everything.
type TopNOp struct {
	child         Operator
	keys          []core.SortColumn
	limit, offset int
	opt           core.Options

	result *vector.Table
	pos    int
	row    int
}

// TopN returns a top-N plan node keeping limit rows after offset.
func TopN(child Operator, keys []core.SortColumn, limit, offset int, opt core.Options) *TopNOp {
	return &TopNOp{child: child, keys: keys, limit: limit, offset: offset, opt: opt}
}

// Schema implements Operator.
func (t *TopNOp) Schema() vector.Schema { return t.child.Schema() }

// Open implements Operator.
func (t *TopNOp) Open() error {
	if err := t.child.Open(); err != nil {
		return err
	}
	top, err := core.NewTopN(t.child.Schema(), t.keys, t.limit+t.offset, t.opt)
	if err != nil {
		return err
	}
	for {
		c, err := t.child.Next()
		if err != nil {
			return err
		}
		if c == nil {
			break
		}
		if err := top.Append(c); err != nil {
			return err
		}
	}
	t.result, err = top.Result()
	if err != nil {
		return err
	}
	t.pos, t.row = 0, 0
	// Skip the offset rows.
	skip := t.offset
	for skip > 0 && t.pos < len(t.result.Chunks) {
		c := t.result.Chunks[t.pos]
		take := min(skip, c.Len()-t.row)
		t.row += take
		skip -= take
		if t.row == c.Len() {
			t.pos++
			t.row = 0
		}
	}
	return nil
}

// Next implements Operator.
func (t *TopNOp) Next() (*vector.Chunk, error) {
	for t.result != nil && t.pos < len(t.result.Chunks) {
		c := t.result.Chunks[t.pos]
		if t.row == 0 {
			t.pos++
			return c, nil
		}
		// Re-pack a partial chunk after the offset skip.
		out := vector.NewChunk(t.Schema(), c.Len()-t.row)
		for r := t.row; r < c.Len(); r++ {
			for i, v := range c.Vectors {
				vector.AppendValue(out.Vectors[i], v, r)
			}
		}
		t.pos++
		t.row = 0
		if out.Len() > 0 {
			return out, nil
		}
	}
	return nil, nil
}

// Close implements Operator.
func (t *TopNOp) Close() error {
	t.result = nil
	return t.child.Close()
}

// TopNFusionLimit bounds the Sort+Limit fusion: keeping more rows than
// this in a heap would be slower than sorting, so (like real optimizers)
// the rewrite only fires for genuinely small limits.
const TopNFusionLimit = 1 << 17

// Optimize applies the plan rewrite real systems perform and the paper's
// benchmark query is built to defeat: a Limit whose child is a Sort becomes
// a TopN when the kept row count is small. Anything else (for example Count
// over Sort — the count-over-subquery trick, or an effectively unbounded
// OFFSET-only limit) is left untouched, forcing the full sort.
func Optimize(op Operator) Operator {
	switch o := op.(type) {
	case *LimitOp:
		child := Optimize(o.child)
		if s, ok := child.(*SortOp); ok && o.limit+o.offset <= TopNFusionLimit {
			return TopN(Optimize(s.child), s.keys, o.limit, o.offset, s.opt)
		}
		return Limit(child, o.limit, o.offset)
	case *SortOp:
		return Sort(Optimize(o.child), o.keys, o.opt)
	case *ProjectOp:
		p, err := Project(Optimize(o.child), o.cols)
		if err != nil { // cols were already validated
			panic(err)
		}
		return p
	case *FilterOp:
		return Filter(Optimize(o.child), o.pred)
	case *CountOp:
		return Count(Optimize(o.child))
	default:
		return op
	}
}
