package engine

import (
	"testing"

	"rowsort/internal/core"
	"rowsort/internal/vector"
	"rowsort/internal/workload"
)

func scanTable(t *testing.T, n int) *vector.Table {
	t.Helper()
	return workload.CatalogSales(n, 10, 51)
}

func TestScanRoundTrip(t *testing.T) {
	tbl := scanTable(t, 5000)
	out, err := Run(Scan(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5000 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestProject(t *testing.T) {
	tbl := scanTable(t, 100)
	p, err := Project(Scan(tbl), []int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Schema) != 2 || out.Schema[0].Name != "cs_item_sk" || out.Schema[1].Name != "cs_warehouse_sk" {
		t.Fatalf("schema = %v", out.Schema)
	}
	if _, err := Project(Scan(tbl), []int{99}); err == nil {
		t.Fatal("bad column should error")
	}
}

func TestFilter(t *testing.T) {
	tbl := scanTable(t, 5000)
	// Keep rows with quantity > 50.
	f := Filter(Scan(tbl), func(c *vector.Chunk, r int) bool {
		return c.Vectors[3].Valid(r) && c.Vectors[3].Int32s()[r] > 50
	})
	out, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() == 0 || out.NumRows() >= 5000 {
		t.Fatalf("filter kept %d rows", out.NumRows())
	}
	q := out.Column(3)
	for i := 0; i < q.Len(); i++ {
		if q.Value(i).(int32) <= 50 {
			t.Fatal("filter leaked a row")
		}
	}
}

func TestSortOperator(t *testing.T) {
	tbl := scanTable(t, 6000)
	keys := []core.SortColumn{{Column: 3, Descending: true}}
	out, err := Run(Sort(Scan(tbl), keys, core.Options{Threads: 2, RunSize: 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6000 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	q := out.Column(3)
	for i := 1; i < q.Len(); i++ {
		if q.Value(i).(int32) > q.Value(i-1).(int32) {
			t.Fatal("not sorted DESC")
		}
	}
}

func TestLimitOffset(t *testing.T) {
	tbl := scanTable(t, 5000)
	keys := []core.SortColumn{{Column: 4}}
	full, err := Run(Sort(Scan(tbl), keys, core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(Limit(Sort(Scan(tbl), keys, core.Options{}), 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 10 {
		t.Fatalf("limit rows = %d", out.NumRows())
	}
	want, got := full.Column(4), out.Column(4)
	for i := 0; i < 10; i++ {
		if got.Value(i) != want.Value(i+3) {
			t.Fatalf("offset row %d mismatch", i)
		}
	}
}

func TestSortOperatorWithMemoryBudget(t *testing.T) {
	// A one-byte budget forces the sort through adaptive spilling and the
	// deferred streaming merge; the operator output must match the
	// unlimited plan, and LIMIT must be able to abandon the stream early
	// (Close reclaims the unconsumed spill files).
	tbl := scanTable(t, 6000)
	keys := []core.SortColumn{{Column: 3, Descending: true}, {Column: 0}}
	full, err := Run(Sort(Scan(tbl), keys, core.Options{Threads: 2, RunSize: 1000}))
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Run(Sort(Scan(tbl), keys,
		core.Options{Threads: 2, RunSize: 1000, MemoryLimit: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.NumRows() != full.NumRows() {
		t.Fatalf("budgeted sort produced %d rows, want %d", budgeted.NumRows(), full.NumRows())
	}
	for _, col := range []int{0, 3} {
		w, g := full.Column(col), budgeted.Column(col)
		for i := 0; i < w.Len(); i++ {
			if w.Value(i) != g.Value(i) {
				t.Fatalf("budgeted sort diverges at row %d column %d", i, col)
			}
		}
	}

	out, err := Run(Limit(Sort(Scan(tbl), keys,
		core.Options{Threads: 2, RunSize: 1000, MemoryLimit: 1}), 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 7 {
		t.Fatalf("limit over budgeted sort produced %d rows, want 7", out.NumRows())
	}
	for i := 0; i < 7; i++ {
		if out.Column(0).Value(i) != full.Column(0).Value(i) {
			t.Fatalf("limited budgeted sort diverges at row %d", i)
		}
	}
}

func TestCountOverSort(t *testing.T) {
	// The paper's benchmark query shape: count(*) over a sorted subquery.
	tbl := scanTable(t, 4000)
	plan := Count(Sort(Scan(tbl), []core.SortColumn{{Column: 0}}, core.Options{Threads: 2}))
	out, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Column(0).Value(0) != int64(4000) {
		t.Fatalf("count = %v", out.Column(0).Value(0))
	}
}

func TestOptimizeFusesSortLimitIntoTopN(t *testing.T) {
	tbl := scanTable(t, 4000)
	keys := []core.SortColumn{{Column: 3}}
	plan := Limit(Sort(Scan(tbl), keys, core.Options{}), 5, 2)
	opt := Optimize(plan)
	if _, ok := opt.(*TopNOp); !ok {
		t.Fatalf("Limit(Sort) should optimize to TopN, got %T", opt)
	}
	want, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("optimized rows %d != %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < got.NumRows(); i++ {
		if got.Column(3).Value(i) != want.Column(3).Value(i) {
			t.Fatalf("optimized row %d differs", i)
		}
	}
}

func TestOptimizeLeavesCountOverSortAlone(t *testing.T) {
	// The count-over-subquery trick: no Limit above the Sort, so the
	// rewrite must not fire and the full sort must run.
	tbl := scanTable(t, 1000)
	plan := Count(Sort(Scan(tbl), []core.SortColumn{{Column: 0}}, core.Options{}))
	opt := Optimize(plan)
	c, ok := opt.(*CountOp)
	if !ok {
		t.Fatalf("expected CountOp, got %T", opt)
	}
	if _, ok := c.child.(*SortOp); !ok {
		t.Fatalf("Sort under Count must survive optimization, got %T", c.child)
	}
	out, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Column(0).Value(0) != int64(1000) {
		t.Fatal("count wrong")
	}
}

func TestOptimizeRecursesThroughProjectAndFilter(t *testing.T) {
	tbl := scanTable(t, 2000)
	keys := []core.SortColumn{{Column: 0}}
	proj, err := Project(Scan(tbl), []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	inner := Filter(proj, func(c *vector.Chunk, r int) bool { return true })
	plan := Limit(Sort(inner, keys, core.Options{}), 3, 0)
	opt := Optimize(plan)
	if _, ok := opt.(*TopNOp); !ok {
		t.Fatalf("rewrite should fire through the tree, got %T", opt)
	}
	got, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

// TestBenchmarkQueryPlan runs the paper's full anti-optimizer query:
// SELECT count(*) FROM (SELECT cs_item_sk FROM catalog_sales ORDER BY
// cs_warehouse_sk, cs_ship_mode_sk OFFSET 1).
func TestBenchmarkQueryPlan(t *testing.T) {
	tbl := scanTable(t, 3000)
	proj, err := Project(Scan(tbl), []int{4, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := []core.SortColumn{{Column: 1}, {Column: 2}}
	sorted := Sort(proj, keys, core.Options{Threads: 2})
	// OFFSET 1 with no LIMIT: model as a huge limit. The optimizer must NOT
	// turn this into a TopN (the kept row count is unbounded), so the full
	// sort runs — exactly what the paper's query construction ensures.
	plan := Count(Limit(sorted, 1<<30, 1))
	opt := Optimize(plan)
	c, ok := opt.(*CountOp)
	if !ok {
		t.Fatalf("expected CountOp, got %T", opt)
	}
	l, ok := c.child.(*LimitOp)
	if !ok {
		t.Fatalf("expected LimitOp under Count, got %T", c.child)
	}
	if _, ok := l.child.(*SortOp); !ok {
		t.Fatalf("unbounded limit must not fuse into TopN, got %T", l.child)
	}
	out, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Column(0).Value(0) != int64(2999) {
		t.Fatalf("count = %v, want 2999", out.Column(0).Value(0))
	}
}
