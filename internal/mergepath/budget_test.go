package mergepath

import (
	"math"
	"testing"
)

func TestPlanBlockRows(t *testing.T) {
	cases := []struct {
		name      string
		remaining int64
		rowBytes  int64
		maxRows   int
		want      int
	}{
		{"unlimited budget hits maxRows", math.MaxInt64, 100, 4096, 4096},
		{"huge budget capped by maxBlockBytes", 1 << 40, 64, 1 << 20, maxBlockBytes / 64},
		{"moderate budget splits a share", 16 << 20, 1 << 10, 4096, 1024},
		{"tiny budget clamps to floor", 100, 100, 4096, minBlockRows},
		{"negative headroom clamps to floor", -5000, 100, 4096, minBlockRows},
		{"zero row bytes does not divide by zero", 1 << 20, 0, 4096, 4096},
	}
	for _, c := range cases {
		if got := PlanBlockRows(c.remaining, c.rowBytes, c.maxRows); got != c.want {
			t.Errorf("%s: PlanBlockRows(%d, %d, %d) = %d, want %d",
				c.name, c.remaining, c.rowBytes, c.maxRows, got, c.want)
		}
	}
}

func TestPlanMerge(t *testing.T) {
	// rowBytes 100, maxRows 4096 → healthy blocks are 512 rows (51200
	// bytes per buffer).
	cases := []struct {
		name      string
		k         int
		remaining int64
		buffers   int
		want      MergePlan
	}{
		{"huge budget merges flat at max blocks", 4, 1 << 30, 1, MergePlan{4, 4096}},
		{"exact healthy budget merges flat", 4, 4 * 51200, 1, MergePlan{4, 512}},
		{"tight budget forces passes, blocks stay healthy", 64, 8 * 51200, 1, MergePlan{8, 512}},
		{"read-ahead doubles the footprint, halving fan-in", 64, 8 * 51200, 2, MergePlan{4, 512}},
		{"starved budget shrinks blocks last", 64, 51200, 1, MergePlan{2, 256}},
		{"zero budget clamps to floors", 8, 0, 1, MergePlan{2, 16}},
		{"negative headroom clamps to floors", 8, -4096, 2, MergePlan{2, 16}},
	}
	for _, c := range cases {
		if got := PlanMerge(c.k, c.remaining, 100, 4096, c.buffers); got != c.want {
			t.Errorf("%s: PlanMerge(%d, %d, 100, 4096, %d) = %+v, want %+v",
				c.name, c.k, c.remaining, c.buffers, got, c.want)
		}
	}
}

func TestPlanFanIn(t *testing.T) {
	cases := []struct {
		name       string
		k          int
		remaining  int64
		blockBytes int64
		want       int
	}{
		{"budget fits all runs", 10, 1 << 20, 1 << 10, 10},
		{"budget halves the fan-in", 10, 5 << 10, 1 << 10, 5},
		{"starved budget still merges pairwise", 10, 0, 1 << 10, minFanIn},
		{"negative headroom still merges pairwise", 10, -100, 1 << 10, minFanIn},
		{"k below the floor passes through", 1, 0, 1 << 10, minFanIn},
		{"two runs always merge directly", 2, 0, 1 << 10, 2},
		{"zero block bytes does not divide by zero", 8, 4, 0, 4},
	}
	for _, c := range cases {
		if got := PlanFanIn(c.k, c.remaining, c.blockBytes); got != c.want {
			t.Errorf("%s: PlanFanIn(%d, %d, %d) = %d, want %d",
				c.name, c.k, c.remaining, c.blockBytes, got, c.want)
		}
	}
}

func TestBatchRunsUniformRolesMatchFixedStride(t *testing.T) {
	// Uniform roles must reproduce the role-blind batching exactly: cuts
	// every fanIn runs, trailing remainder in its own batch.
	for _, c := range []struct{ n, fanIn int }{{10, 4}, {8, 4}, {1, 4}, {5, 2}, {7, 16}} {
		got := BatchRuns(c.n, c.fanIn, func(int) int { return 0 })
		var want [][2]int
		for i := 0; i < c.n; i += c.fanIn {
			want = append(want, [2]int{i, min(i+c.fanIn, c.n)})
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d fanIn=%d: %v, want %v", c.n, c.fanIn, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d fanIn=%d: %v, want %v", c.n, c.fanIn, got, want)
			}
		}
	}
}

func TestBatchRunsCutsAtRoleBoundary(t *testing.T) {
	// 8 runs, roles 0,0,0,1,1,1,1,1 and fanIn 6: the role change at index 3
	// should cut there (batch size 3 >= max(2, 6/2)), grouping the
	// dup-heavy tail into its own batch.
	roles := []int{0, 0, 0, 1, 1, 1, 1, 1}
	got := BatchRuns(len(roles), 6, func(i int) int { return roles[i] })
	want := [][2]int{{0, 3}, {3, 8}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("role-boundary batches = %v, want %v", got, want)
	}
}

func TestBatchRunsAlternatingRolesKeepsProgress(t *testing.T) {
	// Role changes every run must not shrink batches below max(2, fanIn/2):
	// the cascade still halves (or better) the run count each pass.
	n, fanIn := 64, 8
	got := BatchRuns(n, fanIn, func(i int) int { return i % 2 })
	covered := 0
	for _, b := range got {
		size := b[1] - b[0]
		if b[0] != covered {
			t.Fatalf("batches not contiguous: %v", got)
		}
		if size < max(2, fanIn/2) && b[1] != n {
			t.Fatalf("batch %v smaller than progress floor", b)
		}
		covered = b[1]
	}
	if covered != n {
		t.Fatalf("batches cover %d of %d runs", covered, n)
	}
	if len(got) >= n {
		t.Fatalf("no fan-in reduction: %d batches for %d runs", len(got), n)
	}
}
