// Package mergepath implements the merge phase of the sorting pipeline.
//
// The primary merge is a single-pass k-way tournament (loser tree) over all
// sorted runs at once, accelerated with offset-value coding (see kway.go):
// most tree matches compare two cached integers instead of two full-width
// normalized keys, and the output is produced in one pass instead of the
// O(log k) copy passes of a cascaded 2-way merge. Parallelism comes from a
// k-way generalization of Merge Path (Green, Odeh and Birk): KWaySplit cuts
// the merged output at evenly spaced ranks with binary searches, so each
// thread merges a disjoint slice of every run into a disjoint slice of the
// output, byte-identical to the scalar merge.
//
// The 2-way primitives (SplitPoint, MergeInto, ParallelMerge) and the
// cascaded CascadeMerge are kept as the ablation baseline and for the
// modeled systems.
package mergepath

import (
	"bytes"
	"sync"
)

// Run is a sorted run of fixed-width rows.
type Run struct {
	Data  []byte
	Width int
}

// Len returns the number of rows in the run.
func (r Run) Len() int {
	if r.Width == 0 {
		return 0
	}
	return len(r.Data) / r.Width
}

// Row returns row i, aliasing the run's buffer.
func (r Run) Row(i int) []byte { return r.Data[i*r.Width : (i+1)*r.Width] }

// CompareFunc compares two rows; nil means bytes.Compare.
type CompareFunc func(a, b []byte) int

func cmpOrDefault(cmp CompareFunc) CompareFunc {
	if cmp == nil {
		return bytes.Compare
	}
	return cmp
}

// SplitPoint returns the Merge Path split (i, j) with i+j = d such that a
// stable merge of a and b outputs exactly a[:i] and b[:j] as its first d
// rows (rows of a preferred on ties). It runs one binary search along the
// d-th cross diagonal.
func SplitPoint(a, b Run, d int, cmp CompareFunc) (i, j int) {
	c := cmpOrDefault(cmp)
	lo, hi := max(0, d-b.Len()), min(d, a.Len())
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		// Take more from a while b[d-m-1] is not strictly before a[m].
		if c(b.Row(d-m-1), a.Row(m)) < 0 {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo, d - lo
}

// MergeInto merges runs a and b into dst, which must hold exactly
// a.Len()+b.Len() rows. The merge is stable: ties take from a first. Each
// output row requires one full-row comparison, which is why the paper's
// interpreted engine compares whole normalized keys with one memcmp here
// rather than per-column callbacks.
func MergeInto(dst []byte, a, b Run, cmp CompareFunc) {
	c := cmpOrDefault(cmp)
	w := a.Width
	la, lb := a.Len(), b.Len()
	i, j, k := 0, 0, 0
	for i < la && j < lb {
		if c(b.Row(j), a.Row(i)) < 0 {
			copy(dst[k*w:], b.Row(j))
			j++
		} else {
			copy(dst[k*w:], a.Row(i))
			i++
		}
		k++
	}
	if i < la {
		copy(dst[k*w:], a.Data[i*w:])
	}
	if j < lb {
		copy(dst[k*w:], b.Data[j*w:])
	}
}

// ParallelMerge merges a and b into dst using up to p goroutines, splitting
// the output into p near-equal partitions with SplitPoint. dst must hold
// a.Len()+b.Len() rows.
//
//rowsort:pipeline
func ParallelMerge(dst []byte, a, b Run, cmp CompareFunc, p int) {
	total := a.Len() + b.Len()
	if p < 2 || total < 2*p {
		MergeInto(dst, a, b, cmp)
		return
	}
	w := a.Width
	var wg sync.WaitGroup
	prevI, prevJ := 0, 0
	for part := 1; part <= p; part++ {
		d := part * total / p
		var i, j int
		if part == p {
			i, j = a.Len(), b.Len()
		} else {
			i, j = SplitPoint(a, b, d, cmp)
		}
		ai, aj := prevI, prevJ
		bi, bj := i, j
		out := dst[(ai+aj)*w : (bi+bj)*w]
		subA := Run{Data: a.Data[ai*w : bi*w], Width: w}
		subB := Run{Data: b.Data[aj*w : bj*w], Width: w}
		wg.Add(1)
		go func() {
			defer wg.Done()
			MergeInto(out, subA, subB, cmp)
		}()
		prevI, prevJ = i, j
	}
	wg.Wait()
}

// CascadeMerge merges sorted runs pairwise, level by level, until one run
// remains — the paper's cascaded 2-way merge sort. Early levels get their
// parallelism from merging many pairs concurrently; once pairs are scarcer
// than threads, each pair merge is itself parallelized with Merge Path, so
// parallelism does not degrade as the tree narrows. p is the total number
// of goroutines to use.
//
//rowsort:pipeline
func CascadeMerge(runs []Run, cmp CompareFunc, p int) Run {
	if p < 1 {
		p = 1
	}
	for len(runs) > 1 {
		next := make([]Run, 0, (len(runs)+1)/2)
		pairs := len(runs) / 2
		perPair := max(1, p/max(1, pairs))

		type job struct {
			dst  []byte
			a, b Run
		}
		jobs := make([]job, 0, pairs)
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			dst := make([]byte, len(a.Data)+len(b.Data))
			jobs = append(jobs, job{dst, a, b})
			next = append(next, Run{Data: dst, Width: a.Width})
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}

		// Run at most p pair merges at once; each may use perPair workers.
		sem := make(chan struct{}, max(1, p))
		var wg sync.WaitGroup
		for _, jb := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(jb job) {
				defer wg.Done()
				defer func() { <-sem }()
				ParallelMerge(jb.dst, jb.a, jb.b, cmp, perPair)
			}(jb)
		}
		wg.Wait()
		runs = next
	}
	if len(runs) == 0 {
		return Run{}
	}
	return runs[0]
}

// KWayMerge merges k sorted runs into dst with a loser-tree tournament, as
// the modeled ClickHouse/HyPer/Umbra merge phases do. It is stable across
// runs (ties resolve to the lower run index). dst must hold the total number
// of rows. Each output row costs one leaf-to-root replay of ceil(log2 k)
// matches; see KWayMergeOVC for the offset-value-coded variant that avoids
// the full-width comparison in most matches.
func KWayMerge(dst []byte, runs []Run, cmp CompareFunc) {
	m := NewMerger(runs, 0, nil, cmp)
	drainMerger(m, dst, runWidth(runs))
}
