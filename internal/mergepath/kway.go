package mergepath

import (
	"bytes"
	"sync"
)

// This file implements the single-pass k-way merge: a tournament (loser)
// tree over k sorted runs, with offset-value coding (Do & Graefe) so that
// most tree matches resolve by comparing two integers instead of two
// full-width normalized keys, and a k-way generalization of Merge Path so
// the output can be partitioned across threads in one pass.
//
// Offset-value coding caches, per candidate row, where that row first
// differs from the key it most recently lost to (or followed within its
// run): code = (keyWidth-offset)<<8 | row[offset], and 0 when the rows are
// byte-equal. For rows that are >= the base in byte order, codes order
// exactly like the rows, so two candidates whose codes differ compare in
// O(1). Only equal codes — rows sharing their first difference against the
// common base — need bytes compared, and then only from that offset on.
//
// The loser tree maintains the invariant that makes code comparisons valid:
// every match compares two rows whose codes are relative to the same base,
// namely the last winner that passed through that node. When a match is
// decided by code inequality the loser's code is unchanged relative to the
// new winner (the first-difference position and byte against the old base
// still hold against any row between the old base and itself); when rows tie
// on codes and the bytes decide, the loser's code is recomputed relative to
// the winner from the deciding byte.

// Stats counts merge work, exported alongside radix.Stats so ablations can
// attribute time to comparison work.
type Stats struct {
	// Comparisons is the number of two-row matches played in the tree.
	Comparisons uint64
	// OVCHits is how many matches were decided by offset-value codes alone.
	OVCHits uint64
	// FullCompares is how many matches needed row bytes (always, without OVC).
	FullCompares uint64
	// TieBreaks is how many matches fell through byte-equal keys into the
	// tie-break comparator (truncated varchar prefixes).
	TieBreaks uint64
	// DupRunHits is how many output rows were emitted by the duplicate-run
	// fast path: the winner's successor was byte-equal to the row just
	// emitted (within-run code 0), so the winner kept the tournament
	// without replaying a single match.
	DupRunHits uint64
	// BytesMoved is the output volume written by the merge.
	BytesMoved uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Comparisons += o.Comparisons
	s.OVCHits += o.OVCHits
	s.FullCompares += o.FullCompares
	s.TieBreaks += o.TieBreaks
	s.DupRunHits += o.DupRunHits
	s.BytesMoved += o.BytesMoved
}

// OVCCode returns the offset-value code of row relative to base over the
// first keyWidth bytes: 0 when they are byte-equal, else
// (keyWidth-q)<<8 | row[q] where q is the first differing byte. For
// row >= base the code orders like the row.
//
//rowsort:hotpath
//rowsort:pure
func OVCCode(base, row []byte, keyWidth int) uint32 {
	for q := 0; q < keyWidth; q++ {
		if base[q] != row[q] {
			return uint32(keyWidth-q)<<8 | uint32(row[q])
		}
	}
	return 0
}

// ComputeOVC returns the within-run codes of r: codes[i] is row i relative
// to row i-1. codes[0] is left zero — the tree never reads the code of a
// run's first row (the initial tournament is played with full comparisons);
// block readers overwrite it with the cross-block carry.
func ComputeOVC(r Run, keyWidth int) []uint32 {
	n := r.Len()
	codes := make([]uint32, n)
	for i := 1; i < n; i++ {
		codes[i] = OVCCode(r.Row(i-1), r.Row(i), keyWidth)
	}
	return codes
}

// cursor is one run's read position in the tournament.
type cursor struct {
	run   Run
	codes []uint32
	pos   int
	code  uint32 // current row's code relative to this path's last winner
	done  bool
}

// Merger is a k-way loser-tree merge over sorted runs. With keyWidth > 0 it
// compares offset-value codes first and row bytes only on code ties, calling
// tie for byte-equal keys (nil means byte-equal rows are equal); with
// keyWidth == 0 it plays every match with tie as the full comparator (nil
// means bytes.Compare). Ties resolve to the lower run index, so the merge is
// stable across runs either way.
//
// keyWidth must be a byte-decisive prefix: whenever two rows differ within
// their first keyWidth bytes, that byte order must be the sort order, and
// tie must totally order byte-equal prefixes. A caller whose byte order
// stops being decisive mid-key (e.g. a truncated varchar segment followed
// by more key columns) must pass the width up to that segment's end, not
// the full key width, with tie as the remaining comparator.
type Merger struct {
	cur      []cursor
	tree     []int32 // tree[1..k-1]: losers; leaf of run r is node r+k
	k        int
	keyWidth int // 0 disables offset-value coding
	tie      CompareFunc
	refill   func(r int) (Run, []uint32, bool)
	stats    Stats
	winner   int
	started  bool
}

// NewMerger builds the tournament over runs. codes may be nil when
// keyWidth == 0; otherwise codes[r] must be ComputeOVC(runs[r], keyWidth)
// (or a block's codes with the cross-block carry in codes[0]).
func NewMerger(runs []Run, keyWidth int, codes [][]uint32, tie CompareFunc) *Merger {
	m := &Merger{k: len(runs), keyWidth: keyWidth, tie: tie, winner: -1}
	if keyWidth == 0 {
		m.tie = cmpOrDefault(tie)
	}
	m.cur = make([]cursor, m.k)
	for i := range runs {
		c := cursor{run: runs[i], done: runs[i].Len() == 0}
		if codes != nil {
			c.codes = codes[i]
		}
		m.cur[i] = c
	}
	if m.k == 0 {
		return m
	}
	m.tree = make([]int32, m.k)
	m.winner = m.build(1)
	return m
}

// SetRefill installs the streaming callback: when run r's current block is
// exhausted, refill may hand the merger r's next block (with codes[0] set
// relative to the block's last output row) instead of retiring the run.
func (m *Merger) SetRefill(f func(r int) (Run, []uint32, bool)) { m.refill = f }

// Stats returns the merge counters accumulated so far.
func (m *Merger) Stats() Stats { return m.stats }

// build plays the initial tournament under node with full comparisons,
// storing losers (with codes relative to their defeater) and returning the
// subtree winner. Leaves are nodes k..2k-1; node i's children are 2i, 2i+1.
func (m *Merger) build(node int) int {
	if node >= m.k {
		return node - m.k
	}
	w, l := m.fullMatch(m.build(2*node), m.build(2*node+1))
	m.tree[node] = int32(l)
	return w
}

// Next returns the next output row: its run index, its position within that
// run's current block, and the row bytes (aliasing the run buffer — consume
// before the following Next, which may refill the block). The previous
// winner is advanced lazily here, so a streaming caller can flush work that
// references the old block from inside its refill callback.
//
//rowsort:hotpath
func (m *Merger) Next() (run, pos int, row []byte, ok bool) {
	if m.started {
		m.advance(m.winner)
	} else {
		m.started = true
	}
	if m.winner < 0 || m.cur[m.winner].done {
		return 0, 0, nil, false
	}
	c := &m.cur[m.winner]
	return m.winner, c.pos, c.run.Row(c.pos), true
}

// advance steps run r to its next row (refilling or retiring it at block
// end) and replays the matches from r's leaf to the root.
func (m *Merger) advance(r int) {
	c := &m.cur[r]
	c.pos++
	if c.pos >= c.run.Len() {
		c.done = true
		if m.refill != nil {
			if nr, codes, ok := m.refill(r); ok && nr.Len() > 0 {
				c.run, c.codes, c.pos, c.done = nr, codes, 0, false
				if m.keyWidth > 0 {
					c.code = codes[0]
				}
			}
		}
	} else if m.keyWidth > 0 {
		c.code = c.codes[c.pos]
	}
	// Duplicate-run fast path: a within-run (or cross-block carry) code of 0
	// means the new row is byte-equal to the row just emitted. That row beat
	// every other candidate, and with no tie-break byte-equal rows from a
	// higher run index cannot outrank it (ties go to the lower run), so the
	// winner keeps the tournament — no matches replayed. Loser codes stay
	// valid: they are relative to the old winner's bytes, which the new
	// winner repeats. With a tie-break installed byte-equal rows may still
	// order semantically, so the tree must replay.
	if m.keyWidth > 0 && m.tie == nil && !c.done && c.code == 0 {
		m.stats.DupRunHits++
		m.winner = r
		return
	}
	x := r
	for node := (r + m.k) / 2; node >= 1; node /= 2 {
		w, l := m.match(x, int(m.tree[node]))
		m.tree[node] = int32(l)
		x = w
	}
	m.winner = x
}

// match plays candidate a against stored loser b, both codes relative to
// the same base by the tree invariant. It returns (winner, loser) and
// updates the loser's code to be relative to the winner when the bytes
// decided or tied.
func (m *Merger) match(a, b int) (w, l int) {
	ca, cb := &m.cur[a], &m.cur[b]
	if ca.done {
		return b, a
	}
	if cb.done {
		return a, b
	}
	if m.keyWidth == 0 {
		m.stats.Comparisons++
		m.stats.FullCompares++
		c := m.tie(ca.run.Row(ca.pos), cb.run.Row(cb.pos))
		if c < 0 || (c == 0 && a < b) {
			return a, b
		}
		return b, a
	}
	m.stats.Comparisons++
	if ca.code != cb.code {
		// Codes relative to a common base order like the rows: the loser
		// keeps its code, which stays valid relative to the new winner.
		m.stats.OVCHits++
		if ca.code < cb.code {
			return a, b
		}
		return b, a
	}
	m.stats.FullCompares++
	ra, rb := ca.run.Row(ca.pos), cb.run.Row(cb.pos)
	j := m.keyWidth // equal zero codes: both rows equal the base
	if ca.code != 0 {
		// Equal nonzero codes: both rows match the base up to and including
		// the offset byte, so they can first differ just past it.
		j = m.keyWidth - int(ca.code>>8) + 1
		for j < m.keyWidth && ra[j] == rb[j] {
			j++
		}
	}
	if j < m.keyWidth {
		if ra[j] < rb[j] {
			cb.code = uint32(m.keyWidth-j)<<8 | uint32(rb[j])
			return a, b
		}
		ca.code = uint32(m.keyWidth-j)<<8 | uint32(ra[j])
		return b, a
	}
	var c int
	if m.tie != nil {
		m.stats.TieBreaks++
		c = m.tie(ra, rb)
	}
	if c < 0 || (c == 0 && a < b) {
		cb.code = 0
		return a, b
	}
	ca.code = 0
	return b, a
}

// fullMatch is match with the codes ignored: the initial tournament has no
// common base yet, so it compares bytes from offset 0 and seeds the losers'
// codes relative to their defeaters.
func (m *Merger) fullMatch(a, b int) (w, l int) {
	ca, cb := &m.cur[a], &m.cur[b]
	if ca.done {
		return b, a
	}
	if cb.done {
		return a, b
	}
	m.stats.Comparisons++
	m.stats.FullCompares++
	if m.keyWidth == 0 {
		c := m.tie(ca.run.Row(ca.pos), cb.run.Row(cb.pos))
		if c < 0 || (c == 0 && a < b) {
			return a, b
		}
		return b, a
	}
	ra, rb := ca.run.Row(ca.pos), cb.run.Row(cb.pos)
	j := 0
	for j < m.keyWidth && ra[j] == rb[j] {
		j++
	}
	if j < m.keyWidth {
		if ra[j] < rb[j] {
			cb.code = uint32(m.keyWidth-j)<<8 | uint32(rb[j])
			return a, b
		}
		ca.code = uint32(m.keyWidth-j)<<8 | uint32(ra[j])
		return b, a
	}
	var c int
	if m.tie != nil {
		m.stats.TieBreaks++
		c = m.tie(ra, rb)
	}
	if c < 0 || (c == 0 && a < b) {
		cb.code = 0
		return a, b
	}
	ca.code = 0
	return b, a
}

// KWayMergeOVC merges k runs of normalized-key rows into dst with the
// offset-value-coded loser tree. Rows compare as their first keyWidth bytes;
// tie (may be nil) breaks byte-equal keys, and remaining ties resolve to the
// lower run index. dst must hold the total number of rows. codes may be nil,
// in which case the within-run codes are computed here.
func KWayMergeOVC(dst []byte, runs []Run, keyWidth int, codes [][]uint32, tie CompareFunc) Stats {
	if codes == nil {
		codes = make([][]uint32, len(runs))
		for r := range runs {
			codes[r] = ComputeOVC(runs[r], keyWidth)
		}
	}
	m := NewMerger(runs, keyWidth, codes, tie)
	drainMerger(m, dst, runWidth(runs))
	return m.stats
}

func runWidth(runs []Run) int {
	for _, r := range runs {
		if r.Width > 0 {
			return r.Width
		}
	}
	return 0
}

func drainMerger(m *Merger, dst []byte, w int) {
	k := 0
	for {
		_, _, row, ok := m.Next()
		if !ok {
			break
		}
		copy(dst[k*w:], row)
		k++
	}
	m.stats.BytesMoved += uint64(k * w)
}

// lowerBound returns the first index in r whose row is not before e.
func lowerBound(r Run, e []byte, c CompareFunc) int {
	lo, hi := 0, r.Len()
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if c(r.Row(m), e) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// upperBound returns the first index in r whose row is after e.
func upperBound(r Run, e []byte, c CompareFunc) int {
	lo, hi := 0, r.Len()
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if c(r.Row(m), e) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// KWaySplit generalizes SplitPoint to k runs: it returns s with sum(s) = d
// such that the stable k-way merge (ties to the lower run index) outputs
// exactly runs[r][:s[r]] as its first d rows. It runs a multisequence
// selection: each probe pivots on the middle of the widest undecided run and
// tightens every run's bounds by the pivot's global rank.
func KWaySplit(runs []Run, d int, cmp CompareFunc) []int {
	c := cmpOrDefault(cmp)
	k := len(runs)
	lo := make([]int, k)
	hi := make([]int, k)
	sumLo, sumHi := 0, 0
	for r := range runs {
		hi[r] = runs[r].Len()
		sumHi += hi[r]
	}
	if d <= 0 {
		return lo
	}
	if d >= sumHi {
		return hi
	}
	cnt := make([]int, k)
	for sumLo != d && sumHi != d {
		// Pivot on the widest open range; the loop invariant
		// lo[r] <= s[r] <= hi[r] guarantees one exists while the sums differ.
		p, width := -1, 0
		for r := range runs {
			if hi[r]-lo[r] > width {
				p, width = r, hi[r]-lo[r]
			}
		}
		mid := int(uint(lo[p]+hi[p]) >> 1)
		e := runs[p].Row(mid)
		// rank(e): rows strictly before (p, mid) in the stable merge order.
		tot := 0
		for r := range runs {
			switch {
			case r < p:
				cnt[r] = upperBound(runs[r], e, c) // earlier runs win ties
			case r == p:
				cnt[r] = mid
			default:
				cnt[r] = lowerBound(runs[r], e, c)
			}
			tot += cnt[r]
		}
		if tot < d {
			// e is inside the first d rows, and so is everything before it.
			for r := range runs {
				if cnt[r] > lo[r] {
					sumLo += cnt[r] - lo[r]
					lo[r] = cnt[r]
				}
			}
			if mid+1 > lo[p] {
				sumLo += mid + 1 - lo[p]
				lo[p] = mid + 1
			}
		} else {
			// e is outside the first d rows, and so is everything at or
			// after its rank.
			for r := range runs {
				if cnt[r] < hi[r] {
					sumHi -= hi[r] - cnt[r]
					hi[r] = cnt[r]
				}
			}
			if mid < hi[p] {
				sumHi -= hi[p] - mid
				hi[p] = mid
			}
		}
	}
	if sumLo == d {
		return lo
	}
	return hi
}

// ParallelKWayMerge merges k runs into dst in a single pass using up to p
// goroutines: KWaySplit cuts the output into p near-equal disjoint
// partitions, each merged independently by a loser tree. With useOVC the
// trees compare offset-value codes (keyWidth prefix bytes, tie for
// byte-equal keys); without, every match compares keyWidth bytes and then
// tie — the two ablation arms. The output is byte-identical to the scalar
// stable merge at every p. dst must hold the total number of rows.
func ParallelKWayMerge(dst []byte, runs []Run, keyWidth int, tie CompareFunc, p int, useOVC bool) Stats {
	return ParallelKWayMergeSpans(dst, runs, keyWidth, tie, p, useOVC, nil)
}

// ParallelKWayMergeSpans is ParallelKWayMerge with a per-worker telemetry
// hook: when onWorker is non-nil it runs on each partition's goroutine
// before that partition merges, and the function it returns runs when the
// partition finishes — the telemetry layer uses the pair to give every
// merge worker its own trace lane.
//
//rowsort:pipeline
func ParallelKWayMergeSpans(dst []byte, runs []Run, keyWidth int, tie CompareFunc, p int, useOVC bool, onWorker func(part int) func()) Stats {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if total == 0 {
		return Stats{}
	}
	w := runWidth(runs)
	// The split and the non-OVC tree compare with the merge's effective
	// order: prefix bytes, then the tie-break.
	eff := func(a, b []byte) int {
		if c := bytes.Compare(a[:keyWidth], b[:keyWidth]); c != 0 {
			return c
		}
		if tie != nil {
			return tie(a, b)
		}
		return 0
	}

	var codes [][]uint32
	var wg sync.WaitGroup
	if useOVC {
		codes = make([][]uint32, len(runs))
		for r := range runs {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				codes[r] = ComputeOVC(runs[r], keyWidth)
			}(r)
		}
		wg.Wait()
	}

	if p < 1 {
		p = 1
	}
	if p > total {
		p = total
	}
	stats := make([]Stats, p)
	prev := make([]int, len(runs))
	for part := 1; part <= p; part++ {
		var cut []int
		if part == p {
			cut = make([]int, len(runs))
			for r := range runs {
				cut[r] = runs[r].Len()
			}
		} else {
			cut = KWaySplit(runs, part*total/p, eff)
		}
		start := 0
		for _, v := range prev {
			start += v
		}
		end := 0
		for _, v := range cut {
			end += v
		}
		sub := make([]Run, len(runs))
		var subCodes [][]uint32
		if useOVC {
			subCodes = make([][]uint32, len(runs))
		}
		for r := range runs {
			sub[r] = Run{Data: runs[r].Data[prev[r]*w : cut[r]*w], Width: w}
			if useOVC {
				// codes[0] of a sub-run is never read: the initial
				// tournament replays full comparisons.
				subCodes[r] = codes[r][prev[r]:cut[r]]
			}
		}
		out := dst[start*w : end*w]
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			if onWorker != nil {
				defer onWorker(part)()
			}
			var m *Merger
			if useOVC {
				m = NewMerger(sub, keyWidth, subCodes, tie)
			} else {
				m = NewMerger(sub, 0, nil, eff)
			}
			drainMerger(m, out, w)
			stats[part] = m.stats
		}(part - 1)
		prev = cut
	}
	wg.Wait()
	var st Stats
	for _, s := range stats {
		st.Add(s)
	}
	return st
}
