package mergepath

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

func TestOVCCode(t *testing.T) {
	base := []byte{1, 2, 3, 4}
	if c := OVCCode(base, []byte{1, 2, 3, 4}, 4); c != 0 {
		t.Fatalf("equal rows: code %d, want 0", c)
	}
	// First difference at offset 2, byte 9: (4-2)<<8 | 9.
	if c := OVCCode(base, []byte{1, 2, 9, 0}, 4); c != 2<<8|9 {
		t.Fatalf("code %#x, want %#x", c, 2<<8|9)
	}
	// Codes of rows >= base order like the rows.
	rows := [][]byte{
		{1, 2, 3, 4}, {1, 2, 3, 5}, {1, 2, 4, 0}, {1, 3, 0, 0}, {2, 0, 0, 0},
	}
	for i := 1; i < len(rows); i++ {
		a, b := OVCCode(base, rows[i-1], 4), OVCCode(base, rows[i], 4)
		if a >= b {
			t.Fatalf("codes not increasing: %#x >= %#x at %d", a, b, i)
		}
	}
}

func TestComputeOVC(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	r := sortedRun(randVals(500, 40, rng), 8, 0)
	codes := ComputeOVC(r, 4)
	for i := 1; i < r.Len(); i++ {
		if want := OVCCode(r.Row(i-1), r.Row(i), 4); codes[i] != want {
			t.Fatalf("codes[%d] = %#x, want %#x", i, codes[i], want)
		}
	}
}

func TestKWayMergeOVCMatchesCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, numRuns := range []int{1, 2, 3, 8, 13} {
		var runs []Run
		total := 0
		for r := 0; r < numRuns; r++ {
			n := rng.Intn(400)
			runs = append(runs, sortedRun(randVals(n, 48, rng), 8, uint32(r)*100000))
			total += n
		}
		want := CascadeMerge(runs, cmpKey, 1)
		got := make([]byte, total*8)
		st := KWayMergeOVC(got, runs, 4, nil, nil)
		if !bytes.Equal(got, want.Data) {
			t.Fatalf("runs=%d: OVC k-way merge differs from cascade", numRuns)
		}
		if st.BytesMoved != uint64(total*8) {
			t.Fatalf("runs=%d: BytesMoved %d, want %d", numRuns, st.BytesMoved, total*8)
		}
		if st.Comparisons != st.OVCHits+st.FullCompares {
			t.Fatalf("runs=%d: Comparisons %d != OVCHits %d + FullCompares %d",
				numRuns, st.Comparisons, st.OVCHits, st.FullCompares)
		}
	}
}

// TestKWayMergeOVCTieComparator models truncated varchar prefixes: only the
// first 4 bytes are "encoded", the tie comparator sees the full 8-byte row.
// Duplicate-heavy keys force the tie path constantly.
func TestKWayMergeOVCTieComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var runs []Run
	var rows [][]byte
	total := 0
	for r := 0; r < 7; r++ {
		n := 100 + rng.Intn(200)
		run := sortedRun(randVals(n, 8, rng), 8, uint32(r)*100000)
		runs = append(runs, run)
		for i := 0; i < run.Len(); i++ {
			rows = append(rows, run.Row(i))
		}
		total += n
	}
	// Oracle: stable sort by the full row (prefix, then the tie bytes).
	sort.SliceStable(rows, func(i, j int) bool { return bytes.Compare(rows[i], rows[j]) < 0 })
	want := bytes.Join(rows, nil)

	got := make([]byte, total*8)
	st := KWayMergeOVC(got, runs, 4, nil, bytes.Compare)
	if !bytes.Equal(got, want) {
		t.Fatal("tie-break merge differs from full-row stable sort")
	}
	if st.TieBreaks == 0 {
		t.Fatal("duplicate-heavy prefixes should exercise the tie comparator")
	}
	if st.OVCHits == 0 {
		t.Fatal("expected some matches to resolve on codes alone")
	}
}

func TestKWaySplitPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	var runs []Run
	total := 0
	for r := 0; r < 6; r++ {
		n := rng.Intn(300)
		runs = append(runs, sortedRun(randVals(n, 20, rng), 8, uint32(r)*100000))
		total += n
	}
	full := make([]byte, total*8)
	KWayMerge(full, runs, cmpKey)

	for d := 0; d <= total; d += 13 {
		s := KWaySplit(runs, d, cmpKey)
		sum := 0
		for r := range runs {
			if s[r] < 0 || s[r] > runs[r].Len() {
				t.Fatalf("d=%d: split %d out of range for run %d", d, s[r], r)
			}
			sum += s[r]
		}
		if sum != d {
			t.Fatalf("d=%d: split sums to %d", d, sum)
		}
		// Merging the prefixes must reproduce exactly the first d output rows.
		prefix := make([]Run, len(runs))
		for r := range runs {
			prefix[r] = Run{Data: runs[r].Data[:s[r]*8], Width: 8}
		}
		got := make([]byte, d*8)
		KWayMerge(got, prefix, cmpKey)
		if !bytes.Equal(got, full[:d*8]) {
			t.Fatalf("d=%d: prefix merge differs from full merge prefix", d)
		}
	}
}

func TestParallelKWayMergeThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var runs []Run
	total := 0
	for r := 0; r < 10; r++ {
		n := rng.Intn(500)
		runs = append(runs, sortedRun(randVals(n, 30, rng), 8, uint32(r)*100000))
		total += n
	}
	want := make([]byte, total*8)
	KWayMergeOVC(want, runs, 4, nil, bytes.Compare)

	for _, useOVC := range []bool{true, false} {
		for p := 1; p <= 16; p++ {
			got := make([]byte, total*8)
			st := ParallelKWayMerge(got, runs, 4, bytes.Compare, p, useOVC)
			if !bytes.Equal(got, want) {
				t.Fatalf("useOVC=%v p=%d: parallel merge differs from scalar", useOVC, p)
			}
			if st.BytesMoved != uint64(total*8) {
				t.Fatalf("useOVC=%v p=%d: BytesMoved %d", useOVC, p, st.BytesMoved)
			}
			if useOVC && st.OVCHits == 0 {
				t.Fatalf("p=%d: no OVC hits in OVC mode", p)
			}
			if !useOVC && st.OVCHits != 0 {
				t.Fatalf("p=%d: OVC hits counted without OVC", p)
			}
		}
	}
}

// TestMergerRefillBlocks streams each run through fixed-size blocks with the
// cross-block code carry, as the external merge does, and checks the output
// matches the whole-run merge.
func TestMergerRefillBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	const kw, width = 4, 8
	k := 5
	full := make([]Run, k)
	total := 0
	for r := 0; r < k; r++ {
		full[r] = sortedRun(randVals(150+rng.Intn(250), 24, rng), width, uint32(r)*100000)
		total += full[r].Len()
	}
	want := make([]byte, total*width)
	KWayMergeOVC(want, full, kw, nil, bytes.Compare)

	for _, blockRows := range []int{1, 7, 64, 1000} {
		off := make([]int, k)
		first := make([]Run, k)
		codes := make([][]uint32, k)
		for r := 0; r < k; r++ {
			rows := min(blockRows, full[r].Len())
			first[r] = Run{Data: full[r].Data[:rows*width], Width: width}
			codes[r] = ComputeOVC(first[r], kw)
			off[r] = rows
		}
		m := NewMerger(first, kw, codes, bytes.Compare)
		m.SetRefill(func(r int) (Run, []uint32, bool) {
			if off[r] >= full[r].Len() {
				return Run{}, nil, false
			}
			rows := min(blockRows, full[r].Len()-off[r])
			blk := Run{Data: full[r].Data[off[r]*width : (off[r]+rows)*width], Width: width}
			c := ComputeOVC(blk, kw)
			// codes[0] carries across the block boundary: the previous
			// block's last row was the winner just output.
			c[0] = OVCCode(full[r].Row(off[r]-1), blk.Row(0), kw)
			off[r] += rows
			return blk, c, true
		})
		got := make([]byte, 0, total*width)
		for {
			_, _, row, ok := m.Next()
			if !ok {
				break
			}
			got = append(got, row...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("blockRows=%d: streamed merge differs from whole-run merge", blockRows)
		}
	}
}

// FuzzKWayMerge drives the loser tree against a stable sort oracle with
// random run counts and sizes, duplicate-heavy keys, and the tie-break
// comparator both off (run-index stability) and on (full-row order).
func FuzzKWayMerge(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint16(50), uint8(8))
	f.Add(uint64(7), uint8(1), uint16(0), uint8(1))
	f.Add(uint64(42), uint8(16), uint16(300), uint8(2))
	f.Add(uint64(99), uint8(9), uint16(77), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, k uint8, maxRun uint16, mod uint8) {
		rng := rand.New(rand.NewSource(int64(seed)))
		numRuns := int(k)%12 + 1
		m := uint32(mod)%64 + 1
		runs := make([]Run, numRuns)
		total := 0
		for r := 0; r < numRuns; r++ {
			n := 0
			if maxRun > 0 {
				n = rng.Intn(int(maxRun)%400 + 1)
			}
			runs[r] = sortedRun(randVals(n, m, rng), 8, uint32(r)*100000)
			total += n
		}
		var rows [][]byte
		for r := range runs {
			for i := 0; i < runs[r].Len(); i++ {
				rows = append(rows, runs[r].Row(i))
			}
		}

		// No tie comparator: stable by run index, which a stable sort over
		// run-major row order reproduces.
		byPrefix := append([][]byte(nil), rows...)
		sort.SliceStable(byPrefix, func(i, j int) bool {
			return bytes.Compare(byPrefix[i][:4], byPrefix[j][:4]) < 0
		})
		want := bytes.Join(byPrefix, nil)
		got := make([]byte, total*8)
		st := KWayMergeOVC(got, runs, 4, nil, nil)
		if !bytes.Equal(got, want) {
			t.Fatal("OVC k-way merge differs from stable sort oracle")
		}
		if st.Comparisons != st.OVCHits+st.FullCompares {
			t.Fatalf("stats inconsistent: %+v", st)
		}

		// With the tie comparator: full-row order (tags make rows unique).
		byFull := append([][]byte(nil), rows...)
		sort.SliceStable(byFull, func(i, j int) bool {
			return bytes.Compare(byFull[i], byFull[j]) < 0
		})
		wantFull := bytes.Join(byFull, nil)
		gotFull := make([]byte, total*8)
		KWayMergeOVC(gotFull, runs, 4, nil, bytes.Compare)
		if !bytes.Equal(gotFull, wantFull) {
			t.Fatal("tie-break k-way merge differs from full-row oracle")
		}

		// Parallel partitioning must be byte-identical to the scalar merge.
		gotPar := make([]byte, total*8)
		ParallelKWayMerge(gotPar, runs, 4, nil, 3, true)
		if !bytes.Equal(gotPar, want) {
			t.Fatal("parallel k-way merge differs from scalar")
		}
	})
}

// TestOVCSkipsSharedPrefixes pins the point of the optimization: on long
// keys with a constant shared prefix, most matches resolve on codes alone.
func TestOVCSkipsSharedPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	const width, kw = 24, 20
	var runs []Run
	total := 0
	for r := 0; r < 8; r++ {
		n := 500
		vals := randVals(n, 1<<16, rng)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		data := make([]byte, n*width)
		for i, v := range vals {
			// 16 shared prefix bytes, then the value, then a tag.
			binary.BigEndian.PutUint32(data[i*width+16:], v)
			binary.BigEndian.PutUint32(data[i*width+20:], uint32(r*n+i))
		}
		runs = append(runs, Run{Data: data, Width: width})
		total += n
	}
	dst := make([]byte, total*width)
	st := KWayMergeOVC(dst, runs, kw, nil, nil)
	checkSortedByKey(t, dst[16:], width, "shared-prefix merge") // keys start at +16
	if st.OVCHits < st.FullCompares {
		t.Fatalf("long shared prefixes should be code-dominated: %+v", st)
	}
}

// TestMergerDupRunFastPath checks the duplicate-run fast path: with no tie
// comparator, a winner whose successor is byte-equal (within-run code 0)
// keeps the tournament without replaying matches — and the output must stay
// byte-identical to the stable merge order.
func TestMergerDupRunFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	type tagged struct {
		row []byte
		run int
	}
	var runs []Run
	var all []tagged
	total := 0
	for r := 0; r < 5; r++ {
		n := 200 + rng.Intn(200)
		// Domain of 8 distinct keys: long duplicate stretches inside runs.
		run := sortedRun(randVals(n, 8, rng), 8, uint32(r)*100000)
		runs = append(runs, run)
		for i := 0; i < run.Len(); i++ {
			all = append(all, tagged{run.Row(i), r})
		}
		total += n
	}
	// Oracle: stable sort by key prefix, ties to the lower run index,
	// within-run order preserved (SliceStable over rows listed in run order).
	sort.SliceStable(all, func(i, j int) bool {
		if c := bytes.Compare(all[i].row[:4], all[j].row[:4]); c != 0 {
			return c < 0
		}
		return all[i].run < all[j].run
	})
	want := make([]byte, 0, total*8)
	for _, tr := range all {
		want = append(want, tr.row...)
	}

	got := make([]byte, total*8)
	st := KWayMergeOVC(got, runs, 4, nil, nil)
	if !bytes.Equal(got, want) {
		t.Fatal("dup fast path changed the merge output")
	}
	if st.DupRunHits == 0 {
		t.Fatalf("duplicate-heavy runs never hit the fast path: %+v", st)
	}
	// Every fast-path emit skipped its tree replay entirely.
	if st.DupRunHits+st.Comparisons < uint64(total) {
		t.Fatalf("emits unaccounted for: %+v, total %d", st, total)
	}

	// With a tie comparator installed byte-equal rows may order
	// semantically: the fast path must stay off.
	got2 := make([]byte, total*8)
	st2 := KWayMergeOVC(got2, runs, 4, nil, bytes.Compare)
	if st2.DupRunHits != 0 {
		t.Fatalf("fast path fired with a tie comparator: %+v", st2)
	}
}
