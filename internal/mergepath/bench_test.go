package mergepath

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"rowsort/internal/workload"
)

func benchRun(n, width int, seed uint64) Run {
	rng := workload.NewRNG(seed)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	data := make([]byte, n*width)
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[i*width:], v)
	}
	return Run{Data: data, Width: width}
}

func BenchmarkParallelMerge(b *testing.B) {
	a := benchRun(1<<16, 8, 1)
	c := benchRun(1<<16, 8, 2)
	dst := make([]byte, len(a.Data)+len(c.Data))
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(dst)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ParallelMerge(dst, a, c, nil, p)
			}
		})
	}
}

func BenchmarkKWayVsCascade(b *testing.B) {
	var runs []Run
	total := 0
	for r := 0; r < 16; r++ {
		run := benchRun(1<<12, 8, uint64(r+10))
		runs = append(runs, run)
		total += run.Len()
	}
	b.Run("kway", func(b *testing.B) {
		dst := make([]byte, total*8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			KWayMerge(dst, runs, nil)
		}
	})
	b.Run("cascade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CascadeMerge(runs, nil, 2)
		}
	})
}

func BenchmarkSplitPoint(b *testing.B) {
	a := benchRun(1<<18, 8, 3)
	c := benchRun(1<<18, 8, 4)
	total := a.Len() + c.Len()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SplitPoint(a, c, (i*7919)%total, nil)
	}
}
